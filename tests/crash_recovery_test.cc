// Crash recovery tests.
//
// Unit level: a WAL-enabled Shard survives a clean close (reattach, no
// replay) and a simulated crash (heap walk + index rebuild + WAL tail
// replay), including the checkpoint-then-more-writes shape where only the
// tail past the recovery LSN replays.
//
// System level: a fork/SIGKILL harness. A child process opens a WAL-enabled
// ShardedEngine with aggressive flusher + checkpoint cadence and drives a
// deterministic mixed put/delete stream, recording one intent byte before
// and one ack byte after every logical op (O_APPEND one-byte writes, so the
// side logs are torn-proof). The parent kills it at a randomized point,
// reopens the data in-process, and checks the recovered state against the
// op-stream model: every ACKED op's effect must be present; unacked ops may
// or may not be (they are only admissible as *later* states of the same
// key, never as lost acked state).

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fcntl.h>
#include <map>
#include <string>
#include <vector>

#include "shard/shard.h"
#include "shard/sharded_engine.h"
#include "storage/superblock.h"
#include "storage/wal.h"
#include "test_util.h"

namespace nblb {
namespace {

Schema SmallSchema() {
  return Schema({{"id", TypeId::kInt64, 0},
                 {"payload", TypeId::kVarchar, 32},
                 {"score", TypeId::kInt64, 0}});
}

// The score column carries the op sequence number, so a recovered row
// identifies exactly which op produced it.
Row MakeRow(uint64_t key, uint64_t seq) {
  return {Value::Int64(static_cast<int64_t>(key)),
          Value::Varchar("s" + std::to_string(seq) + "-k" +
                         std::to_string(key)),
          Value::Int64(static_cast<int64_t>(seq))};
}

void RemoveShardFiles(const std::string& prefix, uint32_t num_shards) {
  for (uint32_t i = 0; i < num_shards; ++i) {
    const std::string path = prefix + ".shard" + std::to_string(i) + ".db";
    std::remove(path.c_str());
    std::remove(Superblock::PathFor(path).c_str());
    std::remove(Wal::PathFor(path).c_str());
  }
}

// ---- Shard-level recovery ---------------------------------------------------

ShardOptions DurableShardOptions(const std::string& tag) {
  ShardOptions opts;
  opts.path = ::testing::TempDir() + "nblb_crash_" + tag + "_" +
              std::to_string(::getpid()) + ".db";
  opts.page_size = 4096;
  opts.buffer_pool_frames = 256;
  opts.wal_enabled = true;
  opts.schema = SmallSchema();
  opts.table_options.key_columns = {0};
  opts.table_options.cached_columns = {2};
  return opts;
}

void RemoveShardFilesFor(const ShardOptions& opts) {
  std::remove(opts.path.c_str());
  std::remove(Superblock::PathFor(opts.path).c_str());
  std::remove(Wal::PathFor(opts.path).c_str());
}

TEST(ShardRecoveryTest, CleanCloseReattachesWithoutReplay) {
  ShardOptions opts = DurableShardOptions("clean");
  {
    ASSERT_OK_AND_ASSIGN(auto shard, Shard::Open(7, opts));
    for (uint64_t k = 0; k < 50; ++k) {
      ASSERT_OK(shard->Insert(MakeRow(k, k)));
    }
    ASSERT_OK(shard->CommitWal());
    // Destructor runs the clean-close checkpoint.
  }
  opts.truncate = false;
  ASSERT_OK_AND_ASSIGN(auto shard, Shard::Open(7, opts));
  EXPECT_FALSE(shard->recovered());
  EXPECT_EQ(shard->replayed_records(), 0u);
  EXPECT_EQ(shard->rows(), 50u);
  for (uint64_t k = 0; k < 50; ++k) {
    ASSERT_OK_AND_ASSIGN(Row row, shard->Get(k));
    EXPECT_EQ(static_cast<uint64_t>(row[2].AsInt()), k);
  }
  // The reattached shard keeps working.
  ASSERT_OK(shard->Insert(MakeRow(100, 100)));
  ASSERT_OK(shard->CommitWal());
  shard.reset();
  RemoveShardFilesFor(opts);
}

TEST(ShardRecoveryTest, CrashReplaysWalTail) {
  ShardOptions opts = DurableShardOptions("crash");
  {
    ASSERT_OK_AND_ASSIGN(auto shard, Shard::Open(3, opts));
    // Checkpointed prefix: these rows live in the data file only.
    for (uint64_t k = 0; k < 20; ++k) {
      ASSERT_OK(shard->Insert(MakeRow(k, k)));
    }
    ASSERT_OK(shard->Checkpoint());
    // Tail: committed to the WAL but never checkpointed — inserts, an
    // update, and a delete, so replay exercises every record kind.
    for (uint64_t k = 20; k < 30; ++k) {
      ASSERT_OK(shard->Insert(MakeRow(k, k)));
    }
    ASSERT_OK(shard->Update(5, MakeRow(5, 500)));
    ASSERT_OK(shard->Delete(7));
    ASSERT_OK(shard->CommitWal());
    shard->SimulateCrashForTest();
  }
  opts.truncate = false;
  ASSERT_OK_AND_ASSIGN(auto shard, Shard::Open(3, opts));
  EXPECT_TRUE(shard->recovered());
  // 10 inserts + 1 update + 1 delete past the checkpoint LSN.
  EXPECT_EQ(shard->replayed_records(), 12u);
  EXPECT_EQ(shard->rows(), 29u);
  for (uint64_t k = 0; k < 30; ++k) {
    auto got = shard->Get(k);
    if (k == 7) {
      EXPECT_TRUE(got.status().IsNotFound());
      continue;
    }
    ASSERT_TRUE(got.ok()) << "key " << k << ": " << got.status().ToString();
    const uint64_t want_seq = (k == 5) ? 500 : k;
    EXPECT_EQ(static_cast<uint64_t>(got.ValueOrDie()[2].AsInt()), want_seq);
  }
  // Structural sanity: the rebuilt index agrees with the live row count.
  EXPECT_EQ(shard->table()->index()->num_entries(), 29u);
  shard.reset();
  RemoveShardFilesFor(opts);
}

TEST(ShardRecoveryTest, CrashWithUncommittedTailLosesOnlyUnacked) {
  ShardOptions opts = DurableShardOptions("unacked");
  {
    ASSERT_OK_AND_ASSIGN(auto shard, Shard::Open(1, opts));
    for (uint64_t k = 0; k < 10; ++k) {
      ASSERT_OK(shard->Insert(MakeRow(k, k)));
    }
    ASSERT_OK(shard->CommitWal());  // acked
    for (uint64_t k = 10; k < 15; ++k) {
      ASSERT_OK(shard->Insert(MakeRow(k, k)));  // appended, never committed
    }
    shard->SimulateCrashForTest();
  }
  opts.truncate = false;
  ASSERT_OK_AND_ASSIGN(auto shard, Shard::Open(1, opts));
  EXPECT_TRUE(shard->recovered());
  // The contract: every COMMITTED (acked) write survives. The uncommitted
  // tail was never acked, so it MAY survive (here it does, via the heap
  // walk — an in-process "crash" still flushes buffer-pool pages on close)
  // or may not; either way the recovered shard must be self-consistent.
  for (uint64_t k = 0; k < 10; ++k) {
    ASSERT_TRUE(shard->Get(k).ok()) << "acked key " << k << " lost";
  }
  uint64_t live = 0;
  for (uint64_t k = 0; k < 15; ++k) {
    auto got = shard->Get(k);
    if (got.ok()) {
      ++live;
      EXPECT_EQ(static_cast<uint64_t>(got.ValueOrDie()[2].AsInt()), k);
    } else {
      EXPECT_TRUE(got.status().IsNotFound());
    }
  }
  EXPECT_EQ(shard->rows(), live);
  EXPECT_EQ(shard->table()->index()->num_entries(), live);
  shard.reset();
  RemoveShardFilesFor(opts);
}

TEST(ShardRecoveryTest, ReopenWithoutTruncateRequiresWal) {
  // Without a WAL there is no catalog to reattach from: reopening an
  // existing non-durable shard file must refuse rather than destroy it.
  ShardOptions opts = DurableShardOptions("guard");
  opts.wal_enabled = false;
  {
    ASSERT_OK_AND_ASSIGN(auto shard, Shard::Open(0, opts));
    ASSERT_OK(shard->Insert(MakeRow(1, 1)));
  }
  opts.truncate = false;
  auto reopen = Shard::Open(0, opts);
  EXPECT_FALSE(reopen.ok());
  RemoveShardFilesFor(opts);
}

// ---- Kill-9 harness ---------------------------------------------------------

constexpr uint64_t kKeys = 512;
constexpr uint64_t kMaxOps = 2'000'000;

struct OpModel {
  uint64_t key = 0;
  bool is_delete = false;
};

// Deterministic LCG shared by child (execution) and parent (verification);
// seed the state once, then call per op.
OpModel NextOp(uint64_t* state) {
  uint64_t x = *state;
  x = x * 6364136223846793005ULL + 1442695040888963407ULL;
  *state = x;
  OpModel op;
  op.key = (x >> 33) % kKeys;
  op.is_delete = ((x >> 13) % 10) < 2;
  return op;
}

ShardedEngineOptions HarnessOptions(const std::string& prefix,
                                    bool truncate) {
  ShardedEngineOptions opts;
  opts.num_shards = 2;
  opts.num_workers = 2;
  opts.path_prefix = prefix;
  opts.truncate_on_open = truncate;
  opts.page_size = 4096;
  opts.buffer_pool_frames_per_shard = 256;
  opts.wal_enabled = true;
  // Aggressive cadences so randomized kills land mid-flusher-pass and
  // mid-checkpoint, not just between groups.
  opts.flusher_interval_us = 500;
  opts.checkpoint_every_groups = 4;
  opts.schema = SmallSchema();
  opts.table_options.key_columns = {0};
  opts.table_options.cached_columns = {2};
  return opts;
}

/// Child body (post-fork): never returns, only _exit()s. Exit codes:
/// 0 = ran out of ops (harness should use a bigger kMaxOps), 2 = engine
/// open failed, 3 = an op failed with an unexpected status.
void RunChildWorkload(const std::string& prefix, uint64_t seed,
                      const std::string& intents_path,
                      const std::string& acks_path) {
  const int intents_fd =
      ::open(intents_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  const int acks_fd =
      ::open(acks_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (intents_fd < 0 || acks_fd < 0) _exit(2);
  auto engine_or = ShardedEngine::Open(HarnessOptions(prefix, true));
  if (!engine_or.ok()) _exit(2);
  auto engine = std::move(engine_or).ValueOrDie();
  uint64_t state = seed;
  for (uint64_t i = 0; i < kMaxOps; ++i) {
    const OpModel op = NextOp(&state);
    if (::write(intents_fd, "i", 1) != 1) _exit(2);
    if (op.is_delete) {
      Status s = engine->Delete(op.key);
      if (!s.ok() && !s.IsNotFound()) _exit(3);
    } else {
      Status s = engine->Insert(op.key, MakeRow(op.key, i));
      if (s.IsAlreadyExists()) s = engine->Update(op.key, MakeRow(op.key, i));
      if (!s.ok()) _exit(3);
    }
    if (::write(acks_fd, "a", 1) != 1) _exit(2);
  }
  _exit(0);
}

uint64_t FileSizeOrZero(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return 0;
  return static_cast<uint64_t>(st.st_size);
}

TEST(CrashRecoveryTest, Kill9AtRandomizedPointsLosesNoAckedWrite) {
  const std::string base = ::testing::TempDir() + "nblb_kill9_" +
                           std::to_string(::getpid());
  // Deterministic (seed, kill-delay-ms) schedule covering early kills
  // (load phase, first checkpoints), steady state, and late kills.
  const struct {
    uint64_t seed;
    int kill_delay_ms;
  } kIterations[] = {{11, 25},  {23, 60},  {37, 110},
                     {51, 170}, {73, 240}, {97, 330}};

  int iteration = 0;
  for (const auto& it : kIterations) {
    SCOPED_TRACE("iteration " + std::to_string(iteration) + " seed " +
                 std::to_string(it.seed));
    const std::string prefix = base + "_it" + std::to_string(iteration);
    const std::string intents_path = prefix + ".intents";
    const std::string acks_path = prefix + ".acks";
    ++iteration;

    const pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
      RunChildWorkload(prefix, it.seed, intents_path, acks_path);
    }
    // Start the kill clock only once the child is actually serving (first
    // ack recorded) — sanitizer builds can take a while to open the engine,
    // and a kill before any ack verifies nothing.
    for (int spin = 0; spin < 20000 && FileSizeOrZero(acks_path) == 0;
         ++spin) {
      ::usleep(1000);
    }
    ::usleep(static_cast<useconds_t>(it.kill_delay_ms) * 1000);
    ::kill(child, SIGKILL);
    int wstatus = 0;
    ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
    if (WIFEXITED(wstatus)) {
      // The child outlived the workload (or failed): only a clean "ran dry"
      // is acceptable, and then the run is still verifiable below.
      ASSERT_EQ(WEXITSTATUS(wstatus), 0) << "child reported failure";
    } else {
      ASSERT_TRUE(WIFSIGNALED(wstatus));
      ASSERT_EQ(WTERMSIG(wstatus), SIGKILL);
    }

    const uint64_t n_ack = FileSizeOrZero(acks_path);
    const uint64_t n_intent = FileSizeOrZero(intents_path);
    ASSERT_GE(n_intent, n_ack);
    ASSERT_GT(n_ack, 0u) << "kill landed before any op acked; raise delay";

    // Rebuild the op-stream model: for every key, the last ACKED op index
    // and the set of admissible later (intended but unacked) states.
    std::map<uint64_t, int64_t> last_acked;       // key -> op index
    std::map<uint64_t, bool> acked_present;       // state after last acked
    std::vector<OpModel> ops(n_intent);
    uint64_t state = it.seed;
    for (uint64_t i = 0; i < n_intent; ++i) {
      ops[i] = NextOp(&state);
      if (i < n_ack) {
        last_acked[ops[i].key] = static_cast<int64_t>(i);
        acked_present[ops[i].key] = !ops[i].is_delete;
      }
    }

    // Reopen in-process and verify.
    ASSERT_OK_AND_ASSIGN(auto engine,
                         ShardedEngine::Open(HarnessOptions(prefix, false)));
    uint64_t recovered_shards = 0;
    for (uint32_t s = 0; s < engine->num_shards(); ++s) {
      if (engine->shard(s)->recovered()) ++recovered_shards;
      // Structural invariant: rebuilt index and row counter agree.
      EXPECT_EQ(engine->shard(s)->table()->index()->num_entries(),
                engine->shard(s)->rows());
    }
    EXPECT_GT(recovered_shards, 0u) << "kill-9 should not look clean";

    uint64_t live_rows = 0;
    for (uint64_t key = 0; key < kKeys; ++key) {
      auto got = engine->Get(key);
      const int64_t acked_idx =
          last_acked.count(key) ? last_acked[key] : -1;
      if (got.ok()) {
        ++live_rows;
        const Row row = std::move(got).ValueOrDie();
        const uint64_t seq = static_cast<uint64_t>(row[2].AsInt());
        // The row must be the effect of a real put on this key...
        ASSERT_LT(seq, n_intent) << "key " << key;
        ASSERT_EQ(ops[seq].key, key) << "seq " << seq;
        ASSERT_FALSE(ops[seq].is_delete) << "seq " << seq;
        EXPECT_EQ(row[1].AsString(), "s" + std::to_string(seq) + "-k" +
                                         std::to_string(key));
        // ...and at least as new as the last acked op on the key: an older
        // surviving state would mean an acked write was lost.
        ASSERT_GE(static_cast<int64_t>(seq), acked_idx)
            << "key " << key << ": recovered seq " << seq
            << " predates last acked op " << acked_idx;
      } else {
        ASSERT_TRUE(got.status().IsNotFound()) << got.status().ToString();
        if (acked_idx >= 0 && acked_present[key]) {
          // Acked state says present; absence is only admissible if some
          // unacked (intended) delete could have raced past the kill.
          bool unacked_delete = false;
          for (uint64_t i = static_cast<uint64_t>(acked_idx) + 1;
               i < n_intent; ++i) {
            if (ops[i].key == key && ops[i].is_delete) {
              unacked_delete = true;
              break;
            }
          }
          ASSERT_TRUE(unacked_delete)
              << "key " << key << ": acked put at op " << acked_idx
              << " vanished with no intended delete after it";
        }
      }
    }
    uint64_t engine_rows = 0;
    for (uint32_t s = 0; s < engine->num_shards(); ++s) {
      engine_rows += engine->shard(s)->rows();
    }
    EXPECT_EQ(engine_rows, live_rows);

    // The recovered engine serves writes: touch a fresh key, read it back.
    ASSERT_OK(engine->Insert(kKeys + 1, MakeRow(kKeys + 1, 999999)));
    ASSERT_OK_AND_ASSIGN(Row fresh, engine->Get(kKeys + 1));
    EXPECT_EQ(fresh[2].AsInt(), 999999);

    // Clean close, then one more reopen: must take the clean path.
    engine.reset();
    ASSERT_OK_AND_ASSIGN(engine,
                         ShardedEngine::Open(HarnessOptions(prefix, false)));
    for (uint32_t s = 0; s < engine->num_shards(); ++s) {
      EXPECT_FALSE(engine->shard(s)->recovered())
          << "clean close still looked like a crash";
    }
    ASSERT_OK(engine->Get(kKeys + 1).status());
    engine.reset();

    RemoveShardFiles(prefix, 2);
    std::remove(intents_path.c_str());
    std::remove(acks_path.c_str());
  }
}

}  // namespace
}  // namespace nblb
