// Async serving-path tests: Submit/Ticket lifecycle, completion callbacks
// vs write segmentation, adaptive coalesce-window growth under a bursty
// multi-threaded submitter, and a regression check that the blocking
// Execute wrapper produces the exact per-slot result ordering the old
// synchronous Execute defined. Run under TSan in CI.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "shard/sharded_engine.h"
#include "test_util.h"

namespace nblb {
namespace {

Schema SmallSchema() {
  return Schema({{"id", TypeId::kInt64, 0},
                 {"payload", TypeId::kVarchar, 32},
                 {"score", TypeId::kInt64, 0}});
}

Row MakeRow(uint64_t id) {
  return {Value::Int64(static_cast<int64_t>(id)),
          Value::Varchar("payload-" + std::to_string(id)),
          Value::Int64(static_cast<int64_t>(id * 7 + 3))};
}

ShardedEngineOptions SmallOptions(const std::string& tag, uint32_t shards,
                                  uint32_t workers = 0) {
  ShardedEngineOptions opts;
  opts.num_shards = shards;
  opts.num_workers = workers;
  opts.path_prefix = ::testing::TempDir() + "nblb_async_" + tag + "_" +
                     std::to_string(::getpid());
  opts.page_size = 4096;
  opts.buffer_pool_frames_per_shard = 512;
  opts.schema = SmallSchema();
  opts.table_options.key_columns = {0};
  return opts;
}

void Cleanup(const ShardedEngineOptions& opts) {
  for (uint32_t i = 0; i < opts.num_shards; ++i) {
    std::remove(
        (opts.path_prefix + ".shard" + std::to_string(i) + ".db").c_str());
  }
}

TEST(ShardAsyncTest, SubmitCompletesAndWaitIsIdempotent) {
  auto opts = SmallOptions("lifecycle", 4);
  ASSERT_OK_AND_ASSIGN(auto engine, ShardedEngine::Open(opts));

  RequestBatch inserts;
  for (uint64_t id = 0; id < 500; ++id) {
    inserts.push_back(Request::Insert(id, MakeRow(id)));
  }
  std::atomic<int> fired{0};
  auto ticket = engine->Submit(std::move(inserts),
                               [&](const BatchResult& result) {
                                 EXPECT_EQ(result.results.size(), 500u);
                                 EXPECT_TRUE(result.all_ok());
                                 fired.fetch_add(1);
                               });
  ticket->Wait();
  // Wait() returning implies the callback already ran (completion-pool
  // dispatch marks the ticket done only after the callback returns).
  EXPECT_EQ(fired.load(), 1);
  // Wait after completion returns immediately; TryWait agrees.
  ticket->Wait();
  EXPECT_TRUE(ticket->TryWait());
  EXPECT_EQ(ticket->result().results.size(), 500u);
  EXPECT_TRUE(ticket->result().all_ok());
  EXPECT_EQ(fired.load(), 1) << "callback fires exactly once";

  // TryWait on an eventually-completing ticket flips to true.
  RequestBatch gets;
  for (uint64_t id = 0; id < 500; ++id) gets.push_back(Request::Get(id));
  auto get_ticket = engine->Submit(std::move(gets));
  while (!get_ticket->TryWait()) {
    std::this_thread::yield();
  }
  EXPECT_TRUE(get_ticket->result().all_ok());
  for (uint64_t id = 0; id < 500; ++id) {
    EXPECT_EQ(get_ticket->result().results[id].row, MakeRow(id));
  }

  const auto stats = engine->engine_stats();
  EXPECT_EQ(stats.async_submits, 1u);  // only the callback-carrying submit
  Cleanup(opts);
}

TEST(ShardAsyncTest, CompletionSeesWritesFromEarlierTicketsSameShard) {
  // Write segmentation vs completion ordering: tickets queued to the same
  // shard execute in queue order, and a get coalesced into a later group
  // must observe every earlier write — even when the insert and the read
  // were submitted asynchronously back-to-back without waiting.
  auto opts = SmallOptions("ordering", 1);  // one shard: total order
  opts.num_completion_threads = 1;          // FIFO callback dispatch
  ASSERT_OK_AND_ASSIGN(auto engine, ShardedEngine::Open(opts));

  std::vector<ShardedEngine::TicketPtr> tickets;
  std::mutex order_mu;
  std::vector<int> completion_order;
  for (int round = 0; round < 50; ++round) {
    const uint64_t id = 1000 + round;
    RequestBatch write_then_read;
    write_then_read.push_back(Request::Insert(id, MakeRow(id)));
    write_then_read.push_back(Request::Get(id));  // same batch, after write
    tickets.push_back(engine->Submit(
        std::move(write_then_read), [&, round](const BatchResult& result) {
          std::lock_guard<std::mutex> lk(order_mu);
          completion_order.push_back(round);
          EXPECT_TRUE(result.all_ok()) << "round " << round;
        }));

    RequestBatch read_prev;  // separate ticket reading this round's insert
    read_prev.push_back(Request::Get(id));
    tickets.push_back(engine->Submit(std::move(read_prev)));
  }
  for (auto& t : tickets) t->Wait();

  for (int round = 0; round < 50; ++round) {
    const uint64_t id = 1000 + round;
    // In-batch: the get after the insert saw the write (segmentation).
    const auto& same_batch = tickets[2 * round]->result();
    ASSERT_OK(same_batch.results[1].status);
    EXPECT_EQ(same_batch.results[1].row, MakeRow(id));
    // Cross-ticket, same shard: the later ticket saw the earlier write.
    const auto& cross = tickets[2 * round + 1]->result();
    ASSERT_OK(cross.results[0].status);
    EXPECT_EQ(cross.results[0].row, MakeRow(id));
  }
  // A single completion thread dispatches callbacks in completion order,
  // which on one shard is submission order.
  ASSERT_EQ(completion_order.size(), 50u);
  for (int round = 0; round < 50; ++round) {
    EXPECT_EQ(completion_order[round], round);
  }
  Cleanup(opts);
}

TEST(ShardAsyncTest, AdaptiveWindowGrowsUnderBurstySubmitters) {
  // 8 threads firing async submissions at one shard/worker: the backlog
  // must outrun the worker, the coalesce window must grow past 1, and not
  // a single request may be lost or misordered.
  auto opts = SmallOptions("burst", 1, /*workers=*/1);
  opts.min_coalesce_window = 1;
  opts.max_coalesce_window = 16;
  opts.drain_deadline_us = 200;  // let the worker top groups up under load
  ASSERT_OK_AND_ASSIGN(auto engine, ShardedEngine::Open(opts));

  constexpr int kThreads = 8;
  constexpr int kTicketsPerThread = 60;
  constexpr int kOpsPerTicket = 24;
  constexpr uint64_t kIdsPerRound =
      uint64_t{kThreads} * kTicketsPerThread * kOpsPerTicket;
  // A single burst almost always builds a backlog against one worker, but
  // a fast machine could in principle keep draining at depth 1; retry a
  // bounded number of rounds until coalescing is observed so the assertion
  // is about the mechanism, not about scheduler luck.
  constexpr int kMaxRounds = 10;

  std::atomic<uint64_t> callbacks{0};
  uint64_t rounds_run = 0;
  ShardStatsSnapshot stats;
  for (int round = 0; round < kMaxRounds; ++round) {
    rounds_run = round + 1;
    std::vector<std::thread> submitters;
    std::vector<std::vector<ShardedEngine::TicketPtr>> tickets(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      submitters.emplace_back([&, t, round] {
        const uint64_t base =
            static_cast<uint64_t>(round) * kIdsPerRound +
            static_cast<uint64_t>(t) * kTicketsPerThread * kOpsPerTicket;
        for (int k = 0; k < kTicketsPerThread; ++k) {
          RequestBatch batch;
          for (int i = 0; i < kOpsPerTicket; ++i) {
            const uint64_t id =
                base + static_cast<uint64_t>(k) * kOpsPerTicket + i;
            batch.push_back(Request::Insert(id, MakeRow(id)));
          }
          // Fire-and-forget: no waiting between submissions, so queue
          // depth at the single shard is the whole point of the test.
          tickets[t].push_back(engine->Submit(
              std::move(batch),
              [&](const BatchResult&) { callbacks.fetch_add(1); }));
        }
      });
    }
    for (auto& s : submitters) s.join();
    for (auto& per_thread : tickets) {
      for (auto& ticket : per_thread) {
        ticket->Wait();
        EXPECT_TRUE(ticket->result().all_ok());
      }
    }
    stats = engine->ShardStatsOf(0);
    if (stats.coalesced.CountAtLeast(2) > 0) break;
  }
  EXPECT_EQ(callbacks.load(),
            rounds_run * uint64_t{kThreads} * kTicketsPerThread);

  EXPECT_EQ(stats.inserts, rounds_run * kIdsPerRound);
  EXPECT_EQ(stats.sub_batches,
            rounds_run * uint64_t{kThreads} * kTicketsPerThread);
  // Coalescing engaged: strictly fewer service groups than sub-batches,
  // i.e. at least one group merged >= 2 queued sub-batches.
  EXPECT_LT(stats.coalesced_groups, stats.sub_batches);
  EXPECT_GT(stats.coalesced.CountAtLeast(2), 0u)
      << "no group coalesced >= 2 sub-batches in " << rounds_run
      << " burst rounds";
  EXPECT_GE(stats.queue_depth.ApproxMax(), 2u)
      << "the burst never built a backlog";

  // Every row from every round is durable and correct after the burst.
  const uint64_t total = rounds_run * kIdsPerRound;
  RequestBatch verify;
  for (uint64_t id = 0; id < total; ++id) {
    verify.push_back(Request::Get(id));
  }
  BatchResult all = engine->Execute(verify);
  for (uint64_t id = 0; id < total; ++id) {
    ASSERT_OK(all.results[id].status);
    ASSERT_EQ(all.results[id].row, MakeRow(id));
  }
  Cleanup(opts);
}

TEST(ShardAsyncTest, ExecuteWrapperKeepsExactResultOrdering) {
  // Regression: Execute is now Submit + Wait. Its contract is unchanged —
  // results[i] corresponds to batch[i] for every i, across shards, for a
  // mixed batch with interleaved kinds, duplicate-id failures, and misses.
  auto opts = SmallOptions("wrapper", 4, /*workers=*/2);
  ASSERT_OK_AND_ASSIGN(auto engine, ShardedEngine::Open(opts));

  RequestBatch mixed;
  // [0, 100): inserts of even ids 0..198.
  for (uint64_t id = 0; id < 200; id += 2) {
    mixed.push_back(Request::Insert(id, MakeRow(id)));
  }
  // [100, 200): gets of the same ids (same batch, after the writes).
  for (uint64_t id = 0; id < 200; id += 2) {
    mixed.push_back(Request::Get(id));
  }
  // [200, 300): gets of odd ids — all NotFound.
  for (uint64_t id = 1; id < 200; id += 2) {
    mixed.push_back(Request::Get(id));
  }
  // [300]: duplicate insert — AlreadyExists exactly here.
  mixed.push_back(Request::Insert(42, MakeRow(42)));
  // [301]: update then [302]: delete then [303]: get of the deleted id.
  Row new_44 = {Value::Int64(44), Value::Varchar("updated-44"),
                Value::Int64(4400)};
  mixed.push_back(Request::Update(44, new_44));
  mixed.push_back(Request::Delete(46));
  mixed.push_back(Request::Get(46));

  BatchResult result = engine->Execute(mixed);
  ASSERT_EQ(result.results.size(), mixed.size());
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_TRUE(result.results[i].status.ok()) << "insert slot " << i;
  }
  for (size_t i = 100; i < 200; ++i) {
    ASSERT_TRUE(result.results[i].status.ok()) << "get slot " << i;
    EXPECT_EQ(result.results[i].row, MakeRow((i - 100) * 2)) << "slot " << i;
  }
  for (size_t i = 200; i < 300; ++i) {
    EXPECT_TRUE(result.results[i].status.IsNotFound()) << "slot " << i;
  }
  EXPECT_TRUE(result.results[300].status.IsAlreadyExists());
  EXPECT_OK(result.results[301].status);
  EXPECT_OK(result.results[302].status);
  EXPECT_TRUE(result.results[303].status.IsNotFound())
      << "get after delete of the same id, same batch";

  // The update really replaced the non-key columns of id 44.
  ASSERT_OK_AND_ASSIGN(Row updated, engine->Get(44));
  EXPECT_EQ(updated[1], new_44[1]);
  EXPECT_EQ(updated[2], new_44[2]);

  // Execute agrees slot-for-slot with SubmitRef + Wait on an identical
  // batch (SubmitRef: `reads` outlives the Wait, no copy).
  RequestBatch reads;
  for (uint64_t id = 0; id < 200; ++id) reads.push_back(Request::Get(id));
  BatchResult via_execute = engine->Execute(reads);
  auto ticket = engine->SubmitRef(reads);
  ticket->Wait();
  const BatchResult& via_submit = ticket->result();
  ASSERT_EQ(via_execute.results.size(), via_submit.results.size());
  for (size_t i = 0; i < via_execute.results.size(); ++i) {
    EXPECT_EQ(via_execute.results[i].status.code(),
              via_submit.results[i].status.code())
        << "slot " << i;
    EXPECT_EQ(via_execute.results[i].row, via_submit.results[i].row)
        << "slot " << i;
    EXPECT_EQ(via_execute.results[i].shard, via_submit.results[i].shard)
        << "slot " << i;
  }
  Cleanup(opts);
}

TEST(ShardAsyncTest, InlineCompletionWithoutPool) {
  // num_completion_threads = 0: callbacks run inline on the finishing
  // worker; Wait/TryWait still work.
  auto opts = SmallOptions("inline", 2);
  opts.num_completion_threads = 0;
  ASSERT_OK_AND_ASSIGN(auto engine, ShardedEngine::Open(opts));

  std::atomic<int> fired{0};
  RequestBatch batch;
  for (uint64_t id = 0; id < 64; ++id) {
    batch.push_back(Request::Insert(id, MakeRow(id)));
  }
  auto ticket = engine->Submit(std::move(batch),
                               [&](const BatchResult&) { fired.fetch_add(1); });
  ticket->Wait();
  EXPECT_EQ(fired.load(), 1);
  EXPECT_TRUE(ticket->result().all_ok());
  Cleanup(opts);
}

TEST(ShardAsyncTest, RoutingFailuresCompleteWithoutWorkers) {
  // A batch whose every request fails routing never reaches a shard queue;
  // the ticket (and callback) must still complete.
  auto opts = SmallOptions("routefail", 2);
  ASSERT_OK_AND_ASSIGN(
      auto engine,
      ShardedEngine::Open(opts, std::make_unique<TableRouter>()));

  std::atomic<int> fired{0};
  RequestBatch lookups;  // TableRouter has learned nothing: all unroutable
  for (uint64_t id = 0; id < 10; ++id) {
    lookups.push_back(Request::Get(id));
  }
  auto ticket = engine->Submit(std::move(lookups),
                               [&](const BatchResult& result) {
                                 for (const auto& r : result.results) {
                                   EXPECT_TRUE(r.status.IsNotFound());
                                 }
                                 fired.fetch_add(1);
                               });
  ticket->Wait();
  EXPECT_EQ(fired.load(), 1);
  EXPECT_EQ(engine->engine_stats().routing_failures, 10u);
  Cleanup(opts);
}

}  // namespace
}  // namespace nblb
