// Async miss-I/O pipeline tests: DiskManager::SubmitReads/WaitReads/
// PollCompletions on both backends (io_uring when the runtime allows it,
// and the preadv worker-thread fallback — which is ALWAYS exercised here,
// regardless of liburing/kernel availability, per the forced-backend knob),
// plus injected read failures: frames end up failed (not valid), the pool
// recovers, and no pins leak.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "index/btree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "test_util.h"

namespace nblb {
namespace {

using nblb::testing::MakeStack;
using nblb::testing::Stack;
using nblb::testing::TempFile;

Stack MakeStackWithBackend(const std::string& tag, IoBackend backend,
                           size_t page_size = 4096, size_t frames = 64) {
  Stack s;
  s.file.reset(new TempFile(tag));
  AsyncIoOptions aio;
  aio.backend = backend;
  s.disk.reset(new DiskManager(s.file->path(), page_size, nullptr,
                               /*direct_io=*/false, aio));
  EXPECT_TRUE(s.disk->Open().ok());
  s.bp.reset(new BufferPool(s.disk.get(), frames));
  return s;
}

std::vector<PageId> SeedPages(Stack& s, int n) {
  std::vector<PageId> ids;
  for (int i = 0; i < n; ++i) {
    auto g = s.bp->NewPage();
    EXPECT_TRUE(g.ok());
    std::memset(g->data(), 'a' + (g->id() % 26), 64);
    g->MarkDirty();
    ids.push_back(g->id());
  }
  EXPECT_TRUE(s.bp->FlushAll().ok());
  EXPECT_TRUE(s.bp->EvictAll().ok());
  return ids;
}

// The backends under test: the fallback always, io_uring when this runtime
// actually came up with a ring (containers may seccomp-block it).
std::vector<IoBackend> BackendsToTest() {
  std::vector<IoBackend> backends = {IoBackend::kThreads};
  {
    TempFile probe("aio_probe");
    AsyncIoOptions aio;
    aio.backend = IoBackend::kUring;
    DiskManager disk(probe.path(), 4096, nullptr, false, aio);
    EXPECT_TRUE(disk.Open().ok());
    if (disk.io_backend_in_use() == IoBackend::kUring) {
      backends.push_back(IoBackend::kUring);
    }
  }
  return backends;
}

TEST(AsyncIoTest, ForcedFallbackNeverUsesTheRing) {
  Stack s = MakeStackWithBackend("aio_forced", IoBackend::kThreads);
  EXPECT_EQ(s.disk->io_backend_in_use(), IoBackend::kThreads);
  std::vector<PageId> ids = SeedPages(s, 8);
  ASSERT_OK_AND_ASSIGN(std::vector<PageGuard> guards, s.bp->FetchPages(ids));
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(guards[i].data()[0], 'a' + static_cast<char>(ids[i] % 26));
  }
}

TEST(AsyncIoTest, SubmitWaitMatchesSynchronousReads) {
  for (IoBackend backend : BackendsToTest()) {
    Stack s = MakeStackWithBackend("aio_rw", backend);
    std::vector<PageId> ids = SeedPages(s, 24);

    // Non-contiguous subset: every other page, i.e. all runs have length 1
    // and only the async overlap serves them in parallel.
    std::vector<PageId> want;
    for (size_t i = 0; i < ids.size(); i += 2) want.push_back(ids[i]);
    std::vector<std::vector<char>> bufs(want.size(),
                                        std::vector<char>(4096));
    std::vector<char*> dsts;
    for (auto& b : bufs) dsts.push_back(b.data());

    s.disk->ResetStats();
    DiskManager::IoTicket ticket;
    ASSERT_OK(s.disk->SubmitReads(want.data(), dsts.data(), want.size(),
                                  &ticket));
    EXPECT_TRUE(ticket.valid());
    ASSERT_OK(s.disk->WaitReads(&ticket));
    EXPECT_FALSE(ticket.valid());

    const DiskStats st = s.disk->stats();
    EXPECT_EQ(st.reads, want.size());
    EXPECT_EQ(st.async_reads, want.size());
    EXPECT_EQ(st.async_batches, 1u);
    for (size_t i = 0; i < want.size(); ++i) {
      std::vector<char> expect(4096);
      ASSERT_OK(s.disk->ReadPage(want[i], expect.data()));
      EXPECT_EQ(std::memcmp(bufs[i].data(), expect.data(), 4096), 0)
          << "page " << want[i] << " backend "
          << static_cast<int>(backend);
    }
  }
}

TEST(AsyncIoTest, PollCompletionsEventuallyReportsDone) {
  for (IoBackend backend : BackendsToTest()) {
    Stack s = MakeStackWithBackend("aio_poll", backend);
    std::vector<PageId> ids = SeedPages(s, 6);
    std::vector<std::vector<char>> bufs(ids.size(), std::vector<char>(4096));
    std::vector<char*> dsts;
    for (auto& b : bufs) dsts.push_back(b.data());
    DiskManager::IoTicket ticket;
    ASSERT_OK(s.disk->SubmitReads(ids.data(), dsts.data(), ids.size(),
                                  &ticket));
    Status st;
    while (!s.disk->PollCompletions(&ticket, &st)) {
    }
    ASSERT_OK(st);
    EXPECT_FALSE(ticket.valid());
    for (size_t i = 0; i < ids.size(); ++i) {
      EXPECT_EQ(bufs[i][0], 'a' + static_cast<char>(ids[i] % 26));
    }
  }
}

TEST(AsyncIoTest, SubmitValidatesIdsUpFront) {
  for (IoBackend backend : BackendsToTest()) {
    Stack s = MakeStackWithBackend("aio_oor", backend);
    SeedPages(s, 2);
    std::vector<char> buf(4096);
    char* dst = buf.data();
    const PageId bogus = 999;
    DiskManager::IoTicket ticket;
    EXPECT_TRUE(s.disk->SubmitReads(&bogus, &dst, 1, &ticket)
                    .IsOutOfRange());
    EXPECT_FALSE(ticket.valid());
  }
}

// Injected device failure: shrink the backing file behind the DiskManager's
// back, so in-flight async reads come up short. The batch must fail with
// IOError, the claimed frames must be marked failed (not valid), no pins
// may leak, and once the file is restored the same pages fetch fine.
TEST(AsyncIoTest, ReadErrorMarksFramesFailedAndPoolRecovers) {
  for (IoBackend backend : BackendsToTest()) {
    Stack s = MakeStackWithBackend("aio_fail", backend, 4096, 32);
    std::vector<PageId> ids = SeedPages(s, 12);

    // Chop the file to 4 pages; the DiskManager still believes in 12.
    ASSERT_EQ(::truncate(s.file->path().c_str(), 4 * 4096), 0);

    auto r = s.bp->FetchPages(ids);
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.status().IsIOError()) << r.status().ToString();

    // The pool recovered: nothing left pinned, and the surviving prefix is
    // still servable.
    ASSERT_OK(s.bp->EvictAll());
    {
      ASSERT_OK_AND_ASSIGN(PageGuard g, s.bp->FetchPage(ids[0]));
      EXPECT_EQ(g.data()[0], 'a' + static_cast<char>(ids[0] % 26));
    }

    // Restore the missing tail (WritePage re-extends: the manager's page
    // count never shrank) and verify a full batch now succeeds — the
    // failed frames healed and were reclaimed.
    std::vector<char> page(4096);
    for (size_t i = 4; i < ids.size(); ++i) {
      std::memset(page.data(), 'a' + static_cast<char>(ids[i] % 26), 64);
      ASSERT_OK(s.disk->WritePage(ids[i], page.data()));
    }
    ASSERT_OK(s.bp->EvictAll());
    ASSERT_OK_AND_ASSIGN(std::vector<PageGuard> guards,
                         s.bp->FetchPages(ids));
    for (size_t i = 0; i < ids.size(); ++i) {
      EXPECT_EQ(guards[i].data()[0], 'a' + static_cast<char>(ids[i] % 26));
    }
  }
}

// The same failure injected under the split Start/Finish API that the
// B+Tree descent uses: the error surfaces from FinishFetchPages and a
// subsequent fetch works after restore.
TEST(AsyncIoTest, StartFinishSurfacesAsyncErrorsAndRecovers) {
  for (IoBackend backend : BackendsToTest()) {
    Stack s = MakeStackWithBackend("aio_startfin", backend, 4096, 32);
    std::vector<PageId> ids = SeedPages(s, 8);
    ASSERT_EQ(::truncate(s.file->path().c_str(), 2 * 4096), 0);

    ASSERT_OK_AND_ASSIGN(BufferPool::BatchFetch bf,
                         s.bp->StartFetchPages(ids));
    auto r = s.bp->FinishFetchPages(std::move(bf));
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.status().IsIOError());

    std::vector<char> page(4096);
    for (size_t i = 2; i < ids.size(); ++i) {
      std::memset(page.data(), 'a' + static_cast<char>(ids[i] % 26), 64);
      ASSERT_OK(s.disk->WritePage(ids[i], page.data()));
    }
    ASSERT_OK_AND_ASSIGN(std::vector<PageGuard> guards,
                         s.bp->FetchPages(ids));
    for (size_t i = 0; i < ids.size(); ++i) {
      EXPECT_EQ(guards[i].data()[0], 'a' + static_cast<char>(ids[i] % 26));
    }
    for (auto& g : guards) g.Release();
    ASSERT_OK(s.bp->EvictAll());
  }
}

// Capacity-pressure stress: a tiny ring (queue_depth 4) with many threads
// submitting batches far larger than the CQ forces the submit path's
// in-flight cap loop constantly, racing it against concurrent waiters
// draining completions. Regression test for a deadlock where a submitter
// blocked in the cap loop could commit to waiting for completions after
// concurrent waiters had already drained every in-kernel op — leaving it
// asleep on its own unflushed sqes.
TEST(AsyncIoTest, CapacityPressureManyThreadsMakesProgress) {
  for (IoBackend backend : BackendsToTest()) {
    Stack s;
    s.file.reset(new TempFile("aio_pressure"));
    AsyncIoOptions aio;
    aio.backend = backend;
    aio.queue_depth = 4;
    s.disk.reset(new DiskManager(s.file->path(), 4096, nullptr,
                                 /*direct_io=*/false, aio));
    ASSERT_OK(s.disk->Open());
    s.bp.reset(new BufferPool(s.disk.get(), 64));
    std::vector<PageId> ids = SeedPages(s, 48);

    std::atomic<uint64_t> errors{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&, t] {
        std::vector<std::vector<char>> bufs(16, std::vector<char>(4096));
        for (int iter = 0; iter < 300; ++iter) {
          std::vector<PageId> want;
          std::vector<char*> dsts;
          for (size_t i = (t + iter) % 3; i < ids.size(); i += 3) {
            want.push_back(ids[i]);
            dsts.push_back(bufs[want.size() - 1].data());
            if (want.size() == bufs.size()) break;
          }
          DiskManager::IoTicket ticket;
          Status st =
              s.disk->SubmitReads(want.data(), dsts.data(), want.size(),
                                  &ticket);
          if (st.ok()) st = s.disk->WaitReads(&ticket);
          if (!st.ok()) {
            errors.fetch_add(1);
            continue;
          }
          for (size_t i = 0; i < want.size(); ++i) {
            if (bufs[i][0] != 'a' + static_cast<char>(want[i] % 26)) {
              errors.fetch_add(1);
            }
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(errors.load(), 0u) << "backend " << static_cast<int>(backend);
  }
}

std::string Key8(uint64_t k) {
  std::string key(8, '\0');
  for (int b = 0; b < 8; ++b) key[b] = static_cast<char>(k >> (56 - 8 * b));
  return key;
}

// The batched level descent must agree with per-key Get on a tree deep
// enough to have several internal levels, under both backends, with cold
// caches (so the descent's prefetch path actually reads).
TEST(AsyncIoTest, BTreeBatchedDescentMatchesPointLookups) {
  for (IoBackend backend : BackendsToTest()) {
    // Frames < file pages: the descent gate requires a non-resident file
    // (a fully resident pool never misses, so GetBatch stays chained).
    Stack s = MakeStackWithBackend("aio_btree", backend, 512, 128);
    BTreeOptions opts;
    opts.key_size = 8;
    ASSERT_OK_AND_ASSIGN(auto tree, BTree::Create(s.bp.get(), opts));
    for (uint64_t k = 0; k < 4000; k += 2) {
      ASSERT_OK(tree->Insert(Slice(Key8(k)), k + 7));
    }
    ASSERT_OK_AND_ASSIGN(BTreeStats tstats, tree->ComputeStats());
    ASSERT_GE(tstats.height, 3u) << "test needs a multi-level tree";

    std::vector<std::string> storage;
    for (uint64_t k = 0; k < 4200; k += 3) storage.push_back(Key8(k));
    storage.push_back(Key8(9999999));  // far past the end
    std::vector<Slice> keys(storage.begin(), storage.end());

    ASSERT_OK(s.bp->FlushAll());
    ASSERT_OK(s.bp->EvictAll());
    std::vector<Result<uint64_t>> out;
    ASSERT_OK(tree->GetBatch(keys, &out));
    ASSERT_EQ(out.size(), keys.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      auto oracle = tree->Get(keys[i]);
      ASSERT_EQ(out[i].ok(), oracle.ok()) << "key index " << i;
      if (oracle.ok()) {
        EXPECT_EQ(*out[i], *oracle);
      } else {
        EXPECT_TRUE(out[i].status().IsNotFound());
      }
    }
  }
}

}  // namespace
}  // namespace nblb
