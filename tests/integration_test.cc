// End-to-end scenarios through the public Database API, mirroring the
// paper's two headline experiments at test scale.

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "exec/database.h"
#include "partition/clusterer.h"
#include "partition/partitioned_table.h"
#include "test_util.h"
#include "workload/wikipedia.h"

namespace nblb {
namespace {

using nblb::testing::TempFile;

// ---------------------------------------------------------------------------
// Scenario 1 (§2.1.4): page lookups through the name_title index cache.
// ---------------------------------------------------------------------------

TEST(IntegrationTest, WikipediaPageLookupsServeMostlyFromIndexCache) {
  TempFile f("int_wiki_cache");
  DatabaseOptions dbo;
  dbo.path = f.path();
  dbo.buffer_pool_frames = 4096;
  ASSERT_OK_AND_ASSIGN(auto db, Database::Open(dbo));

  WikipediaScale scale;
  scale.num_pages = 3000;
  scale.revisions_per_page = 2;
  WikipediaSynthesizer synth(scale);

  Schema schema = WikipediaSynthesizer::PageSchema();
  TableOptions topts;
  topts.key_columns = {*schema.FindColumn("page_namespace"),
                       *schema.FindColumn("page_title")};
  // The paper caches 4 additional fields.
  topts.cached_columns = {*schema.FindColumn("page_id"),
                          *schema.FindColumn("page_latest"),
                          *schema.FindColumn("page_is_redirect"),
                          *schema.FindColumn("page_len")};
  ASSERT_OK_AND_ASSIGN(Table * page, db->CreateTable("page", schema, topts));
  for (const Row& row : synth.pages()) {
    ASSERT_OK(page->Insert(row));
  }

  const std::vector<size_t> proj = {*schema.FindColumn("page_id"),
                                    *schema.FindColumn("page_latest")};
  const auto trace = synth.PageLookupTrace(20000);
  for (uint64_t pidx : trace) {
    const Row& p = synth.pages()[pidx];
    ASSERT_OK_AND_ASSIGN(
        Row r, page->LookupProjected({p[1], p[2]}, proj));
    // Correctness on every single lookup: page_id and page_latest.
    ASSERT_EQ(r[0].AsInt(), p[0].AsInt());
    ASSERT_EQ(r[1].AsInt(), p[9].AsInt());
  }
  // The zipf-skewed trace must be answered mostly from the index cache.
  const TableStats& st = page->stats();
  const double cache_share =
      static_cast<double>(st.answered_from_cache) / st.lookups;
  EXPECT_GT(cache_share, 0.5)
      << "answered_from_cache=" << st.answered_from_cache
      << " lookups=" << st.lookups;
  EXPECT_EQ(st.answered_from_cache + st.heap_fetches, st.lookups);
}

TEST(IntegrationTest, CacheKeepsAnsweringCorrectlyUnderUpdates) {
  TempFile f("int_updates");
  DatabaseOptions dbo;
  dbo.path = f.path();
  dbo.buffer_pool_frames = 2048;
  ASSERT_OK_AND_ASSIGN(auto db, Database::Open(dbo));

  Schema schema({{"id", TypeId::kInt64, 0},
                 {"counter", TypeId::kInt64, 0},
                 {"pad", TypeId::kChar, 64}});
  TableOptions topts;
  topts.key_columns = {0};
  topts.cached_columns = {1};
  ASSERT_OK_AND_ASSIGN(Table * t, db->CreateTable("t", schema, topts));
  constexpr int64_t kN = 500;
  for (int64_t i = 0; i < kN; ++i) {
    ASSERT_OK(t->Insert({Value::Int64(i), Value::Int64(0), Value::Char("p")}));
  }
  // Interleave cached lookups with updates; the cache must never serve a
  // stale counter.
  std::vector<int64_t> truth(kN, 0);
  Rng rng(11);
  for (int op = 0; op < 20000; ++op) {
    const int64_t id = static_cast<int64_t>(rng.Uniform(kN));
    if (rng.Bernoulli(0.2)) {
      truth[id]++;
      ASSERT_OK(t->UpdateByKey({Value::Int64(id)},
                               {Value::Int64(id), Value::Int64(truth[id]),
                                Value::Char("p")}));
    } else {
      ASSERT_OK_AND_ASSIGN(Row r,
                           t->LookupProjected({Value::Int64(id)}, {1}));
      ASSERT_EQ(r[0].AsInt(), truth[id]) << "stale cached counter for " << id;
    }
  }
  // With 20% updates the cache still contributes (sanity, not a tight bound).
  EXPECT_GT(t->stats().lookups, 0u);
}

// ---------------------------------------------------------------------------
// Scenario 2 (§3.1): revision clustering and hot partitioning.
// ---------------------------------------------------------------------------

TEST(IntegrationTest, RevisionHotPartitionReducesBufferPoolMisses) {
  TempFile f("int_revision");
  DatabaseOptions dbo;
  dbo.path = f.path();
  dbo.page_size = 4096;
  dbo.buffer_pool_frames = 128;  // deliberately small: the full data set
                                 // thrashes, the hot partition fits
  ASSERT_OK_AND_ASSIGN(auto db, Database::Open(dbo));

  WikipediaScale scale;
  scale.num_pages = 800;
  scale.revisions_per_page = 20;
  WikipediaSynthesizer synth(scale);

  Schema schema = WikipediaSynthesizer::RevisionSchema();
  TableOptions topts;
  topts.key_columns = {0};  // rev_id
  topts.cached_columns = {};
  topts.enable_index_cache = false;  // isolate the partitioning effect
  ASSERT_OK_AND_ASSIGN(Table * rev, db->CreateTable("revision", schema, topts));
  for (const Row& row : synth.revisions()) {
    ASSERT_OK(rev->Insert(row));
  }

  std::unordered_set<std::string> hot_keys;
  for (int64_t id : synth.latest_revision_ids()) {
    hot_keys.insert(*rev->key_codec().EncodeValues({Value::Int64(id)}));
  }
  ASSERT_OK_AND_ASSIGN(auto pt, PartitionedTable::BuildFromTable(
                                    db->buffer_pool(), rev, hot_keys));

  const auto trace = synth.RevisionLookupTrace(4000, 0.999);

  auto run = [&](auto&& lookup) {
    ASSERT_OK(db->buffer_pool()->EvictAll());
    db->buffer_pool()->ResetStats();
    for (int64_t id : trace) {
      lookup(id);
    }
  };

  double misses_unclustered = 0, misses_partitioned = 0;
  run([&](int64_t id) {
    auto r = rev->LookupProjected({Value::Int64(id)}, {1});
    ASSERT_TRUE(r.ok());
  });
  misses_unclustered = db->buffer_pool()->stats().misses;

  run([&](int64_t id) {
    auto r = pt->LookupProjected({Value::Int64(id)}, {1});
    ASSERT_TRUE(r.ok());
  });
  misses_partitioned = db->buffer_pool()->stats().misses;

  EXPECT_LT(misses_partitioned * 2, misses_unclustered)
      << "partitioned: " << misses_partitioned
      << " unclustered: " << misses_unclustered;
}

TEST(IntegrationTest, ClusteringImprovesHeapLocalityForHotTrace) {
  TempFile f("int_cluster");
  DatabaseOptions dbo;
  dbo.path = f.path();
  dbo.page_size = 4096;
  dbo.buffer_pool_frames = 4096;
  ASSERT_OK_AND_ASSIGN(auto db, Database::Open(dbo));

  WikipediaScale scale;
  scale.num_pages = 400;
  scale.revisions_per_page = 20;
  WikipediaSynthesizer synth(scale);

  Schema schema = WikipediaSynthesizer::RevisionSchema();
  TableOptions topts;
  topts.key_columns = {0};
  topts.enable_index_cache = false;
  ASSERT_OK_AND_ASSIGN(Table * rev, db->CreateTable("revision", schema, topts));
  for (const Row& row : synth.revisions()) {
    ASSERT_OK(rev->Insert(row));
  }

  // Pages holding hot tuples before clustering.
  auto hot_page_count = [&]() {
    std::unordered_set<PageId> pages;
    for (int64_t id : synth.latest_revision_ids()) {
      auto enc = rev->key_codec().EncodeValues({Value::Int64(id)});
      auto tid = rev->index()->Get(Slice(*enc));
      EXPECT_TRUE(tid.ok());
      pages.insert(Rid::FromU64(*tid).page);
    }
    return pages.size();
  };
  const size_t before = hot_page_count();

  std::vector<std::vector<Value>> hot_keys;
  for (int64_t id : synth.latest_revision_ids()) {
    hot_keys.push_back({Value::Int64(id)});
  }
  ASSERT_OK(
      Clusterer::ClusterHotTuples(rev, hot_keys, 1.0).status());
  const size_t after = hot_page_count();
  // After clustering, hot tuples pack as densely as the page permits.
  const size_t per_page = rev->heap()->SlotsPerPage();
  const size_t min_pages = (hot_keys.size() + per_page - 1) / per_page;
  EXPECT_LE(after, min_pages + 1);
  EXPECT_LT(after * 2, before);

  // Everything still answers correctly post-clustering.
  for (int64_t id : synth.latest_revision_ids()) {
    ASSERT_OK_AND_ASSIGN(Row r, rev->GetByKey({Value::Int64(id)}));
    ASSERT_EQ(r[0].AsInt(), id);
  }
}

}  // namespace
}  // namespace nblb
