// Durability unit tests: superblock double-buffering (torn-slot recovery),
// WAL framing round trips, torn-tail truncation, the sticky failure model
// under RLIMIT_FSIZE fault injection, log reset, and the engine-level ack
// contract (a failed group commit fails the group's write tickets).

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "shard/sharded_engine.h"
#include "storage/superblock.h"
#include "storage/wal.h"
#include "test_util.h"

namespace nblb {
namespace {

using nblb::testing::TempFile;

// ---- Superblock -------------------------------------------------------------

SuperblockData SampleSb(uint64_t version) {
  SuperblockData sb;
  sb.version = version;
  sb.checkpoint_lsn = version * 100;
  sb.page_size = 4096;
  sb.num_pages = 17;
  sb.heap_first_page = 2;
  sb.btree_meta_page = 5;
  sb.semid_partition_bits = 6;
  sb.clean_shutdown = (version % 2) == 0;
  sb.reuse_free_slots = true;
  sb.enable_index_cache = false;
  sb.key_columns = {0};
  sb.cached_columns = {2, 3};
  sb.columns = {{"id", TypeId::kInt64, 0},
                {"title", TypeId::kVarchar, 48},
                {"score", TypeId::kInt64, 0},
                {"flags", TypeId::kInt32, 0}};
  return sb;
}

TEST(SuperblockTest, MissingFileIsNotFound) {
  TempFile file("sb_missing");
  auto read = Superblock::Read(Superblock::PathFor(file.path()));
  EXPECT_TRUE(read.status().IsNotFound());
}

TEST(SuperblockTest, RoundTripAllFields) {
  TempFile file("sb_rt");
  const std::string sb_path = Superblock::PathFor(file.path());
  const SuperblockData in = SampleSb(3);
  ASSERT_OK(Superblock::Write(sb_path, in));
  ASSERT_OK_AND_ASSIGN(SuperblockData out, Superblock::Read(sb_path));
  EXPECT_EQ(out.version, in.version);
  EXPECT_EQ(out.checkpoint_lsn, in.checkpoint_lsn);
  EXPECT_EQ(out.page_size, in.page_size);
  EXPECT_EQ(out.num_pages, in.num_pages);
  EXPECT_EQ(out.heap_first_page, in.heap_first_page);
  EXPECT_EQ(out.btree_meta_page, in.btree_meta_page);
  EXPECT_EQ(out.semid_partition_bits, in.semid_partition_bits);
  EXPECT_EQ(out.clean_shutdown, in.clean_shutdown);
  EXPECT_EQ(out.reuse_free_slots, in.reuse_free_slots);
  EXPECT_EQ(out.enable_index_cache, in.enable_index_cache);
  EXPECT_EQ(out.key_columns, in.key_columns);
  EXPECT_EQ(out.cached_columns, in.cached_columns);
  ASSERT_EQ(out.columns.size(), in.columns.size());
  for (size_t i = 0; i < in.columns.size(); ++i) {
    EXPECT_EQ(out.columns[i].name, in.columns[i].name);
    EXPECT_EQ(out.columns[i].type, in.columns[i].type);
    EXPECT_EQ(out.columns[i].length, in.columns[i].length);
  }
  std::remove(sb_path.c_str());
}

TEST(SuperblockTest, HighestValidVersionWins) {
  TempFile file("sb_versions");
  const std::string sb_path = Superblock::PathFor(file.path());
  ASSERT_OK(Superblock::Write(sb_path, SampleSb(4)));
  ASSERT_OK(Superblock::Write(sb_path, SampleSb(5)));  // other slot
  ASSERT_OK_AND_ASSIGN(SuperblockData out, Superblock::Read(sb_path));
  EXPECT_EQ(out.version, 5u);
  std::remove(sb_path.c_str());
}

TEST(SuperblockTest, TornSlotFallsBackToPreviousVersion) {
  TempFile file("sb_torn");
  const std::string sb_path = Superblock::PathFor(file.path());
  ASSERT_OK(Superblock::Write(sb_path, SampleSb(6)));  // slot 0
  ASSERT_OK(Superblock::Write(sb_path, SampleSb(7)));  // slot 1
  // Tear version 7's slot: scribble over a byte mid-slot. The reader must
  // reject it on CRC and fall back to version 6 in the other slot.
  {
    std::fstream f(sb_path,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(4096 + 40);
    char junk = '\xa5';
    f.write(&junk, 1);
  }
  ASSERT_OK_AND_ASSIGN(SuperblockData out, Superblock::Read(sb_path));
  EXPECT_EQ(out.version, 6u);
  std::remove(sb_path.c_str());
}

TEST(SuperblockTest, BothSlotsCorruptIsCorruption) {
  TempFile file("sb_corrupt");
  const std::string sb_path = Superblock::PathFor(file.path());
  {
    std::ofstream f(sb_path, std::ios::binary);
    std::string junk(8192, '\x5a');
    f.write(junk.data(), static_cast<std::streamsize>(junk.size()));
  }
  auto read = Superblock::Read(sb_path);
  EXPECT_TRUE(read.status().IsCorruption()) << read.status().ToString();
  std::remove(sb_path.c_str());
}

// ---- WAL --------------------------------------------------------------------

WalOptions SmallWal() {
  WalOptions wo;
  wo.page_size = 4096;
  return wo;
}

struct ReplayedRecord {
  uint64_t lsn;
  Wal::Op op;
  uint64_t key;
  std::string payload;
};

std::vector<ReplayedRecord> Drain(const Wal& wal, uint64_t from_lsn = 0) {
  std::vector<ReplayedRecord> out;
  EXPECT_OK(wal.Replay(from_lsn, [&](const Wal::Record& rec) {
    out.push_back({rec.lsn, rec.op, rec.key,
                   std::string(rec.payload.data(), rec.payload.size())});
    return Status::OK();
  }));
  return out;
}

TEST(WalTest, AppendCommitReplayRoundTrip) {
  TempFile file("wal_rt");
  const std::string wal_path = Wal::PathFor(file.path());
  {
    ASSERT_OK_AND_ASSIGN(auto wal, Wal::Open(wal_path, SmallWal()));
    EXPECT_EQ(wal->next_lsn(), 1u);
    EXPECT_EQ(wal->durable_lsn(), 0u);
    for (uint64_t k = 0; k < 10; ++k) {
      const std::string payload = "row-" + std::to_string(k);
      ASSERT_OK_AND_ASSIGN(uint64_t lsn,
                           wal->Append(Wal::Op::kPut, k, Slice(payload)));
      EXPECT_EQ(lsn, k + 1);
    }
    ASSERT_OK_AND_ASSIGN(uint64_t del_lsn,
                         wal->Append(Wal::Op::kDelete, 3, Slice()));
    EXPECT_EQ(del_lsn, 11u);
    EXPECT_TRUE(wal->HasPending());
    ASSERT_OK(wal->Commit());
    EXPECT_FALSE(wal->HasPending());
    EXPECT_EQ(wal->durable_lsn(), 11u);
  }
  // Fresh Wal over the same file: the scan must find all 11 records.
  ASSERT_OK_AND_ASSIGN(auto wal, Wal::Open(wal_path, SmallWal()));
  EXPECT_EQ(wal->durable_lsn(), 11u);
  EXPECT_EQ(wal->next_lsn(), 12u);
  auto records = Drain(*wal);
  ASSERT_EQ(records.size(), 11u);
  for (uint64_t k = 0; k < 10; ++k) {
    EXPECT_EQ(records[k].lsn, k + 1);
    EXPECT_EQ(records[k].op, Wal::Op::kPut);
    EXPECT_EQ(records[k].key, k);
    EXPECT_EQ(records[k].payload, "row-" + std::to_string(k));
  }
  EXPECT_EQ(records[10].op, Wal::Op::kDelete);
  EXPECT_EQ(records[10].key, 3u);
  // from_lsn filters strictly.
  EXPECT_EQ(Drain(*wal, 11).size(), 0u);
  EXPECT_EQ(Drain(*wal, 5).size(), 6u);
  std::remove(wal_path.c_str());
}

TEST(WalTest, MultiCommitSpansPages) {
  TempFile file("wal_pages");
  const std::string wal_path = Wal::PathFor(file.path());
  // Payloads sized so many commits cross page boundaries mid-record and the
  // tail-page rewrite logic is exercised on every commit.
  const std::string payload(700, 'p');
  size_t total = 0;
  {
    ASSERT_OK_AND_ASSIGN(auto wal, Wal::Open(wal_path, SmallWal()));
    for (int commit = 0; commit < 20; ++commit) {
      for (int i = 0; i < 3; ++i) {
        ASSERT_OK(
            wal->Append(Wal::Op::kPut, total++, Slice(payload)).status());
      }
      ASSERT_OK(wal->Commit());
    }
  }
  ASSERT_OK_AND_ASSIGN(auto wal, Wal::Open(wal_path, SmallWal()));
  auto records = Drain(*wal);
  ASSERT_EQ(records.size(), total);
  for (size_t i = 0; i < total; ++i) {
    EXPECT_EQ(records[i].key, i);
    EXPECT_EQ(records[i].payload, payload);
  }
  std::remove(wal_path.c_str());
}

TEST(WalTest, TornTailIsTruncatedAtFirstBadCrc) {
  TempFile file("wal_torn");
  const std::string wal_path = Wal::PathFor(file.path());
  uint64_t bytes_after_5 = 0;
  {
    ASSERT_OK_AND_ASSIGN(auto wal, Wal::Open(wal_path, SmallWal()));
    for (uint64_t k = 0; k < 5; ++k) {
      ASSERT_OK(wal->Append(Wal::Op::kPut, k, Slice("aaaa")).status());
    }
    ASSERT_OK(wal->Commit());
    bytes_after_5 = wal->durable_bytes();
    for (uint64_t k = 5; k < 8; ++k) {
      ASSERT_OK(wal->Append(Wal::Op::kPut, k, Slice("bbbb")).status());
    }
    ASSERT_OK(wal->Commit());
  }
  // Tear the 6th record: flip one payload byte so its CRC no longer
  // matches. The scan must deliver records 1..5 and truncate there —
  // records 7..8 are unreachable past the tear, exactly like a torn write.
  {
    std::fstream f(wal_path,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(static_cast<std::streamoff>(bytes_after_5) + 10);
    char junk = '\x3c';
    f.write(&junk, 1);
  }
  ASSERT_OK_AND_ASSIGN(auto wal, Wal::Open(wal_path, SmallWal()));
  auto records = Drain(*wal);
  ASSERT_EQ(records.size(), 5u);
  EXPECT_EQ(records.back().lsn, 5u);
  EXPECT_EQ(wal->durable_lsn(), 5u);
  EXPECT_EQ(wal->durable_bytes(), bytes_after_5);
  // The truncated log keeps working: new appends continue the sequence.
  ASSERT_OK(wal->Append(Wal::Op::kPut, 99, Slice("cc")).status());
  ASSERT_OK(wal->Commit());
  EXPECT_EQ(wal->durable_lsn(), 6u);
  std::remove(wal_path.c_str());
}

TEST(WalTest, ResetReclaimsLogAndKeepsLsnSequence) {
  TempFile file("wal_reset");
  const std::string wal_path = Wal::PathFor(file.path());
  ASSERT_OK_AND_ASSIGN(auto wal, Wal::Open(wal_path, SmallWal()));
  for (uint64_t k = 0; k < 6; ++k) {
    ASSERT_OK(wal->Append(Wal::Op::kPut, k, Slice("xy")).status());
  }
  ASSERT_OK(wal->Commit());
  EXPECT_GT(wal->durable_bytes(), 0u);
  ASSERT_OK(wal->Reset());
  EXPECT_EQ(wal->durable_bytes(), 0u);
  EXPECT_EQ(Drain(*wal).size(), 0u);
  // LSNs never restart — recovery relies on monotonicity across resets.
  ASSERT_OK_AND_ASSIGN(uint64_t lsn,
                       wal->Append(Wal::Op::kPut, 7, Slice("z")));
  EXPECT_EQ(lsn, 7u);
  ASSERT_OK(wal->Commit());
  auto records = Drain(*wal);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].lsn, 7u);
  std::remove(wal_path.c_str());
}

// ---- Fault injection --------------------------------------------------------

/// Scoped write-failure injection via RLIMIT_FSIZE (see async_write_test.cc
/// for why truncation would not work): any write past `bytes` fails EFBIG.
class FileSizeLimit {
 public:
  explicit FileSizeLimit(size_t bytes) {
    prev_handler_ = ::signal(SIGXFSZ, SIG_IGN);
    ::getrlimit(RLIMIT_FSIZE, &prev_);
    struct rlimit lim = prev_;
    lim.rlim_cur = static_cast<rlim_t>(bytes);
    ::setrlimit(RLIMIT_FSIZE, &lim);
  }
  ~FileSizeLimit() { Release(); }
  void Release() {
    if (released_) return;
    released_ = true;
    ::setrlimit(RLIMIT_FSIZE, &prev_);
    ::signal(SIGXFSZ, prev_handler_);
  }

 private:
  struct rlimit prev_;
  void (*prev_handler_)(int) = SIG_DFL;
  bool released_ = false;
};

TEST(WalFaultTest, CommitFailureIsStickyAndTailStaysConsistent) {
  TempFile file("wal_fsize");
  const std::string wal_path = Wal::PathFor(file.path());
  std::vector<ReplayedRecord> acked;
  {
    ASSERT_OK_AND_ASSIGN(auto wal, Wal::Open(wal_path, SmallWal()));
    // First group commits fine and is the acknowledged state.
    for (uint64_t k = 0; k < 4; ++k) {
      ASSERT_OK(wal->Append(Wal::Op::kPut, k, Slice("good")).status());
    }
    ASSERT_OK(wal->Commit());
    acked = Drain(*wal);
    ASSERT_EQ(acked.size(), 4u);

    // Cap the file at its current length: the next commit needs at least
    // one more page and must fail — and the failure must be sticky.
    const std::string big(3000, 'x');
    FileSizeLimit limit(4096);
    for (uint64_t k = 100; k < 104; ++k) {
      ASSERT_OK(wal->Append(Wal::Op::kPut, k, Slice(big)).status());
    }
    Status failed = wal->Commit();
    ASSERT_FALSE(failed.ok());
    EXPECT_TRUE(failed.IsIOError()) << failed.ToString();
    // Sticky: later appends and commits report the original failure
    // without touching the file.
    auto append = wal->Append(Wal::Op::kPut, 200, Slice("late"));
    ASSERT_FALSE(append.ok());
    EXPECT_TRUE(append.status().IsIOError());
    ASSERT_FALSE(wal->Commit().ok());
    limit.Release();
    // Still sticky after the fault clears: the Wal object is poisoned.
    ASSERT_FALSE(wal->Append(Wal::Op::kPut, 201, Slice("late")).ok());
  }
  // Recovery path: a fresh Wal over the same file must see exactly the
  // acknowledged prefix — the failed group must not have corrupted the
  // durable tail (a torn partial write is truncated by the scanner).
  ASSERT_OK_AND_ASSIGN(auto wal, Wal::Open(wal_path, SmallWal()));
  auto records = Drain(*wal);
  ASSERT_EQ(records.size(), acked.size());
  for (size_t i = 0; i < acked.size(); ++i) {
    EXPECT_EQ(records[i].lsn, acked[i].lsn);
    EXPECT_EQ(records[i].key, acked[i].key);
    EXPECT_EQ(records[i].payload, acked[i].payload);
  }
  // And the reopened log accepts new groups.
  ASSERT_OK(wal->Append(Wal::Op::kPut, 300, Slice("after")).status());
  ASSERT_OK(wal->Commit());
  EXPECT_EQ(Drain(*wal).size(), acked.size() + 1);
  std::remove(wal_path.c_str());
}

// ---- Engine-level ack contract ---------------------------------------------

Schema SmallSchema() {
  return Schema({{"id", TypeId::kInt64, 0},
                 {"payload", TypeId::kVarchar, 32},
                 {"score", TypeId::kInt64, 0}});
}

Row MakeRow(uint64_t id) {
  return {Value::Int64(static_cast<int64_t>(id)),
          Value::Varchar("payload-" + std::to_string(id)),
          Value::Int64(static_cast<int64_t>(id * 7 + 3))};
}

TEST(WalFaultTest, FailedGroupCommitFailsTheGroupsWriteTickets) {
  ShardedEngineOptions opts;
  opts.num_shards = 1;
  opts.num_workers = 1;
  opts.path_prefix = ::testing::TempDir() + "nblb_walfault_" +
                     std::to_string(::getpid());
  opts.page_size = 4096;
  opts.buffer_pool_frames_per_shard = 256;
  opts.wal_enabled = true;
  opts.schema = SmallSchema();
  opts.table_options.key_columns = {0};
  const std::string shard_path = opts.path_prefix + ".shard0.db";
  {
    ASSERT_OK_AND_ASSIGN(auto engine, ShardedEngine::Open(opts));
    // A first acknowledged batch establishes a durable baseline.
    RequestBatch warm;
    for (uint64_t id = 0; id < 8; ++id) {
      warm.push_back(Request::Insert(id, MakeRow(id)));
    }
    ASSERT_TRUE(engine->Execute(warm).all_ok());

    // Cap the WAL file at its current size; the next group is big enough
    // that its commit must extend the log (rows are ~80 framed bytes, so
    // 256 of them overflow any single page), so every write in the group
    // must come back failed — the op ran in memory, but the ack barrier is
    // the log. Rewrites within the cap still work, which is exactly the
    // torn-tail shape recovery has to handle.
    struct stat st;
    ASSERT_EQ(::stat(Wal::PathFor(shard_path).c_str(), &st), 0);
    FileSizeLimit limit(static_cast<size_t>(st.st_size));
    RequestBatch doomed;
    for (uint64_t id = 1000; id < 1256; ++id) {
      doomed.push_back(Request::Insert(id, MakeRow(id)));
    }
    BatchResult result = engine->Execute(doomed);
    limit.Release();
    size_t failed = 0;
    for (const auto& r : result.results) {
      if (!r.status.ok()) {
        ++failed;
        EXPECT_TRUE(r.status.IsIOError()) << r.status.ToString();
      }
    }
    EXPECT_EQ(failed, doomed.size());
    // Reads are unaffected by the poisoned WAL.
    ASSERT_OK(engine->Get(0).status());
    // The engine tears down with the WAL still poisoned: the clean-close
    // checkpoint will fail and print a note, which is the crash-equivalent
    // path — recovery below must still see exactly the acked writes.
    for (uint32_t i = 0; i < engine->num_shards(); ++i) {
      engine->shard(i)->SimulateCrashForTest();
    }
  }
  // Reopen and verify: every ACKED row must be there. The doomed rows were
  // applied in memory before their commit failed, so they may survive via
  // the heap walk (an in-process "crash" still flushes pages on close) —
  // admissible, since they were never acked — but any that did survive must
  // be intact, and the shard must be self-consistent.
  opts.truncate_on_open = false;
  ASSERT_OK_AND_ASSIGN(auto engine, ShardedEngine::Open(opts));
  for (uint64_t id = 0; id < 8; ++id) {
    ASSERT_OK_AND_ASSIGN(Row row, engine->Get(id));
    EXPECT_EQ(row[1].AsString(), "payload-" + std::to_string(id));
  }
  uint64_t live = 8;
  for (uint64_t id = 1000; id < 1256; ++id) {
    auto got = engine->Get(id);
    if (got.ok()) {
      ++live;
      EXPECT_EQ(got.ValueOrDie()[1].AsString(),
                "payload-" + std::to_string(id));
    } else {
      EXPECT_TRUE(got.status().IsNotFound());
    }
  }
  EXPECT_EQ(engine->shard(0)->rows(), live);
  EXPECT_EQ(engine->shard(0)->table()->index()->num_entries(), live);
  engine.reset();
  std::remove(shard_path.c_str());
  std::remove(Superblock::PathFor(shard_path).c_str());
  std::remove(Wal::PathFor(shard_path).c_str());
}

}  // namespace
}  // namespace nblb
