// NetServer end-to-end tests: request round trips over loopback TCP,
// admission-control busy shedding, protocol-error connection teardown,
// client disconnect mid-request, and clean engine drain when clients are
// killed under load. Runs under whichever loop backend NBLB_IO_BACKEND
// resolves to — CI exercises both.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "catalog/schema.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "obs/event_ring.h"
#include "shard/sharded_engine.h"
#include "test_util.h"

namespace nblb::net {
namespace {

Schema KvSchema() {
  return Schema({{"id", TypeId::kInt64, 0}, {"payload", TypeId::kChar, 64}});
}

Row KvRow(int64_t id) {
  return {Value::Int64(id), Value::Char("row-" + std::to_string(id))};
}

ShardedEngineOptions EngineOptions(const std::string& tag) {
  ShardedEngineOptions opts;
  opts.num_shards = 2;
  opts.num_workers = 2;
  opts.num_completion_threads = 2;
  opts.path_prefix = ::testing::TempDir() + "nblb_net_" + tag;
  opts.buffer_pool_frames_per_shard = 256;
  opts.schema = KvSchema();
  opts.table_options.key_columns = {0};
  return opts;
}

void Cleanup(const ShardedEngineOptions& opts) {
  for (uint32_t s = 0; s < opts.num_shards; ++s) {
    std::remove(
        (opts.path_prefix + ".shard" + std::to_string(s) + ".db").c_str());
  }
}

std::unique_ptr<NetClient> MustConnect(const NetServer& server) {
  NetClient::Options copts;
  copts.port = server.port();
  auto client = NetClient::Connect(copts);
  EXPECT_OK(client.status());
  return std::move(client).ValueOrDie();
}

// Generous default: under TSan on a loaded single-core CI runner the whole
// process can stall for seconds at a time, and only failing runs pay it.
bool WaitUntil(const std::function<bool()>& pred, int timeout_ms = 30000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

TEST(NetServerTest, RoundTripAllRequestKinds) {
  ShardedEngineOptions eopts = EngineOptions("roundtrip");
  ASSERT_OK_AND_ASSIGN(auto engine, ShardedEngine::Open(eopts));
  ASSERT_OK_AND_ASSIGN(auto server,
                       NetServer::Start(NetServerOptions{}, engine.get()));
  ASSERT_NE(server->port(), 0);
  auto client = MustConnect(*server);

  // Insert 100 rows over the wire.
  RequestBatch inserts;
  for (int64_t id = 0; id < 100; ++id) {
    inserts.push_back(Request::Insert(id, KvRow(id)));
  }
  ASSERT_OK_AND_ASSIGN(BatchResult ins, client->Call(inserts));
  ASSERT_EQ(ins.results.size(), 100u);
  EXPECT_TRUE(ins.all_ok());

  // Point lookups, projected lookups, a miss, an update, a delete.
  RequestBatch mixed;
  mixed.push_back(Request::Get(7));
  mixed.push_back(Request::GetProjected(8, {1}));
  mixed.push_back(Request::Get(100));  // miss
  mixed.push_back(Request::Update(9, {Value::Int64(9), Value::Char("nine")}));
  mixed.push_back(Request::Delete(10));
  ASSERT_OK_AND_ASSIGN(BatchResult got, client->Call(mixed));
  ASSERT_EQ(got.results.size(), 5u);
  ASSERT_OK(got.results[0].status);
  ASSERT_EQ(got.results[0].row.size(), 2u);
  EXPECT_EQ(got.results[0].row[0].AsInt(), 7);
  EXPECT_EQ(got.results[0].row[1].AsString(), "row-7");
  ASSERT_OK(got.results[1].status);
  ASSERT_EQ(got.results[1].row.size(), 1u);  // projected: payload only
  EXPECT_EQ(got.results[1].row[0].AsString(), "row-8");
  EXPECT_TRUE(got.results[2].status.IsNotFound());
  ASSERT_OK(got.results[3].status);
  ASSERT_OK(got.results[4].status);

  // The update and delete landed (verified through the wire again).
  ASSERT_OK_AND_ASSIGN(BatchResult check,
                       client->Call({Request::Get(9), Request::Get(10)}));
  ASSERT_OK(check.results[0].status);
  EXPECT_EQ(check.results[0].row[1].AsString(), "nine");
  EXPECT_TRUE(check.results[1].status.IsNotFound());

  const NetStatsSnapshot stats = server->stats();
  EXPECT_EQ(stats.accepts, 1u);
  EXPECT_EQ(stats.frames_in, 3u);
  EXPECT_EQ(stats.responses, 3u);
  EXPECT_EQ(stats.decode_errors, 0u);
  EXPECT_EQ(stats.busy_shed, 0u);

  client.reset();
  server.reset();
  engine.reset();
  Cleanup(eopts);
}

TEST(NetServerTest, PipelinedResponsesPairUpByRequestId) {
  ShardedEngineOptions eopts = EngineOptions("pipeline");
  ASSERT_OK_AND_ASSIGN(auto engine, ShardedEngine::Open(eopts));
  for (int64_t id = 0; id < 64; ++id) {
    ASSERT_OK(engine->Insert(id, KvRow(id)));
  }
  ASSERT_OK_AND_ASSIGN(auto server,
                       NetServer::Start(NetServerOptions{}, engine.get()));
  auto client = MustConnect(*server);

  // 32 in flight at once; responses may arrive out of order, the client
  // pairs them back up by id.
  std::vector<uint64_t> ids;
  for (int b = 0; b < 32; ++b) {
    ASSERT_OK_AND_ASSIGN(
        uint64_t id,
        client->Send({Request::Get(b), Request::Get(63 - b)}));
    ids.push_back(id);
  }
  for (size_t b = 0; b < ids.size(); ++b) {
    ASSERT_OK_AND_ASSIGN(BatchResult result, client->Wait(ids[b]));
    ASSERT_EQ(result.results.size(), 2u);
    ASSERT_OK(result.results[0].status);
    EXPECT_EQ(result.results[0].row[0].AsInt(), static_cast<int64_t>(b));
    ASSERT_OK(result.results[1].status);
    EXPECT_EQ(result.results[1].row[0].AsInt(), static_cast<int64_t>(63 - b));
  }
  EXPECT_EQ(client->outstanding(), 0u);

  client.reset();
  server.reset();
  engine.reset();
  Cleanup(eopts);
}

TEST(NetServerTest, ConcurrentClientsAllServed) {
  ShardedEngineOptions eopts = EngineOptions("concurrent");
  ASSERT_OK_AND_ASSIGN(auto engine, ShardedEngine::Open(eopts));
  for (int64_t id = 0; id < 256; ++id) {
    ASSERT_OK(engine->Insert(id, KvRow(id)));
  }
  ASSERT_OK_AND_ASSIGN(auto server,
                       NetServer::Start(NetServerOptions{}, engine.get()));

  constexpr int kClients = 8;
  constexpr int kCallsPerClient = 50;
  std::atomic<uint64_t> ok{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      auto client = MustConnect(*server);
      for (int b = 0; b < kCallsPerClient; ++b) {
        RequestBatch batch;
        for (int k = 0; k < 4; ++k) {
          batch.push_back(Request::Get((t * 37 + b * 4 + k) % 256));
        }
        auto result = client->Call(batch);
        ASSERT_OK(result.status());
        for (const RequestResult& r : result->results) {
          ASSERT_OK(r.status);
          ok.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), static_cast<uint64_t>(kClients * kCallsPerClient * 4));
  const NetStatsSnapshot stats = server->stats();
  EXPECT_EQ(stats.accepts, static_cast<uint64_t>(kClients));
  EXPECT_EQ(stats.frames_in,
            static_cast<uint64_t>(kClients * kCallsPerClient));
  EXPECT_EQ(stats.responses, stats.frames_in);

  server.reset();
  engine.reset();
  Cleanup(eopts);
}

TEST(NetServerTest, AdmissionControlShedsWithBusyReplies) {
  ShardedEngineOptions eopts = EngineOptions("shed");
  eopts.num_shards = 1;
  eopts.num_workers = 1;
  ASSERT_OK_AND_ASSIGN(auto engine, ShardedEngine::Open(eopts));
  for (int64_t id = 0; id < 64; ++id) {
    ASSERT_OK(engine->Insert(id, KvRow(id)));
  }
  NetServerOptions sopts;
  sopts.max_inflight_per_conn = 1;  // second pipelined frame must shed
  ASSERT_OK_AND_ASSIGN(auto server, NetServer::Start(sopts, engine.get()));
  auto client = MustConnect(*server);

  // Write a burst of frames in ONE send so they all arrive together: the
  // loop decodes them back-to-back while the first is still in the engine,
  // so later frames are over the per-connection cap and shed.
  constexpr int kBurst = 64;
  std::string burst;
  for (int i = 0; i < kBurst; ++i) {
    AppendRequestFrame(static_cast<uint64_t>(i + 1),
                       {Request::Get(static_cast<uint64_t>(i % 64))}, &burst);
  }
  ASSERT_OK(client->SendRaw(burst.data(), burst.size()));
  // Register the pending sizes the raw write bypassed.
  int busy = 0, served = 0;
  FrameDecoder decoder;
  std::vector<char> rbuf(64 * 1024);
  Frame frame;
  while (busy + served < kBurst) {
    const ssize_t n = ::recv(client->fd(), rbuf.data(), rbuf.size(), 0);
    ASSERT_GT(n, 0);
    decoder.Append(rbuf.data(), static_cast<size_t>(n));
    while (decoder.Pop(&frame) == FrameDecoder::Next::kFrame) {
      if (frame.type == FrameType::kBusy) {
        ++busy;
      } else {
        ASSERT_EQ(frame.type, FrameType::kResponse);
        ++served;
      }
    }
  }
  EXPECT_GT(served, 0);
  EXPECT_GT(busy, 0) << "64 back-to-back frames with a cap of 1 in flight "
                        "must shed at least one";
  EXPECT_EQ(server->stats().busy_shed, static_cast<uint64_t>(busy));

  // The shed left a flight-recorder trace.
  bool found_shed_event = false;
  for (const auto& ring : FlightRecorder::Instance().SnapshotAll()) {
    for (const auto& rec : ring) {
      if (rec.code == FlightEvent::kNetShed) found_shed_event = true;
    }
  }
  EXPECT_TRUE(found_shed_event);

  // The connection survives shedding: a fresh call still works.
  ASSERT_OK_AND_ASSIGN(BatchResult after, client->Call({Request::Get(1)}));
  ASSERT_OK(after.results[0].status);

  client.reset();
  server.reset();
  engine.reset();
  Cleanup(eopts);
}

TEST(NetServerTest, GarbageBytesCloseTheConnection) {
  ShardedEngineOptions eopts = EngineOptions("garbage");
  ASSERT_OK_AND_ASSIGN(auto engine, ShardedEngine::Open(eopts));
  ASSERT_OK_AND_ASSIGN(auto server,
                       NetServer::Start(NetServerOptions{}, engine.get()));
  auto client = MustConnect(*server);
  ASSERT_TRUE(WaitUntil([&] { return server->open_connections() == 1; }));

  std::string garbage(64, '\xee');
  ASSERT_OK(client->SendRaw(garbage.data(), garbage.size()));

  // The server must close the connection: recv drains to EOF.
  char buf[256];
  ssize_t n;
  do {
    n = ::recv(client->fd(), buf, sizeof(buf), 0);
  } while (n > 0);
  EXPECT_EQ(n, 0);
  EXPECT_TRUE(WaitUntil([&] { return server->open_connections() == 0; }));
  EXPECT_GE(server->stats().decode_errors, 1u);

  // The server keeps serving fresh connections afterwards.
  auto client2 = MustConnect(*server);
  ASSERT_OK_AND_ASSIGN(BatchResult result, client2->Call({Request::Get(1)}));
  EXPECT_TRUE(result.results[0].status.IsNotFound());

  client.reset();
  client2.reset();
  server.reset();
  engine.reset();
  Cleanup(eopts);
}

TEST(NetServerTest, OversizedLengthPrefixClosesTheConnection) {
  ShardedEngineOptions eopts = EngineOptions("oversize");
  ASSERT_OK_AND_ASSIGN(auto engine, ShardedEngine::Open(eopts));
  NetServerOptions sopts;
  sopts.max_frame_payload = 4096;
  ASSERT_OK_AND_ASSIGN(auto server, NetServer::Start(sopts, engine.get()));
  auto client = MustConnect(*server);

  // Valid type byte, absurd length prefix: the server must reject from the
  // header alone instead of buffering toward a 64 MiB payload.
  std::string header(kFrameHeaderBytes, '\0');
  header[2] = '\x00';
  header[3] = '\x04';  // 0x04000000 = 64 MiB
  header[4] = static_cast<char>(FrameType::kRequest);
  ASSERT_OK(client->SendRaw(header.data(), header.size()));

  char buf[64];
  ssize_t n;
  do {
    n = ::recv(client->fd(), buf, sizeof(buf), 0);
  } while (n > 0);
  EXPECT_EQ(n, 0);
  EXPECT_TRUE(WaitUntil([&] { return server->open_connections() == 0; }));
  EXPECT_GE(server->stats().decode_errors, 1u);

  client.reset();
  server.reset();
  engine.reset();
  Cleanup(eopts);
}

TEST(NetServerTest, ClientDisconnectMidRequestDrainsCleanly) {
  ShardedEngineOptions eopts = EngineOptions("disconnect");
  ASSERT_OK_AND_ASSIGN(auto engine, ShardedEngine::Open(eopts));
  for (int64_t id = 0; id < 64; ++id) {
    ASSERT_OK(engine->Insert(id, KvRow(id)));
  }
  ASSERT_OK_AND_ASSIGN(auto server,
                       NetServer::Start(NetServerOptions{}, engine.get()));
  {
    auto client = MustConnect(*server);
    // Fire a pipeline of requests and vanish without reading any response.
    for (int b = 0; b < 16; ++b) {
      RequestBatch batch;
      for (int k = 0; k < 8; ++k) batch.push_back(Request::Get(k));
      ASSERT_OK(client->Send(batch).status());
    }
  }  // ~NetClient closes the socket with responses still in flight

  // Every submitted batch must still complete and decrement the in-flight
  // count — a leaked ticket would leave it non-zero forever.
  EXPECT_TRUE(WaitUntil([&] { return server->inflight() == 0; }));
  EXPECT_TRUE(WaitUntil([&] { return server->open_connections() == 0; }));

  server.reset();
  engine.reset();
  Cleanup(eopts);
}

TEST(NetServerTest, KillClientsUnderLoadLeavesEngineClean) {
  ShardedEngineOptions eopts = EngineOptions("killload");
  ASSERT_OK_AND_ASSIGN(auto engine, ShardedEngine::Open(eopts));
  for (int64_t id = 0; id < 128; ++id) {
    ASSERT_OK(engine->Insert(id, KvRow(id)));
  }
  ASSERT_OK_AND_ASSIGN(auto server,
                       NetServer::Start(NetServerOptions{}, engine.get()));

  constexpr int kClients = 6;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      auto client = MustConnect(*server);
      uint64_t sent = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        RequestBatch batch;
        for (int k = 0; k < 8; ++k) {
          batch.push_back(Request::Get((t * 17 + k + sent) % 128));
        }
        if (!client->Send(batch).ok()) break;
        ++sent;
        // Stay loosely pipelined: drain when a window builds up.
        if (client->outstanding() >= 8) {
          // Ids are sequential per client starting at 1.
          if (!client->Wait(sent - 7).ok()) break;
        }
      }
      // Abrupt exit: the client destructor closes the socket with up to 8
      // responses still in flight.
    });
  }
  // Let load build, then kill every client mid-stream.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true);
  for (auto& t : threads) t.join();

  // Clean drain: no leaked tickets (in-flight returns to zero), every
  // connection reaped, and the engine still serves.
  EXPECT_TRUE(WaitUntil([&] { return server->inflight() == 0; }));
  EXPECT_TRUE(WaitUntil([&] { return server->open_connections() == 0; }));
  const NetStatsSnapshot stats = server->stats();
  EXPECT_GT(stats.frames_in, 0u);
  EXPECT_EQ(stats.accepts, static_cast<uint64_t>(kClients));
  EXPECT_EQ(stats.closes, static_cast<uint64_t>(kClients));
  server.reset();

  BatchResult after = engine->Execute({Request::Get(1)});
  ASSERT_OK(after.results[0].status);
  EXPECT_EQ(engine->engine_stats().busy_rejections, 0u);
  engine.reset();
  Cleanup(eopts);
}

TEST(NetServerTest, MetricsDocumentMergesNetAndEngineLayers) {
  ShardedEngineOptions eopts = EngineOptions("metrics");
  ASSERT_OK_AND_ASSIGN(auto engine, ShardedEngine::Open(eopts));
  ASSERT_OK_AND_ASSIGN(auto server,
                       NetServer::Start(NetServerOptions{}, engine.get()));
  auto client = MustConnect(*server);
  ASSERT_OK_AND_ASSIGN(BatchResult r,
                       client->Call({Request::Insert(1, KvRow(1))}));
  ASSERT_OK(r.results[0].status);

  const MetricsSnapshot snap = server->MetricsSnapshotNow();
  EXPECT_EQ(snap.counters.at("net.frames_in"), 1u);
  EXPECT_EQ(snap.counters.at("net.responses"), 1u);
  EXPECT_GT(snap.counters.at("net.bytes_in"), 0u);
  EXPECT_GE(snap.counters.at("engine.batches"), 1u);
  EXPECT_EQ(snap.gauges.at("net.open_connections"), 1.0);
  EXPECT_GE(snap.histograms.at("net.reply_latency_us").count(), 1u);
  EXPECT_GE(snap.histograms.at("net.batch_requests").count(), 1u);
  // Per-shard layers came along in the merge.
  EXPECT_NE(snap.counters.find("shard0.disk.reads"), snap.counters.end());

  const std::string json = server->DumpMetrics();
  EXPECT_NE(json.find("\"net.frames_in\""), std::string::npos);
  EXPECT_NE(json.find("\"engine.batches\""), std::string::npos);

  client.reset();
  server.reset();
  engine.reset();
  Cleanup(eopts);
}

TEST(NetServerTest, ForcedFallbackBackendHonorsEnvAndOption) {
  ShardedEngineOptions eopts = EngineOptions("backend");
  ASSERT_OK_AND_ASSIGN(auto engine, ShardedEngine::Open(eopts));
  const char* env = std::getenv("NBLB_IO_BACKEND");
  // NBLB_IO_BACKEND overrides the option (same precedence as DiskManager):
  // with no env override or env=threads, kThreads must resolve to epoll.
  // Under env=uring the override wins; the backend then depends on the
  // runtime probe, so just assert serving works either way.
  NetServerOptions sopts;
  sopts.io_backend = IoBackend::kThreads;
  {
    ASSERT_OK_AND_ASSIGN(auto server, NetServer::Start(sopts, engine.get()));
    if (env == nullptr || std::strcmp(env, "threads") == 0) {
      EXPECT_EQ(server->backend_in_use(), IoBackend::kThreads);
    }
    auto client = MustConnect(*server);
    ASSERT_OK_AND_ASSIGN(BatchResult r, client->Call({Request::Get(5)}));
    EXPECT_TRUE(r.results[0].status.IsNotFound());
  }
  // env=threads forces epoll even when the option asks for auto/uring.
  if (env != nullptr && std::strcmp(env, "threads") == 0) {
    NetServerOptions auto_opts;
    ASSERT_OK_AND_ASSIGN(auto server,
                         NetServer::Start(auto_opts, engine.get()));
    EXPECT_EQ(server->backend_in_use(), IoBackend::kThreads);
  }
  engine.reset();
  Cleanup(eopts);
}

TEST(NetServerTest, IdleConnectionsAreReapedActiveOnesSurvive) {
  ShardedEngineOptions eopts = EngineOptions("idle");
  ASSERT_OK_AND_ASSIGN(auto engine, ShardedEngine::Open(eopts));
  for (int64_t id = 0; id < 16; ++id) {
    ASSERT_OK(engine->Insert(id, KvRow(id)));
  }
  NetServerOptions sopts;
  sopts.idle_timeout_ms = 100;
  ASSERT_OK_AND_ASSIGN(auto server, NetServer::Start(sopts, engine.get()));

  auto idle_client = MustConnect(*server);
  auto active_client = MustConnect(*server);
  ASSERT_TRUE(WaitUntil([&] { return server->open_connections() == 2; }));

  // Keep one connection busy while the other goes quiet: the sweep must
  // reap exactly the quiet one. Activity (any recv/send) resets the clock,
  // so the active connection stays alive across many sweep periods.
  const bool reaped = WaitUntil([&] {
    auto r = active_client->Call({Request::Get(1)});
    EXPECT_OK(r.status());
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return server->stats().idle_closed >= 1;
  });
  EXPECT_TRUE(reaped);
  EXPECT_TRUE(WaitUntil([&] { return server->open_connections() == 1; }));

  // The reaped socket drains to EOF on the client side.
  char buf[64];
  ssize_t n;
  do {
    n = ::recv(idle_client->fd(), buf, sizeof(buf), 0);
  } while (n > 0);
  EXPECT_EQ(n, 0);

  // The survivor still round-trips, and the reap left a flight event and
  // the net.idle_closed counter in the merged metrics.
  ASSERT_OK_AND_ASSIGN(BatchResult after, active_client->Call({Request::Get(2)}));
  ASSERT_OK(after.results[0].status);
  bool found_idle_event = false;
  for (const auto& ring : FlightRecorder::Instance().SnapshotAll()) {
    for (const auto& rec : ring) {
      if (rec.code == FlightEvent::kNetIdleClose) found_idle_event = true;
    }
  }
  EXPECT_TRUE(found_idle_event);
  EXPECT_GE(server->MetricsSnapshotNow().counters.at("net.idle_closed"), 1u);

  idle_client.reset();
  active_client.reset();
  server.reset();
  engine.reset();
  Cleanup(eopts);
}

}  // namespace
}  // namespace nblb::net
