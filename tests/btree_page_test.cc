#include "index/btree_page.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "test_util.h"

namespace nblb {
namespace {

constexpr size_t kPageSize = 4096;

struct PageFixture {
  std::vector<char> buf;
  BTreePageView view;

  explicit PageFixture(uint16_t key_size = 8, uint16_t payload_size = 8,
                       uint16_t cache_item = 25,
                       PageType type = kPageTypeBTreeLeaf)
      : buf(kPageSize, 0), view(buf.data(), kPageSize) {
    BTreePageView::Init(buf.data(), kPageSize, type, key_size, payload_size,
                        cache_item);
  }
};

std::string K(uint64_t v) {
  std::string s(8, '\0');
  EncodeBigEndian64(s.data(), v);
  return s;
}

std::string P(uint64_t v) {
  std::string s(8, '\0');
  EncodeFixed64(s.data(), v);
  return s;
}

TEST(BTreePageTest, InitSetsHeaderAndMagic) {
  PageFixture f;
  EXPECT_EQ(f.view.type(), kPageTypeBTreeLeaf);
  EXPECT_EQ(f.view.num_entries(), 0u);
  EXPECT_EQ(f.view.key_size(), 8u);
  EXPECT_EQ(f.view.payload_size(), 8u);
  EXPECT_EQ(f.view.cache_item_size(), 25u);
  EXPECT_EQ(f.view.next(), kInvalidPageId);
  EXPECT_EQ(f.view.csn(), 0u);
  ASSERT_OK(f.view.Validate());
}

TEST(BTreePageTest, GeometryOnEmptyPage) {
  PageFixture f;
  EXPECT_EQ(f.view.FreeBegin(), kBTreeHeaderSize);
  EXPECT_EQ(f.view.FreeEnd(), kPageSize - kBTreeFooterSize);
  EXPECT_EQ(f.view.Capacity(),
            (kPageSize - kBTreeHeaderSize - kBTreeFooterSize) / (16 + 2));
}

TEST(BTreePageTest, InsertMaintainsSortedDirectory) {
  PageFixture f;
  Rng rng(1);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 100; ++i) {
    const uint64_t k = rng.NextU64();
    keys.push_back(k);
    ASSERT_OK(f.view.InsertEntry(Slice(K(k)), Slice(P(k * 2))));
  }
  std::sort(keys.begin(), keys.end());
  ASSERT_EQ(f.view.num_entries(), 100u);
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(f.view.KeyAt(i).ToString(), K(keys[i])) << "position " << i;
    EXPECT_EQ(f.view.ValueAt(i), keys[i] * 2);
  }
  ASSERT_OK(f.view.Validate());
}

TEST(BTreePageTest, DuplicateKeyRejected) {
  PageFixture f;
  ASSERT_OK(f.view.InsertEntry(Slice(K(5)), Slice(P(1))));
  EXPECT_TRUE(f.view.InsertEntry(Slice(K(5)), Slice(P(2))).IsAlreadyExists());
  EXPECT_EQ(f.view.num_entries(), 1u);
}

TEST(BTreePageTest, FullPageRejectsInsert) {
  PageFixture f;
  const size_t cap = f.view.Capacity();
  for (size_t i = 0; i < cap; ++i) {
    ASSERT_OK(f.view.InsertEntry(Slice(K(i)), Slice(P(i))));
  }
  EXPECT_TRUE(f.view.InsertEntry(Slice(K(cap)), Slice(P(cap)))
                  .IsResourceExhausted());
  // At capacity the remaining slack is smaller than one entry + dir slot.
  EXPECT_LT(f.view.FreeBytes(), 16u + kBTreeDirEntrySize);
}

TEST(BTreePageTest, LowerBoundAndFindExact) {
  PageFixture f;
  for (uint64_t k : {10ull, 20ull, 30ull, 40ull}) {
    ASSERT_OK(f.view.InsertEntry(Slice(K(k)), Slice(P(k))));
  }
  EXPECT_EQ(f.view.LowerBound(Slice(K(5))), 0u);
  EXPECT_EQ(f.view.LowerBound(Slice(K(10))), 0u);
  EXPECT_EQ(f.view.LowerBound(Slice(K(15))), 1u);
  EXPECT_EQ(f.view.LowerBound(Slice(K(40))), 3u);
  EXPECT_EQ(f.view.LowerBound(Slice(K(45))), 4u);
  size_t pos;
  EXPECT_TRUE(f.view.FindExact(Slice(K(30)), &pos));
  EXPECT_EQ(pos, 2u);
  EXPECT_FALSE(f.view.FindExact(Slice(K(31)), &pos));
}

TEST(BTreePageTest, RemoveKeepsOrderAndZeroesFreedBytes) {
  PageFixture f;
  for (uint64_t k = 0; k < 50; ++k) {
    ASSERT_OK(f.view.InsertEntry(Slice(K(k)), Slice(P(k))));
  }
  // Remove from the middle.
  ASSERT_OK(f.view.RemoveEntryAt(25));
  ASSERT_EQ(f.view.num_entries(), 49u);
  size_t pos;
  EXPECT_FALSE(f.view.FindExact(Slice(K(25)), &pos));
  // Order intact.
  for (size_t i = 1; i < f.view.num_entries(); ++i) {
    EXPECT_LT(f.view.KeyAt(i - 1).Compare(f.view.KeyAt(i)), 0);
  }
  // Freed entry bytes are zeroed (invariant 3: the cache never misreads).
  const char* freed = f.buf.data() + kBTreeHeaderSize + 49 * 16;
  for (size_t i = 0; i < 16; ++i) ASSERT_EQ(freed[i], 0);
  ASSERT_OK(f.view.Validate());
}

TEST(BTreePageTest, RemoveAllThenReinsert) {
  PageFixture f;
  for (uint64_t k = 0; k < 20; ++k) {
    ASSERT_OK(f.view.InsertEntry(Slice(K(k)), Slice(P(k))));
  }
  while (f.view.num_entries() > 0) {
    ASSERT_OK(f.view.RemoveEntryAt(0));
  }
  EXPECT_EQ(f.view.FreeBytes(),
            kPageSize - kBTreeHeaderSize - kBTreeFooterSize);
  ASSERT_OK(f.view.InsertEntry(Slice(K(7)), Slice(P(7))));
  EXPECT_EQ(f.view.ValueAt(0), 7u);
}

TEST(BTreePageTest, RandomInsertDeleteAgainstOracle) {
  PageFixture f;
  std::map<std::string, uint64_t> oracle;
  Rng rng(42);
  for (int op = 0; op < 2000; ++op) {
    const uint64_t k = rng.Uniform(300);
    if (rng.Bernoulli(0.6) && f.view.HasRoom()) {
      if (!oracle.count(K(k))) {
        ASSERT_OK(f.view.InsertEntry(Slice(K(k)), Slice(P(op))));
        oracle[K(k)] = op;
      }
    } else if (!oracle.empty()) {
      size_t pos;
      if (f.view.FindExact(Slice(K(k)), &pos)) {
        ASSERT_OK(f.view.RemoveEntryAt(pos));
        oracle.erase(K(k));
      }
    }
    ASSERT_EQ(f.view.num_entries(), oracle.size());
  }
  // Final state matches the oracle exactly.
  size_t i = 0;
  for (const auto& [k, v] : oracle) {
    EXPECT_EQ(f.view.KeyAt(i).ToString(), k);
    EXPECT_EQ(f.view.ValueAt(i), v);
    ++i;
  }
}

TEST(BTreePageTest, StablePointMatchesPaperFormula) {
  PageFixture f;
  // S = header + usable * E/(E+D): the point both regions reach at 100% fill.
  const size_t usable = kPageSize - kBTreeHeaderSize - kBTreeFooterSize;
  const size_t expected = kBTreeHeaderSize + usable * 16 / (16 + 2);
  EXPECT_EQ(f.view.StablePoint(), expected);
  // At full capacity the entry region must end at or just below S and the
  // directory must start at or just above it.
  const size_t cap = f.view.Capacity();
  for (size_t i = 0; i < cap; ++i) {
    ASSERT_OK(f.view.InsertEntry(Slice(K(i)), Slice(P(i))));
  }
  EXPECT_LE(f.view.EntriesEnd(), f.view.StablePoint() + 16);
  EXPECT_GE(f.view.DirBegin(), f.view.StablePoint() - 2);
}

TEST(BTreePageTest, ExportAndRebuildRoundTrip) {
  PageFixture f;
  Rng rng(9);
  for (int i = 0; i < 60; ++i) {
    ASSERT_OK(f.view.InsertEntry(Slice(K(rng.NextU64())), Slice(P(i))));
  }
  std::vector<std::pair<std::string, std::string>> entries;
  f.view.ExportSorted(&entries);
  ASSERT_EQ(entries.size(), 60u);

  PageFixture g;
  ASSERT_OK(g.view.RebuildFromSorted(entries));
  ASSERT_EQ(g.view.num_entries(), 60u);
  for (size_t i = 0; i < 60; ++i) {
    EXPECT_EQ(g.view.KeyAt(i).ToString(), entries[i].first);
  }
  // Rebuild zeroes the whole variable region before re-appending: the free
  // interval must be all zeroes.
  for (size_t off = g.view.FreeBegin(); off < g.view.FreeEnd(); ++off) {
    ASSERT_EQ(g.buf[off], 0);
  }
}

TEST(BTreePageTest, InternalChildForRouting) {
  PageFixture f(8, 4, 0, kPageTypeBTreeInternal);
  f.view.set_leftmost_child(100);
  std::string c1(4, '\0'), c2(4, '\0');
  EncodeFixed32(c1.data(), 200);
  EncodeFixed32(c2.data(), 300);
  ASSERT_OK(f.view.InsertEntry(Slice(K(10)), Slice(c1)));
  ASSERT_OK(f.view.InsertEntry(Slice(K(20)), Slice(c2)));
  EXPECT_EQ(f.view.ChildFor(Slice(K(5))), 100u);   // below first separator
  EXPECT_EQ(f.view.ChildFor(Slice(K(10))), 200u);  // exact separator
  EXPECT_EQ(f.view.ChildFor(Slice(K(15))), 200u);
  EXPECT_EQ(f.view.ChildFor(Slice(K(20))), 300u);
  EXPECT_EQ(f.view.ChildFor(Slice(K(999))), 300u);
}

TEST(BTreePageTest, ValidateCatchesCorruption) {
  PageFixture f;
  // Clobber the footer magic.
  EncodeFixed32(f.buf.data() + kPageSize - 4, 0xdeadbeef);
  EXPECT_TRUE(f.view.Validate().IsCorruption());
}

TEST(BTreePageTest, SetPayloadOverwritesValue) {
  PageFixture f;
  ASSERT_OK(f.view.InsertEntry(Slice(K(1)), Slice(P(10))));
  f.view.SetPayloadAt(0, Slice(P(99)));
  EXPECT_EQ(f.view.ValueAt(0), 99u);
}

}  // namespace
}  // namespace nblb
