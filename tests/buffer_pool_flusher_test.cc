// Background dirty-page flusher tests: write-back happens off the serving
// path (no evictions needed), content lands correctly, counters advance,
// and the flusher coexists with FlushAll/EvictAll/Checkpoint-style use.

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <functional>
#include <thread>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "test_util.h"

namespace nblb {
namespace {

using nblb::testing::MakeStack;
using nblb::testing::Stack;

std::vector<PageId> DirtyPages(Stack& s, int n, char tag) {
  std::vector<PageId> ids;
  for (int i = 0; i < n; ++i) {
    auto g = s.bp->NewPage();
    EXPECT_TRUE(g.ok());
    std::memset(g->data(), tag, 64);
    g->MarkDirty();
    ids.push_back(g->id());
  }
  return ids;
}

bool WaitFor(const std::function<bool()>& cond, int timeout_ms = 5000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return cond();
}

TEST(BufferPoolFlusherTest, WritesDirtyPagesBackWithoutEvictions) {
  Stack s = MakeStack("flush_bg", 4096, 64);
  s.bp->StartFlusher(/*interval_us=*/1000, /*batch_pages=*/16);
  std::vector<PageId> ids = DirtyPages(s, 20, 'Z');

  // The flusher must land every dirty page on disk with zero evictions —
  // write-back fully off the serving/evicting path.
  ASSERT_TRUE(WaitFor([&] {
    return s.disk->stats().writes >= ids.size() + /*NewPage allocations*/ 0 &&
           s.bp->stats().flusher_pages >= ids.size();
  })) << "flusher_pages=" << s.bp->stats().flusher_pages;
  const BufferPoolStats st = s.bp->stats();
  EXPECT_EQ(st.evictions, 0u);
  EXPECT_GT(st.flusher_passes, 0u);
  EXPECT_GE(st.flusher_pages, ids.size());

  // Bytes really reached the device: read them back around the pool.
  std::vector<char> buf(4096);
  for (PageId id : ids) {
    ASSERT_OK(s.disk->ReadPage(id, buf.data()));
    EXPECT_EQ(buf[0], 'Z') << "page " << id;
  }
}

TEST(BufferPoolFlusherTest, RedirtiedPagesAreFlushedAgain) {
  Stack s = MakeStack("flush_redirty", 4096, 16);
  s.bp->StartFlusher(/*interval_us=*/500, /*batch_pages=*/8);
  std::vector<PageId> ids = DirtyPages(s, 4, 'A');
  ASSERT_TRUE(WaitFor([&] { return s.bp->stats().flusher_pages >= 4; }));

  // Modify a page after its first flush; the dirty bit set at unpin must
  // get it flushed again.
  {
    ASSERT_OK_AND_ASSIGN(PageGuard g, s.bp->FetchPage(ids[0]));
    std::memset(g.data(), 'B', 64);
    g.MarkDirty();
  }
  ASSERT_TRUE(WaitFor([&] {
    std::vector<char> buf(4096);
    EXPECT_OK(s.disk->ReadPage(ids[0], buf.data()));
    return buf[0] == 'B';
  }));
}

TEST(BufferPoolFlusherTest, CoexistsWithFlushAllAndEvictAll) {
  Stack s = MakeStack("flush_coexist", 4096, 32);
  s.bp->StartFlusher(/*interval_us=*/200, /*batch_pages=*/4);
  for (int round = 0; round < 20; ++round) {
    std::vector<PageId> ids = DirtyPages(s, 3, static_cast<char>('a' + round));
    // FlushAll/EvictAll serialize against flusher passes; with no pins held
    // EvictAll must succeed (a flusher pass can never be caught mid-pin).
    ASSERT_OK(s.bp->FlushAll());
    ASSERT_OK(s.bp->EvictAll());
    std::vector<char> buf(4096);
    for (PageId id : ids) {
      ASSERT_OK(s.disk->ReadPage(id, buf.data()));
      EXPECT_EQ(buf[0], 'a' + round);
    }
  }
  s.bp->StopFlusher();
}

TEST(BufferPoolFlusherTest, EvictionFindsCleanVictimsAfterFlushing) {
  // Fill a tiny pool with dirty pages, let the flusher clean them, then
  // force evictions with new allocations: the evicting thread should find
  // clean victims (dirty_writebacks stays 0; the flusher did the work).
  Stack s = MakeStack("flush_clean_victims", 4096, 8);
  s.bp->StartFlusher(/*interval_us=*/500, /*batch_pages=*/8);
  DirtyPages(s, 8, 'Q');
  ASSERT_TRUE(WaitFor([&] { return s.bp->stats().flusher_pages >= 8; }));
  // Stop the flusher first so a pass can never hold transient pins while
  // the allocations below hunt for victims in the tiny pool.
  s.bp->StopFlusher();
  DirtyPages(s, 8, 'R');  // evicts the first 8 — all clean by now
  const BufferPoolStats st = s.bp->stats();
  EXPECT_GE(st.evictions, 8u);
  EXPECT_EQ(st.dirty_writebacks, 0u)
      << "evicting thread paid write-backs the flusher should have taken";
}

}  // namespace
}  // namespace nblb
