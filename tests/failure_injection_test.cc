// Failure injection: crashes, lost in-memory state, and non-durable cache
// bytes. The §2.1.2 guarantee under test: a cache may be lost at any moment,
// but a stale cache must NEVER be served.

#include <gtest/gtest.h>

#include "cache/index_cache.h"
#include "common/bytes.h"
#include "exec/table.h"
#include "test_util.h"

namespace nblb {
namespace {

using nblb::testing::MakeStack;
using nblb::testing::Stack;
using nblb::testing::TempFile;

std::string K(uint64_t v) {
  std::string s(8, '\0');
  EncodeBigEndian64(s.data(), v);
  return s;
}

constexpr uint16_t kItemSize = 25;
constexpr size_t kPayload = kItemSize - 8;

std::string PayloadFor(uint64_t tid) {
  std::string p(kPayload, '\0');
  for (size_t i = 0; i < kPayload; ++i) {
    p[i] = static_cast<char>('a' + (tid + i) % 26);
  }
  return p;
}

TEST(FailureInjectionTest, CrashWithPersistedCacheBytesNeverServesThem) {
  TempFile f("fi_crash");
  PageId meta;
  {
    // Session 1: build a tree, cache an item, then FORCE the cache bytes to
    // disk by dirtying the page through a legitimate index write on the same
    // page (piggy-backing, as the paper allows), and "crash" without any
    // orderly shutdown of the in-memory invalidation state.
    DiskManager disk(f.path(), 4096);
    ASSERT_OK(disk.Open());
    BufferPool bp(&disk, 256);
    BTreeOptions opts;
    opts.key_size = 8;
    opts.cache_item_size = kItemSize;
    ASSERT_OK_AND_ASSIGN(auto tree, BTree::Create(&bp, opts));
    for (uint64_t i = 0; i < 8; ++i) {
      ASSERT_OK(tree->Insert(Slice(K(i)), 100 + i));
    }
    meta = tree->meta_page_id();
    IndexCache cache(tree.get());
    {
      ASSERT_OK_AND_ASSIGN(PageGuard leaf, tree->FindLeaf(Slice(K(0))));
      cache.Populate(&leaf, 100, Slice(PayloadFor(100)));
    }
    // An index insert dirties the leaf; the cache bytes ride along to disk.
    ASSERT_OK(tree->Insert(Slice(K(1000)), 1100));
    ASSERT_OK(bp.FlushAll());
    ASSERT_OK(disk.Sync());
    // Crash: destructors run but no InvalidateAll / no checkpoint of the
    // predicate log (it is memory-only by design).
  }
  {
    // Session 2: reopen. BTree::Open must bump CSNidx so the persisted
    // cache bytes are unreadable.
    DiskManager disk(f.path(), 4096);
    ASSERT_OK(disk.Open());
    BufferPool bp(&disk, 256);
    ASSERT_OK_AND_ASSIGN(auto tree, BTree::Open(&bp, meta));
    IndexCache cache(tree.get());
    ASSERT_OK_AND_ASSIGN(PageGuard leaf, tree->FindLeaf(Slice(K(0))));
    char out[kPayload];
    EXPECT_FALSE(cache.Probe(&leaf, 100, out))
        << "crash-surviving cache bytes must be invalid after reopen";
    // The index itself is intact.
    ASSERT_OK_AND_ASSIGN(uint64_t v, tree->Get(Slice(K(5))));
    EXPECT_EQ(v, 105u);
  }
}

TEST(FailureInjectionTest, CrashAfterUpdateWithUnflushedHeapIsStillConsistent) {
  // The update path orders invalidation BEFORE the heap write; a crash
  // between them must not let a future reader see the retracted version via
  // the cache (it can only see the heap's version, whatever is durable).
  TempFile f("fi_update");
  PageId meta;
  {
    DiskManager disk(f.path(), 4096);
    ASSERT_OK(disk.Open());
    BufferPool bp(&disk, 256);
    BTreeOptions opts;
    opts.key_size = 8;
    opts.cache_item_size = kItemSize;
    ASSERT_OK_AND_ASSIGN(auto tree, BTree::Create(&bp, opts));
    ASSERT_OK(tree->Insert(Slice(K(1)), 500));
    meta = tree->meta_page_id();
    IndexCache cache(tree.get());
    ASSERT_OK_AND_ASSIGN(PageGuard leaf, tree->FindLeaf(Slice(K(1))));
    cache.Populate(&leaf, 500, Slice(PayloadFor(500)));
    // Update begins: predicate logged (memory only)... crash here.
    ASSERT_OK(cache.OnTupleModified(Slice(K(1)), 500));
    leaf.Release();
    ASSERT_OK(bp.FlushAll());
  }
  DiskManager disk(f.path(), 4096);
  ASSERT_OK(disk.Open());
  BufferPool bp(&disk, 256);
  ASSERT_OK_AND_ASSIGN(auto tree, BTree::Open(&bp, meta));
  IndexCache cache(tree.get());
  ASSERT_OK_AND_ASSIGN(PageGuard leaf, tree->FindLeaf(Slice(K(1))));
  char out[kPayload];
  EXPECT_FALSE(cache.Probe(&leaf, 500, out));
}

TEST(FailureInjectionTest, EvictionUnderMemoryPressureLosesOnlyCacheNotData) {
  // A tiny buffer pool constantly evicts pages whose cache bytes were never
  // written back. Data correctness must be unaffected; the cache silently
  // restarts cold.
  Stack s = MakeStack("fi_pressure", 4096, 8);  // 8 frames only
  BTreeOptions opts;
  opts.key_size = 8;
  opts.cache_item_size = kItemSize;
  ASSERT_OK_AND_ASSIGN(auto tree, BTree::Create(s.bp.get(), opts));
  IndexCache cache(tree.get());
  for (uint64_t i = 0; i < 2000; ++i) {
    ASSERT_OK(tree->Insert(Slice(K(i)), i));
  }
  char out[kPayload];
  Rng rng(13);
  for (int op = 0; op < 5000; ++op) {
    const uint64_t k = rng.Uniform(2000);
    ASSERT_OK_AND_ASSIGN(PageGuard leaf, tree->FindLeaf(Slice(K(k))));
    if (cache.Probe(&leaf, k, out)) {
      ASSERT_EQ(std::string(out, kPayload), PayloadFor(k))
          << "eviction must never corrupt a cache item";
    } else {
      cache.Populate(&leaf, k, Slice(PayloadFor(k)));
    }
    leaf.Release();
    ASSERT_OK_AND_ASSIGN(uint64_t v, tree->Get(Slice(K(k))));
    ASSERT_EQ(v, k);
  }
}

TEST(FailureInjectionTest, PredicateLogOverflowUnderWriteStorm) {
  // A write storm overflows the predicate log; the implementation must fall
  // back to full invalidation and stay correct throughout.
  Stack s = MakeStack("fi_storm", 4096, 1024);
  Schema schema({{"id", TypeId::kInt64, 0},
                 {"v", TypeId::kInt64, 0},
                 {"pad", TypeId::kChar, 32}});
  TableOptions topts;
  topts.key_columns = {0};
  topts.cached_columns = {1};
  topts.cache_options.predicate_log_limit = 16;  // tiny: overflow quickly
  ASSERT_OK_AND_ASSIGN(auto t, Table::Create(s.bp.get(), schema, topts));
  constexpr int64_t kN = 200;
  std::vector<int64_t> truth(kN, 0);
  for (int64_t i = 0; i < kN; ++i) {
    ASSERT_OK(t->Insert({Value::Int64(i), Value::Int64(0), Value::Char("x")}));
  }
  Rng rng(17);
  for (int op = 0; op < 5000; ++op) {
    const int64_t id = static_cast<int64_t>(rng.Uniform(kN));
    if (rng.Bernoulli(0.5)) {
      truth[id]++;
      ASSERT_OK(t->UpdateByKey(
          {Value::Int64(id)},
          {Value::Int64(id), Value::Int64(truth[id]), Value::Char("x")}));
    } else {
      ASSERT_OK_AND_ASSIGN(Row r, t->LookupProjected({Value::Int64(id)}, {1}));
      ASSERT_EQ(r[0].AsInt(), truth[id]);
    }
  }
  EXPECT_GT(t->cache()->stats().full_invalidations, 0u)
      << "the storm should have overflowed the 16-entry log";
}

}  // namespace
}  // namespace nblb
