// End-to-end property sweep on exec::Table: a randomized mixed workload
// (insert/lookup/update/delete/relocate, covered and uncovered projections)
// must agree with an in-memory oracle at every step, across cache on/off,
// heap placement policies and page sizes.

#include <gtest/gtest.h>

#include <map>

#include "exec/table.h"
#include "test_util.h"

namespace nblb {
namespace {

using nblb::testing::MakeStack;
using nblb::testing::Stack;

struct ExecParam {
  bool enable_cache;
  bool reuse_free_slots;
  size_t page_size;
  size_t predicate_log_limit;
  uint64_t seed;
};

std::string PrintParam(const ::testing::TestParamInfo<ExecParam>& info) {
  const ExecParam& p = info.param;
  std::string out = p.enable_cache ? "cache" : "nocache";
  out += p.reuse_free_slots ? "_reuse" : "_append";
  out += "_pg" + std::to_string(p.page_size);
  out += "_log" + std::to_string(p.predicate_log_limit);
  out += "_s" + std::to_string(p.seed);
  return out;
}

class TablePropertyTest : public ::testing::TestWithParam<ExecParam> {};

Schema TestSchema() {
  return Schema({{"id", TypeId::kInt64, 0},
                 {"a", TypeId::kInt64, 0},
                 {"b", TypeId::kVarchar, 20},
                 {"c", TypeId::kInt32, 0},
                 {"d", TypeId::kChar, 30}});
}

Row MakeRow(int64_t id, uint64_t version) {
  return {Value::Int64(id), Value::Int64(static_cast<int64_t>(version)),
          Value::Varchar("v" + std::to_string(version) + "_" +
                         std::to_string(id)),
          Value::Int32(static_cast<int32_t>((id * 7 + version) % 100000)),
          Value::Char("pad_" + std::to_string(id % 1000))};
}

bool RowsEqual(const Row& x, const Row& y) {
  if (x.size() != y.size()) return false;
  for (size_t i = 0; i < x.size(); ++i) {
    if (x[i] != y[i]) return false;
  }
  return true;
}

TEST_P(TablePropertyTest, AgreesWithOracleUnderMixedWorkload) {
  const ExecParam p = GetParam();
  Stack s = MakeStack("execprop", p.page_size, 8192);
  TableOptions topts;
  topts.key_columns = {0};
  topts.cached_columns = {1, 3};  // a (versioned) and c — both updated often
  topts.enable_index_cache = p.enable_cache;
  topts.reuse_free_slots = p.reuse_free_slots;
  topts.cache_options.predicate_log_limit = p.predicate_log_limit;
  ASSERT_OK_AND_ASSIGN(auto table,
                       Table::Create(s.bp.get(), TestSchema(), topts));

  // Oracle: key -> version (the row is a pure function of key+version).
  std::map<int64_t, uint64_t> oracle;
  Rng rng(p.seed);
  constexpr int kOps = 8000;
  constexpr int64_t kKeySpace = 600;

  for (int op = 0; op < kOps; ++op) {
    const int64_t id = static_cast<int64_t>(rng.Uniform(kKeySpace));
    const std::vector<Value> key = {Value::Int64(id)};
    const double dice = rng.NextDouble();
    const bool present = oracle.count(id) != 0;

    if (dice < 0.30) {  // insert
      Status st = table->Insert(MakeRow(id, 0));
      if (present) {
        ASSERT_TRUE(st.IsAlreadyExists()) << st.ToString();
      } else {
        ASSERT_OK(st);
        oracle[id] = 0;
      }
    } else if (dice < 0.45) {  // update
      if (present) {
        const uint64_t v = ++oracle[id];
        ASSERT_OK(table->UpdateByKey(key, MakeRow(id, v)));
      } else {
        EXPECT_TRUE(table->UpdateByKey(key, MakeRow(id, 1)).IsNotFound());
      }
    } else if (dice < 0.55) {  // delete
      Status st = table->DeleteByKey(key);
      if (present) {
        ASSERT_OK(st);
        oracle.erase(id);
      } else {
        ASSERT_TRUE(st.IsNotFound());
      }
    } else if (dice < 0.60) {  // relocate (delete-then-append clustering op)
      auto r = table->Relocate(key);
      if (present) {
        ASSERT_OK(r.status());
      } else {
        ASSERT_TRUE(r.status().IsNotFound());
      }
    } else if (dice < 0.80) {  // covered projection lookup
      auto r = table->LookupProjected(key, {0, 1, 3});
      if (present) {
        ASSERT_OK(r.status());
        const Row expect = MakeRow(id, oracle[id]);
        ASSERT_EQ((*r)[0], expect[0]);
        ASSERT_EQ((*r)[1], expect[1]) << "stale cached column at op " << op;
        ASSERT_EQ((*r)[2], expect[3]);
      } else {
        ASSERT_TRUE(r.status().IsNotFound());
      }
    } else if (dice < 0.92) {  // uncovered projection (forces heap)
      auto r = table->LookupProjected(key, {2, 4});
      if (present) {
        ASSERT_OK(r.status());
        const Row expect = MakeRow(id, oracle[id]);
        ASSERT_EQ((*r)[0], expect[2]);
        ASSERT_EQ((*r)[1], expect[4]);
      } else {
        ASSERT_TRUE(r.status().IsNotFound());
      }
    } else {  // full row
      auto r = table->GetByKey(key);
      if (present) {
        ASSERT_OK(r.status());
        ASSERT_TRUE(RowsEqual(*r, MakeRow(id, oracle[id]))) << "op " << op;
      } else {
        ASSERT_TRUE(r.status().IsNotFound());
      }
    }
  }

  // Final full-table agreement.
  EXPECT_EQ(table->heap()->tuple_count(), oracle.size());
  EXPECT_EQ(table->index()->num_entries(), oracle.size());
  size_t scanned = 0;
  ASSERT_OK(table->ForEachRow([&](const Rid&, const Row& row) {
    const int64_t id = row[0].AsInt();
    auto it = oracle.find(id);
    EXPECT_NE(it, oracle.end()) << "phantom row id " << id;
    if (it != oracle.end()) {
      EXPECT_TRUE(RowsEqual(row, MakeRow(id, it->second)));
    }
    ++scanned;
    return Status::OK();
  }));
  EXPECT_EQ(scanned, oracle.size());

  // With the cache enabled, the covered lookups must actually have used it.
  if (p.enable_cache) {
    EXPECT_GT(table->stats().answered_from_cache, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TablePropertyTest,
    ::testing::Values(ExecParam{true, false, 4096, 1024, 1},
                      ExecParam{true, true, 4096, 1024, 2},
                      ExecParam{false, false, 4096, 1024, 3},
                      ExecParam{false, true, 4096, 1024, 4},
                      ExecParam{true, false, 1024, 1024, 5},
                      ExecParam{true, false, 16384, 1024, 6},
                      ExecParam{true, true, 1024, 16, 7},   // log thrash
                      ExecParam{true, false, 4096, 4, 8},   // constant bumps
                      ExecParam{true, true, 8192, 1024, 9},
                      ExecParam{true, false, 8192, 64, 10}),
    PrintParam);

}  // namespace
}  // namespace nblb
