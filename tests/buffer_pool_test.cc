#include "storage/buffer_pool.h"

#include <gtest/gtest.h>

#include <cstring>

#include "test_util.h"

namespace nblb {
namespace {

using nblb::testing::MakeStack;
using nblb::testing::Stack;

TEST(BufferPoolTest, NewPageIsZeroedAndPinned) {
  Stack s = MakeStack("bp_new", 4096, 4);
  ASSERT_OK_AND_ASSIGN(PageGuard g, s.bp->NewPage());
  for (size_t i = 0; i < 4096; ++i) ASSERT_EQ(g.data()[i], 0);
  g.data()[0] = 'x';
  g.MarkDirty();
}

TEST(BufferPoolTest, FetchHitsAfterFirstMiss) {
  Stack s = MakeStack("bp_hits", 4096, 4);
  PageId id;
  {
    ASSERT_OK_AND_ASSIGN(PageGuard g, s.bp->NewPage());
    id = g.id();
  }
  s.bp->ResetStats();
  { ASSERT_OK_AND_ASSIGN(PageGuard g, s.bp->FetchPage(id)); }
  { ASSERT_OK_AND_ASSIGN(PageGuard g, s.bp->FetchPage(id)); }
  EXPECT_EQ(s.bp->stats().hits, 2u);
  EXPECT_EQ(s.bp->stats().misses, 0u);
  EXPECT_DOUBLE_EQ(s.bp->stats().HitRate(), 1.0);
}

TEST(BufferPoolTest, EvictionWritesBackDirtyPages) {
  Stack s = MakeStack("bp_evict", 4096, 2);
  PageId first;
  {
    ASSERT_OK_AND_ASSIGN(PageGuard g, s.bp->NewPage());
    first = g.id();
    std::memset(g.data(), 'D', 4096);
    g.MarkDirty();
  }
  // Fill the pool beyond capacity so `first` is evicted.
  for (int i = 0; i < 4; ++i) {
    ASSERT_OK_AND_ASSIGN(PageGuard g, s.bp->NewPage());
  }
  // Re-fetch: must come back from disk with the dirty contents.
  ASSERT_OK_AND_ASSIGN(PageGuard g, s.bp->FetchPage(first));
  for (size_t i = 0; i < 4096; ++i) ASSERT_EQ(g.data()[i], 'D');
  EXPECT_GT(s.bp->stats().evictions, 0u);
}

TEST(BufferPoolTest, LruEvictsLeastRecentlyUsed) {
  Stack s = MakeStack("bp_lru", 4096, 3);
  PageId a, b, c;
  {
    ASSERT_OK_AND_ASSIGN(PageGuard g, s.bp->NewPage());
    a = g.id();
  }
  {
    ASSERT_OK_AND_ASSIGN(PageGuard g, s.bp->NewPage());
    b = g.id();
  }
  {
    ASSERT_OK_AND_ASSIGN(PageGuard g, s.bp->NewPage());
    c = g.id();
  }
  // Touch a and c; b is now LRU.
  { ASSERT_OK_AND_ASSIGN(PageGuard g, s.bp->FetchPage(a)); }
  { ASSERT_OK_AND_ASSIGN(PageGuard g, s.bp->FetchPage(c)); }
  // Allocating a fourth page must evict b.
  { ASSERT_OK_AND_ASSIGN(PageGuard g, s.bp->NewPage()); }
  s.bp->ResetStats();
  { ASSERT_OK_AND_ASSIGN(PageGuard g, s.bp->FetchPage(a)); }
  { ASSERT_OK_AND_ASSIGN(PageGuard g, s.bp->FetchPage(c)); }
  EXPECT_EQ(s.bp->stats().misses, 0u) << "a and c should still be resident";
  { ASSERT_OK_AND_ASSIGN(PageGuard g, s.bp->FetchPage(b)); }
  EXPECT_EQ(s.bp->stats().misses, 1u) << "b should have been evicted";
}

TEST(BufferPoolTest, PinnedPagesCannotBeEvicted) {
  Stack s = MakeStack("bp_pin", 4096, 2);
  ASSERT_OK_AND_ASSIGN(PageGuard g1, s.bp->NewPage());
  ASSERT_OK_AND_ASSIGN(PageGuard g2, s.bp->NewPage());
  // Pool full of pinned pages: a third allocation must fail.
  auto r = s.bp->NewPage();
  EXPECT_TRUE(r.status().IsResourceExhausted());
}

TEST(BufferPoolTest, EvictAllDropsCleanState) {
  Stack s = MakeStack("bp_evictall", 4096, 4);
  PageId id;
  {
    ASSERT_OK_AND_ASSIGN(PageGuard g, s.bp->NewPage());
    id = g.id();
    g.data()[7] = 'q';
    g.MarkDirty();
  }
  ASSERT_OK(s.bp->EvictAll());
  s.bp->ResetStats();
  ASSERT_OK_AND_ASSIGN(PageGuard g, s.bp->FetchPage(id));
  EXPECT_EQ(s.bp->stats().misses, 1u);  // cold fetch
  EXPECT_EQ(g.data()[7], 'q');          // but contents were flushed
}

TEST(BufferPoolTest, EvictAllFailsWithPinnedPage) {
  Stack s = MakeStack("bp_evictall_pin", 4096, 4);
  ASSERT_OK_AND_ASSIGN(PageGuard g, s.bp->NewPage());
  EXPECT_TRUE(s.bp->EvictAll().IsBusy());
}

TEST(BufferPoolTest, GuardMoveTransfersOwnership) {
  Stack s = MakeStack("bp_move", 4096, 4);
  ASSERT_OK_AND_ASSIGN(PageGuard g1, s.bp->NewPage());
  const PageId id = g1.id();
  PageGuard g2 = std::move(g1);
  EXPECT_FALSE(g1.valid());
  EXPECT_TRUE(g2.valid());
  EXPECT_EQ(g2.id(), id);
  g2.Release();
  EXPECT_FALSE(g2.valid());
  // After release the page can be evicted.
  ASSERT_OK(s.bp->EvictAll());
}

TEST(BufferPoolTest, UnpinWithoutDirtyLosesNothingWrittenViaFlush) {
  // Cache-write semantics: a page modified WITHOUT MarkDirty is dropped on
  // eviction — this is the "cache modifications do not dirty the page"
  // behaviour the index cache relies on.
  Stack s = MakeStack("bp_nodirty", 4096, 2);
  PageId id;
  {
    ASSERT_OK_AND_ASSIGN(PageGuard g, s.bp->NewPage());
    id = g.id();
    g.MarkDirty();  // persist the initial zeroed state
  }
  ASSERT_OK(s.bp->FlushAll());
  {
    ASSERT_OK_AND_ASSIGN(PageGuard g, s.bp->FetchPage(id));
    g.data()[0] = 'c';  // cache-style write: no MarkDirty
  }
  ASSERT_OK(s.bp->EvictAll());
  ASSERT_OK_AND_ASSIGN(PageGuard g, s.bp->FetchPage(id));
  EXPECT_EQ(g.data()[0], 0) << "non-dirty write must not survive eviction";
}

}  // namespace
}  // namespace nblb
