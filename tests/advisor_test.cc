#include "encoding/advisor.h"

#include <gtest/gtest.h>

#include "encoding/timestamp.h"
#include "test_util.h"
#include "workload/wikipedia.h"

namespace nblb {
namespace {

TEST(AdvisorTest, AnalyzeReportsPerColumnWaste) {
  Schema schema({{"flag", TypeId::kInt64, 0},
                 {"ts", TypeId::kChar, 14},
                 {"payload", TypeId::kVarchar, 200}});
  std::vector<Row> rows;
  for (int i = 0; i < 500; ++i) {
    rows.push_back({Value::Int64(i % 2),
                    Value::Char(FormatTimestamp14(1293840000 + i)),
                    Value::Varchar("text-" + std::to_string(i))});
  }
  TableWasteReport report = SchemaAdvisor::Analyze("t", schema, rows);
  ASSERT_EQ(report.columns.size(), 3u);
  EXPECT_EQ(report.columns[0].inferred.encoding, PhysicalEncoding::kBoolBit);
  EXPECT_EQ(report.columns[1].inferred.encoding,
            PhysicalEncoding::kTimestampBinary);
  EXPECT_GT(report.WasteFraction(), 0.5);
  // The rendered table mentions every column.
  const std::string text = report.ToString();
  EXPECT_NE(text.find("flag"), std::string::npos);
  EXPECT_NE(text.find("ts"), std::string::npos);
  EXPECT_NE(text.find("waste"), std::string::npos);
}

TEST(AdvisorTest, WikipediaTablesLandInThePapersWasteBand) {
  // §4.1: "they can all reduce their physical encoding waste by 16% to 83%".
  WikipediaScale scale;
  scale.num_pages = 2000;
  scale.revisions_per_page = 5;
  WikipediaSynthesizer synth(scale);

  const std::vector<std::pair<std::string, std::pair<Schema, std::vector<Row>>>>
      tables = {
          {"page", {WikipediaSynthesizer::PageSchema(), synth.pages()}},
          {"revision",
           {WikipediaSynthesizer::RevisionSchema(), synth.revisions()}},
          {"cartel_locations",
           {WikipediaSynthesizer::CartelLocationSchema(),
            synth.GenerateCartelLocationRows(5000)}},
          {"cartel_obd",
           {WikipediaSynthesizer::CartelObdSchema(),
            synth.GenerateCartelObdRows(5000)}},
      };
  for (const auto& [name, data] : tables) {
    TableWasteReport report =
        SchemaAdvisor::Analyze(name, data.first, data.second);
    // The paper reports 16%-83% on its production tables; our synthetic
    // CarTel tables are deliberately pathological, so allow slightly more.
    EXPECT_GE(report.WasteFraction(), 0.16) << name;
    EXPECT_LE(report.WasteFraction(), 0.97) << name;
  }
}

// The materializer must be value-equivalent on every synthesized table: this
// is the proof that "schema as a hint" does not change query answers.
class MaterializeEquivalenceTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(MaterializeEquivalenceTest, RoundTripsEveryValue) {
  const std::string which = GetParam();
  WikipediaScale scale;
  scale.num_pages = 500;
  scale.revisions_per_page = 4;
  WikipediaSynthesizer synth(scale);

  Schema schema;
  std::vector<Row> rows;
  if (which == "page") {
    schema = WikipediaSynthesizer::PageSchema();
    rows = synth.pages();
  } else if (which == "revision") {
    schema = WikipediaSynthesizer::RevisionSchema();
    rows = synth.revisions();
  } else if (which == "cartel_locations") {
    schema = WikipediaSynthesizer::CartelLocationSchema();
    rows = synth.GenerateCartelLocationRows(2000);
  } else {
    schema = WikipediaSynthesizer::CartelObdSchema();
    rows = synth.GenerateCartelObdRows(2000);
  }

  ASSERT_OK_AND_ASSIGN(auto opt, OptimizedTable::Materialize(schema, rows));
  ASSERT_EQ(opt->num_rows(), rows.size());
  for (size_t r = 0; r < rows.size(); ++r) {
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      ASSERT_EQ(opt->Get(r, c), rows[r][c])
          << which << " row " << r << " col " << schema.column(c).name;
    }
  }
  // And it must actually be smaller.
  EXPECT_LT(opt->PayloadBytes(), opt->OriginalBytes()) << which;
}

INSTANTIATE_TEST_SUITE_P(Tables, MaterializeEquivalenceTest,
                         ::testing::Values("page", "revision",
                                           "cartel_locations", "cartel_obd"));

TEST(AdvisorTest, NumericStringWithLeadingZerosFallsBackToPlain) {
  Schema schema({{"code", TypeId::kVarchar, 8}});
  std::vector<Row> rows = {{Value::Varchar("007")}, {Value::Varchar("42")}};
  ASSERT_OK_AND_ASSIGN(auto opt, OptimizedTable::Materialize(schema, rows));
  // "007" would round-trip to "7"; the materializer must refuse the numeric
  // conversion and keep exact bytes.
  EXPECT_EQ(opt->Get(0, 0).AsString(), "007");
  EXPECT_EQ(opt->Get(1, 0).AsString(), "42");
  EXPECT_NE(opt->ColumnEncoding(0), PhysicalEncoding::kNumericString);
}

TEST(AdvisorTest, ConstantColumnStoredOnce) {
  Schema schema({{"rev_deleted", TypeId::kInt64, 0}});
  std::vector<Row> rows(1000, Row{Value::Int64(0)});
  ASSERT_OK_AND_ASSIGN(auto opt, OptimizedTable::Materialize(schema, rows));
  EXPECT_EQ(opt->ColumnEncoding(0), PhysicalEncoding::kDropConstant);
  EXPECT_LT(opt->PayloadBytes(), 64u);
  EXPECT_EQ(opt->Get(999, 0).AsInt(), 0);
}

TEST(AdvisorTest, NegativeRangesUseBaseOffset) {
  Schema schema({{"coolant_temp", TypeId::kInt64, 0}});
  std::vector<Row> rows;
  for (int64_t v = -40; v <= 215; ++v) rows.push_back({Value::Int64(v)});
  ASSERT_OK_AND_ASSIGN(auto opt, OptimizedTable::Materialize(schema, rows));
  for (size_t r = 0; r < rows.size(); ++r) {
    ASSERT_EQ(opt->Get(r, 0).AsInt(), rows[r][0].AsInt());
  }
  // 256 distinct values => 8 bits + base.
  EXPECT_LE(opt->PayloadBytes(), rows.size() + 16);
}

TEST(AdvisorTest, DatabaseReportAggregates) {
  Schema schema({{"flag", TypeId::kInt64, 0}});
  std::vector<Row> rows(100, Row{Value::Int64(1)});
  DatabaseWasteReport db;
  db.tables.push_back(SchemaAdvisor::Analyze("a", schema, rows));
  db.tables.push_back(SchemaAdvisor::Analyze("b", schema, rows));
  EXPECT_DOUBLE_EQ(db.declared_bytes(), 2 * 800.0);
  EXPECT_GT(db.WasteFraction(), 0.9);  // constant column: ~everything is waste
  EXPECT_NE(db.ToString().find("ALL TABLES"), std::string::npos);
}

}  // namespace
}  // namespace nblb
