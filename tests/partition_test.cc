#include <gtest/gtest.h>

#include <unordered_set>

#include "partition/access_tracker.h"
#include "partition/clusterer.h"
#include "partition/forwarding_table.h"
#include "partition/partitioned_table.h"
#include "test_util.h"

namespace nblb {
namespace {

using nblb::testing::MakeStack;
using nblb::testing::Stack;

// ---------------------------------------------------------------------------
// AccessTracker
// ---------------------------------------------------------------------------

TEST(AccessTrackerTest, ExactCountsAndTopK) {
  ExactAccessTracker t;
  for (int i = 0; i < 100; ++i) t.RecordAccess(1);
  for (int i = 0; i < 10; ++i) t.RecordAccess(2);
  t.RecordAccess(3);
  EXPECT_EQ(t.EstimateCount(1), 100u);
  EXPECT_EQ(t.EstimateCount(2), 10u);
  EXPECT_EQ(t.EstimateCount(42), 0u);
  EXPECT_EQ(t.total(), 111u);
  EXPECT_EQ(t.TopK(2), (std::vector<uint64_t>{1, 2}));
}

TEST(AccessTrackerTest, HotSetByMassCoversRequestedFraction) {
  ExactAccessTracker t;
  // 5% of items get ~98% of accesses (the paper's revision skew shape).
  for (uint64_t hot = 0; hot < 50; ++hot) {
    for (int i = 0; i < 999; ++i) t.RecordAccess(hot);
  }
  for (uint64_t cold = 50; cold < 1000; ++cold) t.RecordAccess(cold);
  // Total = 50*999 + 950 = 50900; the 50 hot items cover 98.1% of it, so a
  // 95% mass target must be met by hot items alone.
  auto hot_set = t.HotSetByMass(0.95);
  EXPECT_LE(hot_set.size(), 50u);
  std::unordered_set<uint64_t> s(hot_set.begin(), hot_set.end());
  for (uint64_t item : s) EXPECT_LT(item, 50u);
  // Asking for more mass than the hot items hold pulls in cold items too.
  EXPECT_GT(t.HotSetByMass(0.999).size(), 50u);
}

TEST(AccessTrackerTest, SketchNeverUnderestimates) {
  SketchAccessTracker sketch(1024, 4);
  ExactAccessTracker exact;
  Rng rng(3);
  for (int i = 0; i < 50000; ++i) {
    const uint64_t tid = rng.Uniform(5000);
    sketch.RecordAccess(tid);
    exact.RecordAccess(tid);
  }
  for (uint64_t tid = 0; tid < 5000; ++tid) {
    EXPECT_GE(sketch.EstimateCount(tid), exact.EstimateCount(tid)) << tid;
  }
  EXPECT_EQ(sketch.total(), 50000u);
  // Bounded memory regardless of distinct count.
  EXPECT_EQ(sketch.MemoryBytes(), 1024 * 4 * sizeof(uint32_t));
}

TEST(AccessTrackerTest, SketchIsReasonablyAccurateForHeavyHitters) {
  SketchAccessTracker sketch(4096, 4);
  for (int i = 0; i < 10000; ++i) sketch.RecordAccess(7);
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) sketch.RecordAccess(rng.Uniform(100000));
  const uint64_t est = sketch.EstimateCount(7);
  EXPECT_GE(est, 10000u);
  EXPECT_LE(est, 10300u);  // small overestimate only
}

// ---------------------------------------------------------------------------
// ForwardingTable
// ---------------------------------------------------------------------------

TEST(ForwardingTableTest, ResolveIdentityWhenAbsent) {
  ForwardingTable fwd;
  EXPECT_EQ(fwd.Resolve(42), 42u);
  EXPECT_FALSE(fwd.IsForwarded(42));
}

TEST(ForwardingTableTest, ChainsAreCollapsed) {
  ForwardingTable fwd;
  fwd.AddForwarding(1, 2);
  fwd.AddForwarding(2, 3);
  fwd.AddForwarding(3, 4);
  // Every historical id resolves to the terminal location in one hop.
  EXPECT_EQ(fwd.Resolve(1), 4u);
  EXPECT_EQ(fwd.Resolve(2), 4u);
  EXPECT_EQ(fwd.Resolve(3), 4u);
  EXPECT_EQ(fwd.Resolve(4), 4u);
}

TEST(ForwardingTableTest, MemoryGrowsWithEntries) {
  ForwardingTable fwd;
  const size_t empty = fwd.MemoryBytes();
  for (uint64_t i = 0; i < 1000; ++i) fwd.AddForwarding(i, i + 100000);
  EXPECT_GT(fwd.MemoryBytes(), empty);
  EXPECT_EQ(fwd.size(), 1000u);
}

// ---------------------------------------------------------------------------
// Clusterer + PartitionedTable (exec-level)
// ---------------------------------------------------------------------------

Schema RevSchema() {
  return Schema({{"rev_id", TypeId::kInt64, 0},
                 {"rev_page", TypeId::kInt64, 0},
                 {"rev_len", TypeId::kInt32, 0},
                 {"pad", TypeId::kChar, 120}});
}

TableOptions RevOptions() {
  TableOptions o;
  o.key_columns = {0};
  o.cached_columns = {1, 2};
  return o;
}

Row RevRow(int64_t id) {
  return {Value::Int64(id), Value::Int64(id % 97),
          Value::Int32(static_cast<int32_t>(id % 5000)), Value::Char("x")};
}

TEST(ClustererTest, RelocatedHotTuplesShareTailPages) {
  Stack s = MakeStack("clu_basic", 4096, 2048);
  ASSERT_OK_AND_ASSIGN(auto t, Table::Create(s.bp.get(), RevSchema(),
                                             RevOptions()));
  constexpr int64_t kN = 1000;
  for (int64_t i = 1; i <= kN; ++i) ASSERT_OK(t->Insert(RevRow(i)));

  // Hot set: every 20th tuple (5%), scattered across all pages.
  std::vector<std::vector<Value>> hot_keys;
  for (int64_t i = 1; i <= kN; i += 20) {
    hot_keys.push_back({Value::Int64(i)});
  }
  ForwardingTable fwd;
  ASSERT_OK_AND_ASSIGN(
      ClusterReport report,
      Clusterer::ClusterHotTuples(t.get(), hot_keys, 1.0, &fwd));
  EXPECT_EQ(report.relocated, hot_keys.size());
  EXPECT_EQ(fwd.size(), hot_keys.size());
  EXPECT_GE(report.pages_after, report.pages_before);

  // All hot tuples now live on the few tail pages.
  std::unordered_set<PageId> hot_pages;
  for (const auto& key : hot_keys) {
    auto enc = t->key_codec().EncodeValues(key);
    ASSERT_TRUE(enc.ok());
    ASSERT_OK_AND_ASSIGN(uint64_t tid, t->index()->Get(Slice(*enc)));
    hot_pages.insert(Rid::FromU64(tid).page);
  }
  const size_t per_page = t->heap()->SlotsPerPage();
  const size_t min_pages = (hot_keys.size() + per_page - 1) / per_page;
  EXPECT_LE(hot_pages.size(), min_pages + 1)
      << "hot tuples must be co-located after clustering";

  // Every tuple still resolvable with the right contents.
  for (int64_t i = 1; i <= kN; i += 33) {
    ASSERT_OK_AND_ASSIGN(Row row, t->GetByKey({Value::Int64(i)}));
    EXPECT_EQ(row[0].AsInt(), i);
    EXPECT_EQ(row[1].AsInt(), i % 97);
  }
}

TEST(ClustererTest, FractionControlsHowManyMove) {
  Stack s = MakeStack("clu_fraction", 4096, 2048);
  ASSERT_OK_AND_ASSIGN(auto t, Table::Create(s.bp.get(), RevSchema(),
                                             RevOptions()));
  for (int64_t i = 1; i <= 400; ++i) ASSERT_OK(t->Insert(RevRow(i)));
  std::vector<std::vector<Value>> hot_keys;
  for (int64_t i = 1; i <= 100; ++i) hot_keys.push_back({Value::Int64(i)});
  ASSERT_OK_AND_ASSIGN(ClusterReport r,
                       Clusterer::ClusterHotTuples(t.get(), hot_keys, 0.54));
  EXPECT_EQ(r.relocated, 54u);  // the paper's 54% bar
  EXPECT_TRUE(Clusterer::ClusterHotTuples(t.get(), hot_keys, 1.5)
                  .status()
                  .IsInvalidArgument());
}

TEST(PartitionedTableTest, RoutesRowsByHotSet) {
  Stack s = MakeStack("part_route", 4096, 4096);
  ASSERT_OK_AND_ASSIGN(auto src, Table::Create(s.bp.get(), RevSchema(),
                                               RevOptions()));
  for (int64_t i = 1; i <= 500; ++i) ASSERT_OK(src->Insert(RevRow(i)));
  std::unordered_set<std::string> hot_keys;
  for (int64_t i = 1; i <= 500; i += 10) {
    hot_keys.insert(*src->key_codec().EncodeValues({Value::Int64(i)}));
  }
  ASSERT_OK_AND_ASSIGN(auto pt, PartitionedTable::BuildFromTable(
                                    s.bp.get(), src.get(), hot_keys));
  EXPECT_EQ(pt->hot()->heap()->tuple_count(), hot_keys.size());
  EXPECT_EQ(pt->cold()->heap()->tuple_count(), 500 - hot_keys.size());

  // Hot lookup hits the hot partition; cold lookup falls through.
  ASSERT_OK_AND_ASSIGN(Row hot, pt->LookupProjected({Value::Int64(11)}, {1}));
  EXPECT_EQ(hot[0].AsInt(), 11 % 97);
  ASSERT_OK_AND_ASSIGN(Row cold, pt->LookupProjected({Value::Int64(12)}, {1}));
  EXPECT_EQ(cold[0].AsInt(), 12 % 97);
  EXPECT_EQ(pt->stats().hot_hits, 1u);
  EXPECT_EQ(pt->stats().cold_hits, 1u);
  EXPECT_TRUE(pt->LookupProjected({Value::Int64(9999)}, {1})
                  .status()
                  .IsNotFound());
  EXPECT_EQ(pt->stats().misses, 1u);
}

TEST(PartitionedTableTest, GetBatchByKeyMatchesPerKeyLookups) {
  Stack s = MakeStack("part_batch", 4096, 4096);
  ASSERT_OK_AND_ASSIGN(auto src, Table::Create(s.bp.get(), RevSchema(),
                                               RevOptions()));
  for (int64_t i = 1; i <= 300; ++i) ASSERT_OK(src->Insert(RevRow(i)));
  std::unordered_set<std::string> hot_keys;
  for (int64_t i = 1; i <= 300; i += 3) {
    hot_keys.insert(*src->key_codec().EncodeValues({Value::Int64(i)}));
  }
  ASSERT_OK_AND_ASSIGN(auto pt, PartitionedTable::BuildFromTable(
                                    s.bp.get(), src.get(), hot_keys));

  // Hot keys, cold keys, absent keys, and duplicates in one batch.
  std::vector<int64_t> request = {1, 2, 4, 4, 150, 299, 300, 9999, 777};
  std::vector<std::vector<Value>> keys;
  for (int64_t id : request) keys.push_back({Value::Int64(id)});
  std::vector<Result<Row>> out;
  ASSERT_OK(pt->GetBatchByKey(keys, &out));
  ASSERT_EQ(out.size(), request.size());
  for (size_t i = 0; i < request.size(); ++i) {
    if (request[i] <= 300) {
      ASSERT_TRUE(out[i].ok()) << "id " << request[i];
      EXPECT_EQ((*out[i])[0].AsInt(), request[i]);
      EXPECT_EQ((*out[i])[1].AsInt(), request[i] % 97);
    } else {
      EXPECT_TRUE(out[i].status().IsNotFound()) << "id " << request[i];
    }
  }
  // Hot set = ids ≡ 1 (mod 3): so 1 and 4 (twice) are hot; 2, 150, 299,
  // 300 are cold; 9999 and 777 were never inserted.
  EXPECT_EQ(pt->stats().hot_hits.load(), 3u);
  EXPECT_EQ(pt->stats().cold_hits.load(), 4u);
  EXPECT_EQ(pt->stats().misses.load(), 2u);
  EXPECT_EQ(pt->stats().lookups.load(), request.size());
}

TEST(PartitionedTableTest, HotIndexIsMuchSmallerThanSourceIndex) {
  // The mechanism behind Fig 3's 8.4x: the hot partition's index is a tiny
  // fraction of the full index.
  Stack s = MakeStack("part_size", 4096, 8192);
  ASSERT_OK_AND_ASSIGN(auto src, Table::Create(s.bp.get(), RevSchema(),
                                               RevOptions()));
  for (int64_t i = 1; i <= 4000; ++i) ASSERT_OK(src->Insert(RevRow(i)));
  std::unordered_set<std::string> hot_keys;
  for (int64_t i = 1; i <= 4000; i += 20) {
    hot_keys.insert(*src->key_codec().EncodeValues({Value::Int64(i)}));
  }
  ASSERT_OK_AND_ASSIGN(auto pt, PartitionedTable::BuildFromTable(
                                    s.bp.get(), src.get(), hot_keys));
  ASSERT_OK_AND_ASSIGN(BTreeStats full, src->index()->ComputeStats());
  ASSERT_OK_AND_ASSIGN(BTreeStats hot, pt->hot()->index()->ComputeStats());
  EXPECT_LT(hot.leaf_pages * 10, full.leaf_pages)
      << "hot index should be ~5% of the full index";
}

TEST(PartitionedTableTest, InsertHotDemotesDisplacedRow) {
  Stack s = MakeStack("part_demote", 4096, 4096);
  ASSERT_OK_AND_ASSIGN(auto src, Table::Create(s.bp.get(), RevSchema(),
                                               RevOptions()));
  ASSERT_OK(src->Insert(RevRow(1)));
  std::unordered_set<std::string> hot_keys = {
      *src->key_codec().EncodeValues({Value::Int64(1)})};
  ASSERT_OK_AND_ASSIGN(auto pt, PartitionedTable::BuildFromTable(
                                    s.bp.get(), src.get(), hot_keys));
  // New revision 2 replaces revision 1 as hot; 1 is demoted to cold.
  std::vector<Value> displaced = {Value::Int64(1)};
  ASSERT_OK(pt->InsertHot(RevRow(2), &displaced));
  EXPECT_EQ(pt->hot()->heap()->tuple_count(), 1u);
  EXPECT_EQ(pt->cold()->heap()->tuple_count(), 1u);
  pt->ResetStats();
  ASSERT_OK(pt->LookupProjected({Value::Int64(2)}, {0}).status());
  EXPECT_EQ(pt->stats().hot_hits, 1u);
  ASSERT_OK(pt->LookupProjected({Value::Int64(1)}, {0}).status());
  EXPECT_EQ(pt->stats().cold_hits, 1u);
}

}  // namespace
}  // namespace nblb
