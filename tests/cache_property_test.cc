// Parameterized property sweep for the index cache: across item sizes,
// bucket sizes, page sizes and key counts, a randomized probe/populate/
// modify workload must never produce a stale or corrupt payload, and the
// stats must stay coherent.

#include <gtest/gtest.h>

#include <unordered_map>

#include "cache/index_cache.h"
#include "common/bytes.h"
#include "test_util.h"

namespace nblb {
namespace {

using nblb::testing::MakeStack;
using nblb::testing::Stack;

struct CacheParam {
  uint16_t item_size;    // 8-byte tid + payload
  size_t bucket_slots;   // N
  size_t page_size;
  uint64_t num_keys;
  size_t predicate_log_limit;
  uint64_t seed;
};

std::string PrintParam(const ::testing::TestParamInfo<CacheParam>& info) {
  const CacheParam& p = info.param;
  return "item" + std::to_string(p.item_size) + "_N" +
         std::to_string(p.bucket_slots) + "_pg" + std::to_string(p.page_size) +
         "_k" + std::to_string(p.num_keys) + "_log" +
         std::to_string(p.predicate_log_limit) + "_s" +
         std::to_string(p.seed);
}

class IndexCachePropertyTest : public ::testing::TestWithParam<CacheParam> {};

std::string K(uint64_t v) {
  std::string s(8, '\0');
  EncodeBigEndian64(s.data(), v);
  return s;
}

// Payload derives from tid + version so stale reads are detectable.
std::string PayloadFor(uint64_t tid, uint64_t version, size_t payload_size) {
  std::string p(payload_size, '\0');
  for (size_t i = 0; i < payload_size; ++i) {
    p[i] = static_cast<char>('A' + (tid * 31 + version * 7 + i) % 26);
  }
  return p;
}

TEST_P(IndexCachePropertyTest, NeverStaleNeverCorrupt) {
  const CacheParam p = GetParam();
  const size_t payload_size = p.item_size - 8;
  Stack s = MakeStack("icprop", p.page_size, 4096);

  BTreeOptions bopts;
  bopts.key_size = 8;
  bopts.cache_item_size = p.item_size;
  ASSERT_OK_AND_ASSIGN(auto tree, BTree::Create(s.bp.get(), bopts));
  for (uint64_t i = 0; i < p.num_keys; ++i) {
    ASSERT_OK(tree->Insert(Slice(K(i)), i));
  }

  IndexCacheOptions copts;
  copts.bucket_slots = p.bucket_slots;
  copts.predicate_log_limit = p.predicate_log_limit;
  copts.rng_seed = p.seed;
  IndexCache cache(tree.get(), copts);

  // Ground truth: current version of each tuple.
  std::unordered_map<uint64_t, uint64_t> version;
  Rng rng(p.seed);
  std::vector<char> out(payload_size);

  constexpr int kOps = 20000;
  for (int op = 0; op < kOps; ++op) {
    const uint64_t k = rng.Uniform(p.num_keys);
    ASSERT_OK_AND_ASSIGN(PageGuard leaf, tree->FindLeaf(Slice(K(k))));
    const double dice = rng.NextDouble();
    if (dice < 0.70) {
      // Lookup: a hit must return the CURRENT version's payload.
      if (cache.Probe(&leaf, k, out.data())) {
        ASSERT_EQ(std::string(out.data(), payload_size),
                  PayloadFor(k, version[k], payload_size))
            << "stale or corrupt payload for key " << k << " at op " << op;
      } else {
        cache.Populate(&leaf, k,
                       Slice(PayloadFor(k, version[k], payload_size)));
      }
    } else if (dice < 0.90) {
      // Modify: bump the version, log the predicate.
      version[k]++;
      ASSERT_OK(cache.OnTupleModified(Slice(K(k)), k));
    } else {
      // Occasional full invalidation.
      if (op % 977 == 0) {
        ASSERT_OK(cache.InvalidateAll());
      } else {
        cache.Populate(&leaf, k,
                       Slice(PayloadFor(k, version[k], payload_size)));
      }
    }
  }

  // Stats coherence.
  const IndexCacheStats& st = cache.stats();
  EXPECT_EQ(st.hits + st.misses, st.probes);
  EXPECT_GT(st.hits, 0u);
  EXPECT_GT(st.populates, 0u);
  // Every cached item is still structurally valid: tid tags decode to known
  // keys (CountCachedItems walks and validates slot geometry on every leaf).
  ASSERT_OK_AND_ASSIGN(uint64_t live, cache.CountCachedItems());
  EXPECT_GE(live, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IndexCachePropertyTest,
    ::testing::Values(
        // Item-size sweep (minimum 9-byte item to wide items).
        CacheParam{9, 8, 4096, 64, 1024, 1},
        CacheParam{17, 8, 4096, 64, 1024, 2},
        CacheParam{25, 8, 4096, 64, 1024, 3},   // the paper's 25-byte items
        CacheParam{64, 8, 4096, 64, 1024, 4},
        CacheParam{200, 8, 4096, 64, 1024, 5},
        // Bucket-size sweep.
        CacheParam{25, 1, 4096, 64, 1024, 6},
        CacheParam{25, 4, 4096, 64, 1024, 7},
        CacheParam{25, 64, 4096, 64, 1024, 8},
        // Page-size sweep.
        CacheParam{25, 8, 1024, 32, 1024, 9},
        CacheParam{25, 8, 16384, 256, 1024, 10},
        // Multi-leaf trees (keys spread across many pages).
        CacheParam{25, 8, 1024, 2000, 1024, 11},
        CacheParam{25, 8, 4096, 5000, 1024, 12},
        // Tiny predicate log: constant overflow + full invalidations.
        CacheParam{25, 8, 4096, 64, 4, 13},
        CacheParam{25, 8, 1024, 2000, 8, 14}),
    PrintParam);

}  // namespace
}  // namespace nblb
