#include "storage/heap_file.h"

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "test_util.h"

namespace nblb {
namespace {

using nblb::testing::MakeStack;
using nblb::testing::Stack;

std::string MakeTuple(size_t size, char fill) { return std::string(size, fill); }

TEST(HeapFileTest, InsertGetRoundTrip) {
  Stack s = MakeStack("heap_basic");
  ASSERT_OK_AND_ASSIGN(auto heap, HeapFile::Create(s.bp.get(), 64));
  ASSERT_OK_AND_ASSIGN(Rid rid, heap->Insert(Slice(MakeTuple(64, 'a'))));
  std::string out;
  ASSERT_OK(heap->Get(rid, &out));
  EXPECT_EQ(out, MakeTuple(64, 'a'));
  EXPECT_EQ(heap->tuple_count(), 1u);
}

TEST(HeapFileTest, WrongSizeTupleRejected) {
  Stack s = MakeStack("heap_size");
  ASSERT_OK_AND_ASSIGN(auto heap, HeapFile::Create(s.bp.get(), 64));
  EXPECT_TRUE(heap->Insert(Slice(MakeTuple(63, 'a'))).status()
                  .IsInvalidArgument());
}

TEST(HeapFileTest, UpdateOverwritesInPlace) {
  Stack s = MakeStack("heap_update");
  ASSERT_OK_AND_ASSIGN(auto heap, HeapFile::Create(s.bp.get(), 32));
  ASSERT_OK_AND_ASSIGN(Rid rid, heap->Insert(Slice(MakeTuple(32, 'a'))));
  ASSERT_OK(heap->Update(rid, Slice(MakeTuple(32, 'b'))));
  std::string out;
  ASSERT_OK(heap->Get(rid, &out));
  EXPECT_EQ(out, MakeTuple(32, 'b'));
  EXPECT_EQ(heap->tuple_count(), 1u);
}

TEST(HeapFileTest, DeleteMakesSlotUnreachable) {
  Stack s = MakeStack("heap_delete");
  ASSERT_OK_AND_ASSIGN(auto heap, HeapFile::Create(s.bp.get(), 32));
  ASSERT_OK_AND_ASSIGN(Rid rid, heap->Insert(Slice(MakeTuple(32, 'a'))));
  ASSERT_OK(heap->Delete(rid));
  std::string out;
  EXPECT_TRUE(heap->Get(rid, &out).IsNotFound());
  EXPECT_TRUE(heap->Delete(rid).IsNotFound());
  EXPECT_TRUE(heap->Update(rid, Slice(MakeTuple(32, 'b'))).IsNotFound());
  EXPECT_EQ(heap->tuple_count(), 0u);
}

TEST(HeapFileTest, AppendOnlyPolicyLeavesHoles) {
  // The paper's §3.1 premise: default placement appends and never backfills,
  // so deletes leave dead space ("locality waste").
  Stack s = MakeStack("heap_appendonly", 4096, 512);
  ASSERT_OK_AND_ASSIGN(auto heap, HeapFile::Create(s.bp.get(), 400));
  std::vector<Rid> rids;
  for (int i = 0; i < 50; ++i) {
    ASSERT_OK_AND_ASSIGN(Rid rid, heap->Insert(Slice(MakeTuple(400, 'x'))));
    rids.push_back(rid);
  }
  const size_t pages_before = heap->pages().size();
  // Delete half, insert the same number back.
  for (int i = 0; i < 50; i += 2) ASSERT_OK(heap->Delete(rids[i]));
  for (int i = 0; i < 25; ++i) {
    ASSERT_OK_AND_ASSIGN(Rid rid, heap->Insert(Slice(MakeTuple(400, 'y'))));
    // New tuples must land at or after the previous tail (no hole reuse).
    EXPECT_GE(rid.page, rids.back().page);
  }
  EXPECT_GT(heap->pages().size(), pages_before);
  ASSERT_OK_AND_ASSIGN(HeapFileStats st, heap->ComputeStats());
  EXPECT_LT(st.Utilization(), 1.0);
}

TEST(HeapFileTest, ReusePolicyFillsHoles) {
  Stack s = MakeStack("heap_reuse", 4096, 512);
  HeapFileOptions opts;
  opts.reuse_free_slots = true;
  ASSERT_OK_AND_ASSIGN(auto heap, HeapFile::Create(s.bp.get(), 400, opts));
  std::vector<Rid> rids;
  for (int i = 0; i < 50; ++i) {
    ASSERT_OK_AND_ASSIGN(Rid rid, heap->Insert(Slice(MakeTuple(400, 'x'))));
    rids.push_back(rid);
  }
  const size_t pages_before = heap->pages().size();
  for (int i = 0; i < 50; i += 2) ASSERT_OK(heap->Delete(rids[i]));
  for (int i = 0; i < 25; ++i) {
    ASSERT_OK(heap->Insert(Slice(MakeTuple(400, 'y'))).status());
  }
  EXPECT_EQ(heap->pages().size(), pages_before) << "holes should be reused";
}

TEST(HeapFileTest, SpansMultiplePagesAndScansInOrder) {
  Stack s = MakeStack("heap_span", 4096, 512);
  ASSERT_OK_AND_ASSIGN(auto heap, HeapFile::Create(s.bp.get(), 100));
  const size_t per_page = heap->SlotsPerPage();
  const size_t n = per_page * 3 + 5;
  for (size_t i = 0; i < n; ++i) {
    std::string t(100, static_cast<char>('a' + (i % 26)));
    ASSERT_OK(heap->Insert(Slice(t)).status());
  }
  EXPECT_EQ(heap->pages().size(), 4u);
  size_t seen = 0;
  ASSERT_OK(heap->ForEach([&](const Rid&, const char* bytes) {
    EXPECT_EQ(bytes[0], static_cast<char>('a' + (seen % 26)));
    ++seen;
    return Status::OK();
  }));
  EXPECT_EQ(seen, n);
}

TEST(HeapFileTest, AttachRebuildsStateFromDisk) {
  Stack s = MakeStack("heap_attach", 4096, 512);
  PageId first;
  std::map<uint64_t, std::string> expected;
  {
    ASSERT_OK_AND_ASSIGN(auto heap, HeapFile::Create(s.bp.get(), 50));
    first = heap->first_page_id();
    Rng rng(4);
    for (int i = 0; i < 300; ++i) {
      std::string t = rng.NextString(50);
      ASSERT_OK_AND_ASSIGN(Rid rid, heap->Insert(Slice(t)));
      expected[rid.ToU64()] = t;
    }
  }
  ASSERT_OK(s.bp->FlushAll());
  ASSERT_OK_AND_ASSIGN(auto heap, HeapFile::Attach(s.bp.get(), 50, first));
  EXPECT_EQ(heap->tuple_count(), expected.size());
  for (const auto& [tid, t] : expected) {
    std::string out;
    ASSERT_OK(heap->Get(Rid::FromU64(tid), &out));
    EXPECT_EQ(out, t);
  }
}

TEST(HeapFileTest, AttachDetectsTupleSizeMismatch) {
  Stack s = MakeStack("heap_attach_bad", 4096, 512);
  PageId first;
  {
    ASSERT_OK_AND_ASSIGN(auto heap, HeapFile::Create(s.bp.get(), 50));
    first = heap->first_page_id();
  }
  EXPECT_TRUE(HeapFile::Attach(s.bp.get(), 64, first).status().IsCorruption());
}

TEST(HeapFileTest, UtilizationReflectsScatteredHotTuples) {
  // Reconstructs the §3.1 measurement: one live ("hot") tuple per page after
  // the cold ones are deleted — low utilization, many pages.
  Stack s = MakeStack("heap_util", 4096, 512);
  ASSERT_OK_AND_ASSIGN(auto heap, HeapFile::Create(s.bp.get(), 200));
  const size_t per_page = heap->SlotsPerPage();
  std::vector<Rid> rids;
  for (size_t i = 0; i < per_page * 10; ++i) {
    ASSERT_OK_AND_ASSIGN(Rid rid, heap->Insert(Slice(MakeTuple(200, 'x'))));
    rids.push_back(rid);
  }
  // Keep exactly one tuple per page.
  for (const Rid& rid : rids) {
    if (rid.slot != 0) ASSERT_OK(heap->Delete(rid));
  }
  ASSERT_OK_AND_ASSIGN(HeapFileStats st, heap->ComputeStats());
  EXPECT_DOUBLE_EQ(st.Utilization(), 1.0 / static_cast<double>(per_page));
}

}  // namespace
}  // namespace nblb
