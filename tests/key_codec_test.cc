#include "catalog/key_codec.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "test_util.h"

namespace nblb {
namespace {

// Property: for any two keys, memcmp order of encodings == logical order.
template <typename MakeValue>
void CheckOrderPreservation(TypeId type, size_t length, MakeValue make,
                            int iters = 2000) {
  Schema s({{"k", type, length}});
  KeyCodec codec(&s, {0});
  Rng rng(1234);
  for (int i = 0; i < iters; ++i) {
    const Value a = make(&rng);
    const Value b = make(&rng);
    auto ea = codec.EncodeValues({a});
    auto eb = codec.EncodeValues({b});
    ASSERT_TRUE(ea.ok() && eb.ok());
    const int logical = a.Compare(b);
    const int physical = Slice(*ea).Compare(Slice(*eb));
    EXPECT_EQ(logical < 0, physical < 0) << a.ToString() << " vs " << b.ToString();
    EXPECT_EQ(logical == 0, physical == 0);
  }
}

TEST(KeyCodecTest, Int64OrderPreserved) {
  CheckOrderPreservation(TypeId::kInt64, 0, [](Rng* rng) {
    return Value::Int64(static_cast<int64_t>(rng->NextU64()));
  });
}

TEST(KeyCodecTest, Int32OrderPreservedIncludingNegatives) {
  CheckOrderPreservation(TypeId::kInt32, 0, [](Rng* rng) {
    return Value::Int32(static_cast<int32_t>(rng->NextU64()));
  });
}

TEST(KeyCodecTest, Int16AndInt8OrderPreserved) {
  CheckOrderPreservation(TypeId::kInt16, 0, [](Rng* rng) {
    return Value::Int16(static_cast<int16_t>(rng->NextU64()));
  });
  CheckOrderPreservation(TypeId::kInt8, 0, [](Rng* rng) {
    return Value::Int8(static_cast<int8_t>(rng->NextU64()));
  });
}

TEST(KeyCodecTest, Float64OrderPreserved) {
  CheckOrderPreservation(TypeId::kFloat64, 0, [](Rng* rng) {
    // Mix magnitudes and signs.
    const double mag = rng->NextDouble() * 1e12;
    return Value::Float64(rng->Bernoulli(0.5) ? mag : -mag);
  });
}

TEST(KeyCodecTest, StringOrderPreserved) {
  CheckOrderPreservation(TypeId::kVarchar, 12, [](Rng* rng) {
    return Value::Varchar(rng->NextString(rng->Uniform(12)));
  });
}

TEST(KeyCodecTest, TimestampOrderPreserved) {
  CheckOrderPreservation(TypeId::kTimestamp, 0, [](Rng* rng) {
    return Value::Timestamp(static_cast<uint32_t>(rng->NextU64()));
  });
}

TEST(KeyCodecTest, CompositeKeyOrdersBySignificance) {
  // The paper's name_title index: (namespace, title).
  Schema s({{"ns", TypeId::kInt32, 0}, {"title", TypeId::kVarchar, 20}});
  KeyCodec codec(&s, {0, 1});
  auto enc = [&](int32_t ns, const std::string& title) {
    auto r = codec.EncodeValues({Value::Int32(ns), Value::Varchar(title)});
    EXPECT_TRUE(r.ok());
    return *r;
  };
  // Namespace dominates.
  EXPECT_LT(Slice(enc(0, "zzz")).Compare(Slice(enc(1, "aaa"))), 0);
  // Title breaks ties.
  EXPECT_LT(Slice(enc(0, "apple")).Compare(Slice(enc(0, "banana"))), 0);
  EXPECT_EQ(Slice(enc(2, "x")).Compare(Slice(enc(2, "x"))), 0);
}

TEST(KeyCodecTest, DecodeRoundTrip) {
  Schema s({{"ns", TypeId::kInt32, 0},
            {"title", TypeId::kVarchar, 20},
            {"w", TypeId::kFloat64, 0}});
  KeyCodec codec(&s, {0, 1, 2});
  const std::vector<Value> key = {Value::Int32(-7), Value::Varchar("Main_Page"),
                                  Value::Float64(2.5)};
  ASSERT_OK_AND_ASSIGN(std::string bytes, codec.EncodeValues(key));
  EXPECT_EQ(bytes.size(), codec.key_size());
  std::vector<Value> out = codec.Decode(Slice(bytes));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], key[0]);
  EXPECT_EQ(out[1], key[1]);
  EXPECT_EQ(out[2], key[2]);
}

TEST(KeyCodecTest, EncodeFromRowExtractsKeyColumns) {
  Schema s({{"a", TypeId::kInt64, 0},
            {"b", TypeId::kVarchar, 8},
            {"c", TypeId::kInt32, 0}});
  KeyCodec codec(&s, {2, 0});  // key = (c, a)
  Row row = {Value::Int64(10), Value::Varchar("mid"), Value::Int32(3)};
  ASSERT_OK_AND_ASSIGN(std::string from_row, codec.EncodeFromRow(row));
  ASSERT_OK_AND_ASSIGN(std::string from_vals,
                       codec.EncodeValues({Value::Int32(3), Value::Int64(10)}));
  EXPECT_EQ(from_row, from_vals);
}

TEST(KeyCodecTest, ErrorsOnBadInput) {
  Schema s({{"k", TypeId::kInt32, 0}});
  KeyCodec codec(&s, {0});
  EXPECT_TRUE(codec.EncodeValues({}).status().IsInvalidArgument());
  EXPECT_TRUE(codec.EncodeValues({Value::Varchar("x")})
                  .status()
                  .IsInvalidArgument());
  Schema s2({{"k", TypeId::kVarchar, 4}});
  KeyCodec codec2(&s2, {0});
  EXPECT_TRUE(codec2.EncodeValues({Value::Varchar("12345")})
                  .status()
                  .IsInvalidArgument());
}

TEST(KeyCodecTest, SortingEncodedKeysMatchesSortingValues) {
  Schema s({{"k", TypeId::kInt64, 0}});
  KeyCodec codec(&s, {0});
  Rng rng(5);
  std::vector<int64_t> vals;
  std::vector<std::string> keys;
  for (int i = 0; i < 500; ++i) {
    const int64_t v = static_cast<int64_t>(rng.NextU64());
    vals.push_back(v);
    keys.push_back(*codec.EncodeValues({Value::Int64(v)}));
  }
  std::sort(vals.begin(), vals.end());
  std::sort(keys.begin(), keys.end());
  for (size_t i = 0; i < vals.size(); ++i) {
    EXPECT_EQ(codec.Decode(Slice(keys[i]))[0].AsInt(), vals[i]);
  }
}

}  // namespace
}  // namespace nblb
