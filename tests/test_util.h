// Shared helpers for nblb tests: temp files, small schemas, stack builders.

#pragma once

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>

#include "common/result.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace nblb::testing {

/// Unique temp file path removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& tag) {
    path_ = ::testing::TempDir() + "nblb_" + tag + "_" +
            std::to_string(::getpid()) + "_" + std::to_string(counter_++) +
            ".db";
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  static inline int counter_ = 0;
  std::string path_;
};

/// DiskManager + BufferPool over a temp file.
struct Stack {
  std::unique_ptr<TempFile> file;
  std::unique_ptr<DiskManager> disk;
  std::unique_ptr<BufferPool> bp;
};

inline Stack MakeStack(const std::string& tag, size_t page_size = 8192,
                       size_t frames = 256) {
  Stack s;
  s.file.reset(new TempFile(tag));
  s.disk.reset(new DiskManager(s.file->path(), page_size));
  EXPECT_TRUE(s.disk->Open().ok());
  s.bp.reset(new BufferPool(s.disk.get(), frames));
  return s;
}

#define ASSERT_OK(expr)                                    \
  do {                                                     \
    ::nblb::Status _st = (expr);                           \
    ASSERT_TRUE(_st.ok()) << _st.ToString();               \
  } while (0)

#define EXPECT_OK(expr)                                    \
  do {                                                     \
    ::nblb::Status _st = (expr);                           \
    EXPECT_TRUE(_st.ok()) << _st.ToString();               \
  } while (0)

#define ASSERT_OK_AND_ASSIGN(lhs, rexpr)                   \
  auto NBLB_CONCAT(_r_, __LINE__) = (rexpr);               \
  ASSERT_TRUE(NBLB_CONCAT(_r_, __LINE__).ok())             \
      << NBLB_CONCAT(_r_, __LINE__).status().ToString();   \
  lhs = std::move(NBLB_CONCAT(_r_, __LINE__)).ValueOrDie()

}  // namespace nblb::testing
