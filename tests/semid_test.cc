#include <gtest/gtest.h>

#include "common/rng.h"
#include "semid/reduction.h"
#include "storage/rid.h"
#include "semid/routing.h"
#include "semid/semantic_id.h"
#include "test_util.h"

namespace nblb {
namespace {

TEST(SemanticIdTest, EncodeDecodeRoundTrip) {
  SemanticIdCodec codec(16);
  const uint64_t id = codec.Encode(42, 123456789);
  EXPECT_EQ(codec.PartitionOf(id), 42u);
  EXPECT_EQ(codec.LocalOf(id), 123456789u);
}

TEST(SemanticIdTest, RoundTripPropertyAcrossBitWidths) {
  Rng rng(1);
  for (unsigned bits : {1u, 4u, 8u, 16u, 24u, 32u}) {
    SemanticIdCodec codec(bits);
    for (int i = 0; i < 2000; ++i) {
      const uint32_t part =
          static_cast<uint32_t>(rng.NextU64() & codec.MaxPartition());
      const uint64_t local = rng.NextU64() & codec.MaxLocal();
      const uint64_t id = codec.Encode(part, local);
      ASSERT_EQ(codec.PartitionOf(id), part) << "bits " << bits;
      ASSERT_EQ(codec.LocalOf(id), local) << "bits " << bits;
    }
  }
}

TEST(SemanticIdTest, WithPartitionRehomesPreservingLocal) {
  // §4.2: "simply updating the ID value is enough to physically move the
  // tuple" when data is clustered on the ID.
  SemanticIdCodec codec(8);
  const uint64_t id = codec.Encode(3, 999);
  const uint64_t moved = codec.WithPartition(id, 200);
  EXPECT_EQ(codec.PartitionOf(moved), 200u);
  EXPECT_EQ(codec.LocalOf(moved), 999u);
}

TEST(SemanticIdTest, IdsClusterByPartitionUnderIntegerOrder) {
  // All IDs of partition p sort before all IDs of partition p+1 — the
  // property that makes ID-clustered tables physically partitioned.
  SemanticIdCodec codec(16);
  EXPECT_LT(codec.Encode(1, codec.MaxLocal()), codec.Encode(2, 0));
}

TEST(RouterTest, EmbeddedAndTableRoutersAgree) {
  SemanticIdCodec codec(10);
  EmbeddedRouter embedded(codec);
  TableRouter table;
  Rng rng(2);
  std::vector<uint64_t> ids;
  for (int i = 0; i < 10000; ++i) {
    const uint32_t part = static_cast<uint32_t>(rng.Uniform(64));
    const uint64_t id = codec.Encode(part, i);
    table.Add(id, part);
    ids.push_back(id);
  }
  for (uint64_t id : ids) {
    ASSERT_OK_AND_ASSIGN(uint32_t from_table, table.Route(id));
    ASSERT_OK_AND_ASSIGN(uint32_t from_embedded, embedded.Route(id));
    ASSERT_EQ(from_table, from_embedded);
  }
}

TEST(RouterTest, TableRouterMemoryGrowsEmbeddedDoesNot) {
  // §4.2: "Such tables can easily become a resource and performance
  // bottleneck". The routing table grows linearly; the embedded router is
  // constant-size.
  SemanticIdCodec codec(10);
  EmbeddedRouter embedded(codec);
  TableRouter table;
  for (uint64_t i = 0; i < 100000; ++i) {
    table.Add(codec.Encode(static_cast<uint32_t>(i % 64), i), i % 64);
  }
  EXPECT_GT(table.MemoryBytes(), 100000u * 12);
  EXPECT_LE(embedded.MemoryBytes(), 16u);
}

TEST(RouterTest, TableRouterMissesUnknownIds) {
  TableRouter table;
  table.Add(5, 1);
  EXPECT_TRUE(table.Route(6).status().IsNotFound());
}

TEST(ReductionTest, DetectsFunctionalDependency) {
  // rev_text_id tracks rev_id 1:1 in our Wikipedia synthesizer — an FD the
  // paper says justifies dropping the dependent column.
  Schema schema({{"rev_id", TypeId::kInt64, 0},
                 {"rev_text_id", TypeId::kInt64, 0},
                 {"rev_len", TypeId::kInt64, 0}});
  std::vector<Row> rows;
  Rng rng(3);
  for (int64_t i = 1; i <= 1000; ++i) {
    rows.push_back({Value::Int64(i), Value::Int64(i),
                    Value::Int64(static_cast<int64_t>(rng.Uniform(100)))});
  }
  EXPECT_TRUE(HasFunctionalDependency(schema, rows, {0}, 1));
  // rev_len is NOT determined by rev_id%10 (collisions with different lens).
  Schema schema2({{"k", TypeId::kInt64, 0}, {"v", TypeId::kInt64, 0}});
  std::vector<Row> rows2 = {{Value::Int64(1), Value::Int64(10)},
                            {Value::Int64(1), Value::Int64(20)}};
  EXPECT_FALSE(HasFunctionalDependency(schema2, rows2, {0}, 1));
}

TEST(ReductionTest, CompositeDeterminants) {
  Schema schema({{"a", TypeId::kInt64, 0},
                 {"b", TypeId::kVarchar, 8},
                 {"c", TypeId::kInt64, 0}});
  std::vector<Row> rows = {
      {Value::Int64(1), Value::Varchar("x"), Value::Int64(7)},
      {Value::Int64(1), Value::Varchar("y"), Value::Int64(8)},
      {Value::Int64(1), Value::Varchar("x"), Value::Int64(7)},
  };
  EXPECT_TRUE(HasFunctionalDependency(schema, rows, {0, 1}, 2));
  EXPECT_FALSE(HasFunctionalDependency(schema, rows, {0}, 2));
}

TEST(ReductionTest, DroppedColumnSavings) {
  Schema schema({{"id", TypeId::kInt64, 0}, {"v", TypeId::kVarchar, 20}});
  EXPECT_EQ(DroppedColumnBytesPerRow(schema, 0), 8u);
  EXPECT_EQ(DroppedColumnBytesPerRow(schema, 1), 22u);
}

TEST(ReductionTest, RidIsAUsableAddressProxy) {
  // §4.2: "ID fields representing uniqueness can be eliminated and the
  // tuple's physical address can be used as a proxy". Rids pack into 48 bits
  // and are unique by construction.
  Rid a(10, 3), b(10, 4), c(11, 3);
  EXPECT_NE(a.ToU64(), b.ToU64());
  EXPECT_NE(a.ToU64(), c.ToU64());
  EXPECT_EQ(Rid::FromU64(a.ToU64()), a);
}

}  // namespace
}  // namespace nblb
