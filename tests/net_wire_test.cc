// Wire-protocol robustness: frame round trips, streaming reassembly from
// torn byte arrivals, and the permanent-error contract on garbage bytes,
// oversized length prefixes, and malformed payloads.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "net/wire.h"
#include "test_util.h"

namespace nblb::net {
namespace {

RequestBatch SampleBatch() {
  RequestBatch batch;
  batch.push_back(Request::Get(42));
  batch.push_back(Request::GetProjected(43, {0, 2}));
  batch.push_back(Request::Insert(
      44, {Value::Int64(44), Value::Char("hello"), Value::Float64(2.5),
           Value::Bool(true), Value::Timestamp(123456)}));
  batch.push_back(Request::Update(45, {Value::Int64(45), Value::Varchar("")}));
  batch.push_back(Request::Delete(46));
  return batch;
}

void ExpectBatchEq(const RequestBatch& a, const RequestBatch& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind) << "request " << i;
    EXPECT_EQ(a[i].id, b[i].id) << "request " << i;
    EXPECT_EQ(a[i].projection, b[i].projection) << "request " << i;
    ASSERT_EQ(a[i].row.size(), b[i].row.size()) << "request " << i;
    for (size_t c = 0; c < a[i].row.size(); ++c) {
      EXPECT_EQ(a[i].row[c].type(), b[i].row[c].type());
      EXPECT_EQ(a[i].row[c].ToString(), b[i].row[c].ToString());
    }
  }
}

TEST(NetWireTest, RequestFrameRoundTrip) {
  const RequestBatch batch = SampleBatch();
  std::string wire;
  AppendRequestFrame(77, batch, &wire);

  FrameDecoder decoder;
  decoder.Append(wire.data(), wire.size());
  Frame frame;
  ASSERT_EQ(decoder.Pop(&frame), FrameDecoder::Next::kFrame);
  EXPECT_EQ(frame.type, FrameType::kRequest);
  EXPECT_EQ(frame.request_id, 77u);
  EXPECT_EQ(decoder.Pop(&frame), FrameDecoder::Next::kNeedMore);

  auto decoded = DecodeRequestPayload(frame.payload.data(),
                                      frame.payload.size());
  ASSERT_OK(decoded.status());
  ExpectBatchEq(batch, *decoded);
}

TEST(NetWireTest, ResponseFrameRoundTrip) {
  BatchResult result;
  RequestResult ok;
  ok.status = Status::OK();
  ok.row = {Value::Int64(7), Value::Char("payload")};
  ok.shard = 3;
  result.results.push_back(ok);
  RequestResult missing;
  missing.status = Status::NotFound("id 9 not found");
  missing.shard = 1;
  result.results.push_back(missing);
  RequestResult busy;
  busy.status = Status::Busy();
  result.results.push_back(busy);

  std::string wire;
  AppendResponseFrame(501, result, &wire);
  FrameDecoder decoder;
  decoder.Append(wire.data(), wire.size());
  Frame frame;
  ASSERT_EQ(decoder.Pop(&frame), FrameDecoder::Next::kFrame);
  EXPECT_EQ(frame.type, FrameType::kResponse);
  EXPECT_EQ(frame.request_id, 501u);

  auto decoded = DecodeResponsePayload(frame.payload.data(),
                                       frame.payload.size());
  ASSERT_OK(decoded.status());
  ASSERT_EQ(decoded->results.size(), 3u);
  ASSERT_OK(decoded->results[0].status);
  ASSERT_EQ(decoded->results[0].row.size(), 2u);
  EXPECT_EQ(decoded->results[0].row[1].AsString(), "payload");
  EXPECT_EQ(decoded->results[0].shard, 3u);
  EXPECT_TRUE(decoded->results[1].status.IsNotFound());
  EXPECT_EQ(decoded->results[1].status.message(), "id 9 not found");
  EXPECT_TRUE(decoded->results[2].status.IsBusy());
}

TEST(NetWireTest, BusyFrameRoundTrip) {
  std::string wire;
  AppendBusyFrame(99, &wire);
  EXPECT_EQ(wire.size(), kFrameHeaderBytes);
  FrameDecoder decoder;
  decoder.Append(wire.data(), wire.size());
  Frame frame;
  ASSERT_EQ(decoder.Pop(&frame), FrameDecoder::Next::kFrame);
  EXPECT_EQ(frame.type, FrameType::kBusy);
  EXPECT_EQ(frame.request_id, 99u);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(NetWireTest, TornFramesReassembleByteByByte) {
  // Three frames, delivered one byte at a time: TCP's worst case.
  std::string wire;
  AppendRequestFrame(1, SampleBatch(), &wire);
  AppendBusyFrame(2, &wire);
  AppendRequestFrame(3, {Request::Get(5)}, &wire);

  FrameDecoder decoder;
  std::vector<Frame> frames;
  Frame frame;
  for (char byte : wire) {
    decoder.Append(&byte, 1);
    FrameDecoder::Next next;
    while ((next = decoder.Pop(&frame)) == FrameDecoder::Next::kFrame) {
      frames.push_back(frame);
    }
    ASSERT_EQ(next, FrameDecoder::Next::kNeedMore);
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].request_id, 1u);
  EXPECT_EQ(frames[1].type, FrameType::kBusy);
  EXPECT_EQ(frames[2].request_id, 3u);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(NetWireTest, ManyFramesInOneAppend) {
  std::string wire;
  constexpr int kFrames = 64;
  for (int i = 0; i < kFrames; ++i) {
    AppendRequestFrame(static_cast<uint64_t>(i),
                       {Request::Get(static_cast<uint64_t>(i))}, &wire);
  }
  FrameDecoder decoder;
  decoder.Append(wire.data(), wire.size());
  Frame frame;
  for (int i = 0; i < kFrames; ++i) {
    ASSERT_EQ(decoder.Pop(&frame), FrameDecoder::Next::kFrame) << i;
    EXPECT_EQ(frame.request_id, static_cast<uint64_t>(i));
  }
  EXPECT_EQ(decoder.Pop(&frame), FrameDecoder::Next::kNeedMore);
}

TEST(NetWireTest, GarbageBytesPoisonTheDecoder) {
  FrameDecoder decoder;
  // 16 bytes of 0xff: length prefix 0xffffffff (over any cap) and frame
  // type 0xff — either check alone is fatal.
  std::string garbage(32, '\xff');
  decoder.Append(garbage.data(), garbage.size());
  Frame frame;
  ASSERT_EQ(decoder.Pop(&frame), FrameDecoder::Next::kError);
  EXPECT_FALSE(decoder.error().empty());
  // Poisoned: even a valid frame appended afterwards stays an error —
  // framing cannot be resynchronized.
  std::string valid;
  AppendBusyFrame(1, &valid);
  decoder.Append(valid.data(), valid.size());
  EXPECT_EQ(decoder.Pop(&frame), FrameDecoder::Next::kError);
}

TEST(NetWireTest, UnknownFrameTypeIsError) {
  std::string wire;
  AppendBusyFrame(7, &wire);
  wire[4] = 0x09;  // type byte: not a FrameType
  FrameDecoder decoder;
  decoder.Append(wire.data(), wire.size());
  Frame frame;
  EXPECT_EQ(decoder.Pop(&frame), FrameDecoder::Next::kError);
}

TEST(NetWireTest, OversizedLengthPrefixIsErrorBeforePayloadArrives) {
  // A length prefix above the cap must fail from the header alone — the
  // decoder must not wait for (or buffer) 100 MiB of payload.
  FrameDecoder decoder(/*max_payload=*/1024);
  std::string header;
  AppendRequestFrame(1, {Request::Get(1)}, &header);
  header.resize(kFrameHeaderBytes);
  header[0] = '\x00';
  header[1] = '\x00';
  header[2] = '\x40';  // 4 MiB little-endian: 0x00400000
  header[3] = '\x00';
  decoder.Append(header.data(), header.size());
  Frame frame;
  ASSERT_EQ(decoder.Pop(&frame), FrameDecoder::Next::kError);
  EXPECT_NE(decoder.error().find("exceeds cap"), std::string::npos);
}

TEST(NetWireTest, PayloadAtTheCapStillDecodes) {
  FrameDecoder decoder(/*max_payload=*/1 << 16);
  RequestBatch batch;
  batch.push_back(Request::Insert(
      1, {Value::Int64(1), Value::Char(std::string(1000, 'x'))}));
  std::string wire;
  AppendRequestFrame(5, batch, &wire);
  decoder.Append(wire.data(), wire.size());
  Frame frame;
  ASSERT_EQ(decoder.Pop(&frame), FrameDecoder::Next::kFrame);
  auto decoded =
      DecodeRequestPayload(frame.payload.data(), frame.payload.size());
  ASSERT_OK(decoded.status());
}

TEST(NetWireTest, UnknownRequestKindFailsDecode) {
  std::string wire;
  AppendRequestFrame(1, {Request::Get(1)}, &wire);
  wire[kFrameHeaderBytes + 4] = 0x7f;  // kind byte of request 0
  FrameDecoder decoder;
  decoder.Append(wire.data(), wire.size());
  Frame frame;
  ASSERT_EQ(decoder.Pop(&frame), FrameDecoder::Next::kFrame);
  auto decoded =
      DecodeRequestPayload(frame.payload.data(), frame.payload.size());
  EXPECT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("unknown request kind"),
            std::string::npos);
}

TEST(NetWireTest, TruncatedPayloadFailsDecode) {
  std::string wire;
  AppendRequestFrame(1, SampleBatch(), &wire);
  // Strip the frame header, then truncate the payload mid-row.
  std::string payload = wire.substr(kFrameHeaderBytes);
  auto decoded = DecodeRequestPayload(payload.data(), payload.size() - 7);
  EXPECT_FALSE(decoded.ok());
}

TEST(NetWireTest, TrailingBytesFailDecode) {
  std::string wire;
  AppendRequestFrame(1, {Request::Get(1)}, &wire);
  std::string payload = wire.substr(kFrameHeaderBytes);
  payload.append("xx");
  auto decoded = DecodeRequestPayload(payload.data(), payload.size());
  EXPECT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("trailing"), std::string::npos);
}

TEST(NetWireTest, ForgedHugeRequestCountFailsWithoutAllocating) {
  // A tiny payload claiming 2^32-1 requests must be rejected from the count
  // alone — sizing an allocation from it would be a remote OOM/DoS.
  std::string payload;
  char count[4];
  std::memset(count, 0xff, 4);  // count = 0xffffffff
  payload.append(count, 4);
  payload.append(16, '\0');  // a few bytes of "requests"
  auto decoded = DecodeRequestPayload(payload.data(), payload.size());
  EXPECT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("cannot fit"), std::string::npos);
}

TEST(NetWireTest, ForgedHugeResponseCountFailsWithoutAllocating) {
  std::string payload;
  char count[4];
  std::memset(count, 0xff, 4);
  payload.append(count, 4);
  payload.append(16, '\0');
  auto decoded = DecodeResponsePayload(payload.data(), payload.size());
  EXPECT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("cannot fit"), std::string::npos);
}

TEST(NetWireTest, EncodeRejectsOversizedProjection) {
  // 65536 projection columns cannot be represented by the u16 count on the
  // wire; encoding must fail loudly instead of truncating the count.
  RequestBatch batch;
  batch.push_back(Request::GetProjected(1, std::vector<size_t>(65536, 0)));
  std::string wire;
  Status st = AppendRequestFrame(1, batch, &wire);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(wire.empty());  // failed encode leaves the buffer untouched
  EXPECT_NE(st.message().find("overflows"), std::string::npos);
}

TEST(NetWireTest, EncodeRejectsOversizedRow) {
  RequestBatch batch;
  batch.push_back(Request::Insert(1, Row(65536, Value::Bool(true))));
  std::string wire;
  Status st = AppendRequestFrame(1, batch, &wire);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(wire.empty());
}

TEST(NetWireTest, MalformedRowTypeFailsDecode) {
  RequestBatch batch;
  batch.push_back(Request::Insert(1, {Value::Int64(1)}));
  std::string wire;
  AppendRequestFrame(1, batch, &wire);
  // Row layout after kind+id: u16 ncols, then u8 TypeId — corrupt the type.
  wire[kFrameHeaderBytes + 4 + 1 + 8 + 2] = 0x66;
  std::string payload = wire.substr(kFrameHeaderBytes);
  auto decoded = DecodeRequestPayload(payload.data(), payload.size());
  EXPECT_FALSE(decoded.ok());
}

TEST(NetWireTest, LongLivedDecoderCompactsItsBuffer) {
  // Stream many frames through one decoder; the consumed prefix must be
  // reclaimed instead of growing without bound.
  FrameDecoder decoder;
  std::string wire;
  RequestBatch batch;
  batch.push_back(Request::Insert(
      1, {Value::Int64(1), Value::Char(std::string(4096, 'p'))}));
  AppendRequestFrame(1, batch, &wire);
  Frame frame;
  for (int i = 0; i < 1000; ++i) {
    decoder.Append(wire.data(), wire.size());
    ASSERT_EQ(decoder.Pop(&frame), FrameDecoder::Next::kFrame);
    ASSERT_EQ(decoder.Pop(&frame), FrameDecoder::Next::kNeedMore);
    ASSERT_EQ(decoder.buffered_bytes(), 0u);
  }
}

}  // namespace
}  // namespace nblb::net
