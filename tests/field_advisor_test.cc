#include "cache/field_advisor.h"

#include <gtest/gtest.h>

#include "exec/table.h"
#include "test_util.h"

namespace nblb {
namespace {

// The §2.1.4 running example: page table, name_title key, 4 candidate
// fields, one dominant query class.
Schema PageSchema() {
  return Schema({{"page_namespace", TypeId::kInt32, 0},   // 0 (key)
                 {"page_title", TypeId::kVarchar, 24},    // 1 (key)
                 {"page_id", TypeId::kInt64, 0},          // 2
                 {"page_latest", TypeId::kInt64, 0},      // 3
                 {"page_is_redirect", TypeId::kBool, 0},  // 4
                 {"page_len", TypeId::kInt32, 0},         // 5
                 {"page_touched", TypeId::kChar, 14},     // 6 (hot update)
                 {"page_counter", TypeId::kInt64, 0}});   // 7 (hot update)
}

FieldAdvisorInput BaseInput(const Schema* schema) {
  FieldAdvisorInput in;
  in.schema = schema;
  in.key_columns = {0, 1};
  // The popular query class (40% of the workload) projects the 4 fields.
  in.query_classes = {
      {{2, 3, 4, 5}, 0.40},   // page lookup
      {{2, 6}, 0.15},         // touched check (needs hot column 6)
      {{7}, 0.10},            // counter read (hot column 7)
      {{0, 1}, 0.05},         // existence check: key-only
  };
  // page_touched and page_counter are updated constantly.
  in.update_rates = {0, 0, 0.001, 0.02, 0.001, 0.01, 0.9, 2.0};
  in.max_item_size = 64;
  in.update_weight = 0.3;
  return in;
}

TEST(FieldAdvisorTest, PicksThePapersFourFields) {
  Schema schema = PageSchema();
  FieldAdvisorInput in = BaseInput(&schema);
  FieldSelection sel = CacheFieldAdvisor::Recommend(in);
  // The stable, coverage-heavy fields are chosen...
  EXPECT_EQ(sel.cached_columns, (std::vector<size_t>{2, 3, 4, 5}));
  // ...covering the 40% class plus the key-only class.
  EXPECT_NEAR(sel.covered_frequency, 0.45, 1e-9);
  // Item = 8 (tid) + 8 + 8 + 1 + 4.
  EXPECT_EQ(sel.item_size, 29u);
  EXPECT_FALSE(sel.rationale.empty());
}

TEST(FieldAdvisorTest, HotColumnsAreRejectedByUpdatePenalty) {
  Schema schema = PageSchema();
  FieldAdvisorInput in = BaseInput(&schema);
  FieldSelection sel = CacheFieldAdvisor::Recommend(in);
  for (size_t c : sel.cached_columns) {
    EXPECT_NE(c, 6u) << "page_touched updates too often to cache";
    EXPECT_NE(c, 7u) << "page_counter updates too often to cache";
  }
  // With the penalty disabled, covering the 15% class becomes worth it.
  in.update_weight = 0.0;
  FieldSelection greedy = CacheFieldAdvisor::Recommend(in);
  EXPECT_GT(greedy.covered_frequency, sel.covered_frequency);
}

TEST(FieldAdvisorTest, ByteBudgetIsRespected) {
  Schema schema = PageSchema();
  FieldAdvisorInput in = BaseInput(&schema);
  in.max_item_size = 17;  // tid + at most 9 bytes of fields
  FieldSelection sel = CacheFieldAdvisor::Recommend(in);
  EXPECT_LE(sel.item_size, 17u);
  size_t field_bytes = 0;
  for (size_t c : sel.cached_columns) field_bytes += schema.column(c).ByteSize();
  EXPECT_EQ(sel.item_size, 8 + field_bytes);
}

TEST(FieldAdvisorTest, KeyOnlyWorkloadCachesNothing) {
  Schema schema = PageSchema();
  FieldAdvisorInput in = BaseInput(&schema);
  in.query_classes = {{{0, 1}, 1.0}};  // everything answerable from the key
  FieldSelection sel = CacheFieldAdvisor::Recommend(in);
  EXPECT_TRUE(sel.cached_columns.empty());
  EXPECT_DOUBLE_EQ(sel.covered_frequency, 1.0);
  EXPECT_EQ(sel.item_size, 8u);
}

TEST(FieldAdvisorTest, AllHotColumnsMeansCacheDisabled) {
  Schema schema = PageSchema();
  FieldAdvisorInput in = BaseInput(&schema);
  // Every non-key column churns heavily.
  in.update_rates = {0, 0, 5, 5, 5, 5, 5, 5};
  in.update_weight = 1.0;
  FieldSelection sel = CacheFieldAdvisor::Recommend(in);
  EXPECT_TRUE(sel.cached_columns.empty());
  EXPECT_EQ(sel.rationale.size(), 1u);
}

TEST(FieldAdvisorTest, PartialCoverageIsWorthless) {
  // A class projecting {2,3} is only covered if BOTH are cached; caching
  // just one gains nothing, so the advisor must pick both or neither.
  Schema schema = PageSchema();
  FieldAdvisorInput in = BaseInput(&schema);
  in.query_classes = {{{2, 3}, 0.5}};
  FieldSelection sel = CacheFieldAdvisor::Recommend(in);
  EXPECT_EQ(sel.cached_columns, (std::vector<size_t>{2, 3}));
  EXPECT_DOUBLE_EQ(sel.covered_frequency, 0.5);
}

TEST(FieldAdvisorTest, GreedyPrefersDenserCoveragePerByte) {
  // Two disjoint classes with equal frequency; one needs a 1-byte bool, the
  // other a 22-byte varchar. With room for only one, the bool wins.
  Schema schema({{"k", TypeId::kInt64, 0},
                 {"flag", TypeId::kBool, 0},
                 {"name", TypeId::kVarchar, 20}});
  FieldAdvisorInput in;
  in.schema = &schema;
  in.key_columns = {0};
  in.query_classes = {{{1}, 0.3}, {{2}, 0.3}};
  in.update_rates = {0, 0, 0};
  in.max_item_size = 16;  // tid + 8: fits the bool, not the varchar
  FieldSelection sel = CacheFieldAdvisor::Recommend(in);
  EXPECT_EQ(sel.cached_columns, (std::vector<size_t>{1}));
  EXPECT_DOUBLE_EQ(sel.covered_frequency, 0.3);
}

TEST(FieldAdvisorTest, SelectionIsUsableAsTableOptions) {
  // The advisor's output plugs straight into Table::Create.
  using nblb::testing::MakeStack;
  auto s = MakeStack("fieldadvisor");
  Schema schema = PageSchema();
  FieldAdvisorInput in = BaseInput(&schema);
  FieldSelection sel = CacheFieldAdvisor::Recommend(in);

  TableOptions topts;
  topts.key_columns = in.key_columns;
  topts.cached_columns = sel.cached_columns;
  ASSERT_OK_AND_ASSIGN(auto table, Table::Create(s.bp.get(), schema, topts));
  ASSERT_OK(table->Insert({Value::Int32(0), Value::Varchar("Main"),
                           Value::Int64(1), Value::Int64(10),
                           Value::Bool(false), Value::Int32(100),
                           Value::Char("20110101000000"), Value::Int64(0)}));
  // The recommended projection really is covered.
  EXPECT_TRUE(table->ProjectionCoveredByIndex(in.query_classes[0]
                                                  .projected_columns));
  ASSERT_OK(table->LookupProjected({Value::Int32(0), Value::Varchar("Main")},
                                   {2, 3, 4, 5})
                .status());
  ASSERT_OK_AND_ASSIGN(
      Row r, table->LookupProjected({Value::Int32(0), Value::Varchar("Main")},
                                    {2, 3, 4, 5}));
  EXPECT_EQ(r[1].AsInt(), 10);
  EXPECT_EQ(table->stats().answered_from_cache, 1u);
}

}  // namespace
}  // namespace nblb
