#include "exec/table.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace nblb {
namespace {

using nblb::testing::MakeStack;
using nblb::testing::Stack;

// The paper's running example: Wikipedia's page table with the name_title
// index (namespace, title) caching 4 additional fields.
Schema PageSchema() {
  return Schema({{"page_namespace", TypeId::kInt32, 0},
                 {"page_title", TypeId::kVarchar, 20},
                 {"page_id", TypeId::kInt64, 0},
                 {"page_latest", TypeId::kInt64, 0},
                 {"page_is_redirect", TypeId::kBool, 0},
                 {"page_len", TypeId::kInt32, 0},
                 {"page_comment", TypeId::kVarchar, 40}});
}

TableOptions PageOptions(bool cache = true) {
  TableOptions o;
  o.key_columns = {0, 1};             // (namespace, title)
  o.cached_columns = {2, 3, 4, 5};    // id, latest, is_redirect, len
  o.enable_index_cache = cache;
  return o;
}

Row PageRow(int32_t ns, const std::string& title, int64_t id) {
  return {Value::Int32(ns),     Value::Varchar(title),
          Value::Int64(id),     Value::Int64(id * 10),
          Value::Bool(id % 7 == 0), Value::Int32(static_cast<int32_t>(id % 9000)),
          Value::Varchar("comment_" + std::to_string(id))};
}

std::vector<Value> KeyOf(int32_t ns, const std::string& title) {
  return {Value::Int32(ns), Value::Varchar(title)};
}

TEST(TableTest, InsertAndGetByKey) {
  Stack s = MakeStack("tbl_basic");
  ASSERT_OK_AND_ASSIGN(auto t,
                       Table::Create(s.bp.get(), PageSchema(), PageOptions()));
  ASSERT_OK(t->Insert(PageRow(0, "Main_Page", 1)));
  ASSERT_OK_AND_ASSIGN(Row row, t->GetByKey(KeyOf(0, "Main_Page")));
  EXPECT_EQ(row[2].AsInt(), 1);
  EXPECT_EQ(row[6].AsString(), "comment_1");
  EXPECT_TRUE(t->GetByKey(KeyOf(0, "Nope")).status().IsNotFound());
}

TEST(TableTest, DuplicateKeyInsertFailsAndRollsBackHeap) {
  Stack s = MakeStack("tbl_dup");
  ASSERT_OK_AND_ASSIGN(auto t,
                       Table::Create(s.bp.get(), PageSchema(), PageOptions()));
  ASSERT_OK(t->Insert(PageRow(0, "X", 1)));
  EXPECT_TRUE(t->Insert(PageRow(0, "X", 2)).IsAlreadyExists());
  EXPECT_EQ(t->heap()->tuple_count(), 1u);
  ASSERT_OK_AND_ASSIGN(Row row, t->GetByKey(KeyOf(0, "X")));
  EXPECT_EQ(row[2].AsInt(), 1);
}

TEST(TableTest, CoveredProjectionIsAnsweredFromCacheOnSecondLookup) {
  Stack s = MakeStack("tbl_cache");
  ASSERT_OK_AND_ASSIGN(auto t,
                       Table::Create(s.bp.get(), PageSchema(), PageOptions()));
  for (int64_t i = 0; i < 50; ++i) {
    ASSERT_OK(t->Insert(PageRow(0, "T" + std::to_string(i), i)));
  }
  const std::vector<size_t> proj = {2, 3};  // page_id, page_latest (cached)
  // First lookup: heap fetch + populate.
  ASSERT_OK_AND_ASSIGN(Row r1, t->LookupProjected(KeyOf(0, "T7"), proj));
  EXPECT_EQ(r1[0].AsInt(), 7);
  EXPECT_EQ(t->stats().answered_from_cache, 0u);
  EXPECT_EQ(t->stats().heap_fetches, 1u);
  // Second lookup: answered from the index page, no heap access.
  ASSERT_OK_AND_ASSIGN(Row r2, t->LookupProjected(KeyOf(0, "T7"), proj));
  EXPECT_EQ(r2[0].AsInt(), 7);
  EXPECT_EQ(r2[1].AsInt(), 70);
  EXPECT_EQ(t->stats().answered_from_cache, 1u);
  EXPECT_EQ(t->stats().heap_fetches, 1u) << "no second heap fetch";
}

TEST(TableTest, UncoveredProjectionAlwaysFetchesHeap) {
  Stack s = MakeStack("tbl_uncovered");
  ASSERT_OK_AND_ASSIGN(auto t,
                       Table::Create(s.bp.get(), PageSchema(), PageOptions()));
  ASSERT_OK(t->Insert(PageRow(0, "X", 3)));
  const std::vector<size_t> proj = {2, 6};  // page_comment is NOT cached
  EXPECT_FALSE(t->ProjectionCoveredByIndex(proj));
  for (int i = 0; i < 3; ++i) {
    ASSERT_OK_AND_ASSIGN(Row r, t->LookupProjected(KeyOf(0, "X"), proj));
    EXPECT_EQ(r[1].AsString(), "comment_3");
  }
  EXPECT_EQ(t->stats().answered_from_cache, 0u);
  EXPECT_EQ(t->stats().heap_fetches, 3u);
}

TEST(TableTest, ProjectionIncludingKeyColumnsIsCovered) {
  Stack s = MakeStack("tbl_keyproj");
  ASSERT_OK_AND_ASSIGN(auto t,
                       Table::Create(s.bp.get(), PageSchema(), PageOptions()));
  ASSERT_OK(t->Insert(PageRow(4, "Talk", 9)));
  const std::vector<size_t> proj = {0, 1, 2};  // ns, title (key) + id (cached)
  EXPECT_TRUE(t->ProjectionCoveredByIndex(proj));
  ASSERT_OK_AND_ASSIGN(Row warm, t->LookupProjected(KeyOf(4, "Talk"), proj));
  ASSERT_OK_AND_ASSIGN(Row hit, t->LookupProjected(KeyOf(4, "Talk"), proj));
  EXPECT_EQ(hit[0].AsInt(), 4);
  EXPECT_EQ(hit[1].AsString(), "Talk");
  EXPECT_EQ(hit[2].AsInt(), 9);
  EXPECT_EQ(t->stats().answered_from_cache, 1u);
}

TEST(TableTest, UpdateInvalidatesCachedCopy) {
  // THE correctness property of §2.1.2: after an update, no lookup may see
  // the stale cached version.
  Stack s = MakeStack("tbl_update");
  ASSERT_OK_AND_ASSIGN(auto t,
                       Table::Create(s.bp.get(), PageSchema(), PageOptions()));
  ASSERT_OK(t->Insert(PageRow(0, "Page", 100)));
  const std::vector<size_t> proj = {3};  // page_latest, cached
  // Warm the cache.
  ASSERT_OK(t->LookupProjected(KeyOf(0, "Page"), proj).status());
  ASSERT_OK(t->LookupProjected(KeyOf(0, "Page"), proj).status());
  ASSERT_EQ(t->stats().answered_from_cache, 1u);
  // Update page_latest 1000 -> 1001.
  Row updated = PageRow(0, "Page", 100);
  updated[3] = Value::Int64(1001);
  ASSERT_OK(t->UpdateByKey(KeyOf(0, "Page"), updated));
  // Every subsequent read must see the new value.
  for (int i = 0; i < 3; ++i) {
    ASSERT_OK_AND_ASSIGN(Row r, t->LookupProjected(KeyOf(0, "Page"), proj));
    EXPECT_EQ(r[0].AsInt(), 1001) << "stale cache served after update";
  }
}

TEST(TableTest, UpdateCannotChangeKeyColumns) {
  Stack s = MakeStack("tbl_keychange");
  ASSERT_OK_AND_ASSIGN(auto t,
                       Table::Create(s.bp.get(), PageSchema(), PageOptions()));
  ASSERT_OK(t->Insert(PageRow(0, "A", 1)));
  EXPECT_TRUE(t->UpdateByKey(KeyOf(0, "A"), PageRow(0, "B", 1))
                  .IsInvalidArgument());
}

TEST(TableTest, DeleteRemovesEverywhere) {
  Stack s = MakeStack("tbl_delete");
  ASSERT_OK_AND_ASSIGN(auto t,
                       Table::Create(s.bp.get(), PageSchema(), PageOptions()));
  ASSERT_OK(t->Insert(PageRow(0, "Gone", 5)));
  // Warm the cache so the delete has something to invalidate.
  ASSERT_OK(t->LookupProjected(KeyOf(0, "Gone"), {2}).status());
  ASSERT_OK(t->DeleteByKey(KeyOf(0, "Gone")));
  EXPECT_TRUE(t->GetByKey(KeyOf(0, "Gone")).status().IsNotFound());
  EXPECT_TRUE(t->LookupProjected(KeyOf(0, "Gone"), {2}).status().IsNotFound());
  EXPECT_EQ(t->heap()->tuple_count(), 0u);
  EXPECT_EQ(t->index()->num_entries(), 0u);
}

TEST(TableTest, RelocateMovesTupleToHeapTail) {
  Stack s = MakeStack("tbl_reloc");
  ASSERT_OK_AND_ASSIGN(auto t,
                       Table::Create(s.bp.get(), PageSchema(), PageOptions()));
  for (int64_t i = 0; i < 200; ++i) {
    ASSERT_OK(t->Insert(PageRow(0, "R" + std::to_string(i), i)));
  }
  ASSERT_OK_AND_ASSIGN(uint64_t tid_before,
                       t->index()->Get(Slice(*t->key_codec().EncodeValues(
                           KeyOf(0, "R10")))));
  ASSERT_OK_AND_ASSIGN(Rid new_rid, t->Relocate(KeyOf(0, "R10")));
  EXPECT_NE(new_rid.ToU64(), tid_before);
  EXPECT_GE(new_rid.page, Rid::FromU64(tid_before).page);
  // Lookup still works and returns the same logical row.
  ASSERT_OK_AND_ASSIGN(Row row, t->GetByKey(KeyOf(0, "R10")));
  EXPECT_EQ(row[2].AsInt(), 10);
}

TEST(TableTest, RelocateDoesNotServeStaleCacheForRecycledRid) {
  // Relocation frees the old RID; a cached item keyed by that RID must not
  // leak into lookups for whatever tuple reuses it later.
  Stack s = MakeStack("tbl_reloc_stale");
  TableOptions opts = PageOptions();
  opts.reuse_free_slots = true;  // force RID recycling
  ASSERT_OK_AND_ASSIGN(auto t, Table::Create(s.bp.get(), PageSchema(), opts));
  ASSERT_OK(t->Insert(PageRow(0, "Old", 1)));
  // Warm the cache for "Old".
  ASSERT_OK(t->LookupProjected(KeyOf(0, "Old"), {2}).status());
  // Move it; the old slot becomes free and is reused by the next insert.
  ASSERT_OK(t->Relocate(KeyOf(0, "Old")).status());
  ASSERT_OK(t->Insert(PageRow(0, "New", 2)));
  ASSERT_OK_AND_ASSIGN(Row r, t->LookupProjected(KeyOf(0, "New"), {2}));
  EXPECT_EQ(r[0].AsInt(), 2) << "cache served the old tuple for a reused RID";
}

TEST(TableTest, DisabledCacheStillAnswersQueries) {
  Stack s = MakeStack("tbl_nocache");
  ASSERT_OK_AND_ASSIGN(
      auto t, Table::Create(s.bp.get(), PageSchema(), PageOptions(false)));
  EXPECT_EQ(t->cache(), nullptr);
  ASSERT_OK(t->Insert(PageRow(0, "NC", 1)));
  ASSERT_OK_AND_ASSIGN(Row r, t->LookupProjected(KeyOf(0, "NC"), {2, 3}));
  EXPECT_EQ(r[0].AsInt(), 1);
  EXPECT_EQ(t->stats().answered_from_cache, 0u);
  EXPECT_EQ(t->stats().heap_fetches, 1u);
}

TEST(TableTest, ForEachRowVisitsEveryTuple) {
  Stack s = MakeStack("tbl_scan");
  ASSERT_OK_AND_ASSIGN(auto t,
                       Table::Create(s.bp.get(), PageSchema(), PageOptions()));
  for (int64_t i = 0; i < 25; ++i) {
    ASSERT_OK(t->Insert(PageRow(0, "S" + std::to_string(i), i)));
  }
  int64_t sum = 0;
  ASSERT_OK(t->ForEachRow([&](const Rid&, const Row& row) {
    sum += row[2].AsInt();
    return Status::OK();
  }));
  EXPECT_EQ(sum, 24 * 25 / 2);
}

}  // namespace
}  // namespace nblb
