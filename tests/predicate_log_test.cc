#include "cache/predicate_log.h"

#include <gtest/gtest.h>

#include "cache/csn_manager.h"
#include "common/bytes.h"
#include "test_util.h"

namespace nblb {
namespace {

using nblb::testing::MakeStack;
using nblb::testing::Stack;

TEST(PredicateLogTest, AppendAssignsMonotoneSequence) {
  PredicateLog log;
  EXPECT_EQ(log.current_seq(), 0u);
  EXPECT_EQ(log.Append("k1", 1), 1u);
  EXPECT_EQ(log.Append("k2", 2), 2u);
  EXPECT_EQ(log.current_seq(), 2u);
  EXPECT_EQ(log.size(), 2u);
}

TEST(PredicateLogTest, ForEachSinceRespectsWatermark) {
  PredicateLog log;
  log.Append("a", 1);
  log.Append("b", 2);
  log.Append("c", 3);
  std::vector<std::string> seen;
  log.ForEachSince(1, [&](const Predicate& p) { seen.push_back(p.key); });
  EXPECT_EQ(seen, (std::vector<std::string>{"b", "c"}));
  seen.clear();
  log.ForEachSince(3, [&](const Predicate& p) { seen.push_back(p.key); });
  EXPECT_TRUE(seen.empty());
}

TEST(PredicateLogTest, AnySinceShortCircuits) {
  PredicateLog log;
  log.Append("a", 1);
  log.Append("b", 2);
  EXPECT_TRUE(log.AnySince(0, [](const Predicate& p) { return p.tid == 2; }));
  EXPECT_FALSE(log.AnySince(0, [](const Predicate& p) { return p.tid == 9; }));
  EXPECT_FALSE(log.AnySince(2, [](const Predicate& p) { return p.tid == 2; }));
}

TEST(PredicateLogTest, ClearKeepsSequenceMonotone) {
  PredicateLog log;
  log.Append("a", 1);
  log.Append("b", 2);
  log.Clear();
  EXPECT_EQ(log.size(), 0u);
  // Sequence numbering continues: new entries are newer than any watermark
  // taken before the clear.
  EXPECT_EQ(log.Append("c", 3), 3u);
}

TEST(CsnManagerTest, InvariantsOfSection212) {
  Stack s = MakeStack("csn");
  BTreeOptions opts;
  opts.key_size = 8;
  opts.cache_item_size = 25;
  ASSERT_OK_AND_ASSIGN(auto tree, BTree::Create(s.bp.get(), opts));
  CsnManager csn(tree.get());

  std::string key(8, '\0');
  EncodeBigEndian64(key.data(), 1);
  ASSERT_OK(tree->Insert(Slice(key), 100));
  ASSERT_OK_AND_ASSIGN(PageGuard leaf, tree->FindLeaf(Slice(key)));
  BTreePageView view(leaf.data(), s.bp->page_size());

  // Invariant 1: CSNp <= CSNidx always.
  EXPECT_LE(view.csn(), csn.global());

  // A fresh page with CSNp == CSNidx == 0 is valid.
  const bool initially_valid = csn.IsPageValid(view);
  // Invalidate everything: the page must become invalid.
  ASSERT_OK(csn.InvalidateAll());
  EXPECT_FALSE(csn.IsPageValid(view));
  EXPECT_LE(view.csn(), csn.global());

  // Stamping the page current restores validity.
  csn.MarkPageCurrent(&view);
  EXPECT_TRUE(csn.IsPageValid(view));
  EXPECT_EQ(view.csn(), csn.global());
  (void)initially_valid;
}

TEST(CsnManagerTest, InvalidationIsO1OverManyPages) {
  Stack s = MakeStack("csn_many", 4096, 2048);
  BTreeOptions opts;
  opts.key_size = 8;
  opts.cache_item_size = 25;
  ASSERT_OK_AND_ASSIGN(auto tree, BTree::Create(s.bp.get(), opts));
  for (uint64_t i = 0; i < 2000; ++i) {
    std::string key(8, '\0');
    EncodeBigEndian64(key.data(), i);
    ASSERT_OK(tree->Insert(Slice(key), i));
  }
  CsnManager csn(tree.get());
  const uint64_t before = csn.global();
  // One bump invalidates every leaf at once — no page walk required.
  ASSERT_OK(csn.InvalidateAll());
  EXPECT_EQ(csn.global(), before + 1);
  // Spot-check a few leaves: all invalid.
  for (uint64_t i : {0ull, 500ull, 1999ull}) {
    std::string key(8, '\0');
    EncodeBigEndian64(key.data(), i);
    ASSERT_OK_AND_ASSIGN(PageGuard leaf, tree->FindLeaf(Slice(key)));
    BTreePageView view(leaf.data(), s.bp->page_size());
    EXPECT_FALSE(csn.IsPageValid(view));
  }
}

}  // namespace
}  // namespace nblb
