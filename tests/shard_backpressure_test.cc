// Submit backpressure tests: bounded per-shard queue depth
// (max_queue_depth), blocking and fail-fast (kBusy) policies, plus the
// hot/cold partitioned batch read path (PartitionedTable::GetBatchByKey
// through Shard::GetBatch).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "catalog/schema.h"
#include "shard/sharded_engine.h"
#include "test_util.h"

namespace nblb {
namespace {

Schema KvSchema() {
  return Schema({{"id", TypeId::kInt64, 0},
                 {"payload", TypeId::kChar, 64}});
}

Row KvRow(int64_t id) {
  return {Value::Int64(id), Value::Char("row-" + std::to_string(id))};
}

ShardedEngineOptions BaseOptions(const std::string& tag, uint32_t shards) {
  ShardedEngineOptions opts;
  opts.num_shards = shards;
  opts.num_workers = shards;
  opts.path_prefix = ::testing::TempDir() + "nblb_bp_" + tag;
  opts.buffer_pool_frames_per_shard = 256;
  opts.schema = KvSchema();
  opts.table_options.key_columns = {0};
  return opts;
}

void Cleanup(const ShardedEngineOptions& opts) {
  for (uint32_t s = 0; s < opts.num_shards; ++s) {
    std::remove(
        (opts.path_prefix + ".shard" + std::to_string(s) + ".db").c_str());
  }
}

TEST(BackpressureTest, BlockingPolicyBoundsQueueDepthAndLosesNothing) {
  ShardedEngineOptions opts = BaseOptions("block", 1);
  opts.max_queue_depth = 2;
  opts.busy_fail_fast = false;
  ASSERT_OK_AND_ASSIGN(auto engine, ShardedEngine::Open(opts));

  constexpr int kRows = 512;
  for (int64_t id = 0; id < kRows; ++id) {
    ASSERT_OK(engine->Insert(id, KvRow(id)));
  }

  // 4 submitters each firing async batches as fast as they can; the bound
  // makes them block instead of growing the queue.
  constexpr int kBatchesPerThread = 200;
  std::vector<ShardedEngine::TicketPtr> tickets[4];
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int b = 0; b < kBatchesPerThread; ++b) {
        RequestBatch batch;
        for (int k = 0; k < 8; ++k) {
          batch.push_back(Request::Get((t * 1000 + b * 8 + k) % kRows));
        }
        tickets[t].push_back(engine->Submit(std::move(batch)));
      }
    });
  }
  for (auto& t : threads) t.join();
  uint64_t ok = 0;
  for (auto& slot : tickets) {
    for (auto& ticket : slot) {
      ticket->Wait();
      for (const RequestResult& r : ticket->result().results) {
        ASSERT_OK(r.status);
        ++ok;
      }
    }
  }
  EXPECT_EQ(ok, 4u * kBatchesPerThread * 8u);
  EXPECT_EQ(engine->engine_stats().busy_rejections, 0u);

  // The queue-depth histogram records depth at every pop; with the bound at
  // 2 no pop may ever have observed more. Bucket upper bound for value 2 is
  // 3 (log buckets), so anything above that proves a breach.
  const ShardStatsSnapshot stats = engine->ShardStatsOf(0);
  EXPECT_LE(stats.queue_depth.ApproxMax(), 3u);
  engine.reset();
  Cleanup(opts);
}

TEST(BackpressureTest, FailFastRejectsWithBusyAndCompletesTickets) {
  ShardedEngineOptions opts = BaseOptions("failfast", 1);
  opts.max_queue_depth = 1;
  opts.busy_fail_fast = true;
  ASSERT_OK_AND_ASSIGN(auto engine, ShardedEngine::Open(opts));
  for (int64_t id = 0; id < 64; ++id) {
    ASSERT_OK(engine->Insert(id, KvRow(id)));
  }

  // Saturate the 1-deep queue from several threads until rejections appear
  // (bounded attempts; with depth 1 and 4 submitters this happens almost
  // immediately).
  std::atomic<uint64_t> busy{0}, served{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int b = 0; b < 2000; ++b) {
        RequestBatch batch;
        batch.push_back(Request::Get(b % 64));
        auto ticket = engine->Submit(std::move(batch));
        ticket->Wait();  // every ticket completes, rejected or not
        const Status& st = ticket->result().results[0].status;
        if (st.IsBusy()) {
          busy.fetch_add(1);
        } else {
          ASSERT_OK(st);
          served.fetch_add(1);
        }
        if (busy.load() > 0 && b > 100) break;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_GT(served.load(), 0u);
  EXPECT_GT(busy.load(), 0u) << "no rejection in 8000 over-limit submits";
  EXPECT_EQ(engine->engine_stats().busy_rejections, busy.load());
  engine.reset();
  Cleanup(opts);
}

TEST(BackpressureTest, UnboundedByDefaultNeverRejects) {
  ShardedEngineOptions opts = BaseOptions("unbounded", 2);
  ASSERT_OK_AND_ASSIGN(auto engine, ShardedEngine::Open(opts));
  for (int64_t id = 0; id < 128; ++id) {
    ASSERT_OK(engine->Insert(id, KvRow(id)));
  }
  std::vector<ShardedEngine::TicketPtr> tickets;
  for (int b = 0; b < 500; ++b) {
    RequestBatch batch;
    batch.push_back(Request::Get(b % 128));
    tickets.push_back(engine->Submit(std::move(batch)));
  }
  for (auto& ticket : tickets) {
    ticket->Wait();
    ASSERT_OK(ticket->result().results[0].status);
  }
  EXPECT_EQ(engine->engine_stats().busy_rejections, 0u);
  engine.reset();
  Cleanup(opts);
}

TEST(HotColdBatchTest, PartitionedShardServesBatchesThroughBatchPath) {
  ShardedEngineOptions opts = BaseOptions("hotcold", 1);
  ASSERT_OK_AND_ASSIGN(auto engine, ShardedEngine::Open(opts));
  constexpr int64_t kRows = 400;
  for (int64_t id = 0; id < kRows; ++id) {
    ASSERT_OK(engine->Insert(id, KvRow(id)));
  }
  // Every 4th row is hot.
  std::unordered_set<std::string> hot;
  Shard* shard = engine->shard(0);
  for (int64_t id = 0; id < kRows; id += 4) {
    auto enc = shard->table()->key_codec().EncodeValues({Value::Int64(id)});
    ASSERT_OK(enc.status());
    hot.insert(*enc);
  }
  ASSERT_OK(engine->EnableHotCold(0, hot));

  const ShardStatsSnapshot before = engine->ShardStatsOf(0);
  RequestBatch batch;
  for (int64_t id = 0; id < kRows + 10; ++id) {
    batch.push_back(Request::Get(id));  // hot rows, cold rows, and misses
  }
  BatchResult result = engine->Execute(batch);

  // Snapshot stats BEFORE the per-key oracle comparisons below (those go
  // through the same counters).
  ShardStatsSnapshot delta = engine->ShardStatsOf(0);
  delta -= before;
  const PartitionedTableStats& pstats = shard->partitioned()->stats();
  const uint64_t hot_hits = pstats.hot_hits.load();
  const uint64_t cold_hits = pstats.cold_hits.load();
  const uint64_t misses = pstats.misses.load();

  for (int64_t id = 0; id < kRows + 10; ++id) {
    const RequestResult& r = result.results[id];
    if (id < kRows) {
      ASSERT_OK(r.status);
      auto oracle = engine->Get(id);
      ASSERT_OK(oracle.status());
      ASSERT_EQ(r.row.size(), oracle->size());
      for (size_t c = 0; c < oracle->size(); ++c) {
        EXPECT_EQ(r.row[c].ToString(), (*oracle)[c].ToString());
      }
    } else {
      EXPECT_TRUE(r.status.IsNotFound()) << "id " << id;
    }
  }
  // The batch was served through the batched read path, not per-key probes.
  EXPECT_EQ(delta.batch_gets, static_cast<uint64_t>(kRows + 10));

  // Partition stats took the batch route: hot rows from hot, rest cold.
  EXPECT_EQ(hot_hits, static_cast<uint64_t>(kRows / 4));
  EXPECT_EQ(cold_hits, static_cast<uint64_t>(kRows - kRows / 4));
  EXPECT_EQ(misses, 10u);
  engine.reset();
  Cleanup(opts);
}

}  // namespace
}  // namespace nblb
