#include "sim/micro_sim.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace nblb {
namespace {

MicroSimOptions SmallSim() {
  MicroSimOptions o;
  o.index_pages = 128;
  o.bp_pages = 256;
  o.seed = 7;
  return o;
}

TEST(MicroSimTest, CountersSumToLookups) {
  MicroSimOptions o = SmallSim();
  o.index_cache_hit_rate = 0.5;
  o.bp_hit_rate = 0.5;
  MicroSim sim(o);
  MicroSimResult r = sim.Run(20000);
  EXPECT_EQ(r.lookups, 20000u);
  // Every lookup either hits the cache or goes to the buffer pool/disk.
  EXPECT_EQ(r.cache_hits + r.bp_hits + r.disk_reads, r.lookups);
  EXPECT_NEAR(r.cache_hits / 20000.0, 0.5, 0.02);
  // BP hit rate applies to cache misses only.
  EXPECT_NEAR(r.bp_hits / static_cast<double>(r.bp_hits + r.disk_reads), 0.5,
              0.03);
}

TEST(MicroSimTest, NoCacheMeansNoCacheHits) {
  MicroSimOptions o = SmallSim();
  o.cache_enabled = false;
  o.index_cache_hit_rate = 0.9;  // ignored
  MicroSim sim(o);
  MicroSimResult r = sim.Run(5000);
  EXPECT_EQ(r.cache_hits, 0u);
  EXPECT_EQ(r.bp_hits + r.disk_reads, 5000u);
}

TEST(MicroSimTest, DiskMissesChargeVirtualTime) {
  MicroSimOptions o = SmallSim();
  o.bp_hit_rate = 0.0;
  o.index_cache_hit_rate = 0.0;
  MicroSim sim(o);
  MicroSimResult r = sim.Run(1000);
  EXPECT_EQ(r.disk_reads, 1000u);
  const uint64_t per_read =
      o.disk_seek_ns + o.disk_transfer_ns_per_byte * o.page_size;
  EXPECT_EQ(r.virtual_ns, 1000u * per_read);
  EXPECT_GT(r.AvgCostMs(), 1.0);  // disk-bound: ms regime
}

TEST(MicroSimTest, FullCacheHitRateAvoidsDiskEntirely) {
  MicroSimOptions o = SmallSim();
  o.index_cache_hit_rate = 1.0;
  o.bp_hit_rate = 0.0;  // irrelevant: the BP is never consulted
  MicroSim sim(o);
  MicroSimResult r = sim.Run(5000);
  EXPECT_EQ(r.cache_hits, 5000u);
  EXPECT_EQ(r.disk_reads, 0u);
  EXPECT_EQ(r.virtual_ns, 0u);
  EXPECT_LT(r.AvgCostUs(), 50.0);  // memory regime
}

TEST(MicroSimTest, CostDecreasesWithCacheHitRate) {
  // The monotone shape of Fig 2(b): more cache hits, cheaper lookups.
  MicroSimOptions o = SmallSim();
  o.bp_hit_rate = 0.9;
  double prev = 1e18;
  for (double chr : {0.0, 0.5, 1.0}) {
    o.index_cache_hit_rate = chr;
    MicroSim sim(o);
    MicroSimResult r = sim.Run(20000);
    EXPECT_LT(r.AvgCostNs(), prev) << "hit rate " << chr;
    prev = r.AvgCostNs();
  }
}

TEST(MicroSimTest, CostDecreasesWithBufferPoolHitRate) {
  MicroSimOptions o = SmallSim();
  o.index_cache_hit_rate = 0.0;
  double prev = 1e18;
  for (double bp : {0.0, 0.9, 1.0}) {
    o.bp_hit_rate = bp;
    MicroSim sim(o);
    MicroSimResult r = sim.Run(10000);
    EXPECT_LT(r.AvgCostNs(), prev) << "bp hit rate " << bp;
    prev = r.AvgCostNs();
  }
}

TEST(MicroSimTest, ChecksumPreventsDeadCodeElimination) {
  MicroSim sim(SmallSim());
  (void)sim.Run(1000);
  EXPECT_NE(sim.checksum(), 0u);
}

}  // namespace
}  // namespace nblb
