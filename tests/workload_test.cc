#include <gtest/gtest.h>

#include <map>
#include <set>
#include <unordered_set>

#include "encoding/timestamp.h"
#include "test_util.h"
#include "workload/trace.h"
#include "workload/wikipedia.h"

namespace nblb {
namespace {

TEST(TraceTest, MixFractionsRespected) {
  TraceOptions o;
  o.num_items = 100;
  o.num_ops = 50000;
  o.mix = {0.7, 0.1, 0.15, 0.05};
  std::vector<Op> trace = BuildTrace(o);
  ASSERT_EQ(trace.size(), o.num_ops);
  std::map<OpKind, int> counts;
  for (const Op& op : trace) counts[op.kind]++;
  EXPECT_NEAR(counts[OpKind::kLookup] / 50000.0, 0.7, 0.02);
  EXPECT_NEAR(counts[OpKind::kInsert] / 50000.0, 0.1, 0.02);
  EXPECT_NEAR(counts[OpKind::kUpdate] / 50000.0, 0.15, 0.02);
  EXPECT_NEAR(counts[OpKind::kDelete] / 50000.0, 0.05, 0.02);
}

TEST(TraceTest, ItemsInRangeForAllDistributions) {
  for (TraceDistribution d :
       {TraceDistribution::kUniform, TraceDistribution::kZipfian,
        TraceDistribution::kScrambledZipfian, TraceDistribution::kHotspot}) {
    TraceOptions o;
    o.num_items = 500;
    o.num_ops = 5000;
    o.distribution = d;
    for (const Op& op : BuildTrace(o)) {
      ASSERT_LT(op.item, o.num_items);
    }
  }
}

TEST(TraceTest, DeterministicForSeed) {
  TraceOptions o;
  o.num_ops = 1000;
  std::vector<Op> a = BuildTrace(o), b = BuildTrace(o);
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].item, b[i].item);
    ASSERT_EQ(a[i].kind, b[i].kind);
  }
}

TEST(WikipediaTest, SchemasMatchMediaWikiShapes) {
  Schema page = WikipediaSynthesizer::PageSchema();
  EXPECT_EQ(page.num_columns(), 11u);
  EXPECT_TRUE(page.FindColumn("page_title").has_value());
  EXPECT_EQ(page.column(*page.FindColumn("page_touched")).type, TypeId::kChar);
  EXPECT_EQ(page.column(*page.FindColumn("page_touched")).length, 14u);

  Schema rev = WikipediaSynthesizer::RevisionSchema();
  EXPECT_EQ(rev.num_columns(), 11u);
  const size_t ts = *rev.FindColumn("rev_timestamp");
  EXPECT_EQ(rev.column(ts).type, TypeId::kChar);
  EXPECT_EQ(rev.column(ts).length, 14u);  // the paper's 14-byte string
}

TEST(WikipediaTest, RowCountsMatchScale) {
  WikipediaScale scale;
  scale.num_pages = 1000;
  scale.revisions_per_page = 5;
  WikipediaSynthesizer synth(scale);
  EXPECT_EQ(synth.pages().size(), 1000u);
  EXPECT_EQ(synth.revisions().size(), 5000u);
  EXPECT_EQ(synth.latest_revision_ids().size(), 1000u);
}

TEST(WikipediaTest, RevIdsAreDenseAndOrdered) {
  WikipediaScale scale;
  scale.num_pages = 500;
  scale.revisions_per_page = 4;
  WikipediaSynthesizer synth(scale);
  const auto& revs = synth.revisions();
  for (size_t i = 0; i < revs.size(); ++i) {
    ASSERT_EQ(revs[i][0].AsInt(), static_cast<int64_t>(i + 1));
  }
}

TEST(WikipediaTest, LatestRevisionIdsAreConsistent) {
  WikipediaScale scale;
  scale.num_pages = 500;
  scale.revisions_per_page = 6;
  WikipediaSynthesizer synth(scale);
  const auto& revs = synth.revisions();
  const auto& latest = synth.latest_revision_ids();
  // Recompute by scanning; must match, and page_latest must agree.
  std::vector<int64_t> recomputed(scale.num_pages, 0);
  for (const Row& r : revs) {
    recomputed[r[1].AsInt() - 1] = r[0].AsInt();
  }
  for (size_t p = 0; p < scale.num_pages; ++p) {
    ASSERT_EQ(latest[p], recomputed[p]);
    ASSERT_EQ(synth.pages()[p][9].AsInt(), latest[p]);  // page_latest
  }
}

TEST(WikipediaTest, LatestRevisionsAreScatteredThroughTheTable) {
  // §3.1: "these hot tuples are scattered throughout the table". At least
  // half of the table's "span" must contain latest revisions.
  WikipediaScale scale;
  scale.num_pages = 1000;
  scale.revisions_per_page = 20;
  WikipediaSynthesizer synth(scale);
  const auto& latest = synth.latest_revision_ids();
  const int64_t total = static_cast<int64_t>(synth.revisions().size());
  int in_first_half = 0;
  for (int64_t id : latest) {
    if (id <= total / 2) ++in_first_half;
  }
  // Some hot tuples early, most late, but definitely not all at the tail.
  EXPECT_GT(in_first_half, 0);
  EXPECT_LT(in_first_half, static_cast<int>(scale.num_pages));
  // Distinct pages-of-the-table containing hot tuples: spread over >25% of
  // the id space deciles.
  std::set<int64_t> deciles;
  for (int64_t id : latest) deciles.insert(id * 10 / (total + 1));
  EXPECT_GE(deciles.size(), 4u);
}

TEST(WikipediaTest, TimestampsAreValid14CharStrings) {
  WikipediaScale scale;
  scale.num_pages = 200;
  scale.revisions_per_page = 3;
  WikipediaSynthesizer synth(scale);
  for (const Row& r : synth.revisions()) {
    const std::string& ts = r[6].AsString();
    ASSERT_EQ(ts.size(), 14u);
    ASSERT_TRUE(ParseTimestamp14(ts).ok()) << ts;
  }
}

TEST(WikipediaTest, RevisionTraceHitsLatestRevisions999PerMille) {
  WikipediaScale scale;
  scale.num_pages = 2000;
  scale.revisions_per_page = 20;
  WikipediaSynthesizer synth(scale);
  std::unordered_set<int64_t> latest(synth.latest_revision_ids().begin(),
                                     synth.latest_revision_ids().end());
  const auto trace = synth.RevisionLookupTrace(100000, 0.999);
  size_t hot = 0;
  for (int64_t id : trace) {
    ASSERT_GE(id, 1);
    ASSERT_LE(id, static_cast<int64_t>(synth.revisions().size()));
    if (latest.count(id)) ++hot;
  }
  EXPECT_GT(hot / static_cast<double>(trace.size()), 0.995);
}

TEST(WikipediaTest, PageTraceIsSkewed) {
  WikipediaScale scale;
  scale.num_pages = 5000;
  WikipediaSynthesizer synth(scale);
  const auto trace = synth.PageLookupTrace(100000);
  std::map<uint64_t, int> counts;
  for (uint64_t p : trace) counts[p]++;
  // Far fewer distinct pages than a uniform draw would touch, and the top
  // page is hit much more than n/num_pages times.
  int max_count = 0;
  for (const auto& [page, count] : counts) max_count = std::max(max_count, count);
  EXPECT_GT(max_count, 100000 / 5000 * 10);
}

TEST(WikipediaTest, CartelRowsHaveSmallRanges) {
  WikipediaScale scale;
  WikipediaSynthesizer synth(scale);
  for (const Row& r : synth.GenerateCartelLocationRows(1000)) {
    ASSERT_GE(r[4].AsInt(), 0);    // speed
    ASSERT_LE(r[4].AsInt(), 120);
    ASSERT_GE(r[5].AsInt(), 0);    // heading
    ASSERT_LT(r[5].AsInt(), 360);
  }
}

TEST(WikipediaTest, DeterministicForSeed) {
  WikipediaScale scale;
  scale.num_pages = 300;
  scale.revisions_per_page = 3;
  WikipediaSynthesizer a(scale), b(scale);
  ASSERT_EQ(a.revisions().size(), b.revisions().size());
  for (size_t i = 0; i < a.revisions().size(); i += 37) {
    ASSERT_EQ(RowToString(a.revisions()[i]), RowToString(b.revisions()[i]));
  }
}

}  // namespace
}  // namespace nblb
