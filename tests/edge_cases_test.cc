// Boundary and degenerate-input behaviour across modules: the cases a
// downstream user hits first when holding the API wrong.

#include <gtest/gtest.h>

#include "cache/cache_geometry.h"
#include "common/bytes.h"
#include "common/zipf.h"
#include "encoding/bitpack.h"
#include "encoding/dict.h"
#include "exec/table.h"
#include "semid/semantic_id.h"
#include "storage/heap_file.h"
#include "test_util.h"

namespace nblb {
namespace {

using nblb::testing::MakeStack;
using nblb::testing::Stack;
using nblb::testing::TempFile;

TEST(EdgeCaseTest, HeapAttachRebuildsHoleListAndReusesIt) {
  Stack s = MakeStack("edge_heap_holes", 4096, 512);
  PageId first;
  Rid hole;
  {
    HeapFileOptions opts;
    opts.reuse_free_slots = true;
    ASSERT_OK_AND_ASSIGN(auto heap, HeapFile::Create(s.bp.get(), 64, opts));
    first = heap->first_page_id();
    std::vector<Rid> rids;
    for (int i = 0; i < 20; ++i) {
      ASSERT_OK_AND_ASSIGN(Rid r, heap->Insert(Slice(std::string(64, 'x'))));
      rids.push_back(r);
    }
    hole = rids[5];
    ASSERT_OK(heap->Delete(hole));
  }
  ASSERT_OK(s.bp->FlushAll());
  HeapFileOptions opts;
  opts.reuse_free_slots = true;
  ASSERT_OK_AND_ASSIGN(auto heap, HeapFile::Attach(s.bp.get(), 64, first, opts));
  EXPECT_EQ(heap->tuple_count(), 19u);
  // The attach must have recorded the page with a hole: the next insert
  // fills it instead of extending the file.
  ASSERT_OK_AND_ASSIGN(Rid r, heap->Insert(Slice(std::string(64, 'y'))));
  EXPECT_EQ(r, hole);
}

TEST(EdgeCaseTest, DiskManagerAfterCloseFails) {
  TempFile f("edge_closed");
  DiskManager disk(f.path(), 4096);
  ASSERT_OK(disk.Open());
  ASSERT_OK(disk.AllocatePage().status());
  ASSERT_OK(disk.Close());
  char buf[4096];
  EXPECT_TRUE(disk.ReadPage(0, buf).IsIOError());
  EXPECT_TRUE(disk.WritePage(0, buf).IsIOError());
  EXPECT_TRUE(disk.AllocatePage().status().IsIOError());
}

TEST(EdgeCaseTest, TableRequiresKeyColumns) {
  Stack s = MakeStack("edge_nokey");
  Schema schema({{"v", TypeId::kInt64, 0}});
  TableOptions opts;  // no key columns
  EXPECT_TRUE(Table::Create(s.bp.get(), schema, opts)
                  .status()
                  .IsInvalidArgument());
  opts.key_columns = {7};  // out of range
  EXPECT_TRUE(Table::Create(s.bp.get(), schema, opts)
                  .status()
                  .IsInvalidArgument());
}

TEST(EdgeCaseTest, TableRejectsOversizedCacheItem) {
  Stack s = MakeStack("edge_bigitem");
  Schema schema({{"id", TypeId::kInt64, 0}, {"blob", TypeId::kVarchar, 600}});
  TableOptions opts;
  opts.key_columns = {0};
  opts.cached_columns = {1};  // 602-byte payload > kMaxCacheItemSize
  EXPECT_TRUE(Table::Create(s.bp.get(), schema, opts)
                  .status()
                  .IsInvalidArgument());
}

TEST(EdgeCaseTest, ZipfWithSingleItemAlwaysReturnsZero) {
  ZipfianGenerator z(1, 0.5, 1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z.Next(), 0u);
  EXPECT_DOUBLE_EQ(z.ProbabilityOfRank(0), 1.0);
}

TEST(EdgeCaseTest, HotspotWithFullHotFraction) {
  HotspotGenerator g(100, 1.0, 0.5, 2);
  EXPECT_EQ(g.hot_count(), 100u);
  for (int i = 0; i < 200; ++i) EXPECT_LT(g.Next(), 100u);
}

TEST(EdgeCaseTest, BitPackWidth64HandlesMaxValues) {
  BitPackedVector v(64);
  v.Append(~0ull);
  v.Append(0);
  v.Append(0x8000000000000001ull);
  EXPECT_EQ(v.Get(0), ~0ull);
  EXPECT_EQ(v.Get(1), 0u);
  EXPECT_EQ(v.Get(2), 0x8000000000000001ull);
}

TEST(EdgeCaseTest, DictionaryOfEmptyColumn) {
  DictionaryColumn col = DictionaryColumn::Build({});
  EXPECT_EQ(col.size(), 0u);
  EXPECT_EQ(col.dict_size(), 0u);
  EXPECT_EQ(col.CodeOf("anything"), SIZE_MAX);
}

TEST(EdgeCaseTest, DictionaryOfSingleRepeatedValue) {
  std::vector<std::string> values(1000, "same");
  DictionaryColumn col = DictionaryColumn::Build(values);
  EXPECT_EQ(col.dict_size(), 1u);
  EXPECT_EQ(col.Get(999), "same");
  // 1000 one-bit codes + one dict entry: tiny.
  EXPECT_LT(col.PayloadBytes(), 200u);
}

TEST(EdgeCaseTest, CacheGeometryWithGiantBucket) {
  std::vector<char> buf(4096, 0);
  BTreePageView view(buf.data(), 4096);
  BTreePageView::Init(buf.data(), 4096, kPageTypeBTreeLeaf, 8, 8, 25);
  // One bucket spanning every slot: all slots rank into bucket 0.
  CacheGeometry g = CacheGeometry::FromLeaf(view, 100000);
  ASSERT_GT(g.num_slots(), 0u);
  EXPECT_EQ(g.num_buckets(), 1u);
  for (size_t s = g.first_slot(); s < g.first_slot() + g.num_slots(); ++s) {
    EXPECT_EQ(g.BucketOfSlot(s), 0u);
  }
}

TEST(EdgeCaseTest, SemanticIdExtremeBitWidths) {
  SemanticIdCodec one(1);
  EXPECT_EQ(one.MaxPartition(), 1u);
  EXPECT_EQ(one.Encode(1, 5) >> 63, 1u);
  EXPECT_EQ(one.LocalOf(one.Encode(1, 5)), 5u);

  SemanticIdCodec wide(32);
  EXPECT_EQ(wide.MaxPartition(), UINT32_MAX);
  const uint64_t id = wide.Encode(UINT32_MAX, wide.MaxLocal());
  EXPECT_EQ(wide.PartitionOf(id), UINT32_MAX);
  EXPECT_EQ(wide.LocalOf(id), wide.MaxLocal());
}

TEST(EdgeCaseTest, KeyCodecZeroPaddingMakesShortStringsPrefixOrdered) {
  Schema s({{"t", TypeId::kVarchar, 8}});
  KeyCodec codec(&s, {0});
  ASSERT_OK_AND_ASSIGN(std::string a, codec.EncodeValues({Value::Varchar("ab")}));
  ASSERT_OK_AND_ASSIGN(std::string ab, codec.EncodeValues({Value::Varchar("abc")}));
  EXPECT_LT(Slice(a).Compare(Slice(ab)), 0);
  // Decode strips the zero padding back off.
  EXPECT_EQ(codec.Decode(Slice(a))[0].AsString(), "ab");
}

TEST(EdgeCaseTest, BTreeOnePagePerTupleHeap) {
  // Tuples so large only one fits per page: the §3.1 worst case.
  Stack s = MakeStack("edge_fat", 4096, 512);
  ASSERT_OK_AND_ASSIGN(auto heap, HeapFile::Create(s.bp.get(), 4000));
  EXPECT_EQ(heap->SlotsPerPage(), 1u);
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(heap->Insert(Slice(std::string(4000, 'z'))).status());
  }
  EXPECT_EQ(heap->pages().size(), 10u);
  ASSERT_OK_AND_ASSIGN(HeapFileStats st, heap->ComputeStats());
  EXPECT_DOUBLE_EQ(st.Utilization(), 1.0);
}

TEST(EdgeCaseTest, RowToStringFormatsAllFamilies) {
  Row row = {Value::Bool(false), Value::Int64(-1), Value::Varchar("x")};
  EXPECT_EQ(RowToString(row), "[false, -1, x]");
}

}  // namespace
}  // namespace nblb
