#include "cache/cache_geometry.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/bytes.h"
#include "test_util.h"

namespace nblb {
namespace {

constexpr size_t kPageSize = 4096;

struct LeafFixture {
  std::vector<char> buf;
  BTreePageView view;

  explicit LeafFixture(uint16_t cache_item = 25)
      : buf(kPageSize, 0), view(buf.data(), kPageSize) {
    BTreePageView::Init(buf.data(), kPageSize, kPageTypeBTreeLeaf, 8, 8,
                        cache_item);
  }

  void Fill(size_t n) {
    for (size_t i = view.num_entries(); i < n; ++i) {
      std::string k(8, '\0'), p(8, '\0');
      EncodeBigEndian64(k.data(), i);
      EncodeFixed64(p.data(), i);
      ASSERT_OK(view.InsertEntry(Slice(k), Slice(p)));
    }
  }
};

TEST(CacheGeometryTest, EmptyLeafHasMaximalSlots) {
  LeafFixture f;
  CacheGeometry g = CacheGeometry::FromLeaf(f.view, 8);
  EXPECT_GT(g.num_slots(), 100u);
  // All slots fit fully inside the free interval.
  EXPECT_GE(g.SlotOffset(g.first_slot()), f.view.FreeBegin());
  EXPECT_LE(g.SlotOffset(g.first_slot() + g.num_slots() - 1) + 25,
            f.view.FreeEnd());
}

TEST(CacheGeometryTest, DisabledCacheHasNoSlots) {
  LeafFixture f(0);
  CacheGeometry g = CacheGeometry::FromLeaf(f.view, 8);
  EXPECT_EQ(g.num_slots(), 0u);
}

TEST(CacheGeometryTest, SlotsShrinkAsIndexGrows) {
  LeafFixture f;
  CacheGeometry before = CacheGeometry::FromLeaf(f.view, 8);
  f.Fill(50);
  CacheGeometry after = CacheGeometry::FromLeaf(f.view, 8);
  EXPECT_LT(after.num_slots(), before.num_slots());
  // The interior slots keep their absolute positions: surviving slot indexes
  // are a subset of the previous ones.
  EXPECT_GE(after.first_slot(), before.first_slot());
}

TEST(CacheGeometryTest, FullPageHasNoSlots) {
  LeafFixture f;
  f.Fill(f.view.Capacity());
  CacheGeometry g = CacheGeometry::FromLeaf(f.view, 8);
  EXPECT_EQ(g.num_slots(), 0u);
}

TEST(CacheGeometryTest, RankSlotBijection) {
  LeafFixture f;
  for (size_t filled : {0u, 10u, 40u, 100u}) {
    f.Fill(filled);
    CacheGeometry g = CacheGeometry::FromLeaf(f.view, 8);
    std::set<size_t> seen_slots;
    for (size_t r = 0; r < g.num_slots(); ++r) {
      const size_t slot = g.SlotOfRank(r);
      EXPECT_TRUE(seen_slots.insert(slot).second) << "duplicate slot " << slot;
      EXPECT_EQ(g.RankOf(slot), r) << "rank " << r;
      EXPECT_GE(slot, g.first_slot());
      EXPECT_LT(slot, g.first_slot() + g.num_slots());
    }
    EXPECT_EQ(seen_slots.size(), g.num_slots());
  }
}

TEST(CacheGeometryTest, RankOrderIsDistanceOrderFromStablePoint) {
  LeafFixture f;
  CacheGeometry g = CacheGeometry::FromLeaf(f.view, 8);
  // Distance from the stable slot must be non-decreasing in rank (ties
  // allowed between the two sides).
  auto dist = [&](size_t slot) {
    return slot > g.stable_slot() ? slot - g.stable_slot()
                                  : g.stable_slot() - slot;
  };
  for (size_t r = 1; r < g.num_slots(); ++r) {
    EXPECT_GE(dist(g.SlotOfRank(r)) + 1, dist(g.SlotOfRank(r - 1)))
        << "rank " << r;
  }
  EXPECT_EQ(g.SlotOfRank(0), g.stable_slot());
}

TEST(CacheGeometryTest, StableSlotSurvivesLongest) {
  // Fill the page incrementally; the stable slot must be among the last
  // usable slots to disappear.
  LeafFixture f;
  CacheGeometry g0 = CacheGeometry::FromLeaf(f.view, 8);
  const size_t stable = g0.stable_slot();
  size_t filled = 0;
  while (true) {
    CacheGeometry g = CacheGeometry::FromLeaf(f.view, 8);
    if (g.num_slots() <= 1) break;
    // The stable slot of the empty page must still be usable whenever at
    // least ~2 slots remain on the larger side.
    if (g.num_slots() > 2) {
      EXPECT_GE(stable, g.first_slot());
      EXPECT_LT(stable, g.first_slot() + g.num_slots());
    }
    filled += 8;
    if (filled > f.view.Capacity()) break;
    f.Fill(filled);
  }
}

TEST(CacheGeometryTest, BucketSizes) {
  LeafFixture f;
  CacheGeometry g = CacheGeometry::FromLeaf(f.view, 8);
  size_t total = 0;
  for (size_t b = 0; b < g.num_buckets(); ++b) {
    const size_t sz = g.BucketSizeOf(b);
    EXPECT_LE(sz, 8u);
    EXPECT_GE(sz, 1u);
    total += sz;
  }
  EXPECT_EQ(total, g.num_slots());
  // Bucket of the stable slot is 0.
  EXPECT_EQ(g.BucketOfSlot(g.stable_slot()), 0u);
}

TEST(CacheGeometryTest, BucketOfSlotMonotoneInRank) {
  LeafFixture f;
  CacheGeometry g = CacheGeometry::FromLeaf(f.view, 4);
  for (size_t r = 1; r < g.num_slots(); ++r) {
    EXPECT_GE(g.BucketOfSlot(g.SlotOfRank(r)),
              g.BucketOfSlot(g.SlotOfRank(r - 1)));
  }
}

TEST(CacheGeometryTest, TinyFreeSpaceYieldsZeroOrFewSlots) {
  LeafFixture f;
  const size_t cap = f.view.Capacity();
  f.Fill(cap - 1);
  CacheGeometry g = CacheGeometry::FromLeaf(f.view, 8);
  // One free entry's worth of bytes (16+2) < 25-byte slot, so at most one
  // slot can exist depending on alignment.
  EXPECT_LE(g.num_slots(), 1u);
}

}  // namespace
}  // namespace nblb
