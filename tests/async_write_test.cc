// Async write-pipeline tests: DiskManager::SubmitWrites/WaitWrites on both
// backends (io_uring when the runtime allows it, and the pwritev
// worker-thread fallback — ALWAYS exercised here via the forced-backend
// knob), the buffer pool's batched write-back paths (background flusher,
// eviction under pressure, FlushAll/Checkpoint group drain), injected
// device write failures (RLIMIT_FSIZE: writes past the limit fail EFBIG —
// unlike truncation, which a pwrite would silently undo by re-extending
// the file) with pool recovery, the sync_writeback per-page baseline knob,
// a bit-for-bit group-fsync vs per-page-FlushPage checkpoint oracle, and a
// concurrent flusher+checkpoint+eviction stress (run under TSan in CI).

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/resource.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <functional>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "test_util.h"

namespace nblb {
namespace {

using nblb::testing::Stack;
using nblb::testing::TempFile;

Stack MakeStackWithBackend(const std::string& tag, IoBackend backend,
                           size_t page_size = 4096, size_t frames = 64) {
  Stack s;
  s.file.reset(new TempFile(tag));
  AsyncIoOptions aio;
  aio.backend = backend;
  s.disk.reset(new DiskManager(s.file->path(), page_size, nullptr,
                               /*direct_io=*/false, aio));
  EXPECT_TRUE(s.disk->Open().ok());
  s.bp.reset(new BufferPool(s.disk.get(), frames));
  return s;
}

std::vector<PageId> SeedPages(Stack& s, int n, char tag = 'a') {
  std::vector<PageId> ids;
  for (int i = 0; i < n; ++i) {
    auto g = s.bp->NewPage();
    EXPECT_TRUE(g.ok());
    std::memset(g->data(), tag + (g->id() % 26), 64);
    g->MarkDirty();
    ids.push_back(g->id());
  }
  EXPECT_TRUE(s.bp->FlushAll().ok());
  EXPECT_TRUE(s.bp->EvictAll().ok());
  return ids;
}

// The backends under test: the fallback always, io_uring when this runtime
// actually came up with a ring (containers may seccomp-block it).
std::vector<IoBackend> BackendsToTest() {
  std::vector<IoBackend> backends = {IoBackend::kThreads};
  {
    TempFile probe("awr_probe");
    AsyncIoOptions aio;
    aio.backend = IoBackend::kUring;
    DiskManager disk(probe.path(), 4096, nullptr, false, aio);
    EXPECT_TRUE(disk.Open().ok());
    if (disk.io_backend_in_use() == IoBackend::kUring) {
      backends.push_back(IoBackend::kUring);
    }
  }
  return backends;
}

bool WaitFor(const std::function<bool()>& cond, int timeout_ms = 5000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return cond();
}

/// Fills `buf` with a page-sized pattern derived from (id, salt).
void FillPattern(char* buf, size_t page_size, PageId id, char salt) {
  std::memset(buf, salt + static_cast<char>(id % 26), page_size);
  std::memcpy(buf, &id, sizeof(id));
}

TEST(AsyncWriteTest, SubmitWaitMatchesSynchronousWrites) {
  for (IoBackend backend : BackendsToTest()) {
    Stack s = MakeStackWithBackend("awr_rw", backend);
    std::vector<PageId> ids = SeedPages(s, 24);

    // Non-contiguous subset: every other page — all runs have length 1, so
    // only the async overlap serves them in parallel.
    std::vector<PageId> want;
    for (size_t i = 0; i < ids.size(); i += 2) want.push_back(ids[i]);
    std::vector<std::vector<char>> bufs(want.size(),
                                        std::vector<char>(4096));
    std::vector<const char*> srcs;
    for (size_t i = 0; i < want.size(); ++i) {
      FillPattern(bufs[i].data(), 4096, want[i], 'A');
      srcs.push_back(bufs[i].data());
    }

    s.disk->ResetStats();
    DiskManager::IoTicket ticket;
    ASSERT_OK(s.disk->SubmitWrites(want.data(), srcs.data(), want.size(),
                                   &ticket));
    EXPECT_TRUE(ticket.valid());
    ASSERT_OK(s.disk->WaitWrites(&ticket));
    EXPECT_FALSE(ticket.valid());

    const DiskStats st = s.disk->stats();
    EXPECT_EQ(st.writes, want.size());
    EXPECT_EQ(st.async_writes, want.size());
    EXPECT_EQ(st.async_write_batches, 1u);
    EXPECT_EQ(st.write_runs, want.size());  // all runs length 1
    for (size_t i = 0; i < want.size(); ++i) {
      std::vector<char> got(4096);
      ASSERT_OK(s.disk->ReadPage(want[i], got.data()));
      EXPECT_EQ(std::memcmp(got.data(), bufs[i].data(), 4096), 0)
          << "page " << want[i] << " backend " << static_cast<int>(backend);
    }
  }
}

TEST(AsyncWriteTest, ContiguousWritesCoalesceIntoOneRun) {
  for (IoBackend backend : BackendsToTest()) {
    Stack s = MakeStackWithBackend("awr_runs", backend);
    std::vector<PageId> ids = SeedPages(s, 16);
    std::vector<std::vector<char>> bufs(ids.size(), std::vector<char>(4096));
    std::vector<const char*> srcs;
    for (size_t i = 0; i < ids.size(); ++i) {
      FillPattern(bufs[i].data(), 4096, ids[i], 'R');
      srcs.push_back(bufs[i].data());
    }
    s.disk->ResetStats();
    DiskManager::IoTicket ticket;
    ASSERT_OK(s.disk->SubmitWrites(ids.data(), srcs.data(), ids.size(),
                                   &ticket));
    ASSERT_OK(s.disk->WaitWrites(&ticket));
    const DiskStats st = s.disk->stats();
    EXPECT_EQ(st.async_writes, ids.size());
    EXPECT_EQ(st.write_runs, 1u);  // one contiguous span -> one WRITEV
    for (size_t i = 0; i < ids.size(); ++i) {
      std::vector<char> got(4096);
      ASSERT_OK(s.disk->ReadPage(ids[i], got.data()));
      EXPECT_EQ(std::memcmp(got.data(), bufs[i].data(), 4096), 0);
    }
  }
}

TEST(AsyncWriteTest, ForcedFallbackNeverUsesTheRing) {
  Stack s = MakeStackWithBackend("awr_forced", IoBackend::kThreads);
  EXPECT_EQ(s.disk->io_backend_in_use(), IoBackend::kThreads);
  std::vector<PageId> ids = SeedPages(s, 8);
  std::vector<char> buf(4096);
  FillPattern(buf.data(), 4096, ids[3], 'F');
  const char* src = buf.data();
  DiskManager::IoTicket ticket;
  ASSERT_OK(s.disk->SubmitWrites(&ids[3], &src, 1, &ticket));
  ASSERT_OK(s.disk->WaitWrites(&ticket));
  std::vector<char> got(4096);
  ASSERT_OK(s.disk->ReadPage(ids[3], got.data()));
  EXPECT_EQ(std::memcmp(got.data(), buf.data(), 4096), 0);
}

TEST(AsyncWriteTest, SubmitValidatesIdsUpFront) {
  for (IoBackend backend : BackendsToTest()) {
    Stack s = MakeStackWithBackend("awr_oor", backend);
    SeedPages(s, 2);
    std::vector<char> buf(4096, 'x');
    const char* src = buf.data();
    const PageId bogus = 999;  // writes never extend the file
    DiskManager::IoTicket ticket;
    EXPECT_TRUE(s.disk->SubmitWrites(&bogus, &src, 1, &ticket)
                    .IsOutOfRange());
    EXPECT_FALSE(ticket.valid());
  }
}

/// Scoped write-failure injection: caps the maximum file size the process
/// may produce, so any write at an offset past `pages` pages fails with
/// EFBIG (SIGXFSZ is ignored for the test's duration). Truncating the
/// backing file would NOT inject a write error — pwrite quietly
/// re-extends — which is why error injection works on the rlimit instead.
class FileSizeLimit {
 public:
  FileSizeLimit(size_t pages, size_t page_size) {
    prev_handler_ = ::signal(SIGXFSZ, SIG_IGN);
    ::getrlimit(RLIMIT_FSIZE, &prev_);
    struct rlimit lim = prev_;
    lim.rlim_cur = static_cast<rlim_t>(pages * page_size);
    ::setrlimit(RLIMIT_FSIZE, &lim);
  }
  ~FileSizeLimit() { Release(); }
  void Release() {
    if (released_) return;
    released_ = true;
    ::setrlimit(RLIMIT_FSIZE, &prev_);
    ::signal(SIGXFSZ, prev_handler_);
  }

 private:
  struct rlimit prev_;
  void (*prev_handler_)(int) = SIG_DFL;
  bool released_ = false;
};

TEST(AsyncWriteTest, WriteErrorSurfacesThroughWaitWrites) {
  for (IoBackend backend : BackendsToTest()) {
    Stack s = MakeStackWithBackend("awr_fail", backend);
    std::vector<PageId> ids = SeedPages(s, 12);

    std::vector<std::vector<char>> bufs(ids.size(), std::vector<char>(4096));
    std::vector<const char*> srcs;
    for (size_t i = 0; i < ids.size(); ++i) {
      FillPattern(bufs[i].data(), 4096, ids[i], 'E');
      srcs.push_back(bufs[i].data());
    }
    {
      FileSizeLimit limit(/*pages=*/4, 4096);
      DiskManager::IoTicket ticket;
      ASSERT_OK(s.disk->SubmitWrites(ids.data(), srcs.data(), ids.size(),
                                     &ticket));
      Status st = s.disk->WaitWrites(&ticket);
      ASSERT_FALSE(st.ok()) << "backend " << static_cast<int>(backend);
      EXPECT_TRUE(st.IsIOError()) << st.ToString();
    }
    // Limit lifted: the same batch lands fine and reads back intact.
    DiskManager::IoTicket ticket;
    ASSERT_OK(s.disk->SubmitWrites(ids.data(), srcs.data(), ids.size(),
                                   &ticket));
    ASSERT_OK(s.disk->WaitWrites(&ticket));
    for (size_t i = 0; i < ids.size(); ++i) {
      std::vector<char> got(4096);
      ASSERT_OK(s.disk->ReadPage(ids[i], got.data()));
      EXPECT_EQ(std::memcmp(got.data(), bufs[i].data(), 4096), 0);
    }
  }
}

// The same injection one layer up: FlushAll's batched drain fails, the
// pool re-marks the affected frames dirty (nothing is lost — the frames
// stayed resident), and once the limit lifts a retry flushes everything
// and the data reads back correctly from disk.
TEST(AsyncWriteTest, FlushAllErrorRedirtiesAndPoolRecovers) {
  for (IoBackend backend : BackendsToTest()) {
    Stack s = MakeStackWithBackend("awr_recover", backend, 4096, 32);
    std::vector<PageId> ids = SeedPages(s, 12);
    // Dirty every page with fresh content.
    for (PageId id : ids) {
      auto g = s.bp->FetchPage(id);
      ASSERT_TRUE(g.ok());
      FillPattern(g->data(), 4096, id, 'N');
      g->MarkDirty();
    }
    {
      FileSizeLimit limit(/*pages=*/4, 4096);
      Status st = s.bp->FlushAll();
      ASSERT_FALSE(st.ok());
      EXPECT_TRUE(st.IsIOError()) << st.ToString();
    }
    ASSERT_OK(s.bp->FlushAll());
    ASSERT_OK(s.disk->Sync());
    ASSERT_OK(s.bp->EvictAll());
    for (PageId id : ids) {
      auto g = s.bp->FetchPage(id);
      ASSERT_TRUE(g.ok());
      std::vector<char> expect(4096);
      FillPattern(expect.data(), 4096, id, 'N');
      EXPECT_EQ(std::memcmp(g->data(), expect.data(), 4096), 0)
          << "page " << id << " backend " << static_cast<int>(backend);
    }
  }
}

TEST(AsyncWriteTest, FlusherDrainsThroughBatchedWrites) {
  for (IoBackend backend : BackendsToTest()) {
    Stack s = MakeStackWithBackend("awr_flusher", backend, 4096, 64);
    s.bp->StartFlusher(/*interval_us=*/1000, /*batch_pages=*/16);
    std::vector<PageId> ids;
    for (int i = 0; i < 32; ++i) {
      auto g = s.bp->NewPage();
      ASSERT_TRUE(g.ok());
      FillPattern(g->data(), 4096, g->id(), 'B');
      g->MarkDirty();
      ids.push_back(g->id());
    }
    ASSERT_TRUE(WaitFor([&] {
      return s.bp->stats().flusher_pages >= ids.size();
    })) << "flusher_pages=" << s.bp->stats().flusher_pages;

    const BufferPoolStats ps = s.bp->stats();
    const DiskStats ds = s.disk->stats();
    EXPECT_EQ(ps.evictions, 0u);
    EXPECT_GE(ps.flusher_coalesced_runs, 1u);
    // Sorted contiguous dirty pages coalesce: far fewer runs than pages.
    EXPECT_LT(ps.flusher_coalesced_runs, ids.size());
    EXPECT_GE(ds.async_writes, ids.size());
    EXPECT_GE(ds.write_runs, 1u);
    EXPECT_GT(ds.async_write_batches, 0u);

    s.bp->StopFlusher();
    ASSERT_OK(s.bp->FlushAll());
    ASSERT_OK(s.bp->EvictAll());
    for (PageId id : ids) {
      auto g = s.bp->FetchPage(id);
      ASSERT_TRUE(g.ok());
      std::vector<char> expect(4096);
      FillPattern(expect.data(), 4096, id, 'B');
      EXPECT_EQ(std::memcmp(g->data(), expect.data(), 4096), 0);
    }
  }
}

// Eviction under memory pressure: a batch fetch whose victims are dirty
// hands ALL of them to one async write-back group before its reads go out.
TEST(AsyncWriteTest, EvictionDirtyVictimsUseBatchedWriteBack) {
  for (IoBackend backend : BackendsToTest()) {
    Stack s = MakeStackWithBackend("awr_evict", backend, 4096, 16);
    std::vector<PageId> ids = SeedPages(s, 32);

    // Re-dirty the first half (fills the 16-frame pool)...
    for (size_t i = 0; i < 16; ++i) {
      auto g = s.bp->FetchPage(ids[i]);
      ASSERT_TRUE(g.ok());
      FillPattern(g->data(), 4096, ids[i], 'V');
      g->MarkDirty();
    }
    s.disk->ResetStats();
    // ...then batch-fetch the second half: every claim displaces a dirty
    // victim, and the victims must drain as one submitted group.
    std::vector<PageId> second(ids.begin() + 16, ids.end());
    {
      ASSERT_OK_AND_ASSIGN(std::vector<PageGuard> guards,
                           s.bp->FetchPages(second));
      ASSERT_EQ(guards.size(), second.size());
    }
    const DiskStats ds = s.disk->stats();
    EXPECT_GE(ds.async_writes, 2u) << "backend " << static_cast<int>(backend);
    EXPECT_GT(ds.async_write_batches, 0u);

    // The displaced versions are on disk: fetch them back and verify.
    for (size_t i = 0; i < 16; ++i) {
      auto g = s.bp->FetchPage(ids[i]);
      ASSERT_TRUE(g.ok());
      std::vector<char> expect(4096);
      FillPattern(expect.data(), 4096, ids[i], 'V');
      EXPECT_EQ(std::memcmp(g->data(), expect.data(), 4096), 0)
          << "page " << ids[i];
    }
  }
}

TEST(AsyncWriteTest, SyncWritebackKnobForcesPerPageWrites) {
  Stack s = MakeStackWithBackend("awr_knob", IoBackend::kThreads);
  std::vector<PageId> ids = SeedPages(s, 8);
  s.bp->set_sync_writeback(true);
  for (PageId id : ids) {
    auto g = s.bp->FetchPage(id);
    ASSERT_TRUE(g.ok());
    FillPattern(g->data(), 4096, id, 'S');
    g->MarkDirty();
  }
  s.disk->ResetStats();
  ASSERT_OK(s.bp->FlushAll());
  DiskStats ds = s.disk->stats();
  EXPECT_EQ(ds.async_write_batches, 0u);  // pure per-page pwrite baseline
  EXPECT_EQ(ds.writes, ids.size());

  s.bp->set_sync_writeback(false);
  for (PageId id : ids) {
    auto g = s.bp->FetchPage(id);
    ASSERT_TRUE(g.ok());
    g->MarkDirty();
  }
  s.disk->ResetStats();
  ASSERT_OK(s.bp->FlushAll());
  ds = s.disk->stats();
  EXPECT_EQ(ds.async_write_batches, 1u);
  EXPECT_EQ(ds.async_writes, ids.size());
}

// Group-fsync checkpoint oracle: the batched FlushAll drain + one Sync
// must leave the backing file BIT-FOR-BIT identical to per-page
// FlushPage + Sync over the same pool contents.
TEST(AsyncWriteTest, GroupFsyncCheckpointMatchesPerPageFlushBitForBit) {
  for (IoBackend backend : BackendsToTest()) {
    Stack a = MakeStackWithBackend("awr_ckpt_a", backend, 4096, 64);
    Stack b = MakeStackWithBackend("awr_ckpt_b", backend, 4096, 64);
    std::vector<PageId> ids_a, ids_b;
    for (int i = 0; i < 40; ++i) {
      auto ga = a.bp->NewPage();
      auto gb = b.bp->NewPage();
      ASSERT_TRUE(ga.ok() && gb.ok());
      ASSERT_EQ(ga->id(), gb->id());
      FillPattern(ga->data(), 4096, ga->id(), 'C');
      FillPattern(gb->data(), 4096, gb->id(), 'C');
      ga->MarkDirty();
      gb->MarkDirty();
      ids_a.push_back(ga->id());
      ids_b.push_back(gb->id());
    }
    // A: per-page FlushPage, then fsync. B: one batched drain + one fsync.
    for (PageId id : ids_a) ASSERT_OK(a.bp->FlushPage(id));
    ASSERT_OK(a.disk->Sync());
    ASSERT_OK(b.bp->FlushAll());
    ASSERT_OK(b.disk->Sync());

    std::ifstream fa(a.file->path(), std::ios::binary);
    std::ifstream fb(b.file->path(), std::ios::binary);
    std::vector<char> ca((std::istreambuf_iterator<char>(fa)),
                         std::istreambuf_iterator<char>());
    std::vector<char> cb((std::istreambuf_iterator<char>(fb)),
                         std::istreambuf_iterator<char>());
    ASSERT_EQ(ca.size(), cb.size());
    EXPECT_EQ(std::memcmp(ca.data(), cb.data(), ca.size()), 0)
        << "backend " << static_cast<int>(backend);
  }
}

// Concurrent flusher + checkpoint + eviction + content writers, miss
// regime (working set 2x the pool): the batched write-back paths race each
// other and the read pipeline. Run under TSan in CI on both backends.
// Writers keep every page's content a deterministic function of its id, so
// any interleaving must still read back exact bytes at the end.
TEST(AsyncWriteTest, ConcurrentFlusherCheckpointEvictionStress) {
  for (IoBackend backend : BackendsToTest()) {
    Stack s = MakeStackWithBackend("awr_stress", backend, 4096, 64);
    std::vector<PageId> ids = SeedPages(s, 128);
    s.bp->StartFlusher(/*interval_us=*/200, /*batch_pages=*/16);

    std::atomic<bool> stop{false};
    std::atomic<uint64_t> errors{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 3; ++t) {
      threads.emplace_back([&, t] {
        uint64_t rng = 0x9e3779b97f4a7c15ull * (t + 1);
        for (int iter = 0; iter < 1500; ++iter) {
          rng ^= rng << 13;
          rng ^= rng >> 7;
          rng ^= rng << 17;
          const PageId id = ids[rng % ids.size()];
          auto g = s.bp->FetchPage(id);
          if (!g.ok()) {
            // ResourceExhausted is legal under this much pinning pressure.
            if (!g.status().IsResourceExhausted()) errors.fetch_add(1);
            continue;
          }
          {
            // Latch-disciplined content write (the flush paths snapshot
            // under the same latch).
            LatchGuard latch(*g->cache_latch());
            FillPattern(g->data(), 4096, id, 'W');
          }
          g->MarkDirty();
        }
      });
    }
    threads.emplace_back([&] {  // checkpoint loop
      while (!stop.load(std::memory_order_acquire)) {
        Status st = s.bp->FlushAll();
        if (st.ok()) st = s.disk->Sync();
        if (!st.ok()) errors.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::microseconds(500));
      }
    });
    threads.emplace_back([&] {  // eviction loop (Busy is expected)
      while (!stop.load(std::memory_order_acquire)) {
        Status st = s.bp->EvictAll();
        if (!st.ok() && !st.IsBusy()) errors.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::microseconds(700));
      }
    });
    for (int t = 0; t < 3; ++t) threads[t].join();
    stop.store(true, std::memory_order_release);
    for (size_t t = 3; t < threads.size(); ++t) threads[t].join();
    EXPECT_EQ(errors.load(), 0u) << "backend " << static_cast<int>(backend);

    s.bp->StopFlusher();
    ASSERT_OK(s.bp->FlushAll());
    ASSERT_OK(s.bp->EvictAll());
    for (PageId id : ids) {
      auto g = s.bp->FetchPage(id);
      ASSERT_TRUE(g.ok());
      // Every page is either its seed content (never touched by a writer)
      // or the deterministic writer pattern — both are functions of id.
      std::vector<char> seed(4096, 0);
      std::memset(seed.data(), 'a' + static_cast<char>(id % 26), 64);
      std::vector<char> written(4096);
      FillPattern(written.data(), 4096, id, 'W');
      const bool ok =
          std::memcmp(g->data(), seed.data(), 4096) == 0 ||
          std::memcmp(g->data(), written.data(), 4096) == 0;
      EXPECT_TRUE(ok) << "torn page " << id << " backend "
                      << static_cast<int>(backend);
    }
  }
}

// A batch that aborts with ResourceExhausted (its claims ran out of
// frames in a later stripe) marks its claimed frames failed; concurrent
// fetchers piggybacked on those claims must see the abort as RETRYABLE
// backpressure (ResourceExhausted), never as a phantom IOError — the
// device did nothing wrong. Regression test for a spurious "concurrent
// page load failed" surfaced by the dirty-churn bench: flusher passes pin
// whole stripes, batches abort under the pressure, and waiters reported
// IO errors for loads that were merely cancelled.
TEST(AsyncWriteTest, TransientClaimAbortIsBackpressureNotIOError) {
  for (IoBackend backend : BackendsToTest()) {
    Stack s = MakeStackWithBackend("awr_transient", backend, 4096, 32);
    std::vector<PageId> ids = SeedPages(s, 128);
    s.bp->StartFlusher(/*interval_us=*/100, /*batch_pages=*/32);

    std::atomic<uint64_t> io_errors{0};
    std::atomic<uint64_t> other_errors{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&, t] {
        uint64_t rng = 0x2545f4914f6cdd1dull * (t + 1);
        for (int iter = 0; iter < 1000; ++iter) {
          // Every thread fetches the SAME sliding window, so whenever one
          // thread claims the misses the others pin-and-wait on its
          // claims — maximizing waiters when a batch aborts under the
          // flusher's pinning pressure.
          const size_t base = (static_cast<size_t>(iter) * 7) % 108;
          std::vector<PageId> want(ids.begin() + base,
                                   ids.begin() + base + 20);
          auto guards = s.bp->FetchPages(want);
          if (!guards.ok()) {
            if (guards.status().IsIOError()) {
              io_errors.fetch_add(1);
            } else if (!guards.status().IsResourceExhausted()) {
              other_errors.fetch_add(1);
            }
            continue;
          }
          for (PageGuard& g : *guards) {
            LatchGuard latch(*g.cache_latch());
            g.data()[rng++ % 64] = static_cast<char>(rng);
            g.MarkDirty();
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(io_errors.load(), 0u)
        << "transient claim aborts leaked as IOError, backend "
        << static_cast<int>(backend);
    EXPECT_EQ(other_errors.load(), 0u);
    s.bp->StopFlusher();
    ASSERT_OK(s.bp->FlushAll());
  }
}

// Capacity-pressure stress for the WRITE path sharing the read path's
// in-flight cap: a tiny ring with reads and writes racing from several
// threads must make progress (regression guard for the PR 4 cap-loop
// deadlock, now reachable from two directions). Readers and writers use
// disjoint page ranges so content checks stay exact.
TEST(AsyncWriteTest, CapacityPressureMixedReadWriteStress) {
  for (IoBackend backend : BackendsToTest()) {
    Stack s;
    s.file.reset(new TempFile("awr_pressure"));
    AsyncIoOptions aio;
    aio.backend = backend;
    aio.queue_depth = 4;
    s.disk.reset(new DiskManager(s.file->path(), 4096, nullptr,
                                 /*direct_io=*/false, aio));
    ASSERT_OK(s.disk->Open());
    s.bp.reset(new BufferPool(s.disk.get(), 64));
    std::vector<PageId> ids = SeedPages(s, 48);

    std::atomic<uint64_t> errors{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 2; ++t) {
      threads.emplace_back([&, t] {  // writers: pages [0, 24)
        std::vector<std::vector<char>> bufs(12, std::vector<char>(4096));
        for (int iter = 0; iter < 200; ++iter) {
          std::vector<PageId> want;
          std::vector<const char*> srcs;
          for (size_t i = t; i < 24; i += 2) {
            FillPattern(bufs[want.size()].data(), 4096, ids[i], 'M');
            srcs.push_back(bufs[want.size()].data());
            want.push_back(ids[i]);
          }
          DiskManager::IoTicket ticket;
          Status st = s.disk->SubmitWrites(want.data(), srcs.data(),
                                           want.size(), &ticket);
          if (st.ok()) st = s.disk->WaitWrites(&ticket);
          if (!st.ok()) errors.fetch_add(1);
        }
      });
    }
    for (int t = 0; t < 2; ++t) {
      threads.emplace_back([&, t] {  // readers: pages [24, 48)
        std::vector<std::vector<char>> bufs(12, std::vector<char>(4096));
        for (int iter = 0; iter < 200; ++iter) {
          std::vector<PageId> want;
          std::vector<char*> dsts;
          for (size_t i = 24 + t; i < 48; i += 2) {
            dsts.push_back(bufs[want.size()].data());
            want.push_back(ids[i]);
          }
          DiskManager::IoTicket ticket;
          Status st = s.disk->SubmitReads(want.data(), dsts.data(),
                                          want.size(), &ticket);
          if (st.ok()) st = s.disk->WaitReads(&ticket);
          if (!st.ok()) {
            errors.fetch_add(1);
            continue;
          }
          for (size_t i = 0; i < want.size(); ++i) {
            if (bufs[i][0] != 'a' + static_cast<char>(want[i] % 26)) {
              errors.fetch_add(1);
            }
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(errors.load(), 0u) << "backend " << static_cast<int>(backend);

    // Writer pages hold exactly the last written pattern.
    for (size_t i = 0; i < 24; ++i) {
      std::vector<char> got(4096), expect(4096);
      ASSERT_OK(s.disk->ReadPage(ids[i], got.data()));
      FillPattern(expect.data(), 4096, ids[i], 'M');
      EXPECT_EQ(std::memcmp(got.data(), expect.data(), 4096), 0);
    }
  }
}

}  // namespace
}  // namespace nblb
