#include "exec/database.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace nblb {
namespace {

using nblb::testing::TempFile;

DatabaseOptions Opts(const TempFile& f) {
  DatabaseOptions o;
  o.path = f.path();
  o.buffer_pool_frames = 256;
  return o;
}

Schema SimpleSchema() {
  return Schema({{"id", TypeId::kInt64, 0}, {"val", TypeId::kVarchar, 16}});
}

TableOptions SimpleOptions() {
  TableOptions o;
  o.key_columns = {0};
  o.cached_columns = {1};
  return o;
}

TEST(DatabaseTest, OpenCreateInsertLookup) {
  TempFile f("db_basic");
  ASSERT_OK_AND_ASSIGN(auto db, Database::Open(Opts(f)));
  ASSERT_OK_AND_ASSIGN(Table * t,
                       db->CreateTable("kv", SimpleSchema(), SimpleOptions()));
  ASSERT_OK(t->Insert({Value::Int64(1), Value::Varchar("one")}));
  ASSERT_OK_AND_ASSIGN(Row row, t->GetByKey({Value::Int64(1)}));
  EXPECT_EQ(row[1].AsString(), "one");
}

TEST(DatabaseTest, TableRegistry) {
  TempFile f("db_registry");
  ASSERT_OK_AND_ASSIGN(auto db, Database::Open(Opts(f)));
  ASSERT_OK(db->CreateTable("a", SimpleSchema(), SimpleOptions()).status());
  ASSERT_OK(db->CreateTable("b", SimpleSchema(), SimpleOptions()).status());
  EXPECT_TRUE(db->CreateTable("a", SimpleSchema(), SimpleOptions())
                  .status()
                  .IsAlreadyExists());
  ASSERT_OK_AND_ASSIGN(Table * a, db->GetTable("a"));
  ASSERT_OK_AND_ASSIGN(Table * b, db->GetTable("b"));
  EXPECT_NE(a, b);
  EXPECT_TRUE(db->GetTable("c").status().IsNotFound());
  EXPECT_EQ(db->catalog()->tables().size(), 2u);
}

TEST(DatabaseTest, MultipleTablesShareOneFile) {
  TempFile f("db_shared");
  ASSERT_OK_AND_ASSIGN(auto db, Database::Open(Opts(f)));
  ASSERT_OK_AND_ASSIGN(Table * a,
                       db->CreateTable("a", SimpleSchema(), SimpleOptions()));
  ASSERT_OK_AND_ASSIGN(Table * b,
                       db->CreateTable("b", SimpleSchema(), SimpleOptions()));
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_OK(a->Insert({Value::Int64(i), Value::Varchar("a")}));
    ASSERT_OK(b->Insert({Value::Int64(i), Value::Varchar("b")}));
  }
  ASSERT_OK_AND_ASSIGN(Row ra, a->GetByKey({Value::Int64(50)}));
  ASSERT_OK_AND_ASSIGN(Row rb, b->GetByKey({Value::Int64(50)}));
  EXPECT_EQ(ra[1].AsString(), "a");
  EXPECT_EQ(rb[1].AsString(), "b");
}

TEST(DatabaseTest, CheckpointFlushesAllDirtyPages) {
  TempFile f("db_ckpt");
  ASSERT_OK_AND_ASSIGN(auto db, Database::Open(Opts(f)));
  ASSERT_OK_AND_ASSIGN(Table * t,
                       db->CreateTable("kv", SimpleSchema(), SimpleOptions()));
  for (int64_t i = 0; i < 500; ++i) {
    ASSERT_OK(t->Insert({Value::Int64(i), Value::Varchar("v")}));
  }
  ASSERT_OK(db->Checkpoint());
  // Everything still resolvable after dropping the pool contents.
  ASSERT_OK(db->buffer_pool()->EvictAll());
  ASSERT_OK_AND_ASSIGN(Row row, t->GetByKey({Value::Int64(321)}));
  EXPECT_EQ(row[0].AsInt(), 321);
}

TEST(DatabaseTest, LatencyModelChargesVirtualTimeOnMisses) {
  TempFile f("db_latency");
  DatabaseOptions o = Opts(f);
  o.enable_latency_model = true;
  o.latency.seek_ns = 1'000'000;
  o.buffer_pool_frames = 16;  // tiny: force disk traffic
  ASSERT_OK_AND_ASSIGN(auto db, Database::Open(o));
  ASSERT_OK_AND_ASSIGN(Table * t,
                       db->CreateTable("kv", SimpleSchema(), SimpleOptions()));
  for (int64_t i = 0; i < 2000; ++i) {
    ASSERT_OK(t->Insert({Value::Int64(i), Value::Varchar("v")}));
  }
  EXPECT_GT(db->clock()->NowNs(), 0u)
      << "evictions under a tiny pool must have charged simulated latency";
}

}  // namespace
}  // namespace nblb
