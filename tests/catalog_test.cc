#include "catalog/catalog.h"

#include <gtest/gtest.h>

#include "catalog/schema.h"
#include "catalog/type.h"
#include "catalog/value.h"
#include "test_util.h"

namespace nblb {
namespace {

TEST(TypeTest, SizesAreFixed) {
  EXPECT_EQ(TypeSize(TypeId::kBool, 0), 1u);
  EXPECT_EQ(TypeSize(TypeId::kInt8, 0), 1u);
  EXPECT_EQ(TypeSize(TypeId::kInt16, 0), 2u);
  EXPECT_EQ(TypeSize(TypeId::kInt32, 0), 4u);
  EXPECT_EQ(TypeSize(TypeId::kInt64, 0), 8u);
  EXPECT_EQ(TypeSize(TypeId::kFloat64, 0), 8u);
  EXPECT_EQ(TypeSize(TypeId::kTimestamp, 0), 4u);
  EXPECT_EQ(TypeSize(TypeId::kChar, 14), 14u);
  EXPECT_EQ(TypeSize(TypeId::kVarchar, 255), 257u);  // 2-byte length prefix
}

TEST(TypeTest, FamilyPredicates) {
  EXPECT_TRUE(IsIntegerFamily(TypeId::kBool));
  EXPECT_TRUE(IsIntegerFamily(TypeId::kTimestamp));
  EXPECT_FALSE(IsIntegerFamily(TypeId::kFloat64));
  EXPECT_TRUE(IsStringFamily(TypeId::kChar));
  EXPECT_TRUE(IsStringFamily(TypeId::kVarchar));
  EXPECT_FALSE(IsStringFamily(TypeId::kInt32));
}

TEST(ValueTest, ComparisonWithinFamilies) {
  EXPECT_LT(Value::Int32(1).Compare(Value::Int32(2)), 0);
  EXPECT_EQ(Value::Int32(5), Value::Int64(5));  // family-compatible
  EXPECT_LT(Value::Varchar("a"), Value::Varchar("b"));
  EXPECT_LT(Value::Float64(1.5).Compare(Value::Float64(2.5)), 0);
  EXPECT_EQ(Value::Bool(true).AsInt(), 1);
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
  EXPECT_EQ(Value::Int64(-42).ToString(), "-42");
  EXPECT_EQ(Value::Varchar("abc").ToString(), "abc");
  EXPECT_EQ(Value::Timestamp(1000).ToString(), "1000");
}

TEST(SchemaTest, OffsetsAndRowSize) {
  Schema s({{"a", TypeId::kInt32, 0},
            {"b", TypeId::kChar, 10},
            {"c", TypeId::kInt64, 0}});
  EXPECT_EQ(s.num_columns(), 3u);
  EXPECT_EQ(s.offset(0), 0u);
  EXPECT_EQ(s.offset(1), 4u);
  EXPECT_EQ(s.offset(2), 14u);
  EXPECT_EQ(s.row_size(), 22u);
}

TEST(SchemaTest, FindColumn) {
  Schema s({{"x", TypeId::kInt32, 0}, {"y", TypeId::kInt64, 0}});
  EXPECT_EQ(s.FindColumn("y").value(), 1u);
  EXPECT_FALSE(s.FindColumn("z").has_value());
}

TEST(SchemaTest, ProjectPreservesOrderAndTypes) {
  Schema s({{"a", TypeId::kInt32, 0},
            {"b", TypeId::kChar, 10},
            {"c", TypeId::kInt64, 0}});
  Schema p = s.Project({2, 0});
  EXPECT_EQ(p.num_columns(), 2u);
  EXPECT_EQ(p.column(0).name, "c");
  EXPECT_EQ(p.column(1).name, "a");
  EXPECT_EQ(p.row_size(), 12u);
}

TEST(CatalogTest, CreateAndLookupTables) {
  Catalog cat;
  Schema s({{"id", TypeId::kInt64, 0}});
  ASSERT_OK_AND_ASSIGN(TableId t1, cat.CreateTable("page", s));
  ASSERT_OK_AND_ASSIGN(TableId t2, cat.CreateTable("revision", s));
  EXPECT_NE(t1, t2);
  ASSERT_OK_AND_ASSIGN(TableInfo * info, cat.GetTableByName("page"));
  EXPECT_EQ(info->id, t1);
  EXPECT_TRUE(cat.CreateTable("page", s).status().IsAlreadyExists());
  EXPECT_TRUE(cat.GetTableByName("nope").status().IsNotFound());
}

TEST(CatalogTest, CreateIndexValidatesColumns) {
  Catalog cat;
  Schema s({{"id", TypeId::kInt64, 0}, {"v", TypeId::kInt32, 0}});
  ASSERT_OK_AND_ASSIGN(TableId t, cat.CreateTable("t", s));
  ASSERT_OK_AND_ASSIGN(IndexId ix, cat.CreateIndex("t_pk", t, {0}, {1}));
  ASSERT_OK_AND_ASSIGN(IndexInfo * info, cat.GetIndex(ix));
  EXPECT_EQ(info->table_id, t);
  EXPECT_TRUE(cat.CreateIndex("bad", t, {5}, {}).status().IsInvalidArgument());
  EXPECT_TRUE(cat.CreateIndex("t_pk", t, {0}, {}).status().IsAlreadyExists());
  ASSERT_OK_AND_ASSIGN(TableInfo * tinfo, cat.GetTable(t));
  EXPECT_EQ(tinfo->indexes.size(), 1u);
}

}  // namespace
}  // namespace nblb
