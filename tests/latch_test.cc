// Concurrency tests for the §2.1.3 latching discipline: cache reads/writes
// from multiple threads on a fixed tree (structural operations externally
// serialized, per the documented contract).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "cache/index_cache.h"
#include "common/bytes.h"
#include "common/latch.h"
#include "test_util.h"

namespace nblb {
namespace {

using nblb::testing::MakeStack;
using nblb::testing::Stack;

std::string K(uint64_t v) {
  std::string s(8, '\0');
  EncodeBigEndian64(s.data(), v);
  return s;
}

constexpr uint16_t kItemSize = 25;
constexpr size_t kPayload = kItemSize - 8;

std::string PayloadFor(uint64_t tid) {
  std::string p(kPayload, '\0');
  for (size_t i = 0; i < kPayload; ++i) {
    p[i] = static_cast<char>('a' + (tid * 3 + i) % 26);
  }
  return p;
}

TEST(LatchConcurrencyTest, ConcurrentProbesAndPopulatesNeverCorrupt) {
  Stack s = MakeStack("latch_conc", 4096, 1024);
  BTreeOptions opts;
  opts.key_size = 8;
  opts.cache_item_size = kItemSize;
  ASSERT_OK_AND_ASSIGN(auto tree, BTree::Create(s.bp.get(), opts));
  constexpr uint64_t kKeys = 500;
  for (uint64_t i = 0; i < kKeys; ++i) {
    ASSERT_OK(tree->Insert(Slice(K(i)), i));
  }

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 20000;
  std::atomic<int> corruption{0};
  std::atomic<uint64_t> hits{0};
  std::vector<std::unique_ptr<IndexCache>> caches;
  for (int t = 0; t < kThreads; ++t) {
    IndexCacheOptions co;
    co.rng_seed = 1000 + t;
    caches.emplace_back(new IndexCache(tree.get(), co));
  }

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      IndexCache* cache = caches[t].get();
      Rng rng(t + 1);
      char out[kPayload];
      for (int op = 0; op < kOpsPerThread; ++op) {
        const uint64_t k = rng.Uniform(kKeys);
        auto leaf = tree->FindLeaf(Slice(K(k)));
        if (!leaf.ok()) {
          ++corruption;
          continue;
        }
        if (cache->Probe(&*leaf, k, out)) {
          if (std::string(out, kPayload) != PayloadFor(k)) {
            ++corruption;
          }
          ++hits;
        } else {
          cache->Populate(&*leaf, k, Slice(PayloadFor(k)));
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(corruption.load(), 0)
      << "a probe returned bytes that were not the exact cached payload";
  EXPECT_GT(hits.load(), 0u);
}

TEST(LatchConcurrencyTest, GiveUpsHappenUnderContentionButNothingBlocks) {
  Stack s = MakeStack("latch_giveup", 4096, 256);
  BTreeOptions opts;
  opts.key_size = 8;
  opts.cache_item_size = kItemSize;
  ASSERT_OK_AND_ASSIGN(auto tree, BTree::Create(s.bp.get(), opts));
  // Single leaf: every thread fights over one latch.
  for (uint64_t i = 0; i < 16; ++i) {
    ASSERT_OK(tree->Insert(Slice(K(i)), i));
  }
  constexpr int kThreads = 8;
  std::vector<std::unique_ptr<IndexCache>> caches;
  for (int t = 0; t < kThreads; ++t) {
    caches.emplace_back(new IndexCache(tree.get()));
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      char out[kPayload];
      IndexCache* cache = caches[t].get();
      for (int op = 0; op < 30000; ++op) {
        auto leaf = tree->FindLeaf(Slice(K(op % 16)));
        ASSERT_TRUE(leaf.ok());
        if (!cache->Probe(&*leaf, op % 16, out)) {
          cache->Populate(&*leaf, op % 16, Slice(PayloadFor(op % 16)));
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  uint64_t give_ups = 0;
  for (auto& c : caches) give_ups += c->stats().latch_give_ups;
  // With 8 threads hammering one page some give-ups are virtually certain,
  // but this is probabilistic — only require that the counter is coherent.
  EXPECT_GE(give_ups, 0u);
}

TEST(LatchConcurrencyTest, ConcurrentReadersWithOneInvalidator) {
  Stack s = MakeStack("latch_inval", 4096, 512);
  BTreeOptions opts;
  opts.key_size = 8;
  opts.cache_item_size = kItemSize;
  ASSERT_OK_AND_ASSIGN(auto tree, BTree::Create(s.bp.get(), opts));
  constexpr uint64_t kKeys = 64;
  for (uint64_t i = 0; i < kKeys; ++i) {
    ASSERT_OK(tree->Insert(Slice(K(i)), i));
  }
  IndexCache reader_cache(tree.get());
  std::atomic<bool> stop{false};
  std::atomic<int> corruption{0};

  std::thread reader([&] {
    Rng rng(1);
    char out[kPayload];
    while (!stop.load(std::memory_order_relaxed)) {
      const uint64_t k = rng.Uniform(kKeys);
      auto leaf = tree->FindLeaf(Slice(K(k)));
      if (!leaf.ok()) continue;
      if (reader_cache.Probe(&*leaf, k, out)) {
        if (std::string(out, kPayload) != PayloadFor(k)) ++corruption;
      } else {
        reader_cache.Populate(&*leaf, k, Slice(PayloadFor(k)));
      }
    }
  });

  // The invalidator bumps CSNidx repeatedly — readers must keep functioning
  // and never see torn state.
  for (int i = 0; i < 200; ++i) {
    ASSERT_OK(reader_cache.InvalidateAll());
    std::this_thread::yield();
  }
  stop = true;
  reader.join();
  EXPECT_EQ(corruption.load(), 0);
}

TEST(SharedLatchTest, ExclusiveExcludesEverything) {
  SharedLatch latch;
  latch.Lock();
  EXPECT_FALSE(latch.TryLock());
  EXPECT_FALSE(latch.TryLockShared());
  latch.Unlock();
  EXPECT_TRUE(latch.TryLock());
  latch.Unlock();
}

TEST(SharedLatchTest, SharedAdmitsSharedButNotExclusive) {
  SharedLatch latch;
  latch.LockShared();
  EXPECT_TRUE(latch.TryLockShared());
  EXPECT_FALSE(latch.TryLock());
  latch.UnlockShared();
  EXPECT_FALSE(latch.TryLock());  // one shared holder remains
  latch.UnlockShared();
  EXPECT_TRUE(latch.TryLock());
  latch.Unlock();
}

TEST(SharedLatchTest, WritersAreMutuallyExclusiveWithReaders) {
  // Readers observe a two-word value the writer updates under the latch; the
  // two words must always agree (b == a + 1), or mutual exclusion is broken.
  SharedLatch latch;
  uint64_t a = 0, b = 1;
  std::atomic<int> torn{0};
  std::atomic<bool> stop{false};

  constexpr int kReaders = 4;
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        SharedLatchGuard g(latch);
        if (b != a + 1) ++torn;
      }
    });
  }

  for (uint64_t i = 0; i < 20000; ++i) {
    ExclusiveLatchGuard g(latch);
    a = i;
    b = i + 1;
  }
  stop = true;
  for (auto& t : readers) t.join();
  EXPECT_EQ(torn.load(), 0);
  EXPECT_EQ(a, 19999u);
}

TEST(SharedLatchTest, ConcurrentWritersSerialize) {
  SharedLatch latch;
  uint64_t counter = 0;  // deliberately non-atomic; the latch must serialize
  constexpr int kThreads = 4;
  constexpr int kIncrements = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        ExclusiveLatchGuard g(latch);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<uint64_t>(kThreads) * kIncrements);
}

}  // namespace
}  // namespace nblb
