#include "common/zipf.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace nblb {
namespace {

TEST(ZipfTest, SamplesStayInRange) {
  ZipfianGenerator z(100, 0.5, 1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(z.Next(), 100u);
  }
}

TEST(ZipfTest, RankZeroIsMostPopular) {
  ZipfianGenerator z(1000, 0.5, 2);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 200000; ++i) counts[z.Next()]++;
  int max_count = 0;
  uint64_t max_rank = 0;
  for (const auto& [rank, count] : counts) {
    if (count > max_count) {
      max_count = count;
      max_rank = rank;
    }
  }
  EXPECT_EQ(max_rank, 0u);
}

TEST(ZipfTest, EmpiricalFrequenciesTrackTheory) {
  constexpr uint64_t kN = 100;
  constexpr int kSamples = 500000;
  ZipfianGenerator z(kN, 0.5, 3);
  std::vector<int> counts(kN, 0);
  for (int i = 0; i < kSamples; ++i) counts[z.Next()]++;
  // Check the head of the distribution within 15% relative error.
  for (uint64_t r : {0ull, 1ull, 2ull, 5ull, 10ull}) {
    const double expect = z.ProbabilityOfRank(r) * kSamples;
    EXPECT_NEAR(counts[r], expect, expect * 0.15) << "rank " << r;
  }
}

TEST(ZipfTest, ProbabilitiesSumToOne) {
  ZipfianGenerator z(500, 0.5, 4);
  double sum = 0;
  for (uint64_t i = 0; i < 500; ++i) sum += z.ProbabilityOfRank(i);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, RanksCoveringMassIsMonotone) {
  ZipfianGenerator z(1000, 0.5, 5);
  const uint64_t half = z.RanksCoveringMass(0.5);
  const uint64_t ninety = z.RanksCoveringMass(0.9);
  EXPECT_LT(half, ninety);
  EXPECT_LE(ninety, 1000u);
  // alpha=0.5 over 1000 items: the top quarter covers roughly half the mass.
  EXPECT_LT(half, 500u);
}

TEST(ZipfTest, DeterministicForSeed) {
  ZipfianGenerator a(100, 0.5, 42), b(100, 0.5, 42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(ScrambledZipfTest, ItemForRankIsDeterministicScatter) {
  ScrambledZipfianGenerator z(1000, 0.5, 6);
  const uint64_t hot = z.ItemForRank(0);
  EXPECT_LT(hot, 1000u);
  // The scatter should not map rank 0 to item 0 for this n (hash-based).
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) counts[z.Next()]++;
  // The most frequent item is ItemForRank(0).
  int max_count = 0;
  uint64_t max_item = 0;
  for (const auto& [item, count] : counts) {
    if (count > max_count) {
      max_count = count;
      max_item = item;
    }
  }
  EXPECT_EQ(max_item, hot);
}

TEST(HotspotTest, HotFractionGetsHotProbability) {
  // The paper's revision workload: 5% of tuples get 99.9% of accesses.
  constexpr uint64_t kN = 10000;
  HotspotGenerator g(kN, 0.05, 0.999, 7);
  EXPECT_EQ(g.hot_count(), 500u);
  int hot_hits = 0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    if (g.Next() < g.hot_count()) ++hot_hits;
  }
  EXPECT_NEAR(hot_hits / static_cast<double>(kSamples), 0.999, 0.002);
}

TEST(HotspotTest, ColdItemsStillReachable) {
  HotspotGenerator g(100, 0.1, 0.5, 8);
  bool saw_cold = false;
  for (int i = 0; i < 1000; ++i) {
    if (g.Next() >= g.hot_count()) saw_cold = true;
  }
  EXPECT_TRUE(saw_cold);
}

}  // namespace
}  // namespace nblb
