// Observability stack tests: the sample-based Histogram (re-homed from
// common_test when common/histogram.h folded into obs/), the LogHistogram
// quantile API, MetricsRegistry snapshot/delta/merge/JSON, the TraceContext
// span accumulator + TraceAggregator ring, and the flight-recorder event
// ring (wraparound + concurrent-writer integrity).

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/event_ring.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace nblb {
namespace {

// ---- Histogram (sample-based) ----------------------------------------------

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (uint64_t v = 1; v <= 100; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.sum(), 5050u);
  EXPECT_DOUBLE_EQ(h.Mean(), 50.5);
  EXPECT_EQ(h.Min(), 1u);
  EXPECT_EQ(h.Max(), 100u);
  EXPECT_EQ(h.Percentile(50.0), 51u);  // nearest rank: round(0.5 * 99) = 50
  EXPECT_EQ(h.Percentile(99.0), 99u);
  EXPECT_EQ(h.Percentile(100.0), 100u);
  // Unified quantile API: q in [0,1] mirrors Percentile(q*100).
  EXPECT_EQ(h.ValueAtQuantile(0.50), h.Percentile(50.0));
  EXPECT_EQ(h.ValueAtQuantile(0.99), h.Percentile(99.0));
  EXPECT_NE(h.Summary().find("count=100"), std::string::npos);
}

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Min(), 0u);
  EXPECT_EQ(h.Max(), 0u);
  EXPECT_EQ(h.Percentile(50.0), 0u);
}

TEST(HistogramTest, ClearResets) {
  Histogram h;
  h.Record(7);
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(50.0), 0u);
}

// ---- LogHistogram -----------------------------------------------------------

TEST(LogHistogramTest, QuantileApiMatchesApproxPercentile) {
  LogHistogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  LogHistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count(), 1000u);
  EXPECT_EQ(snap.ValueAtQuantile(0.50), snap.ApproxPercentile(0.50));
  EXPECT_EQ(snap.ValueAtQuantile(0.99), snap.ApproxPercentile(0.99));
  // Power-of-two buckets: the answer is an upper bound of the right bucket.
  EXPECT_GE(snap.ValueAtQuantile(0.50), 500u);
  EXPECT_GE(snap.ApproxMax(), 1000u);
}

TEST(LogHistogramTest, SnapshotSubtractIsolatesAPhase) {
  LogHistogram h;
  h.Record(5);
  h.Record(5);
  LogHistogramSnapshot before = h.Snapshot();
  h.Record(5);
  LogHistogramSnapshot delta = h.Snapshot();
  delta -= before;
  EXPECT_EQ(delta.count(), 1u);
}

// ---- MetricsRegistry --------------------------------------------------------

TEST(MetricsRegistryTest, SnapshotReadsCountersGaugesHistograms) {
  std::atomic<uint64_t> hits{40};
  LogHistogram lat;
  lat.Record(10);
  lat.Record(20);

  MetricsRegistry reg;
  reg.RegisterCounter("pool.hits", &hits);
  reg.RegisterCounterFn("pool.misses", [] { return uint64_t{2}; });
  reg.RegisterGauge("pool.hit_rate", [] { return 0.95; });
  reg.RegisterHistogram("pool.latency_us", &lat);

  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("pool.hits"), 40u);
  EXPECT_EQ(snap.counters.at("pool.misses"), 2u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("pool.hit_rate"), 0.95);
  EXPECT_EQ(snap.histograms.at("pool.latency_us").count(), 2u);

  // Live pointer semantics: later snapshots see later counter values.
  hits.fetch_add(2, std::memory_order_relaxed);
  EXPECT_EQ(reg.Snapshot().counters.at("pool.hits"), 42u);
}

TEST(MetricsRegistryTest, DeltaSubtractsCountersAndHistogramsOnly) {
  std::atomic<uint64_t> ops{10};
  LogHistogram lat;
  lat.Record(1);
  MetricsRegistry reg;
  reg.RegisterCounter("ops", &ops);
  reg.RegisterGauge("level", [&] {
    return static_cast<double>(ops.load(std::memory_order_relaxed));
  });
  reg.RegisterHistogram("lat", &lat);

  MetricsSnapshot before = reg.Snapshot();
  ops.store(25, std::memory_order_relaxed);
  lat.Record(2);
  lat.Record(3);
  MetricsSnapshot delta = reg.Snapshot() - before;
  EXPECT_EQ(delta.counters.at("ops"), 15u);
  EXPECT_EQ(delta.histograms.at("lat").count(), 2u);
  // Gauges are levels, not totals: the delta keeps the later value.
  EXPECT_DOUBLE_EQ(delta.gauges.at("level"), 25.0);
}

TEST(MetricsRegistryTest, MergePrefixesEveryName) {
  std::atomic<uint64_t> reads{7};
  MetricsRegistry db;
  db.RegisterCounter("disk.reads", &reads);

  MetricsSnapshot engine;
  engine.counters["engine.batches"] = 1;
  engine.Merge(db.Snapshot(), "shard3.");
  EXPECT_EQ(engine.counters.at("shard3.disk.reads"), 7u);
  EXPECT_EQ(engine.counters.at("engine.batches"), 1u);

  // Merging a second shard with the same names accumulates counters.
  engine.Merge(db.Snapshot(), "shard3.");
  EXPECT_EQ(engine.counters.at("shard3.disk.reads"), 14u);
}

TEST(MetricsRegistryTest, ToJsonEmitsOneStructuredDocument) {
  std::atomic<uint64_t> c{3};
  LogHistogram h;
  h.Record(4);
  MetricsRegistry reg;
  reg.RegisterCounter("a.count", &c);
  reg.RegisterGauge("a.rate", [] { return 0.5; });
  reg.RegisterHistogram("a.lat", &h);

  const std::string json = reg.Snapshot().ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"counters\": {\"a.count\": 3}"), std::string::npos);
  EXPECT_NE(json.find("\"a.rate\": 0.5"), std::string::npos);
  EXPECT_NE(json.find("\"a.lat\": {\"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\": ["), std::string::npos);
}

TEST(ObsEnabledTest, DefaultsOnWithoutEnvOverride) {
  // The test harness never sets NBLB_OBS_OFF, so the cached value is true.
  EXPECT_TRUE(ObsEnabled());
}

// ---- TraceContext / TraceAggregator ----------------------------------------

TEST(TraceTest, TimerAttributesToActiveContextOnly) {
  {
    // No active trace: timers are a no-op.
    TraceTimer t(TracePhase::kGetBatch);
  }
  TraceContext ctx;
  ctx.enqueued = std::chrono::steady_clock::now();
  {
    ActiveTraceScope scope(&ctx);
    TraceTimer t(TracePhase::kGetBatch);
  }
  EXPECT_EQ(ActiveTrace(), nullptr);
  const size_t i = static_cast<size_t>(TracePhase::kGetBatch);
  EXPECT_NE(ctx.first_start_ns[i], UINT64_MAX);
  const size_t j = static_cast<size_t>(TracePhase::kCopy);
  EXPECT_EQ(ctx.first_start_ns[j], UINT64_MAX);
}

TEST(TraceTest, AggregatorRetiresIntoHistogramsAndRing) {
  TraceAggregator agg;
  const auto t0 = std::chrono::steady_clock::now();
  for (int k = 0; k < 3; ++k) {
    TraceContext ctx;
    ctx.trace_id = static_cast<uint64_t>(k);
    ctx.enqueued = t0;
    ctx.AddSpan(TracePhase::kQueueWait, t0, t0 + std::chrono::microseconds(5));
    ctx.AddSpan(TracePhase::kService, t0 + std::chrono::microseconds(5),
                t0 + std::chrono::microseconds(9));
    agg.Retire(ctx, t0 + std::chrono::microseconds(9));
  }
  agg.RecordCompletion(2);
  EXPECT_EQ(agg.sampled(), 3u);

  MetricsRegistry reg;
  agg.RegisterMetrics(&reg, "trace.");
  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("trace.sampled"), 3u);
  EXPECT_EQ(snap.histograms.at("trace.queue_wait_us").count(), 3u);
  EXPECT_EQ(snap.histograms.at("trace.service_us").count(), 3u);
  EXPECT_EQ(snap.histograms.at("trace.end_to_end_us").count(), 3u);
  EXPECT_EQ(snap.histograms.at("trace.completion_us").count(), 1u);
  // Never-entered phases contribute nothing.
  EXPECT_EQ(snap.histograms.at("trace.device_wait_us").count(), 0u);

  const std::vector<TraceSummary> recent = agg.Recent();
  ASSERT_EQ(recent.size(), 3u);
  EXPECT_EQ(recent.front().trace_id, 0u);  // oldest first
  EXPECT_EQ(recent.back().trace_id, 2u);
}

// ---- EventRing --------------------------------------------------------------

TEST(EventRingTest, WraparoundKeepsTheMostRecentWindow) {
  EventRing ring;
  const uint64_t total = EventRing::kSlots * 3 + 17;
  for (uint64_t i = 0; i < total; ++i) {
    ring.Record(FlightEvent::kChunkRetry, i, i * 2, i * 10);
  }
  std::vector<FlightEventRecord> events = ring.Snapshot();
  ASSERT_EQ(events.size(), EventRing::kSlots);
  // Oldest surviving event is exactly kSlots back from the newest.
  EXPECT_EQ(events.front().seq, total - EventRing::kSlots);
  EXPECT_EQ(events.back().seq, total - 1);
  for (size_t k = 0; k < events.size(); ++k) {
    const FlightEventRecord& e = events[k];
    if (k > 0) EXPECT_EQ(e.seq, events[k - 1].seq + 1);
    EXPECT_EQ(e.code, FlightEvent::kChunkRetry);
    EXPECT_EQ(e.arg0, e.seq);
    EXPECT_EQ(e.arg1, e.seq * 2);
    EXPECT_EQ(e.ts_us, e.seq * 10);
  }
}

TEST(EventRingTest, ConcurrentReadersNeverSeeTornEvents) {
  // One writer hammers the ring (payload fields are functions of the
  // sequence number); several readers snapshot concurrently and verify that
  // every surviving record is internally consistent — the seqlock must drop
  // overwritten slots rather than return torn payloads. TSan-clean.
  EventRing ring;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      ring.Record(FlightEvent::kTransientAbort, i * 3, i ^ 0xabcdef, i);
      ++i;
    }
  });

  std::atomic<uint64_t> validated{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      for (int iter = 0; iter < 200; ++iter) {
        std::vector<FlightEventRecord> events = ring.Snapshot();
        uint64_t prev_seq = 0;
        bool have_prev = false;
        for (const FlightEventRecord& e : events) {
          ASSERT_EQ(e.code, FlightEvent::kTransientAbort);
          ASSERT_EQ(e.arg0, e.ts_us * 3);
          ASSERT_EQ(e.arg1, e.ts_us ^ 0xabcdef);
          if (have_prev) ASSERT_GT(e.seq, prev_seq);
          prev_seq = e.seq;
          have_prev = true;
          validated.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : readers) t.join();
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  // The readers must have validated a meaningful number of events, or the
  // "drop overwritten slots" logic is discarding everything.
  EXPECT_GT(validated.load(), 0u);
}

TEST(FlightRecorderTest, RecordsPerThreadAndDumps) {
  FlightRecorder& rec = FlightRecorder::Instance();
  ASSERT_TRUE(rec.enabled());
  RecordFlightEvent(FlightEvent::kBusyReject, 3, 9);
  std::thread other(
      [] { RecordFlightEvent(FlightEvent::kCapacityWait, 1, 4); });
  other.join();
  EXPECT_GE(rec.ring_count(), 2u);  // this thread + the joined one

  bool saw_busy = false;
  bool saw_wait = false;
  for (const auto& ring : rec.SnapshotAll()) {
    for (const auto& e : ring) {
      if (e.code == FlightEvent::kBusyReject && e.arg0 == 3 && e.arg1 == 9) {
        saw_busy = true;
      }
      if (e.code == FlightEvent::kCapacityWait && e.arg0 == 1 && e.arg1 == 4) {
        saw_wait = true;
      }
    }
  }
  EXPECT_TRUE(saw_busy);
  EXPECT_TRUE(saw_wait);  // ring survives its owning thread's exit

  const std::string dump = rec.Dump();
  EXPECT_NE(dump.find("busy_reject"), std::string::npos);
  EXPECT_NE(dump.find("capacity_wait"), std::string::npos);

  // Kill switch: disabled recorders drop events entirely.
  rec.set_enabled(false);
  const auto before = rec.SnapshotAll();
  RecordFlightEvent(FlightEvent::kIoError, 77);
  const auto after = rec.SnapshotAll();
  size_t count_before = 0, count_after = 0;
  for (const auto& ring : before) count_before += ring.size();
  for (const auto& ring : after) count_after += ring.size();
  EXPECT_EQ(count_before, count_after);
  rec.set_enabled(true);
}

}  // namespace
}  // namespace nblb
