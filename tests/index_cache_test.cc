#include "cache/index_cache.h"

#include <gtest/gtest.h>

#include <set>

#include "common/bytes.h"
#include "test_util.h"

namespace nblb {
namespace {

using nblb::testing::MakeStack;
using nblb::testing::Stack;

constexpr uint16_t kItemSize = 25;  // 8-byte tid + 17-byte payload
constexpr size_t kPayload = kItemSize - 8;

std::string K(uint64_t v) {
  std::string s(8, '\0');
  EncodeBigEndian64(s.data(), v);
  return s;
}

std::string PayloadFor(uint64_t tid) {
  std::string p(kPayload, '\0');
  for (size_t i = 0; i < kPayload; ++i) {
    p[i] = static_cast<char>('A' + (tid + i) % 26);
  }
  return p;
}

struct CacheFixture {
  Stack stack;
  std::unique_ptr<BTree> tree;
  std::unique_ptr<IndexCache> cache;

  explicit CacheFixture(size_t num_keys = 16, IndexCacheOptions copts = {},
                        size_t page_size = 4096) {
    stack = MakeStack("icache", page_size, 1024);
    BTreeOptions opts;
    opts.key_size = 8;
    opts.cache_item_size = kItemSize;
    auto t = BTree::Create(stack.bp.get(), opts);
    EXPECT_TRUE(t.ok());
    tree = std::move(*t);
    for (uint64_t i = 0; i < num_keys; ++i) {
      EXPECT_TRUE(tree->Insert(Slice(K(i)), /*tid=*/i + 1000).ok());
    }
    cache.reset(new IndexCache(tree.get(), copts));
  }

  PageGuard Leaf(uint64_t key) {
    auto r = tree->FindLeaf(Slice(K(key)));
    EXPECT_TRUE(r.ok());
    return std::move(*r);
  }
};

TEST(IndexCacheTest, MissThenPopulateThenHit) {
  CacheFixture f;
  char out[kPayload];
  {
    PageGuard leaf = f.Leaf(0);
    EXPECT_FALSE(f.cache->Probe(&leaf, 1000, out));
  }
  {
    PageGuard leaf = f.Leaf(0);
    f.cache->Populate(&leaf, 1000, Slice(PayloadFor(1000)));
  }
  {
    PageGuard leaf = f.Leaf(0);
    ASSERT_TRUE(f.cache->Probe(&leaf, 1000, out));
    EXPECT_EQ(std::string(out, kPayload), PayloadFor(1000));
  }
  EXPECT_EQ(f.cache->stats().hits, 1u);
  EXPECT_EQ(f.cache->stats().misses, 1u);
  EXPECT_EQ(f.cache->stats().populates, 1u);
}

TEST(IndexCacheTest, DistinctTidsDoNotCollide) {
  CacheFixture f;
  PageGuard leaf = f.Leaf(0);
  for (uint64_t tid : {1000ull, 1001ull, 1002ull, 1003ull}) {
    f.cache->Populate(&leaf, tid, Slice(PayloadFor(tid)));
  }
  char out[kPayload];
  for (uint64_t tid : {1000ull, 1001ull, 1002ull, 1003ull}) {
    ASSERT_TRUE(f.cache->Probe(&leaf, tid, out)) << tid;
    EXPECT_EQ(std::string(out, kPayload), PayloadFor(tid));
  }
  EXPECT_FALSE(f.cache->Probe(&leaf, 9999, out));
}

TEST(IndexCacheTest, PopulateRefreshesExistingItemInPlace) {
  CacheFixture f;
  PageGuard leaf = f.Leaf(0);
  f.cache->Populate(&leaf, 1000, Slice(PayloadFor(1000)));
  std::string newer(kPayload, 'z');
  f.cache->Populate(&leaf, 1000, Slice(newer));
  char out[kPayload];
  ASSERT_TRUE(f.cache->Probe(&leaf, 1000, out));
  EXPECT_EQ(std::string(out, kPayload), newer);
  ASSERT_OK_AND_ASSIGN(uint64_t items, f.cache->CountCachedItems());
  EXPECT_EQ(items, 1u);
}

TEST(IndexCacheTest, CacheWritesNeverDirtyThePage) {
  CacheFixture f;
  // Make the on-disk state clean and drop all frames.
  ASSERT_OK(f.stack.bp->FlushAll());
  {
    PageGuard leaf = f.Leaf(0);
    f.cache->Populate(&leaf, 1000, Slice(PayloadFor(1000)));
    char out[kPayload];
    ASSERT_TRUE(f.cache->Probe(&leaf, 1000, out));
  }
  // Evicting must NOT write the cache bytes back (§2.1.1: no added I/O).
  const uint64_t writes_before = f.stack.disk->stats().writes;
  ASSERT_OK(f.stack.bp->EvictAll());
  EXPECT_EQ(f.stack.disk->stats().writes, writes_before);
  // After reload the cache is naturally cold again — a probe misses but
  // nothing is corrupted.
  PageGuard leaf = f.Leaf(0);
  char out[kPayload];
  EXPECT_FALSE(f.cache->Probe(&leaf, 1000, out));
}

TEST(IndexCacheTest, InvalidateAllDropsEverything) {
  CacheFixture f;
  {
    PageGuard leaf = f.Leaf(0);
    f.cache->Populate(&leaf, 1000, Slice(PayloadFor(1000)));
  }
  ASSERT_OK(f.cache->InvalidateAll());
  PageGuard leaf = f.Leaf(0);
  char out[kPayload];
  EXPECT_FALSE(f.cache->Probe(&leaf, 1000, out));
  EXPECT_EQ(f.cache->stats().full_invalidations, 1u);
  // The cache is usable again afterwards.
  f.cache->Populate(&leaf, 1000, Slice(PayloadFor(1000)));
  EXPECT_TRUE(f.cache->Probe(&leaf, 1000, out));
}

TEST(IndexCacheTest, PredicateInvalidatesMatchingPage) {
  CacheFixture f;
  {
    PageGuard leaf = f.Leaf(0);
    f.cache->Populate(&leaf, 1000, Slice(PayloadFor(1000)));
  }
  // Key 0 lives in this leaf; the predicate must zero its cache on next read.
  ASSERT_OK(f.cache->OnTupleModified(Slice(K(0)), 1000));
  PageGuard leaf = f.Leaf(0);
  char out[kPayload];
  EXPECT_FALSE(f.cache->Probe(&leaf, 1000, out));
  EXPECT_EQ(f.cache->stats().page_cleanings, 1u);
  EXPECT_EQ(f.cache->stats().full_invalidations, 0u);
}

TEST(IndexCacheTest, PredicateReplayHappensOnce) {
  CacheFixture f;
  {
    PageGuard leaf = f.Leaf(0);
    f.cache->Populate(&leaf, 1000, Slice(PayloadFor(1000)));
  }
  ASSERT_OK(f.cache->OnTupleModified(Slice(K(0)), 1000));
  {
    PageGuard leaf = f.Leaf(0);
    char out[kPayload];
    EXPECT_FALSE(f.cache->Probe(&leaf, 1000, out));
  }
  // Re-populate after the cleaning: the same old predicate must not zero the
  // cache again (watermark advanced).
  {
    PageGuard leaf = f.Leaf(0);
    f.cache->Populate(&leaf, 1000, Slice(PayloadFor(1000)));
  }
  PageGuard leaf = f.Leaf(0);
  char out[kPayload];
  EXPECT_TRUE(f.cache->Probe(&leaf, 1000, out));
  EXPECT_EQ(f.cache->stats().page_cleanings, 1u);
}

TEST(IndexCacheTest, PredicateForOtherLeafDoesNotCleanThisOne) {
  // Two leaves: keys 0..N split across them after enough inserts.
  CacheFixture f(/*num_keys=*/400);  // forces multiple leaves on 4 KiB pages
  ASSERT_OK_AND_ASSIGN(BTreeStats st, f.tree->ComputeStats());
  ASSERT_GT(st.leaf_pages, 1u);
  // Cache an item in the leaf holding key 0.
  {
    PageGuard leaf = f.Leaf(0);
    f.cache->Populate(&leaf, 1000, Slice(PayloadFor(1000)));
  }
  // Modify a key in the LAST leaf (far away).
  ASSERT_OK(f.cache->OnTupleModified(Slice(K(399)), 1399));
  PageGuard leaf = f.Leaf(0);
  char out[kPayload];
  EXPECT_TRUE(f.cache->Probe(&leaf, 1000, out))
      << "unrelated predicate must not clean this page";
}

TEST(IndexCacheTest, PredicateMatchesByTidEvenWhenKeyLeftThePage) {
  CacheFixture f;
  {
    PageGuard leaf = f.Leaf(0);
    f.cache->Populate(&leaf, 1000, Slice(PayloadFor(1000)));
  }
  // Delete the key from the index, then log a predicate for its tid with a
  // key that no longer falls in the page's (shrunken) range.
  for (uint64_t i = 0; i < 16; ++i) {
    ASSERT_OK(f.tree->Delete(Slice(K(i))));
  }
  ASSERT_OK(f.cache->OnTupleModified(Slice(K(0)), 1000));
  PageGuard leaf = f.Leaf(0);
  char out[kPayload];
  EXPECT_FALSE(f.cache->Probe(&leaf, 1000, out))
      << "tid match must clean the page even after the key was deleted";
}

TEST(IndexCacheTest, LogOverflowFallsBackToFullInvalidation) {
  IndexCacheOptions copts;
  copts.predicate_log_limit = 4;
  CacheFixture f(16, copts);
  for (uint64_t i = 0; i < 6; ++i) {
    ASSERT_OK(f.cache->OnTupleModified(Slice(K(i)), 1000 + i));
  }
  EXPECT_GE(f.cache->stats().full_invalidations, 1u);
  // The log was cleared at the overflow point; only entries appended after
  // the invalidation may remain.
  EXPECT_LT(f.cache->predicate_log().size(), copts.predicate_log_limit);
}

TEST(IndexCacheTest, EvictionTargetsPeripheralBucket) {
  CacheFixture f;
  PageGuard leaf = f.Leaf(0);
  BTreePageView view(leaf.data(), 4096);
  const CacheGeometry geo = CacheGeometry::FromLeaf(view, 8);
  const size_t capacity = geo.num_slots();
  // Fill the cache beyond capacity.
  for (uint64_t tid = 0; tid < capacity + 10; ++tid) {
    f.cache->Populate(&leaf, 5000 + tid, Slice(PayloadFor(5000 + tid)));
  }
  EXPECT_GE(f.cache->stats().evictions, 10u);
  ASSERT_OK_AND_ASSIGN(uint64_t items, f.cache->CountCachedItems());
  EXPECT_EQ(items, capacity);
  // The most recently inserted item is present.
  char out[kPayload];
  EXPECT_TRUE(f.cache->Probe(&leaf, 5000 + capacity + 9, out));
}

TEST(IndexCacheTest, RepeatedHitsMigrateItemToInnermostBucket) {
  CacheFixture f;
  PageGuard leaf = f.Leaf(0);
  f.cache->Populate(&leaf, 1000, Slice(PayloadFor(1000)));
  BTreePageView view(leaf.data(), 4096);
  const CacheGeometry geo = CacheGeometry::FromLeaf(view, 8);

  auto bucket_of_tid = [&](uint64_t tid) -> size_t {
    const uint64_t tag = tid + 1;
    for (size_t s = geo.first_slot(); s < geo.first_slot() + geo.num_slots();
         ++s) {
      if (DecodeFixed64(view.raw() + geo.SlotOffset(s)) == tag) {
        return geo.BucketOfSlot(s);
      }
    }
    ADD_FAILURE() << "tid not found in cache";
    return SIZE_MAX;
  };

  char out[kPayload];
  size_t prev_bucket = bucket_of_tid(1000);
  // Each hit swaps at most one bucket inward; after enough hits the item
  // must sit in bucket 0 and stay there.
  for (size_t hit = 0; hit < geo.num_buckets() + 4; ++hit) {
    ASSERT_TRUE(f.cache->Probe(&leaf, 1000, out));
    const size_t b = bucket_of_tid(1000);
    EXPECT_LE(b, prev_bucket) << "hits must never move the item outward";
    prev_bucket = b;
  }
  EXPECT_EQ(prev_bucket, 0u);
}

TEST(IndexCacheTest, LatchGiveUpSkipsWork) {
  CacheFixture f;
  PageGuard leaf = f.Leaf(0);
  f.cache->Populate(&leaf, 1000, Slice(PayloadFor(1000)));
  char out[kPayload];
  leaf.cache_latch()->Lock();
  EXPECT_FALSE(f.cache->Probe(&leaf, 1000, out))
      << "a held latch must turn the probe into a miss";
  f.cache->Populate(&leaf, 1001, Slice(PayloadFor(1001)));
  leaf.cache_latch()->Unlock();
  EXPECT_EQ(f.cache->stats().latch_give_ups, 2u);
  EXPECT_EQ(f.cache->stats().populate_skips, 1u);
  // After the latch is free both operations succeed.
  EXPECT_TRUE(f.cache->Probe(&leaf, 1000, out));
}

TEST(IndexCacheTest, IndexGrowthOverwritesPeripheryButNeverCorrupts) {
  CacheFixture f(16);
  {
    PageGuard leaf = f.Leaf(0);
    BTreePageView view(leaf.data(), 4096);
    const CacheGeometry geo = CacheGeometry::FromLeaf(view, 8);
    for (uint64_t tid = 0; tid < geo.num_slots(); ++tid) {
      f.cache->Populate(&leaf, 7000 + tid, Slice(PayloadFor(7000 + tid)));
    }
  }
  // Grow the index: new entries overwrite the cache periphery at both ends.
  for (uint64_t i = 100; i < 160; ++i) {
    ASSERT_OK(f.tree->Insert(Slice(K(i)), i + 1000));
  }
  // Every probe must either hit with the exact payload or miss — never
  // return garbage.
  PageGuard leaf = f.Leaf(0);
  char out[kPayload];
  size_t hits = 0;
  BTreePageView view(leaf.data(), 4096);
  const CacheGeometry geo = CacheGeometry::FromLeaf(view, 8);
  for (uint64_t tid = 7000; tid < 7000 + 300; ++tid) {
    if (f.cache->Probe(&leaf, tid, out)) {
      ASSERT_EQ(std::string(out, kPayload), PayloadFor(tid));
      ++hits;
    }
  }
  EXPECT_LE(hits, geo.num_slots());
}

TEST(IndexCacheTest, CountCachedItemsWalksAllLeaves) {
  CacheFixture f(400);
  char unused[kPayload];
  (void)unused;
  {
    PageGuard a = f.Leaf(0);
    f.cache->Populate(&a, 1000, Slice(PayloadFor(1000)));
  }
  {
    PageGuard b = f.Leaf(399);
    f.cache->Populate(&b, 1399, Slice(PayloadFor(1399)));
  }
  ASSERT_OK_AND_ASSIGN(uint64_t items, f.cache->CountCachedItems());
  EXPECT_EQ(items, 2u);
}

}  // namespace
}  // namespace nblb
