#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace nblb {
namespace {

TEST(StatusTest, OkIsDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("missing key");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.message(), "missing key");
  EXPECT_EQ(st.ToString(), "not found: missing key");
}

TEST(StatusTest, AllFactoriesProduceMatchingPredicates) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Busy().IsBusy());
  EXPECT_TRUE(Status::Aborted().IsAborted());
  EXPECT_TRUE(Status::AlreadyExists().IsAlreadyExists());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
}

TEST(StatusTest, CopyAndMovePreserveState) {
  Status a = Status::Corruption("bad page");
  Status b = a;            // copy
  Status c = std::move(a); // move
  EXPECT_TRUE(b.IsCorruption());
  EXPECT_TRUE(c.IsCorruption());
  EXPECT_EQ(b, c);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Busy("a"));
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chain(int x) {
  NBLB_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_TRUE(Chain(-1).IsInvalidArgument());
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return x;
}

Result<int> Doubled(int x) {
  NBLB_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto ok = Doubled(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  auto bad = Doubled(0);
  EXPECT_TRUE(bad.status().IsOutOfRange());
}

TEST(ResultTest, ConstructingFromOkStatusIsAnError) {
  Result<int> r{Status::OK()};
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(ResultTest, MoveOnlyValueWorks) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 5);
}

}  // namespace
}  // namespace nblb
