// Concurrency hammer for the striped BufferPool: 8 threads mixing
// FetchPage / FetchPages / dirty writes / FlushPage / EvictAll against a
// sequential oracle (every page permanently holds a pattern derived from its
// id), then pin-count and content invariants are checked after the storm.
//
// Runs under ThreadSanitizer in CI. Page content accesses go through the
// per-frame cache latch, matching the pool's contract that content
// synchronization is the caller's concern.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "storage/buffer_pool.h"
#include "test_util.h"

namespace nblb {
namespace {

using nblb::testing::TempFile;

constexpr size_t kPageSize = 4096;
constexpr size_t kFrames = 64;
constexpr size_t kStripes = 4;
constexpr PageId kPages = 192;  // 3x the pool: constant eviction pressure
constexpr int kThreads = 8;
constexpr int kOpsPerThread = 4000;

char PatternOf(PageId id) { return static_cast<char>('!' + (id % 90)); }

void CheckPage(PageGuard& g, std::atomic<uint64_t>* corrupt) {
  LatchGuard latch(*g.cache_latch());
  const char want = PatternOf(g.id());
  for (size_t i = 0; i < 64; ++i) {
    if (g.data()[i] != want) {
      corrupt->fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
}

void RewritePage(PageGuard& g) {
  LatchGuard latch(*g.cache_latch());
  std::memset(g.data(), PatternOf(g.id()), 64);
  g.MarkDirty();
}

TEST(BufferPoolConcurrencyTest, EightThreadMixedWorkloadKeepsInvariants) {
  TempFile file("bp_conc");
  DiskManager disk(file.path(), kPageSize);
  ASSERT_OK(disk.Open());
  BufferPool bp(&disk, kFrames, kStripes);
  ASSERT_EQ(bp.num_stripes(), kStripes);

  // Seed every page with its pattern, single-threaded.
  for (PageId id = 0; id < kPages; ++id) {
    ASSERT_OK_AND_ASSIGN(PageGuard g, bp.NewPage());
    std::memset(g.data(), PatternOf(g.id()), 64);
    g.MarkDirty();
  }
  ASSERT_OK(bp.FlushAll());

  std::atomic<uint64_t> corrupt{0};
  std::atomic<uint64_t> hard_errors{0};
  std::atomic<uint64_t> ok_ops{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(0xc0ffee + t);
      for (int op = 0; op < kOpsPerThread; ++op) {
        const uint64_t dice = rng.Uniform(100);
        if (dice < 55) {
          // Single fetch + verify.
          auto g = bp.FetchPage(static_cast<PageId>(rng.Uniform(kPages)));
          if (g.ok()) {
            CheckPage(*g, &corrupt);
            ok_ops.fetch_add(1, std::memory_order_relaxed);
          } else if (!g.status().IsResourceExhausted()) {
            hard_errors.fetch_add(1, std::memory_order_relaxed);
          }
        } else if (dice < 85) {
          // Batched fetch (with duplicates) + verify all.
          std::vector<PageId> ids;
          const size_t n = 2 + rng.Uniform(6);
          for (size_t i = 0; i < n; ++i) {
            ids.push_back(static_cast<PageId>(rng.Uniform(kPages)));
          }
          if (n >= 4) ids[n - 1] = ids[0];  // guaranteed duplicate
          auto guards = bp.FetchPages(ids);
          if (guards.ok()) {
            for (auto& g : *guards) CheckPage(g, &corrupt);
            ok_ops.fetch_add(1, std::memory_order_relaxed);
          } else if (!guards.status().IsResourceExhausted()) {
            hard_errors.fetch_add(1, std::memory_order_relaxed);
          }
        } else if (dice < 95) {
          // Dirty rewrite of the same pattern: exercises write-back without
          // perturbing the oracle.
          auto g = bp.FetchPage(static_cast<PageId>(rng.Uniform(kPages)));
          if (g.ok()) {
            RewritePage(*g);
            ok_ops.fetch_add(1, std::memory_order_relaxed);
          } else if (!g.status().IsResourceExhausted()) {
            hard_errors.fetch_add(1, std::memory_order_relaxed);
          }
        } else if (dice < 98) {
          Status s = bp.FlushPage(static_cast<PageId>(rng.Uniform(kPages)));
          if (!s.ok()) hard_errors.fetch_add(1, std::memory_order_relaxed);
        } else {
          // Cold-cache storm; Busy is expected while others hold pins.
          Status s = bp.EvictAll();
          if (!s.ok() && !s.IsBusy()) {
            hard_errors.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(corrupt.load(), 0u) << "a fetch observed wrong page contents";
  EXPECT_EQ(hard_errors.load(), 0u);
  EXPECT_GT(ok_ops.load(), 0u);

  // Pin invariant: every guard released -> the pool must evict cleanly.
  ASSERT_OK(bp.EvictAll());

  // Content invariant: all dirty write-backs landed the oracle pattern.
  for (PageId id = 0; id < kPages; ++id) {
    ASSERT_OK_AND_ASSIGN(PageGuard g, bp.FetchPage(id));
    CheckPage(g, &corrupt);
  }
  EXPECT_EQ(corrupt.load(), 0u) << "post-storm contents diverged from oracle";

  // Stats stayed coherent under concurrency.
  const BufferPoolStats st = bp.stats();
  EXPECT_GT(st.hits + st.misses, 0u);
  EXPECT_GT(st.evictions, 0u);
}

}  // namespace
}  // namespace nblb
