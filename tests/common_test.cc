#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "common/bytes.h"
#include "common/crc32.h"
#include "common/latch.h"
#include "common/rng.h"
#include "common/slice.h"
#include "common/vclock.h"

namespace nblb {
namespace {

// ---------------------------------------------------------------------------
// Slice
// ---------------------------------------------------------------------------

TEST(SliceTest, BasicAccessors) {
  Slice s("hello");
  EXPECT_EQ(s.size(), 5u);
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s[1], 'e');
  EXPECT_EQ(s.ToString(), "hello");
}

TEST(SliceTest, CompareIsLexicographic) {
  EXPECT_LT(Slice("abc").Compare(Slice("abd")), 0);
  EXPECT_GT(Slice("abd").Compare(Slice("abc")), 0);
  EXPECT_EQ(Slice("abc").Compare(Slice("abc")), 0);
  // Prefix sorts first.
  EXPECT_LT(Slice("ab").Compare(Slice("abc")), 0);
}

TEST(SliceTest, EmbeddedNulBytesCompareCorrectly) {
  const char a[] = {'a', '\0', 'b'};
  const char b[] = {'a', '\0', 'c'};
  EXPECT_LT(Slice(a, 3).Compare(Slice(b, 3)), 0);
  EXPECT_EQ(Slice(a, 3), Slice(a, 3));
}

TEST(SliceTest, RemovePrefixAndStartsWith) {
  Slice s("wikipedia");
  EXPECT_TRUE(s.StartsWith(Slice("wiki")));
  s.RemovePrefix(4);
  EXPECT_EQ(s.ToString(), "pedia");
}

// ---------------------------------------------------------------------------
// Byte codecs
// ---------------------------------------------------------------------------

TEST(BytesTest, FixedRoundTrip) {
  char buf[8];
  EncodeFixed16(buf, 0xbeef);
  EXPECT_EQ(DecodeFixed16(buf), 0xbeef);
  EncodeFixed32(buf, 0xdeadbeefu);
  EXPECT_EQ(DecodeFixed32(buf), 0xdeadbeefu);
  EncodeFixed64(buf, 0x0123456789abcdefull);
  EXPECT_EQ(DecodeFixed64(buf), 0x0123456789abcdefull);
}

TEST(BytesTest, BigEndianPreservesUnsignedOrder) {
  char a[8], b[8];
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t x = rng.NextU64();
    const uint64_t y = rng.NextU64();
    EncodeBigEndian64(a, x);
    EncodeBigEndian64(b, y);
    EXPECT_EQ(x < y, Slice(a, 8).Compare(Slice(b, 8)) < 0);
    EXPECT_EQ(DecodeBigEndian64(a), x);
  }
}

TEST(BytesTest, SignFlipPreservesSignedOrder) {
  char a[8], b[8];
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const int64_t x = static_cast<int64_t>(rng.NextU64());
    const int64_t y = static_cast<int64_t>(rng.NextU64());
    EncodeBigEndian64(a, SignFlip64(x));
    EncodeBigEndian64(b, SignFlip64(y));
    EXPECT_EQ(x < y, Slice(a, 8).Compare(Slice(b, 8)) < 0);
    EXPECT_EQ(SignUnflip64(SignFlip64(x)), x);
  }
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformIsRoughlyUniform) {
  Rng rng(5);
  constexpr int kBuckets = 10;
  constexpr int kSamples = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) {
    counts[rng.Uniform(kBuckets)]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kSamples / kBuckets, kSamples / kBuckets * 0.1);
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(3);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(&v);
  auto shuffled_sorted = v;
  std::sort(shuffled_sorted.begin(), shuffled_sorted.end());
  EXPECT_EQ(shuffled_sorted, sorted);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(17);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values reachable
}

// ---------------------------------------------------------------------------
// CRC32
// ---------------------------------------------------------------------------

TEST(Crc32Test, KnownVector) {
  // CRC-32/IEEE of "123456789" is 0xCBF43926.
  EXPECT_EQ(Crc32("123456789", 9), 0xcbf43926u);
}

TEST(Crc32Test, EmptyInputIsZero) { EXPECT_EQ(Crc32("", 0), 0u); }

TEST(Crc32Test, SensitiveToEveryByte) {
  std::string data(64, 'x');
  const uint32_t base = Crc32(data.data(), data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    std::string mutated = data;
    mutated[i] = 'y';
    EXPECT_NE(Crc32(mutated.data(), mutated.size()), base) << "byte " << i;
  }
}

// ---------------------------------------------------------------------------
// Latches
// ---------------------------------------------------------------------------

TEST(LatchTest, TryLockFailsWhenHeld) {
  SpinLatch latch;
  EXPECT_TRUE(latch.TryLock());
  EXPECT_FALSE(latch.TryLock());
  latch.Unlock();
  EXPECT_TRUE(latch.TryLock());
  latch.Unlock();
}

TEST(LatchTest, TryLatchGuardGivesUp) {
  SpinLatch latch;
  LatchGuard hold(latch);
  TryLatchGuard attempt(latch);
  EXPECT_FALSE(attempt.acquired());
}

TEST(LatchTest, TryLatchGuardReleasesOnDestruction) {
  SpinLatch latch;
  {
    TryLatchGuard g(latch);
    EXPECT_TRUE(g.acquired());
  }
  EXPECT_TRUE(latch.TryLock());
  latch.Unlock();
}

TEST(LatchTest, MutualExclusionUnderContention) {
  SpinLatch latch;
  int counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        LatchGuard g(latch);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, kThreads * kIters);
}

// ---------------------------------------------------------------------------
// Virtual clock
// ---------------------------------------------------------------------------

TEST(VClockTest, AdvanceAccumulates) {
  VirtualClock c;
  EXPECT_EQ(c.NowNs(), 0u);
  c.Advance(100);
  c.Advance(250);
  EXPECT_EQ(c.NowNs(), 350u);
  c.Reset();
  EXPECT_EQ(c.NowNs(), 0u);
}

TEST(VClockTest, CombinedTimerAddsVirtualTime) {
  VirtualClock c;
  CombinedTimer t(&c);
  c.Advance(5'000'000);
  EXPECT_GE(t.ElapsedNs(), 5'000'000u);
  EXPECT_EQ(t.ElapsedVirtualNs(), 5'000'000u);
}

}  // namespace
}  // namespace nblb
