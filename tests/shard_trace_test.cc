// Sampled-tracing tests over the ShardedEngine: span ordering across a
// multi-shard Submit, the unified DumpMetrics document covering every layer
// (engine / trace / per-shard disk / buffer pool / shard), the
// completion-dispatch span, and the sampler default.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include "shard/sharded_engine.h"
#include "test_util.h"

namespace nblb {
namespace {

Schema SmallSchema() {
  return Schema({{"id", TypeId::kInt64, 0},
                 {"payload", TypeId::kVarchar, 32},
                 {"score", TypeId::kInt64, 0}});
}

Row MakeRow(uint64_t id) {
  return {Value::Int64(static_cast<int64_t>(id)),
          Value::Varchar("payload-" + std::to_string(id)),
          Value::Int64(static_cast<int64_t>(id * 7 + 3))};
}

ShardedEngineOptions TraceOptions(const std::string& tag, uint32_t shards,
                                  uint64_t sample_every) {
  ShardedEngineOptions opts;
  opts.num_shards = shards;
  opts.path_prefix = ::testing::TempDir() + "nblb_trace_" + tag + "_" +
                     std::to_string(::getpid());
  opts.page_size = 4096;
  opts.buffer_pool_frames_per_shard = 512;
  opts.trace_sample_every = sample_every;
  opts.schema = SmallSchema();
  opts.table_options.key_columns = {0};
  opts.table_options.cached_columns = {2};
  return opts;
}

void Cleanup(const ShardedEngineOptions& opts) {
  for (uint32_t i = 0; i < opts.num_shards; ++i) {
    std::remove(
        (opts.path_prefix + ".shard" + std::to_string(i) + ".db").c_str());
  }
}

uint64_t Phase(const TraceSummary& s, TracePhase p) {
  return s.first_start_ns[static_cast<size_t>(p)];
}

TEST(ShardTraceTest, SpansOrderAcrossMultiShardSubmit) {
  auto opts = TraceOptions("order", 4, 1);  // sample every sub-batch
  ASSERT_OK_AND_ASSIGN(auto engine, ShardedEngine::Open(opts));

  constexpr uint64_t kRows = 256;
  RequestBatch inserts;
  for (uint64_t id = 0; id < kRows; ++id) {
    inserts.push_back(Request::Insert(id, MakeRow(id)));
  }
  ASSERT_TRUE(engine->Execute(inserts).all_ok());

  RequestBatch gets;
  for (uint64_t id = 0; id < kRows; ++id) gets.push_back(Request::Get(id));
  ASSERT_TRUE(engine->Execute(gets).all_ok());

  // Every sub-batch was sampled: both batches fanned out to all 4 shards.
  EXPECT_GE(engine->tracer().sampled(), 8u);

  const std::vector<TraceSummary> recent = engine->tracer().Recent();
  ASSERT_FALSE(recent.empty());
  size_t with_get_batch = 0;
  for (const TraceSummary& s : recent) {
    // Queue wait opens at the enqueue origin; service (dequeue) follows it.
    ASSERT_NE(Phase(s, TracePhase::kQueueWait), UINT64_MAX);
    ASSERT_NE(Phase(s, TracePhase::kService), UINT64_MAX);
    EXPECT_LE(Phase(s, TracePhase::kQueueWait),
              Phase(s, TracePhase::kService));
    // GetBatch (recorded for the group's elected context) nests inside the
    // service span, and the buffer pool's fetch-start nests inside it.
    if (Phase(s, TracePhase::kGetBatch) != UINT64_MAX) {
      ++with_get_batch;
      EXPECT_LE(Phase(s, TracePhase::kService),
                Phase(s, TracePhase::kGetBatch));
      if (Phase(s, TracePhase::kFetchStart) != UINT64_MAX) {
        EXPECT_LE(Phase(s, TracePhase::kGetBatch),
                  Phase(s, TracePhase::kFetchStart));
      }
    }
    EXPECT_GT(s.end_to_end_us + 1, 0u);  // clamped, never underflows
  }
  // The get batch hit all shards with tracing on, so elected contexts with
  // a GetBatch span must exist.
  EXPECT_GT(with_get_batch, 0u);

  // The per-phase histograms fed from the same retirements.
  MetricsSnapshot snap = engine->MetricsSnapshotNow();
  EXPECT_EQ(snap.counters.at("trace.sampled"), engine->tracer().sampled());
  EXPECT_GT(snap.histograms.at("trace.queue_wait_us").count(), 0u);
  EXPECT_GT(snap.histograms.at("trace.service_us").count(), 0u);
  EXPECT_GT(snap.histograms.at("trace.get_batch_us").count(), 0u);

  Cleanup(opts);
}

TEST(ShardTraceTest, DumpMetricsCoversEveryLayerInOneDocument) {
  auto opts = TraceOptions("dump", 2, 4);
  ASSERT_OK_AND_ASSIGN(auto engine, ShardedEngine::Open(opts));

  RequestBatch batch;
  for (uint64_t id = 0; id < 64; ++id) {
    batch.push_back(Request::Insert(id, MakeRow(id)));
  }
  ASSERT_TRUE(engine->Execute(batch).all_ok());
  RequestBatch gets;
  for (uint64_t id = 0; id < 64; ++id) gets.push_back(Request::Get(id));
  ASSERT_TRUE(engine->Execute(gets).all_ok());

  MetricsSnapshot snap = engine->MetricsSnapshotNow();
  // Engine layer.
  EXPECT_EQ(snap.counters.at("engine.batches"), 2u);
  EXPECT_EQ(snap.counters.at("engine.requests"), 128u);
  // Per-shard serving layer: every insert/get landed on exactly one shard.
  EXPECT_EQ(snap.counters.at("shard0.shard.inserts") +
                snap.counters.at("shard1.shard.inserts"),
            64u);
  EXPECT_EQ(snap.counters.at("shard0.shard.gets") +
                snap.counters.at("shard1.shard.gets"),
            64u);
  // Storage layers, folded per shard.
  EXPECT_TRUE(snap.counters.count("shard0.disk.reads"));
  EXPECT_TRUE(snap.counters.count("shard1.disk.writes"));
  EXPECT_TRUE(snap.counters.count("shard0.buffer_pool.hits"));
  EXPECT_TRUE(snap.gauges.count("shard1.buffer_pool.hit_rate"));
  EXPECT_TRUE(snap.histograms.count("shard0.shard.queue_depth"));

  // And the single JSON document carries all of it.
  const std::string json = engine->DumpMetrics();
  for (const char* needle :
       {"\"engine.batches\"", "\"trace.sampled\"", "\"shard0.disk.reads\"",
        "\"shard1.buffer_pool.hits\"", "\"shard0.shard.gets\"",
        "\"trace.queue_wait_us\""}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }

  // The per-shard Database document matches what the engine folded in.
  const std::string shard_json = engine->shard(0)->database()->DumpMetrics();
  EXPECT_NE(shard_json.find("\"disk.reads\""), std::string::npos);
  EXPECT_NE(shard_json.find("\"shard.gets\""), std::string::npos);

  Cleanup(opts);
}

TEST(ShardTraceTest, CompletionDispatchSpanIsRecorded) {
  auto opts = TraceOptions("completion", 2, 1);
  ASSERT_OK_AND_ASSIGN(auto engine, ShardedEngine::Open(opts));

  RequestBatch batch;
  for (uint64_t id = 0; id < 16; ++id) {
    batch.push_back(Request::Insert(id, MakeRow(id)));
  }
  std::atomic<int> fired{0};
  auto ticket = engine->Submit(
      std::move(batch), [&](const BatchResult& r) {
        EXPECT_TRUE(r.all_ok());
        fired.fetch_add(1);
      });
  ticket->Wait();
  EXPECT_EQ(fired.load(), 1);

  MetricsSnapshot snap = engine->MetricsSnapshotNow();
  EXPECT_GE(snap.histograms.at("trace.completion_us").count(), 1u);

  Cleanup(opts);
}

TEST(ShardTraceTest, TracingOffByDefaultSamplesNothing) {
  auto opts = TraceOptions("off", 2, 0);  // trace_sample_every = 0
  ASSERT_OK_AND_ASSIGN(auto engine, ShardedEngine::Open(opts));

  RequestBatch batch;
  for (uint64_t id = 0; id < 32; ++id) {
    batch.push_back(Request::Insert(id, MakeRow(id)));
  }
  ASSERT_TRUE(engine->Execute(batch).all_ok());
  EXPECT_EQ(engine->tracer().sampled(), 0u);
  MetricsSnapshot snap = engine->MetricsSnapshotNow();
  EXPECT_EQ(snap.counters.at("trace.sampled"), 0u);
  EXPECT_EQ(snap.histograms.at("trace.service_us").count(), 0u);
  // The registry itself is always on.
  EXPECT_EQ(snap.counters.at("engine.batches"), 1u);

  Cleanup(opts);
}

}  // namespace
}  // namespace nblb
