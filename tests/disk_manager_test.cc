#include "storage/disk_manager.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "test_util.h"

namespace nblb {
namespace {

using nblb::testing::TempFile;

TEST(DiskManagerTest, AllocateReadWrite) {
  TempFile f("disk");
  DiskManager disk(f.path(), 4096);
  ASSERT_OK(disk.Open());
  EXPECT_EQ(disk.num_pages(), 0u);

  ASSERT_OK_AND_ASSIGN(PageId p0, disk.AllocatePage());
  ASSERT_OK_AND_ASSIGN(PageId p1, disk.AllocatePage());
  EXPECT_EQ(p0, 0u);
  EXPECT_EQ(p1, 1u);
  EXPECT_EQ(disk.num_pages(), 2u);

  std::vector<char> w(4096, 'A'), r(4096, 0);
  ASSERT_OK(disk.WritePage(p1, w.data()));
  ASSERT_OK(disk.ReadPage(p1, r.data()));
  EXPECT_EQ(std::memcmp(w.data(), r.data(), 4096), 0);

  // Fresh page reads back zeroed.
  ASSERT_OK(disk.ReadPage(p0, r.data()));
  for (char c : r) ASSERT_EQ(c, 0);
}

TEST(DiskManagerTest, OutOfRangeAccessFails) {
  TempFile f("disk_oor");
  DiskManager disk(f.path(), 4096);
  ASSERT_OK(disk.Open());
  std::vector<char> buf(4096);
  EXPECT_TRUE(disk.ReadPage(5, buf.data()).IsOutOfRange());
  EXPECT_TRUE(disk.WritePage(5, buf.data()).IsOutOfRange());
}

TEST(DiskManagerTest, PersistsAcrossReopen) {
  TempFile f("disk_reopen");
  {
    DiskManager disk(f.path(), 4096);
    ASSERT_OK(disk.Open());
    ASSERT_OK_AND_ASSIGN(PageId p, disk.AllocatePage());
    std::vector<char> w(4096, 'Z');
    ASSERT_OK(disk.WritePage(p, w.data()));
    ASSERT_OK(disk.Sync());
    ASSERT_OK(disk.Close());
  }
  DiskManager disk(f.path(), 4096);
  ASSERT_OK(disk.Open());
  EXPECT_EQ(disk.num_pages(), 1u);
  std::vector<char> r(4096);
  ASSERT_OK(disk.ReadPage(0, r.data()));
  for (char c : r) ASSERT_EQ(c, 'Z');
}

TEST(DiskManagerTest, StatsCountOperations) {
  TempFile f("disk_stats");
  DiskManager disk(f.path(), 4096);
  ASSERT_OK(disk.Open());
  ASSERT_OK_AND_ASSIGN(PageId p, disk.AllocatePage());
  std::vector<char> buf(4096);
  ASSERT_OK(disk.WritePage(p, buf.data()));
  ASSERT_OK(disk.ReadPage(p, buf.data()));
  ASSERT_OK(disk.ReadPage(p, buf.data()));
  EXPECT_EQ(disk.stats().allocations, 1u);
  EXPECT_EQ(disk.stats().writes, 1u);
  EXPECT_EQ(disk.stats().reads, 2u);
  disk.ResetStats();
  EXPECT_EQ(disk.stats().reads, 0u);
}

TEST(DiskManagerTest, LatencyModelChargesVirtualClock) {
  TempFile f("disk_latency");
  VirtualClock clock;
  LatencyModelOptions lopts;
  lopts.seek_ns = 1'000'000;
  lopts.transfer_ns_per_byte = 1;
  LatencyModel model(lopts, &clock);
  DiskManager disk(f.path(), 4096, &model);
  ASSERT_OK(disk.Open());
  ASSERT_OK_AND_ASSIGN(PageId p0, disk.AllocatePage());
  ASSERT_OK_AND_ASSIGN(PageId p1, disk.AllocatePage());
  std::vector<char> buf(4096);

  clock.Reset();
  ASSERT_OK(disk.ReadPage(p0, buf.data()));
  // Random read: seek + transfer.
  EXPECT_EQ(clock.NowNs(), 1'000'000u + 4096u);
  // Sequential read (p0 -> p1): transfer only.
  ASSERT_OK(disk.ReadPage(p1, buf.data()));
  EXPECT_EQ(clock.NowNs(), 1'000'000u + 2 * 4096u);
  // Backward jump: seek again.
  ASSERT_OK(disk.ReadPage(p0, buf.data()));
  EXPECT_EQ(clock.NowNs(), 2'000'000u + 3 * 4096u);
}

TEST(DiskManagerTest, DisabledLatencyModelChargesNothing) {
  TempFile f("disk_nolat");
  VirtualClock clock;
  LatencyModelOptions lopts;
  lopts.enabled = false;
  LatencyModel model(lopts, &clock);
  DiskManager disk(f.path(), 4096, &model);
  ASSERT_OK(disk.Open());
  ASSERT_OK_AND_ASSIGN(PageId p, disk.AllocatePage());
  std::vector<char> buf(4096);
  ASSERT_OK(disk.ReadPage(p, buf.data()));
  EXPECT_EQ(clock.NowNs(), 0u);
}

TEST(DiskManagerTest, DirectIoRoundTripsUnalignedCallerBuffers) {
  TempFile f("disk_direct");
  DiskManager disk(f.path(), 4096, /*latency=*/nullptr, /*direct_io=*/true);
  ASSERT_OK(disk.Open());
  // On tmpfs-style filesystems O_DIRECT is refused and the manager degrades
  // to buffered I/O; either way the data path must round-trip.
  ASSERT_OK_AND_ASSIGN(PageId p0, disk.AllocatePage());
  ASSERT_OK_AND_ASSIGN(PageId p1, disk.AllocatePage());

  // Deliberately unaligned caller buffers: the bounce buffer must hide the
  // O_DIRECT alignment requirements.
  std::vector<char> raw(4096 + 1);
  char* unaligned = raw.data() + 1;
  for (size_t i = 0; i < 4096; ++i) {
    unaligned[i] = static_cast<char>((i * 31 + 7) % 251);
  }
  ASSERT_OK(disk.WritePage(p1, unaligned));
  std::vector<char> back_raw(4096 + 1);
  char* back = back_raw.data() + 1;
  ASSERT_OK(disk.ReadPage(p1, back));
  EXPECT_EQ(std::memcmp(unaligned, back, 4096), 0);

  // Freshly allocated pages read back zeroed.
  ASSERT_OK(disk.ReadPage(p0, back));
  for (size_t i = 0; i < 4096; ++i) {
    ASSERT_EQ(back[i], 0) << "offset " << i;
  }
  EXPECT_EQ(disk.stats().reads, 2u);
  EXPECT_EQ(disk.stats().writes, 1u);
}

}  // namespace
}  // namespace nblb
