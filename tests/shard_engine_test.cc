// ShardedEngine tests: single-thread correctness against a plain Table
// oracle, routing behavior of all three routers, batch semantics, hot/cold
// mode, and a multi-threaded smoke test (no lost inserts, consistent
// lookups under 8 client threads).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <unordered_map>

#include "common/rng.h"
#include "shard/sharded_engine.h"
#include "test_util.h"
#include "workload/replay.h"
#include "workload/wikipedia.h"

namespace nblb {
namespace {

using nblb::testing::TempFile;

Schema SmallSchema() {
  return Schema({{"id", TypeId::kInt64, 0},
                 {"payload", TypeId::kVarchar, 32},
                 {"score", TypeId::kInt64, 0}});
}

Row MakeRow(uint64_t id) {
  return {Value::Int64(static_cast<int64_t>(id)),
          Value::Varchar("payload-" + std::to_string(id)),
          Value::Int64(static_cast<int64_t>(id * 7 + 3))};
}

ShardedEngineOptions SmallOptions(const std::string& tag, uint32_t shards,
                                  uint32_t workers = 0) {
  ShardedEngineOptions opts;
  opts.num_shards = shards;
  opts.num_workers = workers;
  opts.path_prefix = ::testing::TempDir() + "nblb_engine_" + tag + "_" +
                     std::to_string(::getpid());
  opts.page_size = 4096;
  opts.buffer_pool_frames_per_shard = 512;
  opts.schema = SmallSchema();
  opts.table_options.key_columns = {0};
  opts.table_options.cached_columns = {2};
  return opts;
}

/// Removes the per-shard backing files an engine created.
void Cleanup(const ShardedEngineOptions& opts) {
  for (uint32_t i = 0; i < opts.num_shards; ++i) {
    std::remove(
        (opts.path_prefix + ".shard" + std::to_string(i) + ".db").c_str());
  }
}

TEST(ShardedEngineTest, MatchesPlainTableOracle) {
  auto opts = SmallOptions("oracle", 4);
  ASSERT_OK_AND_ASSIGN(auto engine, ShardedEngine::Open(opts));

  // Oracle: one plain single-threaded Table with the same schema.
  auto stack = nblb::testing::MakeStack("shard_oracle", 4096, 2048);
  TableOptions topts;
  topts.key_columns = {0};
  topts.cached_columns = {2};
  ASSERT_OK_AND_ASSIGN(auto oracle,
                       Table::Create(stack.bp.get(), SmallSchema(), topts));

  constexpr uint64_t kRows = 2000;
  Rng rng(7);
  std::vector<uint64_t> ids;
  ids.reserve(kRows);
  while (ids.size() < kRows) {
    // Sparse, shuffled id space so routing is non-trivial.
    const uint64_t id = rng.Uniform(1u << 20);
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());

  RequestBatch inserts;
  for (uint64_t id : ids) {
    inserts.push_back(Request::Insert(id, MakeRow(id)));
    ASSERT_OK(oracle->Insert(MakeRow(id)));
  }
  BatchResult insert_result = engine->Execute(inserts);
  ASSERT_TRUE(insert_result.all_ok());

  // Full-row lookups must agree with the oracle.
  RequestBatch gets;
  for (uint64_t id : ids) gets.push_back(Request::Get(id));
  BatchResult get_result = engine->Execute(gets);
  ASSERT_EQ(get_result.results.size(), ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    ASSERT_OK(get_result.results[i].status);
    ASSERT_OK_AND_ASSIGN(
        Row expected, oracle->GetByKey({Value::Int64(
                          static_cast<int64_t>(ids[i]))}));
    EXPECT_EQ(get_result.results[i].row, expected) << "id=" << ids[i];
  }

  // Projected lookups (index-cache path) must agree too.
  const std::vector<size_t> projection = {0, 2};
  RequestBatch projected;
  for (uint64_t id : ids) {
    projected.push_back(Request::GetProjected(id, projection));
  }
  BatchResult proj_result = engine->Execute(projected);
  for (size_t i = 0; i < ids.size(); ++i) {
    ASSERT_OK(proj_result.results[i].status);
    ASSERT_OK_AND_ASSIGN(
        Row expected,
        oracle->LookupProjected(
            {Value::Int64(static_cast<int64_t>(ids[i]))}, projection));
    EXPECT_EQ(proj_result.results[i].row, expected);
  }

  // Missing keys are NotFound, never a wrong row.
  auto missing = engine->Get((1ull << 40) + 17);
  EXPECT_TRUE(missing.status().IsNotFound());

  // Duplicate insert surfaces AlreadyExists on exactly that request.
  RequestBatch dup;
  dup.push_back(Request::Insert(ids[0], MakeRow(ids[0])));
  dup.push_back(Request::Get(ids[1]));
  BatchResult dup_result = engine->Execute(dup);
  EXPECT_TRUE(dup_result.results[0].status.IsAlreadyExists());
  EXPECT_OK(dup_result.results[1].status);

  const ShardStatsSnapshot totals = engine->TotalShardStats();
  EXPECT_EQ(totals.inserts, ids.size() + 1);  // +1 duplicate attempt
  EXPECT_EQ(totals.gets, ids.size() + 2);  // + missing probe + dup-batch get
  EXPECT_EQ(totals.projected_gets, ids.size());
  Cleanup(opts);
}

TEST(ShardedEngineTest, HashRouterSpreadsSequentialIds) {
  auto opts = SmallOptions("spread", 4);
  ASSERT_OK_AND_ASSIGN(auto engine, ShardedEngine::Open(opts));
  RequestBatch inserts;
  for (uint64_t id = 0; id < 1000; ++id) {
    inserts.push_back(Request::Insert(id, MakeRow(id)));
  }
  ASSERT_TRUE(engine->Execute(inserts).all_ok());
  // Sequential auto-increment ids must not pile onto one shard.
  for (uint32_t s = 0; s < engine->num_shards(); ++s) {
    EXPECT_GT(engine->shard(s)->rows(), 100u) << "shard " << s;
  }
  Cleanup(opts);
}

TEST(ShardedEngineTest, TableRouterLearnsInsertPlacements) {
  auto opts = SmallOptions("tablerouter", 3);
  ASSERT_OK_AND_ASSIGN(
      auto engine,
      ShardedEngine::Open(opts, std::make_unique<TableRouter>()));

  // A lookup for an id the router has never seen fails in routing.
  auto unrouted = engine->Get(42);
  EXPECT_TRUE(unrouted.status().IsNotFound());
  EXPECT_EQ(engine->engine_stats().routing_failures, 1u);

  // Inserts get placed round-robin and the router learns the mapping.
  for (uint64_t id = 100; id < 200; ++id) {
    ASSERT_OK(engine->Insert(id, MakeRow(id)));
  }
  for (uint64_t id = 100; id < 200; ++id) {
    ASSERT_OK_AND_ASSIGN(uint32_t shard, engine->RouteOf(id));
    ASSERT_OK_AND_ASSIGN(Row row, engine->Get(id));
    EXPECT_EQ(row, MakeRow(id));
    EXPECT_LT(shard, engine->num_shards());
  }
  // Round-robin placement balances exactly.
  EXPECT_EQ(engine->shard(0)->rows() + engine->shard(1)->rows() +
                engine->shard(2)->rows(),
            100u);
  EXPECT_GE(engine->shard(0)->rows(), 33u);
  EXPECT_GE(engine->shard(1)->rows(), 33u);
  EXPECT_GE(engine->shard(2)->rows(), 33u);
  Cleanup(opts);
}

TEST(ShardedEngineTest, EmbeddedRouterUsesIdBits) {
  auto opts = SmallOptions("embedded", 4);
  SemanticIdCodec codec(/*partition_bits=*/8);
  ASSERT_OK_AND_ASSIGN(
      auto engine,
      ShardedEngine::Open(opts, std::make_unique<EmbeddedRouter>(codec)));

  // Encode the shard into the id: partition p -> shard p % 4.
  for (uint32_t p = 0; p < 8; ++p) {
    for (uint64_t local = 0; local < 50; ++local) {
      const uint64_t id = codec.Encode(p, local);
      ASSERT_OK(engine->Insert(id, MakeRow(id)));
      ASSERT_OK_AND_ASSIGN(uint32_t shard, engine->RouteOf(id));
      EXPECT_EQ(shard, p % 4);
    }
  }
  for (uint32_t p = 0; p < 8; ++p) {
    for (uint64_t local = 0; local < 50; ++local) {
      const uint64_t id = codec.Encode(p, local);
      ASSERT_OK_AND_ASSIGN(Row row, engine->Get(id));
      EXPECT_EQ(row, MakeRow(id));
    }
  }
  // Shift+mask routing: every tuple lives exactly where its bits say.
  EXPECT_EQ(engine->shard(0)->rows(), 100u);  // partitions 0 and 4
  EXPECT_EQ(engine->shard(1)->rows(), 100u);  // partitions 1 and 5
  Cleanup(opts);
}

TEST(ShardedEngineTest, HotColdShardsServeBothPartitions) {
  auto opts = SmallOptions("hotcold", 2);
  ASSERT_OK_AND_ASSIGN(auto engine, ShardedEngine::Open(opts));
  RequestBatch inserts;
  for (uint64_t id = 0; id < 400; ++id) {
    inserts.push_back(Request::Insert(id, MakeRow(id)));
  }
  ASSERT_TRUE(engine->Execute(inserts).all_ok());

  // Declare even ids hot, per shard, using the shard's own key codec.
  for (uint32_t s = 0; s < engine->num_shards(); ++s) {
    std::unordered_set<std::string> hot;
    ASSERT_OK(engine->shard(s)->table()->ForEachRow(
        [&](const Rid&, const Row& row) {
          if (row[0].AsInt() % 2 == 0) {
            auto key =
                engine->shard(s)->table()->key_codec().EncodeFromRow(row);
            NBLB_RETURN_NOT_OK(key.status());
            hot.insert(*key);
          }
          return Status::OK();
        }));
    ASSERT_OK(engine->EnableHotCold(s, hot));
  }

  // Every row is still served; hot hits land in the hot partition.
  RequestBatch gets;
  for (uint64_t id = 0; id < 400; ++id) gets.push_back(Request::Get(id));
  BatchResult result = engine->Execute(gets);
  ASSERT_TRUE(result.all_ok());
  for (uint64_t id = 0; id < 400; ++id) {
    EXPECT_EQ(result.results[id].row, MakeRow(id));
  }
  uint64_t hot_hits = 0, cold_hits = 0;
  for (uint32_t s = 0; s < engine->num_shards(); ++s) {
    const auto& stats = engine->shard(s)->partitioned()->stats();
    hot_hits += stats.hot_hits.load(std::memory_order_relaxed);
    cold_hits += stats.cold_hits.load(std::memory_order_relaxed);
  }
  EXPECT_EQ(hot_hits, 200u);
  EXPECT_EQ(cold_hits, 200u);
  Cleanup(opts);
}

TEST(ShardedEngineTest, ReplayDrivesWikipediaTraceThroughEngine) {
  // End-to-end: synthesize a small Wikipedia revision workload, load it,
  // replay its Zipfian lookup trace, and require perfect hit accounting.
  WikipediaScale scale;
  scale.num_pages = 200;
  scale.revisions_per_page = 5;
  WikipediaSynthesizer wiki(scale);

  ShardedEngineOptions opts;
  opts.num_shards = 4;
  opts.path_prefix =
      ::testing::TempDir() + "nblb_engine_wiki_" + std::to_string(::getpid());
  opts.page_size = 4096;
  opts.buffer_pool_frames_per_shard = 1024;
  opts.schema = WikipediaSynthesizer::RevisionSchema();
  opts.table_options.key_columns = {0};
  ASSERT_OK_AND_ASSIGN(auto engine, ShardedEngine::Open(opts));

  ASSERT_OK(LoadRows(engine.get(), wiki.revisions(), /*key_column=*/0));
  const auto batches =
      BuildLookupBatches(wiki.RevisionLookupTrace(5000), /*batch_size=*/64);
  ReplayReport report = ReplayBatches(engine.get(), batches);
  EXPECT_EQ(report.ops, 5000u);
  EXPECT_EQ(report.found, 5000u) << "every traced rev_id exists";
  EXPECT_EQ(report.errors, 0u);
  EXPECT_EQ(report.batch_seconds.size(), batches.size());
  Cleanup(opts);
}

TEST(ShardedEngineTest, TruncateGuardRefusesToClobberExistingShardFiles) {
  // First open (truncate, the default) creates the shard files and data.
  auto opts = SmallOptions("truncguard", 2);
  {
    ASSERT_OK_AND_ASSIGN(auto engine, ShardedEngine::Open(opts));
    ASSERT_OK(engine->Insert(7, MakeRow(7)));
  }

  // truncate_on_open=false on a prefix with existing files must refuse —
  // durable reopen is unimplemented, so "reopening" would destroy the data.
  auto guarded = opts;
  guarded.truncate_on_open = false;
  auto refused = ShardedEngine::Open(guarded);
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsAlreadyExists())
      << refused.status().ToString();

  // A failed guarded open must not leave debris of its own: remove shard
  // 0's file, leaving shard 1's — the retry trips on shard 1, and the
  // fresh shard-0 file the attempt created must be cleaned up again (else
  // the guard would block its own retry forever).
  const std::string shard0 = opts.path_prefix + ".shard0.db";
  std::remove(shard0.c_str());
  EXPECT_FALSE(ShardedEngine::Open(guarded).ok());
  FILE* leftover = std::fopen(shard0.c_str(), "rb");
  EXPECT_EQ(leftover, nullptr) << "failed guarded open left " << shard0;
  if (leftover) std::fclose(leftover);

  // The guard really protected the files: a fresh default open still works
  // (and rebuilds), and a guarded open on a clean prefix succeeds too.
  Cleanup(opts);
  {
    ASSERT_OK_AND_ASSIGN(auto engine, ShardedEngine::Open(guarded));
    ASSERT_OK(engine->Insert(9, MakeRow(9)));
    ASSERT_OK_AND_ASSIGN(Row row, engine->Get(9));
    EXPECT_EQ(row, MakeRow(9));
  }
  Cleanup(opts);
}

TEST(ShardedEngineSmokeTest, EightClientThreadsNoLostInsertsOrLookups) {
  auto opts = SmallOptions("smoke", 4, /*workers=*/2);
  ASSERT_OK_AND_ASSIGN(auto engine, ShardedEngine::Open(opts));

  constexpr int kClients = 8;
  constexpr uint64_t kIdsPerClient = 1500;
  std::atomic<uint64_t> insert_failures{0};
  std::atomic<uint64_t> lookup_wrong{0};

  // Each client owns a disjoint id range: inserts it in small batches, with
  // interleaved reads of ids already inserted (its own and other clients').
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const uint64_t base = static_cast<uint64_t>(c) * kIdsPerClient;
      Rng rng(c + 99);
      for (uint64_t i = 0; i < kIdsPerClient; i += 50) {
        RequestBatch batch;
        for (uint64_t k = i; k < i + 50 && k < kIdsPerClient; ++k) {
          batch.push_back(Request::Insert(base + k, MakeRow(base + k)));
        }
        // Mix in reads of ids this client has already written.
        for (int r = 0; r < 10 && i > 0; ++r) {
          batch.push_back(Request::Get(base + rng.Uniform(i)));
        }
        BatchResult result = engine->Execute(batch);
        for (size_t j = 0; j < result.results.size(); ++j) {
          const auto& rr = result.results[j];
          if (batch[j].kind == RequestKind::kInsert) {
            if (!rr.status.ok()) ++insert_failures;
          } else {
            if (!rr.status.ok() || rr.row != MakeRow(batch[j].id)) {
              ++lookup_wrong;
            }
          }
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(insert_failures.load(), 0u);
  EXPECT_EQ(lookup_wrong.load(), 0u);

  // No lost inserts: every id readable, shard row counts add up exactly.
  constexpr uint64_t kTotal = kClients * kIdsPerClient;
  RequestBatch verify;
  for (uint64_t id = 0; id < kTotal; ++id) {
    verify.push_back(Request::Get(id));
  }
  BatchResult all = engine->Execute(verify);
  uint64_t found = 0;
  for (uint64_t id = 0; id < kTotal; ++id) {
    if (all.results[id].status.ok() && all.results[id].row == MakeRow(id)) {
      ++found;
    }
  }
  EXPECT_EQ(found, kTotal);

  uint64_t shard_rows = 0;
  for (uint32_t s = 0; s < engine->num_shards(); ++s) {
    shard_rows += engine->shard(s)->rows();
  }
  EXPECT_EQ(shard_rows, kTotal);
  const auto totals = engine->TotalShardStats();
  EXPECT_EQ(totals.inserts, kTotal);
  EXPECT_EQ(totals.errors, 0u);
  Cleanup(opts);
}

}  // namespace
}  // namespace nblb
