#include "index/btree.h"

#include <gtest/gtest.h>

#include <map>

#include "common/bytes.h"
#include "common/rng.h"
#include "test_util.h"

namespace nblb {
namespace {

using nblb::testing::MakeStack;
using nblb::testing::Stack;

std::string K(uint64_t v) {
  std::string s(8, '\0');
  EncodeBigEndian64(s.data(), v);
  return s;
}

BTreeOptions SmallKeyOptions() {
  BTreeOptions o;
  o.key_size = 8;
  return o;
}

TEST(BTreeTest, EmptyTreeLookupsFail) {
  Stack s = MakeStack("bt_empty");
  ASSERT_OK_AND_ASSIGN(auto tree, BTree::Create(s.bp.get(), SmallKeyOptions()));
  EXPECT_TRUE(tree->Get(Slice(K(1))).status().IsNotFound());
  EXPECT_TRUE(tree->Delete(Slice(K(1))).IsNotFound());
  EXPECT_EQ(tree->num_entries(), 0u);
}

TEST(BTreeTest, InsertGetSingle) {
  Stack s = MakeStack("bt_single");
  ASSERT_OK_AND_ASSIGN(auto tree, BTree::Create(s.bp.get(), SmallKeyOptions()));
  ASSERT_OK(tree->Insert(Slice(K(42)), 4242));
  ASSERT_OK_AND_ASSIGN(uint64_t v, tree->Get(Slice(K(42))));
  EXPECT_EQ(v, 4242u);
  EXPECT_TRUE(tree->Insert(Slice(K(42)), 1).IsAlreadyExists());
}

TEST(BTreeTest, KeySizeMismatchRejected) {
  Stack s = MakeStack("bt_keysize");
  ASSERT_OK_AND_ASSIGN(auto tree, BTree::Create(s.bp.get(), SmallKeyOptions()));
  EXPECT_TRUE(tree->Insert(Slice("short"), 1).IsInvalidArgument());
  EXPECT_TRUE(tree->Get(Slice("short")).status().IsInvalidArgument());
}

TEST(BTreeTest, ManySequentialInsertsSplitAndRemainSearchable) {
  Stack s = MakeStack("bt_seq", 4096, 2048);
  ASSERT_OK_AND_ASSIGN(auto tree, BTree::Create(s.bp.get(), SmallKeyOptions()));
  constexpr uint64_t kN = 5000;
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_OK(tree->Insert(Slice(K(i)), i * 10));
  }
  EXPECT_EQ(tree->num_entries(), kN);
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_OK_AND_ASSIGN(uint64_t v, tree->Get(Slice(K(i))));
    ASSERT_EQ(v, i * 10);
  }
  ASSERT_OK_AND_ASSIGN(BTreeStats st, tree->ComputeStats());
  EXPECT_GT(st.height, 1u);
  EXPECT_GT(st.leaf_pages, 1u);
}

TEST(BTreeTest, RandomInsertsMatchOracle) {
  Stack s = MakeStack("bt_random", 4096, 2048);
  ASSERT_OK_AND_ASSIGN(auto tree, BTree::Create(s.bp.get(), SmallKeyOptions()));
  std::map<uint64_t, uint64_t> oracle;
  Rng rng(77);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t k = rng.NextU64() % 100000;
    if (oracle.emplace(k, i).second) {
      ASSERT_OK(tree->Insert(Slice(K(k)), i));
    }
  }
  EXPECT_EQ(tree->num_entries(), oracle.size());
  for (const auto& [k, v] : oracle) {
    ASSERT_OK_AND_ASSIGN(uint64_t got, tree->Get(Slice(K(k))));
    ASSERT_EQ(got, v);
  }
  // Absent keys stay absent.
  for (int i = 0; i < 1000; ++i) {
    const uint64_t k = 100000 + rng.Uniform(100000);
    EXPECT_TRUE(tree->Get(Slice(K(k))).status().IsNotFound());
  }
}

TEST(BTreeTest, IterationVisitsAllKeysInOrder) {
  Stack s = MakeStack("bt_iter", 4096, 2048);
  ASSERT_OK_AND_ASSIGN(auto tree, BTree::Create(s.bp.get(), SmallKeyOptions()));
  std::map<uint64_t, uint64_t> oracle;
  Rng rng(3);
  for (int i = 0; i < 3000; ++i) {
    const uint64_t k = rng.NextU64() % 1000000;
    if (oracle.emplace(k, i).second) {
      ASSERT_OK(tree->Insert(Slice(K(k)), i));
    }
  }
  ASSERT_OK_AND_ASSIGN(BTreeIterator it, tree->SeekToFirst());
  auto oit = oracle.begin();
  while (it.Valid()) {
    ASSERT_NE(oit, oracle.end());
    EXPECT_EQ(it.key().ToString(), K(oit->first));
    EXPECT_EQ(it.value(), oit->second);
    ASSERT_OK(it.Next());
    ++oit;
  }
  EXPECT_EQ(oit, oracle.end());
}

TEST(BTreeTest, SeekStartsAtLowerBound) {
  Stack s = MakeStack("bt_seek");
  ASSERT_OK_AND_ASSIGN(auto tree, BTree::Create(s.bp.get(), SmallKeyOptions()));
  for (uint64_t k : {10ull, 20ull, 30ull}) {
    ASSERT_OK(tree->Insert(Slice(K(k)), k));
  }
  ASSERT_OK_AND_ASSIGN(BTreeIterator it, tree->Seek(Slice(K(15))));
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.value(), 20u);
  ASSERT_OK_AND_ASSIGN(BTreeIterator it2, tree->Seek(Slice(K(31))));
  EXPECT_FALSE(it2.Valid());
}

TEST(BTreeTest, DeleteThenLookupFails) {
  Stack s = MakeStack("bt_delete", 4096, 2048);
  ASSERT_OK_AND_ASSIGN(auto tree, BTree::Create(s.bp.get(), SmallKeyOptions()));
  for (uint64_t i = 0; i < 2000; ++i) {
    ASSERT_OK(tree->Insert(Slice(K(i)), i));
  }
  for (uint64_t i = 0; i < 2000; i += 2) {
    ASSERT_OK(tree->Delete(Slice(K(i))));
  }
  EXPECT_EQ(tree->num_entries(), 1000u);
  for (uint64_t i = 0; i < 2000; ++i) {
    auto r = tree->Get(Slice(K(i)));
    if (i % 2 == 0) {
      EXPECT_TRUE(r.status().IsNotFound()) << i;
    } else {
      ASSERT_TRUE(r.ok()) << i;
      EXPECT_EQ(*r, i);
    }
  }
}

TEST(BTreeTest, SetValueRepointsExistingKey) {
  Stack s = MakeStack("bt_setval");
  ASSERT_OK_AND_ASSIGN(auto tree, BTree::Create(s.bp.get(), SmallKeyOptions()));
  ASSERT_OK(tree->Insert(Slice(K(1)), 100));
  ASSERT_OK(tree->SetValue(Slice(K(1)), 200));
  ASSERT_OK_AND_ASSIGN(uint64_t v, tree->Get(Slice(K(1))));
  EXPECT_EQ(v, 200u);
  EXPECT_TRUE(tree->SetValue(Slice(K(2)), 1).IsNotFound());
}

TEST(BTreeTest, RandomInsertFillFactorNearCanonical68Percent) {
  // Yao's classic result (cited as [10] in the paper): random inserts settle
  // around ln 2 ~ 69% average leaf occupancy.
  Stack s = MakeStack("bt_fill", 4096, 4096);
  ASSERT_OK_AND_ASSIGN(auto tree, BTree::Create(s.bp.get(), SmallKeyOptions()));
  Rng rng(123);
  std::set<uint64_t> used;
  for (int i = 0; i < 20000; ++i) {
    uint64_t k = rng.NextU64();
    if (used.insert(k).second) {
      ASSERT_OK(tree->Insert(Slice(K(k)), i));
    }
  }
  ASSERT_OK_AND_ASSIGN(BTreeStats st, tree->ComputeStats());
  EXPECT_GT(st.avg_leaf_fill, 0.60);
  EXPECT_LT(st.avg_leaf_fill, 0.78);
  EXPECT_GT(st.leaf_free_bytes, 0u);
}

TEST(BTreeTest, BulkLoadProducesRequestedFill) {
  Stack s = MakeStack("bt_bulk", 4096, 4096);
  std::vector<std::pair<std::string, uint64_t>> sorted;
  for (uint64_t i = 0; i < 10000; ++i) sorted.emplace_back(K(i), i);

  for (double fill : {0.5, 0.68, 1.0}) {
    Stack s2 = MakeStack("bt_bulk_fill");
    ASSERT_OK_AND_ASSIGN(auto tree,
                         BTree::Create(s2.bp.get(), SmallKeyOptions()));
    ASSERT_OK(tree->BulkLoad(sorted, fill));
    EXPECT_EQ(tree->num_entries(), sorted.size());
    ASSERT_OK_AND_ASSIGN(BTreeStats st, tree->ComputeStats());
    EXPECT_NEAR(st.avg_leaf_fill, fill, 0.05) << "fill target " << fill;
    // Every key findable.
    for (uint64_t i = 0; i < 10000; i += 503) {
      ASSERT_OK_AND_ASSIGN(uint64_t v, tree->Get(Slice(K(i))));
      ASSERT_EQ(v, i);
    }
  }
}

TEST(BTreeTest, BulkLoadRejectsNonEmptyTree) {
  Stack s = MakeStack("bt_bulk_nonempty");
  ASSERT_OK_AND_ASSIGN(auto tree, BTree::Create(s.bp.get(), SmallKeyOptions()));
  ASSERT_OK(tree->Insert(Slice(K(1)), 1));
  std::vector<std::pair<std::string, uint64_t>> sorted = {{K(2), 2}};
  EXPECT_TRUE(tree->BulkLoad(sorted, 1.0).IsInvalidArgument());
}

TEST(BTreeTest, OpenRestoresTreeAndBumpsCsn) {
  Stack s = MakeStack("bt_reopen", 4096, 2048);
  PageId meta;
  uint64_t csn_before;
  {
    ASSERT_OK_AND_ASSIGN(auto tree,
                         BTree::Create(s.bp.get(), SmallKeyOptions()));
    for (uint64_t i = 0; i < 3000; ++i) {
      ASSERT_OK(tree->Insert(Slice(K(i)), i + 7));
    }
    meta = tree->meta_page_id();
    csn_before = tree->global_csn();
  }
  ASSERT_OK(s.bp->FlushAll());
  ASSERT_OK_AND_ASSIGN(auto tree, BTree::Open(s.bp.get(), meta));
  EXPECT_EQ(tree->num_entries(), 3000u);
  // §2.1.2 crash discipline: reopen invalidates all page caches via CSNidx.
  EXPECT_GT(tree->global_csn(), csn_before);
  for (uint64_t i = 0; i < 3000; i += 101) {
    ASSERT_OK_AND_ASSIGN(uint64_t v, tree->Get(Slice(K(i))));
    ASSERT_EQ(v, i + 7);
  }
}

TEST(BTreeTest, ChurnDegradesFillFactorLikeCarTel) {
  // §2: "in a frequently updated database ... the fill factor is only 45%".
  // Insert densely, then delete most keys: fill collapses well below 68%.
  Stack s = MakeStack("bt_churn", 4096, 4096);
  ASSERT_OK_AND_ASSIGN(auto tree, BTree::Create(s.bp.get(), SmallKeyOptions()));
  for (uint64_t i = 0; i < 10000; ++i) {
    ASSERT_OK(tree->Insert(Slice(K(i)), i));
  }
  Rng rng(5);
  for (uint64_t i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.6)) {
      ASSERT_OK(tree->Delete(Slice(K(i))));
    }
  }
  ASSERT_OK_AND_ASSIGN(BTreeStats st, tree->ComputeStats());
  EXPECT_LT(st.avg_leaf_fill, 0.55);
}

}  // namespace
}  // namespace nblb
