// Batched read-path tests: BufferPool::FetchPages edge cases (partial miss,
// duplicate ids, unknown ids, pin accounting), DiskManager::ReadPages runs,
// HeapFile::GetBatch, BTree::GetBatch, and Table::GetBatchByKey vs the
// per-op oracle.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "exec/table.h"
#include "index/btree.h"
#include "storage/buffer_pool.h"
#include "storage/heap_file.h"
#include "test_util.h"

namespace nblb {
namespace {

using nblb::testing::MakeStack;
using nblb::testing::Stack;

std::vector<PageId> MakePages(Stack& s, int n) {
  std::vector<PageId> ids;
  for (int i = 0; i < n; ++i) {
    auto g = s.bp->NewPage();
    EXPECT_TRUE(g.ok());
    std::memset(g->data(), 'a' + (g->id() % 26), 32);
    g->MarkDirty();
    ids.push_back(g->id());
  }
  return ids;
}

TEST(FetchPagesTest, EmptyBatchIsANoop) {
  Stack s = MakeStack("fp_empty", 4096, 4);
  ASSERT_OK_AND_ASSIGN(std::vector<PageGuard> guards,
                       s.bp->FetchPages({}));
  EXPECT_TRUE(guards.empty());
}

TEST(FetchPagesTest, PartialMissMixesHitsAndVectoredReads) {
  Stack s = MakeStack("fp_partial", 4096, 8);
  std::vector<PageId> ids = MakePages(s, 6);
  ASSERT_OK(s.bp->EvictAll());
  // Warm pages 0 and 3 only.
  { ASSERT_OK_AND_ASSIGN(PageGuard g, s.bp->FetchPage(ids[0])); }
  { ASSERT_OK_AND_ASSIGN(PageGuard g, s.bp->FetchPage(ids[3])); }
  s.bp->ResetStats();
  const uint64_t reads_before = s.disk->stats().reads;

  ASSERT_OK_AND_ASSIGN(std::vector<PageGuard> guards, s.bp->FetchPages(ids));
  ASSERT_EQ(guards.size(), ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(guards[i].id(), ids[i]);
    EXPECT_EQ(guards[i].data()[0], 'a' + static_cast<char>(ids[i] % 26));
  }
  const BufferPoolStats st = s.bp->stats();
  EXPECT_EQ(st.hits, 2u);
  EXPECT_EQ(st.misses, 4u);
  EXPECT_EQ(st.batch_fetches, 1u);
  EXPECT_EQ(s.disk->stats().reads - reads_before, 4u);
}

TEST(FetchPagesTest, DuplicateIdsEachHoldAPin) {
  Stack s = MakeStack("fp_dup", 4096, 4);
  std::vector<PageId> ids = MakePages(s, 2);
  ASSERT_OK(s.bp->EvictAll());

  const std::vector<PageId> request = {ids[1], ids[0], ids[1], ids[1]};
  ASSERT_OK_AND_ASSIGN(std::vector<PageGuard> guards,
                       s.bp->FetchPages(request));
  ASSERT_EQ(guards.size(), 4u);
  // Duplicates share the frame...
  EXPECT_EQ(guards[0].data(), guards[2].data());
  EXPECT_EQ(guards[0].data(), guards[3].data());
  EXPECT_NE(guards[0].data(), guards[1].data());
  // ...but each guard pins independently: dropping two still blocks EvictAll.
  guards[2].Release();
  guards[3].Release();
  EXPECT_TRUE(s.bp->EvictAll().IsBusy());
  guards[0].Release();
  guards[1].Release();
  ASSERT_OK(s.bp->EvictAll());
}

TEST(FetchPagesTest, UnknownIdFailsWholeBatchWithoutLeakingPins) {
  Stack s = MakeStack("fp_unknown", 4096, 4);
  std::vector<PageId> ids = MakePages(s, 2);
  const PageId bogus = 1000;
  auto r = s.bp->FetchPages({ids[0], bogus, ids[1]});
  EXPECT_TRUE(r.status().IsOutOfRange());
  // No guard leaked a pin: the pool evicts cleanly.
  ASSERT_OK(s.bp->EvictAll());
}

TEST(FetchPagesTest, MissBatchLargerThanOneStripeRun) {
  // More pages than frames-per-stripe, in descending order with gaps:
  // exercises per-stripe grouping, sorting, and multiple vectored runs.
  Stack s;
  s.file.reset(new nblb::testing::TempFile("fp_runs"));
  s.disk.reset(new DiskManager(s.file->path(), 4096));
  ASSERT_OK(s.disk->Open());
  s.bp.reset(new BufferPool(s.disk.get(), 64, /*num_stripes=*/4));
  std::vector<PageId> all = MakePages(s, 40);
  ASSERT_OK(s.bp->EvictAll());

  std::vector<PageId> request;
  for (int i = 39; i >= 0; i -= 2) request.push_back(all[i]);
  ASSERT_OK_AND_ASSIGN(std::vector<PageGuard> guards,
                       s.bp->FetchPages(request));
  ASSERT_EQ(guards.size(), request.size());
  for (size_t i = 0; i < request.size(); ++i) {
    EXPECT_EQ(guards[i].id(), request[i]);
    EXPECT_EQ(guards[i].data()[0],
              'a' + static_cast<char>(request[i] % 26));
  }
}

TEST(DiskManagerReadPagesTest, ContiguousRunUsesOneVectoredRead) {
  Stack s = MakeStack("dm_runs", 4096, 16);
  MakePages(s, 8);
  ASSERT_OK(s.bp->FlushAll());

  std::vector<std::vector<char>> bufs(5, std::vector<char>(4096));
  // Pages 1..4 are one run; page 6 stands alone.
  const std::vector<PageId> ids = {1, 2, 3, 4, 6};
  std::vector<char*> dsts;
  for (auto& b : bufs) dsts.push_back(b.data());
  s.disk->ResetStats();
  ASSERT_OK(s.disk->ReadPages(ids.data(), dsts.data(), ids.size()));
  const DiskStats st = s.disk->stats();
  EXPECT_EQ(st.reads, 5u);
  EXPECT_EQ(st.vectored_reads, 1u);  // the 1..4 run; page 6 is a plain pread
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(bufs[i][0], 'a' + static_cast<char>(ids[i] % 26));
  }
}

TEST(HeapFileBatchTest, GetBatchMatchesGetAndReportsMissingSlots) {
  Stack s = MakeStack("hf_batch", 4096, 32);
  ASSERT_OK_AND_ASSIGN(auto hf, HeapFile::Create(s.bp.get(), 64));
  std::vector<Rid> rids;
  for (int i = 0; i < 300; ++i) {
    std::string tuple(64, static_cast<char>('A' + i % 26));
    ASSERT_OK_AND_ASSIGN(Rid rid, hf->Insert(Slice(tuple)));
    rids.push_back(rid);
  }
  ASSERT_OK(hf->Delete(rids[5]));

  std::vector<Rid> request = {rids[250], rids[0], rids[5], rids[123],
                              rids[250]};
  std::vector<std::string> tuples;
  std::vector<Status> statuses;
  ASSERT_OK(hf->GetBatch(request, &tuples, &statuses));
  ASSERT_EQ(tuples.size(), request.size());
  for (size_t i = 0; i < request.size(); ++i) {
    if (i == 2) {
      EXPECT_TRUE(statuses[i].IsNotFound());
      continue;
    }
    ASSERT_OK(statuses[i]);
    std::string expect;
    ASSERT_OK(hf->Get(request[i], &expect));
    EXPECT_EQ(tuples[i], expect);
  }
}

TEST(HeapFileBatchTest, BatchLargerThanThePoolIsChunkedNotExhausted) {
  // More distinct heap pages in one batch than the pool has frames: the
  // batch path must chunk its pins instead of failing ResourceExhausted
  // (the per-op path held one pin at a time).
  Stack s = MakeStack("hf_bigbatch", 4096, 16);
  ASSERT_OK_AND_ASSIGN(auto hf, HeapFile::Create(s.bp.get(), 1024));
  std::vector<Rid> rids;
  for (int i = 0; i < 120; ++i) {  // ~3 tuples/page -> ~40 pages > 16 frames
    std::string tuple(1024, static_cast<char>('A' + i % 26));
    ASSERT_OK_AND_ASSIGN(Rid rid, hf->Insert(Slice(tuple)));
    rids.push_back(rid);
  }
  std::vector<std::string> tuples;
  std::vector<Status> statuses;
  ASSERT_OK(hf->GetBatch(rids, &tuples, &statuses));
  for (size_t i = 0; i < rids.size(); ++i) {
    ASSERT_OK(statuses[i]);
    EXPECT_EQ(tuples[i][0], 'A' + static_cast<char>(i % 26));
  }
  ASSERT_OK(s.bp->EvictAll());  // no pins leaked by the chunked path
}

TEST(BTreeBatchTest, GetBatchSharesLeavesAcrossSortedKeys) {
  Stack s = MakeStack("bt_batch", 4096, 128);
  BTreeOptions opts;
  opts.key_size = 8;
  ASSERT_OK_AND_ASSIGN(auto tree, BTree::Create(s.bp.get(), opts));
  auto key_of = [](uint64_t k) {
    std::string key(8, '\0');
    for (int b = 0; b < 8; ++b) key[b] = static_cast<char>(k >> (56 - 8 * b));
    return key;
  };
  for (uint64_t k = 0; k < 2000; k += 2) {
    ASSERT_OK(tree->Insert(Slice(key_of(k)), k * 10));
  }

  // Sorted batch mixing present keys, absent (odd) keys, duplicates, and a
  // key past the end of the tree.
  std::vector<std::string> storage;
  for (uint64_t k : {0ull, 0ull, 7ull, 8ull, 1200ull, 1201ull, 1998ull,
                     5000ull}) {
    storage.push_back(key_of(k));
  }
  std::vector<Slice> keys(storage.begin(), storage.end());
  std::vector<Result<uint64_t>> out;
  ASSERT_OK(tree->GetBatch(keys, &out));
  ASSERT_EQ(out.size(), keys.size());
  const std::vector<bool> found = {true, true, false, true,
                                   true, false, true, false};
  const std::vector<uint64_t> vals = {0, 0, 0, 80, 12000, 0, 19980, 0};
  for (size_t i = 0; i < keys.size(); ++i) {
    if (found[i]) {
      ASSERT_TRUE(out[i].ok()) << "key " << i;
      EXPECT_EQ(*out[i], vals[i]);
    } else {
      EXPECT_TRUE(out[i].status().IsNotFound()) << "key " << i;
    }
  }
}

Schema UserSchema() {
  return Schema({{"id", TypeId::kInt64, 0},
                 {"name", TypeId::kVarchar, 24},
                 {"score", TypeId::kInt64, 0}});
}

Row UserRow(int64_t id) {
  return {Value::Int64(id), Value::Varchar("user-" + std::to_string(id)),
          Value::Int64(id * 3 + 1)};
}

TEST(TableBatchTest, GetBatchByKeyMatchesPerOpOracle) {
  Stack s = MakeStack("tbl_batch", 4096, 256);
  TableOptions topts;
  topts.key_columns = {0};
  ASSERT_OK_AND_ASSIGN(auto t,
                       Table::Create(s.bp.get(), UserSchema(), topts));
  for (int64_t id = 0; id < 500; ++id) {
    ASSERT_OK(t->Insert(UserRow(id * 2)));  // even ids only
  }

  // Unsorted input with misses and duplicates; the table sorts internally.
  std::vector<int64_t> request = {998, 3, 0, 246, 246, 997, 514};
  std::vector<std::vector<Value>> keys;
  for (int64_t id : request) keys.push_back({Value::Int64(id)});
  std::vector<Result<Row>> out;
  ASSERT_OK(t->GetBatchByKey(keys, &out));
  ASSERT_EQ(out.size(), request.size());
  for (size_t i = 0; i < request.size(); ++i) {
    auto oracle = t->GetByKey(keys[i]);
    ASSERT_EQ(out[i].ok(), oracle.ok()) << "id " << request[i];
    if (oracle.ok()) {
      ASSERT_EQ(out[i]->size(), oracle->size());
      for (size_t c = 0; c < oracle->size(); ++c) {
        EXPECT_EQ((*out[i])[c].ToString(), (*oracle)[c].ToString());
      }
    } else {
      EXPECT_TRUE(out[i].status().IsNotFound());
    }
  }
}

TEST(TableBatchTest, GetBatchByKeyColdCacheUsesVectoredReads) {
  Stack s = MakeStack("tbl_batch_cold", 4096, 512);
  TableOptions topts;
  topts.key_columns = {0};
  ASSERT_OK_AND_ASSIGN(auto t,
                       Table::Create(s.bp.get(), UserSchema(), topts));
  std::vector<std::vector<Value>> keys;
  for (int64_t id = 0; id < 2000; ++id) {
    ASSERT_OK(t->Insert(UserRow(id)));
    keys.push_back({Value::Int64(id)});
  }
  ASSERT_OK(s.bp->EvictAll());
  s.disk->ResetStats();
  std::vector<Result<Row>> out;
  ASSERT_OK(t->GetBatchByKey(keys, &out));
  for (auto& r : out) ASSERT_OK(r.status());
  // The heap pages were cold and mostly contiguous: the batch must have
  // read them with vectored syscalls, i.e. clearly fewer syscalls than
  // pages (heap pages interleave with index pages on disk, so runs are
  // short but real).
  const DiskStats dst = s.disk->stats();
  EXPECT_GT(dst.vectored_reads, 0u);
  EXPECT_LT(dst.vectored_reads * 2, dst.reads);
}

}  // namespace
}  // namespace nblb
