// Mixed-workload tests for the sharded engine: the new kUpdate/kDelete
// request kinds, the batched kGet read path (Shard::GetBatch through
// RunSubBatch), order preservation between writes and reads in one batch,
// and a multi-threaded mixed Zipfian replay against an oracle map.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "shard/sharded_engine.h"
#include "test_util.h"
#include "workload/replay.h"
#include "workload/trace.h"

namespace nblb {
namespace {

Schema SmallSchema() {
  return Schema({{"id", TypeId::kInt64, 0},
                 {"payload", TypeId::kVarchar, 32},
                 {"version", TypeId::kInt64, 0}});
}

Row MakeRow(uint64_t id, int64_t version = 0) {
  return {Value::Int64(static_cast<int64_t>(id)),
          Value::Varchar("payload-" + std::to_string(id)),
          Value::Int64(version)};
}

ShardedEngineOptions SmallOptions(const std::string& tag, uint32_t shards,
                                  uint32_t workers = 0) {
  ShardedEngineOptions opts;
  opts.num_shards = shards;
  opts.num_workers = workers;
  opts.path_prefix = ::testing::TempDir() + "nblb_mixed_" + tag + "_" +
                     std::to_string(::getpid());
  opts.page_size = 4096;
  opts.buffer_pool_frames_per_shard = 512;
  opts.schema = SmallSchema();
  opts.table_options.key_columns = {0};
  return opts;
}

void Cleanup(const ShardedEngineOptions& opts) {
  for (uint32_t i = 0; i < opts.num_shards; ++i) {
    std::remove(
        (opts.path_prefix + ".shard" + std::to_string(i) + ".db").c_str());
  }
}

TEST(ShardMixedTest, UpdateAndDeleteRoundTrip) {
  auto opts = SmallOptions("upd", 4);
  ASSERT_OK_AND_ASSIGN(auto engine, ShardedEngine::Open(opts));
  for (uint64_t id = 0; id < 100; ++id) {
    ASSERT_OK(engine->Insert(id, MakeRow(id)));
  }

  ASSERT_OK(engine->Update(7, MakeRow(7, /*version=*/42)));
  ASSERT_OK_AND_ASSIGN(Row updated, engine->Get(7));
  EXPECT_EQ(updated[2].AsInt(), 42);

  ASSERT_OK(engine->Delete(7));
  EXPECT_TRUE(engine->Get(7).status().IsNotFound());
  EXPECT_TRUE(engine->Update(7, MakeRow(7, 1)).IsNotFound());
  EXPECT_TRUE(engine->Delete(7).IsNotFound());

  // Neighbors are untouched.
  ASSERT_OK_AND_ASSIGN(Row row6, engine->Get(6));
  EXPECT_EQ(row6[2].AsInt(), 0);

  const ShardStatsSnapshot st = engine->TotalShardStats();
  EXPECT_EQ(st.updates, 2u);
  EXPECT_EQ(st.deletes, 2u);
  Cleanup(opts);
}

TEST(ShardMixedTest, BatchedGetsMatchSingleGets) {
  auto opts = SmallOptions("batchget", 4, 2);
  ASSERT_OK_AND_ASSIGN(auto engine, ShardedEngine::Open(opts));
  for (uint64_t id = 0; id < 500; ++id) {
    ASSERT_OK(engine->Insert(id, MakeRow(id, static_cast<int64_t>(id * 3))));
  }

  // One big lookup batch: every shard serves its fragment through the
  // batched read path.
  RequestBatch batch;
  for (uint64_t id = 0; id < 500; id += 3) batch.push_back(Request::Get(id));
  batch.push_back(Request::Get(10'000));  // miss
  BatchResult result = engine->Execute(batch);
  ASSERT_EQ(result.results.size(), batch.size());
  for (size_t i = 0; i + 1 < result.results.size(); ++i) {
    ASSERT_OK(result.results[i].status);
    EXPECT_EQ(result.results[i].row[2].AsInt(),
              static_cast<int64_t>(batch[i].id * 3));
  }
  EXPECT_TRUE(result.results.back().status.IsNotFound());
  EXPECT_GT(engine->TotalShardStats().batch_gets, 0u);
  Cleanup(opts);
}

TEST(ShardMixedTest, WriteThenReadOfSameIdInOneBatchSeesTheWrite) {
  auto opts = SmallOptions("order", 2);
  ASSERT_OK_AND_ASSIGN(auto engine, ShardedEngine::Open(opts));
  for (uint64_t id = 0; id < 20; ++id) {
    ASSERT_OK(engine->Insert(id, MakeRow(id)));
  }
  // get(3), update(3 -> v9), get(3), delete(3), get(3): the batched-get
  // segmentation must not reorder a get across the intervening writes.
  RequestBatch batch;
  batch.push_back(Request::Get(3));
  batch.push_back(Request::Update(3, MakeRow(3, 9)));
  batch.push_back(Request::Get(3));
  batch.push_back(Request::Delete(3));
  batch.push_back(Request::Get(3));
  BatchResult result = engine->Execute(batch);
  ASSERT_OK(result.results[0].status);
  EXPECT_EQ(result.results[0].row[2].AsInt(), 0);
  ASSERT_OK(result.results[1].status);
  ASSERT_OK(result.results[2].status);
  EXPECT_EQ(result.results[2].row[2].AsInt(), 9);
  ASSERT_OK(result.results[3].status);
  EXPECT_TRUE(result.results[4].status.IsNotFound());
  Cleanup(opts);
}

TEST(ShardMixedTest, MixedZipfianReplayMatchesOracle) {
  auto opts = SmallOptions("zipf", 4, 4);
  ASSERT_OK_AND_ASSIGN(auto engine, ShardedEngine::Open(opts));

  constexpr uint64_t kItems = 2000;
  std::vector<Row> rows;
  for (uint64_t id = 0; id < kItems; ++id) rows.push_back(MakeRow(id));
  ASSERT_OK(LoadRows(engine.get(), rows, /*key_column=*/0));

  TraceOptions topts;
  topts.num_items = kItems;
  topts.num_ops = 20000;
  topts.distribution = TraceDistribution::kScrambledZipfian;
  topts.zipf_alpha = 0.5;
  topts.mix.lookup = 0.70;
  topts.mix.insert = 0.0;  // inserts of existing ids would AlreadyExists
  topts.mix.update = 0.20;
  topts.mix.del = 0.10;
  topts.seed = 7;
  const std::vector<Op> ops = BuildTrace(topts);
  const auto batches =
      BuildOpBatches(ops, [](uint64_t id) { return MakeRow(id, 1); }, 64);

  ReplayReport report = ReplayBatches(engine.get(), batches);
  EXPECT_EQ(report.ops, ops.size());
  EXPECT_EQ(report.errors, 0u) << "only OK/NotFound are acceptable";

  // Sequential oracle over the same trace: which ids survive, and with
  // which version.
  std::unordered_set<uint64_t> deleted;
  std::unordered_map<uint64_t, int64_t> version;
  for (const Op& op : ops) {
    switch (op.kind) {
      case OpKind::kUpdate:
        if (deleted.count(op.item) == 0) version[op.item] = 1;
        break;
      case OpKind::kDelete:
        deleted.insert(op.item);
        break;
      default:
        break;
    }
  }
  for (uint64_t id = 0; id < kItems; id += 17) {
    auto row = engine->Get(id);
    if (deleted.count(id) != 0) {
      EXPECT_TRUE(row.status().IsNotFound()) << "id " << id;
      continue;
    }
    ASSERT_OK(row.status());
    const int64_t want = version.count(id) != 0 ? version[id] : 0;
    EXPECT_EQ((*row)[2].AsInt(), want) << "id " << id;
  }
  Cleanup(opts);
}

TEST(ShardMixedTest, ConcurrentClientsMixedBatchesStayConsistent) {
  auto opts = SmallOptions("conc", 4, 4);
  ASSERT_OK_AND_ASSIGN(auto engine, ShardedEngine::Open(opts));
  constexpr uint64_t kItems = 1000;
  for (uint64_t id = 0; id < kItems; ++id) {
    ASSERT_OK(engine->Insert(id, MakeRow(id)));
  }

  // Each client owns a disjoint id range so the final state is
  // deterministic per id; lookups roam everywhere.
  constexpr int kClients = 8;
  constexpr uint64_t kSlice = kItems / kClients;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const uint64_t lo = c * kSlice;
      for (int round = 0; round < 20; ++round) {
        RequestBatch batch;
        for (uint64_t i = 0; i < kSlice; i += 7) {
          batch.push_back(Request::Update(lo + i, MakeRow(lo + i, round + 1)));
          batch.push_back(Request::Get((lo + i * 13) % kItems));
        }
        BatchResult result = engine->Execute(batch);
        for (const auto& r : result.results) {
          // Updates to own ids always succeed; roaming gets may race with
          // nothing here (no deletes), so OK is the only acceptable status.
          EXPECT_TRUE(r.status.ok()) << r.status.ToString();
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  for (int c = 0; c < kClients; ++c) {
    const uint64_t lo = c * kSlice;
    for (uint64_t i = 0; i < kSlice; i += 7) {
      ASSERT_OK_AND_ASSIGN(Row row, engine->Get(lo + i));
      EXPECT_EQ(row[2].AsInt(), 20) << "id " << lo + i;
    }
  }
  Cleanup(opts);
}

}  // namespace
}  // namespace nblb
