#include <gtest/gtest.h>

#include "common/rng.h"
#include "encoding/bitpack.h"
#include "encoding/column_stats.h"
#include "encoding/dict.h"
#include "encoding/timestamp.h"
#include "encoding/type_inference.h"
#include "test_util.h"

namespace nblb {
namespace {

// ---------------------------------------------------------------------------
// BitPackedVector
// ---------------------------------------------------------------------------

TEST(BitPackTest, BitsForRange) {
  EXPECT_EQ(BitPackedVector::BitsForRange(0), 1u);
  EXPECT_EQ(BitPackedVector::BitsForRange(1), 1u);
  EXPECT_EQ(BitPackedVector::BitsForRange(2), 2u);
  EXPECT_EQ(BitPackedVector::BitsForRange(15), 4u);
  EXPECT_EQ(BitPackedVector::BitsForRange(16), 5u);
  EXPECT_EQ(BitPackedVector::BitsForRange(255), 8u);
  EXPECT_EQ(BitPackedVector::BitsForRange(~0ull), 64u);
}

TEST(BitPackTest, RoundTripAcrossWidths) {
  Rng rng(1);
  for (unsigned width : {1u, 3u, 4u, 7u, 8u, 13u, 32u, 63u, 64u}) {
    BitPackedVector v(width);
    std::vector<uint64_t> expected;
    const uint64_t mask = width == 64 ? ~0ull : (1ull << width) - 1;
    for (int i = 0; i < 1000; ++i) {
      const uint64_t x = rng.NextU64() & mask;
      expected.push_back(x);
      v.Append(x);
    }
    for (size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(v.Get(i), expected[i]) << "width " << width << " index " << i;
    }
  }
}

TEST(BitPackTest, PayloadBytesMatchWidth) {
  BitPackedVector v(4);
  for (int i = 0; i < 1600; ++i) v.Append(i % 16);
  // 1600 values * 4 bits = 800 bytes (+ one spare word of slack).
  EXPECT_LE(v.PayloadBytes(), 800u + 16);
  EXPECT_GE(v.PayloadBytes(), 800u);
}

// ---------------------------------------------------------------------------
// DictionaryColumn
// ---------------------------------------------------------------------------

TEST(DictTest, RoundTripAndCodes) {
  std::vector<std::string> values = {"red", "green", "red", "blue", "green",
                                     "red"};
  DictionaryColumn col = DictionaryColumn::Build(values);
  EXPECT_EQ(col.size(), values.size());
  EXPECT_EQ(col.dict_size(), 3u);
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(col.Get(i), values[i]);
  }
  EXPECT_EQ(col.CodeOf("red"), 0u);
  EXPECT_EQ(col.CodeOf("purple"), SIZE_MAX);
  // Equal strings share the code (equality pushdown).
  EXPECT_EQ(col.RawCode(0), col.RawCode(2));
  EXPECT_NE(col.RawCode(0), col.RawCode(3));
}

TEST(DictTest, CompressionWinsOnLowCardinality) {
  std::vector<std::string> values;
  Rng rng(2);
  const std::vector<std::string> tags = {"article", "talk", "user", "project"};
  for (int i = 0; i < 10000; ++i) {
    values.push_back(tags[rng.Uniform(tags.size())]);
  }
  DictionaryColumn col = DictionaryColumn::Build(values);
  size_t raw_bytes = 0;
  for (const auto& v : values) raw_bytes += v.size();
  EXPECT_LT(col.PayloadBytes(), raw_bytes / 4)
      << "2-bit codes should crush 4-7 byte strings";
}

// ---------------------------------------------------------------------------
// Timestamp codec
// ---------------------------------------------------------------------------

TEST(TimestampTest, KnownValues) {
  // 1970-01-01 00:00:00.
  ASSERT_OK_AND_ASSIGN(uint32_t epoch, ParseTimestamp14("19700101000000"));
  EXPECT_EQ(epoch, 0u);
  // 2011-01-01 00:00:00 == 1293840000 (the paper's era).
  ASSERT_OK_AND_ASSIGN(uint32_t wiki, ParseTimestamp14("20110101000000"));
  EXPECT_EQ(wiki, 1293840000u);
  EXPECT_EQ(FormatTimestamp14(1293840000u), "20110101000000");
}

TEST(TimestampTest, RejectsMalformedStrings) {
  EXPECT_FALSE(ParseTimestamp14("2011").ok());
  EXPECT_FALSE(ParseTimestamp14("20111301000000").ok());  // month 13
  EXPECT_FALSE(ParseTimestamp14("2011010100000x").ok());
  EXPECT_FALSE(ParseTimestamp14("19690101000000").ok());  // pre-epoch
}

TEST(TimestampTest, RoundTripProperty) {
  Rng rng(3);
  // Stay below 2100-01-01: the parser validates years up to 2105, while u32
  // seconds extend a few weeks into 2106.
  constexpr uint64_t kMaxSecs = 4102444800ull;
  for (int i = 0; i < 5000; ++i) {
    const uint32_t secs = static_cast<uint32_t>(rng.NextU64() % kMaxSecs);
    const std::string s = FormatTimestamp14(secs);
    ASSERT_OK_AND_ASSIGN(uint32_t back, ParseTimestamp14(s));
    ASSERT_EQ(back, secs) << s;
  }
}

TEST(TimestampTest, CivilDateRoundTrip) {
  Rng rng(4);
  for (int i = 0; i < 5000; ++i) {
    const int64_t days = static_cast<int64_t>(rng.Uniform(60000));  // ~164 yrs
    int y;
    unsigned m, d;
    CivilFromDays(days, &y, &m, &d);
    ASSERT_EQ(DaysFromCivil(y, m, d), days);
  }
}

// ---------------------------------------------------------------------------
// ColumnStats + type inference
// ---------------------------------------------------------------------------

TEST(ColumnStatsTest, TracksIntRangeAndDistinct) {
  ColumnStats st;
  for (int64_t v : {5, -3, 10, 5, 7}) st.Observe(Value::Int64(v));
  EXPECT_EQ(st.count(), 5u);
  EXPECT_EQ(st.int_min(), -3);
  EXPECT_EQ(st.int_max(), 10);
  EXPECT_EQ(st.distinct(), 4u);
  EXPECT_FALSE(st.bool_like());
}

TEST(ColumnStatsTest, DetectsBoolLike) {
  ColumnStats st;
  for (int64_t v : {0, 1, 1, 0, 0}) st.Observe(Value::Int64(v));
  EXPECT_TRUE(st.bool_like());
}

TEST(ColumnStatsTest, DetectsStringShapes) {
  ColumnStats numeric, ts, mixed;
  numeric.Observe(Value::Varchar("12345"));
  numeric.Observe(Value::Varchar("-7"));
  EXPECT_TRUE(numeric.all_numeric_strings());
  EXPECT_FALSE(numeric.all_timestamp14_strings());

  ts.Observe(Value::Char("20110101000000"));
  ts.Observe(Value::Char("20110415093000"));
  EXPECT_TRUE(ts.all_timestamp14_strings());
  EXPECT_TRUE(ts.all_numeric_strings());  // digits only

  mixed.Observe(Value::Varchar("abc"));
  mixed.Observe(Value::Varchar("123"));
  EXPECT_FALSE(mixed.all_numeric_strings());
  EXPECT_EQ(mixed.max_string_len(), 3u);
}

TEST(TypeInferenceTest, SmallRangeInt64BecomesBitPacked) {
  Column col{"ns", TypeId::kInt64, 0};
  ColumnStats st;
  for (int64_t v = 0; v < 16; ++v) st.Observe(Value::Int64(v));
  InferredType t = InferColumnType(col, st);
  EXPECT_EQ(t.encoding, PhysicalEncoding::kBitPacked);
  EXPECT_EQ(t.bits_per_value, 4);  // 0..15
  EXPECT_NEAR(t.WasteFraction(), 1.0 - 4.0 / 64.0, 1e-9);
}

TEST(TypeInferenceTest, BoolAsInt64Becomes1Bit) {
  Column col{"is_redirect", TypeId::kInt64, 0};
  ColumnStats st;
  st.Observe(Value::Int64(0));
  st.Observe(Value::Int64(1));
  InferredType t = InferColumnType(col, st);
  EXPECT_EQ(t.encoding, PhysicalEncoding::kBoolBit);
  EXPECT_EQ(t.bits_per_value, 1);
}

TEST(TypeInferenceTest, Timestamp14StringBecomes4Bytes) {
  // The paper: "a 14 byte string ... can easily be encoded into a 4 byte
  // timestamp".
  Column col{"rev_timestamp", TypeId::kChar, 14};
  ColumnStats st;
  st.Observe(Value::Char("20110101000000"));
  st.Observe(Value::Char("20110415093000"));
  InferredType t = InferColumnType(col, st);
  EXPECT_EQ(t.encoding, PhysicalEncoding::kTimestampBinary);
  EXPECT_EQ(t.bits_per_value, 32);
  EXPECT_NEAR(t.WasteFraction(), 1.0 - 4.0 / 14.0, 1e-9);
}

TEST(TypeInferenceTest, ConstantColumnIsDropped) {
  Column col{"rev_deleted", TypeId::kInt64, 0};
  ColumnStats st;
  for (int i = 0; i < 100; ++i) st.Observe(Value::Int64(0));
  InferredType t = InferColumnType(col, st);
  EXPECT_EQ(t.encoding, PhysicalEncoding::kDropConstant);
  EXPECT_EQ(t.bits_per_value, 0);
}

TEST(TypeInferenceTest, LowCardinalityStringsGetDictionary) {
  Column col{"restrictions", TypeId::kVarchar, 255};
  ColumnStats st;
  for (int i = 0; i < 1000; ++i) {
    st.Observe(Value::Varchar(i % 3 == 0 ? "sysop" : i % 3 == 1 ? "" : "move"));
  }
  InferredType t = InferColumnType(col, st);
  EXPECT_EQ(t.encoding, PhysicalEncoding::kDictionary);
  EXPECT_LT(t.bits_per_value, 8);
}

TEST(TypeInferenceTest, OverDeclaredCharShrinks) {
  // CHAR always occupies the declared width, so observed-max shrinking pays.
  Column col{"title", TypeId::kChar, 255};
  ColumnStats st(/*distinct_limit=*/64);  // force distinct overflow
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    st.Observe(Value::Char(rng.NextString(10 + rng.Uniform(10))));
  }
  InferredType t = InferColumnType(col, st);
  EXPECT_EQ(t.encoding, PhysicalEncoding::kShrunkString);
  EXPECT_LE(t.bits_per_value, 8.0 * (19 + 2));
}

TEST(TypeInferenceTest, VarcharAccountedAtStoredSizeNotCapacity) {
  // A varchar(255) holding ~15-byte values is NOT charged 257 bytes — the
  // engine stores it variable-length, so there is little to reclaim.
  Column col{"title", TypeId::kVarchar, 255};
  ColumnStats st(/*distinct_limit=*/64);
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    st.Observe(Value::Varchar(rng.NextString(10 + rng.Uniform(10))));
  }
  InferredType t = InferColumnType(col, st);
  EXPECT_LT(t.declared_bits_per_value, 8.0 * 25);
  EXPECT_LT(t.WasteFraction(), 0.5);
}

TEST(TypeInferenceTest, AlreadyMinimalDeclarationStaysPlain) {
  Column col{"flag", TypeId::kBool, 0};
  ColumnStats st;
  st.Observe(Value::Bool(true));
  st.Observe(Value::Bool(false));
  InferredType t = InferColumnType(col, st);
  // 1 bit < 8 bits declared, so even bool compresses at bit granularity.
  EXPECT_EQ(t.encoding, PhysicalEncoding::kBoolBit);

  Column wide{"hash", TypeId::kInt64, 0};
  ColumnStats st2;
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    st2.Observe(Value::Int64(static_cast<int64_t>(rng.NextU64())));
  }
  InferredType t2 = InferColumnType(wide, st2);
  EXPECT_EQ(t2.encoding, PhysicalEncoding::kPlain);
  EXPECT_NEAR(t2.WasteFraction(), 0.0, 1e-9);
}

TEST(TypeInferenceTest, NumericStringsConvert) {
  Column col{"count_str", TypeId::kVarchar, 32};
  ColumnStats st;
  for (int i = 0; i < 100; ++i) st.Observe(Value::Varchar(std::to_string(i)));
  InferredType t = InferColumnType(col, st);
  EXPECT_EQ(t.encoding, PhysicalEncoding::kNumericString);
  EXPECT_LT(t.bits_per_value, 8.0 * 34);
}

}  // namespace
}  // namespace nblb
