// Iterator edge cases: empty trees, empty leaves after deletion, bulk-loaded
// trees at extreme fills, seeks at and past the boundaries.

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "index/btree.h"
#include "test_util.h"

namespace nblb {
namespace {

using nblb::testing::MakeStack;
using nblb::testing::Stack;

std::string K(uint64_t v) {
  std::string s(8, '\0');
  EncodeBigEndian64(s.data(), v);
  return s;
}

BTreeOptions Opts() {
  BTreeOptions o;
  o.key_size = 8;
  return o;
}

TEST(BTreeIteratorTest, EmptyTreeIteratesNothing) {
  Stack s = MakeStack("it_empty");
  ASSERT_OK_AND_ASSIGN(auto tree, BTree::Create(s.bp.get(), Opts()));
  ASSERT_OK_AND_ASSIGN(BTreeIterator it, tree->SeekToFirst());
  EXPECT_FALSE(it.Valid());
  ASSERT_OK_AND_ASSIGN(BTreeIterator it2, tree->Seek(Slice(K(5))));
  EXPECT_FALSE(it2.Valid());
}

TEST(BTreeIteratorTest, SeekAtExactFirstAndLastKeys) {
  Stack s = MakeStack("it_bounds");
  ASSERT_OK_AND_ASSIGN(auto tree, BTree::Create(s.bp.get(), Opts()));
  for (uint64_t k = 10; k <= 90; k += 10) {
    ASSERT_OK(tree->Insert(Slice(K(k)), k));
  }
  ASSERT_OK_AND_ASSIGN(BTreeIterator front, tree->Seek(Slice(K(10))));
  ASSERT_TRUE(front.Valid());
  EXPECT_EQ(front.value(), 10u);
  ASSERT_OK_AND_ASSIGN(BTreeIterator back, tree->Seek(Slice(K(90))));
  ASSERT_TRUE(back.Valid());
  EXPECT_EQ(back.value(), 90u);
  ASSERT_OK(back.Next());
  EXPECT_FALSE(back.Valid());
  ASSERT_OK_AND_ASSIGN(BTreeIterator below, tree->Seek(Slice(K(1))));
  ASSERT_TRUE(below.Valid());
  EXPECT_EQ(below.value(), 10u);
}

TEST(BTreeIteratorTest, SkipsLeavesEmptiedByDeletes) {
  Stack s = MakeStack("it_holes", 1024, 2048);  // small pages: many leaves
  ASSERT_OK_AND_ASSIGN(auto tree, BTree::Create(s.bp.get(), Opts()));
  constexpr uint64_t kN = 2000;
  for (uint64_t k = 0; k < kN; ++k) {
    ASSERT_OK(tree->Insert(Slice(K(k)), k));
  }
  ASSERT_OK_AND_ASSIGN(BTreeStats st, tree->ComputeStats());
  ASSERT_GT(st.leaf_pages, 10u);
  // Empty out a contiguous key band (whole leaves become empty).
  for (uint64_t k = 500; k < 1500; ++k) {
    ASSERT_OK(tree->Delete(Slice(K(k))));
  }
  // Full scan must silently skip the empty leaves.
  uint64_t expect = 0;
  ASSERT_OK_AND_ASSIGN(BTreeIterator it, tree->SeekToFirst());
  while (it.Valid()) {
    if (expect == 500) expect = 1500;
    ASSERT_EQ(it.value(), expect);
    ++expect;
    ASSERT_OK(it.Next());
  }
  EXPECT_EQ(expect, kN);
  // Seeking into the emptied band lands on the first surviving key.
  ASSERT_OK_AND_ASSIGN(BTreeIterator mid, tree->Seek(Slice(K(700))));
  ASSERT_TRUE(mid.Valid());
  EXPECT_EQ(mid.value(), 1500u);
}

TEST(BTreeIteratorTest, ScanBulkLoadedAt100PercentFill) {
  Stack s = MakeStack("it_bulk100", 4096, 4096);
  ASSERT_OK_AND_ASSIGN(auto tree, BTree::Create(s.bp.get(), Opts()));
  std::vector<std::pair<std::string, uint64_t>> sorted;
  for (uint64_t k = 0; k < 5000; ++k) sorted.emplace_back(K(k * 3), k);
  ASSERT_OK(tree->BulkLoad(sorted, 1.0));
  uint64_t count = 0;
  ASSERT_OK_AND_ASSIGN(BTreeIterator it, tree->SeekToFirst());
  while (it.Valid()) {
    ASSERT_EQ(it.key().ToString(), K(count * 3));
    ++count;
    ASSERT_OK(it.Next());
  }
  EXPECT_EQ(count, 5000u);
}

TEST(BTreeIteratorTest, RangeCountBetweenBounds) {
  Stack s = MakeStack("it_range");
  ASSERT_OK_AND_ASSIGN(auto tree, BTree::Create(s.bp.get(), Opts()));
  for (uint64_t k = 0; k < 1000; ++k) {
    ASSERT_OK(tree->Insert(Slice(K(k)), k));
  }
  // Count keys in [100, 200).
  size_t count = 0;
  ASSERT_OK_AND_ASSIGN(BTreeIterator it, tree->Seek(Slice(K(100))));
  while (it.Valid() && it.key().Compare(Slice(K(200))) < 0) {
    ++count;
    ASSERT_OK(it.Next());
  }
  EXPECT_EQ(count, 100u);
}

TEST(BTreeIteratorTest, SingleEntryTree) {
  Stack s = MakeStack("it_single");
  ASSERT_OK_AND_ASSIGN(auto tree, BTree::Create(s.bp.get(), Opts()));
  ASSERT_OK(tree->Insert(Slice(K(7)), 77));
  ASSERT_OK_AND_ASSIGN(BTreeIterator it, tree->SeekToFirst());
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.value(), 77u);
  ASSERT_OK(it.Next());
  EXPECT_FALSE(it.Valid());
}

TEST(BTreeIteratorTest, DeleteEverythingThenScan) {
  Stack s = MakeStack("it_alldeleted", 1024, 2048);
  ASSERT_OK_AND_ASSIGN(auto tree, BTree::Create(s.bp.get(), Opts()));
  for (uint64_t k = 0; k < 500; ++k) {
    ASSERT_OK(tree->Insert(Slice(K(k)), k));
  }
  for (uint64_t k = 0; k < 500; ++k) {
    ASSERT_OK(tree->Delete(Slice(K(k))));
  }
  ASSERT_OK_AND_ASSIGN(BTreeIterator it, tree->SeekToFirst());
  EXPECT_FALSE(it.Valid());
  // The tree remains usable.
  ASSERT_OK(tree->Insert(Slice(K(42)), 42));
  ASSERT_OK_AND_ASSIGN(BTreeIterator it2, tree->SeekToFirst());
  ASSERT_TRUE(it2.Valid());
  EXPECT_EQ(it2.value(), 42u);
}

}  // namespace
}  // namespace nblb
