#include "catalog/row_codec.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "test_util.h"

namespace nblb {
namespace {

Schema AllTypesSchema() {
  return Schema({{"b", TypeId::kBool, 0},
                 {"i8", TypeId::kInt8, 0},
                 {"i16", TypeId::kInt16, 0},
                 {"i32", TypeId::kInt32, 0},
                 {"i64", TypeId::kInt64, 0},
                 {"f", TypeId::kFloat64, 0},
                 {"ts", TypeId::kTimestamp, 0},
                 {"c", TypeId::kChar, 8},
                 {"v", TypeId::kVarchar, 16}});
}

TEST(RowCodecTest, RoundTripAllTypes) {
  Schema s = AllTypesSchema();
  RowCodec codec(&s);
  Row row = {Value::Bool(true),     Value::Int8(-5),
             Value::Int16(-3000),   Value::Int32(123456),
             Value::Int64(-9e15),   Value::Float64(3.25),
             Value::Timestamp(1293840000), Value::Char("abc"),
             Value::Varchar("hello")};
  ASSERT_OK_AND_ASSIGN(std::string bytes, codec.Encode(row));
  EXPECT_EQ(bytes.size(), s.row_size());
  Row out = codec.Decode(bytes.data());
  ASSERT_EQ(out.size(), row.size());
  for (size_t i = 0; i < row.size(); ++i) {
    EXPECT_EQ(out[i], row[i]) << "column " << i;
  }
}

TEST(RowCodecTest, DecodeSingleColumnMatchesFullDecode) {
  Schema s = AllTypesSchema();
  RowCodec codec(&s);
  Row row = {Value::Bool(false),  Value::Int8(7),
             Value::Int16(300),   Value::Int32(-9),
             Value::Int64(42),    Value::Float64(-1.5),
             Value::Timestamp(7), Value::Char("x"),
             Value::Varchar("")};
  ASSERT_OK_AND_ASSIGN(std::string bytes, codec.Encode(row));
  for (size_t c = 0; c < s.num_columns(); ++c) {
    EXPECT_EQ(codec.DecodeColumn(bytes.data(), c), row[c]) << "column " << c;
  }
}

TEST(RowCodecTest, ArityMismatchFails) {
  Schema s = AllTypesSchema();
  RowCodec codec(&s);
  Row short_row = {Value::Bool(true)};
  EXPECT_TRUE(codec.Encode(short_row).status().IsInvalidArgument());
}

TEST(RowCodecTest, FamilyMismatchFails) {
  Schema s({{"i", TypeId::kInt32, 0}});
  RowCodec codec(&s);
  EXPECT_TRUE(codec.Encode({Value::Varchar("nope")}).status()
                  .IsInvalidArgument());
}

TEST(RowCodecTest, OverlongStringFails) {
  Schema s({{"v", TypeId::kVarchar, 4}});
  RowCodec codec(&s);
  EXPECT_TRUE(codec.Encode({Value::Varchar("too-long")}).status()
                  .IsInvalidArgument());
  EXPECT_OK(codec.Encode({Value::Varchar("fits")}).status());
}

TEST(RowCodecTest, CharPaddingIsStripped) {
  Schema s({{"c", TypeId::kChar, 10}});
  RowCodec codec(&s);
  ASSERT_OK_AND_ASSIGN(std::string bytes, codec.Encode({Value::Char("hi")}));
  EXPECT_EQ(codec.Decode(bytes.data())[0].AsString(), "hi");
}

TEST(RowCodecTest, VarcharPreservesExactLengthIncludingEmpty) {
  Schema s({{"v", TypeId::kVarchar, 10}});
  RowCodec codec(&s);
  for (const std::string& input : {std::string(""), std::string("a"),
                                   std::string("exactly10!")}) {
    ASSERT_OK_AND_ASSIGN(std::string bytes,
                         codec.Encode({Value::Varchar(input)}));
    EXPECT_EQ(codec.Decode(bytes.data())[0].AsString(), input);
  }
}

TEST(RowCodecTest, RandomizedRoundTrip) {
  Schema s = AllTypesSchema();
  RowCodec codec(&s);
  Rng rng(99);
  for (int iter = 0; iter < 500; ++iter) {
    Row row = {Value::Bool(rng.Bernoulli(0.5)),
               Value::Int8(static_cast<int8_t>(rng.NextU64())),
               Value::Int16(static_cast<int16_t>(rng.NextU64())),
               Value::Int32(static_cast<int32_t>(rng.NextU64())),
               Value::Int64(static_cast<int64_t>(rng.NextU64())),
               Value::Float64(rng.NextDouble() * 1e9),
               Value::Timestamp(static_cast<uint32_t>(rng.NextU64())),
               Value::Char(rng.NextString(rng.Uniform(9))),
               Value::Varchar(rng.NextString(rng.Uniform(17)))};
    ASSERT_OK_AND_ASSIGN(std::string bytes, codec.Encode(row));
    Row out = codec.Decode(bytes.data());
    for (size_t i = 0; i < row.size(); ++i) {
      // kChar strips trailing spaces by design; our random strings have none.
      EXPECT_EQ(out[i], row[i]) << "iter " << iter << " column " << i;
    }
  }
}

}  // namespace
}  // namespace nblb
