// Clock-sweep (second-chance) victim-selection tests for the striped
// BufferPool, plus striped-configuration coverage. The legacy LRU-flavored
// expectations live in buffer_pool_test.cc and must keep passing; these
// tests pin down the CLOCK mechanics specifically.

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "storage/buffer_pool.h"
#include "test_util.h"

namespace nblb {
namespace {

using nblb::testing::MakeStack;
using nblb::testing::Stack;

// A tiny pool always collapses to one stripe, so victim order is exact.
TEST(BufferPoolClockTest, TinyPoolUsesOneStripe) {
  Stack s = MakeStack("clk_one_stripe", 4096, 3);
  EXPECT_EQ(s.bp->num_stripes(), 1u);
}

TEST(BufferPoolClockTest, RequestedStripesRoundDownToPowerOfTwo) {
  Stack s;
  s.file.reset(new nblb::testing::TempFile("clk_pow2"));
  s.disk.reset(new DiskManager(s.file->path(), 4096));
  ASSERT_OK(s.disk->Open());
  s.bp.reset(new BufferPool(s.disk.get(), 64, /*num_stripes=*/6));
  EXPECT_EQ(s.bp->num_stripes(), 4u);  // 6 -> 4
  EXPECT_EQ(s.bp->num_frames(), 64u);
}

// Pages never re-referenced after load have no second chance: the hand
// evicts the first unpinned, unreferenced frame it meets, in frame order.
TEST(BufferPoolClockTest, UnreferencedPagesEvictInHandOrder) {
  Stack s = MakeStack("clk_order", 4096, 3);
  PageId a, b, c;
  {
    ASSERT_OK_AND_ASSIGN(PageGuard g, s.bp->NewPage());
    a = g.id();
  }
  {
    ASSERT_OK_AND_ASSIGN(PageGuard g, s.bp->NewPage());
    b = g.id();
  }
  {
    ASSERT_OK_AND_ASSIGN(PageGuard g, s.bp->NewPage());
    c = g.id();
  }
  // No page was ever fetched again -> zero usage everywhere. The hand
  // starts at frame 0, which holds `a`.
  { ASSERT_OK_AND_ASSIGN(PageGuard g, s.bp->NewPage()); }
  s.bp->ResetStats();
  { ASSERT_OK_AND_ASSIGN(PageGuard g, s.bp->FetchPage(b)); }
  { ASSERT_OK_AND_ASSIGN(PageGuard g, s.bp->FetchPage(c)); }
  EXPECT_EQ(s.bp->stats().misses, 0u) << "b and c should still be resident";
  { ASSERT_OK_AND_ASSIGN(PageGuard g, s.bp->FetchPage(a)); }
  EXPECT_EQ(s.bp->stats().misses, 1u) << "a (frame 0) should have been evicted";
}

// A re-referenced page survives the sweep: the hand decrements its usage
// count and moves on, evicting the first never-re-referenced page instead.
TEST(BufferPoolClockTest, SecondChanceSpareReferencedPages) {
  Stack s = MakeStack("clk_second_chance", 4096, 3);
  PageId a, b, c;
  {
    ASSERT_OK_AND_ASSIGN(PageGuard g, s.bp->NewPage());
    a = g.id();
  }
  {
    ASSERT_OK_AND_ASSIGN(PageGuard g, s.bp->NewPage());
    b = g.id();
  }
  {
    ASSERT_OK_AND_ASSIGN(PageGuard g, s.bp->NewPage());
    c = g.id();
  }
  // Re-reference a (frame 0) only.
  { ASSERT_OK_AND_ASSIGN(PageGuard g, s.bp->FetchPage(a)); }
  // Hand at frame 0: a has usage -> decremented, spared; b is evicted.
  { ASSERT_OK_AND_ASSIGN(PageGuard g, s.bp->NewPage()); }
  s.bp->ResetStats();
  { ASSERT_OK_AND_ASSIGN(PageGuard g, s.bp->FetchPage(a)); }
  { ASSERT_OK_AND_ASSIGN(PageGuard g, s.bp->FetchPage(c)); }
  EXPECT_EQ(s.bp->stats().misses, 0u) << "a was re-referenced, c not reached";
  { ASSERT_OK_AND_ASSIGN(PageGuard g, s.bp->FetchPage(b)); }
  EXPECT_EQ(s.bp->stats().misses, 1u) << "b lost its spot to the new page";
}

// When every unpinned page carries usage, enough sweeps drain them all and
// then evict — the pool never reports exhaustion.
TEST(BufferPoolClockTest, FullSweepDrainsUsageThenEvicts) {
  Stack s = MakeStack("clk_full_sweep", 4096, 3);
  std::vector<PageId> ids;
  for (int i = 0; i < 3; ++i) {
    ASSERT_OK_AND_ASSIGN(PageGuard g, s.bp->NewPage());
    ids.push_back(g.id());
  }
  for (PageId id : ids) {
    ASSERT_OK_AND_ASSIGN(PageGuard g, s.bp->FetchPage(id));
  }
  // All three frames are referenced; the allocation must still succeed.
  ASSERT_OK_AND_ASSIGN(PageGuard g, s.bp->NewPage());
  EXPECT_GT(s.bp->stats().evictions, 0u);
}

// The hand skips pinned frames even when they are unreferenced.
TEST(BufferPoolClockTest, PinnedFramesAreSkipped) {
  Stack s = MakeStack("clk_pin_skip", 4096, 2);
  ASSERT_OK_AND_ASSIGN(PageGuard pinned, s.bp->NewPage());
  PageId b;
  {
    ASSERT_OK_AND_ASSIGN(PageGuard g, s.bp->NewPage());
    b = g.id();
  }
  // Frame 0 (pinned) must be skipped; frame 1 (b) is the victim.
  { ASSERT_OK_AND_ASSIGN(PageGuard g, s.bp->NewPage()); }
  s.bp->ResetStats();
  { ASSERT_OK_AND_ASSIGN(PageGuard g, s.bp->FetchPage(pinned.id())); }
  EXPECT_EQ(s.bp->stats().hits, 1u);
  { ASSERT_OK_AND_ASSIGN(PageGuard g, s.bp->FetchPage(b)); }
  EXPECT_EQ(s.bp->stats().misses, 1u) << "b should have been evicted";
}

// Striped configuration: contents and stats stay correct when pages spread
// over many stripes and overflow forces per-stripe evictions.
TEST(BufferPoolClockTest, StripedPoolRoundTripsContents) {
  Stack s;
  s.file.reset(new nblb::testing::TempFile("clk_striped"));
  s.disk.reset(new DiskManager(s.file->path(), 4096));
  ASSERT_OK(s.disk->Open());
  s.bp.reset(new BufferPool(s.disk.get(), 64, /*num_stripes=*/8));
  ASSERT_EQ(s.bp->num_stripes(), 8u);

  constexpr int kPages = 200;  // > frames: forces eviction in every stripe
  for (int i = 0; i < kPages; ++i) {
    ASSERT_OK_AND_ASSIGN(PageGuard g, s.bp->NewPage());
    std::memset(g.data(), 'a' + (g.id() % 26), 64);
    g.MarkDirty();
  }
  for (int pass = 0; pass < 2; ++pass) {
    for (PageId id = 0; id < kPages; ++id) {
      ASSERT_OK_AND_ASSIGN(PageGuard g, s.bp->FetchPage(id));
      ASSERT_EQ(g.data()[0], 'a' + static_cast<char>(id % 26))
          << "page " << id << " pass " << pass;
    }
  }
  const BufferPoolStats st = s.bp->stats();
  EXPECT_GT(st.evictions, 0u);
  EXPECT_GT(st.dirty_writebacks, 0u);
  EXPECT_EQ(st.hits + st.misses, 2u * kPages);
  ASSERT_OK(s.bp->EvictAll());
  ASSERT_OK(s.bp->FlushAll());
}

// ResourceExhausted comes from the stripe that cannot evict, and the pool
// recovers once pins drop.
TEST(BufferPoolClockTest, ExhaustionRecoversAfterUnpin) {
  Stack s = MakeStack("clk_exhaust", 4096, 2);
  std::vector<PageGuard> guards;
  for (int i = 0; i < 2; ++i) {
    ASSERT_OK_AND_ASSIGN(PageGuard g, s.bp->NewPage());
    guards.push_back(std::move(g));
  }
  EXPECT_TRUE(s.bp->NewPage().status().IsResourceExhausted());
  guards.clear();
  ASSERT_OK_AND_ASSIGN(PageGuard g, s.bp->NewPage());
  EXPECT_TRUE(g.valid());
}

}  // namespace
}  // namespace nblb
