// Parameterized property sweeps: the B+Tree must agree with a std::map
// oracle for every combination of key size, page size and operation pattern.

#include <gtest/gtest.h>

#include <map>

#include "common/bytes.h"
#include "common/rng.h"
#include "index/btree.h"
#include "test_util.h"

namespace nblb {
namespace {

using nblb::testing::MakeStack;
using nblb::testing::Stack;

struct TreeParam {
  uint16_t key_size;
  size_t page_size;
  int num_ops;
  double delete_fraction;
  uint64_t seed;
};

std::string PrintParam(const ::testing::TestParamInfo<TreeParam>& info) {
  const TreeParam& p = info.param;
  return "k" + std::to_string(p.key_size) + "_p" +
         std::to_string(p.page_size) + "_n" + std::to_string(p.num_ops) +
         "_d" + std::to_string(static_cast<int>(p.delete_fraction * 100)) +
         "_s" + std::to_string(p.seed);
}

class BTreePropertyTest : public ::testing::TestWithParam<TreeParam> {};

std::string MakeKey(uint64_t v, uint16_t key_size, Rng* pad_rng) {
  std::string s(key_size, '\0');
  EncodeBigEndian64(s.data(), v);
  // Fill the tail with deterministic bytes derived from v so wider keys
  // exercise the full width.
  for (size_t i = 8; i < key_size; ++i) {
    s[i] = static_cast<char>((v >> (i % 8)) & 0x7f);
  }
  (void)pad_rng;
  return s;
}

TEST_P(BTreePropertyTest, AgreesWithMapOracle) {
  const TreeParam p = GetParam();
  Stack s = MakeStack("bt_prop", p.page_size, 4096);
  BTreeOptions opts;
  opts.key_size = p.key_size;
  ASSERT_OK_AND_ASSIGN(auto tree, BTree::Create(s.bp.get(), opts));

  std::map<std::string, uint64_t> oracle;
  Rng rng(p.seed);
  for (int op = 0; op < p.num_ops; ++op) {
    const uint64_t kv = rng.NextU64() % (p.num_ops / 2 + 1);
    const std::string key = MakeKey(kv, p.key_size, &rng);
    if (rng.Bernoulli(p.delete_fraction) && !oracle.empty()) {
      const bool present = oracle.count(key) != 0;
      Status st = tree->Delete(Slice(key));
      if (present) {
        ASSERT_OK(st);
        oracle.erase(key);
      } else {
        EXPECT_TRUE(st.IsNotFound());
      }
    } else {
      const bool inserted = oracle.emplace(key, op).second;
      Status st = tree->Insert(Slice(key), op);
      if (inserted) {
        ASSERT_OK(st);
      } else {
        EXPECT_TRUE(st.IsAlreadyExists());
      }
    }
  }

  // Exhaustive agreement: size, every key, and full in-order iteration.
  ASSERT_EQ(tree->num_entries(), oracle.size());
  for (const auto& [k, v] : oracle) {
    ASSERT_OK_AND_ASSIGN(uint64_t got, tree->Get(Slice(k)));
    ASSERT_EQ(got, v);
  }
  ASSERT_OK_AND_ASSIGN(BTreeIterator it, tree->SeekToFirst());
  auto oit = oracle.begin();
  while (it.Valid()) {
    ASSERT_NE(oit, oracle.end());
    ASSERT_EQ(it.key().ToString(), oit->first);
    ASSERT_EQ(it.value(), oit->second);
    ASSERT_OK(it.Next());
    ++oit;
  }
  ASSERT_EQ(oit, oracle.end());

  // Structural sanity.
  ASSERT_OK_AND_ASSIGN(BTreeStats st, tree->ComputeStats());
  ASSERT_EQ(st.entries, oracle.size());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BTreePropertyTest,
    ::testing::Values(
        // Key-size sweep (composite keys in the paper are 20+ bytes).
        TreeParam{8, 4096, 4000, 0.0, 1},
        TreeParam{16, 4096, 4000, 0.0, 2},
        TreeParam{24, 4096, 4000, 0.0, 3},
        TreeParam{64, 4096, 2000, 0.0, 4},
        // Page-size sweep.
        TreeParam{8, 1024, 3000, 0.0, 5},
        TreeParam{8, 16384, 6000, 0.0, 6},
        // Churn sweeps (deletes mixed in).
        TreeParam{8, 4096, 6000, 0.3, 7},
        TreeParam{16, 4096, 6000, 0.5, 8},
        TreeParam{8, 1024, 4000, 0.4, 9},
        // Heavy churn: mostly deletes over a small key space.
        TreeParam{8, 4096, 8000, 0.6, 10}),
    PrintParam);

}  // namespace
}  // namespace nblb
