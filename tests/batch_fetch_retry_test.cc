// Transient-abort escape-path regression tests: capacity pressure that
// clears (pins held briefly by another thread) must be ridden out by the
// bounded yield-retry loops, not surfaced as retryable ResourceExhausted —
// neither from HeapFile::GetBatch at chunk size 1 (Start side) nor from the
// B+Tree's single-page walk fetches. Before those loops existed, both
// scenarios below returned ResourceExhausted to the caller.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/bytes.h"
#include "index/btree.h"
#include "obs/event_ring.h"
#include "storage/buffer_pool.h"
#include "storage/heap_file.h"
#include "test_util.h"

namespace nblb {
namespace {

using nblb::testing::MakeStack;
using nblb::testing::Stack;

size_t CountEvents(FlightEvent code) {
  size_t n = 0;
  for (const auto& ring : FlightRecorder::Instance().SnapshotAll()) {
    for (const auto& e : ring) {
      if (e.code == code) ++n;
    }
  }
  return n;
}

/// Blocks until the flight recorder shows at least `min` events of `code`
/// (the other thread is inside its retry loop), so releasing the pins below
/// is ordered after the retry path has provably been entered.
bool WaitForEvents(FlightEvent code, size_t min) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (CountEvents(code) < min) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

TEST(BatchFetchRetryTest, HeapGetBatchRidesOutTransientPinPressure) {
  // 8-frame single-stripe pool; ~16 heap pages so there is plenty to fetch
  // that is not pinned.
  Stack s = MakeStack("retry_heap", 4096, 8);
  ASSERT_OK_AND_ASSIGN(auto heap, HeapFile::Create(s.bp.get(), 1000));
  std::vector<Rid> rids;
  for (int i = 0; i < 48; ++i) {
    ASSERT_OK_AND_ASSIGN(
        Rid rid, heap->Insert(Slice(std::string(1000, 'a' + (i % 26)))));
    rids.push_back(rid);
  }
  ASSERT_GE(heap->pages().size(), 12u);
  ASSERT_OK(s.bp->EvictAll());

  // Pin the whole pool with the first 8 heap pages.
  std::vector<PageGuard> pins;
  for (size_t i = 0; i < 8; ++i) {
    ASSERT_OK_AND_ASSIGN(PageGuard g, s.bp->FetchPage(heap->pages()[i]));
    pins.push_back(std::move(g));
  }

  // Fetch tuples living on UNPINNED pages from another thread: every
  // StartFetchPages hits ResourceExhausted, the chunk halves to 1, and the
  // fetcher must sit in the bounded yield-retry loop until the pins drop.
  std::vector<Rid> want(rids.end() - 8, rids.end());
  Status fetch_status;
  std::vector<std::string> out;
  std::vector<Status> statuses;
  std::thread fetcher(
      [&] { fetch_status = heap->GetBatch(want, &out, &statuses); });

  // Release only after the retry loop is provably running.
  EXPECT_TRUE(WaitForEvents(FlightEvent::kChunkRetry, 3));
  pins.clear();
  fetcher.join();

  ASSERT_TRUE(fetch_status.ok()) << fetch_status.ToString();
  ASSERT_EQ(out.size(), want.size());
  for (size_t i = 0; i < out.size(); ++i) {
    ASSERT_OK(statuses[i]);
    EXPECT_EQ(out[i],
              std::string(1000, static_cast<char>('a' + ((40 + i) % 26))));
  }
  EXPECT_GT(CountEvents(FlightEvent::kChunkHalve), 0u);
}

TEST(BatchFetchRetryTest, BtreeWalkRidesOutTransientPinPressure) {
  Stack s = MakeStack("retry_btree", 4096, 8);
  BTreeOptions bo;
  bo.key_size = 8;
  ASSERT_OK_AND_ASSIGN(auto tree, BTree::Create(s.bp.get(), bo));
  constexpr uint64_t kKeys = 2000;
  std::string key(8, '\0');
  for (uint64_t i = 0; i < kKeys; ++i) {
    EncodeBigEndian64(key.data(), i);
    ASSERT_OK(tree->Insert(Slice(key), i * 10));
  }
  ASSERT_OK(s.bp->EvictAll());

  // Fill the pool with the first 8 pages of the file (meta + early nodes).
  std::vector<PageGuard> pins;
  for (PageId id = 0; id < 8; ++id) {
    ASSERT_OK_AND_ASSIGN(PageGuard g, s.bp->FetchPage(id));
    pins.push_back(std::move(g));
  }

  // A batched walk from another thread needs pages that are not resident:
  // its single-page fetches (descent and leaf-chain siblings) all hit
  // ResourceExhausted and must retry until the pins drop.
  std::vector<std::string> key_storage;
  for (uint64_t k : {100u, 900u, 1500u, 1999u}) {
    std::string buf(8, '\0');
    EncodeBigEndian64(buf.data(), k);
    key_storage.push_back(buf);
  }
  std::vector<Slice> keys;
  for (const std::string& ks : key_storage) keys.emplace_back(ks);
  Status walk_status;
  std::vector<Result<uint64_t>> values;
  std::thread walker(
      [&] { walk_status = tree->GetBatch(keys, &values); });

  EXPECT_TRUE(WaitForEvents(FlightEvent::kBtreeRetry, 3));
  pins.clear();
  walker.join();

  ASSERT_TRUE(walk_status.ok()) << walk_status.ToString();
  ASSERT_EQ(values.size(), 4u);
  EXPECT_EQ(*values[0], 1000u);
  EXPECT_EQ(*values[1], 9000u);
  EXPECT_EQ(*values[2], 15000u);
  EXPECT_EQ(*values[3], 19990u);
}

}  // namespace
}  // namespace nblb
