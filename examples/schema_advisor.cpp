// Schema advisor walkthrough (§4.1 of the paper): treat declared types as
// hints, infer the real physical types from the data, and materialize the
// optimized layout — proving it loss-free.
//
//   ./build/examples/schema_advisor

#include <cstdio>

#include "encoding/advisor.h"
#include "workload/wikipedia.h"

using namespace nblb;

int main() {
  // A schema the way applications actually declare them: everything int64,
  // timestamps as strings, generous varchars.
  WikipediaScale scale;
  scale.num_pages = 5000;
  scale.revisions_per_page = 4;
  WikipediaSynthesizer synth(scale);
  const Schema schema = WikipediaSynthesizer::RevisionSchema();
  const std::vector<Row>& rows = synth.revisions();

  // 1. Analyze: per-column inferred types and waste.
  TableWasteReport report = SchemaAdvisor::Analyze("revision", schema, rows);
  std::printf("%s\n", report.ToString().c_str());

  // 2. Materialize with the recommended encodings.
  auto opt = OptimizedTable::Materialize(schema, rows);
  if (!opt.ok()) {
    std::fprintf(stderr, "materialize: %s\n", opt.status().ToString().c_str());
    return 1;
  }
  std::printf("materialized: %.2f MB -> %.2f MB (%.1fx smaller)\n",
              (*opt)->OriginalBytes() / 1e6, (*opt)->PayloadBytes() / 1e6,
              static_cast<double>((*opt)->OriginalBytes()) /
                  static_cast<double>((*opt)->PayloadBytes()));

  // 3. Verify: every decoded value is identical to the source data. The
  //    schema was a hint; the answers are unchanged.
  for (size_t r = 0; r < rows.size(); r += 97) {
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      if ((*opt)->Get(r, c) != rows[r][c]) {
        std::fprintf(stderr, "MISMATCH at row %zu col %zu\n", r, c);
        return 1;
      }
    }
  }
  std::printf("spot-check: decoded values identical to source rows\n\n");

  // 4. The headline example from the paper: the 14-byte rev_timestamp string
  //    becomes a 4-byte binary timestamp.
  const size_t ts_col = *schema.FindColumn("rev_timestamp");
  std::printf("rev_timestamp: declared %s -> %s (%.1f -> %.1f bytes/row)\n",
              TypeDeclToString(schema.column(ts_col).type,
                               schema.column(ts_col).length)
                  .c_str(),
              std::string(PhysicalEncodingToString(
                              report.columns[ts_col].inferred.encoding))
                  .c_str(),
              report.columns[ts_col].inferred.declared_bits_per_value / 8,
              report.columns[ts_col].inferred.bits_per_value / 8);
  return 0;
}
