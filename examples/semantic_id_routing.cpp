// Semantic IDs for distributed routing (§4.2 of the paper).
//
// A partitioned deployment must route every tuple id to its home partition.
// The baseline keeps a per-tuple routing table; the paper proposes embedding
// the partition in the (semantically opaque) ID. This example shows routing
// agreement, the memory gap, and re-homing a tuple by rewriting its ID.
//
//   ./build/examples/semantic_id_routing

#include <cstdio>

#include "common/rng.h"
#include "semid/reduction.h"
#include "semid/routing.h"
#include "workload/wikipedia.h"

using namespace nblb;

int main() {
  constexpr unsigned kPartitionBits = 8;  // up to 256 partitions
  constexpr uint32_t kPartitions = 16;
  constexpr size_t kTuples = 500000;

  SemanticIdCodec codec(kPartitionBits);
  EmbeddedRouter embedded(codec);
  TableRouter table;

  // Assign tuples to partitions (e.g. the output of a workload-driven
  // partitioner like Schism, which the paper cites).
  Rng rng(7);
  std::vector<uint64_t> ids;
  ids.reserve(kTuples);
  for (size_t i = 0; i < kTuples; ++i) {
    const uint32_t part = static_cast<uint32_t>(rng.Uniform(kPartitions));
    const uint64_t id = codec.Encode(part, i);
    table.Add(id, part);
    ids.push_back(id);
  }

  // Both routers agree on every tuple.
  for (uint64_t id : ids) {
    if (*table.Route(id) != *embedded.Route(id)) {
      std::fprintf(stderr, "router disagreement!\n");
      return 1;
    }
  }
  std::printf("routing agreement on %zu tuples\n", ids.size());
  std::printf("  routing table: %.2f MB\n", table.MemoryBytes() / 1e6);
  std::printf("  embedded IDs : %zu bytes (a shift and a mask)\n",
              embedded.MemoryBytes());

  // Re-homing: move a tuple to another partition by rewriting its ID — no
  // routing-table mutation, no directory update.
  const uint64_t old_id = ids[123];
  const uint64_t new_id = codec.WithPartition(old_id, 3);
  std::printf("\nre-home tuple: id %llu (partition %u) -> id %llu "
              "(partition %u), local part preserved: %s\n",
              static_cast<unsigned long long>(old_id),
              codec.PartitionOf(old_id),
              static_cast<unsigned long long>(new_id),
              codec.PartitionOf(new_id),
              codec.LocalOf(old_id) == codec.LocalOf(new_id) ? "yes" : "no");

  // ID-reduction (§4.2): if rev_text_id is functionally determined by
  // rev_id, the column can be dropped outright.
  WikipediaScale scale;
  scale.num_pages = 2000;
  scale.revisions_per_page = 3;
  WikipediaSynthesizer synth(scale);
  const Schema rev_schema = WikipediaSynthesizer::RevisionSchema();
  const size_t rev_id = *rev_schema.FindColumn("rev_id");
  const size_t text_id = *rev_schema.FindColumn("rev_text_id");
  if (HasFunctionalDependency(rev_schema, synth.revisions(), {rev_id},
                              text_id)) {
    std::printf("\nFD detected: rev_id -> rev_text_id; dropping the column "
                "saves %zu bytes/row x %zu rows = %.2f MB\n",
                DroppedColumnBytesPerRow(rev_schema, text_id),
                synth.revisions().size(),
                DroppedColumnBytesPerRow(rev_schema, text_id) *
                    synth.revisions().size() / 1e6);
  }
  return 0;
}
