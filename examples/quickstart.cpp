// Quickstart: create a database, a table with an index cache, and run point
// lookups that are answered straight from B+Tree free space.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "exec/database.h"

using namespace nblb;

int main() {
  // 1. Open a database (one backing file + buffer pool).
  DatabaseOptions dbo;
  dbo.path = "/tmp/nblb_quickstart.db";
  std::remove(dbo.path.c_str());
  dbo.buffer_pool_frames = 1024;
  auto db_result = Database::Open(dbo);
  if (!db_result.ok()) {
    std::fprintf(stderr, "open: %s\n", db_result.status().ToString().c_str());
    return 1;
  }
  auto db = std::move(*db_result);

  // 2. Declare a schema. Every type is fixed width (see catalog/type.h).
  Schema schema({{"user_id", TypeId::kInt64, 0},
                 {"name", TypeId::kVarchar, 24},
                 {"karma", TypeId::kInt32, 0},
                 {"bio", TypeId::kVarchar, 200}});

  // 3. Create the table: primary key on user_id, and replicate (name, karma)
  //    into the index cache — the paper's "no bits left behind" trick: those
  //    copies live in the B+Tree leaves' free space, costing nothing.
  TableOptions topts;
  topts.key_columns = {0};
  topts.cached_columns = {1, 2};
  auto table_result = db->CreateTable("users", schema, topts);
  if (!table_result.ok()) {
    std::fprintf(stderr, "create: %s\n",
                 table_result.status().ToString().c_str());
    return 1;
  }
  Table* users = *table_result;

  // 4. Insert some rows.
  for (int64_t id = 1; id <= 1000; ++id) {
    Row row = {Value::Int64(id), Value::Varchar("user" + std::to_string(id)),
               Value::Int32(static_cast<int32_t>(id % 500)),
               Value::Varchar("bio text for user " + std::to_string(id))};
    if (Status s = users->Insert(row); !s.ok()) {
      std::fprintf(stderr, "insert: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  // 5. Point lookups. The first projected lookup fetches the heap tuple and
  //    seeds the cache; repeats are answered from the index page alone.
  const std::vector<size_t> name_and_karma = {1, 2};
  for (int repeat = 0; repeat < 3; ++repeat) {
    auto row = users->LookupProjected({Value::Int64(42)}, name_and_karma);
    if (!row.ok()) return 1;
    std::printf("lookup #%d: name=%s karma=%s\n", repeat + 1,
                (*row)[0].ToString().c_str(), (*row)[1].ToString().c_str());
  }

  // 6. Stats show where the answers came from.
  const TableStats& st = users->stats();
  std::printf("\nlookups=%llu answered_from_cache=%llu heap_fetches=%llu\n",
              static_cast<unsigned long long>(st.lookups),
              static_cast<unsigned long long>(st.answered_from_cache),
              static_cast<unsigned long long>(st.heap_fetches));

  // 7. Updates invalidate cached copies before they can be served stale.
  Row updated = {Value::Int64(42), Value::Varchar("renamed"),
                 Value::Int32(9999), Value::Varchar("new bio")};
  if (Status s = users->UpdateByKey({Value::Int64(42)}, updated); !s.ok()) {
    return 1;
  }
  auto fresh = users->LookupProjected({Value::Int64(42)}, name_and_karma);
  if (!fresh.ok()) return 1;
  std::printf("after update: name=%s karma=%s (never stale)\n",
              (*fresh)[0].ToString().c_str(), (*fresh)[1].ToString().c_str());

  std::remove(dbo.path.c_str());
  return 0;
}
