// Hot/cold clustering of Wikipedia's revision table (§3.1 of the paper).
//
// 99.9% of revision reads hit the 5% of tuples that are each page's latest
// revision — but those tuples are scattered roughly one per data page. This
// example measures page utilization before/after access-based clustering and
// the buffer-pool miss rate with a dedicated hot partition.
//
//   ./build/examples/hot_cold_revisions

#include <cstdio>
#include <unordered_set>

#include "exec/database.h"
#include "partition/clusterer.h"
#include "partition/partitioned_table.h"
#include "workload/wikipedia.h"

using namespace nblb;

int main() {
  DatabaseOptions dbo;
  dbo.path = "/tmp/nblb_example_revisions.db";
  std::remove(dbo.path.c_str());
  dbo.page_size = 4096;
  dbo.buffer_pool_frames = 256;  // small on purpose: locality matters
  auto dbr = Database::Open(dbo);
  if (!dbr.ok()) return 1;
  auto db = std::move(*dbr);

  WikipediaScale scale;
  scale.num_pages = 1000;
  scale.revisions_per_page = 20;
  WikipediaSynthesizer synth(scale);

  Schema schema = WikipediaSynthesizer::RevisionSchema();
  TableOptions topts;
  topts.key_columns = {0};  // rev_id
  topts.enable_index_cache = false;
  auto tr = db->CreateTable("revision", schema, topts);
  if (!tr.ok()) return 1;
  Table* rev = *tr;
  for (const Row& row : synth.revisions()) {
    if (!rev->Insert(row).ok()) return 1;
  }

  // How scattered are the hot tuples?
  auto hot_pages = [&]() {
    std::unordered_set<PageId> pages;
    for (int64_t id : synth.latest_revision_ids()) {
      auto enc = rev->key_codec().EncodeValues({Value::Int64(id)});
      auto tid = rev->index()->Get(Slice(*enc));
      if (tid.ok()) pages.insert(Rid::FromU64(*tid).page);
    }
    return pages.size();
  };
  const size_t hot = synth.latest_revision_ids().size();
  std::printf("%zu hot tuples (latest revisions) out of %zu rows\n", hot,
              synth.revisions().size());
  std::printf("before clustering: hot tuples spread over %zu heap pages "
              "(%.1f%% of slots on those pages are hot)\n",
              hot_pages(),
              100.0 * hot / (hot_pages() * rev->heap()->SlotsPerPage()));

  // Cluster: delete-then-append every hot tuple (§3.1).
  std::vector<std::vector<Value>> hot_keys;
  for (int64_t id : synth.latest_revision_ids()) {
    hot_keys.push_back({Value::Int64(id)});
  }
  ForwardingTable fwd;
  auto report = Clusterer::ClusterHotTuples(rev, hot_keys, 1.0, &fwd);
  if (!report.ok()) return 1;
  std::printf("after clustering %llu tuples: hot tuples packed into %zu "
              "pages; %zu forwarding entries recorded\n",
              static_cast<unsigned long long>(report->relocated), hot_pages(),
              fwd.size());

  // Replay the skewed read trace against table vs hot partition.
  std::unordered_set<std::string> hot_key_set;
  for (int64_t id : synth.latest_revision_ids()) {
    hot_key_set.insert(*rev->key_codec().EncodeValues({Value::Int64(id)}));
  }
  auto ptr = PartitionedTable::BuildFromTable(db->buffer_pool(), rev,
                                              hot_key_set);
  if (!ptr.ok()) return 1;
  auto pt = std::move(*ptr);

  const auto trace = synth.RevisionLookupTrace(5000, 0.999);
  (void)db->buffer_pool()->EvictAll();
  db->buffer_pool()->ResetStats();
  for (int64_t id : trace) {
    if (!rev->LookupProjected({Value::Int64(id)}, {1}).ok()) return 1;
  }
  const double clustered_miss =
      1.0 - db->buffer_pool()->stats().HitRate();

  (void)db->buffer_pool()->EvictAll();
  db->buffer_pool()->ResetStats();
  for (int64_t id : trace) {
    if (!pt->LookupProjected({Value::Int64(id)}, {1}).ok()) return 1;
  }
  const double partitioned_miss =
      1.0 - db->buffer_pool()->stats().HitRate();

  std::printf("\nbuffer-pool miss rate on the 99.9%%-hot trace:\n");
  std::printf("  clustered table : %.2f%%\n", clustered_miss * 100);
  std::printf("  hot partition   : %.2f%% (its index+data fit the pool)\n",
              partitioned_miss * 100);
  std::remove(dbo.path.c_str());
  return 0;
}
