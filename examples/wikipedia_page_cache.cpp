// Wikipedia page-lookup scenario (§2.1.4 of the paper).
//
// Builds the MediaWiki `page` table with the composite name_title index
// (namespace, title), caches the 4 fields the dominant query class projects,
// replays a zipf-skewed lookup trace, and reports how much of the workload
// was answered without ever touching a heap page.
//
//   ./build/examples/wikipedia_page_cache

#include <cstdio>

#include "exec/database.h"
#include "workload/wikipedia.h"

using namespace nblb;

int main() {
  DatabaseOptions dbo;
  dbo.path = "/tmp/nblb_example_wiki.db";
  std::remove(dbo.path.c_str());
  dbo.buffer_pool_frames = 8192;
  auto dbr = Database::Open(dbo);
  if (!dbr.ok()) return 1;
  auto db = std::move(*dbr);

  // Synthesize a scaled-down Wikipedia (see workload/wikipedia.h).
  WikipediaScale scale;
  scale.num_pages = 10000;
  scale.revisions_per_page = 2;
  WikipediaSynthesizer synth(scale);

  // Index-friendly page schema: key (namespace, title), 4 cached fields.
  Schema schema({{"page_namespace", TypeId::kInt32, 0},
                 {"page_title", TypeId::kVarchar, 24},
                 {"page_id", TypeId::kInt64, 0},
                 {"page_latest", TypeId::kInt64, 0},
                 {"page_is_redirect", TypeId::kBool, 0},
                 {"page_len", TypeId::kInt32, 0}});
  TableOptions topts;
  topts.key_columns = {0, 1};
  topts.cached_columns = {2, 3, 4, 5};
  auto tr = db->CreateTable("page", schema, topts);
  if (!tr.ok()) return 1;
  Table* page = *tr;

  for (const Row& p : synth.pages()) {
    std::string title = p[2].AsString();
    if (title.size() > 24) title.resize(24);
    Row row = {Value::Int32(static_cast<int32_t>(p[1].AsInt())),
               Value::Varchar(title),
               p[0],
               p[9],
               Value::Bool(p[5].AsInt() != 0),
               Value::Int32(static_cast<int32_t>(p[10].AsInt()))};
    if (!page->Insert(row).ok()) return 1;
  }

  // The dominant MediaWiki query:
  //   SELECT page_id, page_latest, page_is_redirect, page_len
  //   FROM page WHERE page_namespace = ? AND page_title = ?
  const std::vector<size_t> projection = {2, 3, 4, 5};
  std::printf("projection covered by key+cache: %s\n",
              page->ProjectionCoveredByIndex(projection) ? "yes" : "no");

  const auto trace = synth.PageLookupTrace(50000);
  for (uint64_t pidx : trace) {
    const Row& p = synth.pages()[pidx];
    std::string title = p[2].AsString();
    if (title.size() > 24) title.resize(24);
    auto r = page->LookupProjected(
        {Value::Int32(static_cast<int32_t>(p[1].AsInt())),
         Value::Varchar(title)},
        projection);
    if (!r.ok()) return 1;
  }

  const TableStats& st = page->stats();
  const IndexCacheStats& cs = page->cache()->stats();
  std::printf("replayed %llu zipf lookups over %zu pages\n",
              static_cast<unsigned long long>(st.lookups),
              synth.pages().size());
  std::printf("  answered from index cache: %llu (%.1f%%)\n",
              static_cast<unsigned long long>(st.answered_from_cache),
              100.0 * st.answered_from_cache / static_cast<double>(st.lookups));
  std::printf("  heap fetches:              %llu\n",
              static_cast<unsigned long long>(st.heap_fetches));
  std::printf("  cache: probes=%llu hits=%llu populates=%llu evictions=%llu\n",
              static_cast<unsigned long long>(cs.probes),
              static_cast<unsigned long long>(cs.hits),
              static_cast<unsigned long long>(cs.populates),
              static_cast<unsigned long long>(cs.evictions));

  auto idx_stats = page->index()->ComputeStats();
  if (idx_stats.ok()) {
    std::printf("  index: %llu leaves at fill=%.2f, %llu free bytes recycled "
                "as cache\n",
                static_cast<unsigned long long>(idx_stats->leaf_pages),
                idx_stats->avg_leaf_fill,
                static_cast<unsigned long long>(idx_stats->leaf_free_bytes));
  }
  std::remove(dbo.path.c_str());
  return 0;
}
