// §3.2 vertical partitioning: "separating the cached fields from the
// uncached fields can complement index caching by minimizing the amount of
// redundant data read into memory when queries access fields not found in
// the index ... Weighing the benefit of vertical partitioning against cost
// of merging the partitions together makes this problem non-trivial."
//
// We split the revision table into a hot vertical partition (the fields the
// dominant query class touches) and a cold partition (everything else), and
// sweep the fraction of queries that need cold fields. Reported: heap bytes
// read per query and ms/query under the simulated disk — the crossover the
// paper calls "non-trivial and interesting" is directly visible.

#include <cstdio>
#include <string>

#include "common/vclock.h"
#include "exec/database.h"
#include "workload/wikipedia.h"

namespace {

using namespace nblb;

constexpr size_t kRows = 40000;
constexpr size_t kQueries = 2000;
constexpr size_t kFrames = 256;

Schema FullSchema() {
  return Schema({{"rev_id", TypeId::kInt64, 0},
                 {"rev_page", TypeId::kInt64, 0},
                 {"rev_len", TypeId::kInt64, 0},
                 {"rev_comment", TypeId::kVarchar, 160},
                 {"rev_user_text", TypeId::kVarchar, 160},
                 {"rev_timestamp", TypeId::kChar, 14}});
}

Schema HotSchema() {
  return Schema({{"rev_id", TypeId::kInt64, 0},
                 {"rev_page", TypeId::kInt64, 0},
                 {"rev_len", TypeId::kInt64, 0}});
}

Schema ColdSchema() {
  return Schema({{"rev_id", TypeId::kInt64, 0},
                 {"rev_comment", TypeId::kVarchar, 160},
                 {"rev_user_text", TypeId::kVarchar, 160},
                 {"rev_timestamp", TypeId::kChar, 14}});
}

Row FullRow(int64_t id, Rng* rng) {
  return {Value::Int64(id),
          Value::Int64(id % 5000),
          Value::Int64(static_cast<int64_t>(rng->Uniform(9000))),
          Value::Varchar(rng->NextString(100)),
          Value::Varchar("user_" + std::to_string(rng->Uniform(1000))),
          Value::Char("20110415093000")};
}

}  // namespace

int main() {
  std::printf(
      "=== nblb bench: §3.2 — vertical partitioning vs full rows ===\n\n");

  // Build both layouts inside one database file.
  DatabaseOptions dbo;
  dbo.path = "/tmp/nblb_sec32.db";
  std::remove(dbo.path.c_str());
  dbo.page_size = 4096;
  dbo.buffer_pool_frames = kFrames;
  dbo.enable_latency_model = true;
  auto dbr = Database::Open(dbo);
  if (!dbr.ok()) return 1;
  auto db = std::move(*dbr);

  TableOptions key_only;
  key_only.key_columns = {0};
  key_only.enable_index_cache = false;

  auto full_r = db->CreateTable("rev_full", FullSchema(), key_only);
  auto hot_r = db->CreateTable("rev_hot", HotSchema(), key_only);
  auto cold_r = db->CreateTable("rev_cold", ColdSchema(), key_only);
  if (!full_r.ok() || !hot_r.ok() || !cold_r.ok()) return 1;
  Table* full = *full_r;
  Table* hot = *hot_r;
  Table* cold = *cold_r;

  Rng rng(5);
  for (size_t i = 1; i <= kRows; ++i) {
    Row row = FullRow(static_cast<int64_t>(i), &rng);
    if (!full->Insert(row).ok()) return 1;
    if (!hot->Insert({row[0], row[1], row[2]}).ok()) return 1;
    if (!cold->Insert({row[0], row[3], row[4], row[5]}).ok()) return 1;
  }

  std::printf("row widths: full=%zu B, hot=%zu B, cold=%zu B\n\n",
              FullSchema().row_size(), HotSchema().row_size(),
              ColdSchema().row_size());
  std::printf("%-18s %-16s %-16s %-14s %-14s\n", "cold_query_pct",
              "full_bytes/q", "vert_bytes/q", "full_ms/q", "vert_ms/q");

  ZipfianGenerator zipf(kRows, 0.7, 99);
  for (int cold_pct : {0, 5, 10, 25, 50, 75, 100}) {
    Rng coin(1000 + cold_pct);
    // Layout A: full rows.
    (void)db->buffer_pool()->EvictAll();
    db->clock()->Reset();
    uint64_t full_bytes = 0;
    CombinedTimer tf(db->clock());
    ZipfianGenerator za(kRows, 0.7, 99);
    Rng ca(1000 + cold_pct);
    for (size_t q = 0; q < kQueries; ++q) {
      const int64_t id = static_cast<int64_t>(za.Next() + 1);
      const bool needs_cold = ca.Bernoulli(cold_pct / 100.0);
      auto r = needs_cold
                   ? full->LookupProjected({Value::Int64(id)}, {1, 2, 3})
                   : full->LookupProjected({Value::Int64(id)}, {1, 2});
      if (!r.ok()) return 1;
      full_bytes += FullSchema().row_size();
    }
    const double full_ms = tf.ElapsedNs() / 1e6 / kQueries;

    // Layout B: vertical partitions (hot always; cold only when needed).
    (void)db->buffer_pool()->EvictAll();
    db->clock()->Reset();
    uint64_t vert_bytes = 0;
    CombinedTimer tv(db->clock());
    ZipfianGenerator zb(kRows, 0.7, 99);
    Rng cb(1000 + cold_pct);
    for (size_t q = 0; q < kQueries; ++q) {
      const int64_t id = static_cast<int64_t>(zb.Next() + 1);
      const bool needs_cold = cb.Bernoulli(cold_pct / 100.0);
      auto r = hot->LookupProjected({Value::Int64(id)}, {1, 2});
      if (!r.ok()) return 1;
      vert_bytes += HotSchema().row_size();
      if (needs_cold) {
        auto r2 = cold->LookupProjected({Value::Int64(id)}, {1});
        if (!r2.ok()) return 1;
        vert_bytes += ColdSchema().row_size();
      }
    }
    const double vert_ms = tv.ElapsedNs() / 1e6 / kQueries;

    std::printf("%-18d %-16.1f %-16.1f %-14.3f %-14.3f\n", cold_pct,
                static_cast<double>(full_bytes) / kQueries,
                static_cast<double>(vert_bytes) / kQueries, full_ms, vert_ms);
  }
  std::printf(
      "\nshape: vertical partitioning wins while few queries touch cold\n"
      "fields (hot rows pack ~14x denser, so the working set fits the\n"
      "buffer pool); as the cold fraction grows, the second lookup's merge\n"
      "cost erodes and eventually reverses the win — the trade-off §3.2\n"
      "calls non-trivial.\n");
  std::remove(dbo.path.c_str());
  return 0;
}
