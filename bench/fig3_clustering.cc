// Figure 3: "Cost per query" for Wikipedia's revision table under
// access-based clustering (§3.1). Four configurations:
//
//   0%        — revisions in insertion order; hot (latest) revisions are
//               scattered, roughly one per data page
//   54%       — 54% of the hot tuples relocated to the table's tail
//   100%      — all hot tuples clustered
//   Partition — a separate hot partition whose index + data fit in RAM
//
// The paper measured 1.8x (54%), 2.15x (100%) and 8.4x (Partition, because
// "reducing the index size ... allows the entire index to fit in RAM").
// We reproduce the regime at laptop scale: the buffer pool is sized so the
// full index cannot stay resident but the hot partition can; disk reads are
// charged 5 ms on a virtual clock (DESIGN.md §4).

#include <cstdio>
#include <unordered_set>

#include "common/vclock.h"
#include "exec/database.h"
#include "partition/clusterer.h"
#include "partition/partitioned_table.h"
#include "workload/wikipedia.h"

namespace {

using namespace nblb;

// Trimmed revision schema: same columns, smaller varchar capacities so heap
// pages hold ~20 rows and the experiment stays in seconds.
Schema BenchRevisionSchema() {
  return Schema({
      {"rev_id", TypeId::kInt64, 0},
      {"rev_page", TypeId::kInt64, 0},
      {"rev_text_id", TypeId::kInt64, 0},
      {"rev_comment", TypeId::kVarchar, 48},
      {"rev_user", TypeId::kInt64, 0},
      {"rev_user_text", TypeId::kVarchar, 32},
      {"rev_timestamp", TypeId::kChar, 14},
      {"rev_minor_edit", TypeId::kInt64, 0},
      {"rev_deleted", TypeId::kInt64, 0},
      {"rev_len", TypeId::kInt64, 0},
      {"rev_parent_id", TypeId::kInt64, 0},
  });
}

Row TrimRow(const Row& r) {
  Row out = r;
  std::string comment = r[3].AsString();
  if (comment.size() > 48) comment.resize(48);
  out[3] = Value::Varchar(comment);
  std::string user = r[5].AsString();
  if (user.size() > 32) user.resize(32);
  out[5] = Value::Varchar(user);
  return out;
}

struct RunResult {
  double ms_per_query;
  double bp_hit_rate;
  uint64_t disk_reads;
};

constexpr size_t kPageSize = 4096;
constexpr size_t kFrames = 450;
constexpr size_t kQueries = 3000;

RunResult Replay(Database* db, const std::vector<int64_t>& trace,
                 const std::function<void(int64_t)>& lookup) {
  (void)db->buffer_pool()->EvictAll();
  db->buffer_pool()->ResetStats();
  db->disk()->ResetStats();
  db->clock()->Reset();
  CombinedTimer timer(db->clock());
  for (int64_t id : trace) lookup(id);
  RunResult r;
  r.ms_per_query = static_cast<double>(timer.ElapsedNs()) / 1e6 /
                   static_cast<double>(trace.size());
  r.bp_hit_rate = db->buffer_pool()->stats().HitRate();
  r.disk_reads = db->disk()->stats().reads;
  return r;
}

}  // namespace

int main() {
  std::printf("=== nblb bench: Figure 3 — cost per query (revision table) ===\n\n");

  WikipediaScale scale;
  scale.num_pages = 5000;
  scale.revisions_per_page = 20;  // hot fraction = 5% of revisions
  WikipediaSynthesizer synth(scale);
  const auto trace = synth.RevisionLookupTrace(kQueries, 0.999);

  const Schema schema = BenchRevisionSchema();
  std::printf("setup: %zu revisions, %zu hot (latest), %zu-frame buffer pool "
              "(%zu KiB), 5 ms simulated disk seek\n\n",
              synth.revisions().size(), synth.latest_revision_ids().size(),
              kFrames, kFrames * kPageSize / 1024);

  std::printf("%-12s %-14s %-12s %-12s %-10s\n", "config", "ms/query",
              "speedup", "bp_hit", "disk_reads");

  double baseline_ms = 0;
  for (const char* config : {"0%", "54%", "100%", "Partition"}) {
    DatabaseOptions dbo;
    dbo.path = std::string("/tmp/nblb_fig3_") + (config[0] == 'P' ? "part"
                                                                   : config);
    std::remove(dbo.path.c_str());
    dbo.page_size = kPageSize;
    dbo.buffer_pool_frames = kFrames;
    dbo.enable_latency_model = true;
    auto dbr = Database::Open(dbo);
    if (!dbr.ok()) {
      std::fprintf(stderr, "open failed: %s\n", dbr.status().ToString().c_str());
      return 1;
    }
    auto db = std::move(*dbr);

    TableOptions topts;
    topts.key_columns = {0};
    topts.enable_index_cache = false;  // isolate the clustering effect
    auto tr = db->CreateTable("revision", schema, topts);
    if (!tr.ok()) return 1;
    Table* rev = *tr;
    for (const Row& row : synth.revisions()) {
      if (!rev->Insert(TrimRow(row)).ok()) return 1;
    }

    std::unique_ptr<PartitionedTable> pt;
    if (std::string(config) == "Partition") {
      std::unordered_set<std::string> hot;
      for (int64_t id : synth.latest_revision_ids()) {
        hot.insert(*rev->key_codec().EncodeValues({Value::Int64(id)}));
      }
      auto ptr = PartitionedTable::BuildFromTable(db->buffer_pool(), rev, hot);
      if (!ptr.ok()) return 1;
      pt = std::move(*ptr);
    } else {
      double fraction = 0;
      if (std::string(config) == "54%") fraction = 0.54;
      if (std::string(config) == "100%") fraction = 1.0;
      if (fraction > 0) {
        std::vector<std::vector<Value>> hot_keys;
        for (int64_t id : synth.latest_revision_ids()) {
          hot_keys.push_back({Value::Int64(id)});
        }
        if (!Clusterer::ClusterHotTuples(rev, hot_keys, fraction).ok()) {
          return 1;
        }
      }
    }

    RunResult result = Replay(db.get(), trace, [&](int64_t id) {
      auto r = pt ? pt->LookupProjected({Value::Int64(id)}, {1, 9})
                  : rev->LookupProjected({Value::Int64(id)}, {1, 9});
      if (!r.ok()) std::abort();
    });
    if (baseline_ms == 0) baseline_ms = result.ms_per_query;
    std::printf("%-12s %-14.3f %-12.2f %-12.3f %-10llu\n", config,
                result.ms_per_query, baseline_ms / result.ms_per_query,
                result.bp_hit_rate,
                static_cast<unsigned long long>(result.disk_reads));
    std::remove(dbo.path.c_str());
  }

  std::printf(
      "\npaper reference: 1.8x at 54%% clustering, 2.15x at 100%%, 8.4x with\n"
      "a dedicated hot partition (its index fits in RAM; the full one does\n"
      "not).\n");
  return 0;
}
