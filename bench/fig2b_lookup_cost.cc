// Figure 2(b): "Query performance as index cache and buffer pool hit rates
// vary." Cost per lookup (ms, log scale in the paper) against the index
// cache hit rate (x-axis) for buffer-pool hit rates {0, 60, 90, 96, 100}%.
//
// Methodology is the paper's own (§2.1.4): index and buffer pool are large
// in-memory arrays; an index-cache miss costs a random buffer-pool page
// access; a buffer-pool miss costs a disk page read. Our disk is a
// deterministic latency model on a virtual clock (DESIGN.md §4): 5 ms seek +
// 10 ns/byte transfer, a 2011-era SATA disk.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "sim/micro_sim.h"

namespace {

constexpr size_t kLookupsPerPoint = 40000;

void PrintFigure() {
  using nblb::MicroSim;
  using nblb::MicroSimOptions;
  using nblb::MicroSimResult;

  const int bp_rates[] = {0, 60, 90, 96, 100};
  std::printf("=== nblb bench: Figure 2(b) — cost/lookup (ms) ===\n\n");
  std::printf("%-16s", "cache_hit_pct");
  for (int bp : bp_rates) std::printf(" bp=%-3d%%    ", bp);
  std::printf("\n");
  for (int chr = 0; chr <= 100; chr += 10) {
    std::printf("%-16d", chr);
    for (int bp : bp_rates) {
      MicroSimOptions o;
      o.index_cache_hit_rate = chr / 100.0;
      o.bp_hit_rate = bp / 100.0;
      o.seed = 42 + chr + bp;
      MicroSim sim(o);
      MicroSimResult r = sim.Run(kLookupsPerPoint);
      benchmark::DoNotOptimize(sim.checksum());
      std::printf(" %-10.6f", r.AvgCostMs());
    }
    std::printf("\n");
  }
  std::printf(
      "\npaper reference: monotone drop in cost as either hit rate rises;\n"
      "at bp=100%% the gap between cache-hit 0%% and 100%% is ~2.7x.\n\n");
}

// Micro-benchmarks of the three cost regimes, for google-benchmark output.
void BM_LookupCacheHit(benchmark::State& state) {
  nblb::MicroSimOptions o;
  o.index_cache_hit_rate = 1.0;
  nblb::MicroSim sim(o);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.Run(1000).TotalNs());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_LookupCacheHit);

void BM_LookupBufferPoolHit(benchmark::State& state) {
  nblb::MicroSimOptions o;
  o.index_cache_hit_rate = 0.0;
  o.bp_hit_rate = 1.0;
  nblb::MicroSim sim(o);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.Run(1000).TotalNs());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_LookupBufferPoolHit);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
