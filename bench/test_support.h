// Small helpers shared by the benchmark binaries (temp-file storage stacks).

#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace nblb::bench {

/// A disk manager + buffer pool over a /tmp file, cleaned up on destruction.
struct TempDb {
  std::string path;
  std::unique_ptr<DiskManager> disk;
  std::unique_ptr<BufferPool> bp;

  explicit TempDb(const std::string& tag, size_t page_size = 4096,
                  size_t frames = 8192) {
    static int counter = 0;
    path = "/tmp/nblb_bench_" + tag + "_" + std::to_string(counter++) + ".db";
    std::remove(path.c_str());
    disk.reset(new DiskManager(path, page_size));
    if (!disk->Open().ok()) std::abort();
    bp.reset(new BufferPool(disk.get(), frames));
  }

  ~TempDb() {
    bp.reset();
    disk.reset();
    std::remove(path.c_str());
  }
};

}  // namespace nblb::bench
