// §4.1 encoding-waste analysis: "We analyzed several of the largest tables
// in the Cartel and Wikipedia databases and found that they can all reduce
// their physical encoding waste by 16% to 83% ... the total amounted to over
// 23.5 GB (20%) of waste in the tables we inspected."
//
// This bench runs the SchemaAdvisor over synthetic tables with the same
// pathologies (14-byte string timestamps, int64 booleans, tiny-range ints,
// over-declared varchars) and prints the per-table waste table, then
// materializes each table with the recommended encodings to show the
// realized (not just estimated) savings.

#include <cstdio>

#include "encoding/advisor.h"
#include "workload/wikipedia.h"

int main() {
  using namespace nblb;
  std::printf("=== nblb bench: §4.1 — automated schema optimization ===\n\n");

  WikipediaScale scale;
  scale.num_pages = 20000;
  scale.revisions_per_page = 5;
  WikipediaSynthesizer synth(scale);

  struct Entry {
    std::string name;
    Schema schema;
    std::vector<Row> rows;
  };
  std::vector<Entry> tables;
  tables.push_back({"wikipedia.page", WikipediaSynthesizer::PageSchema(),
                    synth.pages()});
  tables.push_back({"wikipedia.revision",
                    WikipediaSynthesizer::RevisionSchema(),
                    synth.revisions()});
  tables.push_back({"cartel.locations",
                    WikipediaSynthesizer::CartelLocationSchema(),
                    synth.GenerateCartelLocationRows(100000)});
  tables.push_back({"cartel.obd", WikipediaSynthesizer::CartelObdSchema(),
                    synth.GenerateCartelObdRows(100000)});

  DatabaseWasteReport db_report;
  std::printf("%-22s %10s %14s %14s %8s %16s\n", "table", "rows",
              "declared_MB", "optimal_MB", "waste%", "materialized_MB");
  for (const auto& t : tables) {
    TableWasteReport report = SchemaAdvisor::Analyze(t.name, t.schema, t.rows);
    auto opt = OptimizedTable::Materialize(t.schema, t.rows);
    if (!opt.ok()) {
      std::fprintf(stderr, "materialize failed: %s\n",
                   opt.status().ToString().c_str());
      return 1;
    }
    std::printf("%-22s %10zu %14.2f %14.2f %7.1f%% %16.2f\n", t.name.c_str(),
                t.rows.size(), report.declared_bytes() / 1e6,
                report.optimal_bytes() / 1e6, 100 * report.WasteFraction(),
                static_cast<double>((*opt)->PayloadBytes()) / 1e6);
    db_report.tables.push_back(std::move(report));
  }
  std::printf("\n%-22s %10s %14.2f %14.2f %7.1f%%\n", "ALL TABLES", "",
              db_report.declared_bytes() / 1e6, db_report.optimal_bytes() / 1e6,
              100 * db_report.WasteFraction());

  std::printf("\nper-column detail:\n\n");
  for (const auto& t : db_report.tables) {
    std::printf("%s\n", t.ToString().c_str());
  }
  std::printf(
      "paper reference: per-table waste between 16%% and 83%%; ~20%% of all\n"
      "inspected bytes wasted. Our synthetic tables carry the same\n"
      "pathologies and land in (or slightly above) that band; the\n"
      "materialized column shows the savings are realizable, not just\n"
      "estimated.\n");
  return 0;
}
