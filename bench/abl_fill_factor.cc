// Ablation A4: B+Tree fill factor vs cache capacity vs insert cost.
//
// §5: "it may be time to revisit canonical designs (e.g., B+Trees with a 68%
// fill factor) in favor of more efficient ones". The index cache flips the
// trade-off: free space is no longer dead weight. This bench bulk-loads the
// same data at different fill factors and reports (a) leaf pages, (b) cache
// slots recycled out of the free space, (c) splits caused by a subsequent
// insert burst — the three corners of the trade-off.

#include <cstdio>

#include "common/bytes.h"
#include "exec/database.h"
#include "index/btree.h"
#include "test_support.h"

namespace {

using namespace nblb;

std::string K(uint64_t v) {
  std::string s(8, '\0');
  EncodeBigEndian64(s.data(), v);
  return s;
}

}  // namespace

int main() {
  std::printf("=== nblb ablation: fill factor vs cache capacity ===\n\n");

  constexpr uint64_t kN = 100000;
  constexpr uint16_t kItemSize = 25;
  std::vector<std::pair<std::string, uint64_t>> sorted;
  sorted.reserve(kN);
  for (uint64_t i = 0; i < kN; ++i) sorted.emplace_back(K(i * 2), i);

  std::printf("%-8s %-12s %-14s %-14s %-14s\n", "fill", "leaf_pages",
              "cache_slots", "slots/entry", "splits_after_10k_inserts");
  for (double fill : {0.50, 0.68, 0.80, 0.90, 1.00}) {
    bench::TempDb tdb("ablfill");
    BTreeOptions opts;
    opts.key_size = 8;
    opts.cache_item_size = kItemSize;
    auto tr = BTree::Create(tdb.bp.get(), opts);
    if (!tr.ok()) return 1;
    auto tree = std::move(*tr);
    if (!tree->BulkLoad(sorted, fill).ok()) return 1;

    auto st1 = tree->ComputeStats();
    if (!st1.ok()) return 1;
    const uint64_t slots = st1->leaf_free_bytes / kItemSize;
    const uint64_t leaves_before = st1->leaf_pages;

    // Insert burst into random gaps (odd keys): splits = new leaves.
    Rng rng(9);
    for (int i = 0; i < 10000; ++i) {
      const uint64_t k = rng.Uniform(kN) * 2 + 1;
      Status s = tree->Insert(Slice(K(k)), k);
      if (!s.ok() && !s.IsAlreadyExists()) return 1;
    }
    auto st2 = tree->ComputeStats();
    if (!st2.ok()) return 1;

    std::printf("%-8.2f %-12llu %-14llu %-14.3f %-14llu\n", fill,
                static_cast<unsigned long long>(leaves_before),
                static_cast<unsigned long long>(slots),
                static_cast<double>(slots) / static_cast<double>(kN),
                static_cast<unsigned long long>(st2->leaf_pages -
                                                leaves_before));
  }
  std::printf(
      "\nreading: packing to 100%% minimizes pages but leaves zero cache\n"
      "space AND maximizes splits under inserts; the canonical 68%% keeps\n"
      "roughly one cache slot per three entries for free — the waste the\n"
      "paper turns into a cache.\n");
  return 0;
}
