// Ablation A1: cache placement/swap policy under a shrinking cache.
//
// The paper's policy is random-free placement + swap-one-bucket-toward-S on
// hit. This ablation compares it against no-swap and innermost-first
// placement under the Shrink workload — quantifying how much of Fig 2(a)'s
// "Shrink only reduces the hit rate by 5%" is due to the swap policy.

#include <cstdio>

#include "policy_sim.h"

int main() {
  using namespace nblb;
  using namespace nblb::bench;
  std::printf("=== nblb ablation: cache placement/swap policy ===\n\n");

  constexpr uint64_t kItems = 100000;
  constexpr size_t kLookups = 100000;
  constexpr double kAlpha = 0.99;

  struct Config {
    const char* name;
    bool swap;
    CachePlacementPolicy placement;
  };
  const Config configs[] = {
      {"random+swap (paper)", true, CachePlacementPolicy::kRandomFree},
      {"random, no swap", false, CachePlacementPolicy::kRandomFree},
      {"innermost+swap", true, CachePlacementPolicy::kInnermostFree},
      {"innermost, no swap", false, CachePlacementPolicy::kInnermostFree},
  };

  std::printf("%-22s %-14s %-14s %-12s\n", "policy", "swap_hit",
              "shrink_hit", "delta");
  for (const Config& c : configs) {
    PolicySimOptions opts;
    opts.capacity = kItems / 4;  // the paper's 25% point
    opts.swap_on_hit = c.swap;
    opts.placement = c.placement;
    const double steady =
        RunPolicyWorkload(opts, kItems, kAlpha, kLookups, false, 3);
    const double shrink =
        RunPolicyWorkload(opts, kItems, kAlpha, kLookups, true, 3);
    std::printf("%-22s %-14.4f %-14.4f %-+12.4f\n", c.name, steady, shrink,
                shrink - steady);
  }
  std::printf(
      "\nreading: steady-state (Swap) hit rate is identical across policies\n"
      "— placement only matters when the cache shrinks. Without swapping,\n"
      "hot items stay wherever they landed and shrinking mows them down;\n"
      "the paper's random+swap recovers a large part of that loss by\n"
      "migrating hit items toward the stable point. Innermost-first\n"
      "placement is even more shrink-resistant, but needs the full rank\n"
      "order on every insert; random placement is a single RNG draw.\n");
  return 0;
}
