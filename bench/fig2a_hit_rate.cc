// Figure 2(a): "Hit rate as cache size varies, zipfian distribution
// (alpha = .5)" — Swap (read-only) vs Shrink (half the cache overwritten at
// a constant rate during the run). 100k lookups per point, x-axis = cache
// size as % of the number of items.
//
// We print the curve for the paper's stated alpha = 0.5 under the Gray/YCSB
// zipfian sampler, and additionally for theta = 0.99 (the empirical
// Wikipedia skew, rank-frequency exponent ~1), which is the curve that
// reproduces the paper's ">90% hit rate at 25% cache size". See
// EXPERIMENTS.md for the parameterization discussion.

#include <cstdio>

#include "policy_sim.h"

namespace nblb::bench {
namespace {

void RunCurve(double alpha) {
  constexpr uint64_t kItems = 50000;
  constexpr size_t kLookups = 100000;  // "average hit rate after 100k lookups"
  std::printf("# Figure 2(a): hit rate vs cache size, zipf alpha=%.2f\n",
              alpha);
  std::printf("%-18s %-12s %-12s\n", "cache_size_pct", "swap", "shrink");
  for (int pct : {1, 2, 5, 10, 15, 20, 25, 30, 40, 50, 60, 75, 100}) {
    PolicySimOptions opts;
    opts.capacity = static_cast<size_t>(kItems) * pct / 100;
    const double swap =
        RunPolicyWorkload(opts, kItems, alpha, kLookups, /*shrink=*/false, 7);
    const double shrink =
        RunPolicyWorkload(opts, kItems, alpha, kLookups, /*shrink=*/true, 7);
    std::printf("%-18d %-12.4f %-12.4f\n", pct, swap, shrink);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace nblb::bench

int main() {
  std::printf("=== nblb bench: Figure 2(a) — index cache hit rate ===\n\n");
  nblb::bench::RunCurve(0.5);   // the paper's stated parameter
  nblb::bench::RunCurve(0.99);  // empirical Wikipedia-like skew (exponent ~1)
  std::printf(
      "paper reference: Swap exceeds 90%% hit rate at 25%% cache size;\n"
      "Shrink tracks Swap within ~5 points (swapping moves hot items toward\n"
      "the stable point, where shrinking overwrites them last).\n");
  return 0;
}
