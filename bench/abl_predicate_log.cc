// Ablation A3: predicate-log threshold.
//
// §2.1.2: precise per-page predicate invalidation vs wholesale CSN bumps.
// A tiny log overflows constantly (every overflow nukes every page cache);
// an unbounded log makes every page read replay a long predicate list. This
// bench sweeps the threshold under a mixed lookup/update workload and
// reports cache hit rate, full invalidations, and page cleanings.

#include <cstdio>

#include "exec/table.h"
#include "test_support.h"
#include "workload/trace.h"

int main() {
  using namespace nblb;
  using nblb::bench::TempDb;
  std::printf("=== nblb ablation: predicate log threshold ===\n\n");

  Schema schema({{"id", TypeId::kInt64, 0},
                 {"v", TypeId::kInt64, 0},
                 {"pad", TypeId::kChar, 48}});

  constexpr int64_t kRows = 20000;
  constexpr size_t kOps = 100000;

  TraceOptions topt;
  topt.num_items = kRows;
  topt.num_ops = kOps;
  topt.distribution = TraceDistribution::kZipfian;
  topt.zipf_alpha = 0.99;
  topt.mix = {0.95, 0.0, 0.05, 0.0};  // 5% updates
  const std::vector<Op> trace = BuildTrace(topt);

  std::printf("%-12s %-12s %-18s %-16s %-14s\n", "threshold", "hit_rate",
              "full_invalidations", "page_cleanings", "log_peak");
  for (size_t threshold : {8ul, 64ul, 512ul, 4096ul, 32768ul}) {
    TempDb tdb("ablpred");
    TableOptions opts;
    opts.key_columns = {0};
    opts.cached_columns = {1};
    opts.cache_options.predicate_log_limit = threshold;
    auto tr = Table::Create(tdb.bp.get(), schema, opts);
    if (!tr.ok()) return 1;
    auto table = std::move(*tr);
    std::vector<int64_t> truth(kRows, 0);
    for (int64_t i = 0; i < kRows; ++i) {
      if (!table->Insert({Value::Int64(i), Value::Int64(0), Value::Char("x")})
               .ok()) {
        return 1;
      }
    }
    size_t log_peak = 0;
    for (const Op& op : trace) {
      const int64_t id = static_cast<int64_t>(op.item);
      if (op.kind == OpKind::kUpdate) {
        truth[id]++;
        if (!table
                 ->UpdateByKey({Value::Int64(id)},
                               {Value::Int64(id), Value::Int64(truth[id]),
                                Value::Char("x")})
                 .ok()) {
          return 1;
        }
      } else {
        auto r = table->LookupProjected({Value::Int64(id)}, {1});
        if (!r.ok() || (*r)[0].AsInt() != truth[id]) {
          std::fprintf(stderr, "STALE READ at threshold %zu\n", threshold);
          return 1;
        }
      }
      log_peak = std::max(log_peak, table->cache()->predicate_log().size());
    }
    const IndexCacheStats& cs = table->cache()->stats();
    std::printf("%-12zu %-12.4f %-18llu %-16llu %-14zu\n", threshold,
                cs.HitRate(),
                static_cast<unsigned long long>(cs.full_invalidations),
                static_cast<unsigned long long>(cs.page_cleanings), log_peak);
  }
  std::printf(
      "\nreading: small thresholds trade precision for memory — every\n"
      "overflow wipes all page caches and the hit rate drops; past a few\n"
      "thousand entries the curve flattens. Correctness holds at every\n"
      "setting (the loop verifies each read against ground truth).\n");
  return 0;
}
