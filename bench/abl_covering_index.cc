// Ablation A5: index cache vs covering index (§2.1).
//
// "As an alternative ... one could imagine using covering indexes (i.e.,
//  adding all of the fields used in any query to the index key), which can
//  also avoid accessing the heap ... However, covering indices still store
//  cold data, waste space and bloat the index size."
//
// Both designs answer the query class from the index. The difference is
// bytes: the covering index carries the extra fields for EVERY tuple; the
// index cache carries them only for hot tuples, inside space that already
// existed. We build both over the same data and report index size and the
// memory needed to serve a skewed lookup trace.

#include <cstdio>

#include "common/bytes.h"
#include "common/zipf.h"
#include "exec/table.h"
#include "index/btree.h"
#include "test_support.h"

namespace {

using namespace nblb;

std::string K8(uint64_t v) {
  std::string s(8, '\0');
  EncodeBigEndian64(s.data(), v);
  return s;
}

}  // namespace

int main() {
  using nblb::bench::TempDb;
  std::printf("=== nblb ablation: index cache vs covering index ===\n\n");

  constexpr uint64_t kN = 200000;
  constexpr size_t kExtraFieldBytes = 17;  // the 4 cached fields of §2.1.4
  constexpr size_t kPageSize = 4096;

  // Design A: base index (8B key -> RID) + in-page cache of 25B items.
  TempDb a("ablcov_a", kPageSize, 16384);
  BTreeOptions base_opts;
  base_opts.key_size = 8;
  base_opts.cache_item_size = 8 + kExtraFieldBytes;
  auto base_r = BTree::Create(a.bp.get(), base_opts);
  if (!base_r.ok()) return 1;
  auto base = std::move(*base_r);

  // Design B: covering index — the extra fields ride in the key, widening
  // every entry from 8 to 8+17 bytes.
  TempDb b("ablcov_b", kPageSize, 16384);
  BTreeOptions cover_opts;
  cover_opts.key_size = 8 + kExtraFieldBytes;
  cover_opts.cache_item_size = 0;
  auto cover_r = BTree::Create(b.bp.get(), cover_opts);
  if (!cover_r.ok()) return 1;
  auto cover = std::move(*cover_r);

  std::vector<std::pair<std::string, uint64_t>> base_sorted, cover_sorted;
  for (uint64_t i = 0; i < kN; ++i) {
    base_sorted.emplace_back(K8(i), i);
    std::string wide = K8(i) + std::string(kExtraFieldBytes, 'f');
    cover_sorted.emplace_back(std::move(wide), i);
  }
  if (!base->BulkLoad(base_sorted, 0.68).ok()) return 1;
  if (!cover->BulkLoad(cover_sorted, 0.68).ok()) return 1;

  auto base_st = base->ComputeStats();
  auto cover_st = cover->ComputeStats();
  if (!base_st.ok() || !cover_st.ok()) return 1;

  const double base_mb =
      (base_st->leaf_pages + base_st->internal_pages) * kPageSize / 1e6;
  const double cover_mb =
      (cover_st->leaf_pages + cover_st->internal_pages) * kPageSize / 1e6;
  const uint64_t cache_slots =
      base_st->leaf_free_bytes / base_opts.cache_item_size;

  // How many items must be servable index-only? With zipf(0.99) skew, the
  // hot set covering 90% of accesses:
  ZipfianGenerator zipf(kN, 0.99, 3);
  const uint64_t hot_90 = zipf.RanksCoveringMass(0.9);

  std::printf("%-28s %-16s %-16s\n", "", "index+cache", "covering index");
  std::printf("%-28s %-16.2f %-16.2f\n", "index size (MB)", base_mb, cover_mb);
  std::printf("%-28s %-16llu %-16s\n", "extra-field copies held",
              static_cast<unsigned long long>(cache_slots), "all 200000");
  std::printf("%-28s %-16llu %-16llu\n",
              "items needed for 90% hits",
              static_cast<unsigned long long>(hot_90),
              static_cast<unsigned long long>(hot_90));
  std::printf("%-28s %-16s %-16s\n", "fits hot set?",
              cache_slots >= hot_90 ? "yes (in free space)" : "no",
              "yes (by paying for all)");
  std::printf("%-28s %-16.1f %-16.1f\n", "bytes per servable-hot-item",
              base_mb * 1e6 / static_cast<double>(hot_90),
              cover_mb * 1e6 / static_cast<double>(hot_90));
  std::printf(
      "\nreading: the covering index answers the same queries but is %.1fx\n"
      "larger — it replicates cold tuples' fields too, increasing RAM\n"
      "pressure (the paper's argument). The index cache serves the hot set\n"
      "from bytes that were already allocated.\n",
      cover_mb / base_mb);
  return 0;
}
