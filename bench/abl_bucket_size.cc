// Ablation A2: bucket size N.
//
// N trades migration speed against placement precision: N=1 sorts items
// strictly by recency-of-hit (many swaps, fine-grained), huge N approximates
// a single bucket (no inward migration at all).

#include <cstdio>

#include "policy_sim.h"

int main() {
  using namespace nblb::bench;
  std::printf("=== nblb ablation: bucket size N ===\n\n");

  constexpr uint64_t kItems = 100000;
  constexpr size_t kLookups = 100000;
  constexpr double kAlpha = 0.99;

  std::printf("%-10s %-14s %-14s\n", "N", "swap_hit", "shrink_hit");
  for (size_t n : {1ul, 2ul, 4ul, 8ul, 16ul, 32ul, 64ul, 256ul}) {
    PolicySimOptions opts;
    opts.capacity = kItems / 4;
    opts.bucket_slots = n;
    const double steady =
        RunPolicyWorkload(opts, kItems, kAlpha, kLookups, false, 5);
    const double shrink =
        RunPolicyWorkload(opts, kItems, kAlpha, kLookups, true, 5);
    std::printf("%-10zu %-14.4f %-14.4f\n", n, steady, shrink);
  }
  std::printf(
      "\nreading: steady-state hit rate is insensitive to N (it is set by\n"
      "capacity and skew). Under shrinking, larger buckets help: each hit\n"
      "jumps an item up to N ranks inward, so hot items out-run the\n"
      "advancing edge faster. The cost of large N is coarser ordering near\n"
      "the stable point (eviction picks randomly within a big peripheral\n"
      "bucket) and a wider swap write radius on a real page.\n");
  return 0;
}
