// §4.2 semantic IDs: routing-table baseline vs embedded-partition IDs.
//
// "Recent database partitioning work attempts to find a partitioning that
//  minimizes distributed transactions ... this may require data placement at
//  a per-tuple level, which necessitates a large routing table ... Such
//  tables can easily become a resource and performance bottleneck."
//
// We quantify both halves of the claim: RAM footprint and route() latency of
// a per-tuple unordered_map against the shift+mask embedded router, across
// table sizes.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "semid/routing.h"

namespace {

using namespace nblb;

constexpr unsigned kPartitionBits = 10;  // up to 1024 partitions
constexpr uint32_t kPartitions = 64;

void PrintTable() {
  std::printf("=== nblb bench: §4.2 — semantic IDs vs routing table ===\n\n");
  std::printf("%-12s %-18s %-18s %-14s %-14s\n", "tuples", "table_router_MB",
              "embedded_B", "table_ns/op", "embedded_ns/op");

  for (size_t n : {100000ul, 1000000ul, 4000000ul}) {
    SemanticIdCodec codec(kPartitionBits);
    EmbeddedRouter embedded(codec);
    TableRouter table;
    Rng rng(11);
    std::vector<uint64_t> ids;
    ids.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      const uint32_t part = static_cast<uint32_t>(rng.Uniform(kPartitions));
      const uint64_t id = codec.Encode(part, i);
      table.Add(id, part);
      ids.push_back(id);
    }
    // Measure lookups over a shuffled probe order.
    rng.Shuffle(&ids);
    const size_t probes = std::min<size_t>(n, 2000000);
    uint64_t sink = 0;

    auto t0 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < probes; ++i) {
      sink += *table.Route(ids[i % ids.size()]);
    }
    auto t1 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < probes; ++i) {
      sink += *embedded.Route(ids[i % ids.size()]);
    }
    auto t2 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(sink);

    const double table_ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count() / probes;
    const double embedded_ns =
        std::chrono::duration<double, std::nano>(t2 - t1).count() / probes;
    std::printf("%-12zu %-18.2f %-18zu %-14.2f %-14.2f\n", n,
                table.MemoryBytes() / 1e6, embedded.MemoryBytes(), table_ns,
                embedded_ns);
  }
  std::printf(
      "\npaper reference (qualitative): the routing table grows linearly\n"
      "with the table and costs a hash probe per route; the embedded router\n"
      "is constant-size and a shift+mask. Re-homing a tuple is an ID update\n"
      "(WithPartition), not a routing-table mutation.\n\n");
}

void BM_TableRoute(benchmark::State& state) {
  SemanticIdCodec codec(kPartitionBits);
  TableRouter table;
  Rng rng(1);
  std::vector<uint64_t> ids;
  for (size_t i = 0; i < 1000000; ++i) {
    const uint32_t part = static_cast<uint32_t>(rng.Uniform(kPartitions));
    const uint64_t id = codec.Encode(part, i);
    table.Add(id, part);
    ids.push_back(id);
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Route(ids[i++ % ids.size()]));
  }
}
BENCHMARK(BM_TableRoute);

void BM_EmbeddedRoute(benchmark::State& state) {
  SemanticIdCodec codec(kPartitionBits);
  EmbeddedRouter router(codec);
  Rng rng(1);
  std::vector<uint64_t> ids;
  for (size_t i = 0; i < 1000000; ++i) {
    ids.push_back(codec.Encode(static_cast<uint32_t>(rng.Uniform(kPartitions)),
                               i));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.Route(ids[i++ % ids.size()]));
  }
}
BENCHMARK(BM_EmbeddedRoute);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
