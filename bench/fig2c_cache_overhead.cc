// Figure 2(c): "Index cache performance with buffer pool hit rate = 100%" —
// cache vs nocache cost per lookup (microseconds) as the cache hit rate
// varies. The paper reports ~0.3us overhead at 0% hit rate (the slot scan
// plus the insert-back), break-even around 35%, and a 2.7x win at 100%.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "sim/micro_sim.h"

namespace {

constexpr size_t kLookupsPerPoint = 200000;

void PrintFigure() {
  using nblb::MicroSim;
  using nblb::MicroSimOptions;
  using nblb::MicroSimResult;

  std::printf(
      "=== nblb bench: Figure 2(c) — cache vs nocache, bp hit = 100%% ===\n\n");
  std::printf("%-16s %-14s %-14s\n", "cache_hit_pct", "cache_us", "nocache_us");

  MicroSimOptions base;
  base.bp_hit_rate = 1.0;

  // nocache is flat in the cache hit rate; measure it once.
  MicroSimOptions no = base;
  no.cache_enabled = false;
  MicroSim nosim(no);
  const double nocache_us = nosim.Run(kLookupsPerPoint).AvgCostUs();
  benchmark::DoNotOptimize(nosim.checksum());

  double cache_at_0 = 0, cache_at_100 = 0;
  int breakeven = -1;
  for (int chr = 0; chr <= 100; chr += 5) {
    MicroSimOptions o = base;
    o.index_cache_hit_rate = chr / 100.0;
    o.seed = 7 + chr;
    MicroSim sim(o);
    const double us = sim.Run(kLookupsPerPoint).AvgCostUs();
    benchmark::DoNotOptimize(sim.checksum());
    std::printf("%-16d %-14.4f %-14.4f\n", chr, us, nocache_us);
    if (chr == 0) cache_at_0 = us;
    if (chr == 100) cache_at_100 = us;
    if (breakeven < 0 && us <= nocache_us) breakeven = chr;
  }
  std::printf("\nsummary:\n");
  std::printf("  overhead at 0%% hit rate : %+.4f us (paper: ~0.3 us)\n",
              cache_at_0 - nocache_us);
  std::printf("  break-even hit rate     : ~%d%% (paper: ~35%%)\n", breakeven);
  std::printf("  speedup at 100%% hit rate: %.2fx (paper: 2.7x)\n",
              nocache_us / cache_at_100);
}

}  // namespace

int main(int argc, char** argv) {
  PrintFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
