// recovery: durability cost and crash-recovery speed for the WAL stack.
//
// Two phases:
//
//   1. SERVE OVERHEAD: the same mixed update/get workload (open-loop async
//      submit at --inflight depth over a pre-loaded keyspace) against a
//      4s4w engine with the WAL off, then on (group commit per service
//      group + periodic checkpoints). The headline is
//      wal_overhead_ratio = wal-on ops/sec ÷ wal-off ops/sec — what
//      logical logging, the group-commit fsync, and checkpoint cadence
//      cost the serving path. Open-loop depth matters: group commit
//      amortizes the fsync across every sub-batch the coalescer merges
//      into a service group, which only happens with real concurrency
//      (a closed-loop single-waiter client would pay one fsync per tiny
//      batch and measure the no-pipelining worst case instead).
//   2. REPLAY: for each of several WAL tail lengths, a forked child opens
//      a 1-shard durable engine, commits that many put records, and
//      _exit()s without a clean close — a real crash image on disk. The
//      parent times the recovery open (superblock read, heap walk + index
//      rebuild, WAL tail replay) and the first successful Get:
//      replay_mb_per_sec and time_to_first_get_ms vs tail length.
//
// Output: human-readable summary on stdout, JSON to BENCH_recovery.json
// (or $NBLB_BENCH_JSON_PATH).
//
// JSON schema (one object; times in seconds unless suffixed):
// {
//   "bench": "recovery",
//   "git_sha": "<commit>",
//   "shards": <uint>, "workers": <uint>, "inflight": <uint>,
//   "serve_ops": <uint>, "batch_size": <uint>, "keyspace": <uint>,
//   "update_pct": <uint>, "checkpoint_every_groups": <uint>,
//   "serve": {
//     "wal_off": { "seconds", "ops_per_sec", "errors" },
//     "wal_on":  { "seconds", "ops_per_sec", "errors" },
//     "wal_overhead_ratio": <double>            // the headline
//   },
//   "replay": [                                  // one entry per tail length
//     { "tail_records", "wal_bytes", "open_seconds",
//       "replay_mb_per_sec", "time_to_first_get_ms", "replayed_records" },
//     ...
//   ],
//   "metrics": { ... }   // wal-on serve engine document: engine.* plus
//                        // shard<i>.wal.* / disk.* / buffer_pool.*
// }
//
// Flags: --serve_ops=N --batch=N --inflight=N --keyspace=N --update_pct=N
// --serve_repeat=N (best-of)
// --checkpoint_groups=N --tails=a,b,c (record counts).

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "shard/sharded_engine.h"
#include "storage/superblock.h"
#include "storage/wal.h"
#include "workload/replay.h"

namespace nblb::bench {
namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint64_t FlagOr(int argc, char** argv, const char* name, uint64_t fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::strtoull(argv[i] + prefix.size(), nullptr, 10);
    }
  }
  return fallback;
}

std::vector<uint64_t> TailsFlag(int argc, char** argv,
                                std::vector<uint64_t> fallback) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--tails=", 8) == 0) {
      std::vector<uint64_t> tails;
      const char* p = argv[i] + 8;
      while (*p) {
        char* end = nullptr;
        tails.push_back(std::strtoull(p, &end, 10));
        p = (*end == ',') ? end + 1 : end;
      }
      if (!tails.empty()) return tails;
    }
  }
  return fallback;
}

const char* GitSha() {
#ifdef NBLB_GIT_SHA
  return NBLB_GIT_SHA;
#else
  return "unknown";
#endif
}

Schema BenchSchema() {
  return Schema({{"id", TypeId::kInt64, 0},
                 {"payload", TypeId::kVarchar, 48},
                 {"version", TypeId::kInt64, 0}});
}

Row BenchRow(uint64_t id, uint64_t version) {
  return {Value::Int64(static_cast<int64_t>(id)),
          Value::Varchar("v" + std::to_string(version) + "-payload-" +
                         std::to_string(id)),
          Value::Int64(static_cast<int64_t>(version))};
}

void RemoveEngineFiles(const std::string& prefix, uint32_t num_shards) {
  for (uint32_t s = 0; s < num_shards; ++s) {
    const std::string path = prefix + ".shard" + std::to_string(s) + ".db";
    std::remove(path.c_str());
    std::remove(Superblock::PathFor(path).c_str());
    std::remove(Wal::PathFor(path).c_str());
  }
}

/// Deterministic mixed workload over a pre-loaded keyspace: update_pct%
/// updates / rest gets, uniform keys. Every key exists, so every op should
/// return OK. The default mix (20% updates) models a read-mostly serving
/// tier (YCSB-B territory); crank --update_pct=100 to measure the pure
/// logging worst case.
std::vector<RequestBatch> BuildMixedBatches(uint64_t total_ops,
                                            uint64_t batch,
                                            uint64_t keyspace,
                                            uint64_t update_pct) {
  std::vector<RequestBatch> batches;
  batches.reserve(total_ops / batch + 1);
  uint64_t state = 0x9e3779b97f4a7c15ULL;
  for (uint64_t issued = 0; issued < total_ops; issued += batch) {
    RequestBatch b;
    for (uint64_t i = 0; i < batch; ++i) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      const uint64_t key = (state >> 33) % keyspace;
      if (((state >> 13) % 100) < update_pct) {
        b.push_back(Request::Update(key, BenchRow(key, issued + i)));
      } else {
        b.push_back(Request::Get(key));
      }
    }
    batches.push_back(std::move(b));
  }
  return batches;
}

Status LoadKeyspace(ShardedEngine* engine, uint64_t keyspace) {
  std::vector<Row> rows;
  rows.reserve(keyspace);
  for (uint64_t k = 0; k < keyspace; ++k) rows.push_back(BenchRow(k, 0));
  return LoadRows(engine, rows, /*key_column=*/0, 512);
}

ShardedEngineOptions ServeOptions(const std::string& prefix, bool wal,
                                  uint64_t checkpoint_groups) {
  ShardedEngineOptions opts;
  opts.num_shards = 4;
  opts.num_workers = 4;
  opts.path_prefix = prefix;
  opts.page_size = 4096;
  opts.buffer_pool_frames_per_shard = 4096;
  // Deep coalescing: the group-commit fsync is a per-group latency stall
  // for the owning worker, so the overhead ratio is set by ops-per-group.
  // Raise the window cap so the adaptive window can absorb the whole
  // open-loop backlog — identical settings for both configs, so the
  // ratio stays apples-to-apples.
  opts.max_coalesce_window = 1024;
  opts.schema = BenchSchema();
  opts.table_options.key_columns = {0};
  opts.wal_enabled = wal;
  opts.checkpoint_every_groups = wal ? checkpoint_groups : 0;
  return opts;
}

struct ReplayPoint {
  uint64_t tail_records = 0;
  uint64_t wal_bytes = 0;
  double open_seconds = 0;
  double replay_mb_per_sec = 0;
  double time_to_first_get_ms = 0;
  uint64_t replayed_records = 0;
};

ShardedEngineOptions ReplayOptions(const std::string& prefix, bool truncate) {
  ShardedEngineOptions opts;
  opts.num_shards = 1;
  opts.num_workers = 1;
  opts.path_prefix = prefix;
  opts.truncate_on_open = truncate;
  opts.page_size = 4096;
  opts.buffer_pool_frames_per_shard = 2048;
  opts.wal_enabled = true;
  opts.checkpoint_every_groups = 0;  // the whole run stays in the tail
  opts.schema = BenchSchema();
  opts.table_options.key_columns = {0};
  return opts;
}

/// Child body: build a committed WAL tail of `records` puts, then die
/// without a clean close (no destructors — the on-disk image is a crash).
void BuildTailAndCrash(const std::string& prefix, uint64_t records) {
  auto engine_or = ShardedEngine::Open(ReplayOptions(prefix, true));
  if (!engine_or.ok()) _exit(2);
  auto engine = std::move(engine_or).ValueOrDie();
  constexpr uint64_t kBatch = 64;
  for (uint64_t i = 0; i < records; i += kBatch) {
    RequestBatch b;
    for (uint64_t k = i; k < i + kBatch && k < records; ++k) {
      b.push_back(Request::Insert(k, BenchRow(k, k)));
    }
    BatchResult result = engine->Execute(b);
    for (const auto& r : result.results) {
      if (!r.status.ok()) _exit(3);
    }
  }
  // Leak the engine on purpose: _exit skips every destructor, so nothing
  // checkpoints and the WAL tail is the only durable record of the rows.
  _exit(0);
}

bool RunReplayPoint(const std::string& prefix, uint64_t records,
                    ReplayPoint* out) {
  RemoveEngineFiles(prefix, 1);
  const pid_t child = ::fork();
  if (child < 0) return false;
  if (child == 0) BuildTailAndCrash(prefix, records);
  int wstatus = 0;
  if (::waitpid(child, &wstatus, 0) != child) return false;
  if (!WIFEXITED(wstatus) || WEXITSTATUS(wstatus) != 0) {
    std::fprintf(stderr, "tail-builder child failed (status %d)\n", wstatus);
    return false;
  }
  const std::string shard_path = prefix + ".shard0.db";
  struct stat st;
  if (::stat(Wal::PathFor(shard_path).c_str(), &st) != 0) return false;
  out->tail_records = records;
  out->wal_bytes = static_cast<uint64_t>(st.st_size);

  const double t0 = Now();
  auto engine_or = ShardedEngine::Open(ReplayOptions(prefix, false));
  if (!engine_or.ok()) {
    std::fprintf(stderr, "recovery open: %s\n",
                 engine_or.status().ToString().c_str());
    return false;
  }
  auto engine = std::move(engine_or).ValueOrDie();
  out->open_seconds = Now() - t0;
  auto first = engine->Get(0);
  if (!first.ok()) {
    std::fprintf(stderr, "first get after recovery: %s\n",
                 first.status().ToString().c_str());
    return false;
  }
  out->time_to_first_get_ms = (Now() - t0) * 1e3;
  out->replay_mb_per_sec =
      out->open_seconds > 0
          ? (out->wal_bytes / (1024.0 * 1024.0)) / out->open_seconds
          : 0;
  out->replayed_records = engine->shard(0)->replayed_records();
  if (!engine->shard(0)->recovered() || out->replayed_records != records) {
    std::fprintf(stderr,
                 "replay mismatch: recovered=%d replayed=%llu want=%llu\n",
                 engine->shard(0)->recovered() ? 1 : 0,
                 static_cast<unsigned long long>(out->replayed_records),
                 static_cast<unsigned long long>(records));
    return false;
  }
  engine.reset();
  RemoveEngineFiles(prefix, 1);
  return true;
}

}  // namespace
}  // namespace nblb::bench

int main(int argc, char** argv) {
  using namespace nblb;
  using namespace nblb::bench;

  const uint64_t serve_ops = FlagOr(argc, argv, "serve_ops", 400000);
  const uint64_t batch = FlagOr(argc, argv, "batch", 128);
  const uint64_t inflight = FlagOr(argc, argv, "inflight", 512);
  const uint64_t keyspace = FlagOr(argc, argv, "keyspace", 50000);
  const uint64_t update_pct =
      std::min<uint64_t>(FlagOr(argc, argv, "update_pct", 20), 100);
  const uint64_t checkpoint_groups =
      FlagOr(argc, argv, "checkpoint_groups", 256);
  const uint64_t serve_repeat =
      std::max<uint64_t>(FlagOr(argc, argv, "serve_repeat", 3), 1);
  const std::vector<uint64_t> tails =
      TailsFlag(argc, argv, {4000, 16000, 64000});

  std::printf("serve phase: %llu ops (%llu%% updates), batch %llu, inflight "
              "%llu, keyspace %llu, 4s4w\n",
              static_cast<unsigned long long>(serve_ops),
              static_cast<unsigned long long>(update_pct),
              static_cast<unsigned long long>(batch),
              static_cast<unsigned long long>(inflight),
              static_cast<unsigned long long>(keyspace));
  const std::vector<RequestBatch> mixed =
      BuildMixedBatches(serve_ops, batch, keyspace, update_pct);

  // ---- Phase 1: serve overhead, WAL off then on. ---------------------------
  const std::string serve_prefix = "/tmp/nblb_bench_recovery_serve";
  ReplayReport off, on;
  std::string metrics_json = "{}";
  for (const bool wal : {false, true}) {
    // Best-of-N: each repeat is a fresh engine + keyspace load + the same
    // open-loop replay. The serve phase runs well under a second, so a
    // single scheduler hiccup on a shared box skews one run by 20%+; the
    // best repeat of each config is the honest steady-state number and
    // keeps the on/off ratio comparing like against like.
    ReplayReport best;
    for (uint64_t r = 0; r < serve_repeat; ++r) {
      RemoveEngineFiles(serve_prefix, 4);
      auto engine_or = ShardedEngine::Open(
          ServeOptions(serve_prefix, wal, wal ? checkpoint_groups : 0));
      if (!engine_or.ok()) {
        std::fprintf(stderr, "%s engine open: %s\n",
                     wal ? "wal-on" : "wal-off",
                     engine_or.status().ToString().c_str());
        return 1;
      }
      auto engine = std::move(engine_or).ValueOrDie();
      if (Status s = LoadKeyspace(engine.get(), keyspace); !s.ok()) {
        std::fprintf(stderr, "load: %s\n", s.ToString().c_str());
        return 1;
      }
      const ReplayReport report =
          ReplayBatchesOpenLoop(engine.get(), mixed, inflight);
      std::printf("  %s[%llu]: %.0f ops/s (%.2fs), errors %llu\n",
                  wal ? "wal-on " : "wal-off",
                  static_cast<unsigned long long>(r), report.OpsPerSec(),
                  report.seconds,
                  static_cast<unsigned long long>(report.errors));
      if (r == 0 || report.OpsPerSec() > best.OpsPerSec()) {
        best = report;
        if (wal) {
          // Capture the unified document while the durable engine is
          // live: the wal.* layer rides each shard's registry
          // (shard<i>.wal.*).
          metrics_json = engine->DumpMetrics();
        }
      }
    }
    if (wal) {
      on = best;
    } else {
      off = best;
    }
  }
  RemoveEngineFiles(serve_prefix, 4);
  const double ratio =
      off.OpsPerSec() > 0 ? on.OpsPerSec() / off.OpsPerSec() : 0;
  std::printf("  wal overhead: x%.3f of wal-off throughput\n", ratio);

  // ---- Phase 2: replay speed vs tail length. -------------------------------
  const std::string replay_prefix = "/tmp/nblb_bench_recovery_replay";
  std::vector<ReplayPoint> points;
  for (uint64_t records : tails) {
    ReplayPoint p;
    if (!RunReplayPoint(replay_prefix, records, &p)) {
      std::fprintf(stderr, "replay point %llu failed\n",
                   static_cast<unsigned long long>(records));
      return 1;
    }
    std::printf("  tail %7llu records (%6.2f MB): open %.3fs, "
                "%.1f MB/s, first get %.1f ms\n",
                static_cast<unsigned long long>(p.tail_records),
                p.wal_bytes / (1024.0 * 1024.0), p.open_seconds,
                p.replay_mb_per_sec, p.time_to_first_get_ms);
    points.push_back(p);
  }

  // ---- JSON ----------------------------------------------------------------
  const char* json_path = std::getenv("NBLB_BENCH_JSON_PATH");
  FILE* f = std::fopen(json_path ? json_path : "BENCH_recovery.json", "w");
  if (!f) {
    std::fprintf(stderr, "cannot open JSON output file\n");
    return 1;
  }
  std::fprintf(
      f,
      "{\n  \"bench\": \"recovery\",\n"
      "  \"git_sha\": \"%s\",\n"
      "  \"shards\": 4,\n  \"workers\": 4,\n  \"inflight\": %llu,\n"
      "  \"serve_ops\": %llu,\n  \"batch_size\": %llu,\n"
      "  \"keyspace\": %llu,\n  \"update_pct\": %llu,\n"
      "  \"checkpoint_every_groups\": %llu,\n"
      "  \"serve\": {\n"
      "    \"wal_off\": { \"seconds\": %.4f, \"ops_per_sec\": %.1f, "
      "\"errors\": %llu },\n"
      "    \"wal_on\": { \"seconds\": %.4f, \"ops_per_sec\": %.1f, "
      "\"errors\": %llu },\n"
      "    \"wal_overhead_ratio\": %.4f\n  },\n"
      "  \"replay\": [",
      GitSha(), static_cast<unsigned long long>(inflight),
      static_cast<unsigned long long>(serve_ops),
      static_cast<unsigned long long>(batch),
      static_cast<unsigned long long>(keyspace),
      static_cast<unsigned long long>(update_pct),
      static_cast<unsigned long long>(checkpoint_groups), off.seconds,
      off.OpsPerSec(), static_cast<unsigned long long>(off.errors),
      on.seconds, on.OpsPerSec(), static_cast<unsigned long long>(on.errors),
      ratio);
  for (size_t i = 0; i < points.size(); ++i) {
    const ReplayPoint& p = points[i];
    std::fprintf(
        f,
        "%s\n    { \"tail_records\": %llu, \"wal_bytes\": %llu,\n"
        "      \"open_seconds\": %.4f, \"replay_mb_per_sec\": %.2f,\n"
        "      \"time_to_first_get_ms\": %.2f, \"replayed_records\": %llu }",
        i ? "," : "", static_cast<unsigned long long>(p.tail_records),
        static_cast<unsigned long long>(p.wal_bytes), p.open_seconds,
        p.replay_mb_per_sec, p.time_to_first_get_ms,
        static_cast<unsigned long long>(p.replayed_records));
  }
  std::fprintf(f, "\n  ],\n  \"metrics\": %s\n}\n", metrics_json.c_str());
  std::fclose(f);
  std::printf("wrote %s\n", json_path ? json_path : "BENCH_recovery.json");
  return 0;
}
