// §2.1.4 analysis: how much of Wikipedia's page table fits in the name_title
// index cache, and what hit rate the real workload achieves.
//
// Paper numbers: the name_title index holds 360 MB of key data at a 68% fill
// factor; with 25-byte cache items the free space stores ~7.9M items — over
// 70% of the page table — and the measured cache hit rate on the trace
// exceeds 90%, answering ~40% of all queries from the index alone.
//
// Part 1 re-runs the capacity arithmetic at the paper's scale. Part 2 builds
// a scaled synthetic page table with the real machinery (B+Tree bulk-loaded
// at 68%, in-page cache, zipf trace) and measures everything end to end.

#include <cstdio>

#include "exec/database.h"
#include "workload/wikipedia.h"

namespace {

using namespace nblb;

void PaperScaleArithmetic() {
  std::printf("--- part 1: capacity model at the paper's scale ---\n");
  const double key_mb = 360.0;
  const double fill = 0.68;
  const double item_bytes = 25.0;
  const double total_leaf_mb = key_mb / fill;
  const double free_mb = total_leaf_mb * (1 - fill);
  const double items_m = free_mb * 1e6 / item_bytes / 1e6;
  std::printf("  key data: %.0f MB at %.0f%% fill -> %.0f MB of leaf space, "
              "%.0f MB free\n",
              key_mb, fill * 100, total_leaf_mb, free_mb);
  std::printf("  cache capacity at %.0f B/item: %.1fM items "
              "(paper: 7.9M items, >70%% of the page table)\n\n",
              item_bytes, items_m);
}

int MeasuredScaledRun() {
  std::printf("--- part 2: measured on the scaled synthetic page table ---\n");
  WikipediaScale scale;
  scale.num_pages = 20000;
  scale.revisions_per_page = 2;
  WikipediaSynthesizer synth(scale);

  DatabaseOptions dbo;
  dbo.path = "/tmp/nblb_sec214.db";
  std::remove(dbo.path.c_str());
  dbo.buffer_pool_frames = 16384;
  auto dbr = Database::Open(dbo);
  if (!dbr.ok()) return 1;
  auto db = std::move(*dbr);

  // Index-side schema with realistic stored widths: real B+Trees store
  // title BYTES (~20 chars), not the varchar(255) capacity; our fixed-width
  // KeyCodec pads to the declared length, so declare what Wikipedia titles
  // actually occupy. Cached fields are narrowed the same way (bool, int32)
  // giving a 29-byte cache item ~ the paper's 25-byte example.
  Schema schema({{"page_namespace", TypeId::kInt32, 0},
                 {"page_title", TypeId::kVarchar, 24},
                 {"page_id", TypeId::kInt64, 0},
                 {"page_latest", TypeId::kInt64, 0},
                 {"page_is_redirect", TypeId::kBool, 0},
                 {"page_len", TypeId::kInt32, 0},
                 {"page_touched", TypeId::kChar, 14},
                 {"page_counter", TypeId::kInt64, 0}});
  TableOptions topts;
  topts.key_columns = {0, 1};
  topts.cached_columns = {2, 3, 4, 5};
  auto tr = db->CreateTable("page", schema, topts);
  if (!tr.ok()) return 1;
  Table* page = *tr;
  auto project = [](const Row& r) -> Row {
    std::string title = r[2].AsString();
    if (title.size() > 24) title.resize(24);
    return {Value::Int32(static_cast<int32_t>(r[1].AsInt())),
            Value::Varchar(title),
            r[0],
            r[9],
            Value::Bool(r[5].AsInt() != 0),
            Value::Int32(static_cast<int32_t>(r[10].AsInt())),
            r[8],
            r[4]};
  };
  for (const Row& row : synth.pages()) {
    if (!page->Insert(project(row)).ok()) return 1;
  }

  auto str = page->index()->ComputeStats();
  if (!str.ok()) return 1;
  const BTreeStats st = *str;
  const size_t item = page->index()->options().cache_item_size;
  const uint64_t capacity_items = st.leaf_free_bytes / item;
  std::printf("  index: %llu leaves, fill=%.3f, %llu free bytes, "
              "%zu B/cache item\n",
              static_cast<unsigned long long>(st.leaf_pages), st.avg_leaf_fill,
              static_cast<unsigned long long>(st.leaf_free_bytes), item);
  std::printf("  cache capacity: %llu items = %.1f%% of the %llu-row table "
              "(paper: >70%%)\n",
              static_cast<unsigned long long>(capacity_items),
              100.0 * static_cast<double>(capacity_items) /
                  static_cast<double>(st.entries),
              static_cast<unsigned long long>(st.entries));

  // Replay the zipf page-lookup trace twice: pass 1 warms, pass 2 measures.
  const std::vector<size_t> proj = {2, 3, 4, 5};
  const auto trace = synth.PageLookupTrace(100000);
  auto key_of = [&](uint64_t pidx) -> std::vector<Value> {
    const Row& p = synth.pages()[pidx];
    std::string title = p[2].AsString();
    if (title.size() > 24) title.resize(24);
    return {Value::Int32(static_cast<int32_t>(p[1].AsInt())),
            Value::Varchar(title)};
  };
  for (uint64_t pidx : trace) {
    if (!page->LookupProjected(key_of(pidx), proj).ok()) return 1;
  }
  page->ResetStats();
  page->cache()->ResetStats();
  for (uint64_t pidx : trace) {
    if (!page->LookupProjected(key_of(pidx), proj).ok()) return 1;
  }
  const TableStats& ts = page->stats();
  std::printf("  measured cache hit rate on the trace: %.1f%% "
              "(paper: >90%%)\n",
              100.0 * static_cast<double>(ts.answered_from_cache) /
                  static_cast<double>(ts.lookups));

  // Query-coverage estimate: the paper found the most popular query class
  // (~40% of all queries) projects only key + the 4 cached fields. We model
  // the MediaWiki query mix: 40% page-lookup (covered), 60% other classes
  // (uncovered: text fetch, revision scans, updates...).
  const double covered_class_share = 0.40;
  std::printf("  queries answerable from the index cache: %.0f%% of the "
              "workload x %.1f%% hit rate = %.1f%% of ALL queries\n",
              covered_class_share * 100,
              100.0 * static_cast<double>(ts.answered_from_cache) /
                  static_cast<double>(ts.lookups),
              covered_class_share * 100.0 *
                  static_cast<double>(ts.answered_from_cache) /
                  static_cast<double>(ts.lookups));
  std::remove(dbo.path.c_str());
  return 0;
}

}  // namespace

int main() {
  std::printf("=== nblb bench: §2.1.4 — Wikipedia name_title cache analysis "
              "===\n\n");
  PaperScaleArithmetic();
  return MeasuredScaledRun();
}
