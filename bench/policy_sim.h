// PolicySim: the cache-management simulation behind Figure 2(a) and the
// placement ablations.
//
// The paper: "We ran a simulation to study how the hit rate varies with the
// cache size using a zipfian distribution similar to Wikipedia (alpha = .5)
// ... Swap, which simulates a read-only workload that does not overwrite the
// index cache (constant cache size), and Shrink, which simulates a
// read/insert workload that overwrites half of the index cache at a constant
// rate over the duration of the experiment."
//
// This models one logical cache whose slots are ranked by stability (rank 0
// = the stable point S; higher ranks are overwritten sooner). It exercises
// exactly the policy implemented in cache::IndexCache: random-free-slot
// placement, peripheral-bucket eviction, and hit-swap one bucket toward S.
// Shrinking truncates the highest ranks, as index growth does on real pages.

#pragma once

#include <cstdint>
#include <queue>
#include <unordered_map>
#include <vector>

#include "cache/index_cache.h"
#include "common/rng.h"
#include "common/zipf.h"

namespace nblb::bench {

struct PolicySimOptions {
  size_t capacity = 1000;     // cache slots
  size_t bucket_slots = 8;    // N
  bool swap_on_hit = true;
  CachePlacementPolicy placement = CachePlacementPolicy::kRandomFree;
  uint64_t seed = 1;
};

class PolicySim {
 public:
  explicit PolicySim(PolicySimOptions options)
      : options_(options),
        slots_(options.capacity, 0),
        live_limit_(options.capacity),
        rng_(options.seed) {
    free_ranks_.reserve(options.capacity);
    for (size_t r = 0; r < options.capacity; ++r) {
      free_ranks_.push_back(r);
      free_pos_[r] = r;
      min_free_.push(r);
    }
  }

  /// One lookup of `item`; returns true on hit. Misses insert the item.
  bool Lookup(uint64_t item) {
    auto it = where_.find(item);
    if (it != where_.end()) {
      if (options_.swap_on_hit) SwapInward(it->second);
      return true;
    }
    Insert(item);
    return false;
  }

  /// Truncates the cache to `new_limit` live slots (index growth). Stale
  /// free ranks are filtered lazily on allocation.
  void ShrinkTo(size_t new_limit) {
    while (live_limit_ > new_limit) {
      --live_limit_;
      const uint64_t occupant = slots_[live_limit_];
      if (occupant != 0) {
        where_.erase(occupant - 1);
        slots_[live_limit_] = 0;
        AddFree(live_limit_);  // unusable now, filtered lazily
      }
    }
  }

  size_t live_limit() const { return live_limit_; }

 private:
  size_t BucketOf(size_t rank) const { return rank / options_.bucket_slots; }

  void AddFree(size_t rank) {
    free_pos_[rank] = free_ranks_.size();
    free_ranks_.push_back(rank);
    min_free_.push(rank);
  }

  void RemoveFree(size_t rank) {
    auto it = free_pos_.find(rank);
    const size_t pos = it->second;
    const size_t last = free_ranks_.back();
    free_ranks_[pos] = last;
    free_pos_[last] = pos;
    free_ranks_.pop_back();
    free_pos_.erase(it);
    // min_free_ is cleaned lazily.
  }

  // Pops a usable free rank per the placement policy; SIZE_MAX when none.
  size_t PopFreeRank() {
    if (options_.placement == CachePlacementPolicy::kRandomFree) {
      while (!free_ranks_.empty()) {
        const size_t pick = rng_.Uniform(free_ranks_.size());
        const size_t rank = free_ranks_[pick];
        RemoveFree(rank);
        if (rank < live_limit_ && slots_[rank] == 0) return rank;
      }
      return SIZE_MAX;
    }
    // Innermost-free placement: lazy min-heap.
    while (!min_free_.empty()) {
      const size_t rank = min_free_.top();
      min_free_.pop();
      if (rank < live_limit_ && slots_[rank] == 0 && free_pos_.count(rank)) {
        RemoveFree(rank);
        return rank;
      }
    }
    return SIZE_MAX;
  }

  void MoveItem(size_t from, size_t to) {
    const uint64_t a = slots_[from];
    const uint64_t b = slots_[to];
    slots_[to] = a;
    slots_[from] = b;
    if (a != 0) where_[a - 1] = to;
    if (b != 0) where_[b - 1] = from;
  }

  void SwapInward(size_t rank) {
    const size_t bucket = BucketOf(rank);
    if (bucket == 0) return;
    const size_t base = (bucket - 1) * options_.bucket_slots;
    const size_t target = base + rng_.Uniform(options_.bucket_slots);
    const bool target_free = slots_[target] == 0;
    MoveItem(rank, target);
    if (target_free) {
      // The hole moved from `target` to `rank`.
      RemoveFree(target);
      AddFree(rank);
    }
  }

  void Insert(uint64_t item) {
    size_t rank = PopFreeRank();
    if (rank == SIZE_MAX) {
      if (live_limit_ == 0) return;
      // Evict a random item from the peripheral (outermost occupied) bucket.
      size_t r = live_limit_ - 1;
      while (slots_[r] == 0 && r > 0) --r;
      if (slots_[r] == 0) return;  // live range empty
      const size_t bucket = BucketOf(r);
      const size_t lo = bucket * options_.bucket_slots;
      const size_t hi = std::min(live_limit_, lo + options_.bucket_slots);
      std::vector<size_t> occupied;
      for (size_t i = lo; i < hi; ++i) {
        if (slots_[i] != 0) occupied.push_back(i);
      }
      rank = occupied[rng_.Uniform(occupied.size())];
      where_.erase(slots_[rank] - 1);
    }
    slots_[rank] = item + 1;
    where_[item] = rank;
  }

  PolicySimOptions options_;
  std::vector<uint64_t> slots_;  // rank -> item+1 (0 = empty)
  std::unordered_map<uint64_t, size_t> where_;
  std::vector<size_t> free_ranks_;
  std::unordered_map<size_t, size_t> free_pos_;  // rank -> index in free_ranks_
  std::priority_queue<size_t, std::vector<size_t>, std::greater<size_t>>
      min_free_;
  size_t live_limit_;
  Rng rng_;
};

/// \brief Runs a warm-up phase then `lookups` measured zipf-distributed
/// lookups ("the average hit rate after 100k lookups"); Shrink mode
/// truncates the cache linearly down to half its size over the measured
/// phase. Returns the measured hit rate.
inline double RunPolicyWorkload(PolicySimOptions options, uint64_t num_items,
                                double alpha, size_t lookups, bool shrink,
                                uint64_t seed, size_t warmup = 200000) {
  PolicySim sim(options);
  ZipfianGenerator zipf(num_items, alpha, seed);
  for (size_t i = 0; i < warmup; ++i) {
    (void)sim.Lookup(zipf.Next());
  }
  size_t hits = 0;
  const size_t full = options.capacity;
  for (size_t i = 0; i < lookups; ++i) {
    if (shrink) {
      // Linearly overwrite half of the cache over the run (§2.1.4).
      const size_t target =
          full - (full / 2) * i / (lookups > 1 ? lookups - 1 : 1);
      if (target < sim.live_limit()) sim.ShrinkTo(target);
    }
    if (sim.Lookup(zipf.Next())) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(lookups);
}

}  // namespace nblb::bench
