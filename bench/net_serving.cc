// net_serving: loopback TCP serving benchmark for the src/net/ front end —
// the headline number for the networked serving stack.
//
// Three phases over a Zipfian Wikipedia revision lookup workload:
//
//   1. IN-PROCESS baseline: the same engine driven by the open-loop async
//      Submit driver (workload/replay.h) at --inflight depth. This is the
//      ceiling — no sockets, no framing, no syscalls per batch.
//   2. NET phase: a NetServer on the same warm engine, --conns loopback
//      connections each keeping --pipeline request frames in flight
//      (open-loop per connection). The headline ratio is
//      net ops/sec ÷ in-process ops/sec: what the event loop, the wire
//      codec, and two loopback traversals per batch actually cost.
//   3. OVERLOAD phase: a separate tiny engine (bounded fail-fast queues)
//      behind a server with matching admission caps, deliberately
//      over-driven. Overload must shed with explicit busy replies — zero
//      transport errors, zero hangs — exercising the same end-to-end
//      backpressure story CI asserts in the tests, at bench scale.
//
// The serving engine runs without O_DIRECT and with pools sized for the
// hit regime: this bench measures the network front end, not the device
// (bench/shard_throughput.cc owns the storage story).
//
// Output: human-readable summary on stdout, JSON to BENCH_net_serving.json
// (or $NBLB_BENCH_JSON_PATH).
//
// JSON schema (one object; times in seconds unless suffixed):
// {
//   "bench": "net_serving",
//   "git_sha": "<commit the binary was configured from>",
//   "rows": <uint>, "lookups": <uint>, "batch_size": <uint>,
//   "shards": <uint>, "workers": <uint>,
//   "connections": <uint>, "pipeline_depth": <uint>, "inflight": <uint>,
//   "io_backend": "auto"|"uring"|"threads",        // requested
//   "net_backend_effective": "uring"|"epoll",      // loop after probing
//   "engine_io_backend_effective": "uring"|"threads",
//   "inprocess": { "seconds", "ops_per_sec",
//                  "p50_batch_ms", "p99_batch_ms", "errors" },
//   "net": { "seconds", "ops_per_sec", "p50_batch_ms", "p99_batch_ms",
//            "found", "not_found", "busy", "errors",
//            "ratio_vs_inprocess" },                // the headline
//   "overload": { "requests", "served", "busy", "errors",
//                 "busy_shed_frames",               // server-side sheds
//                 "shed_fraction" },
//   "metrics": { ... }    // NetServer::DumpMetrics(): net.* + the engine
//                         // document, schema-gated by CI
// }
//
// Flags: --rows=N --lookups=N --batch=N --conns=N --pipeline=N
// --inflight=N --shards=N --workers=N --overload=0|1
// --io=auto|uring|threads (defaults below).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/server.h"
#include "shard/sharded_engine.h"
#include "workload/replay.h"
#include "workload/wikipedia.h"

namespace nblb::bench {
namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0;
  std::sort(xs.begin(), xs.end());
  const size_t i = std::min(xs.size() - 1,
                            static_cast<size_t>(p * (xs.size() - 1) + 0.5));
  return xs[i];
}

uint64_t FlagOr(int argc, char** argv, const char* name, uint64_t fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::strtoull(argv[i] + prefix.size(), nullptr, 10);
    }
  }
  return fallback;
}

const char* GitSha() {
#ifdef NBLB_GIT_SHA
  return NBLB_GIT_SHA;
#else
  return "unknown";
#endif
}

/// Per-phase tallies shared by the net and overload drivers.
struct NetPhaseResult {
  double seconds = 0;
  double ops_per_sec = 0;
  double p50_batch_ms = 0;
  double p99_batch_ms = 0;
  uint64_t found = 0;
  uint64_t not_found = 0;
  uint64_t busy = 0;
  uint64_t errors = 0;
  uint64_t requests = 0;
};

/// Drives `slices[c]` through one connection per slice, each keeping up to
/// `pipeline` request frames outstanding. Batch latency = Send → Wait.
NetPhaseResult RunNetPhase(const net::NetServer& server,
                           const std::vector<std::vector<RequestBatch>>& slices,
                           size_t pipeline) {
  const size_t conns = slices.size();
  std::vector<NetPhaseResult> partial(conns);
  std::vector<std::vector<double>> latencies(conns);
  const double start = Now();
  std::vector<std::thread> threads;
  for (size_t c = 0; c < conns; ++c) {
    threads.emplace_back([&, c] {
      net::NetClient::Options copts;
      copts.port = server.port();
      auto client_result = net::NetClient::Connect(copts);
      if (!client_result.ok()) {
        std::fprintf(stderr, "connect: %s\n",
                     client_result.status().ToString().c_str());
        partial[c].errors += 1;
        return;
      }
      auto client = std::move(*client_result);
      NetPhaseResult& r = partial[c];
      std::vector<double>& lat = latencies[c];
      std::deque<std::pair<uint64_t, double>> window;
      auto reap_front = [&] {
        const auto [id, t0] = window.front();
        window.pop_front();
        auto result = client->Wait(id);
        if (!result.ok()) {
          r.errors += 1;
          return false;
        }
        lat.push_back(Now() - t0);
        for (const RequestResult& rr : result->results) {
          r.requests += 1;
          if (rr.status.ok()) {
            ++r.found;
          } else if (rr.status.IsNotFound()) {
            ++r.not_found;
          } else if (rr.status.IsBusy()) {
            ++r.busy;
          } else {
            ++r.errors;
          }
        }
        return true;
      };
      for (const RequestBatch& batch : slices[c]) {
        while (window.size() >= pipeline) {
          if (!reap_front()) return;
        }
        auto id = client->Send(batch);
        if (!id.ok()) {
          r.errors += 1;
          return;
        }
        window.emplace_back(*id, Now());
      }
      while (!window.empty()) {
        if (!reap_front()) return;
      }
    });
  }
  for (auto& t : threads) t.join();
  const double seconds = Now() - start;

  NetPhaseResult total;
  std::vector<double> all_lat;
  for (size_t c = 0; c < conns; ++c) {
    total.found += partial[c].found;
    total.not_found += partial[c].not_found;
    total.busy += partial[c].busy;
    total.errors += partial[c].errors;
    total.requests += partial[c].requests;
    all_lat.insert(all_lat.end(), latencies[c].begin(), latencies[c].end());
  }
  total.seconds = seconds;
  total.ops_per_sec = seconds > 0 ? total.requests / seconds : 0;
  total.p50_batch_ms = Percentile(all_lat, 0.50) * 1e3;
  total.p99_batch_ms = Percentile(all_lat, 0.99) * 1e3;
  return total;
}

}  // namespace
}  // namespace nblb::bench

int main(int argc, char** argv) {
  using namespace nblb;
  using namespace nblb::bench;

  const uint64_t target_rows = FlagOr(argc, argv, "rows", 200000);
  const uint64_t num_lookups = FlagOr(argc, argv, "lookups", 400000);
  const uint64_t batch_size = FlagOr(argc, argv, "batch", 32);
  const uint64_t conns = FlagOr(argc, argv, "conns", 8);
  const uint64_t pipeline = FlagOr(argc, argv, "pipeline", 16);
  const uint64_t inflight = FlagOr(argc, argv, "inflight", 64);
  const uint32_t shards =
      static_cast<uint32_t>(FlagOr(argc, argv, "shards", 4));
  const uint32_t workers =
      static_cast<uint32_t>(FlagOr(argc, argv, "workers", 4));
  const bool run_overload = FlagOr(argc, argv, "overload", 1) != 0;
  IoBackend io_backend = IoBackend::kAuto;
  const char* io_name = "auto";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--io=uring") == 0) {
      io_backend = IoBackend::kUring;
      io_name = "uring";
    }
    if (std::strcmp(argv[i], "--io=threads") == 0) {
      io_backend = IoBackend::kThreads;
      io_name = "threads";
    }
  }

  WikipediaScale scale;
  scale.revisions_per_page = 20;
  scale.num_pages = std::max<uint64_t>(1, target_rows / 20);
  WikipediaSynthesizer wiki(scale);
  std::printf("generating ~%llu revision rows...\n",
              static_cast<unsigned long long>(target_rows));
  const std::vector<Row>& rows = wiki.revisions();
  const auto batches = BuildLookupBatches(
      wiki.RevisionLookupTrace(num_lookups), batch_size);
  std::printf("rows=%zu lookups=%llu batch=%llu conns=%llu pipeline=%llu\n",
              rows.size(), static_cast<unsigned long long>(num_lookups),
              static_cast<unsigned long long>(batch_size),
              static_cast<unsigned long long>(conns),
              static_cast<unsigned long long>(pipeline));

  // Serving engine: hit-regime pools, no O_DIRECT — the bench measures the
  // network front end against an engine that is not device-bound.
  ShardedEngineOptions opts;
  opts.num_shards = shards;
  opts.num_workers = workers;
  opts.path_prefix = "/tmp/nblb_bench_netserving";
  opts.buffer_pool_frames_per_shard = 8192;
  opts.max_coalesce_window = 32;
  opts.io_backend = io_backend;
  opts.schema = WikipediaSynthesizer::RevisionSchema();
  opts.table_options.key_columns = {0};
  auto engine_result = ShardedEngine::Open(opts);
  if (!engine_result.ok()) {
    std::fprintf(stderr, "engine open: %s\n",
                 engine_result.status().ToString().c_str());
    return 1;
  }
  auto engine = std::move(*engine_result);
  if (Status s = LoadRows(engine.get(), rows, /*key_column=*/0, 512);
      !s.ok()) {
    std::fprintf(stderr, "load: %s\n", s.ToString().c_str());
    return 1;
  }
  bool engine_uring = true;
  for (uint32_t s = 0; s < shards; ++s) {
    engine_uring &= engine->shard(s)->database()->disk()->io_backend_in_use() ==
                    IoBackend::kUring;
  }

  // ---- Phase 1: in-process open-loop ceiling. ------------------------------
  std::printf("phase 1: in-process open-loop (inflight=%llu)...\n",
              static_cast<unsigned long long>(inflight));
  const ReplayReport inproc =
      ReplayBatchesOpenLoop(engine.get(), batches, inflight);
  const double inproc_p50 = Percentile(inproc.batch_seconds, 0.50) * 1e3;
  const double inproc_p99 = Percentile(inproc.batch_seconds, 0.99) * 1e3;
  std::printf("  %.0f ops/s, p50 %.3f ms, p99 %.3f ms, errors %llu\n",
              inproc.OpsPerSec(), inproc_p50, inproc_p99,
              static_cast<unsigned long long>(inproc.errors));

  // ---- Phase 2: the same engine behind the TCP front end. ------------------
  net::NetServerOptions sopts;
  sopts.io_backend = io_backend;
  sopts.max_inflight_per_conn = std::max<size_t>(pipeline * 2, 64);
  auto server_result = net::NetServer::Start(sopts, engine.get());
  if (!server_result.ok()) {
    std::fprintf(stderr, "server start: %s\n",
                 server_result.status().ToString().c_str());
    return 1;
  }
  auto server = std::move(*server_result);
  const char* net_backend =
      server->backend_in_use() == IoBackend::kUring ? "uring" : "epoll";
  std::printf("phase 2: loopback serving on port %u (%s loop, %llu conns)...\n",
              server->port(), net_backend,
              static_cast<unsigned long long>(conns));

  std::vector<std::vector<RequestBatch>> slices(conns);
  for (size_t i = 0; i < batches.size(); ++i) {
    slices[i % conns].push_back(batches[i]);
  }
  const NetPhaseResult net = RunNetPhase(*server, slices, pipeline);
  const double ratio =
      inproc.OpsPerSec() > 0 ? net.ops_per_sec / inproc.OpsPerSec() : 0;
  std::printf(
      "  %.0f ops/s (x%.2f of in-process), p50 %.3f ms, p99 %.3f ms, "
      "errors %llu\n",
      net.ops_per_sec, ratio, net.p50_batch_ms, net.p99_batch_ms,
      static_cast<unsigned long long>(net.errors));

  // Capture the unified document while server + engine are live: net.*
  // plus the engine/shard layers, merged (the CI gate schema-checks it).
  const std::string metrics_json = server->DumpMetrics();
  server.reset();

  // ---- Phase 3: overload must shed, not collapse. --------------------------
  NetPhaseResult overload;
  uint64_t busy_shed_frames = 0;
  if (run_overload) {
    ShardedEngineOptions oopts;
    oopts.num_shards = 2;
    oopts.num_workers = 2;
    oopts.path_prefix = "/tmp/nblb_bench_netserving_ovl";
    oopts.buffer_pool_frames_per_shard = 1024;
    oopts.schema = WikipediaSynthesizer::RevisionSchema();
    oopts.table_options.key_columns = {0};
    oopts.max_queue_depth = 4;
    oopts.busy_fail_fast = true;  // required behind a NetServer
    auto ovl_engine_result = ShardedEngine::Open(oopts);
    if (!ovl_engine_result.ok()) {
      std::fprintf(stderr, "overload engine open: %s\n",
                   ovl_engine_result.status().ToString().c_str());
      return 1;
    }
    auto ovl_engine = std::move(*ovl_engine_result);
    std::vector<Row> seed(rows.begin(),
                          rows.begin() + std::min<size_t>(rows.size(), 4096));
    if (Status s = LoadRows(ovl_engine.get(), seed, 0, 512); !s.ok()) {
      std::fprintf(stderr, "overload load: %s\n", s.ToString().c_str());
      return 1;
    }
    net::NetServerOptions ovl_sopts;
    ovl_sopts.io_backend = io_backend;
    ovl_sopts.max_inflight_per_conn = 4;  // well under the drive depth below
    auto ovl_server_result =
        net::NetServer::Start(ovl_sopts, ovl_engine.get());
    if (!ovl_server_result.ok()) {
      std::fprintf(stderr, "overload server start: %s\n",
                   ovl_server_result.status().ToString().c_str());
      return 1;
    }
    auto ovl_server = std::move(*ovl_server_result);
    std::printf("phase 3: overload (caps conn=4, queue_depth=4, drive "
                "depth %llu)...\n",
                static_cast<unsigned long long>(pipeline));

    // Over-drive: every connection pipelines far past the admission caps.
    const size_t ovl_batches_per_conn =
        std::max<size_t>(500, batches.size() / (conns * 4));
    std::vector<std::vector<RequestBatch>> ovl_slices(conns);
    for (size_t c = 0; c < conns; ++c) {
      for (size_t i = 0; i < ovl_batches_per_conn; ++i) {
        ovl_slices[c].push_back(batches[(c + i * conns) % batches.size()]);
      }
    }
    overload = RunNetPhase(*ovl_server, ovl_slices, pipeline);
    busy_shed_frames = ovl_server->stats().busy_shed;
    const double shed_fraction =
        overload.requests > 0
            ? static_cast<double>(overload.busy) / overload.requests
            : 0;
    std::printf(
        "  %llu requests: %llu served, %llu busy (%.1f%% shed, %llu "
        "server-side shed frames), errors %llu\n",
        static_cast<unsigned long long>(overload.requests),
        static_cast<unsigned long long>(overload.found + overload.not_found),
        static_cast<unsigned long long>(overload.busy), shed_fraction * 100,
        static_cast<unsigned long long>(busy_shed_frames),
        static_cast<unsigned long long>(overload.errors));
    if (overload.errors > 0) {
      std::fprintf(stderr,
                   "overload phase saw transport errors: admission control "
                   "failed to shed cleanly\n");
      return 1;
    }
  }

  // ---- JSON ----------------------------------------------------------------
  const char* json_path = std::getenv("NBLB_BENCH_JSON_PATH");
  FILE* f =
      std::fopen(json_path ? json_path : "BENCH_net_serving.json", "w");
  if (!f) {
    std::fprintf(stderr, "cannot open JSON output file\n");
    return 1;
  }
  std::fprintf(
      f,
      "{\n  \"bench\": \"net_serving\",\n"
      "  \"git_sha\": \"%s\",\n"
      "  \"rows\": %zu,\n  \"lookups\": %llu,\n  \"batch_size\": %llu,\n"
      "  \"shards\": %u,\n  \"workers\": %u,\n"
      "  \"connections\": %llu,\n  \"pipeline_depth\": %llu,\n"
      "  \"inflight\": %llu,\n"
      "  \"io_backend\": \"%s\",\n"
      "  \"net_backend_effective\": \"%s\",\n"
      "  \"engine_io_backend_effective\": \"%s\",\n"
      "  \"inprocess\": {\n"
      "    \"seconds\": %.4f, \"ops_per_sec\": %.1f,\n"
      "    \"p50_batch_ms\": %.4f, \"p99_batch_ms\": %.4f,\n"
      "    \"errors\": %llu\n  },\n"
      "  \"net\": {\n"
      "    \"seconds\": %.4f, \"ops_per_sec\": %.1f,\n"
      "    \"p50_batch_ms\": %.4f, \"p99_batch_ms\": %.4f,\n"
      "    \"found\": %llu, \"not_found\": %llu, \"busy\": %llu, "
      "\"errors\": %llu,\n"
      "    \"ratio_vs_inprocess\": %.4f\n  }",
      GitSha(), rows.size(), static_cast<unsigned long long>(num_lookups),
      static_cast<unsigned long long>(batch_size), shards, workers,
      static_cast<unsigned long long>(conns),
      static_cast<unsigned long long>(pipeline),
      static_cast<unsigned long long>(inflight), io_name, net_backend,
      engine_uring ? "uring" : "threads", inproc.seconds, inproc.OpsPerSec(),
      inproc_p50, inproc_p99, static_cast<unsigned long long>(inproc.errors),
      net.seconds, net.ops_per_sec, net.p50_batch_ms, net.p99_batch_ms,
      static_cast<unsigned long long>(net.found),
      static_cast<unsigned long long>(net.not_found),
      static_cast<unsigned long long>(net.busy),
      static_cast<unsigned long long>(net.errors), ratio);
  if (run_overload) {
    std::fprintf(
        f,
        ",\n  \"overload\": {\n"
        "    \"requests\": %llu, \"served\": %llu, \"busy\": %llu, "
        "\"errors\": %llu,\n"
        "    \"busy_shed_frames\": %llu,\n"
        "    \"shed_fraction\": %.4f\n  }",
        static_cast<unsigned long long>(overload.requests),
        static_cast<unsigned long long>(overload.found + overload.not_found),
        static_cast<unsigned long long>(overload.busy),
        static_cast<unsigned long long>(overload.errors),
        static_cast<unsigned long long>(busy_shed_frames),
        overload.requests > 0
            ? static_cast<double>(overload.busy) / overload.requests
            : 0);
  }
  std::fprintf(f, ",\n  \"metrics\": %s\n}\n", metrics_json.c_str());
  std::fclose(f);
  std::printf("wrote %s\n", json_path ? json_path : "BENCH_net_serving.json");

  engine.reset();
  for (uint32_t s = 0; s < shards; ++s) {
    std::remove(
        (opts.path_prefix + ".shard" + std::to_string(s) + ".db").c_str());
  }
  if (run_overload) {
    for (uint32_t s = 0; s < 2; ++s) {
      std::remove(("/tmp/nblb_bench_netserving_ovl.shard" +
                   std::to_string(s) + ".db")
                      .c_str());
    }
  }
  return 0;
}
