// shard_throughput: sweeps shard count × worker-thread count over a
// 1M-row Zipfian Wikipedia revision workload served by ShardedEngine, and
// reports aggregate lookup throughput and tail latency — closed-loop
// (blocking Execute, one batch in flight per client) AND open-loop (async
// Submit at a sustained in-flight depth) for every configuration.
//
// The sweep follows the scale-out model: every shard is a "node" with a
// fixed per-shard buffer pool, so 4 shards hold 4× the aggregate hot set of
// 1 shard. That is the paper's §3.1 argument (shrink the per-node index
// until it is RAM-resident) realized by the serving layer: the monolithic
// configuration thrashes its buffer pool on the scattered hot tuples (one
// hot revision per heap page), while the sharded one serves mostly from
// memory. Worker threads add pipeline overlap between routing (client
// thread) and execution (shard owners), and overlap the shards' misses —
// the device serves several outstanding reads while the CPU keeps routing.
//
// The open-loop phase is the "no I/O slot left idle" experiment: a
// closed-loop client's queue depth collapses to its thread count, so batch
// coalescing and preadv run length collapse with it; the open-loop driver
// keeps ≥ --inflight tickets outstanding, the per-shard adaptive window
// grows, and each service group drains more sub-batches per descent/syscall.
// Queue-depth, coalesced-group and service-latency distributions for both
// phases come from the engine's per-shard log-histograms.
//
// Shard files are opened with O_DIRECT (--direct=0 disables) so a
// buffer-pool miss pays real device latency rather than an OS page-cache
// copy; without it the host cache absorbs the entire dataset and the
// RAM-residency effect this benchmark exists to measure disappears.
//
// Output: a human-readable table on stdout, and machine-readable JSON
// written to BENCH_shard_throughput.json (or $NBLB_BENCH_JSON_PATH).
//
// JSON schema (all times seconds unless suffixed _ms/_us; one object):
// {
//   "bench": "shard_throughput",
//   "git_sha": "<commit the binary was configured from>",
//   "rows": <uint>,              // rows loaded per configuration
//   "lookups": <uint>,           // traced lookups per configuration
//   "batch_size": <uint>,        // requests per Execute/Submit call
//   "page_size": <uint>,
//   "frames_per_shard": <uint>,  // per-shard buffer pool capacity
//   "direct_io": <0|1>,          // O_DIRECT shard files
//   "inflight": <uint>,          // open-loop target in-flight depth
//   "configs": [                 // one entry per (shards, workers) point
//     {
//       "shards": <uint>, "workers": <uint>, "clients": <uint>,
//       "load_seconds": <float>, "load_ops_per_sec": <float>,
//       "lookup_seconds": <float>, "ops_per_sec": <float>,
//       "p50_batch_ms": <float>, "p99_batch_ms": <float>,
//       "found": <uint>, "not_found": <uint>, "errors": <uint>,
//       "bp_hit_rate": <float>,  // aggregated over shards, closed phase
//       "disk_reads": <uint>,    // aggregated over shards, closed phase
//       "queue_depth_p50": <uint>, "queue_depth_p99": <uint>,
//       "queue_depth_max": <uint>,      // log-bucket upper bounds
//       "coalesce_p50": <uint>, "coalesce_max": <uint>,
//       "avg_coalesce": <float>,        // sub-batches per service group
//       "service_us_p50": <uint>, "service_us_p99": <uint>,
//       "trace": {                      // sampled-tracing breakdown of the
//         "sampled": <uint>,            // closed phase (trace.* histogram
//         "<phase>_us": {"count","p50","p99","max"}, ...  // deltas); phases:
//       },                              // queue_wait service get_batch
//                                       // fetch_start io_submit device_wait
//                                       // copy completion end_to_end
//       "direct_io_effective": <0|1>,   // every shard file really O_DIRECT
//                                       // (0 = fs refused; page-cache run)
//       "open_loop": {                  // async Submit phase, same batches
//         "inflight": <uint>,
//         "lookup_seconds": <float>, "ops_per_sec": <float>,
//         "p50_batch_ms": <float>, "p99_batch_ms": <float>,
//         "found": <uint>, "not_found": <uint>, "errors": <uint>,
//         "bp_hit_rate": <float>, "disk_reads": <uint>,
//         "queue_depth_p50": <uint>, "queue_depth_p99": <uint>,
//         "queue_depth_max": <uint>,
//         "coalesce_p50": <uint>, "coalesce_max": <uint>,
//         "avg_coalesce": <float>,
//         "service_us_p50": <uint>, "service_us_p99": <uint>,
//         "trace": { ... }              // same shape, open-phase delta
//       },
//       "metrics": { ... }              // engine->DumpMetrics(): the full
//                                       // unified registry document
//                                       // (counters/gauges/histograms over
//                                       // engine./trace./shard<i>.* names)
//     }, ...
//   ],
//   "speedup_4s4t_vs_1s1t": <float>,    // closed-loop ratio, the headline
//   "openloop_speedup_4s4w": <float>    // open vs closed at 4 shards/4 wkrs
//                                       // (omitted with --openloop=0, as is
//                                       // each config's "open_loop" object)
// }
//
// After the open-loop phase every configuration runs a WRITE-HEAVY phase:
// a mixed kGet/kUpdate scrambled-Zipfian trace over the loaded rows
// (--mixed_update percent updates), replayed closed-loop with the
// background flusher ON — first with write-back forced to the synchronous
// per-page pwrite baseline ("mixed_sync"), then through the async batched
// write pipeline ("mixed"). Updates dirty heap pages faster than a
// per-page flusher can retire them on O_DIRECT storage, so this phase
// measures exactly the write-back path: flusher group writes, batched
// eviction-victim write-back, and the group-fsync checkpoint between
// phases. Each mixed phase starts from a per-shard Checkpoint so warmth
// and dirty backlog are comparable.
//
// JSON: each config gains "mixed_sync" and "mixed" objects
// ({ops_per_sec, p50/p99, errors, bp_hit_rate, disk_reads, disk_writes,
// async_writes, async_write_batches, write_runs, flusher_pages,
// flusher_coalesced_runs, dirty_writebacks}), and the top level gains
// "mixed_ops", "mixed_update_fraction", "mixed_flusher_us" and
// "mixed_speedup_4s4w" (batched vs sync write-back throughput at 4s/4w).
//
// Flags: --rows=N --lookups=N --batch=N --frames=N --direct=0|1
// --inflight=N --openloop=0|1 --deadline_us=N --io=auto|uring|threads
// --flusher_us=N (0 = background flusher off for the read phases)
// --flush_batch=N --max_queue=N (0 = unbounded Submit; >0 bounds each
// shard queue, blocking policy) --mixed=0|1 --mixed_ops=N (0 = lookups/2)
// --mixed_update=PCT --mixed_flusher_us=N (flusher cadence during the
// mixed phases when --flusher_us=0) --trace_every=N (sample 1-in-N
// sub-batches for tracing; 0 disables, NBLB_OBS_OFF=1 overrides to off)
// (defaults below). The JSON gains "io_backend" (requested),
// "io_backend_effective" (what every shard actually runs after runtime
// probing), "flusher_interval_us", "max_queue_depth" and "trace_every".

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <unordered_map>

#include "obs/metrics.h"
#include "shard/sharded_engine.h"
#include "workload/replay.h"
#include "workload/trace.h"
#include "workload/wikipedia.h"

namespace nblb::bench {
namespace {

/// Distribution summary of one measurement phase, from the engine's
/// per-shard log-histograms (values are log-bucket upper bounds).
struct PhaseDist {
  uint64_t queue_depth_p50 = 0;
  uint64_t queue_depth_p99 = 0;
  uint64_t queue_depth_max = 0;
  uint64_t coalesce_p50 = 0;
  uint64_t coalesce_max = 0;
  double avg_coalesce = 0;
  uint64_t service_us_p50 = 0;
  uint64_t service_us_p99 = 0;
};

PhaseDist DistOf(const ShardStatsSnapshot& delta) {
  PhaseDist d;
  d.queue_depth_p50 = delta.queue_depth.ApproxPercentile(0.50);
  d.queue_depth_p99 = delta.queue_depth.ApproxPercentile(0.99);
  d.queue_depth_max = delta.queue_depth.ApproxMax();
  d.coalesce_p50 = delta.coalesced.ApproxPercentile(0.50);
  d.coalesce_max = delta.coalesced.ApproxMax();
  d.avg_coalesce = delta.coalesced_groups == 0
                       ? 0
                       : static_cast<double>(delta.sub_batches) /
                             static_cast<double>(delta.coalesced_groups);
  d.service_us_p50 = delta.sub_batch_latency_us.ApproxPercentile(0.50);
  d.service_us_p99 = delta.sub_batch_latency_us.ApproxPercentile(0.99);
  return d;
}

/// Write-path counters summed over shards (disk + buffer pool), for
/// phase deltas of the mixed write-heavy phases.
struct WriteCounters {
  uint64_t writes = 0;
  uint64_t async_writes = 0;
  uint64_t async_write_batches = 0;
  uint64_t write_runs = 0;
  uint64_t flusher_pages = 0;
  uint64_t flusher_coalesced_runs = 0;
  uint64_t dirty_writebacks = 0;
};

/// One replay phase's throughput numbers.
struct PhaseResult {
  double seconds = 0;
  double ops_per_sec = 0;
  double p50_batch_ms = 0;
  double p99_batch_ms = 0;
  uint64_t found = 0;
  uint64_t not_found = 0;
  uint64_t errors = 0;
  double bp_hit_rate = 0;
  uint64_t disk_reads = 0;
  PhaseDist dist;
  WriteCounters wio;  ///< filled for the mixed phases only
  /// Sampled-tracing breakdown of this phase (JSON fragment from the
  /// "trace.*" histogram delta); empty when tracing was off.
  std::string trace_json;
};

struct ConfigResult {
  uint32_t shards = 0;
  uint32_t workers = 0;
  uint32_t clients = 0;
  double load_seconds = 0;
  double load_ops_per_sec = 0;
  PhaseResult closed;
  PhaseResult open;
  PhaseResult mixed_sync;  ///< write-heavy, per-page pwrite baseline
  PhaseResult mixed;       ///< write-heavy, async batched write-back
  bool open_ran = false;
  bool mixed_ran = false;
  size_t inflight = 0;
  bool direct_io_effective = false;
  bool uring_effective = false;
  /// The engine's full unified-metrics document (DumpMetrics), captured at
  /// config teardown: every layer's counters/gauges/histograms in one JSON
  /// object, embedded verbatim under "metrics".
  std::string metrics_json;
};

/// Serializes the per-phase sampled-tracing latency breakdown out of a
/// metrics-snapshot delta: {"sampled": N, "<phase>_us": {count,p50,p99,max}}
/// for every trace phase that recorded anything during the phase.
std::string TraceBreakdownJson(const MetricsSnapshot& delta) {
  std::string out = "{";
  char buf[160];
  uint64_t sampled = 0;
  if (auto it = delta.counters.find("trace.sampled");
      it != delta.counters.end()) {
    sampled = it->second;
  }
  std::snprintf(buf, sizeof(buf), "\"sampled\": %llu",
                static_cast<unsigned long long>(sampled));
  out.append(buf);
  static const char* kPhases[] = {"queue_wait",  "service",     "get_batch",
                                  "fetch_start", "io_submit",   "device_wait",
                                  "copy",        "completion",  "end_to_end"};
  for (const char* phase : kPhases) {
    const auto it = delta.histograms.find(std::string("trace.") + phase +
                                          "_us");
    if (it == delta.histograms.end() || it->second.count() == 0) continue;
    const LogHistogramSnapshot& h = it->second;
    std::snprintf(
        buf, sizeof(buf),
        ", \"%s_us\": {\"count\": %llu, \"p50\": %llu, \"p99\": %llu, "
        "\"max\": %llu}",
        phase, static_cast<unsigned long long>(h.count()),
        static_cast<unsigned long long>(h.ValueAtQuantile(0.50)),
        static_cast<unsigned long long>(h.ValueAtQuantile(0.99)),
        static_cast<unsigned long long>(h.ApproxMax()));
    out.append(buf);
  }
  out.push_back('}');
  return out;
}

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0;
  std::sort(xs.begin(), xs.end());
  const size_t i = std::min(xs.size() - 1,
                            static_cast<size_t>(p * (xs.size() - 1) + 0.5));
  return xs[i];
}

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Buffer-pool / disk counters summed over shards, for phase deltas.
struct IoCounters {
  uint64_t reads = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
};

IoCounters IoCountersOf(ShardedEngine* engine) {
  IoCounters c;
  for (uint32_t s = 0; s < engine->num_shards(); ++s) {
    c.reads += engine->shard(s)->database()->disk()->stats().reads;
    c.hits += engine->shard(s)->database()->buffer_pool()->stats().hits;
    c.misses += engine->shard(s)->database()->buffer_pool()->stats().misses;
  }
  return c;
}

WriteCounters WriteCountersOf(ShardedEngine* engine) {
  WriteCounters c;
  for (uint32_t s = 0; s < engine->num_shards(); ++s) {
    const DiskStats d = engine->shard(s)->database()->disk()->stats();
    const BufferPoolStats p =
        engine->shard(s)->database()->buffer_pool()->stats();
    c.writes += d.writes;
    c.async_writes += d.async_writes;
    c.async_write_batches += d.async_write_batches;
    c.write_runs += d.write_runs;
    c.flusher_pages += p.flusher_pages;
    c.flusher_coalesced_runs += p.flusher_coalesced_runs;
    c.dirty_writebacks += p.dirty_writebacks;
  }
  return c;
}

WriteCounters Delta(const WriteCounters& a, const WriteCounters& b) {
  WriteCounters d;
  d.writes = b.writes - a.writes;
  d.async_writes = b.async_writes - a.async_writes;
  d.async_write_batches = b.async_write_batches - a.async_write_batches;
  d.write_runs = b.write_runs - a.write_runs;
  d.flusher_pages = b.flusher_pages - a.flusher_pages;
  d.flusher_coalesced_runs =
      b.flusher_coalesced_runs - a.flusher_coalesced_runs;
  d.dirty_writebacks = b.dirty_writebacks - a.dirty_writebacks;
  return d;
}

void FillPhaseIo(PhaseResult* phase, const IoCounters& before,
                 const IoCounters& after) {
  phase->disk_reads = after.reads - before.reads;
  const uint64_t accesses =
      (after.hits - before.hits) + (after.misses - before.misses);
  phase->bp_hit_rate = accesses == 0 ? 0
                                     : static_cast<double>(after.hits -
                                                           before.hits) /
                                           static_cast<double>(accesses);
}

void FillPhaseReport(PhaseResult* phase, uint64_t ops,
                     const std::vector<double>& batch_seconds,
                     double seconds) {
  phase->seconds = seconds;
  phase->ops_per_sec = seconds > 0 ? ops / seconds : 0;
  phase->p50_batch_ms = Percentile(batch_seconds, 0.50) * 1e3;
  phase->p99_batch_ms = Percentile(batch_seconds, 0.99) * 1e3;
}

/// Runs one (shards, workers) point: fresh engine, bulk load, closed-loop
/// multi-client replay of the Zipfian revision trace, then an open-loop
/// async replay of the same batches at --inflight depth.
struct IoKnobs {
  IoBackend backend = IoBackend::kAuto;
  uint64_t flusher_us = 0;
  size_t flush_batch = 64;
  size_t max_queue = 0;
  /// Flusher cadence for the mixed write phases when flusher_us == 0 (the
  /// read phases then run flusher-less exactly as before).
  uint64_t mixed_flusher_us = 2000;
  /// Request-tracing sample rate: 1-in-N sub-batches carry a TraceContext
  /// (0 disables sampling; NBLB_OBS_OFF=1 disables it regardless).
  uint64_t trace_every = 32;
};

/// Runs one closed-loop replay of `batches` over `clients` threads and
/// fills `phase` (throughput, latency percentiles, IO + write deltas).
void RunClosedPhase(ShardedEngine* engine, uint32_t clients,
                    const std::vector<RequestBatch>& batches,
                    PhaseResult* phase) {
  std::vector<std::vector<RequestBatch>> slices(clients);
  for (size_t i = 0; i < batches.size(); ++i) {
    slices[i % clients].push_back(batches[i]);
  }
  std::vector<ReplayReport> reports(clients);
  const double start = Now();
  std::vector<std::thread> threads;
  for (uint32_t c = 0; c < clients; ++c) {
    threads.emplace_back(
        [&, c] { reports[c] = ReplayBatches(engine, slices[c]); });
  }
  for (auto& t : threads) t.join();
  const double seconds = Now() - start;

  std::vector<double> batch_seconds;
  uint64_t ops = 0;
  for (const auto& rep : reports) {
    ops += rep.ops;
    phase->found += rep.found;
    phase->not_found += rep.not_found;
    phase->errors += rep.errors;
    batch_seconds.insert(batch_seconds.end(), rep.batch_seconds.begin(),
                         rep.batch_seconds.end());
  }
  FillPhaseReport(phase, ops, batch_seconds, seconds);
}

ConfigResult RunConfig(uint32_t shards, uint32_t workers,
                       const std::vector<Row>& rows,
                       const std::vector<RequestBatch>& batches,
                       const std::vector<RequestBatch>& mixed_batches,
                       size_t frames_per_shard, bool direct_io,
                       size_t inflight, bool run_openloop,
                       uint32_t deadline_us, const IoKnobs& io) {
  ConfigResult r;
  r.shards = shards;
  r.workers = workers;
  r.clients = workers;
  r.inflight = inflight;

  ShardedEngineOptions opts;
  opts.num_shards = shards;
  opts.num_workers = workers;
  opts.path_prefix =
      "/tmp/nblb_bench_shardtp_" + std::to_string(shards) + "x" +
      std::to_string(workers);
  opts.buffer_pool_frames_per_shard = frames_per_shard;
  opts.direct_io = direct_io;
  opts.max_coalesce_window = 32;
  opts.drain_deadline_us = deadline_us;
  opts.io_backend = io.backend;
  opts.flusher_interval_us = io.flusher_us;
  opts.flush_batch_pages = io.flush_batch;
  opts.max_queue_depth = io.max_queue;
  opts.trace_sample_every = io.trace_every;
  opts.schema = WikipediaSynthesizer::RevisionSchema();
  opts.table_options.key_columns = {0};
  auto engine_result = ShardedEngine::Open(opts);
  if (!engine_result.ok()) {
    std::fprintf(stderr, "engine open: %s\n",
                 engine_result.status().ToString().c_str());
    std::exit(1);
  }
  auto engine = std::move(*engine_result);

  // Record what the filesystem actually gave us: a silent O_DIRECT
  // fallback would measure the OS page cache instead of the device.
  r.direct_io_effective = true;
  r.uring_effective = true;
  for (uint32_t s = 0; s < shards; ++s) {
    r.direct_io_effective &=
        engine->shard(s)->database()->disk()->direct_io();
    r.uring_effective &= engine->shard(s)->database()->disk()
                             ->io_backend_in_use() == IoBackend::kUring;
  }
  if (direct_io && !r.direct_io_effective) {
    std::fprintf(stderr,
                 "warning: O_DIRECT unavailable on shard files; results "
                 "measure the page cache, not the device\n");
  }

  const double load_start = Now();
  if (Status s = LoadRows(engine.get(), rows, /*key_column=*/0, 512);
      !s.ok()) {
    std::fprintf(stderr, "load: %s\n", s.ToString().c_str());
    std::exit(1);
  }
  r.load_seconds = Now() - load_start;
  r.load_ops_per_sec = rows.size() / r.load_seconds;

  // ---- Closed-loop phase: blocking Execute, one batch per client thread.
  IoCounters io_before = IoCountersOf(engine.get());
  ShardStatsSnapshot stats_before = engine->TotalShardStats();
  MetricsSnapshot m_before = engine->MetricsSnapshotNow();

  const uint32_t clients = r.clients;
  RunClosedPhase(engine.get(), clients, batches, &r.closed);
  IoCounters io_mid = IoCountersOf(engine.get());
  FillPhaseIo(&r.closed, io_before, io_mid);
  ShardStatsSnapshot stats_mid = engine->TotalShardStats();
  {
    ShardStatsSnapshot delta = stats_mid;
    delta -= stats_before;
    r.closed.dist = DistOf(delta);
  }
  MetricsSnapshot m_mid = engine->MetricsSnapshotNow();
  {
    MetricsSnapshot delta = m_mid;
    delta -= m_before;
    r.closed.trace_json = TraceBreakdownJson(delta);
  }

  // ---- Open-loop phase: async Submit at sustained in-flight depth, same
  // batches. The pool is warm from the closed phase in the hit regime; in
  // the miss regime the working set exceeds the pool either way, so the
  // comparison measures pipelining + coalescing, not cache warmth.
  if (run_openloop) {
    r.open_ran = true;
    ReplayReport rep =
        ReplayBatchesOpenLoop(engine.get(), batches, inflight);
    r.open.found = rep.found;
    r.open.not_found = rep.not_found;
    r.open.errors = rep.errors;
    FillPhaseReport(&r.open, rep.ops, rep.batch_seconds, rep.seconds);
    IoCounters io_after = IoCountersOf(engine.get());
    FillPhaseIo(&r.open, io_mid, io_after);
    ShardStatsSnapshot stats_after = engine->TotalShardStats();
    ShardStatsSnapshot delta = stats_after;
    delta -= stats_mid;
    r.open.dist = DistOf(delta);
    MetricsSnapshot m_after = engine->MetricsSnapshotNow();
    MetricsSnapshot mdelta = m_after;
    mdelta -= m_mid;
    r.open.trace_json = TraceBreakdownJson(mdelta);
  }

  // ---- Mixed write-heavy phases: per-page-pwrite baseline, then the
  // async batched write pipeline, over identical batches. The flusher is
  // ON for both (started here if the read phases ran without one), each
  // phase starts from a group-fsync Checkpoint so the dirty backlog and
  // pool warmth are comparable, and updates against O_DIRECT storage keep
  // the write-back path saturated.
  if (!mixed_batches.empty()) {
    r.mixed_ran = true;
    if (io.flusher_us == 0 && io.mixed_flusher_us > 0) {
      for (uint32_t s = 0; s < shards; ++s) {
        engine->shard(s)->database()->buffer_pool()->StartFlusher(
            io.mixed_flusher_us, io.flush_batch);
      }
    }
    // Warmup: one discarded replay of the same batches, so BOTH legs run
    // at steady-state residency. Without it the first leg pays the mixed
    // trace's cold faults and hands the second a pre-warmed pool — an
    // order bias in whichever direction runs second.
    {
      PhaseResult discard;
      RunClosedPhase(engine.get(), clients, mixed_batches, &discard);
    }
    for (const bool sync_wb : {true, false}) {
      PhaseResult* phase = sync_wb ? &r.mixed_sync : &r.mixed;
      for (uint32_t s = 0; s < shards; ++s) {
        Database* db = engine->shard(s)->database();
        db->buffer_pool()->set_sync_writeback(sync_wb);
        if (Status cs = db->Checkpoint(); !cs.ok()) {
          std::fprintf(stderr, "checkpoint: %s\n", cs.ToString().c_str());
          std::exit(1);
        }
      }
      const IoCounters io_before_mixed = IoCountersOf(engine.get());
      const WriteCounters w_before = WriteCountersOf(engine.get());
      RunClosedPhase(engine.get(), clients, mixed_batches, phase);
      FillPhaseIo(phase, io_before_mixed, IoCountersOf(engine.get()));
      phase->wio = Delta(w_before, WriteCountersOf(engine.get()));
    }
  }

  // Capture the unified metrics document before the engine (and with it
  // every layer's registered metric) is torn down.
  r.metrics_json = engine->DumpMetrics();

  for (uint32_t s = 0; s < shards; ++s) {
    std::remove(
        (opts.path_prefix + ".shard" + std::to_string(s) + ".db").c_str());
  }
  return r;
}

uint64_t FlagOr(int argc, char** argv, const char* name, uint64_t fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::strtoull(argv[i] + prefix.size(), nullptr, 10);
    }
  }
  return fallback;
}

const char* GitSha() {
#ifdef NBLB_GIT_SHA
  return NBLB_GIT_SHA;
#else
  return "unknown";
#endif
}

/// One mixed write-phase object: throughput + the write-path counters.
void PrintMixedPhaseJson(FILE* f, const char* name, const PhaseResult& p) {
  std::fprintf(
      f,
      ",\n     \"%s\": {\n"
      "       \"lookup_seconds\": %.4f, \"ops_per_sec\": %.1f,\n"
      "       \"p50_batch_ms\": %.4f, \"p99_batch_ms\": %.4f,\n"
      "       \"found\": %llu, \"not_found\": %llu, \"errors\": %llu,\n"
      "       \"bp_hit_rate\": %.6f, \"disk_reads\": %llu,\n"
      "       \"disk_writes\": %llu, \"async_writes\": %llu,\n"
      "       \"async_write_batches\": %llu, \"write_runs\": %llu,\n"
      "       \"flusher_pages\": %llu, \"flusher_coalesced_runs\": %llu,\n"
      "       \"dirty_writebacks\": %llu\n     }",
      name, p.seconds, p.ops_per_sec, p.p50_batch_ms, p.p99_batch_ms,
      static_cast<unsigned long long>(p.found),
      static_cast<unsigned long long>(p.not_found),
      static_cast<unsigned long long>(p.errors), p.bp_hit_rate,
      static_cast<unsigned long long>(p.disk_reads),
      static_cast<unsigned long long>(p.wio.writes),
      static_cast<unsigned long long>(p.wio.async_writes),
      static_cast<unsigned long long>(p.wio.async_write_batches),
      static_cast<unsigned long long>(p.wio.write_runs),
      static_cast<unsigned long long>(p.wio.flusher_pages),
      static_cast<unsigned long long>(p.wio.flusher_coalesced_runs),
      static_cast<unsigned long long>(p.wio.dirty_writebacks));
}

void PrintPhaseDistJson(FILE* f, const char* indent, const PhaseResult& p) {
  std::fprintf(
      f,
      "%s\"queue_depth_p50\": %llu, \"queue_depth_p99\": %llu, "
      "\"queue_depth_max\": %llu,\n"
      "%s\"coalesce_p50\": %llu, \"coalesce_max\": %llu, "
      "\"avg_coalesce\": %.3f,\n"
      "%s\"service_us_p50\": %llu, \"service_us_p99\": %llu",
      indent, static_cast<unsigned long long>(p.dist.queue_depth_p50),
      static_cast<unsigned long long>(p.dist.queue_depth_p99),
      static_cast<unsigned long long>(p.dist.queue_depth_max), indent,
      static_cast<unsigned long long>(p.dist.coalesce_p50),
      static_cast<unsigned long long>(p.dist.coalesce_max),
      p.dist.avg_coalesce, indent,
      static_cast<unsigned long long>(p.dist.service_us_p50),
      static_cast<unsigned long long>(p.dist.service_us_p99));
}

}  // namespace
}  // namespace nblb::bench

int main(int argc, char** argv) {
  using namespace nblb;
  using namespace nblb::bench;

  const uint64_t target_rows = FlagOr(argc, argv, "rows", 1000000);
  const uint64_t num_lookups = FlagOr(argc, argv, "lookups", 400000);
  const uint64_t batch_size = FlagOr(argc, argv, "batch", 64);
  // 4096 frames × 8 KiB = 32 MiB per shard-node: the 1M-row workload's hot
  // set (~15k heap pages — Wikipedia's latest revisions) overflows one
  // node's budget but fits four, which is precisely the regime §3.1 is
  // about.
  const uint64_t frames = FlagOr(argc, argv, "frames", 4096);
  const bool direct_io = FlagOr(argc, argv, "direct", 1) != 0;
  const uint64_t inflight = FlagOr(argc, argv, "inflight", 64);
  const bool run_openloop = FlagOr(argc, argv, "openloop", 1) != 0;
  // Default 0: the drain-deadline hold applies to whichever engine it is
  // set on — and both phases share one engine per config — so a non-zero
  // default would tax the closed-loop baseline with Nagle stalls the old
  // bench never paid. Open-loop coalescing comes from sustained queue
  // depth; it does not need the hold to win. Set --deadline_us to measure
  // the hold itself (it then applies to BOTH phases).
  const uint64_t deadline_us = FlagOr(argc, argv, "deadline_us", 0);
  IoKnobs io;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--io=uring") == 0) io.backend = IoBackend::kUring;
    if (std::strcmp(argv[i], "--io=threads") == 0) {
      io.backend = IoBackend::kThreads;
    }
  }
  io.flusher_us = FlagOr(argc, argv, "flusher_us", 0);
  io.flush_batch = FlagOr(argc, argv, "flush_batch", 64);
  io.max_queue = FlagOr(argc, argv, "max_queue", 0);
  io.mixed_flusher_us = FlagOr(argc, argv, "mixed_flusher_us", 2000);
  io.trace_every = FlagOr(argc, argv, "trace_every", 32);
  const bool run_mixed = FlagOr(argc, argv, "mixed", 1) != 0;
  const uint64_t mixed_ops =
      FlagOr(argc, argv, "mixed_ops", 0) != 0
          ? FlagOr(argc, argv, "mixed_ops", 0)
          : num_lookups / 2;
  const uint64_t mixed_update_pct = FlagOr(argc, argv, "mixed_update", 50);

  // ~20 revisions/page (the synthesizer's hot fraction is 1/this).
  WikipediaScale scale;
  scale.revisions_per_page = 20;
  scale.num_pages = std::max<uint64_t>(1, target_rows / 20);
  WikipediaSynthesizer wiki(scale);

  std::printf("generating ~%llu revision rows...\n",
              static_cast<unsigned long long>(target_rows));
  const std::vector<Row>& rows = wiki.revisions();
  const auto batches = BuildLookupBatches(
      wiki.RevisionLookupTrace(num_lookups), batch_size);

  // Mixed kGet/kUpdate trace for the write-heavy phase: scrambled-Zipfian
  // popularity over every loaded row, update rows replayed verbatim (the
  // heap rewrite dirties the page either way — this phase measures
  // write-back, not codec cost).
  std::vector<RequestBatch> mixed_batches;
  if (run_mixed) {
    std::unordered_map<uint64_t, size_t> row_by_id;
    row_by_id.reserve(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      row_by_id[static_cast<uint64_t>(rows[i][0].AsInt())] = i;
    }
    TraceOptions topt;
    topt.num_items = rows.size();
    topt.num_ops = mixed_ops;
    topt.distribution = TraceDistribution::kScrambledZipfian;
    topt.mix.lookup = 1.0 - static_cast<double>(mixed_update_pct) / 100.0;
    topt.mix.update = static_cast<double>(mixed_update_pct) / 100.0;
    topt.seed = 7;
    std::vector<Op> ops = BuildTrace(topt);
    for (Op& op : ops) {  // trace items are row indexes; ops carry routing ids
      op.item = static_cast<uint64_t>(rows[op.item][0].AsInt());
    }
    mixed_batches = BuildOpBatches(
        ops, [&](uint64_t id) { return rows[row_by_id[id]]; }, batch_size);
  }
  std::printf(
      "rows=%zu lookups=%llu batch=%llu frames/shard=%llu direct=%d "
      "inflight=%llu\n",
      rows.size(), static_cast<unsigned long long>(num_lookups),
      static_cast<unsigned long long>(batch_size),
      static_cast<unsigned long long>(frames), direct_io ? 1 : 0,
      static_cast<unsigned long long>(inflight));

  const std::vector<std::pair<uint32_t, uint32_t>> sweep = {
      {1, 1}, {2, 2}, {4, 1}, {4, 4}, {8, 4}};

  std::vector<ConfigResult> results;
  std::printf("%-8s %-8s %-12s %-12s %-12s %-12s %-10s %-12s %-12s\n",
              "shards", "workers", "closed_ops/s", "open_ops/s", "p99_ms",
              "open_p99", "bp_hit", "mixed_sync", "mixed_batch");
  for (auto [shards, workers] : sweep) {
    ConfigResult r = RunConfig(shards, workers, rows, batches,
                               mixed_batches, frames, direct_io, inflight,
                               run_openloop,
                               static_cast<uint32_t>(deadline_us), io);
    results.push_back(r);
    char mixed_sync_s[32] = "-", mixed_s[32] = "-";
    if (r.mixed_ran) {
      std::snprintf(mixed_sync_s, sizeof(mixed_sync_s), "%.0f",
                    r.mixed_sync.ops_per_sec);
      std::snprintf(mixed_s, sizeof(mixed_s), "%.0f", r.mixed.ops_per_sec);
    }
    if (r.open_ran) {
      std::printf(
          "%-8u %-8u %-12.0f %-12.0f %-12.3f %-12.3f %-10.4f %-12s %-12s\n",
          r.shards, r.workers, r.closed.ops_per_sec, r.open.ops_per_sec,
          r.closed.p99_batch_ms, r.open.p99_batch_ms, r.closed.bp_hit_rate,
          mixed_sync_s, mixed_s);
    } else {
      std::printf(
          "%-8u %-8u %-12.0f %-12s %-12.3f %-12s %-10.4f %-12s %-12s\n",
          r.shards, r.workers, r.closed.ops_per_sec, "-",
          r.closed.p99_batch_ms, "-", r.closed.bp_hit_rate, mixed_sync_s,
          mixed_s);
    }
    std::fflush(stdout);
  }

  double base = 0, scaled = 0, open_4s4w = 0;
  double mixed_sync_4s4w = 0, mixed_4s4w = 0;
  double mixed_sync_1s1w = 0, mixed_1s1w = 0;
  for (const auto& r : results) {
    if (r.shards == 1 && r.workers == 1) {
      base = r.closed.ops_per_sec;
      mixed_sync_1s1w = r.mixed_sync.ops_per_sec;
      mixed_1s1w = r.mixed.ops_per_sec;
    }
    if (r.shards == 4 && r.workers == 4) {
      scaled = r.closed.ops_per_sec;
      open_4s4w = r.open.ops_per_sec;
      mixed_sync_4s4w = r.mixed_sync.ops_per_sec;
      mixed_4s4w = r.mixed.ops_per_sec;
    }
  }
  const double speedup = base > 0 ? scaled / base : 0;
  const double open_speedup =
      run_openloop && scaled > 0 ? open_4s4w / scaled : 0;
  const double mixed_speedup =
      mixed_sync_4s4w > 0 ? mixed_4s4w / mixed_sync_4s4w : 0;
  // The 1s1w point is the write-back-bound regime (PR 4's miss-regime
  // headline config): one worker, hot set over the pool, so dirty
  // evictions and flusher lag actually gate the serving thread.
  const double mixed_speedup_1s1w =
      mixed_sync_1s1w > 0 ? mixed_1s1w / mixed_sync_1s1w : 0;
  std::printf("\nspeedup 4 shards/4 workers vs 1/1 (closed): %.2fx\n",
              speedup);
  if (run_openloop) {
    std::printf("open-loop (inflight=%llu) vs closed at 4s/4w: %.2fx\n",
                static_cast<unsigned long long>(inflight), open_speedup);
  }
  if (run_mixed) {
    std::printf(
        "mixed write phase: batched vs sync write-back at 1s/1w: %.2fx, "
        "at 4s/4w: %.2fx\n",
        mixed_speedup_1s1w, mixed_speedup);
  }

  const char* json_path = std::getenv("NBLB_BENCH_JSON_PATH");
  FILE* f = std::fopen(json_path ? json_path : "BENCH_shard_throughput.json",
                       "w");
  if (!f) {
    std::fprintf(stderr, "cannot open JSON output file\n");
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"shard_throughput\",\n"
               "  \"git_sha\": \"%s\",\n"
               "  \"rows\": %zu,\n  \"lookups\": %llu,\n"
               "  \"batch_size\": %llu,\n  \"page_size\": %zu,\n"
               "  \"frames_per_shard\": %llu,\n  \"direct_io\": %d,\n"
               "  \"inflight\": %llu,\n"
               "  \"io_backend\": \"%s\",\n"
               "  \"io_backend_effective\": \"%s\",\n"
               "  \"flusher_interval_us\": %llu,\n"
               "  \"max_queue_depth\": %llu,\n"
               "  \"trace_every\": %llu,\n"
               "  \"mixed_ops\": %llu,\n"
               "  \"mixed_update_fraction\": %.2f,\n"
               "  \"mixed_flusher_us\": %llu,\n"
               "  \"configs\": [\n",
               GitSha(), rows.size(),
               static_cast<unsigned long long>(num_lookups),
               static_cast<unsigned long long>(batch_size), kDefaultPageSize,
               static_cast<unsigned long long>(frames), direct_io ? 1 : 0,
               static_cast<unsigned long long>(inflight),
               io.backend == IoBackend::kUring     ? "uring"
               : io.backend == IoBackend::kThreads ? "threads"
                                                   : "auto",
               !results.empty() && results.front().uring_effective
                   ? "uring"
                   : "threads",
               static_cast<unsigned long long>(io.flusher_us),
               static_cast<unsigned long long>(io.max_queue),
               static_cast<unsigned long long>(io.trace_every),
               static_cast<unsigned long long>(run_mixed ? mixed_ops : 0),
               static_cast<double>(mixed_update_pct) / 100.0,
               static_cast<unsigned long long>(io.mixed_flusher_us));
  for (size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(
        f,
        "    {\"shards\": %u, \"workers\": %u, \"clients\": %u,\n"
        "     \"load_seconds\": %.4f, \"load_ops_per_sec\": %.1f,\n"
        "     \"lookup_seconds\": %.4f, \"ops_per_sec\": %.1f,\n"
        "     \"p50_batch_ms\": %.4f, \"p99_batch_ms\": %.4f,\n"
        "     \"found\": %llu, \"not_found\": %llu, \"errors\": %llu,\n"
        "     \"bp_hit_rate\": %.6f, \"disk_reads\": %llu,\n",
        r.shards, r.workers, r.clients, r.load_seconds, r.load_ops_per_sec,
        r.closed.seconds, r.closed.ops_per_sec, r.closed.p50_batch_ms,
        r.closed.p99_batch_ms, static_cast<unsigned long long>(r.closed.found),
        static_cast<unsigned long long>(r.closed.not_found),
        static_cast<unsigned long long>(r.closed.errors), r.closed.bp_hit_rate,
        static_cast<unsigned long long>(r.closed.disk_reads));
    PrintPhaseDistJson(f, "     ", r.closed);
    if (!r.closed.trace_json.empty()) {
      std::fprintf(f, ",\n     \"trace\": %s", r.closed.trace_json.c_str());
    }
    std::fprintf(f, ",\n     \"direct_io_effective\": %d",
                 r.direct_io_effective ? 1 : 0);
    if (r.open_ran) {
      std::fprintf(
          f,
          ",\n     \"open_loop\": {\n"
          "       \"inflight\": %llu,\n"
          "       \"lookup_seconds\": %.4f, \"ops_per_sec\": %.1f,\n"
          "       \"p50_batch_ms\": %.4f, \"p99_batch_ms\": %.4f,\n"
          "       \"found\": %llu, \"not_found\": %llu, \"errors\": %llu,\n"
          "       \"bp_hit_rate\": %.6f, \"disk_reads\": %llu,\n",
          static_cast<unsigned long long>(r.inflight), r.open.seconds,
          r.open.ops_per_sec, r.open.p50_batch_ms, r.open.p99_batch_ms,
          static_cast<unsigned long long>(r.open.found),
          static_cast<unsigned long long>(r.open.not_found),
          static_cast<unsigned long long>(r.open.errors), r.open.bp_hit_rate,
          static_cast<unsigned long long>(r.open.disk_reads));
      PrintPhaseDistJson(f, "       ", r.open);
      if (!r.open.trace_json.empty()) {
        std::fprintf(f, ",\n       \"trace\": %s", r.open.trace_json.c_str());
      }
      std::fprintf(f, "\n     }");
    }
    if (r.mixed_ran) {
      PrintMixedPhaseJson(f, "mixed_sync", r.mixed_sync);
      PrintMixedPhaseJson(f, "mixed", r.mixed);
    }
    if (!r.metrics_json.empty()) {
      std::fprintf(f, ",\n     \"metrics\": %s", r.metrics_json.c_str());
    }
    std::fprintf(f, "}%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"speedup_4s4t_vs_1s1t\": %.4f", speedup);
  if (run_openloop) {
    std::fprintf(f, ",\n  \"openloop_speedup_4s4w\": %.4f", open_speedup);
  }
  if (run_mixed) {
    std::fprintf(f, ",\n  \"mixed_speedup_1s1w\": %.4f", mixed_speedup_1s1w);
    std::fprintf(f, ",\n  \"mixed_speedup_4s4w\": %.4f", mixed_speedup);
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n",
              json_path ? json_path : "BENCH_shard_throughput.json");
  return 0;
}
