// shard_throughput: sweeps shard count × worker-thread count over a
// 1M-row Zipfian Wikipedia revision workload served by ShardedEngine, and
// reports aggregate lookup throughput and tail latency.
//
// The sweep follows the scale-out model: every shard is a "node" with a
// fixed per-shard buffer pool, so 4 shards hold 4× the aggregate hot set of
// 1 shard. That is the paper's §3.1 argument (shrink the per-node index
// until it is RAM-resident) realized by the serving layer: the monolithic
// configuration thrashes its buffer pool on the scattered hot tuples (one
// hot revision per heap page), while the sharded one serves mostly from
// memory. Worker threads add pipeline overlap between routing (client
// thread) and execution (shard owners), and overlap the shards' misses —
// the device serves several outstanding reads while the CPU keeps routing.
//
// Shard files are opened with O_DIRECT (--direct=0 disables) so a
// buffer-pool miss pays real device latency rather than an OS page-cache
// copy; without it the host cache absorbs the entire dataset and the
// RAM-residency effect this benchmark exists to measure disappears.
//
// Output: a human-readable table on stdout, and machine-readable JSON
// written to BENCH_shard_throughput.json (or $NBLB_BENCH_JSON_PATH).
//
// JSON schema (all times seconds unless suffixed _ms; one object):
// {
//   "bench": "shard_throughput",
//   "rows": <uint>,              // rows loaded per configuration
//   "lookups": <uint>,           // traced lookups per configuration
//   "batch_size": <uint>,        // requests per Execute call
//   "page_size": <uint>,
//   "frames_per_shard": <uint>,  // per-shard buffer pool capacity
//   "direct_io": <0|1>,          // O_DIRECT shard files
//   "configs": [                 // one entry per (shards, workers) point
//     {
//       "shards": <uint>, "workers": <uint>, "clients": <uint>,
//       "load_seconds": <float>, "load_ops_per_sec": <float>,
//       "lookup_seconds": <float>, "ops_per_sec": <float>,
//       "p50_batch_ms": <float>, "p99_batch_ms": <float>,
//       "found": <uint>, "not_found": <uint>, "errors": <uint>,
//       "bp_hit_rate": <float>,  // aggregated over shards, lookup phase
//       "disk_reads": <uint>,    // aggregated over shards, lookup phase
//       "direct_io_effective": <0|1>  // every shard file really O_DIRECT
//                                     // (0 = fs refused; page-cache run)
//     }, ...
//   ],
//   "speedup_4s4t_vs_1s1t": <float>  // ops_per_sec ratio, the headline
// }
//
// Flags: --rows=N --lookups=N --batch=N --frames=N --direct=0|1
// (defaults below).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "shard/sharded_engine.h"
#include "workload/replay.h"
#include "workload/wikipedia.h"

namespace nblb::bench {
namespace {

struct ConfigResult {
  uint32_t shards = 0;
  uint32_t workers = 0;
  uint32_t clients = 0;
  double load_seconds = 0;
  double load_ops_per_sec = 0;
  double lookup_seconds = 0;
  double ops_per_sec = 0;
  double p50_batch_ms = 0;
  double p99_batch_ms = 0;
  uint64_t found = 0;
  uint64_t not_found = 0;
  uint64_t errors = 0;
  double bp_hit_rate = 0;
  uint64_t disk_reads = 0;
  bool direct_io_effective = false;
};

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0;
  std::sort(xs.begin(), xs.end());
  const size_t i = std::min(xs.size() - 1,
                            static_cast<size_t>(p * (xs.size() - 1) + 0.5));
  return xs[i];
}

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Runs one (shards, workers) point: fresh engine, bulk load, multi-client
/// replay of the Zipfian revision trace.
ConfigResult RunConfig(uint32_t shards, uint32_t workers,
                       const std::vector<Row>& rows,
                       const std::vector<RequestBatch>& batches,
                       size_t frames_per_shard, bool direct_io) {
  ConfigResult r;
  r.shards = shards;
  r.workers = workers;
  r.clients = workers;

  ShardedEngineOptions opts;
  opts.num_shards = shards;
  opts.num_workers = workers;
  opts.path_prefix =
      "/tmp/nblb_bench_shardtp_" + std::to_string(shards) + "x" +
      std::to_string(workers);
  opts.buffer_pool_frames_per_shard = frames_per_shard;
  opts.direct_io = direct_io;
  opts.schema = WikipediaSynthesizer::RevisionSchema();
  opts.table_options.key_columns = {0};
  auto engine_result = ShardedEngine::Open(opts);
  if (!engine_result.ok()) {
    std::fprintf(stderr, "engine open: %s\n",
                 engine_result.status().ToString().c_str());
    std::exit(1);
  }
  auto engine = std::move(*engine_result);

  // Record what the filesystem actually gave us: a silent O_DIRECT
  // fallback would measure the OS page cache instead of the device.
  r.direct_io_effective = true;
  for (uint32_t s = 0; s < shards; ++s) {
    r.direct_io_effective &=
        engine->shard(s)->database()->disk()->direct_io();
  }
  if (direct_io && !r.direct_io_effective) {
    std::fprintf(stderr,
                 "warning: O_DIRECT unavailable on shard files; results "
                 "measure the page cache, not the device\n");
  }

  const double load_start = Now();
  if (Status s = LoadRows(engine.get(), rows, /*key_column=*/0, 512);
      !s.ok()) {
    std::fprintf(stderr, "load: %s\n", s.ToString().c_str());
    std::exit(1);
  }
  r.load_seconds = Now() - load_start;
  r.load_ops_per_sec = rows.size() / r.load_seconds;

  // Only measure the serving phase's buffer pool behavior.
  uint64_t reads_before = 0, hits_before = 0, misses_before = 0;
  for (uint32_t s = 0; s < shards; ++s) {
    reads_before += engine->shard(s)->database()->disk()->stats().reads;
    hits_before += engine->shard(s)->database()->buffer_pool()->stats().hits;
    misses_before +=
        engine->shard(s)->database()->buffer_pool()->stats().misses;
  }

  // Slice the batches round-robin over the clients and replay concurrently.
  const uint32_t clients = r.clients;
  std::vector<std::vector<RequestBatch>> slices(clients);
  for (size_t i = 0; i < batches.size(); ++i) {
    slices[i % clients].push_back(batches[i]);
  }
  std::vector<ReplayReport> reports(clients);
  const double serve_start = Now();
  std::vector<std::thread> threads;
  for (uint32_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      reports[c] = ReplayBatches(engine.get(), slices[c]);
    });
  }
  for (auto& t : threads) t.join();
  r.lookup_seconds = Now() - serve_start;

  std::vector<double> batch_seconds;
  uint64_t ops = 0;
  for (const auto& rep : reports) {
    ops += rep.ops;
    r.found += rep.found;
    r.not_found += rep.not_found;
    r.errors += rep.errors;
    batch_seconds.insert(batch_seconds.end(), rep.batch_seconds.begin(),
                         rep.batch_seconds.end());
  }
  r.ops_per_sec = ops / r.lookup_seconds;
  r.p50_batch_ms = Percentile(batch_seconds, 0.50) * 1e3;
  r.p99_batch_ms = Percentile(batch_seconds, 0.99) * 1e3;

  uint64_t reads_after = 0, hits_after = 0, misses_after = 0;
  for (uint32_t s = 0; s < shards; ++s) {
    reads_after += engine->shard(s)->database()->disk()->stats().reads;
    hits_after += engine->shard(s)->database()->buffer_pool()->stats().hits;
    misses_after +=
        engine->shard(s)->database()->buffer_pool()->stats().misses;
  }
  r.disk_reads = reads_after - reads_before;
  const uint64_t accesses =
      (hits_after - hits_before) + (misses_after - misses_before);
  r.bp_hit_rate =
      accesses == 0
          ? 0
          : static_cast<double>(hits_after - hits_before) / accesses;

  for (uint32_t s = 0; s < shards; ++s) {
    std::remove(
        (opts.path_prefix + ".shard" + std::to_string(s) + ".db").c_str());
  }
  return r;
}

uint64_t FlagOr(int argc, char** argv, const char* name, uint64_t fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::strtoull(argv[i] + prefix.size(), nullptr, 10);
    }
  }
  return fallback;
}

}  // namespace
}  // namespace nblb::bench

int main(int argc, char** argv) {
  using namespace nblb;
  using namespace nblb::bench;

  const uint64_t target_rows = FlagOr(argc, argv, "rows", 1000000);
  const uint64_t num_lookups = FlagOr(argc, argv, "lookups", 400000);
  const uint64_t batch_size = FlagOr(argc, argv, "batch", 64);
  // 4096 frames × 8 KiB = 32 MiB per shard-node: the 1M-row workload's hot
  // set (~15k heap pages — Wikipedia's latest revisions) overflows one
  // node's budget but fits four, which is precisely the regime §3.1 is
  // about.
  const uint64_t frames = FlagOr(argc, argv, "frames", 4096);
  const bool direct_io = FlagOr(argc, argv, "direct", 1) != 0;

  // ~20 revisions/page (the synthesizer's hot fraction is 1/this).
  WikipediaScale scale;
  scale.revisions_per_page = 20;
  scale.num_pages = std::max<uint64_t>(1, target_rows / 20);
  WikipediaSynthesizer wiki(scale);

  std::printf("generating ~%llu revision rows...\n",
              static_cast<unsigned long long>(target_rows));
  const std::vector<Row>& rows = wiki.revisions();
  const auto batches = BuildLookupBatches(
      wiki.RevisionLookupTrace(num_lookups), batch_size);
  std::printf("rows=%zu lookups=%llu batch=%llu frames/shard=%llu direct=%d\n",
              rows.size(), static_cast<unsigned long long>(num_lookups),
              static_cast<unsigned long long>(batch_size),
              static_cast<unsigned long long>(frames), direct_io ? 1 : 0);

  const std::vector<std::pair<uint32_t, uint32_t>> sweep = {
      {1, 1}, {2, 2}, {4, 1}, {4, 4}, {8, 4}};

  std::vector<ConfigResult> results;
  std::printf("%-8s %-8s %-12s %-12s %-12s %-12s %-10s %-10s\n", "shards",
              "workers", "ops/sec", "p50_ms", "p99_ms", "load_ops/s",
              "bp_hit", "disk_rd");
  for (auto [shards, workers] : sweep) {
    ConfigResult r =
        RunConfig(shards, workers, rows, batches, frames, direct_io);
    results.push_back(r);
    std::printf("%-8u %-8u %-12.0f %-12.3f %-12.3f %-12.0f %-10.4f %-10llu\n",
                r.shards, r.workers, r.ops_per_sec, r.p50_batch_ms,
                r.p99_batch_ms, r.load_ops_per_sec, r.bp_hit_rate,
                static_cast<unsigned long long>(r.disk_reads));
    std::fflush(stdout);
  }

  double base = 0, scaled = 0;
  for (const auto& r : results) {
    if (r.shards == 1 && r.workers == 1) base = r.ops_per_sec;
    if (r.shards == 4 && r.workers == 4) scaled = r.ops_per_sec;
  }
  const double speedup = base > 0 ? scaled / base : 0;
  std::printf("\nspeedup 4 shards/4 workers vs 1/1: %.2fx\n", speedup);

  const char* json_path = std::getenv("NBLB_BENCH_JSON_PATH");
  FILE* f = std::fopen(json_path ? json_path : "BENCH_shard_throughput.json",
                       "w");
  if (!f) {
    std::fprintf(stderr, "cannot open JSON output file\n");
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"shard_throughput\",\n"
               "  \"rows\": %zu,\n  \"lookups\": %llu,\n"
               "  \"batch_size\": %llu,\n  \"page_size\": %zu,\n"
               "  \"frames_per_shard\": %llu,\n  \"direct_io\": %d,\n"
               "  \"configs\": [\n",
               rows.size(), static_cast<unsigned long long>(num_lookups),
               static_cast<unsigned long long>(batch_size), kDefaultPageSize,
               static_cast<unsigned long long>(frames), direct_io ? 1 : 0);
  for (size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(
        f,
        "    {\"shards\": %u, \"workers\": %u, \"clients\": %u,\n"
        "     \"load_seconds\": %.4f, \"load_ops_per_sec\": %.1f,\n"
        "     \"lookup_seconds\": %.4f, \"ops_per_sec\": %.1f,\n"
        "     \"p50_batch_ms\": %.4f, \"p99_batch_ms\": %.4f,\n"
        "     \"found\": %llu, \"not_found\": %llu, \"errors\": %llu,\n"
        "     \"bp_hit_rate\": %.6f, \"disk_reads\": %llu,\n"
        "     \"direct_io_effective\": %d}%s\n",
        r.shards, r.workers, r.clients, r.load_seconds, r.load_ops_per_sec,
        r.lookup_seconds, r.ops_per_sec, r.p50_batch_ms, r.p99_batch_ms,
        static_cast<unsigned long long>(r.found),
        static_cast<unsigned long long>(r.not_found),
        static_cast<unsigned long long>(r.errors), r.bp_hit_rate,
        static_cast<unsigned long long>(r.disk_reads),
        r.direct_io_effective ? 1 : 0, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"speedup_4s4t_vs_1s1t\": %.4f\n}\n", speedup);
  std::fclose(f);
  std::printf("wrote %s\n",
              json_path ? json_path : "BENCH_shard_throughput.json");
  return 0;
}
