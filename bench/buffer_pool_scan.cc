// buffer_pool_scan: thread-count × stripe-count sweep over the striped
// clock-sweep BufferPool, in a hit regime (working set resident) and a miss
// regime (working set 8x the pool), plus an embedded copy of the seed's
// single-mutex exact-LRU pool as the same-machine baseline.
//
// The headline number is the 8-thread hit-regime speedup of the striped pool
// over the seed pool: every page touch used to serialize on one std::mutex
// and splice a std::list; now it takes one uncontended-by-construction
// stripe mutex and flips bits in a packed atomic word. The miss regime shows
// the second win: FetchPages() groups misses per stripe and reads each
// contiguous run with one preadv instead of one pread per page.
//
// Output: a human-readable table on stdout and machine-readable JSON at
// BENCH_buffer_pool.json (or $NBLB_BENCH_JSON_PATH).
//
// JSON schema (one object):
// {
//   "bench": "buffer_pool_scan",
//   "page_size": <uint>, "frames": <uint>,
//   "hit_pages": <uint>, "miss_pages": <uint>,
//   "ops_per_config": <uint>, "batch_size": <uint>,
//   "hit": [   // one entry per (pool, stripes, threads, mode)
//     {"pool": "striped"|"seed_lru", "stripes": <uint>,  // 0 for seed_lru
//      "threads": <uint>, "mode": "single"|"batch",
//      "ops_per_sec": <float>},
//     ...
//   ],
//   "miss": [
//     {"mode": "single"|"batch", "threads": <uint>,
//      "ops_per_sec": <float>, "disk_reads": <uint>,
//      "vectored_reads": <uint>},
//     ...
//   ],
//   "churn": [   // update-churn regime: fetch+mutate+MarkDirty every op,
//                // working set 2x the pool (uniform — see the phase
//                // comment for why), background flusher ON, own O_DIRECT
//                // file
//                // (churn_direct_io_effective=0 means the fs refused and
//                // the phase measured the page cache); "wb" is the
//                // write-back mode under test — "sync" = the per-page
//                // pwrite baseline, "batch" = the async batched pipeline
//     {"wb": "sync"|"batch", "threads": <uint>, "ops_per_sec": <float>,
//      "disk_writes": <uint>, "async_writes": <uint>, "write_runs": <uint>,
//      "flusher_pages": <uint>, "flusher_coalesced_runs": <uint>,
//      "dirty_writebacks": <uint>},
//     ...
//   ],
//   "churn_speedup_batch_vs_sync": <float>,  // at 1 thread (the regime
//                                            // where write latency cannot
//                                            // hide behind other clients)
//   "metrics": { ... },  // unified-registry document (src/obs/): the scan
//                        // and churn DiskManagers plus the final churn
//                        // BufferPool, under scan_disk./churn_disk./
//                        // churn_buffer_pool. prefixes (disk counters are
//                        // reset per config, so they cover the last one)
//   "io_backend_effective": "uring"|"threads",
//   "speedup_8t_hit_vs_seed": <float>  // striped single-fetch vs seed pool
// }
// The top level also carries "git_sha": the commit the binary was
// configured from (stamped by CMake at configure time).
//
// Flags: --frames=N --ops=N --batch=N --threads=N (max client threads)
// --io=auto|uring|threads (async I/O backend; "threads" forces the
// preadv/pwritev worker-pool fallback) --flusher_us=N (churn-phase flusher
// cadence).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "obs/metrics.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace nblb::bench {
namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint64_t FlagOr(int argc, char** argv, const char* name, uint64_t fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::strtoull(argv[i] + prefix.size(), nullptr, 10);
    }
  }
  return fallback;
}

/// The seed pool, verbatim in spirit: one mutex, exact LRU via std::list
/// splices, unordered_map page table. Kept here (not in src/) purely as the
/// same-run baseline the striped pool is measured against.
class SeedLruPool {
 public:
  SeedLruPool(DiskManager* disk, size_t num_frames)
      : disk_(disk), num_frames_(num_frames) {
    arena_.reset(new char[num_frames * disk->page_size()]);
    frames_.resize(num_frames);
    for (size_t i = 0; i < num_frames; ++i) {
      frames_[i].data = arena_.get() + i * disk->page_size();
      free_frames_.push_back(num_frames - 1 - i);
    }
  }

  char* Fetch(PageId id) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = page_table_.find(id);
    if (it != page_table_.end()) {
      Frame& f = frames_[it->second];
      if (f.in_lru) {
        lru_.erase(f.lru_it);
        f.in_lru = false;
      }
      ++f.pin_count;
      return f.data;
    }
    size_t idx;
    if (!free_frames_.empty()) {
      idx = free_frames_.back();
      free_frames_.pop_back();
    } else {
      idx = lru_.back();
      Frame& victim = frames_[idx];
      lru_.pop_back();
      victim.in_lru = false;
      page_table_.erase(victim.id);
    }
    Frame& f = frames_[idx];
    if (!disk_->ReadPage(id, f.data).ok()) std::abort();
    f.id = id;
    f.pin_count = 1;
    page_table_[id] = idx;
    return f.data;
  }

  void Unpin(PageId id) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = page_table_.find(id);
    Frame& f = frames_[it->second];
    if (--f.pin_count == 0) {
      lru_.push_front(it->second);
      f.lru_it = lru_.begin();
      f.in_lru = true;
    }
  }

 private:
  struct Frame {
    PageId id = kInvalidPageId;
    int pin_count = 0;
    char* data = nullptr;
    std::list<size_t>::iterator lru_it;
    bool in_lru = false;
  };

  DiskManager* disk_;
  size_t num_frames_;
  std::unique_ptr<char[]> arena_;
  std::vector<Frame> frames_;
  std::unordered_map<PageId, size_t> page_table_;
  std::list<size_t> lru_;
  std::vector<size_t> free_frames_;
  std::mutex mu_;
};

struct HitResult {
  std::string pool;
  size_t stripes = 0;
  uint32_t threads = 0;
  std::string mode;
  double ops_per_sec = 0;
};

struct MissResult {
  std::string mode;
  uint32_t threads = 0;
  double ops_per_sec = 0;
  uint64_t disk_reads = 0;
  uint64_t vectored_reads = 0;
  uint64_t async_reads = 0;
};

struct ChurnResult {
  std::string wb;
  uint32_t threads = 0;
  double ops_per_sec = 0;
  uint64_t disk_writes = 0;
  uint64_t async_writes = 0;
  uint64_t async_write_batches = 0;
  uint64_t write_runs = 0;
  uint64_t flusher_pages = 0;
  uint64_t flusher_coalesced_runs = 0;
  uint64_t dirty_writebacks = 0;
};

/// Inline PRNG for the measurement loop: the pools are the thing under
/// test, so id generation must not cost out-of-line calls per op.
struct InlineRng {
  uint64_t state;
  explicit InlineRng(uint64_t seed) : state(SplitMix64(seed)) {}
  uint64_t Next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
  PageId Page(PageId n) { return static_cast<PageId>(Next() % n); }
};

/// Runs `total_ops` page touches split over `threads`, via `touch(rng)`
/// which returns the number of pages it touched.
template <typename TouchFn>
double RunThreads(uint32_t threads, uint64_t total_ops,
                  const TouchFn& touch) {
  const uint64_t per_thread = total_ops / threads;
  std::vector<std::thread> pool;
  const double start = Now();
  for (uint32_t t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      InlineRng rng(0x5eed + 977 * t);
      uint64_t done = 0;
      while (done < per_thread) done += touch(rng);
    });
  }
  for (auto& th : pool) th.join();
  const double secs = Now() - start;
  return static_cast<double>(per_thread * threads) / secs;
}

}  // namespace
}  // namespace nblb::bench

int main(int argc, char** argv) {
  using namespace nblb;
  using namespace nblb::bench;

  const uint64_t frames = FlagOr(argc, argv, "frames", 4096);
  const uint64_t total_ops = FlagOr(argc, argv, "ops", 1'000'000);
  const uint64_t batch = FlagOr(argc, argv, "batch", 32);
  const uint32_t max_threads =
      static_cast<uint32_t>(FlagOr(argc, argv, "threads", 8));
  std::string io_flag = "auto";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--io=", 5) == 0) io_flag = argv[i] + 5;
  }
  const uint64_t flusher_us = FlagOr(argc, argv, "flusher_us", 1000);
  const size_t page_size = kDefaultPageSize;
  const PageId hit_pages = static_cast<PageId>(frames / 2);
  const PageId miss_pages = static_cast<PageId>(frames * 8);

  const std::string path = "/tmp/nblb_bench_bp_scan.db";
  std::remove(path.c_str());
  AsyncIoOptions aio;
  aio.backend = io_flag == "uring"     ? IoBackend::kUring
                : io_flag == "threads" ? IoBackend::kThreads
                                       : IoBackend::kAuto;
  DiskManager disk(path, page_size, nullptr, /*direct_io=*/false, aio);
  if (!disk.Open().ok()) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::printf("allocating %u pages...\n", miss_pages);
  for (PageId i = 0; i < miss_pages; ++i) {
    if (!disk.AllocatePage().ok()) {
      std::fprintf(stderr, "allocation failed\n");
      return 1;
    }
  }

  std::vector<uint32_t> thread_sweep;
  for (uint32_t t = 1; t <= max_threads; t *= 2) thread_sweep.push_back(t);
  const std::vector<size_t> stripe_sweep = {1, 4, 16, 64};

  // ---- Hit regime ----------------------------------------------------------
  std::vector<HitResult> hit_results;
  std::printf("\n== hit regime (%u resident pages) ==\n", hit_pages);
  std::printf("%-10s %-8s %-8s %-8s %-12s\n", "pool", "stripes", "threads",
              "mode", "ops/sec");

  for (size_t stripes : stripe_sweep) {
    if (stripes > frames) continue;
    BufferPool bp(&disk, frames, stripes);
    // Warm the pool.
    for (PageId id = 0; id < hit_pages; ++id) {
      auto g = bp.FetchPage(id);
      if (!g.ok()) std::abort();
    }
    for (uint32_t threads : thread_sweep) {
      const double ops = RunThreads(threads, total_ops, [&](InlineRng& rng) {
        auto g = bp.FetchPage((rng.Page(hit_pages)));
        volatile char sink = g->data()[0];
        (void)sink;
        return 1u;
      });
      hit_results.push_back(
          {"striped", stripes, threads, "single", ops});
      std::printf("%-10s %-8zu %-8u %-8s %-12.0f\n", "striped", stripes,
                  threads, "single", ops);
      std::fflush(stdout);
    }
    // Batched hit fetches at the widest stripe setting only (one row per
    // thread count is plenty for the JSON).
    if (stripes == stripe_sweep.back()) {
      for (uint32_t threads : thread_sweep) {
        const double ops = RunThreads(threads, total_ops, [&](InlineRng& rng) {
          std::vector<PageId> ids(batch);
          for (auto& id : ids) {
            id = (rng.Page(hit_pages));
          }
          auto guards = bp.FetchPages(ids);
          if (!guards.ok()) std::abort();
          volatile char sink = (*guards)[0].data()[0];
          (void)sink;
          return static_cast<uint32_t>(batch);
        });
        hit_results.push_back({"striped", stripes, threads, "batch", ops});
        std::printf("%-10s %-8zu %-8u %-8s %-12.0f\n", "striped", stripes,
                    threads, "batch", ops);
        std::fflush(stdout);
      }
    }
  }

  {
    SeedLruPool seed(&disk, frames);
    for (PageId id = 0; id < hit_pages; ++id) seed.Fetch(id);
    for (PageId id = 0; id < hit_pages; ++id) seed.Unpin(id);
    for (uint32_t threads : thread_sweep) {
      const double ops = RunThreads(threads, total_ops, [&](InlineRng& rng) {
        const PageId id = (rng.Page(hit_pages));
        char* data = seed.Fetch(id);
        volatile char sink = data[0];
        (void)sink;
        seed.Unpin(id);
        return 1u;
      });
      hit_results.push_back({"seed_lru", 0, threads, "single", ops});
      std::printf("%-10s %-8d %-8u %-8s %-12.0f\n", "seed_lru", 0, threads,
                  "single", ops);
      std::fflush(stdout);
    }
  }

  // Headline: the striped pool's best hit-regime fetch mode (single pins or
  // batched FetchPages — both are how callers fetch pages) against the seed
  // pool's only mode, at the widest thread count. Per-mode rows are all in
  // the JSON.
  double striped_8t = 0, seed_8t = 0;
  std::string striped_mode;
  for (const auto& r : hit_results) {
    if (r.threads != std::min<uint32_t>(8, max_threads)) continue;
    if (r.pool == "striped" && r.ops_per_sec > striped_8t) {
      striped_8t = r.ops_per_sec;
      striped_mode = r.mode;
    }
    if (r.pool == "seed_lru") seed_8t = r.ops_per_sec;
  }
  const double speedup = seed_8t > 0 ? striped_8t / seed_8t : 0;
  std::printf(
      "\nspeedup striped (%s mode) vs seed_lru at %u threads (hit): %.2fx\n",
      striped_mode.c_str(), std::min<uint32_t>(8, max_threads), speedup);

  // ---- Miss regime ---------------------------------------------------------
  std::vector<MissResult> miss_results;
  std::printf("\n== miss regime (%u pages through %llu frames) ==\n",
              miss_pages, static_cast<unsigned long long>(frames));
  std::printf("%-8s %-8s %-12s %-10s %-10s\n", "mode", "threads", "ops/sec",
              "reads", "preadv");
  const uint64_t miss_ops = std::max<uint64_t>(total_ops / 4, 1);
  for (const char* mode : {"single", "batch"}) {
    for (uint32_t threads : thread_sweep) {
      BufferPool bp(&disk, frames, 0);
      disk.ResetStats();
      double ops;
      if (std::strcmp(mode, "single") == 0) {
        ops = RunThreads(threads, miss_ops, [&](InlineRng& rng) {
          auto g = bp.FetchPage((rng.Page(miss_pages)));
          if (!g.ok()) std::abort();
          volatile char sink = g->data()[0];
          (void)sink;
          return 1u;
        });
      } else {
        ops = RunThreads(threads, miss_ops, [&](InlineRng& rng) {
          std::vector<PageId> ids(batch);
          for (auto& id : ids) {
            id = (rng.Page(miss_pages));
          }
          auto guards = bp.FetchPages(ids);
          if (!guards.ok()) std::abort();
          return static_cast<uint32_t>(batch);
        });
      }
      const DiskStats ds = disk.stats();
      miss_results.push_back({mode, threads, ops, ds.reads,
                              ds.vectored_reads, ds.async_reads});
      std::printf("%-8s %-8u %-12.0f %-10llu %-10llu\n", mode, threads, ops,
                  static_cast<unsigned long long>(ds.reads),
                  static_cast<unsigned long long>(ds.vectored_reads));
      std::fflush(stdout);
    }
  }

  // ---- Dirty-churn regime --------------------------------------------------
  // Update churn: each op batch-fetches `batch` pages (FetchPages — the
  // path the serving stack drives), mutates and dirties every one — the
  // write-back-bound isolation (the end-to-end mixed kGet/kUpdate Zipfian
  // replay lives in bench/shard_throughput's mixed phases). Batched
  // fetches matter: a batch whose claims displace dirty victims hands ALL
  // of them to one write-back group, which is the serving-path half of
  // the async write pipeline (single fetches only ever displace one
  // victim and cannot coalesce). Page choice is uniform over a working
  // set 2x the pool: skewing it enough to matter makes the hot set fully
  // resident and write-back stops gating anything, and diluting with
  // reads lets even the per-page sync flusher keep up — either way the
  // A/B collapses to noise. Here
  // write-back pressure comes from BOTH the background flusher and dirty
  // eviction victims. The A/B is the point: "sync" forces the per-page
  // pwrite write-back this PR replaced, "batch" drains the same dirt
  // through sorted async write groups. Unlike the
  // hit/miss phases this one runs on its OWN O_DIRECT file (when the
  // filesystem allows it): write-back against the page cache costs
  // microseconds and measures only submission overhead — the regime the
  // async pipeline exists for is the device paying real latency per
  // write.
  std::vector<ChurnResult> churn_results;
  const PageId churn_pages = static_cast<PageId>(frames * 2);
  const uint64_t churn_ops = std::max<uint64_t>(total_ops / 16, 1);
  const std::string churn_path = "/tmp/nblb_bench_bp_churn.db";
  std::remove(churn_path.c_str());
  DiskManager churn_disk(churn_path, page_size, nullptr, /*direct_io=*/true,
                         aio);
  if (!churn_disk.Open().ok()) {
    std::fprintf(stderr, "cannot open %s\n", churn_path.c_str());
    return 1;
  }
  for (PageId i = 0; i < churn_pages; ++i) {
    if (!churn_disk.AllocatePage().ok()) {
      std::fprintf(stderr, "churn allocation failed\n");
      return 1;
    }
  }
  std::printf(
      "\n== dirty-churn regime (%u pages, flusher %llu us, direct=%d) ==\n",
      churn_pages, static_cast<unsigned long long>(flusher_us),
      churn_disk.direct_io() ? 1 : 0);
  std::printf("%-8s %-8s %-12s %-10s %-10s %-10s %-10s\n", "wb", "threads",
              "ops/sec", "writes", "asyncw", "runs", "flusherp");
  // The last churn pool outlives the sweep so its counters can be
  // published in the metrics document below.
  std::unique_ptr<BufferPool> churn_bp;
  for (const char* wb : {"sync", "batch"}) {
    for (uint32_t threads : thread_sweep) {
      churn_bp.reset(new BufferPool(&churn_disk, frames, 0));
      BufferPool& bp = *churn_bp;
      bp.set_sync_writeback(std::strcmp(wb, "sync") == 0);
      bp.StartFlusher(flusher_us, /*batch_pages=*/64);
      churn_disk.ResetStats();
      const double ops = RunThreads(threads, churn_ops, [&](InlineRng& rng) {
        // FetchPages wants ascending unique ids (like every real caller).
        // Draw, sort, dedup — duplicates are rare over this id space and
        // the op count below uses the actual unique size, so no per-op
        // quadratic membership scans pollute the measurement.
        std::vector<PageId> ids;
        ids.reserve(batch);
        for (uint64_t k = 0; k < batch; ++k) ids.push_back(rng.Page(churn_pages));
        std::sort(ids.begin(), ids.end());
        ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
        auto guards = bp.FetchPages(ids);
        if (!guards.ok()) {
          // A flusher pass pins its whole batch; a fetch that lands while
          // one stripe is saturated sees ResourceExhausted. That is
          // backpressure, not failure — yield and retry.
          if (guards.status().IsResourceExhausted()) {
            std::this_thread::yield();
            return 0u;
          }
          std::fprintf(stderr, "churn fetch: %s\n",
                       guards.status().ToString().c_str());
          std::abort();
        }
        for (PageGuard& g : *guards) {
          {
            // Latch-disciplined content write: the flush paths snapshot
            // under the same per-frame latch.
            LatchGuard latch(*g.cache_latch());
            g.data()[rng.Next() % 64] = static_cast<char>(rng.Next());
          }
          g.MarkDirty();
        }
        return static_cast<uint32_t>(ids.size());
      });
      const DiskStats ds = churn_disk.stats();
      const BufferPoolStats ps = bp.stats();
      churn_results.push_back({wb, threads, ops, ds.writes, ds.async_writes,
                               ds.async_write_batches, ds.write_runs,
                               ps.flusher_pages, ps.flusher_coalesced_runs,
                               ps.dirty_writebacks});
      std::printf("%-8s %-8u %-12.0f %-10llu %-10llu %-10llu %-10llu\n", wb,
                  threads, ops, static_cast<unsigned long long>(ds.writes),
                  static_cast<unsigned long long>(ds.async_writes),
                  static_cast<unsigned long long>(ds.write_runs),
                  static_cast<unsigned long long>(ps.flusher_pages));
      std::fflush(stdout);
    }
  }
  // Headline at ONE client thread: that is the regime where write-back
  // latency cannot hide behind other clients (more threads on a small box
  // shift the bottleneck to the CPU and the modes converge).
  double churn_sync = 0, churn_batch = 0;
  for (const auto& r : churn_results) {
    if (r.threads != 1) continue;
    if (r.wb == "sync") churn_sync = r.ops_per_sec;
    if (r.wb == "batch") churn_batch = r.ops_per_sec;
  }
  const double churn_speedup = churn_sync > 0 ? churn_batch / churn_sync : 0;
  std::printf("\nchurn speedup batch vs sync write-back at 1 thread: %.2fx\n",
              churn_speedup);

  // ---- JSON ----------------------------------------------------------------
  const char* json_path = std::getenv("NBLB_BENCH_JSON_PATH");
  FILE* f =
      std::fopen(json_path ? json_path : "BENCH_buffer_pool.json", "w");
  if (!f) {
    std::fprintf(stderr, "cannot open JSON output file\n");
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"buffer_pool_scan\",\n"
               "  \"git_sha\": \"%s\",\n"
               "  \"page_size\": %zu,\n  \"frames\": %llu,\n"
               "  \"hit_pages\": %u,\n  \"miss_pages\": %u,\n"
               "  \"ops_per_config\": %llu,\n  \"batch_size\": %llu,\n"
               "  \"io_backend\": \"%s\",\n"
               "  \"hit\": [\n",
#ifdef NBLB_GIT_SHA
               NBLB_GIT_SHA,
#else
               "unknown",
#endif
               page_size, static_cast<unsigned long long>(frames), hit_pages,
               miss_pages, static_cast<unsigned long long>(total_ops),
               static_cast<unsigned long long>(batch), io_flag.c_str());
  for (size_t i = 0; i < hit_results.size(); ++i) {
    const auto& r = hit_results[i];
    std::fprintf(f,
                 "    {\"pool\": \"%s\", \"stripes\": %zu, \"threads\": %u, "
                 "\"mode\": \"%s\", \"ops_per_sec\": %.1f}%s\n",
                 r.pool.c_str(), r.stripes, r.threads, r.mode.c_str(),
                 r.ops_per_sec, i + 1 < hit_results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"miss\": [\n");
  for (size_t i = 0; i < miss_results.size(); ++i) {
    const auto& r = miss_results[i];
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"threads\": %u, "
                 "\"ops_per_sec\": %.1f, \"disk_reads\": %llu, "
                 "\"vectored_reads\": %llu, \"async_reads\": %llu}%s\n",
                 r.mode.c_str(), r.threads, r.ops_per_sec,
                 static_cast<unsigned long long>(r.disk_reads),
                 static_cast<unsigned long long>(r.vectored_reads),
                 static_cast<unsigned long long>(r.async_reads),
                 i + 1 < miss_results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"churn\": [\n");
  for (size_t i = 0; i < churn_results.size(); ++i) {
    const auto& r = churn_results[i];
    std::fprintf(
        f,
        "    {\"wb\": \"%s\", \"threads\": %u, \"ops_per_sec\": %.1f, "
        "\"disk_writes\": %llu, \"async_writes\": %llu, "
        "\"async_write_batches\": %llu, \"write_runs\": %llu, "
        "\"flusher_pages\": %llu, "
        "\"flusher_coalesced_runs\": %llu, \"dirty_writebacks\": %llu}%s\n",
        r.wb.c_str(), r.threads, r.ops_per_sec,
        static_cast<unsigned long long>(r.disk_writes),
        static_cast<unsigned long long>(r.async_writes),
        static_cast<unsigned long long>(r.async_write_batches),
        static_cast<unsigned long long>(r.write_runs),
        static_cast<unsigned long long>(r.flusher_pages),
        static_cast<unsigned long long>(r.flusher_coalesced_runs),
        static_cast<unsigned long long>(r.dirty_writebacks),
        i + 1 < churn_results.size() ? "," : "");
  }
  // Unified-registry document for the bench's storage layers: same
  // MetricsRegistry/Snapshot/ToJson machinery the serving stack exports
  // through DumpMetrics(). The registry is scoped to this block so it
  // cannot outlive the components it points into.
  std::string metrics_json;
  {
    MetricsRegistry registry;
    disk.RegisterMetrics(&registry, "scan_disk.");
    churn_disk.RegisterMetrics(&registry, "churn_disk.");
    if (churn_bp) {
      churn_bp->RegisterMetrics(&registry, "churn_buffer_pool.");
    }
    metrics_json = registry.Snapshot().ToJson();
  }
  std::fprintf(f,
               "  ],\n  \"churn_speedup_batch_vs_sync\": %.4f,\n"
               "  \"metrics\": %s,\n"
               "  \"churn_direct_io_effective\": %d,\n"
               "  \"io_backend_effective\": \"%s\",\n"
               "  \"speedup_8t_hit_vs_seed\": %.4f\n}\n",
               churn_speedup, metrics_json.c_str(),
               churn_disk.direct_io() ? 1 : 0,
               disk.io_backend_in_use() == IoBackend::kUring ? "uring"
                                                             : "threads",
               speedup);
  std::fclose(f);
  std::printf("wrote %s\n",
              json_path ? json_path : "BENCH_buffer_pool.json");
  std::remove(path.c_str());
  std::remove(churn_path.c_str());
  return 0;
}
