#include "workload/wikipedia.h"

#include <algorithm>

#include "common/logging.h"
#include "encoding/timestamp.h"

namespace nblb {

namespace {

// 2011-01-01 00:00:00 UTC, the era of the paper.
constexpr uint32_t kEpochStart = 1293840000;

}  // namespace

WikipediaSynthesizer::WikipediaSynthesizer(WikipediaScale scale)
    : scale_(scale), rng_(scale.seed) {
  NBLB_CHECK(scale_.num_pages > 0);
  NBLB_CHECK(scale_.revisions_per_page >= 1);
}

Schema WikipediaSynthesizer::PageSchema() {
  return Schema({
      {"page_id", TypeId::kInt64, 0},
      {"page_namespace", TypeId::kInt64, 0},   // values 0..15: §4.1 waste
      {"page_title", TypeId::kVarchar, 255},
      {"page_restrictions", TypeId::kVarchar, 255},  // almost always empty
      {"page_counter", TypeId::kInt64, 0},
      {"page_is_redirect", TypeId::kInt64, 0},  // boolean stored as int64
      {"page_is_new", TypeId::kInt64, 0},       // boolean stored as int64
      {"page_random", TypeId::kFloat64, 0},
      {"page_touched", TypeId::kChar, 14},      // string timestamp
      {"page_latest", TypeId::kInt64, 0},
      {"page_len", TypeId::kInt64, 0},
  });
}

Schema WikipediaSynthesizer::RevisionSchema() {
  return Schema({
      {"rev_id", TypeId::kInt64, 0},
      {"rev_page", TypeId::kInt64, 0},
      {"rev_text_id", TypeId::kInt64, 0},
      {"rev_comment", TypeId::kVarchar, 255},
      {"rev_user", TypeId::kInt64, 0},
      {"rev_user_text", TypeId::kVarchar, 255},
      {"rev_timestamp", TypeId::kChar, 14},  // the paper's 14-byte string
      {"rev_minor_edit", TypeId::kInt64, 0},
      {"rev_deleted", TypeId::kInt64, 0},
      {"rev_len", TypeId::kInt64, 0},
      {"rev_parent_id", TypeId::kInt64, 0},
  });
}

Schema WikipediaSynthesizer::CartelLocationSchema() {
  return Schema({
      {"id", TypeId::kInt64, 0},
      {"vehicle_id", TypeId::kInt64, 0},  // small fleet: tiny range
      {"lat", TypeId::kFloat64, 0},
      {"lon", TypeId::kFloat64, 0},
      {"speed", TypeId::kInt64, 0},    // 0..120: 7 bits
      {"heading", TypeId::kInt64, 0},  // 0..359: 9 bits
      {"ts", TypeId::kChar, 14},       // string timestamp again
  });
}

Schema WikipediaSynthesizer::CartelObdSchema() {
  return Schema({
      {"id", TypeId::kInt64, 0},
      {"vehicle_id", TypeId::kInt64, 0},
      {"rpm", TypeId::kInt64, 0},           // 0..8000: 13 bits
      {"throttle", TypeId::kInt64, 0},      // 0..100: 7 bits
      {"engine_load", TypeId::kInt64, 0},   // 0..100
      {"coolant_temp", TypeId::kInt64, 0},  // -40..215: 9 bits
      {"ts", TypeId::kChar, 14},
  });
}

void WikipediaSynthesizer::EnsureGenerated() {
  if (generated_) return;
  generated_ = true;
  const uint64_t n = scale_.num_pages;

  // Popularity rank -> page index scattering (popular pages are not
  // physically adjacent).
  ScrambledZipfianGenerator scatter(n, scale_.alpha, scale_.seed + 7);
  page_rank_to_index_.resize(n);
  std::vector<uint64_t> perm(n);
  for (uint64_t i = 0; i < n; ++i) perm[i] = i;
  rng_.Shuffle(&perm);
  for (uint64_t r = 0; r < n; ++r) page_rank_to_index_[r] = perm[r];

  // --- Revisions in edit-time order ----------------------------------------
  // Each edit picks a page by zipf popularity; the page's newest revision is
  // therefore scattered throughout the table (§3.1).
  const uint64_t total_revs = static_cast<uint64_t>(
      scale_.revisions_per_page * static_cast<double>(n));
  ZipfianGenerator editor(n, scale_.alpha, scale_.seed + 13);
  std::vector<int64_t> last_rev_of_page(n, 0);
  std::vector<int64_t> page_len(n, 0);
  revisions_.reserve(total_revs);
  uint32_t now = kEpochStart;
  for (uint64_t i = 0; i < total_revs; ++i) {
    uint64_t page_index;
    if (i < n) {
      page_index = i;  // every page gets a first revision
    } else {
      page_index = page_rank_to_index_[editor.Next()];
    }
    const int64_t rev_id = static_cast<int64_t>(i + 1);
    const int64_t parent = last_rev_of_page[page_index];
    const int64_t len = 200 + static_cast<int64_t>(rng_.Uniform(8000));
    now += static_cast<uint32_t>(1 + rng_.Uniform(120));  // seconds apart
    Row rev;
    rev.push_back(Value::Int64(rev_id));
    rev.push_back(Value::Int64(static_cast<int64_t>(page_index + 1)));
    rev.push_back(Value::Int64(rev_id));  // text_id tracks rev_id 1:1 (an FD)
    rev.push_back(Value::Varchar(rng_.Bernoulli(0.3) ? rng_.NextString(12)
                                                     : std::string()));
    rev.push_back(Value::Int64(static_cast<int64_t>(rng_.Uniform(5000))));
    rev.push_back(Value::Varchar("user_" + std::to_string(rng_.Uniform(5000))));
    rev.push_back(Value::Char(FormatTimestamp14(now)));
    rev.push_back(Value::Int64(rng_.Bernoulli(0.25) ? 1 : 0));
    rev.push_back(Value::Int64(0));
    rev.push_back(Value::Int64(len));
    rev.push_back(Value::Int64(parent));
    revisions_.push_back(std::move(rev));
    last_rev_of_page[page_index] = rev_id;
    page_len[page_index] = len;
  }
  latest_rev_ids_ = std::move(last_rev_of_page);

  // --- Pages -----------------------------------------------------------------
  pages_.reserve(n);
  for (uint64_t p = 0; p < n; ++p) {
    Row page;
    page.push_back(Value::Int64(static_cast<int64_t>(p + 1)));
    // Namespace: overwhelmingly main (0), occasionally talk/user (tiny range).
    const int64_t ns = rng_.Bernoulli(0.8) ? 0
                                           : static_cast<int64_t>(
                                                 rng_.Uniform(16));
    page.push_back(Value::Int64(ns));
    page.push_back(Value::Varchar("Page_" + std::to_string(p + 1) + "_" +
                                  rng_.NextString(8)));
    page.push_back(Value::Varchar(rng_.Bernoulli(0.02) ? "sysop" : ""));
    page.push_back(Value::Int64(static_cast<int64_t>(rng_.Uniform(1000000))));
    page.push_back(Value::Int64(rng_.Bernoulli(0.07) ? 1 : 0));
    page.push_back(Value::Int64(rng_.Bernoulli(0.05) ? 1 : 0));
    page.push_back(Value::Float64(rng_.NextDouble()));
    page.push_back(Value::Char(FormatTimestamp14(
        kEpochStart + static_cast<uint32_t>(rng_.Uniform(86400 * 30)))));
    page.push_back(Value::Int64(latest_rev_ids_[p]));
    page.push_back(Value::Int64(page_len[p]));
    pages_.push_back(std::move(page));
  }
}

const std::vector<Row>& WikipediaSynthesizer::pages() {
  EnsureGenerated();
  return pages_;
}

const std::vector<Row>& WikipediaSynthesizer::revisions() {
  EnsureGenerated();
  return revisions_;
}

const std::vector<int64_t>& WikipediaSynthesizer::latest_revision_ids() {
  EnsureGenerated();
  return latest_rev_ids_;
}

std::vector<Row> WikipediaSynthesizer::GenerateCartelLocationRows(uint64_t n) {
  std::vector<Row> rows;
  rows.reserve(n);
  uint32_t now = kEpochStart;
  for (uint64_t i = 0; i < n; ++i) {
    now += static_cast<uint32_t>(rng_.Uniform(10) + 1);
    Row r;
    r.push_back(Value::Int64(static_cast<int64_t>(i + 1)));
    r.push_back(Value::Int64(static_cast<int64_t>(rng_.Uniform(30))));
    r.push_back(Value::Float64(42.3 + rng_.NextDouble() * 0.2));   // Boston
    r.push_back(Value::Float64(-71.1 + rng_.NextDouble() * 0.2));
    r.push_back(Value::Int64(static_cast<int64_t>(rng_.Uniform(121))));
    r.push_back(Value::Int64(static_cast<int64_t>(rng_.Uniform(360))));
    r.push_back(Value::Char(FormatTimestamp14(now)));
    rows.push_back(std::move(r));
  }
  return rows;
}

std::vector<Row> WikipediaSynthesizer::GenerateCartelObdRows(uint64_t n) {
  std::vector<Row> rows;
  rows.reserve(n);
  uint32_t now = kEpochStart;
  for (uint64_t i = 0; i < n; ++i) {
    now += static_cast<uint32_t>(rng_.Uniform(10) + 1);
    Row r;
    r.push_back(Value::Int64(static_cast<int64_t>(i + 1)));
    r.push_back(Value::Int64(static_cast<int64_t>(rng_.Uniform(30))));
    r.push_back(Value::Int64(static_cast<int64_t>(600 + rng_.Uniform(7400))));
    r.push_back(Value::Int64(static_cast<int64_t>(rng_.Uniform(101))));
    r.push_back(Value::Int64(static_cast<int64_t>(rng_.Uniform(101))));
    r.push_back(Value::Int64(-40 + static_cast<int64_t>(rng_.Uniform(256))));
    r.push_back(Value::Char(FormatTimestamp14(now)));
    rows.push_back(std::move(r));
  }
  return rows;
}

std::vector<uint64_t> WikipediaSynthesizer::PageLookupTrace(size_t n) {
  EnsureGenerated();
  ZipfianGenerator zipf(scale_.num_pages, scale_.alpha, scale_.seed + 29);
  std::vector<uint64_t> trace;
  trace.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    trace.push_back(page_rank_to_index_[zipf.Next()]);
  }
  return trace;
}

std::vector<int64_t> WikipediaSynthesizer::RevisionLookupTrace(
    size_t n, double hot_probability) {
  EnsureGenerated();
  ZipfianGenerator zipf(scale_.num_pages, scale_.alpha, scale_.seed + 31);
  Rng rng(scale_.seed + 37);
  std::vector<int64_t> trace;
  trace.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(hot_probability)) {
      // A hot read: the latest revision of a zipf-popular page.
      trace.push_back(latest_rev_ids_[page_rank_to_index_[zipf.Next()]]);
    } else {
      // A cold read: any historical revision.
      trace.push_back(
          static_cast<int64_t>(rng.Uniform(revisions_.size()) + 1));
    }
  }
  return trace;
}

}  // namespace nblb
