#include "workload/trace.h"

#include <memory>

#include "common/logging.h"

namespace nblb {

std::vector<Op> BuildTrace(const TraceOptions& options) {
  NBLB_CHECK(options.num_items > 0);
  Rng rng(options.seed);
  std::unique_ptr<ZipfianGenerator> zipf;
  std::unique_ptr<ScrambledZipfianGenerator> scrambled;
  std::unique_ptr<HotspotGenerator> hotspot;
  switch (options.distribution) {
    case TraceDistribution::kZipfian:
      zipf.reset(new ZipfianGenerator(options.num_items, options.zipf_alpha,
                                      options.seed + 1));
      break;
    case TraceDistribution::kScrambledZipfian:
      scrambled.reset(new ScrambledZipfianGenerator(
          options.num_items, options.zipf_alpha, options.seed + 1));
      break;
    case TraceDistribution::kHotspot:
      hotspot.reset(new HotspotGenerator(options.num_items,
                                         options.hot_fraction,
                                         options.hot_probability,
                                         options.seed + 1));
      break;
    case TraceDistribution::kUniform:
      break;
  }

  auto next_item = [&]() -> uint64_t {
    switch (options.distribution) {
      case TraceDistribution::kZipfian:
        return zipf->Next();
      case TraceDistribution::kScrambledZipfian:
        return scrambled->Next();
      case TraceDistribution::kHotspot:
        return hotspot->Next();
      case TraceDistribution::kUniform:
        return rng.Uniform(options.num_items);
    }
    return 0;
  };

  const double total_mix = options.mix.lookup + options.mix.insert +
                           options.mix.update + options.mix.del;
  NBLB_CHECK(total_mix > 0);

  std::vector<Op> trace;
  trace.reserve(options.num_ops);
  for (size_t i = 0; i < options.num_ops; ++i) {
    Op op;
    const double r = rng.NextDouble() * total_mix;
    if (r < options.mix.lookup) {
      op.kind = OpKind::kLookup;
    } else if (r < options.mix.lookup + options.mix.insert) {
      op.kind = OpKind::kInsert;
    } else if (r < options.mix.lookup + options.mix.insert +
                       options.mix.update) {
      op.kind = OpKind::kUpdate;
    } else {
      op.kind = OpKind::kDelete;
    }
    op.item = next_item();
    trace.push_back(op);
  }
  return trace;
}

}  // namespace nblb
