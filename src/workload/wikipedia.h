// WikipediaSynthesizer: scaled-down synthetic MediaWiki dataset.
//
// The paper's experiments run against Wikipedia's `page` and `revision`
// tables and a 2-hour Apache log. We do not have the dump or the logs
// (DESIGN.md §4), so this module synthesizes data with the same structure:
//
//   - MediaWiki-era schemas, including the famous 14-byte CHAR(14)
//     rev_timestamp and the int-typed boolean flags (§4.1 fodder)
//   - revisions generated in edit-time order, so each page's LATEST revision
//     is scattered through the table (§3.1's "as few as one hot tuple per
//     data page")
//   - traces with the measured skews: zipf(alpha=.5) page popularity and
//     99.9% of revision reads hitting the 5% of latest revisions
//
// CarTel-like tables are included for the §4.1 analysis breadth.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "catalog/value.h"
#include "common/rng.h"
#include "common/zipf.h"

namespace nblb {

/// \brief Dataset scale knobs (defaults run in seconds on a laptop).
struct WikipediaScale {
  uint64_t num_pages = 10000;
  /// Mean revisions per page; hot fraction = 1 / this.
  double revisions_per_page = 20;
  /// Zipf skew of page edit/read popularity (paper: alpha = .5).
  double alpha = 0.5;
  uint64_t seed = 2011;
};

/// \brief Generates schemas, rows and traces.
class WikipediaSynthesizer {
 public:
  explicit WikipediaSynthesizer(WikipediaScale scale);

  // ---- Schemas (MediaWiki 1.16-era layouts) -------------------------------

  /// page(page_id, page_namespace, page_title, page_restrictions,
  ///      page_counter, page_is_redirect, page_is_new, page_random,
  ///      page_touched, page_latest, page_len)
  static Schema PageSchema();

  /// revision(rev_id, rev_page, rev_text_id, rev_comment, rev_user,
  ///          rev_user_text, rev_timestamp, rev_minor_edit, rev_deleted,
  ///          rev_len, rev_parent_id)
  static Schema RevisionSchema();

  /// cartel_locations(id, vehicle_id, lat, lon, speed, heading, ts)
  static Schema CartelLocationSchema();

  /// cartel_obd(id, vehicle_id, rpm, throttle, engine_load, coolant_temp, ts)
  static Schema CartelObdSchema();

  // ---- Data ----------------------------------------------------------------

  /// \brief Page rows (generates revisions first if needed so page_latest is
  /// consistent).
  const std::vector<Row>& pages();

  /// \brief Revision rows in edit-time order (append order == rev_id order).
  const std::vector<Row>& revisions();

  /// \brief rev_ids of each page's newest revision — the hot set of §3.1.
  const std::vector<int64_t>& latest_revision_ids();

  std::vector<Row> GenerateCartelLocationRows(uint64_t n);
  std::vector<Row> GenerateCartelObdRows(uint64_t n);

  // ---- Traces ---------------------------------------------------------------

  /// \brief Page indexes [0, num_pages) drawn zipf(alpha), scrambled so hot
  /// pages are spread over the key space.
  std::vector<uint64_t> PageLookupTrace(size_t n);

  /// \brief rev_ids where `hot_probability` of reads hit latest revisions
  /// (zipf-weighted by page popularity) and the rest are uniform over all
  /// revisions.
  std::vector<int64_t> RevisionLookupTrace(size_t n,
                                           double hot_probability = 0.999);

  const WikipediaScale& scale() const { return scale_; }

 private:
  void EnsureGenerated();

  WikipediaScale scale_;
  Rng rng_;
  bool generated_ = false;
  std::vector<Row> pages_;
  std::vector<Row> revisions_;
  std::vector<int64_t> latest_rev_ids_;       // by page index
  std::vector<uint64_t> page_rank_to_index_;  // popularity rank -> page index
};

}  // namespace nblb
