// Replay: drives workload traces through the sharded serving layer.
//
// This is the glue between the synthetic Wikipedia workload (wikipedia.h,
// trace.h) and ShardedEngine: rows are bulk-loaded as insert batches, and a
// lookup trace (e.g. the Zipfian revision trace) is chopped into fixed-size
// RequestBatches and executed, collecting per-batch latencies so callers
// can report ops/sec and tail latency.
//
// Two drivers: ReplayBatches is closed-loop (each batch blocks in Execute
// before the next is sent — queue depth at any shard is bounded by the
// number of replay threads), ReplayBatchesOpenLoop drives the async Submit
// path at a sustained in-flight depth, which is what keeps per-shard queues
// deep enough for the engine's adaptive coalescing to engage.

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "catalog/value.h"
#include "common/result.h"
#include "shard/request.h"
#include "shard/sharded_engine.h"
#include "workload/trace.h"

namespace nblb {

/// \brief Outcome of a replay run.
struct ReplayReport {
  uint64_t ops = 0;
  uint64_t found = 0;
  uint64_t not_found = 0;
  uint64_t errors = 0;
  double seconds = 0;
  /// Wall-clock seconds of each Execute call, in submission order.
  std::vector<double> batch_seconds;

  double OpsPerSec() const { return seconds > 0 ? ops / seconds : 0; }
};

/// \brief Bulk-loads `rows` into the engine as insert batches. The routing
/// id of each row is its value in column `key_column` (int64 family).
Status LoadRows(ShardedEngine* engine, const std::vector<Row>& rows,
                size_t key_column, size_t batch_size = 256);

/// \brief Chops `ids` into kGet batches of `batch_size`.
std::vector<RequestBatch> BuildLookupBatches(const std::vector<int64_t>& ids,
                                             size_t batch_size);

/// \brief Chops a mixed trace (e.g. a read/write Zipfian trace from
/// BuildTrace with a TraceMix) into request batches. `row_of(id)` supplies
/// the full row for kInsert/kUpdate ops; lookups and deletes carry the id
/// alone. Op items map 1:1 to routing ids.
std::vector<RequestBatch> BuildOpBatches(
    const std::vector<Op>& ops, const std::function<Row(uint64_t)>& row_of,
    size_t batch_size);

/// \brief Executes every batch on the engine, timing each Execute call
/// (closed-loop: one batch in flight per calling thread).
ReplayReport ReplayBatches(ShardedEngine* engine,
                           const std::vector<RequestBatch>& batches);

/// \brief Open-loop driver: submits batches through the async path,
/// keeping up to `target_inflight` tickets outstanding (a new batch is
/// submitted as soon as the window has room, not when the previous batch
/// finished). batch_seconds[i] is batch i's submit-to-completion latency —
/// under a deep window this includes queueing, so per-batch latencies rise
/// while aggregate throughput does too. Thread safe against other replays.
ReplayReport ReplayBatchesOpenLoop(ShardedEngine* engine,
                                   const std::vector<RequestBatch>& batches,
                                   size_t target_inflight);

}  // namespace nblb
