// Operation traces for workload replay.

#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/zipf.h"

namespace nblb {

/// \brief Kinds of operations in a replayable trace.
enum class OpKind : uint8_t {
  kLookup = 0,
  kInsert = 1,
  kUpdate = 2,
  kDelete = 3,
};

/// \brief One trace operation on a logical item.
struct Op {
  OpKind kind = OpKind::kLookup;
  uint64_t item = 0;
};

/// \brief Operation mix (fractions should sum to ~1).
struct TraceMix {
  double lookup = 1.0;
  double insert = 0.0;
  double update = 0.0;
  double del = 0.0;
};

/// \brief Item-popularity distribution for trace generation.
enum class TraceDistribution {
  kUniform,
  kZipfian,           ///< rank-ordered (item 0 most popular)
  kScrambledZipfian,  ///< zipfian popularity scattered over the id space
  kHotspot,           ///< hot-set fraction gets most accesses (§3.1 style)
};

/// \brief Knobs for BuildTrace.
struct TraceOptions {
  uint64_t num_items = 1000;
  size_t num_ops = 10000;
  TraceDistribution distribution = TraceDistribution::kZipfian;
  double zipf_alpha = 0.5;       ///< the paper's Wikipedia-like skew
  double hot_fraction = 0.05;    ///< for kHotspot (5% of tuples)
  double hot_probability = 0.999;///< for kHotspot (99.9% of accesses)
  TraceMix mix;
  uint64_t seed = 42;
};

/// \brief Materializes a trace.
std::vector<Op> BuildTrace(const TraceOptions& options);

}  // namespace nblb
