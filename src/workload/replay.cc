#include "workload/replay.h"

#include <chrono>

namespace nblb {

namespace {
double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}
}  // namespace

Status LoadRows(ShardedEngine* engine, const std::vector<Row>& rows,
                size_t key_column, size_t batch_size) {
  if (batch_size == 0) return Status::InvalidArgument("batch_size must be >0");
  RequestBatch batch;
  batch.reserve(batch_size);
  for (const Row& row : rows) {
    if (key_column >= row.size()) {
      return Status::InvalidArgument("key column out of range");
    }
    const uint64_t id = static_cast<uint64_t>(row[key_column].AsInt());
    batch.push_back(Request::Insert(id, row));
    if (batch.size() == batch_size) {
      BatchResult result = engine->Execute(batch);
      for (const auto& r : result.results) {
        if (!r.status.ok()) return r.status;
      }
      batch.clear();
    }
  }
  if (!batch.empty()) {
    BatchResult result = engine->Execute(batch);
    for (const auto& r : result.results) {
      if (!r.status.ok()) return r.status;
    }
  }
  return Status::OK();
}

std::vector<RequestBatch> BuildLookupBatches(const std::vector<int64_t>& ids,
                                             size_t batch_size) {
  std::vector<RequestBatch> batches;
  if (batch_size == 0) return batches;
  batches.reserve((ids.size() + batch_size - 1) / batch_size);
  RequestBatch batch;
  batch.reserve(batch_size);
  for (int64_t id : ids) {
    batch.push_back(Request::Get(static_cast<uint64_t>(id)));
    if (batch.size() == batch_size) {
      batches.push_back(std::move(batch));
      batch = RequestBatch();
      batch.reserve(batch_size);
    }
  }
  if (!batch.empty()) batches.push_back(std::move(batch));
  return batches;
}

std::vector<RequestBatch> BuildOpBatches(
    const std::vector<Op>& ops, const std::function<Row(uint64_t)>& row_of,
    size_t batch_size) {
  std::vector<RequestBatch> batches;
  if (batch_size == 0) return batches;
  batches.reserve((ops.size() + batch_size - 1) / batch_size);
  RequestBatch batch;
  batch.reserve(batch_size);
  for (const Op& op : ops) {
    switch (op.kind) {
      case OpKind::kLookup:
        batch.push_back(Request::Get(op.item));
        break;
      case OpKind::kInsert:
        batch.push_back(Request::Insert(op.item, row_of(op.item)));
        break;
      case OpKind::kUpdate:
        batch.push_back(Request::Update(op.item, row_of(op.item)));
        break;
      case OpKind::kDelete:
        batch.push_back(Request::Delete(op.item));
        break;
    }
    if (batch.size() == batch_size) {
      batches.push_back(std::move(batch));
      batch = RequestBatch();
      batch.reserve(batch_size);
    }
  }
  if (!batch.empty()) batches.push_back(std::move(batch));
  return batches;
}

ReplayReport ReplayBatches(ShardedEngine* engine,
                           const std::vector<RequestBatch>& batches) {
  ReplayReport report;
  report.batch_seconds.reserve(batches.size());
  const auto run_start = std::chrono::steady_clock::now();
  for (const RequestBatch& batch : batches) {
    const auto batch_start = std::chrono::steady_clock::now();
    BatchResult result = engine->Execute(batch);
    report.batch_seconds.push_back(SecondsSince(batch_start));
    report.ops += batch.size();
    for (const auto& r : result.results) {
      if (r.status.ok()) {
        ++report.found;
      } else if (r.status.IsNotFound()) {
        ++report.not_found;
      } else {
        ++report.errors;
      }
    }
  }
  report.seconds = SecondsSince(run_start);
  return report;
}

}  // namespace nblb
