#include "workload/replay.h"

#include <chrono>
#include <condition_variable>
#include <mutex>

namespace nblb {

namespace {
double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}
}  // namespace

Status LoadRows(ShardedEngine* engine, const std::vector<Row>& rows,
                size_t key_column, size_t batch_size) {
  if (batch_size == 0) return Status::InvalidArgument("batch_size must be >0");
  RequestBatch batch;
  batch.reserve(batch_size);
  for (const Row& row : rows) {
    if (key_column >= row.size()) {
      return Status::InvalidArgument("key column out of range");
    }
    const uint64_t id = static_cast<uint64_t>(row[key_column].AsInt());
    batch.push_back(Request::Insert(id, row));
    if (batch.size() == batch_size) {
      BatchResult result = engine->Execute(batch);
      for (const auto& r : result.results) {
        if (!r.status.ok()) return r.status;
      }
      batch.clear();
    }
  }
  if (!batch.empty()) {
    BatchResult result = engine->Execute(batch);
    for (const auto& r : result.results) {
      if (!r.status.ok()) return r.status;
    }
  }
  return Status::OK();
}

std::vector<RequestBatch> BuildLookupBatches(const std::vector<int64_t>& ids,
                                             size_t batch_size) {
  std::vector<RequestBatch> batches;
  if (batch_size == 0) return batches;
  batches.reserve((ids.size() + batch_size - 1) / batch_size);
  RequestBatch batch;
  batch.reserve(batch_size);
  for (int64_t id : ids) {
    batch.push_back(Request::Get(static_cast<uint64_t>(id)));
    if (batch.size() == batch_size) {
      batches.push_back(std::move(batch));
      batch = RequestBatch();
      batch.reserve(batch_size);
    }
  }
  if (!batch.empty()) batches.push_back(std::move(batch));
  return batches;
}

std::vector<RequestBatch> BuildOpBatches(
    const std::vector<Op>& ops, const std::function<Row(uint64_t)>& row_of,
    size_t batch_size) {
  std::vector<RequestBatch> batches;
  if (batch_size == 0) return batches;
  batches.reserve((ops.size() + batch_size - 1) / batch_size);
  RequestBatch batch;
  batch.reserve(batch_size);
  for (const Op& op : ops) {
    switch (op.kind) {
      case OpKind::kLookup:
        batch.push_back(Request::Get(op.item));
        break;
      case OpKind::kInsert:
        batch.push_back(Request::Insert(op.item, row_of(op.item)));
        break;
      case OpKind::kUpdate:
        batch.push_back(Request::Update(op.item, row_of(op.item)));
        break;
      case OpKind::kDelete:
        batch.push_back(Request::Delete(op.item));
        break;
    }
    if (batch.size() == batch_size) {
      batches.push_back(std::move(batch));
      batch = RequestBatch();
      batch.reserve(batch_size);
    }
  }
  if (!batch.empty()) batches.push_back(std::move(batch));
  return batches;
}

ReplayReport ReplayBatches(ShardedEngine* engine,
                           const std::vector<RequestBatch>& batches) {
  ReplayReport report;
  report.batch_seconds.reserve(batches.size());
  const auto run_start = std::chrono::steady_clock::now();
  for (const RequestBatch& batch : batches) {
    const auto batch_start = std::chrono::steady_clock::now();
    BatchResult result = engine->Execute(batch);
    report.batch_seconds.push_back(SecondsSince(batch_start));
    report.ops += batch.size();
    for (const auto& r : result.results) {
      if (r.status.ok()) {
        ++report.found;
      } else if (r.status.IsNotFound()) {
        ++report.not_found;
      } else {
        ++report.errors;
      }
    }
  }
  report.seconds = SecondsSince(run_start);
  return report;
}

ReplayReport ReplayBatchesOpenLoop(ShardedEngine* engine,
                                   const std::vector<RequestBatch>& batches,
                                   size_t target_inflight) {
  if (target_inflight == 0) target_inflight = 1;
  ReplayReport report;
  report.batch_seconds.assign(batches.size(), 0.0);

  // Shared with the completion callbacks, which run on the engine's
  // completion pool; everything below is guarded by `mu`. The final wait
  // for inflight == 0 guarantees all callbacks (and thus all writes into
  // `report`) finished before this frame is torn down.
  std::mutex mu;
  std::condition_variable cv;
  size_t inflight = 0;
  uint64_t found = 0, not_found = 0, errors = 0;

  const auto run_start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < batches.size(); ++i) {
    {
      std::unique_lock<std::mutex> lk(mu);
      cv.wait(lk, [&] { return inflight < target_inflight; });
      ++inflight;
    }
    report.ops += batches[i].size();
    const auto batch_start = std::chrono::steady_clock::now();
    // SubmitRef: `batches` outlives the final inflight==0 wait below, so
    // the driver pays no per-batch copy (keeping the open-vs-closed
    // comparison about pipelining, not allocation).
    engine->SubmitRef(batches[i], [&, i,
                                   batch_start](const BatchResult& result) {
      uint64_t f = 0, nf = 0, e = 0;
      for (const auto& r : result.results) {
        if (r.status.ok()) {
          ++f;
        } else if (r.status.IsNotFound()) {
          ++nf;
        } else {
          ++e;
        }
      }
      const double secs = SecondsSince(batch_start);
      std::lock_guard<std::mutex> lk(mu);
      report.batch_seconds[i] = secs;
      found += f;
      not_found += nf;
      errors += e;
      --inflight;
      cv.notify_all();
    });
  }
  {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return inflight == 0; });
  }
  report.seconds = SecondsSince(run_start);
  report.found = found;
  report.not_found = not_found;
  report.errors = errors;
  return report;
}

}  // namespace nblb
