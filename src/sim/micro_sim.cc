#include "sim/micro_sim.h"

#include <chrono>
#include <cstring>

#include "common/bytes.h"
#include "common/logging.h"

namespace nblb {

MicroSim::MicroSim(MicroSimOptions options)
    : options_(options), rng_(options.seed) {
  NBLB_CHECK(options_.page_size >= 64);
  index_arena_.resize(options_.index_pages * options_.page_size);
  bp_arena_.resize(options_.bp_pages * options_.page_size);
  disk_source_.resize(options_.page_size);
  // Fill with deterministic non-zero bytes so copies are honest.
  Rng fill(options.seed + 1);
  for (size_t i = 0; i < index_arena_.size(); i += 8) {
    EncodeFixed64(&index_arena_[i], fill.NextU64());
  }
  for (size_t i = 0; i < bp_arena_.size(); i += 8) {
    EncodeFixed64(&bp_arena_[i], fill.NextU64());
  }
  for (size_t i = 0; i < disk_source_.size(); i += 8) {
    EncodeFixed64(&disk_source_[i], fill.NextU64());
  }
  // Buffer-pool bookkeeping structures (page table + LRU stamps), sized and
  // populated like a real pool's would be.
  page_table_.reserve(options_.bp_pages * 2);
  lru_ticks_.resize(options_.bp_pages, 0);
  pin_counts_.resize(options_.bp_pages, 0);
  for (size_t p = 0; p < options_.bp_pages; ++p) {
    page_table_.emplace(p, p);
  }
}

void MicroSim::TouchIndexPage(size_t page) {
  // Emulate a binary search over the page directory: ~log2(entries) probes
  // at data-dependent offsets.
  const char* base = index_arena_.data() + page * options_.page_size;
  uint64_t h = checksum_ ^ (page * 0x9e3779b97f4a7c15ull);
  size_t lo = 0, hi = options_.page_size / 16;
  while (lo + 1 < hi) {
    const size_t mid = (lo + hi) / 2;
    const uint64_t probe = DecodeFixed64(base + mid * 16);
    h ^= probe;
    if (probe & 1) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  checksum_ = h;
}

void MicroSim::ScanCacheSlots(size_t page, size_t slots) {
  const char* base = index_arena_.data() + page * options_.page_size;
  const size_t stride = options_.cache_item_size;
  uint64_t h = checksum_;
  size_t off = 64;  // skip the "header"
  for (size_t s = 0; s < slots && off + 8 <= options_.page_size; ++s) {
    h ^= DecodeFixed64(base + off);
    off += stride;
  }
  checksum_ = h;
}

void MicroSim::TouchBufferPoolPage(size_t page) {
  // Page-table lookup (hash probe over a multi-MB table: real misses).
  const size_t frame = page_table_.find(page)->second;
  // Pin, LRU touch, and (below, after the copy) unpin — the bookkeeping a
  // real pool performs on every access.
  ++pin_counts_[frame];
  lru_ticks_[frame] = ++tick_;
  // Tuple copy out of the frame.
  const char* base = bp_arena_.data() + frame * options_.page_size;
  const size_t max_off = options_.page_size - options_.tuple_size;
  const size_t off = static_cast<size_t>(rng_.Uniform(max_off));
  char tuple[4096];
  NBLB_CHECK(options_.tuple_size <= sizeof(tuple));
  std::memcpy(tuple, base + off, options_.tuple_size);
  checksum_ ^= DecodeFixed64(tuple);
  --pin_counts_[frame];
}

void MicroSim::DiskReadIntoPage(size_t page) {
  // Virtual seek + transfer, then a real copy into the frame (the memcpy a
  // real buffer pool would do after the read syscall).
  vclock_.Advance(options_.disk_seek_ns +
                  options_.disk_transfer_ns_per_byte * options_.page_size);
  char* base = bp_arena_.data() + page * options_.page_size;
  std::memcpy(base, disk_source_.data(), options_.page_size);
}

MicroSimResult MicroSim::Run(size_t lookups) {
  MicroSimResult result;
  result.lookups = lookups;
  vclock_.Reset();
  const auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < lookups; ++i) {
    const size_t index_page =
        static_cast<size_t>(rng_.Uniform(options_.index_pages));
    TouchIndexPage(index_page);
    if (options_.cache_enabled) {
      const bool cache_hit = rng_.Bernoulli(options_.index_cache_hit_rate);
      if (cache_hit) {
        // On average half the slots are scanned before the item is found.
        ScanCacheSlots(index_page, options_.cache_slots_per_page / 2);
        ++result.cache_hits;
        continue;  // answered from the index page: no buffer pool access
      }
      // Miss: full scan, then fall through to the buffer pool. The insert-
      // back also costs a slot write.
      ScanCacheSlots(index_page, options_.cache_slots_per_page);
    }
    const size_t bp_page = static_cast<size_t>(rng_.Uniform(options_.bp_pages));
    if (rng_.Bernoulli(options_.bp_hit_rate)) {
      ++result.bp_hits;
    } else {
      DiskReadIntoPage(bp_page);
      ++result.disk_reads;
    }
    TouchBufferPoolPage(bp_page);
  }
  const auto end = std::chrono::steady_clock::now();
  result.real_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
          .count());
  result.virtual_ns = vclock_.NowNs();
  return result;
}

}  // namespace nblb
