// MicroSim: the paper's Figure 2(b)/(c) micro-benchmark substrate.
//
// "We assume that the index is fully in memory, and simulate the index and
//  buffer pool using large in-memory arrays. An index cache miss must access
//  a random page in the buffer pool, and a buffer pool miss must read a page
//  from an on-disk file."
//
// We reproduce that methodology exactly, with one substitution (DESIGN.md
// §4): the on-disk read is charged to a virtual clock by a deterministic
// latency model instead of paying a real 2011-era seek. Memory-side work is
// real: random page touches into arrays sized far beyond LLC, a real slot
// scan for the cache probe, real tuple copies.
//
// Hit rates are controlled knobs (as in the paper, which plots cost against
// the hit rate itself), so each figure point is exact rather than emergent.

#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/vclock.h"

namespace nblb {

/// \brief Simulation knobs; defaults match the paper's setup at laptop scale.
struct MicroSimOptions {
  size_t page_size = 8192;
  /// In-memory index array. The paper assumes "the index is fully in
  /// memory"; 512 pages = 4 MiB keeps it LLC-warm so the figures isolate
  /// the buffer-pool and disk regimes.
  size_t index_pages = 512;
  /// In-memory buffer pool array: 32768 pages = 256 MiB — far beyond LLC,
  /// so every buffer-pool access pays real TLB/cache misses like a page
  /// touch in a production pool would.
  size_t bp_pages = 32768;
  /// Cache slots scanned per probe (free bytes / item size; 25-byte items in
  /// a 68%-full 8 KiB page give ~100 usable slots).
  size_t cache_slots_per_page = 100;
  size_t cache_item_size = 25;  ///< the paper's example item size
  size_t tuple_size = 100;

  /// Knobs swept by the figures.
  double index_cache_hit_rate = 0.0;  ///< x-axis of Fig 2(b)/(c)
  double bp_hit_rate = 1.0;           ///< lines of Fig 2(b)
  bool cache_enabled = true;          ///< cache vs nocache in Fig 2(c)

  /// Simulated disk (see LatencyModelOptions for rationale).
  uint64_t disk_seek_ns = 5'000'000;
  uint64_t disk_transfer_ns_per_byte = 10;

  uint64_t seed = 1;
};

/// \brief Per-run outcome.
struct MicroSimResult {
  uint64_t lookups = 0;
  uint64_t real_ns = 0;     ///< measured wall time of the memory-side work
  uint64_t virtual_ns = 0;  ///< simulated disk time
  uint64_t cache_hits = 0;
  uint64_t bp_hits = 0;
  uint64_t disk_reads = 0;

  uint64_t TotalNs() const { return real_ns + virtual_ns; }
  double AvgCostNs() const {
    return lookups == 0 ? 0
                        : static_cast<double>(TotalNs()) /
                              static_cast<double>(lookups);
  }
  double AvgCostMs() const { return AvgCostNs() / 1e6; }
  double AvgCostUs() const { return AvgCostNs() / 1e3; }
};

/// \brief In-memory index/buffer-pool lookup cost simulator.
class MicroSim {
 public:
  explicit MicroSim(MicroSimOptions options);

  /// \brief Executes `lookups` point lookups and reports costs.
  MicroSimResult Run(size_t lookups);

  /// \brief Accumulated checksum of all touched bytes — read it (or pass to
  /// benchmark::DoNotOptimize) so the optimizer cannot elide memory work.
  uint64_t checksum() const { return checksum_; }

 private:
  // One binary-search-like descent into a random index page (real work).
  void TouchIndexPage(size_t page);
  // Scan `slots` cache slots of the index page (real work).
  void ScanCacheSlots(size_t page, size_t slots);
  // Full buffer-pool access (real work): page-table hash lookup, LRU
  // bookkeeping, then the tuple copy — "the additional memory accesses to
  // pages in the buffer pool" a cache hit avoids (§2.1.4).
  void TouchBufferPoolPage(size_t page);
  // Simulated disk read into the buffer-pool page (virtual time + real copy).
  void DiskReadIntoPage(size_t page);

  MicroSimOptions options_;
  Rng rng_;
  VirtualClock vclock_;
  std::vector<char> index_arena_;
  std::vector<char> bp_arena_;
  std::vector<char> disk_source_;  // one page of "disk" bytes
  std::unordered_map<size_t, size_t> page_table_;  // page id -> frame index
  std::vector<uint64_t> lru_ticks_;                // per-frame LRU stamps
  std::vector<uint32_t> pin_counts_;               // per-frame pin counters
  uint64_t tick_ = 0;
  uint64_t checksum_ = 0;
};

}  // namespace nblb
