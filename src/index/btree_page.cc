#include "index/btree_page.h"

#include <cstring>

#include "common/bytes.h"
#include "common/logging.h"

namespace nblb {

// Header field offsets (little endian).
namespace {
constexpr size_t kOffType = 0;           // u16
constexpr size_t kOffNumEntries = 2;     // u16
constexpr size_t kOffKeySize = 4;        // u16
constexpr size_t kOffPayloadSize = 6;    // u16
constexpr size_t kOffNext = 8;           // u32
constexpr size_t kOffPrev = 12;          // u32
constexpr size_t kOffLeftmost = 16;      // u32
constexpr size_t kOffCacheItemSize = 20; // u16
// 22: u16 flags (unused)
constexpr size_t kOffCsn = 24;           // u64
constexpr size_t kOffCacheSeq = 32;      // u64
// 40..47 reserved
}  // namespace

void BTreePageView::Init(char* data, size_t page_size, PageType type,
                         uint16_t key_size, uint16_t payload_size,
                         uint16_t cache_item_size) {
  NBLB_CHECK(type == kPageTypeBTreeLeaf || type == kPageTypeBTreeInternal);
  NBLB_CHECK(key_size > 0);
  NBLB_CHECK(payload_size > 0);
  std::memset(data, 0, page_size);
  EncodeFixed16(data + kOffType, static_cast<uint16_t>(type));
  EncodeFixed16(data + kOffNumEntries, 0);
  EncodeFixed16(data + kOffKeySize, key_size);
  EncodeFixed16(data + kOffPayloadSize, payload_size);
  EncodeFixed32(data + kOffNext, kInvalidPageId);
  EncodeFixed32(data + kOffPrev, kInvalidPageId);
  EncodeFixed32(data + kOffLeftmost, kInvalidPageId);
  EncodeFixed16(data + kOffCacheItemSize,
                type == kPageTypeBTreeLeaf ? cache_item_size : 0);
  EncodeFixed64(data + kOffCsn, 0);
  EncodeFixed64(data + kOffCacheSeq, 0);
  EncodeFixed32(data + page_size - 4, kBTreePageMagic);
}

PageType BTreePageView::type() const {
  return static_cast<PageType>(DecodeFixed16(data_ + kOffType));
}
uint16_t BTreePageView::num_entries() const {
  return DecodeFixed16(data_ + kOffNumEntries);
}
void BTreePageView::set_num_entries(uint16_t n) {
  EncodeFixed16(data_ + kOffNumEntries, n);
}
uint16_t BTreePageView::key_size() const {
  return DecodeFixed16(data_ + kOffKeySize);
}
uint16_t BTreePageView::payload_size() const {
  return DecodeFixed16(data_ + kOffPayloadSize);
}
PageId BTreePageView::next() const { return DecodeFixed32(data_ + kOffNext); }
void BTreePageView::set_next(PageId id) { EncodeFixed32(data_ + kOffNext, id); }
PageId BTreePageView::prev() const { return DecodeFixed32(data_ + kOffPrev); }
void BTreePageView::set_prev(PageId id) { EncodeFixed32(data_ + kOffPrev, id); }
PageId BTreePageView::leftmost_child() const {
  return DecodeFixed32(data_ + kOffLeftmost);
}
void BTreePageView::set_leftmost_child(PageId id) {
  EncodeFixed32(data_ + kOffLeftmost, id);
}
uint16_t BTreePageView::cache_item_size() const {
  return DecodeFixed16(data_ + kOffCacheItemSize);
}
uint64_t BTreePageView::csn() const { return DecodeFixed64(data_ + kOffCsn); }
void BTreePageView::set_csn(uint64_t v) { EncodeFixed64(data_ + kOffCsn, v); }
uint64_t BTreePageView::cache_seq() const {
  return DecodeFixed64(data_ + kOffCacheSeq);
}
void BTreePageView::set_cache_seq(uint64_t v) {
  EncodeFixed64(data_ + kOffCacheSeq, v);
}

Status BTreePageView::Validate() const {
  if (type() != kPageTypeBTreeLeaf && type() != kPageTypeBTreeInternal) {
    return Status::Corruption("bad btree page type");
  }
  if (DecodeFixed32(data_ + page_size_ - 4) != kBTreePageMagic) {
    return Status::Corruption("bad btree page magic");
  }
  if (EntriesEnd() > DirBegin()) {
    return Status::Corruption("entry/directory overlap");
  }
  return Status::OK();
}

size_t BTreePageView::StablePoint() const {
  const size_t usable = UsableBytes();
  const size_t e = entry_size();
  return kBTreeHeaderSize + usable * e / (e + kBTreeDirEntrySize);
}

Slice BTreePageView::KeyAtPhysical(size_t phys) const {
  NBLB_DCHECK(phys < num_entries());
  return Slice(EntryPtr(phys), key_size());
}

const char* BTreePageView::PayloadAtPhysical(size_t phys) const {
  NBLB_DCHECK(phys < num_entries());
  return EntryPtr(phys) + key_size();
}

uint16_t BTreePageView::DirAt(size_t pos) const {
  NBLB_DCHECK(pos < num_entries());
  return DecodeFixed16(data_ + page_size_ - kBTreeFooterSize -
                       (pos + 1) * kBTreeDirEntrySize);
}

void BTreePageView::SetDirAt(size_t pos, uint16_t phys) {
  EncodeFixed16(
      data_ + page_size_ - kBTreeFooterSize - (pos + 1) * kBTreeDirEntrySize,
      phys);
}

uint64_t BTreePageView::ValueAt(size_t pos) const {
  NBLB_DCHECK(payload_size() == 8);
  return DecodeFixed64(PayloadAt(pos));
}

PageId BTreePageView::ChildAt(size_t pos) const {
  NBLB_DCHECK(payload_size() == 4);
  return DecodeFixed32(PayloadAt(pos));
}

size_t BTreePageView::LowerBound(const Slice& key) const {
  size_t lo = 0, hi = num_entries();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (KeyAt(mid).Compare(key) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

bool BTreePageView::FindExact(const Slice& key, size_t* pos) const {
  const size_t p = LowerBound(key);
  if (p < num_entries() && KeyAt(p) == key) {
    *pos = p;
    return true;
  }
  return false;
}

PageId BTreePageView::ChildFor(const Slice& key) const {
  NBLB_DCHECK(type() == kPageTypeBTreeInternal);
  // Last entry with key_i <= key covers it; otherwise the leftmost child.
  const size_t p = LowerBound(key);
  if (p < num_entries() && KeyAt(p) == key) {
    return ChildAt(p);
  }
  if (p == 0) return leftmost_child();
  return ChildAt(p - 1);
}

Status BTreePageView::InsertEntry(const Slice& key, const Slice& payload) {
  NBLB_CHECK(key.size() == key_size());
  NBLB_CHECK(payload.size() == payload_size());
  const size_t n = num_entries();
  if (n >= Capacity()) {
    return Status::ResourceExhausted("btree page full");
  }
  const size_t pos = LowerBound(key);
  if (pos < n && KeyAt(pos) == key) {
    return Status::AlreadyExists("duplicate key");
  }
  // Physical append. This may overwrite the low periphery of the cache
  // region — by design (§2.1.1: "key inserts freely overwrite the periphery
  // of the cache space").
  char* dst = EntryPtr(n);
  std::memcpy(dst, key.data(), key.size());
  std::memcpy(dst + key_size(), payload.data(), payload.size());
  // Shift directory positions [pos, n) outward by one slot (addresses move
  // down by one dir entry) and write the new position.
  if (n > pos) {
    char* base = data_ + page_size_ - kBTreeFooterSize - n * kBTreeDirEntrySize;
    std::memmove(base - kBTreeDirEntrySize, base,
                 (n - pos) * kBTreeDirEntrySize);
  }
  SetDirAt(pos, static_cast<uint16_t>(n));
  set_num_entries(static_cast<uint16_t>(n + 1));
  return Status::OK();
}

Status BTreePageView::AppendEntry(const Slice& key, const Slice& payload) {
  NBLB_CHECK(key.size() == key_size());
  NBLB_CHECK(payload.size() == payload_size());
  const size_t n = num_entries();
  if (n >= Capacity()) {
    return Status::ResourceExhausted("btree page full");
  }
  NBLB_DCHECK(n == 0 || KeyAt(n - 1).Compare(key) < 0);
  char* dst = EntryPtr(n);
  std::memcpy(dst, key.data(), key.size());
  std::memcpy(dst + key_size(), payload.data(), payload.size());
  SetDirAt(n, static_cast<uint16_t>(n));
  set_num_entries(static_cast<uint16_t>(n + 1));
  return Status::OK();
}

Status BTreePageView::RemoveEntryAt(size_t pos) {
  const size_t n = num_entries();
  if (pos >= n) return Status::OutOfRange("remove position out of range");
  const uint16_t phys = DirAt(pos);
  const uint16_t last_phys = static_cast<uint16_t>(n - 1);

  // Shift directory positions [pos+1, n) inward by one slot.
  if (pos + 1 < n) {
    char* base = data_ + page_size_ - kBTreeFooterSize - n * kBTreeDirEntrySize;
    std::memmove(base + kBTreeDirEntrySize, base,
                 (n - 1 - pos) * kBTreeDirEntrySize);
  }
  set_num_entries(static_cast<uint16_t>(n - 1));

  // Swap-remove in the physical region: move the last physical entry into
  // the hole and fix the directory slot that referenced it.
  if (phys != last_phys) {
    std::memcpy(EntryPtr(phys), EntryPtr(last_phys), entry_size());
    for (size_t j = 0; j < n - 1; ++j) {
      if (DirAt(j) == last_phys) {
        SetDirAt(j, phys);
        break;
      }
    }
  }
  // Zero reclaimed bytes so the cache never misreads them (invariant 3).
  std::memset(EntryPtr(last_phys), 0, entry_size());
  std::memset(data_ + page_size_ - kBTreeFooterSize - n * kBTreeDirEntrySize, 0,
              kBTreeDirEntrySize);
  return Status::OK();
}

void BTreePageView::SetPayloadAt(size_t pos, const Slice& payload) {
  NBLB_CHECK(payload.size() == payload_size());
  std::memcpy(EntryPtr(DirAt(pos)) + key_size(), payload.data(),
              payload.size());
}

void BTreePageView::ExportSorted(
    std::vector<std::pair<std::string, std::string>>* out) const {
  out->clear();
  out->reserve(num_entries());
  for (size_t i = 0; i < num_entries(); ++i) {
    out->emplace_back(KeyAt(i).ToString(),
                      std::string(PayloadAt(i), payload_size()));
  }
}

Status BTreePageView::RebuildFromSorted(
    const std::vector<std::pair<std::string, std::string>>& entries) {
  if (entries.size() > Capacity()) {
    return Status::ResourceExhausted("too many entries for page");
  }
  set_num_entries(0);
  // Zero the whole variable region (entries + cache + directory).
  std::memset(data_ + kBTreeHeaderSize, 0,
              page_size_ - kBTreeHeaderSize - kBTreeFooterSize);
  for (const auto& [k, v] : entries) {
    NBLB_RETURN_NOT_OK(AppendEntry(Slice(k), Slice(v)));
  }
  return Status::OK();
}

void BTreePageView::ZeroFreeSpace() {
  std::memset(data_ + FreeBegin(), 0, FreeBytes());
}

}  // namespace nblb
