// BTreePageView: in-page operations for B+Tree nodes, laid out exactly as the
// paper's Figure 1:
//
//   +--------------------------------------------------------------+
//   | fixed header | entries (keys+payloads) -->   free   <-- dir  | footer |
//   +--------------------------------------------------------------+
//
// Entries (key + payload, fixed width E = K + V) grow UP from the header;
// the directory (2-byte physical-entry indexes in sorted key order) grows
// DOWN from the footer. The interval in between is the free space the index
// cache recycles (§2.1). Geometry accessors expose that interval and the
// stable point S — the address both regions reach simultaneously at 100%
// fill, S = header + usable * E/(E+D) (the paper's S = K/(K+D) * P with the
// payload folded into the key term and header/footer accounted for).
//
// Invariants maintained by every mutation:
//   1. Physical entries are contiguous in [0, n).
//   2. Directory position j holds the physical index of the j-th smallest key.
//   3. Bytes freed by shrinking either region are zeroed, so the cache never
//      misreads reclaimed bytes as a live cache item.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "storage/page.h"

namespace nblb {

/// Serialized header size of a B+Tree page.
inline constexpr size_t kBTreeHeaderSize = 48;
/// Serialized footer size (crc32 + magic).
inline constexpr size_t kBTreeFooterSize = 8;
/// Directory entry width (u16 physical index).
inline constexpr size_t kBTreeDirEntrySize = 2;
/// Footer magic value.
inline constexpr uint32_t kBTreePageMagic = 0xb7ee2011u;

/// \brief Mutable view over one B+Tree page buffer (does not own the bytes).
class BTreePageView {
 public:
  BTreePageView(char* data, size_t page_size)
      : data_(data), page_size_(page_size) {}

  /// \brief Formats a fresh page. cache_item_size is meaningful on leaves
  /// only (0 disables the in-page cache).
  static void Init(char* data, size_t page_size, PageType type,
                   uint16_t key_size, uint16_t payload_size,
                   uint16_t cache_item_size);

  // ---- Header accessors -------------------------------------------------

  PageType type() const;
  bool IsLeaf() const { return type() == kPageTypeBTreeLeaf; }
  uint16_t num_entries() const;
  uint16_t key_size() const;
  uint16_t payload_size() const;
  /// Entry width E = key_size + payload_size.
  size_t entry_size() const { return key_size() + payload_size(); }

  PageId next() const;
  void set_next(PageId id);
  PageId prev() const;
  void set_prev(PageId id);
  PageId leftmost_child() const;
  void set_leftmost_child(PageId id);

  uint16_t cache_item_size() const;
  uint64_t csn() const;
  void set_csn(uint64_t v);
  uint64_t cache_seq() const;
  void set_cache_seq(uint64_t v);

  /// \brief Checks footer magic; Corruption on mismatch.
  Status Validate() const;

  // ---- Geometry ----------------------------------------------------------

  /// First byte past the entry region.
  size_t EntriesEnd() const {
    return kBTreeHeaderSize + num_entries() * entry_size();
  }
  /// First byte of the directory region.
  size_t DirBegin() const {
    return page_size_ - kBTreeFooterSize -
           num_entries() * kBTreeDirEntrySize;
  }
  /// The free interval recycled by the index cache: [FreeBegin, FreeEnd).
  size_t FreeBegin() const { return EntriesEnd(); }
  size_t FreeEnd() const { return DirBegin(); }
  size_t FreeBytes() const { return FreeEnd() - FreeBegin(); }

  /// \brief Max entries this page can hold.
  size_t Capacity() const {
    return (page_size_ - kBTreeHeaderSize - kBTreeFooterSize) /
           (entry_size() + kBTreeDirEntrySize);
  }
  bool HasRoom() const { return num_entries() < Capacity(); }

  /// \brief The stable point S: the byte offset both regions reach together
  /// at 100% fill. Cache items near S survive longest (§2.1.1).
  size_t StablePoint() const;

  /// \brief Bytes used by live index content (entries + directory), i.e. the
  /// fill-factor numerator. Usable = page minus header/footer.
  size_t UsedBytes() const {
    return num_entries() * (entry_size() + kBTreeDirEntrySize);
  }
  size_t UsableBytes() const {
    return page_size_ - kBTreeHeaderSize - kBTreeFooterSize;
  }

  // ---- Entry access -------------------------------------------------------

  /// \brief Key bytes of the physical entry `phys`.
  Slice KeyAtPhysical(size_t phys) const;
  /// \brief Payload bytes of the physical entry `phys`.
  const char* PayloadAtPhysical(size_t phys) const;

  /// \brief Physical index of the sorted position `pos`.
  uint16_t DirAt(size_t pos) const;

  /// \brief Key at sorted position `pos`.
  Slice KeyAt(size_t pos) const { return KeyAtPhysical(DirAt(pos)); }
  /// \brief Payload at sorted position `pos`.
  const char* PayloadAt(size_t pos) const {
    return PayloadAtPhysical(DirAt(pos));
  }
  /// \brief Leaf payload decoded as u64 (RID).
  uint64_t ValueAt(size_t pos) const;
  /// \brief Internal payload decoded as a child PageId.
  PageId ChildAt(size_t pos) const;

  /// \brief First sorted position whose key is >= `key` (may be
  /// num_entries()).
  size_t LowerBound(const Slice& key) const;

  /// \brief Exact-match search; fills `pos` on success.
  bool FindExact(const Slice& key, size_t* pos) const;

  /// \brief Child page covering `key` (internal pages).
  PageId ChildFor(const Slice& key) const;

  // ---- Mutation ----------------------------------------------------------

  /// \brief Inserts (key, payload) keeping the directory sorted. Fails with
  /// ResourceExhausted when full; AlreadyExists on duplicate key.
  Status InsertEntry(const Slice& key, const Slice& payload);

  /// \brief Appends an entry known to sort after all existing keys (bulk
  /// load fast path; no duplicate check).
  Status AppendEntry(const Slice& key, const Slice& payload);

  /// \brief Removes the entry at sorted position `pos` (swap-remove; zeroes
  /// the freed entry and directory bytes).
  Status RemoveEntryAt(size_t pos);

  /// \brief Overwrites the payload at sorted position `pos`.
  void SetPayloadAt(size_t pos, const Slice& payload);

  /// \brief Copies all entries out in sorted order (split support).
  void ExportSorted(std::vector<std::pair<std::string, std::string>>* out) const;

  /// \brief Clears all entries and zeroes the whole variable region, then
  /// re-appends `entries` (must be sorted). Used to rebuild pages on split.
  Status RebuildFromSorted(
      const std::vector<std::pair<std::string, std::string>>& entries);

  /// \brief Zeroes the entire free interval (cache invalidation).
  void ZeroFreeSpace();

  char* raw() { return data_; }
  const char* raw() const { return data_; }
  size_t page_size() const { return page_size_; }

 private:
  char* EntryPtr(size_t phys) {
    return data_ + kBTreeHeaderSize + phys * entry_size();
  }
  const char* EntryPtr(size_t phys) const {
    return data_ + kBTreeHeaderSize + phys * entry_size();
  }
  void SetDirAt(size_t pos, uint16_t phys);
  void set_num_entries(uint16_t n);

  char* data_;
  size_t page_size_;
};

}  // namespace nblb
