#include "index/btree.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include <thread>

#include "common/bytes.h"
#include "common/logging.h"
#include "obs/event_ring.h"

namespace nblb {

namespace {

// Meta page layout (little endian):
//   [0]  u16 page_type (kPageTypeMeta)
//   [2]  u16 key_size
//   [4]  u16 leaf_payload_size
//   [6]  u16 cache_item_size
//   [8]  u32 root_page
//   [12] u32 first_leaf
//   [16] u64 num_entries
//   [24] u64 global_csn
//   [32] u64 magic
constexpr uint64_t kBTreeMetaMagic = 0x6e626c622d627472ull;  // "nblb-btr"

std::string EncodeChild(PageId id) {
  std::string s(4, '\0');
  EncodeFixed32(s.data(), id);
  return s;
}

std::string EncodeValue(uint64_t v) {
  std::string s(8, '\0');
  EncodeFixed64(s.data(), v);
  return s;
}

}  // namespace

// ---------------------------------------------------------------------------
// Construction / persistence
// ---------------------------------------------------------------------------

Result<std::unique_ptr<BTree>> BTree::Create(BufferPool* bp,
                                             BTreeOptions options) {
  if (options.key_size == 0) {
    return Status::InvalidArgument("key_size must be > 0");
  }
  if (options.leaf_payload_size != 8) {
    return Status::InvalidArgument("leaf payload must be 8 bytes");
  }
  if (options.split_keep_fraction <= 0 || options.split_keep_fraction >= 1) {
    return Status::InvalidArgument("split_keep_fraction must be in (0,1)");
  }
  std::unique_ptr<BTree> tree(new BTree(bp, options));

  NBLB_ASSIGN_OR_RETURN(PageGuard meta, bp->NewPage());
  tree->meta_page_id_ = meta.id();
  meta.MarkDirty();
  meta.Release();

  // Fresh root leaf.
  NBLB_ASSIGN_OR_RETURN(PageGuard rootp, bp->NewPage());
  BTreePageView::Init(rootp.data(), bp->page_size(), kPageTypeBTreeLeaf,
                      options.key_size, options.leaf_payload_size,
                      options.cache_item_size);
  rootp.MarkDirty();
  tree->root_ = rootp.id();
  tree->first_leaf_ = rootp.id();
  rootp.Release();

  NBLB_RETURN_NOT_OK(tree->WriteMeta());
  return tree;
}

Result<std::unique_ptr<BTree>> BTree::Open(BufferPool* bp,
                                           PageId meta_page_id) {
  NBLB_ASSIGN_OR_RETURN(PageGuard meta, bp->FetchPage(meta_page_id));
  const char* d = meta.data();
  if (DecodeFixed16(d) != kPageTypeMeta ||
      DecodeFixed64(d + 32) != kBTreeMetaMagic) {
    return Status::Corruption("not a btree meta page");
  }
  BTreeOptions options;
  options.key_size = DecodeFixed16(d + 2);
  options.leaf_payload_size = DecodeFixed16(d + 4);
  options.cache_item_size = DecodeFixed16(d + 6);
  std::unique_ptr<BTree> tree(new BTree(bp, options));
  tree->meta_page_id_ = meta_page_id;
  tree->root_ = DecodeFixed32(d + 8);
  tree->first_leaf_ = DecodeFixed32(d + 12);
  tree->num_entries_ = DecodeFixed64(d + 16);
  tree->global_csn_.store(DecodeFixed64(d + 24), std::memory_order_relaxed);
  meta.Release();
  // Crash discipline (§2.1.2): any page cache persisted before the previous
  // shutdown is invalidated wholesale by bumping CSNidx.
  NBLB_RETURN_NOT_OK(tree->BumpGlobalCsn());
  return tree;
}

Status BTree::WriteMeta() {
  NBLB_ASSIGN_OR_RETURN(PageGuard meta, bp_->FetchPage(meta_page_id_));
  char* d = meta.data();
  EncodeFixed16(d + 0, kPageTypeMeta);
  EncodeFixed16(d + 2, options_.key_size);
  EncodeFixed16(d + 4, options_.leaf_payload_size);
  EncodeFixed16(d + 6, options_.cache_item_size);
  EncodeFixed32(d + 8, root_);
  EncodeFixed32(d + 12, first_leaf_);
  EncodeFixed64(d + 16, num_entries_);
  EncodeFixed64(d + 24, global_csn_.load(std::memory_order_relaxed));
  EncodeFixed64(d + 32, kBTreeMetaMagic);
  meta.MarkDirty();
  return Status::OK();
}

Status BTree::BumpGlobalCsn() {
  global_csn_.fetch_add(1, std::memory_order_relaxed);
  return WriteMeta();
}

size_t BTree::LeafCapacity() const {
  const size_t entry = options_.key_size + options_.leaf_payload_size;
  return (bp_->page_size() - kBTreeHeaderSize - kBTreeFooterSize) /
         (entry + kBTreeDirEntrySize);
}

// ---------------------------------------------------------------------------
// Lookup
// ---------------------------------------------------------------------------

Result<PageGuard> BTree::FetchPageRetry(PageId id) {
  // Mirrors HeapFile::GetBatch's chunk-size-1 policy (see
  // kMaxTransientRetries there): transient capacity pressure clears when
  // the competing batch unwinds, so yield-retry instead of surfacing a
  // retryable ResourceExhausted from a single-page walk.
  constexpr size_t kMaxRetries = 4096;
  constexpr size_t kYieldOnly = 64;
  for (size_t attempt = 0;; ++attempt) {
    auto fetched = bp_->FetchPage(id);
    if (fetched.ok() || !fetched.status().IsResourceExhausted() ||
        attempt >= kMaxRetries) {
      return fetched;
    }
    RecordFlightEvent(FlightEvent::kBtreeRetry, id, attempt + 1);
    // Yield first (mid-flight aborts clear in a scheduler quantum); back
    // off to short sleeps if the pressure persists, so the bound covers
    // hundreds of milliseconds of real wait instead of a few.
    if (attempt < kYieldOnly) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
}

Result<PageId> BTree::DescendToLeaf(const Slice& key) {
  PageId id = root_;
  for (;;) {
    NBLB_ASSIGN_OR_RETURN(PageGuard guard, FetchPageRetry(id));
    BTreePageView view(guard.data(), bp_->page_size());
    NBLB_RETURN_NOT_OK(view.Validate());
    if (view.IsLeaf()) return id;
    id = view.ChildFor(key);
    if (id == kInvalidPageId) {
      return Status::Corruption("internal node with invalid child");
    }
  }
}

Result<PageGuard> BTree::FindLeaf(const Slice& key) {
  if (key.size() != options_.key_size) {
    return Status::InvalidArgument("key size mismatch");
  }
  NBLB_ASSIGN_OR_RETURN(PageId leaf_id, DescendToLeaf(key));
  return FetchPageRetry(leaf_id);
}

Result<uint64_t> BTree::Get(const Slice& key) {
  NBLB_ASSIGN_OR_RETURN(PageGuard leaf, FindLeaf(key));
  BTreePageView view(leaf.data(), bp_->page_size());
  size_t pos;
  if (!view.FindExact(key, &pos)) {
    return Status::NotFound("key not found");
  }
  return view.ValueAt(pos);
}

Status BTree::GetBatch(const std::vector<Slice>& sorted_keys,
                       std::vector<Result<uint64_t>>* out) {
  // Small batches keep the leaf-sharing walk; larger ones descend
  // level-synchronously so the whole next level — ultimately the leaf
  // set — is prefetched as one overlapped async read group instead of one
  // serial root-to-leaf walk per key. Two gates, both measured on the
  // shard workload:
  //   - size: the descent's per-level machinery (grouping, chunked
  //     Start/Finish fetches) only beats per-key optimistic page hits
  //     beyond ~a hundred keys (open-loop coalesced groups gain 1.4-1.5x
  //     in the miss regime; hot sub-batches of ≤ 64 keys lose ~20%);
  //   - residency: when the whole backing file fits in the pool, a warm
  //     pool never misses, the prefetch has nothing to overlap, and the
  //     chained walk's dense sibling-chain sharing is strictly cheaper.
  constexpr size_t kDescentMinKeys = 128;
  if (sorted_keys.size() >= kDescentMinKeys &&
      static_cast<size_t>(bp_->disk()->num_pages()) > bp_->num_frames()) {
    // (A single-leaf tree needs no gate: the descent's first level IS the
    // leaf level and resolves directly, so no root peek is needed here.)
    const size_t base = out->size();
    Status st = GetBatchDescent(sorted_keys, out);
    if (!st.IsResourceExhausted()) return st;
    // The descent pins a whole chunk (plus its prefetched successor) at
    // once; under heavy concurrent pin pressure that can exhaust a
    // stripe the chained walk (≤ 2 pins at a time) could still serve.
    // Degrade rather than fail: drop the partial results and re-run
    // chained. (The descent drains its in-flight fetches before
    // returning, so no frame is left loading.)
    out->erase(out->begin() + static_cast<ptrdiff_t>(base), out->end());
    return GetBatchChained(sorted_keys, out);
  }
  return GetBatchChained(sorted_keys, out);
}

Status BTree::GetBatchDescent(const std::vector<Slice>& keys,
                              std::vector<Result<uint64_t>>* out) {
  const size_t base = out->size();
  out->reserve(base + keys.size());
  for (const Slice& key : keys) {
    if (key.size() != options_.key_size) {
      out->push_back(Status::InvalidArgument("key size mismatch"));
    } else {
      out->push_back(Status::NotFound("key not found"));
    }
  }
  // Positions with a well-formed key, in input (= key) order.
  std::vector<uint32_t> pos;
  pos.reserve(keys.size());
  for (uint32_t i = 0; i < keys.size(); ++i) {
    if (keys[i].size() == options_.key_size) pos.push_back(i);
  }
  if (pos.empty()) return Status::OK();

  // One group = the run of consecutive keys that descend through the same
  // page at the current level. Keys are sorted, so each level's groups are
  // in page order and same-child runs are contiguous.
  struct KeyGroup {
    PageId page;
    uint32_t begin, end;  // range into `pos`
  };
  std::vector<KeyGroup> groups{{root_, 0, static_cast<uint32_t>(pos.size())}};
  std::vector<KeyGroup> next;

  // Chunk cap: two chunks may be pinned at once (current + prefetched), so
  // stay well below the pool capacity.
  const size_t chunk_cap = std::max<size_t>(8, bp_->num_frames() / 8);

  for (;;) {
    bool leaf_level = false;
    next.clear();
    const size_t ngroups = groups.size();
    auto start_chunk =
        [&](size_t a, size_t b) -> Result<BufferPool::BatchFetch> {
      std::vector<PageId> ids;
      ids.reserve(b - a);
      for (size_t g = a; g < b; ++g) ids.push_back(groups[g].page);
      return bp_->StartFetchPages(ids);
    };

    size_t a = 0;
    size_t b = std::min(ngroups, chunk_cap);
    auto pending = start_chunk(a, b);
    NBLB_RETURN_NOT_OK(pending.status());
    while (a < ngroups) {
      const size_t na = b;
      const size_t nb = std::min(ngroups, b + chunk_cap);
      // Prefetch the next chunk BEFORE blocking on the current one: its
      // miss reads overlap both the current chunk's completion and the
      // binary searches below. Only when the current chunk is
      // self-contained, though — finishing a chunk that waits on another
      // thread's loads while our prefetched claims hold their io bits can
      // deadlock two pipelining threads (see BatchFetch::self_contained);
      // the dependent case degrades to sequential chunks below.
      Result<BufferPool::BatchFetch> ahead = Status::OK();
      const bool have_ahead = na < ngroups && (*pending).self_contained();
      if (have_ahead) ahead = start_chunk(na, nb);
      auto guards = bp_->FinishFetchPages(std::move(*pending));
      Status err = guards.ok() ? Status::OK() : guards.status();
      if (err.ok() && have_ahead && !ahead.ok()) err = ahead.status();
      if (err.ok()) {
        for (size_t g = a; g < b && err.ok(); ++g) {
          const KeyGroup& kg = groups[g];
          PageGuard& page = (*guards)[g - a];
          BTreePageView view(page.data(), bp_->page_size());
          err = view.Validate();
          if (!err.ok()) break;
          if (view.IsLeaf()) {
            leaf_level = true;
            for (uint32_t k = kg.begin; k < kg.end; ++k) {
              const Slice& key = keys[pos[k]];
              size_t at;
              if (view.FindExact(key, &at)) {
                (*out)[base + pos[k]] = view.ValueAt(at);
              }
            }
          } else {
            for (uint32_t k = kg.begin; k < kg.end; ++k) {
              const PageId child = view.ChildFor(keys[pos[k]]);
              if (child == kInvalidPageId) {
                err = Status::Corruption("internal node with invalid child");
                break;
              }
              if (!next.empty() && next.back().page == child) {
                next.back().end = k + 1;
              } else {
                next.push_back({child, k, k + 1});
              }
            }
          }
        }
      }
      if (!err.ok()) {
        // Never abandon an in-flight prefetch: its frames hold the io bit
        // until Finish clears them.
        if (have_ahead && ahead.ok()) {
          (void)bp_->FinishFetchPages(std::move(*ahead));
        }
        return err;
      }
      a = na;
      b = nb;
      if (a < ngroups) {
        if (have_ahead) {
          pending = std::move(ahead);
        } else {
          // Sequential fallback for a dependent chunk.
          pending = start_chunk(a, b);
          NBLB_RETURN_NOT_OK(pending.status());
        }
      }
    }
    if (leaf_level) return Status::OK();
    groups.swap(next);
  }
}

Status BTree::GetBatchChained(const std::vector<Slice>& sorted_keys,
                              std::vector<Result<uint64_t>>* out) {
  out->reserve(out->size() + sorted_keys.size());
  PageGuard leaf;   // current leaf, shared across consecutive keys
  bool have_leaf = false;
  // Density heuristic: walk the sibling chain only while consecutive keys
  // keep resolving without a descent. A sparse batch (keys many leaves
  // apart) then pays exactly one descent per key — no speculative sibling
  // fetches polluting a near-capacity buffer pool — while a dense batch
  // (range-scan-like) streams along the chain and skips the inner levels.
  bool dense = false;

  for (const Slice& key : sorted_keys) {
    if (key.size() != options_.key_size) {
      out->push_back(Status::InvalidArgument("key size mismatch"));
      continue;
    }
    bool resolved_gap = false;
    bool descended = false;
    while (have_leaf) {
      BTreePageView view(leaf.data(), bp_->page_size());
      const size_t n = view.num_entries();
      if (n > 0 && key.Compare(view.KeyAt(n - 1)) <= 0) break;
      const PageId next = view.next();
      if (next == kInvalidPageId) {
        if (n > 0) break;  // past the last key in the tree -> NotFound here
        have_leaf = false;
        break;
      }
      if (!dense) {
        have_leaf = false;  // sparse so far; don't speculate, just descend
        break;
      }
      NBLB_ASSIGN_OR_RETURN(PageGuard g, FetchPageRetry(next));
      BTreePageView next_view(g.data(), bp_->page_size());
      const size_t nn = next_view.num_entries();
      if (nn == 0) {
        have_leaf = false;  // lazy-deleted empty leaf; just descend
        break;
      }
      if (key.Compare(next_view.KeyAt(0)) < 0) {
        // Keys are globally ordered across the chain: past the current
        // leaf's last entry but before the sibling's first -> nowhere.
        // Advance to the sibling anyway: later batch keys in the same gap
        // then miss inside it directly instead of re-fetching it per key.
        leaf = std::move(g);
        resolved_gap = true;
        break;
      }
      if (key.Compare(next_view.KeyAt(nn - 1)) > 0) {
        have_leaf = false;  // far away; a fresh descent is cheaper
        break;
      }
      leaf = std::move(g);  // the key is inside this sibling
    }
    if (resolved_gap) {
      out->push_back(Status::NotFound("key not found"));
      dense = true;  // resolved with at most one sibling fetch
      continue;
    }
    if (!have_leaf) {
      NBLB_ASSIGN_OR_RETURN(PageGuard g, FindLeaf(key));
      leaf = std::move(g);
      have_leaf = true;
      descended = true;
    }
    dense = !descended;
    BTreePageView view(leaf.data(), bp_->page_size());
    size_t pos;
    if (view.FindExact(key, &pos)) {
      out->push_back(view.ValueAt(pos));
    } else {
      out->push_back(Status::NotFound("key not found"));
    }
  }
  return Status::OK();
}

Status BTree::SetValue(const Slice& key, uint64_t value) {
  NBLB_ASSIGN_OR_RETURN(PageGuard leaf, FindLeaf(key));
  BTreePageView view(leaf.data(), bp_->page_size());
  size_t pos;
  if (!view.FindExact(key, &pos)) {
    return Status::NotFound("key not found");
  }
  std::string payload = EncodeValue(value);
  view.SetPayloadAt(pos, Slice(payload));
  leaf.MarkDirty();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Insert
// ---------------------------------------------------------------------------

Status BTree::Insert(const Slice& key, uint64_t value) {
  if (key.size() != options_.key_size) {
    return Status::InvalidArgument("key size mismatch");
  }
  std::string payload = EncodeValue(value);
  SplitResult split;
  NBLB_RETURN_NOT_OK(InsertRec(root_, key, Slice(payload), &split));
  if (split.happened) {
    // Grow a new root above the old one.
    NBLB_ASSIGN_OR_RETURN(PageGuard rootp, bp_->NewPage());
    BTreePageView root_view(rootp.data(), bp_->page_size());
    BTreePageView::Init(rootp.data(), bp_->page_size(), kPageTypeBTreeInternal,
                        options_.key_size, /*payload_size=*/4,
                        /*cache_item_size=*/0);
    root_view.set_leftmost_child(root_);
    NBLB_RETURN_NOT_OK(root_view.InsertEntry(Slice(split.sep_key),
                                             Slice(EncodeChild(split.right_id))));
    rootp.MarkDirty();
    root_ = rootp.id();
  }
  ++num_entries_;
  return WriteMeta();
}

Status BTree::InsertRec(PageId node_id, const Slice& key, const Slice& payload,
                        SplitResult* split) {
  NBLB_ASSIGN_OR_RETURN(PageGuard guard, bp_->FetchPage(node_id));
  BTreePageView view(guard.data(), bp_->page_size());
  NBLB_RETURN_NOT_OK(view.Validate());

  if (view.IsLeaf()) {
    size_t pos;
    if (view.FindExact(key, &pos)) {
      return Status::AlreadyExists("duplicate key");
    }
    if (view.HasRoom()) {
      NBLB_RETURN_NOT_OK(view.InsertEntry(key, payload));
      guard.MarkDirty();
      return Status::OK();
    }
    return SplitLeaf(&view, &guard, key, payload, split);
  }

  // Internal node.
  const PageId child = view.ChildFor(key);
  SplitResult child_split;
  NBLB_RETURN_NOT_OK(InsertRec(child, key, payload, &child_split));
  if (!child_split.happened) return Status::OK();

  const std::string right = EncodeChild(child_split.right_id);
  if (view.HasRoom()) {
    NBLB_RETURN_NOT_OK(
        view.InsertEntry(Slice(child_split.sep_key), Slice(right)));
    guard.MarkDirty();
    return Status::OK();
  }
  Status st = SplitInternal(&view, Slice(child_split.sep_key),
                            child_split.right_id, split);
  guard.MarkDirty();
  return st;
}

Status BTree::SplitLeaf(BTreePageView* leaf, PageGuard* leaf_guard,
                        const Slice& key, const Slice& payload,
                        SplitResult* split) {
  std::vector<std::pair<std::string, std::string>> entries;
  leaf->ExportSorted(&entries);
  const size_t n = entries.size();
  size_t mid = static_cast<size_t>(
      static_cast<double>(n) * options_.split_keep_fraction);
  mid = std::min(std::max<size_t>(mid, 1), n - 1);

  NBLB_ASSIGN_OR_RETURN(PageGuard rightg, bp_->NewPage());
  BTreePageView right(rightg.data(), bp_->page_size());
  BTreePageView::Init(rightg.data(), bp_->page_size(), kPageTypeBTreeLeaf,
                      options_.key_size, options_.leaf_payload_size,
                      options_.cache_item_size);

  std::vector<std::pair<std::string, std::string>> left_half(
      entries.begin(), entries.begin() + static_cast<long>(mid));
  std::vector<std::pair<std::string, std::string>> right_half(
      entries.begin() + static_cast<long>(mid), entries.end());
  NBLB_RETURN_NOT_OK(right.RebuildFromSorted(right_half));
  NBLB_RETURN_NOT_OK(leaf->RebuildFromSorted(left_half));

  // Fix the sibling chain: left <-> right <-> old_next.
  const PageId old_next = leaf->next();
  right.set_next(old_next);
  right.set_prev(leaf_guard->id());
  leaf->set_next(rightg.id());
  if (old_next != kInvalidPageId) {
    NBLB_ASSIGN_OR_RETURN(PageGuard nextg, bp_->FetchPage(old_next));
    BTreePageView next_view(nextg.data(), bp_->page_size());
    next_view.set_prev(rightg.id());
    nextg.MarkDirty();
  }

  // Route the pending entry to the correct half.
  const Slice sep(right_half.front().first);
  if (key.Compare(sep) < 0) {
    NBLB_RETURN_NOT_OK(leaf->InsertEntry(key, payload));
  } else {
    NBLB_RETURN_NOT_OK(right.InsertEntry(key, payload));
  }

  rightg.MarkDirty();
  leaf_guard->MarkDirty();
  split->happened = true;
  split->sep_key = right.KeyAt(0).ToString();
  split->right_id = rightg.id();
  return Status::OK();
}

Status BTree::SplitInternal(BTreePageView* node, const Slice& sep,
                            PageId right_child, SplitResult* split) {
  // Merge the pending (sep, right_child) into the sorted entry list, then
  // split around the middle key, which moves up to the parent.
  std::vector<std::pair<std::string, std::string>> entries;
  node->ExportSorted(&entries);
  auto it = std::lower_bound(
      entries.begin(), entries.end(), sep,
      [](const auto& e, const Slice& k) { return Slice(e.first).Compare(k) < 0; });
  entries.insert(it, {sep.ToString(), EncodeChild(right_child)});

  const size_t n = entries.size();
  const size_t mid = n / 2;

  NBLB_ASSIGN_OR_RETURN(PageGuard rightg, bp_->NewPage());
  BTreePageView right(rightg.data(), bp_->page_size());
  BTreePageView::Init(rightg.data(), bp_->page_size(), kPageTypeBTreeInternal,
                      options_.key_size, /*payload_size=*/4,
                      /*cache_item_size=*/0);

  // entries[mid] is promoted: its child becomes the right node's leftmost.
  right.set_leftmost_child(DecodeFixed32(entries[mid].second.data()));
  std::vector<std::pair<std::string, std::string>> right_half(
      entries.begin() + static_cast<long>(mid) + 1, entries.end());
  std::vector<std::pair<std::string, std::string>> left_half(
      entries.begin(), entries.begin() + static_cast<long>(mid));
  NBLB_RETURN_NOT_OK(right.RebuildFromSorted(right_half));
  const PageId leftmost = node->leftmost_child();
  NBLB_RETURN_NOT_OK(node->RebuildFromSorted(left_half));
  node->set_leftmost_child(leftmost);

  rightg.MarkDirty();
  split->happened = true;
  split->sep_key = entries[mid].first;
  split->right_id = rightg.id();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Delete
// ---------------------------------------------------------------------------

Status BTree::Delete(const Slice& key) {
  if (key.size() != options_.key_size) {
    return Status::InvalidArgument("key size mismatch");
  }
  NBLB_ASSIGN_OR_RETURN(PageGuard leaf, FindLeaf(key));
  BTreePageView view(leaf.data(), bp_->page_size());
  size_t pos;
  if (!view.FindExact(key, &pos)) {
    return Status::NotFound("key not found");
  }
  NBLB_RETURN_NOT_OK(view.RemoveEntryAt(pos));
  leaf.MarkDirty();
  leaf.Release();
  --num_entries_;
  return WriteMeta();
}

// ---------------------------------------------------------------------------
// Iteration
// ---------------------------------------------------------------------------

Slice BTreeIterator::key() const {
  NBLB_DCHECK(valid_);
  BTreePageView view(const_cast<char*>(leaf_.data()), bp_->page_size());
  return view.KeyAt(pos_);
}

uint64_t BTreeIterator::value() const {
  NBLB_DCHECK(valid_);
  BTreePageView view(const_cast<char*>(leaf_.data()), bp_->page_size());
  return view.ValueAt(pos_);
}

Status BTreeIterator::SkipEmptyLeaves() {
  for (;;) {
    BTreePageView view(const_cast<char*>(leaf_.data()), bp_->page_size());
    if (pos_ < view.num_entries()) {
      valid_ = true;
      return Status::OK();
    }
    const PageId next = view.next();
    if (next == kInvalidPageId) {
      valid_ = false;
      leaf_.Release();
      return Status::OK();
    }
    NBLB_ASSIGN_OR_RETURN(PageGuard g, bp_->FetchPage(next));
    leaf_ = std::move(g);
    pos_ = 0;
  }
}

Status BTreeIterator::Next() {
  NBLB_DCHECK(valid_);
  ++pos_;
  return SkipEmptyLeaves();
}

Result<BTreeIterator> BTree::Seek(const Slice& key) {
  NBLB_ASSIGN_OR_RETURN(PageGuard leaf, FindLeaf(key));
  BTreePageView view(leaf.data(), bp_->page_size());
  BTreeIterator it;
  it.bp_ = bp_;
  it.pos_ = view.LowerBound(key);
  it.leaf_ = std::move(leaf);
  NBLB_RETURN_NOT_OK(it.SkipEmptyLeaves());
  return it;
}

Result<BTreeIterator> BTree::SeekToFirst() {
  NBLB_ASSIGN_OR_RETURN(PageGuard leaf, bp_->FetchPage(first_leaf_));
  BTreeIterator it;
  it.bp_ = bp_;
  it.pos_ = 0;
  it.leaf_ = std::move(leaf);
  NBLB_RETURN_NOT_OK(it.SkipEmptyLeaves());
  return it;
}

// ---------------------------------------------------------------------------
// Bulk load
// ---------------------------------------------------------------------------

Status BTree::BulkLoad(
    const std::vector<std::pair<std::string, uint64_t>>& sorted,
    double fill_fraction) {
  if (num_entries_ != 0) {
    return Status::InvalidArgument("bulk load requires an empty tree");
  }
  if (fill_fraction <= 0 || fill_fraction > 1) {
    return Status::InvalidArgument("fill_fraction must be in (0,1]");
  }
  if (sorted.empty()) return Status::OK();

  const size_t leaf_cap = LeafCapacity();
  const size_t per_leaf =
      std::max<size_t>(1, static_cast<size_t>(leaf_cap * fill_fraction));

  // Level 0: pack leaves left to right, reusing the existing root leaf first.
  struct NodeRef {
    std::string first_key;
    PageId id;
  };
  std::vector<NodeRef> level;
  size_t i = 0;
  PageId prev_leaf = kInvalidPageId;
  while (i < sorted.size()) {
    PageGuard g;
    if (level.empty()) {
      NBLB_ASSIGN_OR_RETURN(PageGuard first, bp_->FetchPage(first_leaf_));
      g = std::move(first);
    } else {
      NBLB_ASSIGN_OR_RETURN(PageGuard fresh, bp_->NewPage());
      g = std::move(fresh);
    }
    BTreePageView view(g.data(), bp_->page_size());
    BTreePageView::Init(g.data(), bp_->page_size(), kPageTypeBTreeLeaf,
                        options_.key_size, options_.leaf_payload_size,
                        options_.cache_item_size);
    const size_t end = std::min(i + per_leaf, sorted.size());
    for (; i < end; ++i) {
      const auto& [k, v] = sorted[i];
      if (k.size() != options_.key_size) {
        return Status::InvalidArgument("bulk key size mismatch");
      }
      NBLB_RETURN_NOT_OK(view.AppendEntry(Slice(k), Slice(EncodeValue(v))));
    }
    view.set_prev(prev_leaf);
    if (prev_leaf != kInvalidPageId) {
      NBLB_ASSIGN_OR_RETURN(PageGuard pg, bp_->FetchPage(prev_leaf));
      BTreePageView pv(pg.data(), bp_->page_size());
      pv.set_next(g.id());
      pg.MarkDirty();
    }
    g.MarkDirty();
    level.push_back({view.KeyAt(0).ToString(), g.id()});
    prev_leaf = g.id();
  }
  first_leaf_ = level.front().id;

  // Build internal levels until a single node remains.
  const size_t int_entry = options_.key_size + 4u;
  const size_t int_cap = (bp_->page_size() - kBTreeHeaderSize -
                          kBTreeFooterSize) /
                         (int_entry + kBTreeDirEntrySize);
  const size_t per_int =
      std::max<size_t>(2, static_cast<size_t>(int_cap * fill_fraction));
  while (level.size() > 1) {
    std::vector<NodeRef> parent_level;
    size_t j = 0;
    while (j < level.size()) {
      NBLB_ASSIGN_OR_RETURN(PageGuard g, bp_->NewPage());
      BTreePageView view(g.data(), bp_->page_size());
      BTreePageView::Init(g.data(), bp_->page_size(), kPageTypeBTreeInternal,
                          options_.key_size, /*payload_size=*/4, 0);
      // One node consumes up to per_int+1 children: the first becomes the
      // leftmost child, the rest become (first_key, child) entries.
      const size_t end = std::min(j + per_int + 1, level.size());
      view.set_leftmost_child(level[j].id);
      const std::string group_first_key = level[j].first_key;
      for (size_t c = j + 1; c < end; ++c) {
        NBLB_RETURN_NOT_OK(view.AppendEntry(
            Slice(level[c].first_key), Slice(EncodeChild(level[c].id))));
      }
      g.MarkDirty();
      parent_level.push_back({group_first_key, g.id()});
      j = end;
    }
    level = std::move(parent_level);
  }
  root_ = level.front().id;
  num_entries_ = sorted.size();
  return WriteMeta();
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

Result<BTreeStats> BTree::ComputeStats() {
  BTreeStats st;
  st.entries = num_entries_;

  // Height + internal page count by walking down the leftmost spine and
  // counting internal nodes breadth-first.
  std::vector<PageId> frontier = {root_};
  uint32_t height = 1;
  for (;;) {
    NBLB_ASSIGN_OR_RETURN(PageGuard g, bp_->FetchPage(frontier.front()));
    BTreePageView view(g.data(), bp_->page_size());
    if (view.IsLeaf()) break;
    ++height;
    std::vector<PageId> next_frontier;
    for (PageId id : frontier) {
      NBLB_ASSIGN_OR_RETURN(PageGuard ig, bp_->FetchPage(id));
      BTreePageView iv(ig.data(), bp_->page_size());
      ++st.internal_pages;
      next_frontier.push_back(iv.leftmost_child());
      for (size_t e = 0; e < iv.num_entries(); ++e) {
        next_frontier.push_back(iv.ChildAt(e));
      }
    }
    frontier = std::move(next_frontier);
  }
  st.height = height;

  // Leaf statistics via the sibling chain.
  double fill_sum = 0;
  for (PageId id = first_leaf_; id != kInvalidPageId;) {
    NBLB_ASSIGN_OR_RETURN(PageGuard g, bp_->FetchPage(id));
    BTreePageView view(g.data(), bp_->page_size());
    ++st.leaf_pages;
    fill_sum += static_cast<double>(view.UsedBytes()) /
                static_cast<double>(view.UsableBytes());
    st.leaf_free_bytes += view.FreeBytes();
    id = view.next();
  }
  if (st.leaf_pages > 0) {
    st.avg_leaf_fill = fill_sum / static_cast<double>(st.leaf_pages);
  }
  return st;
}

}  // namespace nblb
