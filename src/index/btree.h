// BTree: a disk-backed B+Tree over fixed-width memcmp-ordered keys.
//
// Leaf payloads are 8-byte values (heap RIDs); internal payloads are 4-byte
// child page ids. Splits rebuild pages from sorted scratch (zeroing reclaimed
// bytes), deletes are lazy (no rebalancing — which is precisely how real
// trees drift to the 45% fill factors the paper measured on CarTel).
//
// The tree persists a meta page holding the root, the leaf-chain head, entry
// count and the index-wide cache sequence number CSNidx (§2.1.2). Open()
// bumps CSNidx so any cache bytes that happened to reach disk before a crash
// are invalid on restart.
//
// Concurrency: structural operations (Insert/Delete/BulkLoad) require
// external serialization. In-page cache reads/writes (cache::IndexCache) are
// latch-protected against each other and may run concurrently with Get().

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "index/btree_page.h"
#include "storage/buffer_pool.h"

namespace nblb {

/// \brief Construction-time options for a BTree.
struct BTreeOptions {
  /// Fixed key width in bytes (use KeyCodec::key_size()).
  uint16_t key_size = 8;
  /// Leaf payload width; 8 = packed RID.
  uint16_t leaf_payload_size = 8;
  /// Cache item width for the in-page index cache; 0 disables the cache
  /// geometry on leaves. Item = 8-byte tuple id + cached field bytes.
  uint16_t cache_item_size = 0;
  /// Fraction of entries kept in the left page on a leaf split.
  double split_keep_fraction = 0.5;
};

/// \brief Shape/occupancy summary of a tree.
struct BTreeStats {
  uint32_t height = 0;  ///< 1 = root is a leaf
  uint64_t leaf_pages = 0;
  uint64_t internal_pages = 0;
  uint64_t entries = 0;
  /// Mean leaf fill factor: live (entry+dir) bytes over usable bytes. Random
  /// inserts settle near the canonical 68% (Yao), churn drives it lower.
  double avg_leaf_fill = 0;
  /// Total free bytes across leaves — the space the index cache recycles.
  uint64_t leaf_free_bytes = 0;
};

/// \brief Forward iterator over leaf entries in key order.
class BTreeIterator {
 public:
  BTreeIterator() = default;

  bool Valid() const { return valid_; }
  /// Key bytes at the current position.
  Slice key() const;
  /// Leaf value (RID) at the current position.
  uint64_t value() const;
  /// Advances; Valid() goes false past the last entry.
  Status Next();

 private:
  friend class BTree;
  BufferPool* bp_ = nullptr;
  PageGuard leaf_;
  size_t pos_ = 0;
  bool valid_ = false;

  Status SkipEmptyLeaves();
};

/// \brief The B+Tree. Create() makes a fresh (empty) tree; Open() re-attaches
/// to an existing one by meta page id.
class BTree {
 public:
  static Result<std::unique_ptr<BTree>> Create(BufferPool* bp,
                                               BTreeOptions options);
  static Result<std::unique_ptr<BTree>> Open(BufferPool* bp,
                                             PageId meta_page_id);

  /// \brief Inserts key -> value; AlreadyExists on duplicates.
  Status Insert(const Slice& key, uint64_t value);

  /// \brief Point lookup.
  Result<uint64_t> Get(const Slice& key);

  /// \brief Batched point lookups over keys sorted ascending (duplicates
  /// allowed). Pushes one Result per key onto `out`, in input order.
  ///
  /// Small batches (or a single-level tree) amortize the descent by
  /// sharing the pinned leaf across consecutive keys. Larger batches on a
  /// multi-level tree descend level-synchronously instead: each inner level
  /// is resolved for the whole batch at once and the next level's page set
  /// — ultimately the leaf set — is prefetched through the buffer pool's
  /// async path (BufferPool::StartFetchPages), so index misses overlap at
  /// the device instead of being paid one root-to-leaf walk at a time.
  /// Returns non-OK only on infrastructure failure (per-key NotFound lands
  /// in `out`).
  Status GetBatch(const std::vector<Slice>& sorted_keys,
                  std::vector<Result<uint64_t>>* out);

  /// \brief Overwrites the value of an existing key.
  Status SetValue(const Slice& key, uint64_t value);

  /// \brief Removes a key (lazy: pages never merge).
  Status Delete(const Slice& key);

  /// \brief Pinned leaf that would contain `key` (for index-cache access).
  Result<PageGuard> FindLeaf(const Slice& key);

  /// \brief Iterator at the first key >= `key`.
  Result<BTreeIterator> Seek(const Slice& key);
  /// \brief Iterator at the smallest key.
  Result<BTreeIterator> SeekToFirst();

  /// \brief Builds a fresh tree from sorted unique (key, value) pairs,
  /// packing each leaf to `fill_fraction` of capacity (the knob behind the
  /// paper's "68% full" index experiments). Tree must be empty.
  Status BulkLoad(const std::vector<std::pair<std::string, uint64_t>>& sorted,
                  double fill_fraction);

  /// \brief Walks the tree and reports shape/fill.
  Result<BTreeStats> ComputeStats();

  uint64_t num_entries() const { return num_entries_; }
  PageId meta_page_id() const { return meta_page_id_; }
  PageId root_page_id() const { return root_; }
  PageId first_leaf_id() const { return first_leaf_; }
  const BTreeOptions& options() const { return options_; }
  BufferPool* buffer_pool() { return bp_; }

  /// \brief Max entries per leaf page at this geometry.
  size_t LeafCapacity() const;

  /// \brief Index-wide cache sequence number CSNidx (§2.1.2). Relaxed load:
  /// CSNidx is a monotonic validity fence read concurrently with bumps; a
  /// stale read is indistinguishable from reading just before the bump, and
  /// the cache-page latching already orders the payload bytes it guards.
  uint64_t global_csn() const {
    return global_csn_.load(std::memory_order_relaxed);
  }
  /// \brief Bumps CSNidx — invalidates every page cache at once.
  Status BumpGlobalCsn();

  /// \brief Flushes the meta page (root/counters/CSNidx).
  Status WriteMeta();

 private:
  BTree(BufferPool* bp, BTreeOptions options)
      : bp_(bp), options_(options) {}

  struct SplitResult {
    bool happened = false;
    std::string sep_key;
    PageId right_id = kInvalidPageId;
  };

  /// Leaf-sharing batch path: walk keys left to right, reusing the pinned
  /// leaf (and its sibling chain when the batch is dense).
  Status GetBatchChained(const std::vector<Slice>& sorted_keys,
                         std::vector<Result<uint64_t>>* out);
  /// Level-synchronous batch path: resolve every key one level at a time,
  /// prefetching each next-level page set via the async fetch API.
  Status GetBatchDescent(const std::vector<Slice>& sorted_keys,
                         std::vector<Result<uint64_t>>* out);

  Status InsertRec(PageId node_id, const Slice& key, const Slice& payload,
                   SplitResult* split);
  Status SplitLeaf(BTreePageView* leaf, PageGuard* leaf_guard,
                   const Slice& key, const Slice& payload, SplitResult* split);
  Status SplitInternal(BTreePageView* node, const Slice& sep,
                       PageId right_child, SplitResult* split);
  Result<PageId> DescendToLeaf(const Slice& key);

  /// Single-page FetchPage with a bounded yield-retry on transient
  /// ResourceExhausted (a piggybacked load aborted under capacity pressure
  /// elsewhere): the pressure clears when the competing batch unwinds, so
  /// retrying here keeps retryable backpressure from leaking to callers of
  /// Get/GetBatch. Genuine capacity exhaustion still surfaces after the
  /// retry budget.
  Result<PageGuard> FetchPageRetry(PageId id);

  BufferPool* bp_;
  BTreeOptions options_;
  PageId meta_page_id_ = kInvalidPageId;
  PageId root_ = kInvalidPageId;
  PageId first_leaf_ = kInvalidPageId;
  uint64_t num_entries_ = 0;
  /// Atomic: readers poll it from cache probes while an invalidator bumps it
  /// (see global_csn() for the memory-ordering rationale).
  std::atomic<uint64_t> global_csn_{0};
};

}  // namespace nblb
