#include "catalog/value.h"

namespace nblb {

int Value::Compare(const Value& other) const {
  if (IsIntegerFamily(type_) && IsIntegerFamily(other.type_)) {
    if (int_ < other.int_) return -1;
    if (int_ > other.int_) return +1;
    return 0;
  }
  if (type_ == TypeId::kFloat64 && other.type_ == TypeId::kFloat64) {
    if (dbl_ < other.dbl_) return -1;
    if (dbl_ > other.dbl_) return +1;
    return 0;
  }
  if (IsStringFamily(type_) && IsStringFamily(other.type_)) {
    return str_.compare(other.str_) < 0   ? -1
           : str_.compare(other.str_) > 0 ? +1
                                          : 0;
  }
  NBLB_CHECK_MSG(false, "comparing incompatible value families");
  return 0;
}

std::string Value::ToString() const {
  switch (type_) {
    case TypeId::kBool:
      return int_ ? "true" : "false";
    case TypeId::kInt8:
    case TypeId::kInt16:
    case TypeId::kInt32:
    case TypeId::kInt64:
    case TypeId::kTimestamp:
      return std::to_string(int_);
    case TypeId::kFloat64:
      return std::to_string(dbl_);
    case TypeId::kChar:
    case TypeId::kVarchar:
      return str_;
  }
  return "?";
}

std::string RowToString(const Row& row) {
  std::string out = "[";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i) out += ", ";
    out += row[i].ToString();
  }
  out += "]";
  return out;
}

}  // namespace nblb
