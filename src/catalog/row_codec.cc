#include "catalog/row_codec.h"

#include <cstring>

#include "common/bytes.h"
#include "common/logging.h"

namespace nblb {

Status RowCodec::EncodeColumn(const Value& v, size_t col, char* dst) const {
  const Column& c = schema_->column(col);
  char* p = dst + schema_->offset(col);
  switch (c.type) {
    case TypeId::kBool:
    case TypeId::kInt8: {
      if (!IsIntegerFamily(v.type()))
        return Status::InvalidArgument("expected integer for " + c.name);
      *p = static_cast<char>(v.AsInt());
      return Status::OK();
    }
    case TypeId::kInt16: {
      if (!IsIntegerFamily(v.type()))
        return Status::InvalidArgument("expected integer for " + c.name);
      EncodeFixed16(p, static_cast<uint16_t>(v.AsInt()));
      return Status::OK();
    }
    case TypeId::kInt32: {
      if (!IsIntegerFamily(v.type()))
        return Status::InvalidArgument("expected integer for " + c.name);
      EncodeFixed32(p, static_cast<uint32_t>(v.AsInt()));
      return Status::OK();
    }
    case TypeId::kTimestamp: {
      if (!IsIntegerFamily(v.type()))
        return Status::InvalidArgument("expected integer for " + c.name);
      EncodeFixed32(p, static_cast<uint32_t>(v.AsInt()));
      return Status::OK();
    }
    case TypeId::kInt64: {
      if (!IsIntegerFamily(v.type()))
        return Status::InvalidArgument("expected integer for " + c.name);
      EncodeFixed64(p, static_cast<uint64_t>(v.AsInt()));
      return Status::OK();
    }
    case TypeId::kFloat64: {
      if (v.type() != TypeId::kFloat64)
        return Status::InvalidArgument("expected float64 for " + c.name);
      double d = v.AsDouble();
      std::memcpy(p, &d, 8);
      return Status::OK();
    }
    case TypeId::kChar: {
      if (!IsStringFamily(v.type()))
        return Status::InvalidArgument("expected string for " + c.name);
      const std::string& s = v.AsString();
      if (s.size() > c.length)
        return Status::InvalidArgument("string too long for " + c.name);
      std::memcpy(p, s.data(), s.size());
      std::memset(p + s.size(), ' ', c.length - s.size());
      return Status::OK();
    }
    case TypeId::kVarchar: {
      if (!IsStringFamily(v.type()))
        return Status::InvalidArgument("expected string for " + c.name);
      const std::string& s = v.AsString();
      if (s.size() > c.length)
        return Status::InvalidArgument("string too long for " + c.name);
      EncodeFixed16(p, static_cast<uint16_t>(s.size()));
      std::memcpy(p + 2, s.data(), s.size());
      std::memset(p + 2 + s.size(), 0, c.length - s.size());
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unknown type");
}

Status RowCodec::Encode(const Row& row, char* dst) const {
  if (row.size() != schema_->num_columns()) {
    return Status::InvalidArgument("row arity mismatch");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    NBLB_RETURN_NOT_OK(EncodeColumn(row[i], i, dst));
  }
  return Status::OK();
}

Result<std::string> RowCodec::Encode(const Row& row) const {
  std::string out(schema_->row_size(), '\0');
  NBLB_RETURN_NOT_OK(Encode(row, out.data()));
  return out;
}

Value RowCodec::DecodeColumn(const char* src, size_t col) const {
  const Column& c = schema_->column(col);
  const char* p = src + schema_->offset(col);
  switch (c.type) {
    case TypeId::kBool:
      return Value::Bool(*p != 0);
    case TypeId::kInt8:
      return Value::Int8(static_cast<int8_t>(*p));
    case TypeId::kInt16:
      return Value::Int16(static_cast<int16_t>(DecodeFixed16(p)));
    case TypeId::kInt32:
      return Value::Int32(static_cast<int32_t>(DecodeFixed32(p)));
    case TypeId::kTimestamp:
      return Value::Timestamp(DecodeFixed32(p));
    case TypeId::kInt64:
      return Value::Int64(static_cast<int64_t>(DecodeFixed64(p)));
    case TypeId::kFloat64: {
      double d;
      std::memcpy(&d, p, 8);
      return Value::Float64(d);
    }
    case TypeId::kChar: {
      size_t len = c.length;
      while (len > 0 && p[len - 1] == ' ') --len;
      return Value::Char(std::string(p, len));
    }
    case TypeId::kVarchar: {
      const uint16_t len = DecodeFixed16(p);
      NBLB_DCHECK(len <= c.length);
      return Value::Varchar(std::string(p + 2, len));
    }
  }
  NBLB_CHECK_MSG(false, "unknown type");
  return Value();
}

Row RowCodec::Decode(const char* src) const {
  Row row;
  row.reserve(schema_->num_columns());
  for (size_t i = 0; i < schema_->num_columns(); ++i) {
    row.push_back(DecodeColumn(src, i));
  }
  return row;
}

}  // namespace nblb
