// RowCodec: fixed-width serialization of rows.
//
// Layout: columns back to back at their schema offsets. Integers little
// endian; kChar space-padded to the declared length; kVarchar as a 2-byte
// length followed by the capacity bytes (tail zeroed). The codec also
// supports decoding a single column straight out of a raw buffer, which the
// index cache uses to materialize cached fields without copying whole rows.

#pragma once

#include <string>

#include "catalog/schema.h"
#include "catalog/value.h"
#include "common/result.h"
#include "common/slice.h"

namespace nblb {

/// \brief Encodes/decodes rows against a fixed schema.
class RowCodec {
 public:
  explicit RowCodec(const Schema* schema) : schema_(schema) {}

  /// \brief Serializes `row` into exactly schema->row_size() bytes at `dst`.
  /// Fails if the row arity or value families don't match, or a string
  /// exceeds its declared capacity.
  Status Encode(const Row& row, char* dst) const;

  /// \brief Serializes into a fresh string.
  Result<std::string> Encode(const Row& row) const;

  /// \brief Deserializes a full row from `src` (must hold row_size() bytes).
  Row Decode(const char* src) const;

  /// \brief Deserializes only column `col` from a serialized row.
  Value DecodeColumn(const char* src, size_t col) const;

  /// \brief Serializes a single value at the column's offset within `dst`
  /// (dst points at the start of the row buffer).
  Status EncodeColumn(const Value& v, size_t col, char* dst) const;

  const Schema* schema() const { return schema_; }

 private:
  const Schema* schema_;
};

}  // namespace nblb
