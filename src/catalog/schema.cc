#include "catalog/schema.h"

#include "common/logging.h"

namespace nblb {

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {
  offsets_.reserve(columns_.size());
  size_t off = 0;
  for (const auto& c : columns_) {
    offsets_.push_back(off);
    off += c.ByteSize();
  }
  row_size_ = off;
}

std::optional<size_t> Schema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return std::nullopt;
}

Schema Schema::Project(const std::vector<size_t>& column_indexes) const {
  std::vector<Column> cols;
  cols.reserve(column_indexes.size());
  for (size_t i : column_indexes) {
    NBLB_CHECK(i < columns_.size());
    cols.push_back(columns_[i]);
  }
  return Schema(std::move(cols));
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i) out += ", ";
    out += columns_[i].ToString();
  }
  out += ")";
  return out;
}

bool Schema::operator==(const Schema& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name != other.columns_[i].name ||
        columns_[i].type != other.columns_[i].type ||
        columns_[i].length != other.columns_[i].length) {
      return false;
    }
  }
  return true;
}

}  // namespace nblb
