// Physical type system.
//
// The paper (§2.1.1) simplifies to fixed-length keys and tuples; every type
// here has a fixed physical width, including VARCHAR which is stored as a
// fixed-capacity field (2-byte length prefix + capacity bytes). The encoding
// advisor (§4.1) treats these declared types as *hints* and infers narrower
// physical types from the data.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace nblb {

/// \brief Declared column type identifiers.
enum class TypeId : uint8_t {
  kBool = 0,      ///< 1 byte
  kInt8 = 1,      ///< 1 byte signed
  kInt16 = 2,     ///< 2 bytes signed
  kInt32 = 3,     ///< 4 bytes signed
  kInt64 = 4,     ///< 8 bytes signed
  kFloat64 = 5,   ///< 8 bytes IEEE-754
  kTimestamp = 6, ///< 4 bytes, seconds since Unix epoch (the paper's target
                  ///< encoding for Wikipedia's 14-byte string timestamps)
  kChar = 7,      ///< fixed `length` bytes, space padded
  kVarchar = 8,   ///< 2-byte length + fixed `length` capacity bytes
};

/// \brief Stable lowercase name ("int32", "varchar", ...).
std::string_view TypeIdToString(TypeId t);

/// \brief Fixed physical width in bytes of a value of type `t` with the given
/// declared length (length is only meaningful for kChar/kVarchar).
size_t TypeSize(TypeId t, size_t length);

/// \brief True for the integer family (bool/int8/16/32/64/timestamp).
bool IsIntegerFamily(TypeId t);

/// \brief True for kChar/kVarchar.
bool IsStringFamily(TypeId t);

/// \brief Human-readable declaration, e.g. "varchar(255)".
std::string TypeDeclToString(TypeId t, size_t length);

}  // namespace nblb
