// Value: a typed runtime value (one cell of a row).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/type.h"
#include "common/logging.h"

namespace nblb {

/// \brief A dynamically typed cell value.
///
/// Integer-family values (bool, int8..64, timestamp) share an int64 payload;
/// float64 and strings have their own payloads. Values compare within the
/// same family only.
class Value {
 public:
  /// Constructs an int64 value (also used for int8/16/32 after narrowing).
  Value() : type_(TypeId::kInt64), int_(0) {}

  static Value Bool(bool b) { return Value(TypeId::kBool, b ? 1 : 0); }
  static Value Int8(int8_t v) { return Value(TypeId::kInt8, v); }
  static Value Int16(int16_t v) { return Value(TypeId::kInt16, v); }
  static Value Int32(int32_t v) { return Value(TypeId::kInt32, v); }
  static Value Int64(int64_t v) { return Value(TypeId::kInt64, v); }
  static Value Float64(double v) {
    Value x(TypeId::kFloat64, 0);
    x.dbl_ = v;
    return x;
  }
  /// Seconds since Unix epoch.
  static Value Timestamp(uint32_t secs) {
    return Value(TypeId::kTimestamp, static_cast<int64_t>(secs));
  }
  static Value Char(std::string s) {
    Value x(TypeId::kChar, 0);
    x.str_ = std::move(s);
    return x;
  }
  static Value Varchar(std::string s) {
    Value x(TypeId::kVarchar, 0);
    x.str_ = std::move(s);
    return x;
  }

  TypeId type() const { return type_; }

  /// \brief Integer payload; valid for the integer family.
  int64_t AsInt() const {
    NBLB_DCHECK(IsIntegerFamily(type_));
    return int_;
  }
  bool AsBool() const { return AsInt() != 0; }
  double AsDouble() const {
    NBLB_DCHECK(type_ == TypeId::kFloat64);
    return dbl_;
  }
  const std::string& AsString() const {
    NBLB_DCHECK(IsStringFamily(type_));
    return str_;
  }

  /// \brief Three-way comparison; requires compatible families.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// \brief Display form ("true", "42", "3.5", "abc").
  std::string ToString() const;

 private:
  Value(TypeId t, int64_t i) : type_(t), int_(i) {}

  TypeId type_;
  int64_t int_ = 0;
  double dbl_ = 0;
  std::string str_;
};

/// \brief A row is an ordered list of cell values matching a Schema.
using Row = std::vector<Value>;

/// \brief "[v1, v2, ...]" display form of a row.
std::string RowToString(const Row& row);

}  // namespace nblb
