#include "catalog/catalog.h"

namespace nblb {

Result<TableId> Catalog::CreateTable(const std::string& name, Schema schema) {
  for (const auto& [id, info] : tables_) {
    if (info.name == name) {
      return Status::AlreadyExists("table exists: " + name);
    }
  }
  const TableId id = next_table_id_++;
  TableInfo info;
  info.id = id;
  info.name = name;
  info.schema = std::move(schema);
  tables_.emplace(id, std::move(info));
  return id;
}

Result<IndexId> Catalog::CreateIndex(const std::string& name, TableId table_id,
                                     std::vector<size_t> key_columns,
                                     std::vector<size_t> cached_columns) {
  auto table = GetTable(table_id);
  NBLB_RETURN_NOT_OK(table.status());
  for (const auto& [id, info] : indexes_) {
    if (info.name == name) {
      return Status::AlreadyExists("index exists: " + name);
    }
  }
  for (size_t c : key_columns) {
    if (c >= (*table)->schema.num_columns()) {
      return Status::InvalidArgument("key column out of range");
    }
  }
  for (size_t c : cached_columns) {
    if (c >= (*table)->schema.num_columns()) {
      return Status::InvalidArgument("cached column out of range");
    }
  }
  const IndexId id = next_index_id_++;
  IndexInfo info;
  info.id = id;
  info.name = name;
  info.table_id = table_id;
  info.key_columns = std::move(key_columns);
  info.cached_columns = std::move(cached_columns);
  indexes_.emplace(id, std::move(info));
  (*table)->indexes.push_back(id);
  return id;
}

Result<TableInfo*> Catalog::GetTable(TableId id) {
  auto it = tables_.find(id);
  if (it == tables_.end()) return Status::NotFound("no such table id");
  return &it->second;
}

Result<TableInfo*> Catalog::GetTableByName(const std::string& name) {
  for (auto& [id, info] : tables_) {
    if (info.name == name) return &info;
  }
  return Status::NotFound("no such table: " + name);
}

Result<IndexInfo*> Catalog::GetIndex(IndexId id) {
  auto it = indexes_.find(id);
  if (it == indexes_.end()) return Status::NotFound("no such index id");
  return &it->second;
}

Result<IndexInfo*> Catalog::GetIndexByName(const std::string& name) {
  for (auto& [id, info] : indexes_) {
    if (info.name == name) return &info;
  }
  return Status::NotFound("no such index: " + name);
}

}  // namespace nblb
