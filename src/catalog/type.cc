#include "catalog/type.h"

#include "common/logging.h"

namespace nblb {

std::string_view TypeIdToString(TypeId t) {
  switch (t) {
    case TypeId::kBool:
      return "bool";
    case TypeId::kInt8:
      return "int8";
    case TypeId::kInt16:
      return "int16";
    case TypeId::kInt32:
      return "int32";
    case TypeId::kInt64:
      return "int64";
    case TypeId::kFloat64:
      return "float64";
    case TypeId::kTimestamp:
      return "timestamp";
    case TypeId::kChar:
      return "char";
    case TypeId::kVarchar:
      return "varchar";
  }
  return "unknown";
}

size_t TypeSize(TypeId t, size_t length) {
  switch (t) {
    case TypeId::kBool:
    case TypeId::kInt8:
      return 1;
    case TypeId::kInt16:
      return 2;
    case TypeId::kInt32:
      return 4;
    case TypeId::kInt64:
    case TypeId::kFloat64:
      return 8;
    case TypeId::kTimestamp:
      return 4;
    case TypeId::kChar:
      NBLB_CHECK(length > 0);
      return length;
    case TypeId::kVarchar:
      NBLB_CHECK(length > 0);
      return 2 + length;
  }
  NBLB_CHECK_MSG(false, "unreachable");
  return 0;
}

bool IsIntegerFamily(TypeId t) {
  switch (t) {
    case TypeId::kBool:
    case TypeId::kInt8:
    case TypeId::kInt16:
    case TypeId::kInt32:
    case TypeId::kInt64:
    case TypeId::kTimestamp:
      return true;
    default:
      return false;
  }
}

bool IsStringFamily(TypeId t) {
  return t == TypeId::kChar || t == TypeId::kVarchar;
}

std::string TypeDeclToString(TypeId t, size_t length) {
  std::string out(TypeIdToString(t));
  if (IsStringFamily(t)) {
    out += "(" + std::to_string(length) + ")";
  }
  return out;
}

}  // namespace nblb
