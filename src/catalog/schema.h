// Schema: an ordered list of typed columns with precomputed fixed offsets.

#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "catalog/type.h"

namespace nblb {

/// \brief A column declaration: name, declared type, and (for strings) the
/// declared capacity in bytes.
struct Column {
  std::string name;
  TypeId type;
  size_t length = 0;  ///< capacity for kChar/kVarchar; ignored otherwise

  /// \brief Physical width in bytes of this column in a serialized row.
  size_t ByteSize() const { return TypeSize(type, length); }

  /// \brief "name type" or "name type(length)".
  std::string ToString() const {
    return name + " " + TypeDeclToString(type, length);
  }
};

/// \brief A fixed-width row schema; offsets of all columns are precomputed.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// \brief Byte offset of column i within a serialized row.
  size_t offset(size_t i) const { return offsets_[i]; }

  /// \brief Total fixed row width in bytes.
  size_t row_size() const { return row_size_; }

  /// \brief Index of the column with the given name, if present.
  std::optional<size_t> FindColumn(const std::string& name) const;

  /// \brief New schema containing only the given columns (in that order).
  Schema Project(const std::vector<size_t>& column_indexes) const;

  /// \brief "(c1 t1, c2 t2, ...)".
  std::string ToString() const;

  bool operator==(const Schema& other) const;

 private:
  std::vector<Column> columns_;
  std::vector<size_t> offsets_;
  size_t row_size_ = 0;
};

}  // namespace nblb
