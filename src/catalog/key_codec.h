// KeyCodec: memcmp-comparable fixed-width encoding of (composite) keys.
//
// The B+Tree stores raw byte keys and orders them with memcmp; this codec
// guarantees byte order == value order:
//   - signed integers: sign-bit flip then big endian
//   - timestamps/bools: big endian unsigned
//   - float64: IEEE total-order trick (flip sign bit for positives, all bits
//     for negatives)
//   - strings: zero-padded to the declared capacity
//
// The composite (namespace, title) key of Wikipedia's name_title index
// (§2.1.4) is the motivating example.

#pragma once

#include <string>
#include <vector>

#include "catalog/schema.h"
#include "catalog/value.h"
#include "common/result.h"
#include "common/slice.h"

namespace nblb {

/// \brief Encodes key columns of a schema into fixed-width comparable bytes.
class KeyCodec {
 public:
  /// \param schema       the table schema
  /// \param key_columns  indexes (into the schema) of the key columns, in
  ///                     significance order
  KeyCodec(const Schema* schema, std::vector<size_t> key_columns);

  /// \brief Total fixed key width in bytes.
  size_t key_size() const { return key_size_; }

  const std::vector<size_t>& key_columns() const { return key_columns_; }

  /// \brief Encodes the key columns of a full row.
  Result<std::string> EncodeFromRow(const Row& row) const;

  /// \brief Encodes explicit key values (arity must match key_columns).
  Result<std::string> EncodeValues(const std::vector<Value>& key_values) const;

  /// \brief Decodes a key back into its column values.
  std::vector<Value> Decode(const Slice& key) const;

 private:
  Status EncodeOne(const Value& v, const Column& c, char* dst) const;
  Value DecodeOne(const char* src, const Column& c) const;

  const Schema* schema_;
  std::vector<size_t> key_columns_;
  std::vector<size_t> key_offsets_;  // offset of each key column in the key
  size_t key_size_;
};

}  // namespace nblb
