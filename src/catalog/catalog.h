// Catalog: in-memory registry of tables and indexes.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/result.h"

namespace nblb {

using TableId = uint32_t;
using IndexId = uint32_t;

/// \brief Metadata for a registered table.
struct TableInfo {
  TableId id = 0;
  std::string name;
  Schema schema;
  std::vector<IndexId> indexes;
};

/// \brief Metadata for a registered index.
struct IndexInfo {
  IndexId id = 0;
  std::string name;
  TableId table_id = 0;
  std::vector<size_t> key_columns;    ///< schema column indexes forming the key
  std::vector<size_t> cached_columns; ///< columns replicated into the index cache
};

/// \brief Name/id registry for tables and indexes. Not thread safe; callers
/// serialize DDL.
class Catalog {
 public:
  Catalog() = default;

  /// \brief Registers a table; fails with AlreadyExists on duplicate name.
  Result<TableId> CreateTable(const std::string& name, Schema schema);

  /// \brief Registers an index on an existing table.
  Result<IndexId> CreateIndex(const std::string& name, TableId table_id,
                              std::vector<size_t> key_columns,
                              std::vector<size_t> cached_columns);

  Result<TableInfo*> GetTable(TableId id);
  Result<TableInfo*> GetTableByName(const std::string& name);
  Result<IndexInfo*> GetIndex(IndexId id);
  Result<IndexInfo*> GetIndexByName(const std::string& name);

  const std::map<TableId, TableInfo>& tables() const { return tables_; }
  const std::map<IndexId, IndexInfo>& indexes() const { return indexes_; }

 private:
  std::map<TableId, TableInfo> tables_;
  std::map<IndexId, IndexInfo> indexes_;
  TableId next_table_id_ = 1;
  IndexId next_index_id_ = 1;
};

}  // namespace nblb
