#include "catalog/key_codec.h"

#include <cstring>

#include "common/bytes.h"
#include "common/logging.h"

namespace nblb {

namespace {

// Order-preserving transform of an IEEE-754 double: positives get the sign
// bit flipped, negatives get all bits flipped; the result sorts like the
// original under unsigned comparison.
uint64_t EncodeDoubleOrdered(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, 8);
  if (bits >> 63) return ~bits;
  return bits | (1ull << 63);
}

double DecodeDoubleOrdered(uint64_t bits) {
  if (bits >> 63) {
    bits &= ~(1ull << 63);
  } else {
    bits = ~bits;
  }
  double d;
  std::memcpy(&d, &bits, 8);
  return d;
}

// Width of a key column in the encoded key. Strings occupy their capacity
// (no length prefix: zero padding keeps prefix order).
size_t KeyFieldSize(const Column& c) {
  switch (c.type) {
    case TypeId::kBool:
    case TypeId::kInt8:
      return 1;
    case TypeId::kInt16:
      return 2;
    case TypeId::kInt32:
    case TypeId::kTimestamp:
      return 4;
    case TypeId::kInt64:
    case TypeId::kFloat64:
      return 8;
    case TypeId::kChar:
    case TypeId::kVarchar:
      return c.length;
  }
  NBLB_CHECK_MSG(false, "unknown type");
  return 0;
}

}  // namespace

KeyCodec::KeyCodec(const Schema* schema, std::vector<size_t> key_columns)
    : schema_(schema), key_columns_(std::move(key_columns)) {
  size_t off = 0;
  key_offsets_.reserve(key_columns_.size());
  for (size_t col : key_columns_) {
    NBLB_CHECK(col < schema_->num_columns());
    key_offsets_.push_back(off);
    off += KeyFieldSize(schema_->column(col));
  }
  key_size_ = off;
}

Status KeyCodec::EncodeOne(const Value& v, const Column& c, char* dst) const {
  switch (c.type) {
    case TypeId::kBool:
    case TypeId::kInt8: {
      if (!IsIntegerFamily(v.type()))
        return Status::InvalidArgument("key type mismatch on " + c.name);
      // Sign-flip in one byte.
      dst[0] = static_cast<char>(static_cast<unsigned char>(v.AsInt()) ^ 0x80);
      return Status::OK();
    }
    case TypeId::kInt16: {
      if (!IsIntegerFamily(v.type()))
        return Status::InvalidArgument("key type mismatch on " + c.name);
      uint16_t u = static_cast<uint16_t>(v.AsInt()) ^ 0x8000;
      dst[0] = static_cast<char>(u >> 8);
      dst[1] = static_cast<char>(u & 0xff);
      return Status::OK();
    }
    case TypeId::kInt32: {
      if (!IsIntegerFamily(v.type()))
        return Status::InvalidArgument("key type mismatch on " + c.name);
      EncodeBigEndian32(dst, static_cast<uint32_t>(v.AsInt()) ^ 0x80000000u);
      return Status::OK();
    }
    case TypeId::kTimestamp: {
      if (!IsIntegerFamily(v.type()))
        return Status::InvalidArgument("key type mismatch on " + c.name);
      EncodeBigEndian32(dst, static_cast<uint32_t>(v.AsInt()));
      return Status::OK();
    }
    case TypeId::kInt64: {
      if (!IsIntegerFamily(v.type()))
        return Status::InvalidArgument("key type mismatch on " + c.name);
      EncodeBigEndian64(dst, SignFlip64(v.AsInt()));
      return Status::OK();
    }
    case TypeId::kFloat64: {
      if (v.type() != TypeId::kFloat64)
        return Status::InvalidArgument("key type mismatch on " + c.name);
      EncodeBigEndian64(dst, EncodeDoubleOrdered(v.AsDouble()));
      return Status::OK();
    }
    case TypeId::kChar:
    case TypeId::kVarchar: {
      if (!IsStringFamily(v.type()))
        return Status::InvalidArgument("key type mismatch on " + c.name);
      const std::string& s = v.AsString();
      if (s.size() > c.length)
        return Status::InvalidArgument("key string too long on " + c.name);
      std::memcpy(dst, s.data(), s.size());
      std::memset(dst + s.size(), 0, c.length - s.size());
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unknown key type");
}

Value KeyCodec::DecodeOne(const char* src, const Column& c) const {
  switch (c.type) {
    case TypeId::kBool:
      return Value::Bool((static_cast<unsigned char>(src[0]) ^ 0x80) != 0);
    case TypeId::kInt8:
      return Value::Int8(
          static_cast<int8_t>(static_cast<unsigned char>(src[0]) ^ 0x80));
    case TypeId::kInt16: {
      uint16_t u = (static_cast<uint16_t>(static_cast<unsigned char>(src[0]))
                    << 8) |
                   static_cast<unsigned char>(src[1]);
      return Value::Int16(static_cast<int16_t>(u ^ 0x8000));
    }
    case TypeId::kInt32:
      return Value::Int32(
          static_cast<int32_t>(DecodeBigEndian32(src) ^ 0x80000000u));
    case TypeId::kTimestamp:
      return Value::Timestamp(DecodeBigEndian32(src));
    case TypeId::kInt64:
      return Value::Int64(SignUnflip64(DecodeBigEndian64(src)));
    case TypeId::kFloat64:
      return Value::Float64(DecodeDoubleOrdered(DecodeBigEndian64(src)));
    case TypeId::kChar:
    case TypeId::kVarchar: {
      size_t len = c.length;
      while (len > 0 && src[len - 1] == '\0') --len;
      std::string s(src, len);
      return c.type == TypeId::kChar ? Value::Char(std::move(s))
                                     : Value::Varchar(std::move(s));
    }
  }
  NBLB_CHECK_MSG(false, "unknown type");
  return Value();
}

Result<std::string> KeyCodec::EncodeFromRow(const Row& row) const {
  if (row.size() != schema_->num_columns()) {
    return Status::InvalidArgument("row arity mismatch");
  }
  std::string out(key_size_, '\0');
  for (size_t i = 0; i < key_columns_.size(); ++i) {
    NBLB_RETURN_NOT_OK(EncodeOne(row[key_columns_[i]],
                                 schema_->column(key_columns_[i]),
                                 out.data() + key_offsets_[i]));
  }
  return out;
}

Result<std::string> KeyCodec::EncodeValues(
    const std::vector<Value>& key_values) const {
  if (key_values.size() != key_columns_.size()) {
    return Status::InvalidArgument("key arity mismatch");
  }
  std::string out(key_size_, '\0');
  for (size_t i = 0; i < key_columns_.size(); ++i) {
    NBLB_RETURN_NOT_OK(EncodeOne(key_values[i],
                                 schema_->column(key_columns_[i]),
                                 out.data() + key_offsets_[i]));
  }
  return out;
}

std::vector<Value> KeyCodec::Decode(const Slice& key) const {
  NBLB_CHECK(key.size() == key_size_);
  std::vector<Value> out;
  out.reserve(key_columns_.size());
  for (size_t i = 0; i < key_columns_.size(); ++i) {
    out.push_back(
        DecodeOne(key.data() + key_offsets_[i], schema_->column(key_columns_[i])));
  }
  return out;
}

}  // namespace nblb
