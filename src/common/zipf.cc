#include "common/zipf.h"

#include <cmath>

#include "common/logging.h"

namespace nblb {

namespace {

double Zeta(uint64_t n, double alpha) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), alpha);
  return sum;
}

// FNV-1a based 64-bit mix used to scramble ranks into item ids.
uint64_t Fnv1aMix(uint64_t v) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (int i = 0; i < 8; ++i) {
    h ^= v & 0xff;
    h *= 0x100000001b3ull;
    v >>= 8;
  }
  return h;
}

}  // namespace

ZipfianGenerator::ZipfianGenerator(uint64_t n, double alpha, uint64_t seed)
    : n_(n), alpha_(alpha), theta_(alpha), rng_(seed) {
  NBLB_CHECK(n > 0);
  NBLB_CHECK(alpha > 0 && alpha < 1);
  zetan_ = Zeta(n_, theta_);
  zeta2_ = Zeta(2, theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2_ / zetan_);
}

uint64_t ZipfianGenerator::Next() {
  // Gray et al., "Quickly Generating Billion-Record Synthetic Databases".
  const double u = rng_.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const double x = static_cast<double>(n_) *
                   std::pow(eta_ * u - eta_ + 1.0, 1.0 / (1.0 - theta_));
  uint64_t rank = static_cast<uint64_t>(x);
  if (rank >= n_) rank = n_ - 1;
  return rank;
}

double ZipfianGenerator::ProbabilityOfRank(uint64_t i) const {
  NBLB_DCHECK(i < n_);
  return 1.0 / (std::pow(static_cast<double>(i + 1), alpha_) * zetan_);
}

uint64_t ZipfianGenerator::RanksCoveringMass(double mass) const {
  double acc = 0;
  for (uint64_t i = 0; i < n_; ++i) {
    acc += ProbabilityOfRank(i);
    if (acc >= mass) return i + 1;
  }
  return n_;
}

ScrambledZipfianGenerator::ScrambledZipfianGenerator(uint64_t n, double alpha,
                                                     uint64_t seed)
    : zipf_(n, alpha, seed) {}

uint64_t ScrambledZipfianGenerator::Next() { return ItemForRank(zipf_.Next()); }

uint64_t ScrambledZipfianGenerator::ItemForRank(uint64_t rank) const {
  return Fnv1aMix(rank) % zipf_.n();
}

HotspotGenerator::HotspotGenerator(uint64_t n, double hot_fraction,
                                   double hot_prob, uint64_t seed)
    : n_(n), hot_prob_(hot_prob), rng_(seed) {
  NBLB_CHECK(n > 0);
  NBLB_CHECK(hot_fraction > 0 && hot_fraction <= 1);
  NBLB_CHECK(hot_prob >= 0 && hot_prob <= 1);
  hot_count_ = static_cast<uint64_t>(hot_fraction * static_cast<double>(n));
  if (hot_count_ == 0) hot_count_ = 1;
}

uint64_t HotspotGenerator::Next() {
  if (rng_.Bernoulli(hot_prob_) || hot_count_ == n_) {
    return rng_.Uniform(hot_count_);
  }
  return hot_count_ + rng_.Uniform(n_ - hot_count_);
}

}  // namespace nblb
