// Status: lightweight error propagation without exceptions, in the style of
// Arrow/RocksDB. A Status is either OK (the common, allocation-free case) or
// carries a code plus a human-readable message.

#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace nblb {

/// \brief Error category carried by a non-OK Status.
enum class StatusCode : unsigned char {
  kOk = 0,
  kNotFound = 1,
  kInvalidArgument = 2,
  kIOError = 3,
  kCorruption = 4,
  kNotSupported = 5,
  kOutOfRange = 6,
  kBusy = 7,          ///< A try-latch or non-blocking resource was unavailable.
  kAborted = 8,       ///< Operation gave up on purpose (e.g. cache write skipped).
  kAlreadyExists = 9,
  kResourceExhausted = 10,  ///< Out of pages/frames/slots.
};

/// \brief Returns a stable lowercase name for a status code ("ok", "not found", ...).
std::string_view StatusCodeToString(StatusCode code);

/// \brief Result of an operation: OK or an error code with a message.
///
/// The OK state is represented by a null internal pointer so that returning
/// Status::OK() never allocates. Non-OK states allocate a small heap record.
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  Status(StatusCode code, std::string msg)
      : rep_(code == StatusCode::kOk ? nullptr : new Rep{code, std::move(msg)}) {}

  Status(const Status& other)
      : rep_(other.rep_ ? new Rep(*other.rep_) : nullptr) {}
  Status& operator=(const Status& other) {
    if (this != &other) rep_.reset(other.rep_ ? new Rep(*other.rep_) : nullptr);
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// \brief The singleton-like OK status (allocation free).
  static Status OK() { return Status(); }

  static Status NotFound(std::string msg = "not found") {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Busy(std::string msg = "resource busy") {
    return Status(StatusCode::kBusy, std::move(msg));
  }
  static Status Aborted(std::string msg = "aborted") {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status AlreadyExists(std::string msg = "already exists") {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsNotSupported() const { return code() == StatusCode::kNotSupported; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsBusy() const { return code() == StatusCode::kBusy; }
  bool IsAborted() const { return code() == StatusCode::kAborted; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }

  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }

  /// \brief The error message; empty for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->msg : kEmpty;
  }

  /// \brief "ok" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string msg;
  };
  std::unique_ptr<Rep> rep_;
};

}  // namespace nblb

/// Propagates a non-OK Status to the caller.
#define NBLB_RETURN_NOT_OK(expr)                 \
  do {                                           \
    ::nblb::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                   \
  } while (0)

#define NBLB_CONCAT_IMPL(a, b) a##b
#define NBLB_CONCAT(a, b) NBLB_CONCAT_IMPL(a, b)

/// Evaluates an expression yielding Result<T>; on error returns the Status,
/// otherwise assigns the value to `lhs` (which may include a declaration).
#define NBLB_ASSIGN_OR_RETURN(lhs, rexpr)                       \
  auto NBLB_CONCAT(_res_, __LINE__) = (rexpr);                  \
  if (!NBLB_CONCAT(_res_, __LINE__).ok())                       \
    return NBLB_CONCAT(_res_, __LINE__).status();               \
  lhs = std::move(NBLB_CONCAT(_res_, __LINE__)).ValueOrDie()
