// Short-term latches for page-level synchronization.
//
// §2.1.3 of the paper: cache writes "acquire short term latches for the
// duration of the cache writes" and "we can give up a write operation if the
// latch is not immediately available". TryLatchGuard implements exactly that
// give-up discipline.

#pragma once

#include <atomic>
#include <cstdint>

namespace nblb {

/// \brief A tiny test-and-set spin latch. Not recursive, not fair — intended
/// for critical sections of a few hundred nanoseconds (in-page cache writes).
class SpinLatch {
 public:
  SpinLatch() = default;
  SpinLatch(const SpinLatch&) = delete;
  SpinLatch& operator=(const SpinLatch&) = delete;

  void Lock() {
    while (flag_.test_and_set(std::memory_order_acquire)) {
      // Spin. Sections are short by construction.
    }
  }

  /// \brief Attempts to acquire without blocking. Returns true on success.
  bool TryLock() { return !flag_.test_and_set(std::memory_order_acquire); }

  void Unlock() { flag_.clear(std::memory_order_release); }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

/// \brief RAII blocking guard.
class LatchGuard {
 public:
  explicit LatchGuard(SpinLatch& latch) : latch_(latch) { latch_.Lock(); }
  ~LatchGuard() { latch_.Unlock(); }
  LatchGuard(const LatchGuard&) = delete;
  LatchGuard& operator=(const LatchGuard&) = delete;

 private:
  SpinLatch& latch_;
};

/// \brief A reader/writer spin latch: any number of concurrent shared
/// holders, or one exclusive holder.
///
/// State is a single word: kWriter when held exclusively, otherwise the
/// count of shared holders. Writers are not prioritized — with the short,
/// read-mostly critical sections this is built for (shard routing state,
/// stats snapshots), writer starvation is not a practical concern, and the
/// single-word design keeps the uncontended path to one CAS.
class SharedLatch {
 public:
  SharedLatch() = default;
  SharedLatch(const SharedLatch&) = delete;
  SharedLatch& operator=(const SharedLatch&) = delete;

  void LockShared() {
    uint32_t cur = state_.load(std::memory_order_relaxed);
    for (;;) {
      if (cur == kWriter) {
        cur = state_.load(std::memory_order_relaxed);
        continue;  // spin until the writer releases
      }
      if (state_.compare_exchange_weak(cur, cur + 1,
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
        return;
      }
    }
  }

  bool TryLockShared() {
    uint32_t cur = state_.load(std::memory_order_relaxed);
    while (cur != kWriter) {
      if (state_.compare_exchange_weak(cur, cur + 1,
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

  void UnlockShared() { state_.fetch_sub(1, std::memory_order_release); }

  void Lock() {
    for (;;) {
      uint32_t expected = 0;
      if (state_.compare_exchange_weak(expected, kWriter,
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
        return;
      }
    }
  }

  bool TryLock() {
    uint32_t expected = 0;
    return state_.compare_exchange_strong(expected, kWriter,
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed);
  }

  void Unlock() { state_.store(0, std::memory_order_release); }

 private:
  static constexpr uint32_t kWriter = ~0u;
  std::atomic<uint32_t> state_{0};
};

/// \brief RAII shared-mode guard for SharedLatch.
class SharedLatchGuard {
 public:
  explicit SharedLatchGuard(SharedLatch& latch) : latch_(latch) {
    latch_.LockShared();
  }
  ~SharedLatchGuard() { latch_.UnlockShared(); }
  SharedLatchGuard(const SharedLatchGuard&) = delete;
  SharedLatchGuard& operator=(const SharedLatchGuard&) = delete;

 private:
  SharedLatch& latch_;
};

/// \brief RAII exclusive-mode guard for SharedLatch.
class ExclusiveLatchGuard {
 public:
  explicit ExclusiveLatchGuard(SharedLatch& latch) : latch_(latch) {
    latch_.Lock();
  }
  ~ExclusiveLatchGuard() { latch_.Unlock(); }
  ExclusiveLatchGuard(const ExclusiveLatchGuard&) = delete;
  ExclusiveLatchGuard& operator=(const ExclusiveLatchGuard&) = delete;

 private:
  SharedLatch& latch_;
};

/// \brief RAII try-guard: holds the latch only if it was immediately free.
///
/// Callers check acquired() and skip the protected work otherwise — the
/// paper's "give up a write operation if the latch is not immediately
/// available".
class TryLatchGuard {
 public:
  explicit TryLatchGuard(SpinLatch& latch)
      : latch_(latch), acquired_(latch.TryLock()) {}
  ~TryLatchGuard() {
    if (acquired_) latch_.Unlock();
  }
  TryLatchGuard(const TryLatchGuard&) = delete;
  TryLatchGuard& operator=(const TryLatchGuard&) = delete;

  bool acquired() const { return acquired_; }

 private:
  SpinLatch& latch_;
  bool acquired_;
};

}  // namespace nblb
