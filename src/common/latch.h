// Short-term latches for page-level synchronization.
//
// §2.1.3 of the paper: cache writes "acquire short term latches for the
// duration of the cache writes" and "we can give up a write operation if the
// latch is not immediately available". TryLatchGuard implements exactly that
// give-up discipline.

#pragma once

#include <atomic>

namespace nblb {

/// \brief A tiny test-and-set spin latch. Not recursive, not fair — intended
/// for critical sections of a few hundred nanoseconds (in-page cache writes).
class SpinLatch {
 public:
  SpinLatch() = default;
  SpinLatch(const SpinLatch&) = delete;
  SpinLatch& operator=(const SpinLatch&) = delete;

  void Lock() {
    while (flag_.test_and_set(std::memory_order_acquire)) {
      // Spin. Sections are short by construction.
    }
  }

  /// \brief Attempts to acquire without blocking. Returns true on success.
  bool TryLock() { return !flag_.test_and_set(std::memory_order_acquire); }

  void Unlock() { flag_.clear(std::memory_order_release); }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

/// \brief RAII blocking guard.
class LatchGuard {
 public:
  explicit LatchGuard(SpinLatch& latch) : latch_(latch) { latch_.Lock(); }
  ~LatchGuard() { latch_.Unlock(); }
  LatchGuard(const LatchGuard&) = delete;
  LatchGuard& operator=(const LatchGuard&) = delete;

 private:
  SpinLatch& latch_;
};

/// \brief RAII try-guard: holds the latch only if it was immediately free.
///
/// Callers check acquired() and skip the protected work otherwise — the
/// paper's "give up a write operation if the latch is not immediately
/// available".
class TryLatchGuard {
 public:
  explicit TryLatchGuard(SpinLatch& latch)
      : latch_(latch), acquired_(latch.TryLock()) {}
  ~TryLatchGuard() {
    if (acquired_) latch_.Unlock();
  }
  TryLatchGuard(const TryLatchGuard&) = delete;
  TryLatchGuard& operator=(const TryLatchGuard&) = delete;

  bool acquired() const { return acquired_; }

 private:
  SpinLatch& latch_;
  bool acquired_;
};

}  // namespace nblb
