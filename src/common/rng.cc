#include "common/rng.h"

#include <string>

#include "common/logging.h"

namespace nblb {

namespace {

// splitmix64, used to expand the single seed into the xoshiro state.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
  // Avoid the all-zero state (cannot occur from splitmix64 in practice, but
  // cheap to guard).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t n) {
  NBLB_DCHECK(n > 0);
  // Rejection sampling to remove modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  NBLB_DCHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return NextDouble() < p;
}

std::string Rng::NextString(size_t n) {
  std::string out(n, 'a');
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<char>('a' + Uniform(26));
  }
  return out;
}

}  // namespace nblb
