#include "common/crc32.h"

#include <cstring>

namespace nblb {

namespace {

// Slicing-by-8 tables for the IEEE polynomial. t[0] is the classic bytewise
// table; t[1..7] extend it so the hot loop folds 8 input bytes per
// iteration instead of 1 (~8x on long buffers — WAL frames and page
// checksums — while producing bit-identical CRCs to the bytewise loop).
struct Crc32Tables {
  uint32_t t[8][256];
  Crc32Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = t[0][i];
      for (int j = 1; j < 8; ++j) {
        c = t[0][c & 0xff] ^ (c >> 8);
        t[j][i] = c;
      }
    }
  }
};

const Crc32Tables kTables;

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xffffffffu;
  // Fold 8 bytes per iteration. Unaligned 4-byte loads are fine on every
  // target we build for; memcpy keeps it strict-aliasing clean and
  // compiles to plain loads.
  while (n >= 8) {
    uint32_t lo, hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    c ^= lo;
    c = kTables.t[7][c & 0xff] ^ kTables.t[6][(c >> 8) & 0xff] ^
        kTables.t[5][(c >> 16) & 0xff] ^ kTables.t[4][c >> 24] ^
        kTables.t[3][hi & 0xff] ^ kTables.t[2][(hi >> 8) & 0xff] ^
        kTables.t[1][(hi >> 16) & 0xff] ^ kTables.t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  for (size_t i = 0; i < n; ++i) {
    c = kTables.t[0][(c ^ p[i]) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace nblb
