// Virtual clock for deterministic I/O cost accounting.
//
// The paper's micro-benchmarks mix memory-speed operations (measured in real
// time) with disk operations that are orders of magnitude slower. To keep the
// benchmarks deterministic and CI-friendly we charge disk operations to a
// virtual clock via a LatencyModel instead of sleeping; figures report
// real + virtual time. DESIGN.md §4 documents this substitution.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace nblb {

/// \brief Monotonic virtual time accumulator (nanoseconds).
class VirtualClock {
 public:
  /// \brief Adds `ns` nanoseconds of simulated latency.
  void Advance(uint64_t ns) {
    ns_.fetch_add(ns, std::memory_order_relaxed);
  }

  /// \brief Total simulated nanoseconds since construction/reset.
  uint64_t NowNs() const { return ns_.load(std::memory_order_relaxed); }

  void Reset() { ns_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> ns_{0};
};

/// \brief Wall-clock stopwatch combined with a virtual clock delta.
///
/// Usage:
/// \code
///   CombinedTimer t(&vclock);
///   ... work that advances vclock on simulated I/O ...
///   uint64_t total_ns = t.ElapsedNs();  // real + simulated
/// \endcode
class CombinedTimer {
 public:
  explicit CombinedTimer(const VirtualClock* vclock = nullptr)
      : vclock_(vclock),
        start_real_(std::chrono::steady_clock::now()),
        start_virtual_(vclock ? vclock->NowNs() : 0) {}

  /// \brief Elapsed real nanoseconds only.
  uint64_t ElapsedRealNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_real_)
            .count());
  }

  /// \brief Elapsed virtual nanoseconds only.
  uint64_t ElapsedVirtualNs() const {
    return vclock_ ? vclock_->NowNs() - start_virtual_ : 0;
  }

  /// \brief Real + virtual elapsed nanoseconds.
  uint64_t ElapsedNs() const { return ElapsedRealNs() + ElapsedVirtualNs(); }

 private:
  const VirtualClock* vclock_;
  std::chrono::steady_clock::time_point start_real_;
  uint64_t start_virtual_;
};

}  // namespace nblb
