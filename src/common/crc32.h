// CRC-32 (IEEE polynomial) used for page checksums.

#pragma once

#include <cstddef>
#include <cstdint>

namespace nblb {

/// \brief CRC-32 of `n` bytes at `data`, optionally chained from a previous
/// crc (pass the prior return value to extend).
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

}  // namespace nblb
