// Zipfian and related skewed distributions.
//
// Figure 2(a) of the paper uses "a zipfian distribution similar to Wikipedia
// (alpha = .5)". We implement the Gray et al. / YCSB constant-time sampler,
// which supports any alpha in (0, 1) after an O(n) zeta precomputation, plus a
// scrambled variant (so that popular items are spread over the key space) and
// a hotspot distribution used by partitioning experiments.

#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace nblb {

/// \brief Samples ranks in [0, n) with P(rank i) proportional to 1/(i+1)^alpha.
///
/// Rank 0 is the most popular item. Deterministic given the Rng seed.
class ZipfianGenerator {
 public:
  /// \param n     number of items (> 0)
  /// \param alpha skew parameter in (0, 1); the paper uses 0.5
  /// \param seed  RNG seed
  ZipfianGenerator(uint64_t n, double alpha, uint64_t seed = 42);

  /// \brief Next sampled rank in [0, n).
  uint64_t Next();

  uint64_t n() const { return n_; }
  double alpha() const { return alpha_; }

  /// \brief Exact probability of rank i under this distribution.
  double ProbabilityOfRank(uint64_t i) const;

  /// \brief Smallest k such that ranks [0, k) cover `mass` of the probability.
  uint64_t RanksCoveringMass(double mass) const;

 private:
  uint64_t n_;
  double alpha_;
  double zetan_;    // zeta(n, alpha)
  double eta_;
  double theta_;
  double zeta2_;    // zeta(2, alpha)
  Rng rng_;
};

/// \brief ZipfianGenerator composed with a stateless hash so hot items are
/// scattered uniformly over [0, n) — models hot tuples "distributed
/// throughout the table" (§3.1).
class ScrambledZipfianGenerator {
 public:
  ScrambledZipfianGenerator(uint64_t n, double alpha, uint64_t seed = 42);

  /// \brief Next sampled item id in [0, n).
  uint64_t Next();

  /// \brief The item id a given popularity rank maps to.
  uint64_t ItemForRank(uint64_t rank) const;

  uint64_t n() const { return zipf_.n(); }

 private:
  ZipfianGenerator zipf_;
};

/// \brief With probability `hot_prob` draws uniformly from the hot set
/// (fraction `hot_fraction` of items), otherwise uniformly from the rest.
///
/// Models the paper's revision-table access pattern: "99.9% of page requests
/// access the 5% of the tuples that represent the most recent revisions".
class HotspotGenerator {
 public:
  HotspotGenerator(uint64_t n, double hot_fraction, double hot_prob,
                   uint64_t seed = 42);

  uint64_t Next();

  uint64_t hot_count() const { return hot_count_; }
  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  uint64_t hot_count_;
  double hot_prob_;
  Rng rng_;
};

}  // namespace nblb
