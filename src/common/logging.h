// Minimal assertion/logging macros (abort-on-violation, Google-CHECK style).

#pragma once

#include <cstdio>
#include <cstdlib>

/// Aborts with a message when `cond` is false. Used for programmer errors
/// (invariant violations), never for data-dependent failures — those return
/// Status.
#define NBLB_CHECK(cond)                                                     \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "NBLB_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define NBLB_CHECK_MSG(cond, msg)                                            \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "NBLB_CHECK failed at %s:%d: %s (%s)\n",          \
                   __FILE__, __LINE__, #cond, msg);                          \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#ifndef NDEBUG
#define NBLB_DCHECK(cond) NBLB_CHECK(cond)
#else
#define NBLB_DCHECK(cond) \
  do {                    \
  } while (0)
#endif
