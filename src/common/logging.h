// Minimal assertion/logging macros (abort-on-violation, Google-CHECK style).

#pragma once

#include <cstdio>
#include <cstdlib>

namespace nblb {

/// \brief Installs a hook invoked (once) just before a failed NBLB_CHECK
/// aborts the process. The observability layer uses this to dump the
/// flight-recorder event rings to stderr so a fatal error ships its own
/// diagnosis. The hook must be async-signal-unsafe-tolerant in the sense
/// that it runs on the failing thread with arbitrary locks possibly held —
/// keep it lock-free or best-effort. Pass nullptr to clear.
void SetFatalHook(void (*hook)());

/// \brief Runs the installed fatal hook, at most once per process (re-entry
/// from a hook that itself CHECK-fails is suppressed). Called by NBLB_CHECK;
/// safe to call when no hook is installed.
void InvokeFatalHook();

}  // namespace nblb

/// Aborts with a message when `cond` is false. Used for programmer errors
/// (invariant violations), never for data-dependent failures — those return
/// Status.
#define NBLB_CHECK(cond)                                                     \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "NBLB_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                         \
      ::nblb::InvokeFatalHook();                                             \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define NBLB_CHECK_MSG(cond, msg)                                            \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "NBLB_CHECK failed at %s:%d: %s (%s)\n",          \
                   __FILE__, __LINE__, #cond, msg);                          \
      ::nblb::InvokeFatalHook();                                             \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#ifndef NDEBUG
#define NBLB_DCHECK(cond) NBLB_CHECK(cond)
#else
#define NBLB_DCHECK(cond) \
  do {                    \
  } while (0)
#endif
