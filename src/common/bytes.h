// Fixed-width integer encode/decode helpers.
//
// Little-endian codecs are used for in-page structures (headers, payloads);
// big-endian "comparable" codecs are used by the key codec so that memcmp
// order equals numeric order.

#pragma once

#include <cstdint>
#include <cstring>

namespace nblb {

inline void EncodeFixed16(char* dst, uint16_t v) { std::memcpy(dst, &v, 2); }
inline void EncodeFixed32(char* dst, uint32_t v) { std::memcpy(dst, &v, 4); }
inline void EncodeFixed64(char* dst, uint64_t v) { std::memcpy(dst, &v, 8); }

inline uint16_t DecodeFixed16(const char* src) {
  uint16_t v;
  std::memcpy(&v, src, 2);
  return v;
}
inline uint32_t DecodeFixed32(const char* src) {
  uint32_t v;
  std::memcpy(&v, src, 4);
  return v;
}
inline uint64_t DecodeFixed64(const char* src) {
  uint64_t v;
  std::memcpy(&v, src, 8);
  return v;
}

/// \brief Writes v big-endian so unsigned values sort correctly under memcmp.
inline void EncodeBigEndian64(char* dst, uint64_t v) {
  for (int i = 7; i >= 0; --i) {
    dst[i] = static_cast<char>(v & 0xff);
    v >>= 8;
  }
}

inline uint64_t DecodeBigEndian64(const char* src) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | static_cast<unsigned char>(src[i]);
  }
  return v;
}

inline void EncodeBigEndian32(char* dst, uint32_t v) {
  for (int i = 3; i >= 0; --i) {
    dst[i] = static_cast<char>(v & 0xff);
    v >>= 8;
  }
}

inline uint32_t DecodeBigEndian32(const char* src) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v = (v << 8) | static_cast<unsigned char>(src[i]);
  }
  return v;
}

/// \brief Maps a signed 64-bit value to an unsigned one preserving order
/// (flip the sign bit), for memcmp-comparable key encoding.
inline uint64_t SignFlip64(int64_t v) {
  return static_cast<uint64_t>(v) ^ (1ull << 63);
}
inline int64_t SignUnflip64(uint64_t v) {
  return static_cast<int64_t>(v ^ (1ull << 63));
}

}  // namespace nblb
