#include "common/status.h"

namespace nblb {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kIOError:
      return "io error";
    case StatusCode::kCorruption:
      return "corruption";
    case StatusCode::kNotSupported:
      return "not supported";
    case StatusCode::kOutOfRange:
      return "out of range";
    case StatusCode::kBusy:
      return "busy";
    case StatusCode::kAborted:
      return "aborted";
    case StatusCode::kAlreadyExists:
      return "already exists";
    case StatusCode::kResourceExhausted:
      return "resource exhausted";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

}  // namespace nblb
