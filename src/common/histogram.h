// Latency histogram used by the benchmark harnesses.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nblb {

/// \brief Records a stream of values (typically nanoseconds) and reports
/// count/mean/percentiles. Stores raw samples; intended for benchmark-scale
/// sample counts (<= tens of millions).
class Histogram {
 public:
  Histogram() = default;

  void Record(uint64_t value) { samples_.push_back(value); }

  size_t count() const { return samples_.size(); }
  uint64_t sum() const;
  double Mean() const;
  uint64_t Min() const;
  uint64_t Max() const;

  /// \brief Percentile in [0, 100]; nearest-rank on the sorted samples.
  uint64_t Percentile(double p) const;

  /// \brief "count=N mean=X p50=... p99=... max=..." summary line.
  std::string Summary() const;

  void Clear() { samples_.clear(); }

 private:
  void EnsureSorted() const;

  std::vector<uint64_t> samples_;
  mutable std::vector<uint64_t> sorted_;
  mutable bool sorted_valid_ = false;
};

}  // namespace nblb
