// Deterministic pseudo-random number generation.
//
// Every stochastic component in nblb (cache placement, workload generators,
// benchmarks) takes an explicit Rng so that experiments are reproducible
// run-to-run given the same seed.

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace nblb {

/// \brief Stateless splitmix64 finalizer: a full-avalanche 64-bit mixer.
///
/// Used wherever sequential ids (page ids, auto-increment keys) must spread
/// uniformly over a small power-of-two space — buffer-pool stripe selection,
/// hash routing — without any shared state.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// \brief xoshiro256** generator: fast, high-quality, deterministic.
class Rng {
 public:
  /// Seeds the generator; the same seed yields the same stream on every
  /// platform (no std::random_device, no libstdc++-specific distributions).
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// \brief Next raw 64-bit value.
  uint64_t NextU64();

  /// \brief Uniform value in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n);

  /// \brief Uniform value in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// \brief Uniform double in [0, 1).
  double NextDouble();

  /// \brief True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// \brief Uniform ASCII lowercase string of length n.
  std::string NextString(size_t n);

  /// \brief Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
};

}  // namespace nblb
