#include "common/logging.h"

#include <atomic>

namespace nblb {

namespace {
std::atomic<void (*)()> g_fatal_hook{nullptr};
}  // namespace

void SetFatalHook(void (*hook)()) {
  g_fatal_hook.store(hook, std::memory_order_release);
}

void InvokeFatalHook() {
  // Exchange-to-null so a hook that itself CHECK-fails cannot recurse.
  void (*hook)() = g_fatal_hook.exchange(nullptr, std::memory_order_acq_rel);
  if (hook != nullptr) hook();
}

}  // namespace nblb
