// Result<T>: a value or a Status, in the style of arrow::Result.

#pragma once

#include <cassert>
#include <utility>

#include "common/status.h"

namespace nblb {

/// \brief Holds either a value of type T or a non-OK Status.
///
/// Usage:
/// \code
///   Result<int> ParsePort(std::string_view s);
///   NBLB_ASSIGN_OR_RETURN(int port, ParsePort("8080"));
/// \endcode
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit, mirrors arrow::Result).
  Result(T value) : ok_(true), value_(std::move(value)) {}  // NOLINT

  /// Constructs from a non-OK status. Constructing from an OK status is a
  /// programming error and is converted to an InvalidArgument error.
  Result(Status status) : ok_(false), status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::InvalidArgument("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(const Result&) = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return ok_; }

  /// \brief The error status; Status::OK() if a value is held.
  const Status& status() const { return status_; }

  /// \brief The held value. Must only be called when ok().
  const T& ValueOrDie() const& {
    assert(ok_);
    return value_;
  }
  T& ValueOrDie() & {
    assert(ok_);
    return value_;
  }
  T&& ValueOrDie() && {
    assert(ok_);
    return std::move(value_);
  }

  /// \brief The held value or `fallback` if this holds an error.
  T ValueOr(T fallback) const {
    return ok_ ? value_ : std::move(fallback);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  bool ok_;
  T value_{};
  Status status_;
};

}  // namespace nblb
