#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace nblb::net {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

constexpr size_t kRecvChunk = 64 * 1024;

}  // namespace

Result<std::unique_ptr<NetClient>> NetClient::Connect(const Options& options) {
  std::unique_ptr<NetClient> c(new NetClient());
  c->decoder_ = FrameDecoder(options.max_frame_payload);
  c->rbuf_.resize(kRecvChunk);

  c->fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (c->fd_ < 0) return Errno("socket");

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad host address: " + options.host);
  }
  if (::connect(c->fd_, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    return Errno("connect " + options.host + ":" +
                 std::to_string(options.port));
  }
  int one = 1;
  ::setsockopt(c->fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return c;
}

NetClient::~NetClient() {
  if (fd_ >= 0) ::close(fd_);
}

Status NetClient::SendRaw(const void* data, size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t n = ::send(fd_, p, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    p += n;
    len -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<uint64_t> NetClient::Send(const RequestBatch& batch) {
  const uint64_t id = next_id_++;
  std::string frame;
  Status enc = AppendRequestFrame(id, batch, &frame);
  if (!enc.ok()) return enc;
  Status st = SendRaw(frame.data(), frame.size());
  if (!st.ok()) return st;
  pending_sizes_[id] = batch.size();
  return id;
}

Result<BatchResult> NetClient::Wait(uint64_t request_id) {
  for (;;) {
    auto ready = ready_.find(request_id);
    if (ready != ready_.end()) {
      BatchResult result = std::move(ready->second);
      ready_.erase(ready);
      pending_sizes_.erase(request_id);
      return result;
    }

    // Drain whatever frames are already reassembled before reading more.
    Frame frame;
    const FrameDecoder::Next next = decoder_.Pop(&frame);
    if (next == FrameDecoder::Next::kError) {
      return Status::Corruption("response stream: " + decoder_.error());
    }
    if (next == FrameDecoder::Next::kFrame) {
      if (frame.type == FrameType::kBusy) {
        // The server shed the whole frame: synthesize per-request kBusy so
        // callers see the same shape as engine-side fail-fast rejection.
        BatchResult busy;
        const auto pending = pending_sizes_.find(frame.request_id);
        const size_t count =
            pending != pending_sizes_.end() ? pending->second : 0;
        busy.results.resize(count);
        for (RequestResult& r : busy.results) {
          r.status = Status::Busy("server shed request (admission control)");
        }
        ready_[frame.request_id] = std::move(busy);
      } else if (frame.type == FrameType::kResponse) {
        Result<BatchResult> decoded =
            DecodeResponsePayload(frame.payload.data(), frame.payload.size());
        if (!decoded.ok()) return decoded.status();
        ready_[frame.request_id] = std::move(decoded).ValueOrDie();
      } else {
        return Status::Corruption("unexpected request frame from server");
      }
      continue;
    }

    const ssize_t n = ::recv(fd_, rbuf_.data(), rbuf_.size(), 0);
    if (n > 0) {
      decoder_.Append(rbuf_.data(), static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      return Status::IOError("server closed connection");
    }
    if (errno == EINTR) continue;
    return Errno("recv");
  }
}

Result<BatchResult> NetClient::Call(const RequestBatch& batch) {
  Result<uint64_t> id = Send(batch);
  if (!id.ok()) return id.status();
  return Wait(*id);
}

}  // namespace nblb::net
