#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/timerfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

#include "obs/event_ring.h"

namespace nblb::net {

namespace {

// io_uring user_data encoding: (conn_id << 3) | tag. Conn ids start at 1,
// so the id-0 tag space is free for the singleton ops.
constexpr uint64_t kUdAccept = 0;  // tag 0, id 0
constexpr uint64_t kUdWake = 1;    // tag 1, id 0
constexpr uint64_t kUdCancel = 2;  // tag 2, id 0 (cancel ops themselves)
constexpr uint64_t kTagRecv = 3;
constexpr uint64_t kTagSend = 4;
constexpr uint64_t kUdTimer = 5;   // tag 5, id 0 (idle-sweep timerfd read)
constexpr unsigned kUdTagBits = 3;
constexpr uint64_t kUdTagMask = (1u << kUdTagBits) - 1;

uint64_t UdRecv(uint64_t conn_id) { return (conn_id << kUdTagBits) | kTagRecv; }
uint64_t UdSend(uint64_t conn_id) { return (conn_id << kUdTagBits) | kTagSend; }

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

uint64_t MicrosSince(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

// ---- Startup ----------------------------------------------------------------

Result<std::unique_ptr<NetServer>> NetServer::Start(NetServerOptions options,
                                                    ShardedEngine* engine) {
  if (engine == nullptr) {
    return Status::InvalidArgument("NetServer requires an engine");
  }
  std::unique_ptr<NetServer> s(new NetServer());
  s->options_ = std::move(options);
  s->engine_ = engine;

  Status st = s->Listen();
  if (!st.ok()) return st;

  s->wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (s->wake_fd_ < 0) return Errno("eventfd");

  s->ResolveBackend();

  if (s->options_.idle_timeout_ms > 0) {
    // Sweep a few times per timeout so a connection is reaped within
    // ~1.25x the configured idle window, without a hot polling loop.
    s->sweep_interval_ms_ =
        std::max<uint64_t>(1, s->options_.idle_timeout_ms / 4);
    s->next_sweep_ = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(s->sweep_interval_ms_);
  }

  if (s->options_.max_inflight_global > 0) {
    s->global_cap_ = s->options_.max_inflight_global;
  } else {
    // Place the shed point exactly where the engine itself would start
    // failing batches, when it bounds its queues.
    const auto& eng = engine->options();
    s->global_cap_ = eng.max_queue_depth > 0
                         ? engine->num_shards() * eng.max_queue_depth
                         : 1024;
  }

  s->metrics_ = std::make_unique<MetricsRegistry>();
  MetricsRegistry* reg = s->metrics_.get();
  reg->RegisterCounter("net.accepts", &s->accepts_);
  reg->RegisterCounter("net.closes", &s->closes_);
  reg->RegisterCounter("net.frames_in", &s->frames_in_);
  reg->RegisterCounter("net.frames_out", &s->frames_out_);
  reg->RegisterCounter("net.bytes_in", &s->bytes_in_);
  reg->RegisterCounter("net.bytes_out", &s->bytes_out_);
  reg->RegisterCounter("net.decode_errors", &s->decode_errors_);
  reg->RegisterCounter("net.busy_shed", &s->busy_shed_);
  reg->RegisterCounter("net.responses", &s->responses_);
  reg->RegisterCounter("net.idle_closed", &s->idle_closed_);
  NetServer* self = s.get();
  reg->RegisterGauge("net.open_connections", [self] {
    return static_cast<double>(self->open_connections());
  });
  reg->RegisterGauge("net.inflight", [self] {
    return static_cast<double>(self->inflight());
  });
  reg->RegisterHistogram("net.reply_latency_us", &s->reply_latency_us_);
  reg->RegisterHistogram("net.batch_requests", &s->request_batch_size_);

  s->loop_thread_ = std::thread([self] { self->LoopMain(); });
  return s;
}

Status NetServer::Listen() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Errno("bind " + options_.bind_address + ":" +
                 std::to_string(options_.port));
  }
  if (::listen(listen_fd_, options_.listen_backlog) != 0) {
    return Errno("listen");
  }
  struct sockaddr_in bound;
  socklen_t blen = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&bound),
                    &blen) != 0) {
    return Errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);
  if (!SetNonBlocking(listen_fd_)) return Errno("fcntl(listen)");
  return Status::OK();
}

void NetServer::ResolveBackend() {
  IoBackend want = options_.io_backend;
  // Same override as DiskManager: force either path without a rebuild.
  if (const char* env = std::getenv("NBLB_IO_BACKEND")) {
    if (std::strcmp(env, "threads") == 0) {
      want = IoBackend::kThreads;
    } else if (std::strcmp(env, "uring") == 0) {
      want = IoBackend::kUring;
    } else if (std::strcmp(env, "auto") == 0) {
      want = IoBackend::kAuto;
    }
  }
  backend_in_use_ = IoBackend::kThreads;  // epoll
  if (want == IoBackend::kThreads) return;

  auto ring = IoRing::TryCreate(options_.io_queue_depth);
  if (ring == nullptr) {
    if (want == IoBackend::kUring) {
      std::fprintf(stderr,
                   "nblb: io_uring unavailable (seccomp/sysctl/kernel); "
                   "net server falling back to epoll\n");
    }
    return;
  }

  // Ring creation alone is not enough: IORING_OP_RECV needs kernel >= 5.6.
  // Probe a 1-byte recv over a socketpair — an unsupported opcode completes
  // immediately with -EINVAL, a supported one returns the byte.
  int sv[2] = {-1, -1};
  bool supported = false;
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) == 0) {
    char ping = 'x';
    char pong = 0;
    if (::send(sv[1], &ping, 1, 0) == 1 && ring->PushRecv(sv[0], &pong, 1, 7) &&
        ring->Flush() == 0 && ring->WaitCqe() == 0) {
      IoRing::Cqe cqe;
      supported = ring->Reap(&cqe, 1) == 1 && cqe.res == 1 && pong == 'x';
    }
    ::close(sv[0]);
    ::close(sv[1]);
  }
  if (!supported) {
    if (want == IoBackend::kUring) {
      std::fprintf(stderr,
                   "nblb: io_uring socket ops unsupported (kernel < 5.6?); "
                   "net server falling back to epoll\n");
    }
    return;
  }
  ring_ = std::move(ring);
  backend_in_use_ = IoBackend::kUring;
}

// ---- Shutdown ---------------------------------------------------------------

NetServer::~NetServer() {
  stopping_.store(true, std::memory_order_release);
  WakeLoop();
  if (loop_thread_.joinable()) loop_thread_.join();
  // The loop closed every connection on exit, so completion callbacks for
  // still-running batches drop their responses — but every callback still
  // decrements the in-flight count, so waiting here guarantees no ticket
  // outlives the server (and that `this` stays valid for the callbacks).
  {
    std::unique_lock<std::mutex> lock(drain_mu_);
    drain_cv_.wait(lock, [this] {
      return inflight_global_.load(std::memory_order_acquire) == 0;
    });
  }
  ring_.reset();
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

// ---- Shared state machine ---------------------------------------------------

void NetServer::LoopMain() {
  if (backend_in_use_ == IoBackend::kUring) {
    UringLoop();
  } else {
    EpollLoop();
  }
}

void NetServer::HandleAccepted(int fd) {
  SetNoDelay(fd);
  if (backend_in_use_ != IoBackend::kUring && !SetNonBlocking(fd)) {
    ::close(fd);
    return;
  }
  auto conn = std::make_shared<Conn>(options_.max_frame_payload);
  conn->id = next_conn_id_++;
  conn->fd = fd;
  conn->rchunk.resize(options_.recv_chunk_bytes);
  conn->last_activity = std::chrono::steady_clock::now();
  conns_[conn->id] = conn;
  open_conns_.fetch_add(1, std::memory_order_relaxed);
  accepts_.fetch_add(1, std::memory_order_relaxed);
  if (backend_in_use_ == IoBackend::kUring) {
    UringArmRecv(conn);
  } else {
    struct epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.u64 = conn->id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      EpollCloseConn(conn);
    }
  }
}

bool NetServer::ProcessFrames(const ConnPtr& conn) {
  Frame frame;
  for (;;) {
    const FrameDecoder::Next next = conn->decoder.Pop(&frame);
    if (next == FrameDecoder::Next::kNeedMore) return true;
    if (next == FrameDecoder::Next::kError) {
      decode_errors_.fetch_add(1, std::memory_order_relaxed);
      RecordFlightEvent(FlightEvent::kNetDecodeError, conn->id);
      return false;
    }
    if (frame.type != FrameType::kRequest) {
      // Response/busy frames only flow server -> client.
      decode_errors_.fetch_add(1, std::memory_order_relaxed);
      RecordFlightEvent(FlightEvent::kNetDecodeError, conn->id);
      return false;
    }
    frames_in_.fetch_add(1, std::memory_order_relaxed);
    if (!HandleRequestFrame(conn, std::move(frame))) return false;
  }
}

bool NetServer::HandleRequestFrame(const ConnPtr& conn, Frame&& frame) {
  const uint64_t request_id = frame.request_id;

  const uint32_t per = conn->inflight.load(std::memory_order_relaxed);
  const size_t global = inflight_global_.load(std::memory_order_relaxed);
  if ((options_.max_inflight_per_conn > 0 &&
       per >= options_.max_inflight_per_conn) ||
      (global_cap_ > 0 && global >= global_cap_)) {
    busy_shed_.fetch_add(1, std::memory_order_relaxed);
    RecordFlightEvent(FlightEvent::kNetShed, conn->id, per);
    std::string busy;
    AppendBusyFrame(request_id, &busy);
    EnqueueLoopSide(conn, std::move(busy));
    return true;  // shed, but the connection stays healthy
  }

  Result<RequestBatch> decoded =
      DecodeRequestPayload(frame.payload.data(), frame.payload.size());
  if (!decoded.ok()) {
    decode_errors_.fetch_add(1, std::memory_order_relaxed);
    RecordFlightEvent(FlightEvent::kNetDecodeError, conn->id);
    return false;
  }
  request_batch_size_.Record(decoded->size());

  conn->inflight.fetch_add(1, std::memory_order_relaxed);
  inflight_global_.fetch_add(1, std::memory_order_relaxed);
  const auto start = std::chrono::steady_clock::now();
  ConnPtr c = conn;
  engine_->Submit(
      std::move(decoded).ValueOrDie(),
      [this, c, request_id, start](const BatchResult& result) {
        // Completion thread: encode off the loop, enqueue, wake the loop.
        // A dead connection just drops the response — the decrementing
        // below is what matters for drain correctness.
        if (!c->closed.load(std::memory_order_acquire)) {
          std::string out;
          // Encoding can only fail on counts the decoded request already
          // bounded, but if it somehow does, dropping the reply beats
          // writing a desynced frame.
          if (AppendResponseFrame(request_id, result, &out).ok()) {
            // Count before enqueueing: once the client can observe the
            // reply on the wire, stats().responses must already include it.
            responses_.fetch_add(1, std::memory_order_relaxed);
            QueueOutput(c, std::move(out));
          }
        }
        reply_latency_us_.Record(MicrosSince(start));
        c->inflight.fetch_sub(1, std::memory_order_relaxed);
        {
          // The final decrement must happen while holding drain_mu_: the
          // destructor's wait predicate reads inflight_global_ only under
          // the mutex, so it cannot observe zero — and destroy the mutex
          // and condvar — until this callback has released it, by which
          // point the callback no longer touches `this`.
          std::lock_guard<std::mutex> lock(drain_mu_);
          if (inflight_global_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            drain_cv_.notify_all();
          }
        }
      });
  return true;
}

void NetServer::EnqueueLoopSide(const ConnPtr& conn, std::string frame_bytes) {
  {
    std::lock_guard<std::mutex> lock(conn->out_mu);
    conn->outq.push_back(std::move(frame_bytes));
  }
  frames_out_.fetch_add(1, std::memory_order_relaxed);
  if (backend_in_use_ == IoBackend::kUring) {
    UringStartSend(conn);
  } else {
    EpollFlushConn(conn);
  }
}

void NetServer::QueueOutput(const ConnPtr& conn, std::string frame_bytes) {
  // Count before the push: the loop may flush the queue (for an earlier
  // write-readiness event) the moment the frame lands in it.
  frames_out_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(conn->out_mu);
    conn->outq.push_back(std::move(frame_bytes));
  }
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending_writes_.push_back(conn);
  }
  WakeLoop();
}

void NetServer::WakeLoop() {
  const uint64_t one = 1;
  // EAGAIN (counter saturated) still leaves the eventfd readable; other
  // failures only cost latency until the next wake.
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void NetServer::DrainPendingWrites() {
  std::vector<ConnPtr> pending;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending.swap(pending_writes_);
  }
  for (const ConnPtr& conn : pending) {
    if (conn->closed.load(std::memory_order_relaxed)) continue;
    if (backend_in_use_ == IoBackend::kUring) {
      UringStartSend(conn);
    } else {
      EpollFlushConn(conn);
    }
  }
}

void NetServer::SweepIdleConns() {
  const auto now = std::chrono::steady_clock::now();
  const auto limit = std::chrono::milliseconds(options_.idle_timeout_ms);
  // Collect first: closing mutates conns_.
  std::vector<ConnPtr> victims;
  for (auto& [id, conn] : conns_) {
    if (conn->closed.load(std::memory_order_relaxed) || conn->closing) {
      continue;
    }
    // "Idle" means truly quiescent: a connection with batches still in the
    // engine, or with output queued/being sent, is working — the activity
    // stamp only tracks socket bytes, so these guards keep a slow-reading
    // but live client from being reaped mid-response.
    if (conn->inflight.load(std::memory_order_relaxed) > 0) continue;
    if (conn->send_pending || conn->want_write) continue;
    {
      std::lock_guard<std::mutex> lock(conn->out_mu);
      if (!conn->outq.empty()) continue;
    }
    if (now - conn->last_activity >= limit) victims.push_back(conn);
  }
  for (const ConnPtr& conn : victims) {
    const uint64_t idle_ms = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            now - conn->last_activity)
            .count());
    RecordFlightEvent(FlightEvent::kNetIdleClose, conn->id, idle_ms);
    idle_closed_.fetch_add(1, std::memory_order_relaxed);
    if (backend_in_use_ == IoBackend::kUring) {
      UringCloseConn(conn);
    } else {
      EpollCloseConn(conn);
    }
  }
}

// ---- epoll backend ----------------------------------------------------------

namespace {
constexpr uint64_t kEpollListenId = ~uint64_t{0};
constexpr uint64_t kEpollWakeId = ~uint64_t{0} - 1;
}  // namespace

void NetServer::EpollLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return;  // nothing can be served; dtor still drains

  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.u64 = kEpollListenId;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.u64 = kEpollWakeId;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  std::vector<struct epoll_event> events(128);
  // With the idle sweep enabled the wait gets a finite timeout so the loop
  // periodically regains control even with no socket activity at all.
  const int wait_ms = sweep_interval_ms_ > 0
                          ? static_cast<int>(sweep_interval_ms_)
                          : -1;
  while (!stopping_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), wait_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (sweep_interval_ms_ > 0 &&
        std::chrono::steady_clock::now() >= next_sweep_) {
      SweepIdleConns();
      next_sweep_ = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(sweep_interval_ms_);
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t id = events[i].data.u64;
      const uint32_t flags = events[i].events;
      if (id == kEpollListenId) {
        EpollAcceptReady();
        continue;
      }
      if (id == kEpollWakeId) {
        uint64_t v = 0;
        [[maybe_unused]] ssize_t r = ::read(wake_fd_, &v, sizeof(v));
        DrainPendingWrites();
        continue;
      }
      auto it = conns_.find(id);
      if (it == conns_.end()) continue;  // closed earlier in this batch
      ConnPtr conn = it->second;
      if ((flags & (EPOLLHUP | EPOLLERR)) != 0) {
        EpollCloseConn(conn);
        continue;
      }
      if ((flags & EPOLLIN) != 0) EpollReadReady(conn);
      if ((flags & EPOLLOUT) != 0 &&
          !conn->closed.load(std::memory_order_relaxed)) {
        EpollFlushConn(conn);
      }
    }
  }

  // Close every connection before the fds go away; completion callbacks
  // still in flight will see closed == true and drop their output.
  std::vector<ConnPtr> remaining;
  remaining.reserve(conns_.size());
  for (auto& [id, conn] : conns_) remaining.push_back(conn);
  for (const ConnPtr& conn : remaining) EpollCloseConn(conn);
  ::close(epoll_fd_);
  epoll_fd_ = -1;
}

void NetServer::EpollAcceptReady() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // EMFILE and friends: stop accepting this round
    }
    HandleAccepted(fd);
  }
}

void NetServer::EpollReadReady(const ConnPtr& conn) {
  for (;;) {
    const ssize_t n =
        ::recv(conn->fd, conn->rchunk.data(), conn->rchunk.size(), 0);
    if (n > 0) {
      bytes_in_.fetch_add(static_cast<uint64_t>(n), std::memory_order_relaxed);
      conn->last_activity = std::chrono::steady_clock::now();
      conn->decoder.Append(conn->rchunk.data(), static_cast<size_t>(n));
      if (!ProcessFrames(conn)) {
        EpollCloseConn(conn);
        return;
      }
      continue;
    }
    if (n == 0) {  // orderly peer shutdown
      EpollCloseConn(conn);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    EpollCloseConn(conn);
    return;
  }
}

void NetServer::EpollFlushConn(const ConnPtr& conn) {
  if (conn->closed.load(std::memory_order_relaxed)) return;
  for (;;) {
    // The deque front stays stable while we send: only the loop thread
    // pops, completion threads only push_back.
    std::string* front = nullptr;
    {
      std::lock_guard<std::mutex> lock(conn->out_mu);
      if (!conn->outq.empty()) front = &conn->outq.front();
    }
    if (front == nullptr) {
      if (conn->want_write) {
        conn->want_write = false;
        EpollUpdateInterest(conn);
      }
      return;
    }
    const ssize_t n =
        ::send(conn->fd, front->data() + conn->out_off,
               front->size() - conn->out_off, MSG_NOSIGNAL);
    if (n > 0) {
      bytes_out_.fetch_add(static_cast<uint64_t>(n), std::memory_order_relaxed);
      conn->last_activity = std::chrono::steady_clock::now();
      conn->out_off += static_cast<size_t>(n);
      if (conn->out_off == front->size()) {
        std::lock_guard<std::mutex> lock(conn->out_mu);
        conn->outq.pop_front();
        conn->out_off = 0;
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn->want_write) {
        conn->want_write = true;
        EpollUpdateInterest(conn);
      }
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    EpollCloseConn(conn);
    return;
  }
}

void NetServer::EpollUpdateInterest(const ConnPtr& conn) {
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events =
      EPOLLIN | (conn->want_write ? static_cast<uint32_t>(EPOLLOUT) : 0u);
  ev.data.u64 = conn->id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void NetServer::EpollCloseConn(const ConnPtr& conn) {
  if (conn->closed.exchange(true, std::memory_order_acq_rel)) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  conn->fd = -1;
  conns_.erase(conn->id);
  open_conns_.fetch_sub(1, std::memory_order_relaxed);
  closes_.fetch_add(1, std::memory_order_relaxed);
}

// ---- io_uring backend -------------------------------------------------------

bool NetServer::UringPush(const std::function<bool()>& push) {
  if (push()) return true;
  ring_->Flush();  // SQ full: submit what's queued to free slots
  return push();
}

void NetServer::UringLoop() {
  wake_iov_.iov_base = &wake_buf_;
  wake_iov_.iov_len = sizeof(wake_buf_);

  // Idle sweep: WaitCqe has no timeout variant, so the periodic tick is a
  // timerfd read through the ring itself — same re-arm discipline as the
  // wake eventfd. If timerfd creation fails the sweep is silently off.
  if (sweep_interval_ms_ > 0) {
    timer_fd_ = ::timerfd_create(CLOCK_MONOTONIC, TFD_CLOEXEC | TFD_NONBLOCK);
    if (timer_fd_ >= 0) {
      struct itimerspec its;
      std::memset(&its, 0, sizeof(its));
      its.it_interval.tv_sec =
          static_cast<time_t>(sweep_interval_ms_ / 1000);
      its.it_interval.tv_nsec =
          static_cast<long>((sweep_interval_ms_ % 1000) * 1000000);
      its.it_value = its.it_interval;
      if (::timerfd_settime(timer_fd_, 0, &its, nullptr) != 0) {
        ::close(timer_fd_);
        timer_fd_ = -1;
      }
    }
    timer_iov_.iov_base = &timer_buf_;
    timer_iov_.iov_len = sizeof(timer_buf_);
  }

  std::vector<IoRing::Cqe> cqes(128);
  while (!stopping_.load(std::memory_order_acquire)) {
    // Arm (and re-arm) the singleton ops at the top of every iteration
    // rather than only from their completion handlers: if a push fails
    // against a full SQ, the next pass retries. A permanently un-armed
    // wake read would let an idle loop block in WaitCqe with no way for
    // WakeLoop (or the destructor) to ever wake it.
    if (!accept_pending_) {
      accept_pending_ = UringPush([&] {
        return ring_->PushAccept(listen_fd_, kUdAccept);
      });
    }
    if (!wake_pending_) {
      wake_pending_ = UringPush([&] {
        return ring_->PushReadv(wake_fd_, &wake_iov_, 1, 0, kUdWake);
      });
    }
    if (timer_fd_ >= 0 && !timer_pending_) {
      timer_pending_ = UringPush([&] {
        return ring_->PushReadv(timer_fd_, &timer_iov_, 1, 0, kUdTimer);
      });
    }
    if (ring_->Flush() != 0) break;
    if (ring_->WaitCqe() != 0) break;
    size_t n;
    while ((n = ring_->Reap(cqes.data(), cqes.size())) > 0) {
      for (size_t i = 0; i < n; ++i) {
        const uint64_t ud = cqes[i].user_data;
        const int32_t res = cqes[i].res;
        if (ud == kUdAccept) {
          // Re-armed at the top of the next loop iteration.
          accept_pending_ = false;
          if (res >= 0) {
            if (stopping_.load(std::memory_order_acquire)) {
              ::close(res);  // raced accept during shutdown
            } else {
              HandleAccepted(res);
            }
          }
          continue;
        }
        if (ud == kUdWake) {
          wake_pending_ = false;  // re-armed at the top of the next iteration
          continue;
        }
        if (ud == kUdTimer) {
          timer_pending_ = false;  // re-armed at the top of the next iteration
          SweepIdleConns();
          continue;
        }
        if (ud == kUdCancel) continue;  // cancel op's own completion

        auto it = conns_.find(ud >> kUdTagBits);
        if (it == conns_.end()) continue;
        ConnPtr conn = it->second;
        const uint64_t tag = ud & kUdTagMask;
        if (tag == kTagRecv) {
          conn->recv_pending = false;
          if (conn->closing) {
            UringReapConnIfDone(conn);
            continue;
          }
          if (res <= 0) {
            UringCloseConn(conn);
            continue;
          }
          bytes_in_.fetch_add(static_cast<uint64_t>(res),
                              std::memory_order_relaxed);
          conn->last_activity = std::chrono::steady_clock::now();
          conn->decoder.Append(conn->rchunk.data(), static_cast<size_t>(res));
          if (!ProcessFrames(conn)) {
            UringCloseConn(conn);
            continue;
          }
          UringArmRecv(conn);
        } else if (tag == kTagSend) {
          conn->send_pending = false;
          if (conn->closing) {
            UringReapConnIfDone(conn);
            continue;
          }
          if (res < 0) {
            UringCloseConn(conn);
            continue;
          }
          bytes_out_.fetch_add(static_cast<uint64_t>(res),
                               std::memory_order_relaxed);
          conn->last_activity = std::chrono::steady_clock::now();
          conn->out_off += static_cast<size_t>(res);
          if (conn->out_off < conn->sending.size()) {
            // Partial send: put the remainder back in flight. If even the
            // post-Flush retry cannot get an SQE, close the connection —
            // leaving it open would strand a truncated frame on the wire.
            conn->send_pending = UringPush([&] {
              return ring_->PushSend(
                  conn->fd, conn->sending.data() + conn->out_off,
                  static_cast<unsigned>(conn->sending.size() - conn->out_off),
                  UdSend(conn->id));
            });
            if (!conn->send_pending) UringCloseConn(conn);
          } else {
            conn->sending.clear();
            conn->out_off = 0;
            UringStartSend(conn);  // next queued frame, if any
          }
        }
      }
    }
    DrainPendingWrites();
  }

  // Shutdown drain: in-flight ops reference per-connection buffers, so every
  // op must complete before the Conn objects can be torn down. shutdown()
  // forces pending RECV/SEND completions (io_uring holds a file reference,
  // so close() alone would not); ASYNC_CANCEL retires the ACCEPT and the
  // wake read.
  std::vector<ConnPtr> remaining;
  remaining.reserve(conns_.size());
  for (auto& [id, conn] : conns_) remaining.push_back(conn);
  for (const ConnPtr& conn : remaining) {
    conn->closed.store(true, std::memory_order_release);
    conn->closing = true;
    ::shutdown(conn->fd, SHUT_RDWR);
  }
  if (accept_pending_) {
    UringPush([&] { return ring_->PushCancel(kUdAccept, kUdCancel); });
  }
  if (wake_pending_) {
    UringPush([&] { return ring_->PushCancel(kUdWake, kUdCancel); });
  }
  if (timer_pending_) {
    UringPush([&] { return ring_->PushCancel(kUdTimer, kUdCancel); });
  }
  auto ops_pending = [&] {
    if (accept_pending_ || wake_pending_ || timer_pending_) return true;
    for (auto& [id, conn] : conns_) {
      if (conn->recv_pending || conn->send_pending) return true;
    }
    return false;
  };
  while (ops_pending()) {
    if (ring_->Flush() != 0) break;
    if (ring_->WaitCqe() != 0) break;
    size_t n;
    while ((n = ring_->Reap(cqes.data(), cqes.size())) > 0) {
      for (size_t i = 0; i < n; ++i) {
        const uint64_t ud = cqes[i].user_data;
        if (ud == kUdAccept) {
          accept_pending_ = false;
          if (cqes[i].res >= 0) ::close(cqes[i].res);  // raced accept
        } else if (ud == kUdWake) {
          wake_pending_ = false;
        } else if (ud == kUdTimer) {
          timer_pending_ = false;
        } else if (ud != kUdCancel) {
          auto it = conns_.find(ud >> kUdTagBits);
          if (it == conns_.end()) continue;
          if ((ud & kUdTagMask) == kTagRecv) it->second->recv_pending = false;
          if ((ud & kUdTagMask) == kTagSend) it->second->send_pending = false;
        }
      }
    }
  }
  for (const ConnPtr& conn : remaining) {
    if (conn->fd >= 0) {
      ::close(conn->fd);
      conn->fd = -1;
    }
    closes_.fetch_add(1, std::memory_order_relaxed);
    open_conns_.fetch_sub(1, std::memory_order_relaxed);
  }
  conns_.clear();
  if (timer_fd_ >= 0) {
    ::close(timer_fd_);
    timer_fd_ = -1;
  }
}

void NetServer::UringArmRecv(const ConnPtr& conn) {
  if (conn->recv_pending || conn->closing) return;
  conn->recv_pending = UringPush([&] {
    return ring_->PushRecv(conn->fd, conn->rchunk.data(),
                           static_cast<unsigned>(conn->rchunk.size()),
                           UdRecv(conn->id));
  });
  if (!conn->recv_pending) UringCloseConn(conn);  // SQ hopelessly full
}

void NetServer::UringStartSend(const ConnPtr& conn) {
  if (conn->send_pending || conn->closing ||
      conn->closed.load(std::memory_order_relaxed)) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(conn->out_mu);
    if (conn->outq.empty()) return;
    // Coalesce everything queued into one SEND: fewer ops, and the op owns
    // a loop-private buffer so completion threads never race the send.
    conn->sending.clear();
    for (std::string& s : conn->outq) conn->sending.append(s);
    conn->outq.clear();
  }
  conn->out_off = 0;
  conn->send_pending = UringPush([&] {
    return ring_->PushSend(conn->fd, conn->sending.data(),
                           static_cast<unsigned>(conn->sending.size()),
                           UdSend(conn->id));
  });
  if (!conn->send_pending) UringCloseConn(conn);
}

void NetServer::UringCloseConn(const ConnPtr& conn) {
  if (conn->closing) return;
  conn->closing = true;
  conn->closed.store(true, std::memory_order_release);
  // Wake any ops still in flight on this socket; the fd closes (and the
  // conn leaves the map) once they have all completed.
  ::shutdown(conn->fd, SHUT_RDWR);
  UringReapConnIfDone(conn);
}

void NetServer::UringReapConnIfDone(const ConnPtr& conn) {
  if (conn->recv_pending || conn->send_pending) return;
  ::close(conn->fd);
  conn->fd = -1;
  conns_.erase(conn->id);
  open_conns_.fetch_sub(1, std::memory_order_relaxed);
  closes_.fetch_add(1, std::memory_order_relaxed);
}

// ---- Stats ------------------------------------------------------------------

NetStatsSnapshot NetServer::stats() const {
  NetStatsSnapshot s;
  s.accepts = accepts_.load(std::memory_order_relaxed);
  s.closes = closes_.load(std::memory_order_relaxed);
  s.frames_in = frames_in_.load(std::memory_order_relaxed);
  s.frames_out = frames_out_.load(std::memory_order_relaxed);
  s.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  s.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  s.decode_errors = decode_errors_.load(std::memory_order_relaxed);
  s.busy_shed = busy_shed_.load(std::memory_order_relaxed);
  s.responses = responses_.load(std::memory_order_relaxed);
  s.idle_closed = idle_closed_.load(std::memory_order_relaxed);
  return s;
}

MetricsSnapshot NetServer::MetricsSnapshotNow() const {
  MetricsSnapshot snap = metrics_->Snapshot();
  snap.Merge(engine_->MetricsSnapshotNow(), "");
  return snap;
}

}  // namespace nblb::net
