// Wire protocol for the network serving front end: a compact length-prefixed
// binary framing for RequestBatch / BatchResult, plus a streaming decoder
// that reassembles frames from arbitrary byte arrivals (TCP gives no message
// boundaries — a frame may arrive torn across many reads, or many frames in
// one read).
//
// Frame layout (all integers little-endian):
//
//   offset  size  field
//   0       4     payload_len   bytes following the 16-byte header
//   4       1     type          FrameType (request / response / busy)
//   5       3     reserved      zero on the wire, ignored on receipt
//   8       8     request_id    client-chosen correlation id; responses may
//                               complete out of order on one connection, the
//                               id pairs them back up
//   16      payload_len bytes of payload
//
// Request payload:   u32 count, then per request: u8 kind, u64 id, then
//                    kind-specific: kInsert/kUpdate carry a row;
//                    kGetProjected carries u16 n + u16 column indexes.
// Response payload:  u32 count, then per result: u8 status code,
//                    u16 message length + message (empty for OK),
//                    u32 shard, u8 has_row, then the row if present.
// Busy payload:      empty. The server sheds a whole request frame with a
//                    busy reply when admission control rejects it; the
//                    client maps it back to per-request kBusy statuses.
//
// Rows are self-describing (u16 column count, then per column u8 TypeId and
// a type-tagged payload) rather than schema-relative: responses to projected
// gets carry rows of a different arity than the table schema, and keeping
// the wire layer schema-free means client and server only need to agree on
// the catalog types, not exchange schemas in-band.
//
// Robustness contract (exercised by tests/net_wire_test.cc): a decoder fed
// garbage, an oversized length prefix, a truncated payload, or a count field
// whose minimum encoding cannot fit in the payload reports a permanent
// error — the server closes the connection, because a byte stream that has
// lost framing cannot be resynchronized. Counts are validated against the
// payload length before any allocation is sized from them.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/result.h"
#include "shard/request.h"

namespace nblb::net {

/// \brief Fixed frame header size on the wire.
constexpr size_t kFrameHeaderBytes = 16;

/// \brief Default cap on one frame's payload. A length prefix above the
/// decoder's cap is a protocol error (it is far more likely garbage or an
/// attack than a real 200-MiB batch), bounding per-connection memory.
constexpr size_t kDefaultMaxFramePayload = 8u << 20;  // 8 MiB

/// \brief Frame kinds. Values are wire format — keep them stable.
enum class FrameType : uint8_t {
  kRequest = 1,   ///< client -> server: one RequestBatch
  kResponse = 2,  ///< server -> client: the batch's results
  kBusy = 3,      ///< server -> client: admission control shed the frame
};

/// \brief One reassembled frame.
struct Frame {
  FrameType type = FrameType::kRequest;
  uint64_t request_id = 0;
  std::string payload;
};

// ---- Encoders (append to a wire buffer) -------------------------------------

/// \brief Appends a complete request frame for `batch`. Fails (leaving *out
/// untouched) if any count would overflow its wire integer — a batch above
/// 2^32-1 requests, a projection or row above 2^16-1 columns, or a string
/// above 2^32-1 bytes — rather than silently truncating the count.
Status AppendRequestFrame(uint64_t request_id, const RequestBatch& batch,
                          std::string* out);

/// \brief Appends a complete response frame for `result` (same overflow
/// contract as AppendRequestFrame).
Status AppendResponseFrame(uint64_t request_id, const BatchResult& result,
                           std::string* out);

/// \brief Appends an empty busy frame (admission-control shed).
void AppendBusyFrame(uint64_t request_id, std::string* out);

// ---- Payload decoders -------------------------------------------------------

/// \brief Decodes a request payload; fails on truncation, trailing bytes,
/// unknown request kinds, or malformed rows.
Result<RequestBatch> DecodeRequestPayload(const char* data, size_t len);

/// \brief Decodes a response payload (same failure contract).
Result<BatchResult> DecodeResponsePayload(const char* data, size_t len);

// ---- Streaming decoder ------------------------------------------------------

/// \brief Reassembles frames from a byte stream. Feed arbitrary chunks with
/// Append, then Pop until it returns kNeedMore. Once kError is returned the
/// decoder is poisoned (framing is unrecoverable) and the connection must be
/// closed.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_payload = kDefaultMaxFramePayload)
      : max_payload_(max_payload) {}

  /// \brief Appends `len` received bytes to the reassembly buffer.
  void Append(const char* data, size_t len);

  enum class Next : uint8_t {
    kFrame = 0,     ///< *out holds one complete frame
    kNeedMore = 1,  ///< no complete frame buffered yet
    kError = 2,     ///< protocol violation; see error()
  };

  /// \brief Extracts the next complete frame, validating the header.
  Next Pop(Frame* out);

  /// \brief Human-readable reason after Pop returned kError.
  const std::string& error() const { return error_; }

  /// \brief Bytes buffered but not yet consumed as frames.
  size_t buffered_bytes() const { return buf_.size() - pos_; }

 private:
  size_t max_payload_;
  std::string buf_;
  size_t pos_ = 0;  // consumed prefix of buf_
  bool failed_ = false;
  std::string error_;
};

}  // namespace nblb::net
