#include "net/wire.h"

#include <algorithm>
#include <cstdint>
#include <cstring>

#include "common/bytes.h"

namespace nblb::net {
namespace {

// ---- Primitive appenders ----------------------------------------------------

void AppendU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void AppendU16(std::string* out, uint16_t v) {
  char buf[2];
  EncodeFixed16(buf, v);
  out->append(buf, 2);
}

void AppendU32(std::string* out, uint32_t v) {
  char buf[4];
  EncodeFixed32(buf, v);
  out->append(buf, 4);
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[8];
  EncodeFixed64(buf, v);
  out->append(buf, 8);
}

// ---- Bounded reader over a payload ------------------------------------------

/// Cursor with explicit bounds checking: every read either succeeds or marks
/// the cursor failed, so decoders validate once at the end instead of
/// sprinkling length checks.
class Reader {
 public:
  Reader(const char* data, size_t len) : p_(data), end_(data + len) {}

  uint8_t U8() {
    if (!Need(1)) return 0;
    return static_cast<uint8_t>(*p_++);
  }
  uint16_t U16() {
    if (!Need(2)) return 0;
    uint16_t v = DecodeFixed16(p_);
    p_ += 2;
    return v;
  }
  uint32_t U32() {
    if (!Need(4)) return 0;
    uint32_t v = DecodeFixed32(p_);
    p_ += 4;
    return v;
  }
  uint64_t U64() {
    if (!Need(8)) return 0;
    uint64_t v = DecodeFixed64(p_);
    p_ += 8;
    return v;
  }
  std::string Bytes(size_t n) {
    if (!Need(n)) return std::string();
    std::string s(p_, n);
    p_ += n;
    return s;
  }

  bool failed() const { return failed_; }
  bool exhausted() const { return p_ == end_; }

 private:
  bool Need(size_t n) {
    if (failed_ || static_cast<size_t>(end_ - p_) < n) {
      failed_ = true;
      return false;
    }
    return true;
  }

  const char* p_;
  const char* end_;
  bool failed_ = false;
};

// ---- Row codec (self-describing) --------------------------------------------

bool AppendValue(std::string* out, const Value& v) {
  AppendU8(out, static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case TypeId::kBool:
    case TypeId::kInt8:
    case TypeId::kInt16:
    case TypeId::kInt32:
    case TypeId::kInt64:
    case TypeId::kTimestamp:
      AppendU64(out, static_cast<uint64_t>(v.AsInt()));
      break;
    case TypeId::kFloat64: {
      double d = v.AsDouble();
      uint64_t bits;
      std::memcpy(&bits, &d, 8);
      AppendU64(out, bits);
      break;
    }
    case TypeId::kChar:
    case TypeId::kVarchar: {
      const std::string& s = v.AsString();
      if (s.size() > UINT32_MAX) return false;
      AppendU32(out, static_cast<uint32_t>(s.size()));
      out->append(s);
      break;
    }
  }
  return true;
}

bool AppendRow(std::string* out, const Row& row) {
  if (row.size() > UINT16_MAX) return false;
  AppendU16(out, static_cast<uint16_t>(row.size()));
  for (const Value& v : row) {
    if (!AppendValue(out, v)) return false;
  }
  return true;
}

bool ReadValue(Reader* r, Value* out) {
  const uint8_t type = r->U8();
  if (type > static_cast<uint8_t>(TypeId::kVarchar)) return false;
  const TypeId t = static_cast<TypeId>(type);
  switch (t) {
    case TypeId::kBool:
      *out = Value::Bool(r->U64() != 0);
      break;
    case TypeId::kInt8:
      *out = Value::Int8(static_cast<int8_t>(r->U64()));
      break;
    case TypeId::kInt16:
      *out = Value::Int16(static_cast<int16_t>(r->U64()));
      break;
    case TypeId::kInt32:
      *out = Value::Int32(static_cast<int32_t>(r->U64()));
      break;
    case TypeId::kInt64:
      *out = Value::Int64(static_cast<int64_t>(r->U64()));
      break;
    case TypeId::kTimestamp:
      *out = Value::Timestamp(static_cast<uint32_t>(r->U64()));
      break;
    case TypeId::kFloat64: {
      uint64_t bits = r->U64();
      double d;
      std::memcpy(&d, &bits, 8);
      *out = Value::Float64(d);
      break;
    }
    case TypeId::kChar: {
      uint32_t n = r->U32();
      *out = Value::Char(r->Bytes(n));
      break;
    }
    case TypeId::kVarchar: {
      uint32_t n = r->U32();
      *out = Value::Varchar(r->Bytes(n));
      break;
    }
  }
  return !r->failed();
}

bool ReadRow(Reader* r, Row* out) {
  const uint16_t ncols = r->U16();
  out->clear();
  out->reserve(ncols);
  for (uint16_t i = 0; i < ncols; ++i) {
    Value v;
    if (!ReadValue(r, &v)) return false;
    out->push_back(std::move(v));
  }
  return !r->failed();
}

void AppendFrameHeader(std::string* out, FrameType type, uint64_t request_id,
                       size_t payload_len) {
  AppendU32(out, static_cast<uint32_t>(payload_len));
  AppendU8(out, static_cast<uint8_t>(type));
  AppendU8(out, 0);
  AppendU16(out, 0);
  AppendU64(out, request_id);
}

}  // namespace

// ---- Frame encoders ---------------------------------------------------------

Status AppendRequestFrame(uint64_t request_id, const RequestBatch& batch,
                          std::string* out) {
  // Fail loudly on anything whose count would not round-trip through the
  // wire integers — a silently truncated count desyncs request/response
  // pairing on the far side.
  if (batch.size() > UINT32_MAX) {
    return Status::InvalidArgument("request batch of " +
                                   std::to_string(batch.size()) +
                                   " overflows the wire format");
  }
  std::string payload;
  AppendU32(&payload, static_cast<uint32_t>(batch.size()));
  for (const Request& req : batch) {
    AppendU8(&payload, static_cast<uint8_t>(req.kind));
    AppendU64(&payload, req.id);
    switch (req.kind) {
      case RequestKind::kInsert:
      case RequestKind::kUpdate:
        if (!AppendRow(&payload, req.row)) {
          return Status::InvalidArgument(
              "request row overflows the wire format (column count or "
              "string length)");
        }
        break;
      case RequestKind::kGetProjected:
        if (req.projection.size() > UINT16_MAX) {
          return Status::InvalidArgument(
              "projection of " + std::to_string(req.projection.size()) +
              " columns overflows the wire format");
        }
        AppendU16(&payload, static_cast<uint16_t>(req.projection.size()));
        for (size_t col : req.projection) {
          AppendU16(&payload, static_cast<uint16_t>(col));
        }
        break;
      case RequestKind::kGet:
      case RequestKind::kDelete:
        break;
    }
  }
  AppendFrameHeader(out, FrameType::kRequest, request_id, payload.size());
  out->append(payload);
  return Status::OK();
}

Status AppendResponseFrame(uint64_t request_id, const BatchResult& result,
                           std::string* out) {
  if (result.results.size() > UINT32_MAX) {
    return Status::InvalidArgument("result batch of " +
                                   std::to_string(result.results.size()) +
                                   " overflows the wire format");
  }
  std::string payload;
  AppendU32(&payload, static_cast<uint32_t>(result.results.size()));
  for (const RequestResult& r : result.results) {
    AppendU8(&payload, static_cast<uint8_t>(r.status.code()));
    const std::string& msg = r.status.message();
    AppendU16(&payload, static_cast<uint16_t>(
                            std::min<size_t>(msg.size(), UINT16_MAX)));
    payload.append(msg.data(), std::min<size_t>(msg.size(), UINT16_MAX));
    AppendU32(&payload, r.shard);
    const bool has_row = !r.row.empty();
    AppendU8(&payload, has_row ? 1 : 0);
    if (has_row && !AppendRow(&payload, r.row)) {
      return Status::InvalidArgument(
          "result row overflows the wire format (column count or "
          "string length)");
    }
  }
  AppendFrameHeader(out, FrameType::kResponse, request_id, payload.size());
  out->append(payload);
  return Status::OK();
}

void AppendBusyFrame(uint64_t request_id, std::string* out) {
  AppendFrameHeader(out, FrameType::kBusy, request_id, 0);
}

// ---- Payload decoders -------------------------------------------------------

Result<RequestBatch> DecodeRequestPayload(const char* data, size_t len) {
  Reader r(data, len);
  const uint32_t count = r.U32();
  if (r.failed()) {
    return Status::InvalidArgument("request frame: truncated payload");
  }
  // The count comes straight off the wire — validate it against the bytes
  // actually present before reserving, or a 20-byte frame claiming 2^32-1
  // requests drives a multi-GB allocation. Each request encodes to at least
  // 9 bytes (u8 kind + u64 id).
  constexpr size_t kMinRequestBytes = 9;
  if (count > (len - 4) / kMinRequestBytes) {
    return Status::InvalidArgument(
        "request frame: count " + std::to_string(count) +
        " cannot fit in a " + std::to_string(len) + "-byte payload");
  }
  RequestBatch batch;
  batch.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Request req;
    const uint8_t kind = r.U8();
    if (kind > static_cast<uint8_t>(RequestKind::kDelete)) {
      return Status::InvalidArgument("request frame: unknown request kind " +
                                     std::to_string(kind));
    }
    req.kind = static_cast<RequestKind>(kind);
    req.id = r.U64();
    switch (req.kind) {
      case RequestKind::kInsert:
      case RequestKind::kUpdate:
        if (!ReadRow(&r, &req.row)) {
          return Status::InvalidArgument("request frame: malformed row");
        }
        break;
      case RequestKind::kGetProjected: {
        const uint16_t n = r.U16();
        req.projection.reserve(n);
        for (uint16_t c = 0; c < n; ++c) req.projection.push_back(r.U16());
        break;
      }
      case RequestKind::kGet:
      case RequestKind::kDelete:
        break;
    }
    if (r.failed()) {
      return Status::InvalidArgument("request frame: truncated payload");
    }
    batch.push_back(std::move(req));
  }
  if (r.failed()) {
    return Status::InvalidArgument("request frame: truncated payload");
  }
  if (!r.exhausted()) {
    return Status::InvalidArgument("request frame: trailing bytes");
  }
  return batch;
}

Result<BatchResult> DecodeResponsePayload(const char* data, size_t len) {
  Reader r(data, len);
  const uint32_t count = r.U32();
  if (r.failed()) {
    return Status::InvalidArgument("response frame: truncated payload");
  }
  // Same wire-controlled-count guard as DecodeRequestPayload. Each result
  // encodes to at least 8 bytes (u8 code + u16 msg_len + u32 shard +
  // u8 has_row).
  constexpr size_t kMinResultBytes = 8;
  if (count > (len - 4) / kMinResultBytes) {
    return Status::InvalidArgument(
        "response frame: count " + std::to_string(count) +
        " cannot fit in a " + std::to_string(len) + "-byte payload");
  }
  BatchResult result;
  result.results.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    RequestResult rr;
    const uint8_t code = r.U8();
    if (code > static_cast<uint8_t>(StatusCode::kResourceExhausted)) {
      return Status::InvalidArgument("response frame: unknown status code " +
                                     std::to_string(code));
    }
    const uint16_t msg_len = r.U16();
    std::string msg = r.Bytes(msg_len);
    rr.status = Status(static_cast<StatusCode>(code), std::move(msg));
    rr.shard = r.U32();
    if (r.U8() != 0 && !ReadRow(&r, &rr.row)) {
      return Status::InvalidArgument("response frame: malformed row");
    }
    if (r.failed()) {
      return Status::InvalidArgument("response frame: truncated payload");
    }
    result.results.push_back(std::move(rr));
  }
  if (r.failed()) {
    return Status::InvalidArgument("response frame: truncated payload");
  }
  if (!r.exhausted()) {
    return Status::InvalidArgument("response frame: trailing bytes");
  }
  return result;
}

// ---- Streaming decoder ------------------------------------------------------

void FrameDecoder::Append(const char* data, size_t len) {
  if (failed_) return;  // poisoned; connection is being torn down anyway
  // Compact once the consumed prefix dominates, so a long-lived connection
  // does not grow its buffer without bound.
  if (pos_ > 0 && (pos_ >= buf_.size() || pos_ > (64u << 10))) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data, len);
}

FrameDecoder::Next FrameDecoder::Pop(Frame* out) {
  if (failed_) return Next::kError;
  const size_t avail = buf_.size() - pos_;
  if (avail < kFrameHeaderBytes) return Next::kNeedMore;
  const char* h = buf_.data() + pos_;
  const uint32_t payload_len = DecodeFixed32(h);
  const uint8_t type = static_cast<uint8_t>(h[4]);
  if (type < static_cast<uint8_t>(FrameType::kRequest) ||
      type > static_cast<uint8_t>(FrameType::kBusy)) {
    failed_ = true;
    error_ = "unknown frame type " + std::to_string(type);
    return Next::kError;
  }
  if (payload_len > max_payload_) {
    failed_ = true;
    error_ = "frame payload length " + std::to_string(payload_len) +
             " exceeds cap " + std::to_string(max_payload_);
    return Next::kError;
  }
  if (avail < kFrameHeaderBytes + payload_len) return Next::kNeedMore;
  out->type = static_cast<FrameType>(type);
  out->request_id = DecodeFixed64(h + 8);
  out->payload.assign(h + kFrameHeaderBytes, payload_len);
  pos_ += kFrameHeaderBytes + payload_len;
  return Next::kFrame;
}

}  // namespace nblb::net
