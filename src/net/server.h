// NetServer: the network serving front end — a nonblocking event-loop TCP
// server that owns client connections, reassembles the length-prefixed
// binary framing (net/wire.h), feeds decoded RequestBatches into
// ShardedEngine::Submit, and writes responses from completion callbacks
// without ever blocking the loop.
//
// Threading model (see src/net/README.md for the long version):
//
//   loop thread (one)                     completion threads (engine's)
//   ─────────────────                     ────────────────────────────
//   accept / recv / send                  engine ran the batch:
//   decode frames                           encode response frame
//   admission control                       append to conn output queue
//   engine->Submit(batch, cb) ──────────▶   wake loop (eventfd)
//   drain woken conns' output  ◀──────────
//   to their sockets
//
// The loop thread is the only thread that touches sockets; completion
// threads only encode (CPU work off the loop) and append to a per-connection
// output queue under a small mutex. That single-writer discipline is what
// keeps the loop non-blocking and the whole structure TSan-clean.
//
// Two loop backends behind one connection state machine, selected with the
// same probe-then-degrade discipline as storage/io_ring.*:
//   - epoll (baseline): level-triggered, nonblocking fds, EPOLLOUT armed
//     only while a connection has queued output.
//   - io_uring (where available): one-shot ACCEPT/RECV/SEND ops re-armed on
//     completion, the wake eventfd read through the ring. Used when the
//     ring can be created AND a loopback RECV probe succeeds (socket ops
//     need kernel >= 5.6; seccomp and the io_uring_disabled sysctl are also
//     common). NBLB_IO_BACKEND=threads forces epoll without a rebuild —
//     CI's fallback legs exercise exactly that path.
//
// Admission control: two in-flight caps — per-connection and global — bound
// how many decoded frames may sit in the engine at once. A frame over
// either cap is shed immediately with a busy reply (FrameType::kBusy): the
// client sees an explicit kBusy instead of unbounded queueing, and the
// engine's own max_queue_depth/busy_fail_fast backstop turns shard-queue
// overflow into per-request kBusy statuses. Pair the server with a
// fail-fast engine: with the blocking backpressure policy a full shard
// queue would block the loop thread inside Submit.

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "net/wire.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "shard/sharded_engine.h"
#include "storage/disk_manager.h"
#include "storage/io_ring.h"

namespace nblb::net {

/// \brief Server configuration.
struct NetServerOptions {
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// Bind address. The default serves loopback only — benches and tests;
  /// bind 0.0.0.0 explicitly to serve real traffic.
  std::string bind_address = "127.0.0.1";
  int listen_backlog = 128;
  /// Loop backend: kAuto probes io_uring (ring creation + a loopback RECV)
  /// and falls back to epoll; kThreads forces epoll; kUring insists on
  /// io_uring but still degrades with a warning when the probe fails.
  /// NBLB_IO_BACKEND=threads|uring|auto in the environment overrides this,
  /// exactly like DiskManager.
  IoBackend io_backend = IoBackend::kAuto;
  /// io_uring submission-queue entries (uring backend only). Bounds the
  /// accepted-connection count to roughly (entries - 8) / 2, since every
  /// live connection keeps one RECV and at most one SEND in flight.
  unsigned io_queue_depth = 256;
  /// Frames decoded but not yet answered, per connection. 0 = unlimited.
  size_t max_inflight_per_conn = 64;
  /// Frames decoded but not yet answered, across all connections. 0 derives
  /// a cap from the engine: num_shards * max_queue_depth when the engine
  /// bounds its queues (the shed point then sits exactly where the engine
  /// would start failing batches), else 1024.
  size_t max_inflight_global = 0;
  /// Per-frame payload cap handed to each connection's FrameDecoder.
  size_t max_frame_payload = kDefaultMaxFramePayload;
  /// recv() chunk size per readiness event.
  size_t recv_chunk_bytes = 64 * 1024;
  /// Idle-connection reaping: a connection with no socket activity (no
  /// bytes in or out), no in-flight engine batches, and no queued output
  /// for longer than this is closed by a periodic sweep — an abandoned
  /// client cannot pin a connection slot (and, on the uring backend, its
  /// two ring entries) forever. 0 (default) disables the sweep.
  uint64_t idle_timeout_ms = 0;
};

/// \brief Relaxed-atomic serving counters (same memory-ordering rationale as
/// shard_stats.h), published to the registry under "net.*".
struct NetStatsSnapshot {
  uint64_t accepts = 0;
  uint64_t closes = 0;        ///< connections fully closed
  uint64_t frames_in = 0;     ///< request frames decoded
  uint64_t frames_out = 0;    ///< response + busy frames queued
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t decode_errors = 0; ///< protocol violations (connection closed)
  uint64_t busy_shed = 0;     ///< frames shed by admission control
  uint64_t responses = 0;     ///< engine completions answered
  uint64_t idle_closed = 0;   ///< connections reaped by the idle sweep
};

/// \brief Owns the listening socket, the loop thread, and every connection.
class NetServer {
 public:
  /// \brief Binds, listens, resolves the loop backend, and starts the loop
  /// thread. The engine must outlive the server.
  static Result<std::unique_ptr<NetServer>> Start(NetServerOptions options,
                                                  ShardedEngine* engine);

  /// \brief Stops accepting, waits for every in-flight engine batch to
  /// complete, then joins the loop thread and closes all sockets.
  ~NetServer();
  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// \brief The bound TCP port (useful with options.port == 0).
  uint16_t port() const { return port_; }

  /// \brief Loop backend actually in use after probing.
  IoBackend backend_in_use() const { return backend_in_use_; }

  NetStatsSnapshot stats() const;
  size_t open_connections() const {
    return open_conns_.load(std::memory_order_relaxed);
  }
  size_t inflight() const {
    return inflight_global_.load(std::memory_order_relaxed);
  }

  /// \brief One merged snapshot: this server's "net.*" metrics plus the
  /// engine's full document (engine./trace./shard<i>.*) — the whole serving
  /// stack, sockets to device, in one place.
  MetricsSnapshot MetricsSnapshotNow() const;
  std::string DumpMetrics() const { return MetricsSnapshotNow().ToJson(); }

 private:
  /// Per-connection state. Sockets are touched only by the loop thread;
  /// completion threads reach `out_mu`-guarded output state and the atomics.
  struct Conn {
    uint64_t id = 0;
    int fd = -1;
    FrameDecoder decoder;
    /// Frames submitted to the engine and not yet answered.
    std::atomic<uint32_t> inflight{0};
    /// Set by the loop when the connection dies; completion callbacks then
    /// drop their responses instead of queueing output.
    std::atomic<bool> closed{false};

    std::mutex out_mu;
    std::deque<std::string> outq;  // encoded frames awaiting send
    size_t out_off = 0;            // sent prefix of outq.front()

    // Loop-private per-backend state.
    bool want_write = false;   // epoll: EPOLLOUT armed
    bool recv_pending = false; // uring: RECV op in flight
    bool send_pending = false; // uring: SEND op in flight
    bool closing = false;      // uring: shutdown issued, draining ops
    std::vector<char> rchunk;  // recv buffer (uring: op target, keep stable)
    std::string sending;       // uring: buffer owned by the in-flight SEND
    /// Last socket activity (accept, bytes received, bytes sent). Loop
    /// thread only — the idle sweep runs on the same thread.
    std::chrono::steady_clock::time_point last_activity;

    explicit Conn(size_t max_payload) : decoder(max_payload) {}
  };
  using ConnPtr = std::shared_ptr<Conn>;

  NetServer() = default;

  Status Listen();
  void ResolveBackend();
  void LoopMain();

  // Shared connection state machine (both backends).
  void HandleAccepted(int fd);
  /// Decodes and dispatches every complete frame buffered on `conn`;
  /// returns false when the connection must be closed (protocol error).
  bool ProcessFrames(const ConnPtr& conn);
  /// Admission + decode + Submit for one request frame; false on a
  /// malformed payload (close the connection).
  bool HandleRequestFrame(const ConnPtr& conn, Frame&& frame);
  /// Loop-thread side: appends an encoded frame and starts sending now.
  void EnqueueLoopSide(const ConnPtr& conn, std::string frame_bytes);
  /// Completion-thread side: appends an encoded frame and wakes the loop.
  void QueueOutput(const ConnPtr& conn, std::string frame_bytes);
  void WakeLoop();

  // epoll backend.
  void EpollLoop();
  void EpollAcceptReady();
  void EpollReadReady(const ConnPtr& conn);
  /// Sends queued output until empty or EAGAIN; arms/disarms EPOLLOUT.
  void EpollFlushConn(const ConnPtr& conn);
  void EpollCloseConn(const ConnPtr& conn);
  void EpollUpdateInterest(const ConnPtr& conn);

  // io_uring backend.
  void UringLoop();
  void UringArmRecv(const ConnPtr& conn);
  void UringStartSend(const ConnPtr& conn);
  void UringCloseConn(const ConnPtr& conn);
  /// Close finishes once no ops reference the conn's buffers.
  void UringReapConnIfDone(const ConnPtr& conn);
  bool UringPush(const std::function<bool()>& push);

  /// Drains the wake eventfd and flushes every connection the completion
  /// threads marked as having fresh output.
  void DrainPendingWrites();

  /// Closes every connection idle longer than idle_timeout_ms (no socket
  /// activity, nothing in flight, nothing queued). Runs on the loop thread
  /// — via the epoll_wait timeout or the uring timerfd tick.
  void SweepIdleConns();

  NetServerOptions options_;
  ShardedEngine* engine_ = nullptr;
  IoBackend backend_in_use_ = IoBackend::kThreads;  // kThreads == epoll here
  size_t global_cap_ = 0;

  int listen_fd_ = -1;
  int wake_fd_ = -1;  // eventfd
  int epoll_fd_ = -1;
  uint16_t port_ = 0;
  std::unique_ptr<IoRing> ring_;
  uint64_t wake_buf_ = 0;          // uring: eventfd read target
  struct iovec wake_iov_ {};       // uring: stable iovec for the eventfd read
  bool accept_pending_ = false;    // uring: ACCEPT op in flight
  bool wake_pending_ = false;      // uring: eventfd read in flight
  /// Idle sweep (idle_timeout_ms > 0): cadence, next-due stamp (epoll), and
  /// the periodic timerfd read through the ring (uring). Loop thread only.
  uint64_t sweep_interval_ms_ = 0;
  std::chrono::steady_clock::time_point next_sweep_{};
  int timer_fd_ = -1;
  uint64_t timer_buf_ = 0;
  struct iovec timer_iov_ {};
  bool timer_pending_ = false;

  std::thread loop_thread_;
  std::atomic<bool> stopping_{false};

  uint64_t next_conn_id_ = 1;                    // loop-private
  std::unordered_map<uint64_t, ConnPtr> conns_;  // loop-private

  /// Connections with fresh completion output, awaiting a loop flush.
  std::mutex pending_mu_;
  std::vector<ConnPtr> pending_writes_;

  std::atomic<size_t> open_conns_{0};
  std::atomic<size_t> inflight_global_{0};
  std::mutex drain_mu_;              // ~NetServer waits for inflight == 0
  std::condition_variable drain_cv_;

  // net.* counters (relaxed atomics; registry holds pointers only).
  std::atomic<uint64_t> accepts_{0};
  std::atomic<uint64_t> closes_{0};
  std::atomic<uint64_t> frames_in_{0};
  std::atomic<uint64_t> frames_out_{0};
  std::atomic<uint64_t> bytes_in_{0};
  std::atomic<uint64_t> bytes_out_{0};
  std::atomic<uint64_t> decode_errors_{0};
  std::atomic<uint64_t> busy_shed_{0};
  std::atomic<uint64_t> responses_{0};
  std::atomic<uint64_t> idle_closed_{0};
  /// Decode-to-response-queued latency of every answered frame.
  LogHistogram reply_latency_us_;
  /// Requests per decoded frame.
  LogHistogram request_batch_size_;
  /// Declared after the counters it points into (destroyed first).
  std::unique_ptr<MetricsRegistry> metrics_;
};

}  // namespace nblb::net
