// NetClient: a small blocking client for the NetServer wire protocol.
//
// One TCP connection, pipelined: Send() writes a request frame and returns
// its request id immediately, Wait(id) reads frames until that id's
// response arrives. Responses may complete out of order on the wire (the
// engine's completion threads finish batches in any order); Wait buffers
// whatever else arrives and hands it out when its id is asked for. Call()
// is the synchronous convenience (Send + Wait).
//
// A busy frame (the server's admission-control shed, FrameType::kBusy) is
// surfaced as a normal BatchResult whose every request carries
// Status::Busy — callers see exactly the same shape as engine-side
// fail-fast rejection, just decided one layer earlier.
//
// Not thread safe: one NetClient per thread (the bench drives N connections
// with N threads). The socket is blocking; Wait blocks until the response
// (or a transport error) arrives.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "net/wire.h"
#include "shard/request.h"

namespace nblb::net {

class NetClient {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    /// Frame payload cap for the response decoder.
    size_t max_frame_payload = kDefaultMaxFramePayload;
  };

  static Result<std::unique_ptr<NetClient>> Connect(const Options& options);

  ~NetClient();
  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// \brief Encodes and writes one request frame; returns its request id.
  /// Does not wait for the response — pipeline by sending several, then
  /// Wait() for each.
  Result<uint64_t> Send(const RequestBatch& batch);

  /// \brief Blocks until `request_id`'s response (or busy) frame arrives,
  /// buffering any other responses that arrive first. Each id can be waited
  /// on once.
  Result<BatchResult> Wait(uint64_t request_id);

  /// \brief Send + Wait.
  Result<BatchResult> Call(const RequestBatch& batch);

  /// \brief Writes raw bytes to the socket — protocol-robustness tests use
  /// this to feed the server torn frames and garbage.
  Status SendRaw(const void* data, size_t len);

  /// \brief Number of sent-but-not-yet-waited requests.
  size_t outstanding() const { return pending_sizes_.size(); }

  int fd() const { return fd_; }

 private:
  NetClient() = default;

  int fd_ = -1;
  uint64_t next_id_ = 1;
  FrameDecoder decoder_{kDefaultMaxFramePayload};
  std::vector<char> rbuf_;
  /// Request id -> batch size, for synthesizing busy results.
  std::unordered_map<uint64_t, size_t> pending_sizes_;
  /// Responses that arrived while waiting for a different id.
  std::unordered_map<uint64_t, BatchResult> ready_;
};

}  // namespace nblb::net
