// MetricsRegistry: one named catalogue over the engine's hand-rolled stats.
//
// Design: components keep owning their counters as plain relaxed atomics —
// the update path stays exactly as cheap as before (one relaxed fetch_add,
// no indirection, no locks). The registry only stores *pointers* (or reader
// callbacks) under stable dotted names, so registration is a one-time,
// mutex-guarded step at component construction and the hot path never sees
// the registry at all.
//
// Snapshot model: `Snapshot()` walks the catalogue and copies every value
// into a plain-data `MetricsSnapshot`. Snapshots subtract (`operator-`) to
// isolate a measurement phase, merge under a prefix (for the engine to fold
// per-shard Database registries into one document), and serialize to a
// single JSON document consumed by the benches and
// scripts/check_bench_regression.py.
//
// Lifetime rule: a registry must not outlive the objects whose counters it
// points at. Database and ShardedEngine own their registries alongside the
// components registered into them and never snapshot during destruction.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/histogram.h"

namespace nblb {

/// \brief Global observability kill switch: false when NBLB_OBS_OFF is set
/// to a non-empty, non-"0" value in the environment (checked once). Gates
/// trace sampling and flight recording; the metrics registry itself stays on
/// (its cost is registration-time only).
bool ObsEnabled();

/// \brief Plain-data copy of every registered metric at one point in time.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, LogHistogramSnapshot> histograms;

  /// \brief Subtracts an earlier snapshot counter-by-counter (gauges keep
  /// this snapshot's value — they are levels, not monotonic totals).
  MetricsSnapshot& operator-=(const MetricsSnapshot& earlier);
  friend MetricsSnapshot operator-(MetricsSnapshot later,
                                   const MetricsSnapshot& earlier) {
    later -= earlier;
    return later;
  }

  /// \brief Folds `other` into this snapshot with every name prefixed, e.g.
  /// Merge(shard_db_snapshot, "shard3.") yields "shard3.disk.reads".
  void Merge(const MetricsSnapshot& other, const std::string& prefix);

  /// \brief One structured JSON document:
  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,p50,p90,
  /// p99,max,buckets:[...]}}}
  std::string ToJson() const;
};

/// \brief Named catalogue of counters, gauges, and histograms. Registration
/// is mutex-guarded; reads (Snapshot) are mutex-guarded; metric *updates*
/// never touch the registry.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// \brief Registers a monotonic counter read directly from `counter`
  /// (relaxed load at snapshot time). `counter` must outlive the registry.
  void RegisterCounter(std::string name, const std::atomic<uint64_t>* counter);

  /// \brief Registers a monotonic counter computed by `read` at snapshot
  /// time (for values aggregated across stripes/threads).
  void RegisterCounterFn(std::string name, std::function<uint64_t()> read);

  /// \brief Registers a point-in-time level (ratio, occupancy, ...).
  void RegisterGauge(std::string name, std::function<double()> read);

  /// \brief Registers a live LogHistogram; snapshot copies its buckets.
  void RegisterHistogram(std::string name, const LogHistogram* hist);

  MetricsSnapshot Snapshot() const;

 private:
  struct CounterEntry {
    std::string name;
    const std::atomic<uint64_t>* direct = nullptr;  // exactly one of
    std::function<uint64_t()> read;                 // these two is set
  };
  struct GaugeEntry {
    std::string name;
    std::function<double()> read;
  };
  struct HistEntry {
    std::string name;
    const LogHistogram* hist;
  };

  mutable std::mutex mu_;
  std::vector<CounterEntry> counters_;
  std::vector<GaugeEntry> gauges_;
  std::vector<HistEntry> hists_;
};

}  // namespace nblb
