#include "obs/trace.h"

#include "obs/metrics.h"

namespace nblb {

const char* TracePhaseName(TracePhase p) {
  switch (p) {
    case TracePhase::kQueueWait:
      return "queue_wait";
    case TracePhase::kService:
      return "service";
    case TracePhase::kGetBatch:
      return "get_batch";
    case TracePhase::kFetchStart:
      return "fetch_start";
    case TracePhase::kIoSubmit:
      return "io_submit";
    case TracePhase::kDeviceWait:
      return "device_wait";
    case TracePhase::kCopy:
      return "copy";
    case TracePhase::kCompletion:
      return "completion";
  }
  return "unknown";
}

TraceContext*& ActiveTrace() {
  thread_local TraceContext* active = nullptr;
  return active;
}

void TraceAggregator::Retire(const TraceContext& ctx,
                             std::chrono::steady_clock::time_point end) {
  sampled_.fetch_add(1, std::memory_order_relaxed);
  TraceSummary summary;
  summary.trace_id = ctx.trace_id;
  for (size_t i = 0; i < kNumTracePhases; ++i) {
    summary.first_start_ns[i] = ctx.first_start_ns[i];
    summary.total_ns[i] = ctx.total_ns[i];
    if (ctx.first_start_ns[i] != UINT64_MAX) {
      phase_us_[i].Record(ctx.total_ns[i] / 1000);
    }
  }
  const auto e2e = std::chrono::duration_cast<std::chrono::microseconds>(
                       end - ctx.enqueued)
                       .count();
  summary.end_to_end_us = e2e > 0 ? static_cast<uint64_t>(e2e) : 0;
  end_to_end_us_.Record(summary.end_to_end_us);

  std::lock_guard<std::mutex> lock(mu_);
  recent_[recent_count_ % kRecent] = summary;
  ++recent_count_;
}

void TraceAggregator::RecordCompletion(uint64_t us) {
  phase_us_[static_cast<size_t>(TracePhase::kCompletion)].Record(us);
}

void TraceAggregator::RegisterMetrics(MetricsRegistry* registry,
                                      const std::string& prefix) {
  registry->RegisterCounter(prefix + "sampled", &sampled_);
  registry->RegisterHistogram(prefix + "end_to_end_us", &end_to_end_us_);
  for (size_t i = 0; i < kNumTracePhases; ++i) {
    registry->RegisterHistogram(
        prefix + TracePhaseName(static_cast<TracePhase>(i)) + "_us",
        &phase_us_[i]);
  }
}

std::vector<TraceSummary> TraceAggregator::Recent() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceSummary> out;
  const size_t n = recent_count_ < kRecent ? recent_count_ : kRecent;
  out.reserve(n);
  const size_t start = recent_count_ - n;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(recent_[(start + i) % kRecent]);
  }
  return out;
}

}  // namespace nblb
