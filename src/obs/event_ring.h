// Flight recorder: fixed-size per-thread lock-free rings of compact binary
// events, dumpable on demand or on fatal error (via the common/logging.h
// fatal hook).
//
// The recorder captures the *rare* paths — transient aborts, retries,
// capacity waits, busy rejections, flusher passes, io errors — so that the
// next "bench hangs" or phantom-status bug is diagnosed from the recording
// instead of rediscovered by bisection. Hot paths (buffer-pool hits, queue
// pops) are never recorded.
//
// Concurrency model:
//   - Writer side: each thread owns one EventRing; Record() is a handful of
//     relaxed/release atomic stores into the thread's own ring. No locks, no
//     allocation after the first event on a thread, no cross-thread
//     contention.
//   - Reader side (Dump/Snapshot): any thread may read any ring while its
//     owner keeps writing. Every slot carries a sequence word written
//     release *after* the payload; a reader validates the sequence before
//     and after reading the payload (seqlock) and drops slots that were
//     overwritten mid-read. All cross-thread words are std::atomic, so the
//     scheme is TSan-clean by construction.
//   - Rings are registered in a global list as shared_ptr and survive their
//     owning thread's exit, so a dump always sees the full recent history.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace nblb {

/// \brief Event codes recorded by the serving stack. Keep values stable —
/// they appear in dumps.
enum class FlightEvent : uint16_t {
  kNone = 0,
  /// Buffer pool aborted a claimed frame because a chunk's fetch could not
  /// be assembled (transient; waiters see retryable ResourceExhausted).
  /// arg0 = page id.
  kTransientAbort = 1,
  /// WaitForLoad observed a transiently aborted frame and returned the
  /// retryable status to its caller. arg0 = page id.
  kTransientWait = 2,
  /// HeapFile::GetBatch halved its pipeline chunk size after a capacity
  /// miss. arg0 = new chunk capacity.
  kChunkHalve = 3,
  /// HeapFile::GetBatch exhausted chunk halving and yielded before
  /// retrying at chunk size 1. arg0 = retry attempt.
  kChunkRetry = 4,
  /// B+Tree yielded and retried a single-page FetchPage that returned
  /// retryable ResourceExhausted. arg0 = page id, arg1 = retry attempt.
  kBtreeRetry = 5,
  /// Engine Submit blocked waiting for shard-queue capacity.
  /// arg0 = shard, arg1 = queue size at wait.
  kCapacityWait = 6,
  /// Engine Submit failed a batch fail-fast because a shard queue was
  /// full (busy_fail_fast mode). arg0 = shard, arg1 = queue size.
  kBusyReject = 7,
  /// Background flusher completed a pass. arg0 = pages flushed,
  /// arg1 = coalesced runs.
  kFlusherPass = 8,
  /// An async disk operation completed with an error. arg0 = page id.
  kIoError = 9,
  /// Write-back failed and the pages were re-marked dirty for retry.
  /// arg0 = pages re-dirtied.
  kRedirty = 10,
  /// Network admission control shed a request frame with a busy reply
  /// (per-connection or global in-flight cap). arg0 = connection id,
  /// arg1 = in-flight frames at shed time.
  kNetShed = 11,
  /// A connection's byte stream violated the framing protocol (garbage,
  /// oversized length prefix, malformed payload); the connection was
  /// closed. arg0 = connection id.
  kNetDecodeError = 12,
  /// The idle sweep closed a connection that had been quiet past
  /// idle_timeout_ms. arg0 = connection id, arg1 = idle milliseconds.
  kNetIdleClose = 13,
  /// A WAL commit failed to make a group durable; the log is poisoned
  /// until reopen. arg0 = first log page of the commit, arg1 = pending
  /// bytes in the failed group.
  kWalAppendError = 14,
  /// Shard::Open entered crash recovery (superblock says the shutdown was
  /// not clean). arg0 = shard id, arg1 = checkpoint LSN.
  kRecoveryStart = 15,
  /// Crash recovery finished. arg0 = WAL records replayed, arg1 = rows
  /// live after recovery.
  kRecoveryReplayed = 16,
  /// A durable checkpoint published a new superblock version.
  /// arg0 = superblock version, arg1 = checkpoint LSN.
  kCheckpoint = 17,
};

const char* FlightEventName(FlightEvent e);

/// \brief Decoded event, as returned by snapshots/dumps.
struct FlightEventRecord {
  uint64_t seq = 0;       // global per-ring sequence (monotonic)
  uint64_t ts_us = 0;     // microseconds since process start
  FlightEvent code = FlightEvent::kNone;
  uint64_t arg0 = 0;
  uint64_t arg1 = 0;
};

/// \brief Fixed-size single-writer ring of events. All cross-thread state is
/// atomic; see file comment for the seqlock protocol.
class EventRing {
 public:
  static constexpr size_t kSlots = 256;  // power of two
  static constexpr uint64_t kSlotMask = kSlots - 1;

  /// \brief Writer-only: records one event. Must be called only by the
  /// owning thread.
  void Record(FlightEvent code, uint64_t arg0, uint64_t arg1, uint64_t ts_us);

  /// \brief Reader: copies out the surviving recent events, oldest first.
  /// Slots overwritten while being read are skipped.
  std::vector<FlightEventRecord> Snapshot() const;

 private:
  struct Slot {
    // seq == global_index + 1 once the payload below is fully written;
    // 0 while a write is in flight. Payload stores are relaxed, bracketed
    // by release stores of seq (invalidate, then publish).
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> ts_us{0};
    std::atomic<uint64_t> code{0};
    std::atomic<uint64_t> arg0{0};
    std::atomic<uint64_t> arg1{0};
  };

  Slot slots_[kSlots];
  uint64_t next_ = 0;              // writer-private
  std::atomic<uint64_t> head_{0};  // published count, for readers
};

/// \brief Process-wide recorder: hands each thread its own EventRing and
/// dumps them all on demand. Disabled entirely (every Record is one relaxed
/// load + branch) when NBLB_OBS_OFF is set.
class FlightRecorder {
 public:
  static FlightRecorder& Instance();

  /// \brief Records an event into the calling thread's ring (creating and
  /// registering the ring on first use). No-op when disabled.
  void Record(FlightEvent code, uint64_t arg0 = 0, uint64_t arg1 = 0);

  /// \brief All surviving events across all rings, per ring oldest-first.
  std::vector<std::vector<FlightEventRecord>> SnapshotAll() const;

  /// \brief Human-readable dump of every ring ("[ring 0] +12034us
  /// transient_abort page=77 arg1=0" style), for on-demand diagnosis and
  /// the fatal-error hook.
  std::string Dump() const;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// \brief Number of per-thread rings registered so far.
  size_t ring_count() const;

 private:
  FlightRecorder();

  EventRing* RingForThisThread();
  uint64_t NowMicros() const;

  std::atomic<bool> enabled_{true};
  std::chrono::steady_clock::time_point origin_;

  mutable std::mutex mu_;
  std::vector<std::shared_ptr<EventRing>> rings_;
};

/// \brief Convenience wrapper: FlightRecorder::Instance().Record(...).
inline void RecordFlightEvent(FlightEvent code, uint64_t arg0 = 0,
                              uint64_t arg1 = 0) {
  FlightRecorder::Instance().Record(code, arg0, arg1);
}

}  // namespace nblb
