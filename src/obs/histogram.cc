#include "obs/histogram.h"

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "common/logging.h"

namespace nblb {

uint64_t Histogram::sum() const {
  return std::accumulate(samples_.begin(), samples_.end(), uint64_t{0});
}

double Histogram::Mean() const {
  if (samples_.empty()) return 0;
  return static_cast<double>(sum()) / static_cast<double>(samples_.size());
}

uint64_t Histogram::Min() const {
  if (samples_.empty()) return 0;
  return *std::min_element(samples_.begin(), samples_.end());
}

uint64_t Histogram::Max() const {
  if (samples_.empty()) return 0;
  return *std::max_element(samples_.begin(), samples_.end());
}

void Histogram::EnsureSorted() const {
  if (sorted_valid_ && sorted_.size() == samples_.size()) return;
  sorted_ = samples_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

uint64_t Histogram::Percentile(double p) const {
  if (samples_.empty()) return 0;
  NBLB_CHECK(p >= 0 && p <= 100);
  EnsureSorted();
  const size_t rank = static_cast<size_t>(
      p / 100.0 * static_cast<double>(sorted_.size() - 1) + 0.5);
  return sorted_[std::min(rank, sorted_.size() - 1)];
}

std::string Histogram::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "count=%zu mean=%.1f p50=%llu p90=%llu p99=%llu max=%llu",
                count(), Mean(),
                static_cast<unsigned long long>(Percentile(50)),
                static_cast<unsigned long long>(Percentile(90)),
                static_cast<unsigned long long>(Percentile(99)),
                static_cast<unsigned long long>(Max()));
  return buf;
}

}  // namespace nblb
