#include "obs/event_ring.h"

#include <cstdio>

#include "common/logging.h"
#include "obs/metrics.h"

namespace nblb {

const char* FlightEventName(FlightEvent e) {
  switch (e) {
    case FlightEvent::kNone:
      return "none";
    case FlightEvent::kTransientAbort:
      return "transient_abort";
    case FlightEvent::kTransientWait:
      return "transient_wait";
    case FlightEvent::kChunkHalve:
      return "chunk_halve";
    case FlightEvent::kChunkRetry:
      return "chunk_retry";
    case FlightEvent::kBtreeRetry:
      return "btree_retry";
    case FlightEvent::kCapacityWait:
      return "capacity_wait";
    case FlightEvent::kBusyReject:
      return "busy_reject";
    case FlightEvent::kFlusherPass:
      return "flusher_pass";
    case FlightEvent::kIoError:
      return "io_error";
    case FlightEvent::kRedirty:
      return "redirty";
    case FlightEvent::kNetShed:
      return "net_shed";
    case FlightEvent::kNetDecodeError:
      return "net_decode_error";
    case FlightEvent::kNetIdleClose:
      return "net_idle_close";
    case FlightEvent::kWalAppendError:
      return "wal_append_error";
    case FlightEvent::kRecoveryStart:
      return "recovery_start";
    case FlightEvent::kRecoveryReplayed:
      return "recovery_replayed";
    case FlightEvent::kCheckpoint:
      return "checkpoint";
  }
  return "unknown";
}

void EventRing::Record(FlightEvent code, uint64_t arg0, uint64_t arg1,
                       uint64_t ts_us) {
  const uint64_t n = next_++;
  Slot& s = slots_[n & kSlotMask];
  // Invalidate the slot first so a concurrent reader that saw the old seq
  // cannot validate a half-overwritten payload, then publish with the new
  // seq (release pairs with the reader's acquire loads).
  s.seq.store(0, std::memory_order_release);
  s.ts_us.store(ts_us, std::memory_order_relaxed);
  s.code.store(static_cast<uint64_t>(code), std::memory_order_relaxed);
  s.arg0.store(arg0, std::memory_order_relaxed);
  s.arg1.store(arg1, std::memory_order_relaxed);
  s.seq.store(n + 1, std::memory_order_release);
  head_.store(n + 1, std::memory_order_release);
}

std::vector<FlightEventRecord> EventRing::Snapshot() const {
  std::vector<FlightEventRecord> out;
  const uint64_t head = head_.load(std::memory_order_acquire);
  const uint64_t begin = head > kSlots ? head - kSlots : 0;
  out.reserve(head - begin);
  for (uint64_t i = begin; i < head; ++i) {
    const Slot& s = slots_[i & kSlotMask];
    if (s.seq.load(std::memory_order_acquire) != i + 1) continue;
    FlightEventRecord rec;
    rec.seq = i;
    rec.ts_us = s.ts_us.load(std::memory_order_relaxed);
    rec.code = static_cast<FlightEvent>(s.code.load(std::memory_order_relaxed));
    rec.arg0 = s.arg0.load(std::memory_order_relaxed);
    rec.arg1 = s.arg1.load(std::memory_order_relaxed);
    // Re-validate: if the writer lapped us mid-read the payload above may
    // be torn — drop it. The fence orders the payload loads before the
    // second seq load.
    std::atomic_thread_fence(std::memory_order_acquire);
    if (s.seq.load(std::memory_order_relaxed) != i + 1) continue;
    out.push_back(rec);
  }
  return out;
}

FlightRecorder& FlightRecorder::Instance() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

namespace {
void FlightRecorderFatalDump() {
  std::fprintf(stderr, "%s", FlightRecorder::Instance().Dump().c_str());
}
}  // namespace

FlightRecorder::FlightRecorder()
    : origin_(std::chrono::steady_clock::now()) {
  enabled_.store(ObsEnabled(), std::memory_order_relaxed);
  SetFatalHook(&FlightRecorderFatalDump);
}

uint64_t FlightRecorder::NowMicros() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - origin_)
          .count());
}

EventRing* FlightRecorder::RingForThisThread() {
  thread_local EventRing* tls_ring = nullptr;
  if (tls_ring == nullptr) {
    auto ring = std::make_shared<EventRing>();
    tls_ring = ring.get();
    std::lock_guard<std::mutex> lock(mu_);
    rings_.push_back(std::move(ring));  // keeps ring alive past thread exit
  }
  return tls_ring;
}

void FlightRecorder::Record(FlightEvent code, uint64_t arg0, uint64_t arg1) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  RingForThisThread()->Record(code, arg0, arg1, NowMicros());
}

std::vector<std::vector<FlightEventRecord>> FlightRecorder::SnapshotAll()
    const {
  std::vector<std::shared_ptr<EventRing>> rings;
  {
    std::lock_guard<std::mutex> lock(mu_);
    rings = rings_;
  }
  std::vector<std::vector<FlightEventRecord>> out;
  out.reserve(rings.size());
  for (const auto& ring : rings) out.push_back(ring->Snapshot());
  return out;
}

size_t FlightRecorder::ring_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rings_.size();
}

std::string FlightRecorder::Dump() const {
  const auto all = SnapshotAll();
  std::string out = "=== flight recorder dump ===\n";
  char buf[160];
  size_t ring_idx = 0;
  for (const auto& ring : all) {
    for (const auto& rec : ring) {
      std::snprintf(buf, sizeof(buf),
                    "[ring %zu] seq=%llu +%lluus %s arg0=%llu arg1=%llu\n",
                    ring_idx, static_cast<unsigned long long>(rec.seq),
                    static_cast<unsigned long long>(rec.ts_us),
                    FlightEventName(rec.code),
                    static_cast<unsigned long long>(rec.arg0),
                    static_cast<unsigned long long>(rec.arg1));
      out.append(buf);
    }
    ++ring_idx;
  }
  std::snprintf(buf, sizeof(buf), "=== %zu ring(s) ===\n", all.size());
  out.append(buf);
  return out;
}

}  // namespace nblb
