#include "obs/metrics.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"

namespace nblb {

bool ObsEnabled() {
  static const bool enabled = [] {
    const char* v = std::getenv("NBLB_OBS_OFF");
    return v == nullptr || *v == '\0' || std::strcmp(v, "0") == 0;
  }();
  return enabled;
}

MetricsSnapshot& MetricsSnapshot::operator-=(const MetricsSnapshot& earlier) {
  for (auto& [name, value] : counters) {
    auto it = earlier.counters.find(name);
    if (it != earlier.counters.end()) value -= it->second;
  }
  for (auto& [name, hist] : histograms) {
    auto it = earlier.histograms.find(name);
    if (it != earlier.histograms.end()) hist -= it->second;
  }
  return *this;
}

void MetricsSnapshot::Merge(const MetricsSnapshot& other,
                            const std::string& prefix) {
  for (const auto& [name, value] : other.counters) {
    counters[prefix + name] += value;
  }
  for (const auto& [name, value] : other.gauges) {
    gauges[prefix + name] = value;
  }
  for (const auto& [name, hist] : other.histograms) {
    histograms[prefix + name] += hist;
  }
}

namespace {

void AppendJsonKey(std::string* out, const std::string& name) {
  // Metric names are dotted identifiers (no quotes/escapes needed).
  out->push_back('"');
  out->append(name);
  out->append("\": ");
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::string out;
  out.reserve(1024 + 96 * (counters.size() + histograms.size()));
  char buf[64];

  out.append("{\"counters\": {");
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out.append(", ");
    first = false;
    AppendJsonKey(&out, name);
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(value));
    out.append(buf);
  }
  out.append("}, \"gauges\": {");
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out.append(", ");
    first = false;
    AppendJsonKey(&out, name);
    std::snprintf(buf, sizeof(buf), "%.6f", value);
    out.append(buf);
  }
  out.append("}, \"histograms\": {");
  first = true;
  for (const auto& [name, hist] : histograms) {
    if (!first) out.append(", ");
    first = false;
    AppendJsonKey(&out, name);
    std::snprintf(
        buf, sizeof(buf), "{\"count\": %llu, \"p50\": %llu, ",
        static_cast<unsigned long long>(hist.count()),
        static_cast<unsigned long long>(hist.ValueAtQuantile(0.50)));
    out.append(buf);
    std::snprintf(
        buf, sizeof(buf), "\"p90\": %llu, \"p99\": %llu, \"max\": %llu, ",
        static_cast<unsigned long long>(hist.ValueAtQuantile(0.90)),
        static_cast<unsigned long long>(hist.ValueAtQuantile(0.99)),
        static_cast<unsigned long long>(hist.ApproxMax()));
    out.append(buf);
    out.append("\"buckets\": [");
    for (size_t i = 0; i < kStatsLogBuckets; ++i) {
      if (i > 0) out.append(", ");
      std::snprintf(buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(hist.buckets[i]));
      out.append(buf);
    }
    out.append("]}");
  }
  out.append("}}");
  return out;
}

void MetricsRegistry::RegisterCounter(std::string name,
                                      const std::atomic<uint64_t>* counter) {
  NBLB_CHECK(counter != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  counters_.push_back(CounterEntry{std::move(name), counter, nullptr});
}

void MetricsRegistry::RegisterCounterFn(std::string name,
                                        std::function<uint64_t()> read) {
  NBLB_CHECK(read != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  counters_.push_back(CounterEntry{std::move(name), nullptr, std::move(read)});
}

void MetricsRegistry::RegisterGauge(std::string name,
                                    std::function<double()> read) {
  NBLB_CHECK(read != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  gauges_.push_back(GaugeEntry{std::move(name), std::move(read)});
}

void MetricsRegistry::RegisterHistogram(std::string name,
                                        const LogHistogram* hist) {
  NBLB_CHECK(hist != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  hists_.push_back(HistEntry{std::move(name), hist});
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& entry : counters_) {
    const uint64_t v = entry.direct != nullptr
                           ? entry.direct->load(std::memory_order_relaxed)
                           : entry.read();
    snap.counters[entry.name] += v;
  }
  for (const auto& entry : gauges_) {
    snap.gauges[entry.name] = entry.read();
  }
  for (const auto& entry : hists_) {
    snap.histograms[entry.name] += entry.hist->Snapshot();
  }
  return snap;
}

}  // namespace nblb
