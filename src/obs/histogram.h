// Unified histogram primitives for the observability layer.
//
// Two implementations, one quantile API (`ValueAtQuantile(q)`, q in [0, 1]):
//
//   - LogHistogram: 26 power-of-two buckets, one relaxed atomic add per
//     recorded sample. This is the always-on serving-path histogram (queue
//     depths, coalesce counts, microsecond latencies) — recording never
//     takes a lock and never allocates, and `LogHistogramSnapshot` supports
//     the registry's snapshot/delta model (+= / -=). Quantiles are bucket
//     upper bounds (within 2x of the true value).
//   - Histogram: stores raw samples and reports exact nearest-rank
//     percentiles. Benchmark/test-grade — recording allocates, so it never
//     belongs on a serving path. (Formerly common/histogram.h.)
//
// Counters use memory_order_relaxed throughout: each bucket is an
// independent monotonic event count, never used to publish other memory, so
// there is no acquire/release pairing to preserve. A Snapshot() taken while
// writers run is a consistent per-bucket view but may straddle an in-flight
// operation; totals are exact once the writers are quiesced.

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace nblb {

/// Number of power-of-two buckets in a LogHistogram. Bucket 0 holds the
/// value 0; bucket i (i >= 1) holds values in [2^(i-1), 2^i - 1]. 26 buckets
/// cover values up to ~33M — queue depths, coalesce counts, and microsecond
/// latencies up to ~33 s.
constexpr size_t kStatsLogBuckets = 26;

/// \brief Bucket index for `v` (see kStatsLogBuckets).
inline size_t StatsLogBucketOf(uint64_t v) {
  size_t b = 0;
  while (v > 0 && b + 1 < kStatsLogBuckets) {
    v >>= 1;
    ++b;
  }
  return b;
}

/// \brief Plain-value copy of a LogHistogram; aggregatable and diffable
/// (counters are monotonic, so subtracting an earlier snapshot isolates a
/// measurement phase).
struct LogHistogramSnapshot {
  std::array<uint64_t, kStatsLogBuckets> buckets{};

  uint64_t count() const {
    uint64_t n = 0;
    for (uint64_t b : buckets) n += b;
    return n;
  }

  /// \brief Samples whose bucket lower bound is >= `threshold` — i.e. a
  /// conservative count of samples known to be at least `threshold`.
  uint64_t CountAtLeast(uint64_t threshold) const {
    if (threshold == 0) return count();  // every sample is >= 0
    uint64_t n = 0;
    for (size_t i = 1; i < kStatsLogBuckets; ++i) {
      if ((uint64_t{1} << (i - 1)) >= threshold) n += buckets[i];
    }
    return n;
  }

  /// \brief Upper bound of the bucket holding quantile `q` in [0, 1]. The
  /// unified percentile-estimation entry point (see ApproxPercentile).
  uint64_t ValueAtQuantile(double q) const { return ApproxPercentile(q); }

  /// \brief Upper bound of the bucket holding percentile `p` in [0, 1].
  uint64_t ApproxPercentile(double p) const {
    const uint64_t total = count();
    if (total == 0) return 0;
    uint64_t target = static_cast<uint64_t>(p * static_cast<double>(total));
    if (target >= total) target = total - 1;
    uint64_t seen = 0;
    for (size_t i = 0; i < kStatsLogBuckets; ++i) {
      seen += buckets[i];
      if (seen > target) return UpperBound(i);
    }
    return UpperBound(kStatsLogBuckets - 1);
  }

  /// \brief Upper bound of the highest non-empty bucket (0 if empty).
  uint64_t ApproxMax() const {
    for (size_t i = kStatsLogBuckets; i-- > 0;) {
      if (buckets[i] > 0) return UpperBound(i);
    }
    return 0;
  }

  LogHistogramSnapshot& operator+=(const LogHistogramSnapshot& o) {
    for (size_t i = 0; i < kStatsLogBuckets; ++i) buckets[i] += o.buckets[i];
    return *this;
  }

  LogHistogramSnapshot& operator-=(const LogHistogramSnapshot& o) {
    for (size_t i = 0; i < kStatsLogBuckets; ++i) buckets[i] -= o.buckets[i];
    return *this;
  }

  static uint64_t UpperBound(size_t bucket) {
    return bucket == 0 ? 0 : (uint64_t{1} << bucket) - 1;
  }
};

/// \brief Live power-of-two-bucket histogram; one relaxed atomic add per
/// recorded sample.
struct LogHistogram {
  std::array<std::atomic<uint64_t>, kStatsLogBuckets> buckets{};

  void Record(uint64_t v) {
    buckets[StatsLogBucketOf(v)].fetch_add(1, std::memory_order_relaxed);
  }

  LogHistogramSnapshot Snapshot() const {
    LogHistogramSnapshot s;
    for (size_t i = 0; i < kStatsLogBuckets; ++i) {
      s.buckets[i] = buckets[i].load(std::memory_order_relaxed);
    }
    return s;
  }
};

/// \brief Records a stream of values (typically nanoseconds) and reports
/// count/mean/percentiles. Stores raw samples; intended for benchmark-scale
/// sample counts (<= tens of millions). NOT thread safe and not for serving
/// paths — use LogHistogram there.
class Histogram {
 public:
  Histogram() = default;

  void Record(uint64_t value) { samples_.push_back(value); }

  size_t count() const { return samples_.size(); }
  uint64_t sum() const;
  double Mean() const;
  uint64_t Min() const;
  uint64_t Max() const;

  /// \brief Exact sample value at quantile `q` in [0, 1]; the unified
  /// percentile-estimation entry point shared with LogHistogramSnapshot.
  uint64_t ValueAtQuantile(double q) const { return Percentile(q * 100.0); }

  /// \brief Percentile in [0, 100]; nearest-rank on the sorted samples.
  uint64_t Percentile(double p) const;

  /// \brief "count=N mean=X p50=... p99=... max=..." summary line.
  std::string Summary() const;

  void Clear() { samples_.clear(); }

 private:
  void EnsureSorted() const;

  std::vector<uint64_t> samples_;
  mutable std::vector<uint64_t> sorted_;
  mutable bool sorted_valid_ = false;
};

}  // namespace nblb
