// Sampled request tracing for the sharded serving stack.
//
// A 1-in-N sampler (ShardedEngineOptions::trace_sample_every) stamps a
// TraceContext onto sub-batches at Submit. The context rides the sub-batch
// through the shard queue; the shard worker that serves the group installs
// it as the thread-local "active trace" for the duration of RunGroup, and
// the storage layers (Shard::GetBatch, BufferPool::StartFetchPages /
// FinishFetchPages, DiskManager submit/wait, HeapFile's tuple-copy loop)
// attribute their span durations to it via TraceTimer. The result is a
// per-request end-to-end latency breakdown: queue wait vs service vs device
// time vs copy time.
//
// Overhead contract (the "provably near-zero" story):
//   - Unsampled sub-batches carry a null pointer; the only per-sub-batch
//     cost of tracing being *on* is one relaxed fetch_add in the sampler.
//   - Instrumented call sites construct a TraceTimer, which is one
//     thread_local load and a null check — the clock is read only when a
//     sampled trace is active on this thread. With tracing off (sample_every
//     == 0 or NBLB_OBS_OFF) no TraceContext ever exists, so every timer is
//     the null branch.
//   - The buffer-pool hit path (TryOptimisticHit / FetchPage hits) carries
//     no instrumentation at all.
//
// Ownership/threading: a TraceContext is written by one thread at a time —
// the submitting client stamps enqueue, then ownership transfers to the
// shard worker through the queue mutex, and the worker retires it into the
// TraceAggregator before completing the ticket. Plain (non-atomic) fields
// are therefore correct and TSan-clean.

#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/histogram.h"

namespace nblb {

class MetricsRegistry;

/// \brief Phases of a traced sub-batch's life. Order matches the request
/// pipeline; used to index the per-phase arrays below.
enum class TracePhase : uint8_t {
  kQueueWait = 0,   // Submit enqueue -> worker dequeue
  kService,         // worker dequeue -> results written
  kGetBatch,        // inside Shard::GetBatch
  kFetchStart,      // BufferPool::StartFetchPages (claim + submit)
  kIoSubmit,        // DiskManager submit (io_uring push/flush or queue)
  kDeviceWait,      // DiskManager wait/reap for the read group
  kCopy,            // HeapFile tuple-copy loop
  kCompletion,      // ticket finished -> completion callback dispatched
};
constexpr size_t kNumTracePhases = 8;

const char* TracePhaseName(TracePhase p);

/// \brief Per-request span accumulator. Single-writer (see file comment).
struct TraceContext {
  uint64_t trace_id = 0;
  /// Wall origin of the trace: stamped at Submit, before queue publication.
  std::chrono::steady_clock::time_point enqueued{};

  /// First time each phase started, as ns offsets from `enqueued`;
  /// UINT64_MAX = phase never entered. Used by the span-ordering test and
  /// the recent-trace ring.
  uint64_t first_start_ns[kNumTracePhases];
  /// Total time spent in each phase, ns (a phase can run more than once per
  /// sub-batch, e.g. one GetBatch per coalesced run).
  uint64_t total_ns[kNumTracePhases];

  TraceContext() {
    for (size_t i = 0; i < kNumTracePhases; ++i) {
      first_start_ns[i] = UINT64_MAX;
      total_ns[i] = 0;
    }
  }

  void AddSpan(TracePhase phase, std::chrono::steady_clock::time_point start,
               std::chrono::steady_clock::time_point end) {
    const size_t i = static_cast<size_t>(phase);
    const auto start_off =
        std::chrono::duration_cast<std::chrono::nanoseconds>(start - enqueued)
            .count();
    const uint64_t start_ns =
        start_off > 0 ? static_cast<uint64_t>(start_off) : 0;
    if (start_ns < first_start_ns[i]) first_start_ns[i] = start_ns;
    total_ns[i] += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
            .count());
  }
};

/// \brief Plain-data summary of a retired trace, kept in the aggregator's
/// recent ring for tests and ad-hoc inspection.
struct TraceSummary {
  uint64_t trace_id = 0;
  uint64_t first_start_ns[kNumTracePhases];
  uint64_t total_ns[kNumTracePhases];
  uint64_t end_to_end_us = 0;
};

/// \brief Thread-local active trace. Storage layers read this through
/// TraceTimer; the shard worker installs it via ActiveTraceScope.
TraceContext*& ActiveTrace();

/// \brief RAII: installs `ctx` (may be null) as this thread's active trace,
/// restoring the previous value on destruction.
class ActiveTraceScope {
 public:
  explicit ActiveTraceScope(TraceContext* ctx)
      : prev_(ActiveTrace()) {
    ActiveTrace() = ctx;
  }
  ~ActiveTraceScope() { ActiveTrace() = prev_; }
  ActiveTraceScope(const ActiveTraceScope&) = delete;
  ActiveTraceScope& operator=(const ActiveTraceScope&) = delete;

 private:
  TraceContext* prev_;
};

/// \brief RAII span timer: reads the clock only when a trace is active on
/// this thread (one TLS load + branch otherwise).
class TraceTimer {
 public:
  explicit TraceTimer(TracePhase phase)
      : ctx_(ActiveTrace()), phase_(phase) {
    if (ctx_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~TraceTimer() {
    if (ctx_ != nullptr) {
      ctx_->AddSpan(phase_, start_, std::chrono::steady_clock::now());
    }
  }
  TraceTimer(const TraceTimer&) = delete;
  TraceTimer& operator=(const TraceTimer&) = delete;

 private:
  TraceContext* ctx_;
  TracePhase phase_;
  std::chrono::steady_clock::time_point start_{};
};

/// \brief Sink for retired traces: per-phase LogHistograms (microseconds,
/// registered with the engine's MetricsRegistry under "trace.") plus a
/// small mutex-guarded ring of recent TraceSummary records.
class TraceAggregator {
 public:
  static constexpr size_t kRecent = 64;

  TraceAggregator() = default;

  /// \brief Retires a completed trace: folds each entered phase into its
  /// microsecond histogram and appends a summary to the recent ring.
  void Retire(const TraceContext& ctx,
              std::chrono::steady_clock::time_point end);

  /// \brief Records a completion-dispatch span (finish -> callback), which
  /// happens after the per-sub-batch contexts are already retired.
  void RecordCompletion(uint64_t us);

  /// \brief Registers the per-phase histograms plus "trace.sampled" under
  /// `prefix` (e.g. "trace.").
  void RegisterMetrics(MetricsRegistry* registry, const std::string& prefix);

  /// \brief Most recent retired traces, oldest first.
  std::vector<TraceSummary> Recent() const;

  uint64_t sampled() const {
    return sampled_.load(std::memory_order_relaxed);
  }

 private:
  LogHistogram phase_us_[kNumTracePhases];
  LogHistogram end_to_end_us_;
  std::atomic<uint64_t> sampled_{0};

  mutable std::mutex mu_;
  TraceSummary recent_[kRecent];
  size_t recent_count_ = 0;  // total ever retired; ring index = count % kRecent
};

}  // namespace nblb
