// Umbrella header: the public API of nblb.
//
// Most applications only need exec::Database / exec::Table (see
// examples/quickstart.cpp); the remaining headers expose the subsystems for
// direct use and experimentation.

#pragma once

// Public facade.
#include "exec/database.h"
#include "exec/table.h"

// Catalog / types.
#include "catalog/catalog.h"
#include "catalog/key_codec.h"
#include "catalog/row_codec.h"
#include "catalog/schema.h"
#include "catalog/type.h"
#include "catalog/value.h"

// Core contribution: the B+Tree index cache (§2.1).
#include "cache/cache_geometry.h"
#include "cache/csn_manager.h"
#include "cache/field_advisor.h"
#include "cache/index_cache.h"
#include "cache/predicate_log.h"
#include "index/btree.h"
#include "index/btree_page.h"

// Hot/cold partitioning (§3.1).
#include "partition/access_tracker.h"
#include "partition/clusterer.h"
#include "partition/forwarding_table.h"
#include "partition/partitioned_table.h"

// Encoding advisor (§4.1).
#include "encoding/advisor.h"
#include "encoding/bitpack.h"
#include "encoding/column_stats.h"
#include "encoding/dict.h"
#include "encoding/timestamp.h"
#include "encoding/type_inference.h"
#include "encoding/waste_report.h"

// Semantic IDs (§4.2).
#include "semid/reduction.h"
#include "semid/routing.h"
#include "semid/semantic_id.h"

// Observability: metrics registry, sampled tracing, flight recorder.
#include "obs/event_ring.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/trace.h"

// Sharded serving layer.
#include "shard/request.h"
#include "shard/shard.h"
#include "shard/shard_stats.h"
#include "shard/sharded_engine.h"

// Storage engine.
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/heap_file.h"
#include "storage/latency_model.h"
#include "storage/page.h"
#include "storage/rid.h"

// Workloads and simulation.
#include "sim/micro_sim.h"
#include "workload/trace.h"
#include "workload/wikipedia.h"
