// ID-field reduction (§4.2).
//
// "Fields can be reduced if proxies exist whose values exhibit the same
//  properties that the application expects. ... More generally, if there is
//  a functional dependency X -> Y and the semantic properties of Y can be
//  directly inferred from X, then Y can be dropped."
//
// HasFunctionalDependency verifies X -> Y over a dataset; the Rid packed
// into 48 bits (storage/rid.h) is the physical-address proxy the paper
// suggests for auto-increment keys.

#pragma once

#include <cstddef>
#include <vector>

#include "catalog/schema.h"
#include "catalog/value.h"

namespace nblb {

/// \brief True if the values of `x_cols` functionally determine `y_col`
/// across all `rows` (exact check).
bool HasFunctionalDependency(const Schema& schema, const std::vector<Row>& rows,
                             const std::vector<size_t>& x_cols, size_t y_col);

/// \brief Bytes saved per row by dropping column `y_col` from the schema.
size_t DroppedColumnBytesPerRow(const Schema& schema, size_t y_col);

}  // namespace nblb
