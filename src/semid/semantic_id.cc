// SemanticIdCodec and Router are header-only; this translation unit anchors
// the module in the library and hosts the ID-reduction helper of §4.2.

#include "semid/semantic_id.h"

#include "semid/routing.h"

namespace nblb {

// Intentionally empty: see headers.

}  // namespace nblb
