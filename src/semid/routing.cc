#include "semid/routing.h"

#include <unordered_map>

#include "semid/reduction.h"

namespace nblb {

bool HasFunctionalDependency(const Schema& schema, const std::vector<Row>& rows,
                             const std::vector<size_t>& x_cols, size_t y_col) {
  std::unordered_map<std::string, std::string> seen;
  for (const Row& row : rows) {
    std::string x_repr;
    for (size_t c : x_cols) {
      x_repr += row[c].ToString();
      x_repr.push_back('\x1f');  // unit separator avoids concat ambiguity
    }
    const std::string y_repr = row[y_col].ToString();
    auto [it, inserted] = seen.emplace(x_repr, y_repr);
    if (!inserted && it->second != y_repr) return false;
  }
  (void)schema;
  return true;
}

size_t DroppedColumnBytesPerRow(const Schema& schema, size_t y_col) {
  return schema.column(y_col).ByteSize();
}

}  // namespace nblb
