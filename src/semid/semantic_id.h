// SemanticIdCodec: embedding placement information in ID values (§4.2).
//
// "We propose embedding partition information directly in the ID field as a
//  mechanism to implement the policy described in Section 3.1. ... Embedding
//  a tuple's physical location in its ID alleviates this bottleneck."
//
// A 64-bit ID is split into [partition : P bits][local : 64-P bits]. Because
// applications treat auto-increment IDs as semantically opaque, reassigning
// the high bits is invisible to them while making routing a shift+mask.

#pragma once

#include <cstdint>

#include "common/logging.h"

namespace nblb {

/// \brief Packs/unpacks (partition, local id) into a single uint64 ID.
class SemanticIdCodec {
 public:
  /// \param partition_bits  high bits reserved for the partition (1..32)
  explicit SemanticIdCodec(unsigned partition_bits)
      : partition_bits_(partition_bits),
        local_bits_(64 - partition_bits) {
    NBLB_CHECK(partition_bits >= 1 && partition_bits <= 32);
  }

  uint64_t Encode(uint32_t partition, uint64_t local) const {
    NBLB_DCHECK(partition <= MaxPartition());
    NBLB_DCHECK(local <= MaxLocal());
    return (static_cast<uint64_t>(partition) << local_bits_) | local;
  }

  uint32_t PartitionOf(uint64_t id) const {
    return static_cast<uint32_t>(id >> local_bits_);
  }

  uint64_t LocalOf(uint64_t id) const {
    return id & (local_bits_ == 64 ? ~0ull : ((1ull << local_bits_) - 1));
  }

  /// \brief Re-homes an ID to a new partition, preserving the local part —
  /// the §4.2 "simply updating the ID value is enough to physically move the
  /// tuple" operation for ID-clustered tables.
  uint64_t WithPartition(uint64_t id, uint32_t new_partition) const {
    return Encode(new_partition, LocalOf(id));
  }

  uint32_t MaxPartition() const {
    return partition_bits_ >= 32 ? UINT32_MAX
                                 : (1u << partition_bits_) - 1;
  }
  uint64_t MaxLocal() const {
    return local_bits_ >= 64 ? ~0ull : (1ull << local_bits_) - 1;
  }

  unsigned partition_bits() const { return partition_bits_; }
  unsigned local_bits() const { return local_bits_; }

 private:
  unsigned partition_bits_;
  unsigned local_bits_;
};

}  // namespace nblb
