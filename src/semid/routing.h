// Routers: per-tuple routing table vs. embedded-ID routing (§4.2).
//
// "Such tables can easily become a resource and performance bottleneck and
//  limit the scalability of the routing infrastructure."
// The two Router implementations let the benchmark quantify exactly that:
// RAM footprint and lookup cost of a per-tuple map vs. a shift+mask.

#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/result.h"
#include "common/rng.h"
#include "semid/semantic_id.h"

namespace nblb {

/// \brief Maps a tuple ID to the partition hosting it.
class Router {
 public:
  virtual ~Router() = default;

  /// \brief Partition of `id`; NotFound if the router cannot place it.
  virtual Result<uint32_t> Route(uint64_t id) const = 0;

  /// \brief Records a placement decision for `id` (e.g. made by the shard
  /// engine when inserting a fresh tuple). Routers with explicit state
  /// remember it; routers that derive the partition from the ID ignore it.
  virtual void Learn(uint64_t id, uint32_t partition) {
    (void)id;
    (void)partition;
  }

  /// \brief Approximate RAM the routing state occupies.
  virtual size_t MemoryBytes() const = 0;
};

/// \brief Baseline: explicit per-tuple routing table ("a large routing table
/// that maps tuple IDs to their physical location").
class TableRouter : public Router {
 public:
  void Add(uint64_t id, uint32_t partition) { map_[id] = partition; }

  void Learn(uint64_t id, uint32_t partition) override { Add(id, partition); }

  Result<uint32_t> Route(uint64_t id) const override {
    auto it = map_.find(id);
    if (it == map_.end()) return Status::NotFound("id not in routing table");
    return it->second;
  }

  size_t MemoryBytes() const override {
    // Node-based map: key + value + bucket pointer + node overhead.
    return map_.size() * (sizeof(uint64_t) + sizeof(uint32_t) +
                          2 * sizeof(void*)) +
           map_.bucket_count() * sizeof(void*);
  }

  size_t size() const { return map_.size(); }

 private:
  std::unordered_map<uint64_t, uint32_t> map_;
};

/// \brief Stateless fallback for keys with no semantic placement: partition
/// by a mixed hash of the ID. Unlike TableRouter it costs no RAM and unlike
/// EmbeddedRouter it needs no ID rewrite, but it cannot express placement
/// policy — a tuple's home is fixed by its hash forever.
class HashRouter : public Router {
 public:
  explicit HashRouter(uint32_t num_partitions)
      : num_partitions_(num_partitions) {}

  Result<uint32_t> Route(uint64_t id) const override {
    return static_cast<uint32_t>(Mix(id) % num_partitions_);
  }

  size_t MemoryBytes() const override { return sizeof(*this); }

  uint32_t num_partitions() const { return num_partitions_; }

 private:
  // Sequential IDs (auto-increment keys) must not all land in the same
  // partition, so `id % n` is not enough — spread them first.
  static uint64_t Mix(uint64_t x) { return SplitMix64(x); }

  uint32_t num_partitions_;
};

/// \brief §4.2 proposal: the partition is embedded in the ID itself.
class EmbeddedRouter : public Router {
 public:
  explicit EmbeddedRouter(SemanticIdCodec codec) : codec_(codec) {}

  Result<uint32_t> Route(uint64_t id) const override {
    return codec_.PartitionOf(id);
  }

  size_t MemoryBytes() const override { return sizeof(codec_); }

  const SemanticIdCodec& codec() const { return codec_; }

 private:
  SemanticIdCodec codec_;
};

}  // namespace nblb
