// WasteReport: per-column and per-table encoding-waste accounting (§4.1).

#pragma once

#include <string>
#include <vector>

#include "catalog/schema.h"
#include "encoding/type_inference.h"

namespace nblb {

/// \brief One column's waste line item.
struct ColumnWaste {
  std::string column_name;
  std::string declared_type;
  InferredType inferred;
  uint64_t rows = 0;

  double declared_bytes() const {
    return inferred.declared_bits_per_value / 8.0 * static_cast<double>(rows);
  }
  double optimal_bytes() const {
    return inferred.bits_per_value / 8.0 * static_cast<double>(rows);
  }
  double waste_bytes() const { return declared_bytes() - optimal_bytes(); }
};

/// \brief Aggregated report for one table.
struct TableWasteReport {
  std::string table_name;
  uint64_t rows = 0;
  std::vector<ColumnWaste> columns;

  double declared_bytes() const;
  double optimal_bytes() const;
  double waste_bytes() const { return declared_bytes() - optimal_bytes(); }
  /// The §4.1 headline number: fraction of bytes that are waste (16%-83%
  /// across the paper's tables).
  double WasteFraction() const {
    const double d = declared_bytes();
    return d <= 0 ? 0 : waste_bytes() / d;
  }

  /// \brief Renders an aligned ASCII table (one row per column).
  std::string ToString() const;
};

/// \brief Report over several tables (the paper's "23.5 GB (20%) of waste in
/// the tables we inspected").
struct DatabaseWasteReport {
  std::vector<TableWasteReport> tables;

  double declared_bytes() const;
  double optimal_bytes() const;
  double waste_bytes() const { return declared_bytes() - optimal_bytes(); }
  double WasteFraction() const {
    const double d = declared_bytes();
    return d <= 0 ? 0 : waste_bytes() / d;
  }
  std::string ToString() const;
};

}  // namespace nblb
