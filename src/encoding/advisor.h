// SchemaAdvisor: the automated waste-detection tool of §4.1, plus a
// materializer that applies the recommended encodings and proves them
// loss-free.
//
// Analyze() = the paper's analysis pass ("We analyzed several of the largest
// tables in the Cartel and Wikipedia databases and found that they can all
// reduce their physical encoding waste by 16% to 83%").
// Materialize() = the follow-through: encode every column with its inferred
// physical type; Get() decodes logical values back so tests can verify
// value-equivalence, and PayloadBytes() measures the real savings.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "catalog/value.h"
#include "common/result.h"
#include "encoding/bitpack.h"
#include "encoding/dict.h"
#include "encoding/waste_report.h"

namespace nblb {

/// \brief Static analysis entry points.
class SchemaAdvisor {
 public:
  /// \brief Scans `rows` and reports per-column inferred types and waste.
  static TableWasteReport Analyze(const std::string& table_name,
                                  const Schema& schema,
                                  const std::vector<Row>& rows);
};

/// \brief Column-oriented storage using the advisor's recommended encodings.
class OptimizedTable {
 public:
  /// \brief Encodes all rows. Falls back to plain storage for any column
  /// whose recommended encoding would not round-trip exactly (e.g. numeric
  /// strings with leading zeros).
  static Result<std::unique_ptr<OptimizedTable>> Materialize(
      const Schema& schema, const std::vector<Row>& rows);

  /// \brief Decodes the logical value at (row, col); bit-identical to the
  /// original input rows.
  Value Get(size_t row, size_t col) const;

  size_t num_rows() const { return num_rows_; }

  /// \brief Measured bytes of the optimized representation.
  size_t PayloadBytes() const;

  /// \brief Bytes of the original fixed-width representation.
  size_t OriginalBytes() const;

  /// \brief The encoding actually used for a column (after fallbacks).
  PhysicalEncoding ColumnEncoding(size_t col) const {
    return columns_[col].encoding;
  }

 private:
  struct ColumnStorage {
    PhysicalEncoding encoding = PhysicalEncoding::kPlain;
    TypeId declared_type = TypeId::kInt64;
    size_t declared_length = 0;
    int64_t base = 0;
    std::unique_ptr<BitPackedVector> packed;   // integer-like encodings
    std::unique_ptr<DictionaryColumn> dict;    // dictionary strings
    std::vector<std::string> strings;          // plain/shrunk strings
    std::vector<double> doubles;               // plain float64
    std::vector<int64_t> ints;                 // plain integers
    Value constant;                            // kDropConstant
    size_t shrunk_capacity = 0;                // kShrunkString
  };

  OptimizedTable() = default;

  const Schema* schema_ = nullptr;
  Schema schema_copy_;
  size_t num_rows_ = 0;
  std::vector<ColumnStorage> columns_;
};

}  // namespace nblb
