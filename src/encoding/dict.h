// DictionaryColumn: dictionary compression for low-cardinality strings.
//
// §4.1: "large fields that are either never accessed or only projected or
// accessed through equality predicates are good candidates for compression."

#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "encoding/bitpack.h"

namespace nblb {

/// \brief Encodes strings as bit-packed codes into a sorted-on-first-use
/// dictionary. Equality predicates evaluate on codes without materializing.
class DictionaryColumn {
 public:
  DictionaryColumn() = default;

  /// \brief Builds from a full column. Code width = bits for (#distinct - 1).
  static DictionaryColumn Build(const std::vector<std::string>& values);

  /// \brief Value at row i.
  std::string_view Get(size_t i) const;

  /// \brief Code for a probe value, or SIZE_MAX if absent (equality pushdown).
  size_t CodeOf(const std::string& probe) const;

  /// \brief Code of row i (for code-space comparisons).
  uint64_t RawCode(size_t i) const { return codes_->Get(i); }

  size_t size() const { return codes_ ? codes_->size() : 0; }
  size_t dict_size() const { return dict_.size(); }

  /// \brief Compressed footprint: packed codes + dictionary bytes.
  size_t PayloadBytes() const;

 private:
  std::vector<std::string> dict_;
  std::unordered_map<std::string, size_t> lookup_;
  std::unique_ptr<BitPackedVector> codes_;
};

}  // namespace nblb
