#include "encoding/bitpack.h"

namespace nblb {

unsigned BitPackedVector::BitsForRange(uint64_t range) {
  unsigned bits = 1;
  while (bits < 64 && (range >> bits) != 0) ++bits;
  return bits;
}

void BitPackedVector::Append(uint64_t v) {
  NBLB_DCHECK(width_ == 64 || (v >> width_) == 0);
  const size_t bit_pos = size_ * width_;
  const size_t word = bit_pos / 64;
  const unsigned off = bit_pos % 64;
  if (words_.size() < word + 2) words_.resize(word + 2, 0);
  words_[word] |= v << off;
  if (off + width_ > 64) {
    words_[word + 1] |= v >> (64 - off);
  }
  ++size_;
}

uint64_t BitPackedVector::Get(size_t i) const {
  NBLB_DCHECK(i < size_);
  const size_t bit_pos = i * width_;
  const size_t word = bit_pos / 64;
  const unsigned off = bit_pos % 64;
  uint64_t v = words_[word] >> off;
  if (off + width_ > 64) {
    v |= words_[word + 1] << (64 - off);
  }
  if (width_ < 64) {
    v &= (1ull << width_) - 1;
  }
  return v;
}

}  // namespace nblb
