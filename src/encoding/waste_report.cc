#include "encoding/waste_report.h"

#include <cstdio>

namespace nblb {

double TableWasteReport::declared_bytes() const {
  double total = 0;
  for (const auto& c : columns) total += c.declared_bytes();
  return total;
}

double TableWasteReport::optimal_bytes() const {
  double total = 0;
  for (const auto& c : columns) total += c.optimal_bytes();
  return total;
}

std::string TableWasteReport::ToString() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "table %s (%llu rows)\n",
                table_name.c_str(), static_cast<unsigned long long>(rows));
  out += line;
  std::snprintf(line, sizeof(line), "  %-22s %-14s %-20s %10s %10s %7s\n",
                "column", "declared", "inferred", "decl B/row", "opt B/row",
                "waste%");
  out += line;
  for (const auto& c : columns) {
    std::snprintf(line, sizeof(line),
                  "  %-22s %-14s %-20s %10.2f %10.2f %6.1f%%\n",
                  c.column_name.c_str(), c.declared_type.c_str(),
                  std::string(PhysicalEncodingToString(c.inferred.encoding))
                      .c_str(),
                  c.inferred.declared_bits_per_value / 8.0,
                  c.inferred.bits_per_value / 8.0,
                  100.0 * c.inferred.WasteFraction());
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "  total: declared=%.0f B optimal=%.0f B waste=%.1f%%\n",
                declared_bytes(), optimal_bytes(), 100.0 * WasteFraction());
  out += line;
  return out;
}

double DatabaseWasteReport::declared_bytes() const {
  double total = 0;
  for (const auto& t : tables) total += t.declared_bytes();
  return total;
}

double DatabaseWasteReport::optimal_bytes() const {
  double total = 0;
  for (const auto& t : tables) total += t.optimal_bytes();
  return total;
}

std::string DatabaseWasteReport::ToString() const {
  std::string out;
  for (const auto& t : tables) {
    out += t.ToString();
    out += "\n";
  }
  char line[160];
  std::snprintf(line, sizeof(line),
                "ALL TABLES: declared=%.0f B optimal=%.0f B waste=%.0f B "
                "(%.1f%%)\n",
                declared_bytes(), optimal_bytes(), waste_bytes(),
                100.0 * WasteFraction());
  out += line;
  return out;
}

}  // namespace nblb
