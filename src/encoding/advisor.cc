#include "encoding/advisor.h"

#include <cstdlib>

#include "common/logging.h"
#include "encoding/column_stats.h"
#include "encoding/timestamp.h"
#include "encoding/type_inference.h"

namespace nblb {

namespace {

// A numeric string round-trips through int64 only if it is canonical:
// no leading '+', no leading zeros (except "0" itself), "-0" excluded.
bool IsCanonicalNumericString(const std::string& s) {
  if (!IsNumericString(s)) return false;
  if (s[0] == '+') return false;
  const size_t digits_start = s[0] == '-' ? 1 : 0;
  if (s.size() - digits_start > 1 && s[digits_start] == '0') return false;
  if (s == "-0") return false;
  return true;
}

Value MakeStringValue(TypeId declared, std::string s) {
  return declared == TypeId::kChar ? Value::Char(std::move(s))
                                   : Value::Varchar(std::move(s));
}

}  // namespace

TableWasteReport SchemaAdvisor::Analyze(const std::string& table_name,
                                        const Schema& schema,
                                        const std::vector<Row>& rows) {
  TableWasteReport report;
  report.table_name = table_name;
  report.rows = rows.size();
  std::vector<ColumnStats> stats(schema.num_columns());
  for (const Row& row : rows) {
    NBLB_CHECK(row.size() == schema.num_columns());
    for (size_t c = 0; c < row.size(); ++c) {
      stats[c].Observe(row[c]);
    }
  }
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    const Column& col = schema.column(c);
    ColumnWaste w;
    w.column_name = col.name;
    w.declared_type = TypeDeclToString(col.type, col.length);
    w.inferred = InferColumnType(col, stats[c]);
    w.rows = rows.size();
    report.columns.push_back(std::move(w));
  }
  return report;
}

Result<std::unique_ptr<OptimizedTable>> OptimizedTable::Materialize(
    const Schema& schema, const std::vector<Row>& rows) {
  std::unique_ptr<OptimizedTable> t(new OptimizedTable());
  t->schema_copy_ = schema;
  t->schema_ = &t->schema_copy_;
  t->num_rows_ = rows.size();
  t->columns_.resize(schema.num_columns());

  TableWasteReport report = SchemaAdvisor::Analyze("", schema, rows);

  for (size_t c = 0; c < schema.num_columns(); ++c) {
    const Column& col = schema.column(c);
    ColumnStorage& cs = t->columns_[c];
    cs.declared_type = col.type;
    cs.declared_length = col.length;
    PhysicalEncoding enc = report.columns[c].inferred.encoding;
    cs.base = report.columns[c].inferred.base;

    // Numeric strings only convert when every value is canonical.
    if (enc == PhysicalEncoding::kNumericString) {
      for (const Row& row : rows) {
        if (!IsCanonicalNumericString(row[c].AsString())) {
          enc = PhysicalEncoding::kPlain;
          break;
        }
      }
    }
    cs.encoding = enc;

    switch (enc) {
      case PhysicalEncoding::kDropConstant: {
        if (!rows.empty()) cs.constant = rows[0][c];
        break;
      }
      case PhysicalEncoding::kBoolBit:
      case PhysicalEncoding::kNarrowInt:
      case PhysicalEncoding::kBitPacked: {
        // Width from the observed range (values stored as v - base).
        uint64_t range = 0;
        for (const Row& row : rows) {
          const uint64_t d = static_cast<uint64_t>(row[c].AsInt() - cs.base);
          range = std::max(range, d);
        }
        cs.packed.reset(
            new BitPackedVector(BitPackedVector::BitsForRange(range)));
        for (const Row& row : rows) {
          cs.packed->Append(static_cast<uint64_t>(row[c].AsInt() - cs.base));
        }
        break;
      }
      case PhysicalEncoding::kTimestampBinary: {
        cs.packed.reset(new BitPackedVector(32));
        for (const Row& row : rows) {
          auto parsed = ParseTimestamp14(row[c].AsString());
          NBLB_RETURN_NOT_OK(parsed.status());
          cs.packed->Append(*parsed);
        }
        break;
      }
      case PhysicalEncoding::kNumericString: {
        int64_t lo = 0, hi = 0;
        bool first = true;
        std::vector<int64_t> parsed;
        parsed.reserve(rows.size());
        for (const Row& row : rows) {
          const int64_t v = std::strtoll(row[c].AsString().c_str(), nullptr, 10);
          parsed.push_back(v);
          if (first || v < lo) lo = v;
          if (first || v > hi) hi = v;
          first = false;
        }
        cs.base = lo;
        cs.packed.reset(new BitPackedVector(BitPackedVector::BitsForRange(
            static_cast<uint64_t>(hi - lo))));
        for (int64_t v : parsed) {
          cs.packed->Append(static_cast<uint64_t>(v - lo));
        }
        break;
      }
      case PhysicalEncoding::kDictionary: {
        std::vector<std::string> vals;
        vals.reserve(rows.size());
        for (const Row& row : rows) vals.push_back(row[c].AsString());
        cs.dict.reset(new DictionaryColumn(DictionaryColumn::Build(vals)));
        break;
      }
      case PhysicalEncoding::kShrunkString: {
        cs.shrunk_capacity = 0;
        for (const Row& row : rows) {
          cs.shrunk_capacity = std::max(cs.shrunk_capacity,
                                        row[c].AsString().size());
        }
        cs.strings.reserve(rows.size());
        for (const Row& row : rows) cs.strings.push_back(row[c].AsString());
        break;
      }
      case PhysicalEncoding::kPlain: {
        if (IsIntegerFamily(col.type)) {
          cs.ints.reserve(rows.size());
          for (const Row& row : rows) cs.ints.push_back(row[c].AsInt());
        } else if (col.type == TypeId::kFloat64) {
          cs.doubles.reserve(rows.size());
          for (const Row& row : rows) cs.doubles.push_back(row[c].AsDouble());
        } else {
          cs.strings.reserve(rows.size());
          for (const Row& row : rows) cs.strings.push_back(row[c].AsString());
        }
        break;
      }
    }
  }
  return t;
}

Value OptimizedTable::Get(size_t row, size_t col) const {
  NBLB_CHECK(row < num_rows_ && col < columns_.size());
  const ColumnStorage& cs = columns_[col];
  switch (cs.encoding) {
    case PhysicalEncoding::kDropConstant:
      return cs.constant;
    case PhysicalEncoding::kBoolBit:
    case PhysicalEncoding::kNarrowInt:
    case PhysicalEncoding::kBitPacked: {
      const int64_t v = cs.base + static_cast<int64_t>(cs.packed->Get(row));
      switch (cs.declared_type) {
        case TypeId::kBool:
          return Value::Bool(v != 0);
        case TypeId::kInt8:
          return Value::Int8(static_cast<int8_t>(v));
        case TypeId::kInt16:
          return Value::Int16(static_cast<int16_t>(v));
        case TypeId::kInt32:
          return Value::Int32(static_cast<int32_t>(v));
        case TypeId::kTimestamp:
          return Value::Timestamp(static_cast<uint32_t>(v));
        default:
          return Value::Int64(v);
      }
    }
    case PhysicalEncoding::kTimestampBinary:
      return MakeStringValue(
          cs.declared_type,
          FormatTimestamp14(static_cast<uint32_t>(cs.packed->Get(row))));
    case PhysicalEncoding::kNumericString:
      return MakeStringValue(
          cs.declared_type,
          std::to_string(cs.base + static_cast<int64_t>(cs.packed->Get(row))));
    case PhysicalEncoding::kDictionary:
      return MakeStringValue(cs.declared_type, std::string(cs.dict->Get(row)));
    case PhysicalEncoding::kShrunkString:
      return MakeStringValue(cs.declared_type, cs.strings[row]);
    case PhysicalEncoding::kPlain: {
      if (IsIntegerFamily(cs.declared_type)) {
        const int64_t v = cs.ints[row];
        switch (cs.declared_type) {
          case TypeId::kBool:
            return Value::Bool(v != 0);
          case TypeId::kInt8:
            return Value::Int8(static_cast<int8_t>(v));
          case TypeId::kInt16:
            return Value::Int16(static_cast<int16_t>(v));
          case TypeId::kInt32:
            return Value::Int32(static_cast<int32_t>(v));
          case TypeId::kTimestamp:
            return Value::Timestamp(static_cast<uint32_t>(v));
          default:
            return Value::Int64(v);
        }
      }
      if (cs.declared_type == TypeId::kFloat64) {
        return Value::Float64(cs.doubles[row]);
      }
      return MakeStringValue(cs.declared_type, cs.strings[row]);
    }
  }
  NBLB_CHECK_MSG(false, "unreachable");
  return Value();
}

size_t OptimizedTable::PayloadBytes() const {
  size_t total = 0;
  for (const ColumnStorage& cs : columns_) {
    switch (cs.encoding) {
      case PhysicalEncoding::kDropConstant:
        total += TypeSize(cs.declared_type,
                          cs.declared_length ? cs.declared_length : 1);
        break;
      case PhysicalEncoding::kBoolBit:
      case PhysicalEncoding::kNarrowInt:
      case PhysicalEncoding::kBitPacked:
      case PhysicalEncoding::kTimestampBinary:
      case PhysicalEncoding::kNumericString:
        total += cs.packed->PayloadBytes();
        break;
      case PhysicalEncoding::kDictionary:
        total += cs.dict->PayloadBytes();
        break;
      case PhysicalEncoding::kShrunkString:
        total += num_rows_ * (cs.shrunk_capacity + 2);
        break;
      case PhysicalEncoding::kPlain:
        if (cs.declared_type == TypeId::kVarchar) {
          // Varchars are stored variable-length (2-byte length + bytes).
          for (const std::string& s : cs.strings) total += 2 + s.size();
        } else {
          total += num_rows_ * TypeSize(cs.declared_type,
                                        cs.declared_length ? cs.declared_length
                                                           : 1);
        }
        break;
    }
  }
  return total;
}

size_t OptimizedTable::OriginalBytes() const {
  return num_rows_ * schema_->row_size();
}

}  // namespace nblb
