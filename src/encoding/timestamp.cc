#include "encoding/timestamp.h"

#include <cstdio>

#include "encoding/column_stats.h"

namespace nblb {

int64_t DaysFromCivil(int y, unsigned m, unsigned d) {
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);            // [0, 399]
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;  // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;           // [0, 146096]
  return era * 146097LL + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t z, int* y, unsigned* m, unsigned* d) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);  // [0, 146096]
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;  // [0, 399]
  const int64_t yy = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);  // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                       // [0, 11]
  *d = doy - (153 * mp + 2) / 5 + 1;                             // [1, 31]
  *m = mp + (mp < 10 ? 3 : -9);                                  // [1, 12]
  *y = static_cast<int>(yy + (*m <= 2));
}

Result<uint32_t> ParseTimestamp14(const std::string& s) {
  if (!IsTimestamp14(s)) {
    return Status::InvalidArgument("not a YYYYMMDDHHMMSS timestamp: " + s);
  }
  const int year = (s[0] - '0') * 1000 + (s[1] - '0') * 100 +
                   (s[2] - '0') * 10 + (s[3] - '0');
  const unsigned month = (s[4] - '0') * 10u + (s[5] - '0');
  const unsigned day = (s[6] - '0') * 10u + (s[7] - '0');
  const unsigned hh = (s[8] - '0') * 10u + (s[9] - '0');
  const unsigned mm = (s[10] - '0') * 10u + (s[11] - '0');
  const unsigned ss = (s[12] - '0') * 10u + (s[13] - '0');
  const int64_t secs =
      DaysFromCivil(year, month, day) * 86400LL + hh * 3600LL + mm * 60LL + ss;
  if (secs < 0 || secs > UINT32_MAX) {
    return Status::OutOfRange("timestamp outside u32 epoch range: " + s);
  }
  return static_cast<uint32_t>(secs);
}

std::string FormatTimestamp14(uint32_t epoch_seconds) {
  const int64_t days = epoch_seconds / 86400;
  const int64_t rem = epoch_seconds % 86400;
  int y;
  unsigned m, d;
  CivilFromDays(days, &y, &m, &d);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d%02u%02u%02lld%02lld%02lld", y, m, d,
                static_cast<long long>(rem / 3600),
                static_cast<long long>((rem / 60) % 60),
                static_cast<long long>(rem % 60));
  return buf;
}

}  // namespace nblb
