// Timestamp codec: 14-byte "YYYYMMDDHHMMSS" strings <-> 4-byte epoch seconds.
//
// §4.1: "Wikipedia's revision table uses a 14 byte string to represent a
// timestamp that can easily be encoded into a 4 byte timestamp." This codec
// is that transformation, implemented with Howard Hinnant's civil-date
// arithmetic (no libc timezone dependencies, UTC only).

#pragma once

#include <cstdint>
#include <string>

#include "common/result.h"

namespace nblb {

/// \brief Parses "YYYYMMDDHHMMSS" (UTC) into seconds since the Unix epoch.
Result<uint32_t> ParseTimestamp14(const std::string& s);

/// \brief Formats epoch seconds back to "YYYYMMDDHHMMSS" (UTC).
std::string FormatTimestamp14(uint32_t epoch_seconds);

/// \brief Days since 1970-01-01 for a civil date (proleptic Gregorian).
int64_t DaysFromCivil(int y, unsigned m, unsigned d);

/// \brief Inverse of DaysFromCivil.
void CivilFromDays(int64_t z, int* y, unsigned* m, unsigned* d);

}  // namespace nblb
