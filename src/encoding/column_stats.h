// ColumnStats: per-column value statistics feeding type inference (§4.1).
//
// "Column values can be analyzed to understand the typical value range or
//  the content properties (e.g., only numerical strings) and compare them
//  against the declared types in the schema."

#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <unordered_set>

#include "catalog/value.h"

namespace nblb {

/// \brief Streaming statistics over one column's values.
class ColumnStats {
 public:
  /// \param distinct_limit  stop tracking exact distinct values past this
  ///                        many (distinct_overflowed() turns true).
  explicit ColumnStats(size_t distinct_limit = 1 << 16)
      : distinct_limit_(distinct_limit) {}

  /// \brief Folds one value into the statistics.
  void Observe(const Value& v);

  uint64_t count() const { return count_; }

  // Integer-family facts.
  int64_t int_min() const { return int_min_; }
  int64_t int_max() const { return int_max_; }

  // String-family facts.
  size_t max_string_len() const { return max_len_; }
  size_t min_string_len() const { return min_len_; }
  uint64_t total_string_bytes() const { return total_string_bytes_; }
  /// Every observed string parses as a decimal integer.
  bool all_numeric_strings() const { return count_ > 0 && all_numeric_; }
  /// Every observed string is a 14-char YYYYMMDDHHMMSS timestamp (the
  /// MediaWiki rev_timestamp format the paper calls out).
  bool all_timestamp14_strings() const { return count_ > 0 && all_ts14_; }

  /// Exact distinct count while <= limit.
  size_t distinct() const { return distinct_.size(); }
  bool distinct_overflowed() const { return distinct_overflowed_; }

  /// All integer values are 0/1 (bool candidates).
  bool bool_like() const {
    return count_ > 0 && saw_int_ && int_min_ >= 0 && int_max_ <= 1;
  }

  bool saw_int() const { return saw_int_; }
  bool saw_string() const { return saw_string_; }
  bool saw_double() const { return saw_double_; }

 private:
  void ObserveDistinct(const std::string& repr);

  size_t distinct_limit_;
  uint64_t count_ = 0;

  bool saw_int_ = false;
  int64_t int_min_ = std::numeric_limits<int64_t>::max();
  int64_t int_max_ = std::numeric_limits<int64_t>::min();

  bool saw_double_ = false;

  bool saw_string_ = false;
  size_t max_len_ = 0;
  size_t min_len_ = std::numeric_limits<size_t>::max();
  uint64_t total_string_bytes_ = 0;
  bool all_numeric_ = true;
  bool all_ts14_ = true;

  std::unordered_set<std::string> distinct_;
  bool distinct_overflowed_ = false;
};

/// \brief True if `s` is a plausible YYYYMMDDHHMMSS timestamp.
bool IsTimestamp14(const std::string& s);

/// \brief True if `s` is a (possibly signed) decimal integer that fits int64.
bool IsNumericString(const std::string& s);

}  // namespace nblb
