#include "encoding/type_inference.h"

#include <algorithm>
#include <cstdlib>

#include "encoding/bitpack.h"

namespace nblb {

std::string_view PhysicalEncodingToString(PhysicalEncoding e) {
  switch (e) {
    case PhysicalEncoding::kPlain:
      return "plain";
    case PhysicalEncoding::kNarrowInt:
      return "narrow-int";
    case PhysicalEncoding::kBitPacked:
      return "bit-packed";
    case PhysicalEncoding::kBoolBit:
      return "bool-bit";
    case PhysicalEncoding::kTimestampBinary:
      return "timestamp-binary";
    case PhysicalEncoding::kNumericString:
      return "numeric-string->int";
    case PhysicalEncoding::kDictionary:
      return "dictionary";
    case PhysicalEncoding::kShrunkString:
      return "shrunk-string";
    case PhysicalEncoding::kDropConstant:
      return "drop-constant";
  }
  return "unknown";
}

namespace {

double DictBitsPerValue(const ColumnStats& stats) {
  const double code_bits = BitPackedVector::BitsForRange(
      stats.distinct() > 0 ? stats.distinct() - 1 : 0);
  // Amortize dictionary storage over the rows.
  const double avg_len =
      stats.count() ? static_cast<double>(stats.total_string_bytes()) /
                          static_cast<double>(stats.count())
                    : 0;
  const double dict_bits =
      stats.count() ? 8.0 * avg_len * static_cast<double>(stats.distinct()) /
                          static_cast<double>(stats.count())
                    : 0;
  return code_bits + dict_bits;
}

}  // namespace

InferredType InferColumnType(const Column& column, const ColumnStats& stats,
                             size_t dict_threshold) {
  InferredType out;
  // VARCHAR columns are accounted at their stored (variable) size — a
  // 2-byte length plus the actual bytes — mirroring how MySQL-era engines
  // store them; the paper's waste percentages are relative to that, not to
  // the declared capacity. CHAR and numeric columns occupy their full
  // declared width.
  if (column.type == TypeId::kVarchar && stats.count() > 0) {
    const double avg_len = static_cast<double>(stats.total_string_bytes()) /
                           static_cast<double>(stats.count());
    out.declared_bits_per_value = 8.0 * (2.0 + avg_len);
  } else {
    out.declared_bits_per_value = 8.0 * static_cast<double>(column.ByteSize());
  }
  out.bits_per_value = out.declared_bits_per_value;
  if (stats.count() == 0) {
    out.rationale = "no data observed";
    return out;
  }

  // Constant columns beat every other encoding.
  if (!stats.distinct_overflowed() && stats.distinct() == 1) {
    out.encoding = PhysicalEncoding::kDropConstant;
    out.bits_per_value = 0;
    out.rationale = "single distinct value; hoist into catalog";
    return out;
  }

  if (stats.saw_int()) {
    const uint64_t range = static_cast<uint64_t>(stats.int_max()) -
                           static_cast<uint64_t>(stats.int_min());
    const unsigned bits = BitPackedVector::BitsForRange(range);
    out.base = stats.int_min();
    if (stats.bool_like()) {
      out.encoding = PhysicalEncoding::kBoolBit;
      out.bits_per_value = 1;
      out.rationale = "all values in {0,1}";
      return out;
    }
    if (bits < out.declared_bits_per_value) {
      // Whole-byte narrowing vs. bit packing: report bit-level (the paper
      // counts bits); the advisor materializes via BitPackedVector.
      out.encoding = bits % 8 == 0 ? PhysicalEncoding::kNarrowInt
                                   : PhysicalEncoding::kBitPacked;
      out.bits_per_value = bits;
      out.rationale = "range [" + std::to_string(stats.int_min()) + ", " +
                      std::to_string(stats.int_max()) + "] fits in " +
                      std::to_string(bits) + " bits";
      return out;
    }
    out.rationale = "declared width already minimal";
    return out;
  }

  if (stats.saw_string()) {
    if (stats.all_timestamp14_strings()) {
      out.encoding = PhysicalEncoding::kTimestampBinary;
      out.bits_per_value = 32;
      out.rationale = "14-byte YYYYMMDDHHMMSS string -> 4-byte epoch";
      return out;
    }
    if (stats.all_numeric_strings()) {
      out.encoding = PhysicalEncoding::kNumericString;
      // Bits for the parsed integer range are unknown here without a second
      // pass; assume the observed max length bounds the magnitude.
      const double digits = static_cast<double>(stats.max_string_len());
      out.bits_per_value = std::min(
          64.0, std::max(1.0, digits * 3.3219280948873623 /* log2(10) */));
      out.rationale = "numeric strings -> integer";
      return out;
    }
    if (!stats.distinct_overflowed() && stats.distinct() <= dict_threshold) {
      const double dict_bits = DictBitsPerValue(stats);
      if (dict_bits < out.declared_bits_per_value) {
        out.encoding = PhysicalEncoding::kDictionary;
        out.bits_per_value = dict_bits;
        out.rationale = std::to_string(stats.distinct()) +
                        " distinct values; dictionary-encode";
        return out;
      }
    }
    // Shrink over-declared capacity to the observed maximum (+2-byte length).
    const double shrunk_bits = 8.0 * (stats.max_string_len() + 2.0);
    if (shrunk_bits < out.declared_bits_per_value) {
      out.encoding = PhysicalEncoding::kShrunkString;
      out.bits_per_value = shrunk_bits;
      out.rationale = "observed max length " +
                      std::to_string(stats.max_string_len()) +
                      " < declared capacity " + std::to_string(column.length);
      return out;
    }
  }

  out.rationale = "no better encoding found";
  return out;
}

}  // namespace nblb
