#include "encoding/dict.h"

namespace nblb {

DictionaryColumn DictionaryColumn::Build(
    const std::vector<std::string>& values) {
  DictionaryColumn col;
  // First pass: assign codes in first-use order.
  for (const auto& v : values) {
    if (!col.lookup_.count(v)) {
      col.lookup_.emplace(v, col.dict_.size());
      col.dict_.push_back(v);
    }
  }
  const unsigned width = BitPackedVector::BitsForRange(
      col.dict_.empty() ? 0 : col.dict_.size() - 1);
  col.codes_.reset(new BitPackedVector(width));
  for (const auto& v : values) {
    col.codes_->Append(col.lookup_.at(v));
  }
  return col;
}

std::string_view DictionaryColumn::Get(size_t i) const {
  return dict_[static_cast<size_t>(codes_->Get(i))];
}

size_t DictionaryColumn::CodeOf(const std::string& probe) const {
  auto it = lookup_.find(probe);
  return it == lookup_.end() ? SIZE_MAX : it->second;
}

size_t DictionaryColumn::PayloadBytes() const {
  size_t dict_bytes = 0;
  for (const auto& s : dict_) dict_bytes += s.size() + sizeof(uint32_t);
  return dict_bytes + (codes_ ? codes_->PayloadBytes() : 0);
}

}  // namespace nblb
