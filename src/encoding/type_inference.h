// Type inference: treating declared schema types as hints (§4.1).
//
// "We argue that schema type definitions should be treated as hints rather
//  than hard constraints. ... automated tools can infer true field types and
//  value distributions to modify internal field definitions and minimize
//  encoding waste, or suggest these optimizations to the user."

#pragma once

#include <string>

#include "catalog/schema.h"
#include "encoding/column_stats.h"

namespace nblb {

/// \brief Physical representation the advisor recommends for a column.
enum class PhysicalEncoding {
  kPlain,            ///< keep declared representation
  kNarrowInt,        ///< integer narrowed to minimal whole bytes
  kBitPacked,        ///< integer packed to minimal bits
  kBoolBit,          ///< single bit
  kTimestampBinary,  ///< 14-char string -> 4-byte epoch seconds
  kNumericString,    ///< numeric string -> integer (then bit-packed)
  kDictionary,       ///< low-cardinality string -> code + dictionary
  kShrunkString,     ///< capacity shrunk to observed max length
  kDropConstant,     ///< single distinct value: store once in the catalog
};

std::string_view PhysicalEncodingToString(PhysicalEncoding e);

/// \brief Result of inferring a column's true physical type.
struct InferredType {
  PhysicalEncoding encoding = PhysicalEncoding::kPlain;
  /// Minimal bits per value under `encoding` (bit-level accounting; the
  /// paper counts "8, or even 4 bits" wins).
  double bits_per_value = 0;
  /// Declared bits per value from the schema hint.
  double declared_bits_per_value = 0;
  /// For integer encodings: the subtracted base (values stored as v - base).
  int64_t base = 0;
  /// Human-readable rationale.
  std::string rationale;

  /// Fraction of declared bits that are waste.
  double WasteFraction() const {
    return declared_bits_per_value <= 0
               ? 0.0
               : 1.0 - bits_per_value / declared_bits_per_value;
  }
};

/// \brief Infers the minimal physical type of a column from its statistics.
///
/// \param column          declared column (the "hint")
/// \param stats           observed statistics
/// \param dict_threshold  max distinct strings to consider a dictionary
InferredType InferColumnType(const Column& column, const ColumnStats& stats,
                             size_t dict_threshold = 4096);

}  // namespace nblb
