#include "encoding/column_stats.h"

#include <algorithm>
#include <cstdlib>

namespace nblb {

bool IsNumericString(const std::string& s) {
  if (s.empty()) return false;
  size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  if (i == s.size() || s.size() - i > 18) return false;  // conservative int64
  for (; i < s.size(); ++i) {
    if (s[i] < '0' || s[i] > '9') return false;
  }
  return true;
}

bool IsTimestamp14(const std::string& s) {
  if (s.size() != 14) return false;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
  }
  const int year = (s[0] - '0') * 1000 + (s[1] - '0') * 100 +
                   (s[2] - '0') * 10 + (s[3] - '0');
  const int month = (s[4] - '0') * 10 + (s[5] - '0');
  const int day = (s[6] - '0') * 10 + (s[7] - '0');
  const int hh = (s[8] - '0') * 10 + (s[9] - '0');
  const int mm = (s[10] - '0') * 10 + (s[11] - '0');
  const int ss = (s[12] - '0') * 10 + (s[13] - '0');
  return year >= 1970 && year <= 2105 && month >= 1 && month <= 12 &&
         day >= 1 && day <= 31 && hh <= 23 && mm <= 59 && ss <= 59;
}

void ColumnStats::ObserveDistinct(const std::string& repr) {
  if (distinct_overflowed_) return;
  distinct_.insert(repr);
  if (distinct_.size() > distinct_limit_) {
    distinct_overflowed_ = true;
    distinct_.clear();
  }
}

void ColumnStats::Observe(const Value& v) {
  ++count_;
  if (IsIntegerFamily(v.type())) {
    saw_int_ = true;
    const int64_t x = v.AsInt();
    int_min_ = std::min(int_min_, x);
    int_max_ = std::max(int_max_, x);
    ObserveDistinct(std::to_string(x));
    return;
  }
  if (v.type() == TypeId::kFloat64) {
    saw_double_ = true;
    ObserveDistinct(std::to_string(v.AsDouble()));
    return;
  }
  // String family.
  saw_string_ = true;
  const std::string& s = v.AsString();
  max_len_ = std::max(max_len_, s.size());
  min_len_ = std::min(min_len_, s.size());
  total_string_bytes_ += s.size();
  if (!IsNumericString(s)) all_numeric_ = false;
  if (!IsTimestamp14(s)) all_ts14_ = false;
  ObserveDistinct(s);
}

}  // namespace nblb
