// BitPackedVector: fixed-width bit packing of unsigned integers.
//
// §4.1: "we found a large number of int fields that store small value ranges
// which can easily be encoded in 8, or even 4 bits." This codec makes those
// suggestions executable (and measurable).

#pragma once

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace nblb {

/// \brief Append-only vector of w-bit unsigned values with random access.
class BitPackedVector {
 public:
  /// \param bit_width  1..64 bits per value
  explicit BitPackedVector(unsigned bit_width) : width_(bit_width) {
    NBLB_CHECK(bit_width >= 1 && bit_width <= 64);
  }

  /// \brief Appends a value (must fit in bit_width bits).
  void Append(uint64_t v);

  /// \brief Value at index i.
  uint64_t Get(size_t i) const;

  size_t size() const { return size_; }
  unsigned bit_width() const { return width_; }

  /// \brief Packed payload bytes (excludes object overhead).
  size_t PayloadBytes() const { return words_.size() * sizeof(uint64_t); }

  /// \brief Minimal bits to represent values in [0, range] (>= 1).
  static unsigned BitsForRange(uint64_t range);

 private:
  unsigned width_;
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace nblb
