// Page identifiers, page-type tags, and shared page constants.
//
// All on-disk structures live in fixed-size pages. The page size is a runtime
// property of the DiskManager (default 8 KiB) so experiments can shrink pages
// to reproduce the paper's "as little as 2% of frequently queried data per
// page" scenarios at laptop scale.

#pragma once

#include <cstdint>

namespace nblb {

using PageId = uint32_t;

/// Sentinel for "no page".
inline constexpr PageId kInvalidPageId = 0xffffffffu;

/// Default page size in bytes.
inline constexpr size_t kDefaultPageSize = 8192;

/// First two bytes of every typed page.
enum PageType : uint16_t {
  kPageTypeFree = 0,
  kPageTypeMeta = 1,
  kPageTypeHeap = 2,
  kPageTypeBTreeInternal = 3,
  kPageTypeBTreeLeaf = 4,
};

}  // namespace nblb
