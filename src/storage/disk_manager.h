// DiskManager: file-backed page store.

#pragma once

#include <cstdint>
#include <string>

#include "common/result.h"
#include "storage/latency_model.h"
#include "storage/page.h"

namespace nblb {

/// \brief I/O counters maintained by the DiskManager.
struct DiskStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t allocations = 0;
};

/// \brief Reads/writes/allocates fixed-size pages in a single file.
///
/// Optionally charges a LatencyModel per operation (used by benchmarks to
/// model disk cost deterministically). Not thread safe; the BufferPool
/// serializes access.
class DiskManager {
 public:
  /// \param path       backing file path (created if missing on Open)
  /// \param page_size  page size in bytes
  /// \param latency    optional latency model (not owned); may be nullptr
  /// \param direct_io  open with O_DIRECT, bypassing the OS page cache so
  ///                   buffer-pool misses pay real storage latency (the
  ///                   regime the paper's RAM-residency arguments assume).
  ///                   Requires page_size to be a multiple of 4096; I/O is
  ///                   staged through an internal aligned bounce buffer so
  ///                   callers need no aligned memory. Falls back to
  ///                   buffered I/O when the filesystem rejects O_DIRECT
  ///                   (e.g. tmpfs); check direct_io() after Open.
  DiskManager(std::string path, size_t page_size,
              LatencyModel* latency = nullptr, bool direct_io = false);
  ~DiskManager();

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// \brief Opens (or creates) the backing file.
  Status Open();

  /// \brief Closes the file; further I/O fails.
  Status Close();

  /// \brief Reads page `id` into `out` (page_size bytes).
  Status ReadPage(PageId id, char* out);

  /// \brief Writes page `id` from `data` (page_size bytes).
  Status WritePage(PageId id, const char* data);

  /// \brief Extends the file by one zeroed page and returns its id.
  Result<PageId> AllocatePage();

  /// \brief fsync the backing file.
  Status Sync();

  size_t page_size() const { return page_size_; }
  PageId num_pages() const { return num_pages_; }
  /// \brief True when the file is actually open with O_DIRECT.
  bool direct_io() const { return direct_io_; }
  const DiskStats& stats() const { return stats_; }
  void ResetStats() { stats_ = DiskStats{}; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  size_t page_size_;
  LatencyModel* latency_;
  bool direct_io_ = false;
  int fd_ = -1;
  PageId num_pages_ = 0;
  DiskStats stats_;
  /// 4096-aligned staging buffer for O_DIRECT transfers; null otherwise.
  char* bounce_ = nullptr;
};

}  // namespace nblb
