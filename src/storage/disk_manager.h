// DiskManager: file-backed page store.

#pragma once

#include <sys/uio.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/latch.h"
#include "common/result.h"
#include "storage/latency_model.h"
#include "storage/page.h"

namespace nblb {

class IoRing;
class MetricsRegistry;

/// \brief Which engine serves asynchronous miss reads.
enum class IoBackend {
  /// io_uring when compiled in and the kernel permits it, else kThreads.
  kAuto = 0,
  /// Prefer io_uring; degrades to kThreads with a stderr note when the
  /// runtime refuses (seccomp, `io_uring_disabled` sysctl, old kernel).
  kUring,
  /// Force the preadv worker-thread fallback (the runtime knob for "force
  /// the fallback path" — also reachable via NBLB_IO_BACKEND=threads).
  kThreads,
};

/// \brief Tuning for the async engine (reads and writes share it).
struct AsyncIoOptions {
  IoBackend backend = IoBackend::kAuto;
  /// Max in-flight async ops (io_uring submission ring size; the kernel
  /// rounds up to a power of two). Reads and writes draw from one budget.
  size_t queue_depth = 64;
  /// Worker threads for the preadv/pwritev fallback backend (started lazily
  /// on the first async submission when that backend is in use).
  size_t io_threads = 4;
};

/// \brief I/O counters maintained by the DiskManager (plain-value snapshot;
/// the live counters are relaxed atomics).
struct DiskStats {
  uint64_t reads = 0;   ///< pages read (single, vectored, and async)
  uint64_t writes = 0;
  uint64_t allocations = 0;
  /// Vectored read ops (multi-page runs) issued by ReadPages/SubmitReads —
  /// with `reads` this gives pages per vectored op, the batching win the
  /// striped pool exists to exploit.
  uint64_t vectored_reads = 0;
  /// Pages submitted through the async engine (SubmitReads, including the
  /// multi-run path of ReadPages).
  uint64_t async_reads = 0;
  /// SubmitReads groups — with `async_reads` this gives pages overlapped
  /// per submission.
  uint64_t async_batches = 0;
  /// Pages submitted through the async WRITE engine (SubmitWrites).
  uint64_t async_writes = 0;
  /// SubmitWrites groups — with `async_writes` this gives pages overlapped
  /// per write submission.
  uint64_t async_write_batches = 0;
  /// Contiguous runs put in flight by SubmitWrites (one IORING_OP_WRITEV /
  /// pwritev task each) — with `async_writes` this gives pages per vectored
  /// write, i.e. how well the flusher's sort coalesced the dirty set.
  uint64_t write_runs = 0;
};

namespace internal {
struct IoGroup;
}  // namespace internal

/// \brief Reads/writes/allocates fixed-size pages in a single file.
///
/// Optionally charges a LatencyModel per operation (used by benchmarks to
/// model disk cost deterministically). Thread safe: pread/pwrite carry their
/// own offsets, allocation is serialized by a mutex, counters are atomics,
/// and O_DIRECT staging buffers come from an internal pool. The striped
/// BufferPool issues reads and write-backs from many threads at once.
///
/// Asynchronous reads: SubmitReads queues a batch of page reads and returns
/// an IoTicket immediately; the reads proceed in parallel (io_uring, or the
/// preadv worker pool) until WaitReads/PollCompletions harvests them. This
/// is how one shard worker overlaps all of its non-contiguous miss runs
/// instead of paying device latency once per run.
///
/// Asynchronous writes are the mirror image: SubmitWrites puts every
/// contiguous run of a (sorted) dirty batch in flight at once
/// (IORING_OP_WRITEV, or the pwritev worker pool) and WaitWrites harvests
/// the group — the buffer pool's flusher, eviction write-backs, and
/// FlushAll/Checkpoint all drain through it instead of paying one
/// synchronous pwrite per page.
class DiskManager {
 public:
  /// \brief Completion token for one SubmitReads group. Move-only in
  /// spirit (copying shares the same completion state). A ticket dropped
  /// without WaitReads leaves its reads to finish in the background; they
  /// are drained at Close/destruction.
  class IoTicket {
   public:
    IoTicket() = default;
    bool valid() const { return group_ != nullptr; }

   private:
    friend class DiskManager;
    std::shared_ptr<internal::IoGroup> group_;
  };

  /// \param path       backing file path (created if missing on Open)
  /// \param page_size  page size in bytes
  /// \param latency    optional latency model (not owned); may be nullptr
  /// \param direct_io  open with O_DIRECT, bypassing the OS page cache so
  ///                   buffer-pool misses pay real storage latency (the
  ///                   regime the paper's RAM-residency arguments assume).
  ///                   Requires page_size to be a multiple of 4096. Aligned
  ///                   caller buffers (the BufferPool's frame arena) are
  ///                   transferred directly; unaligned ones are staged
  ///                   through pooled bounce buffers. Falls back to buffered
  ///                   I/O when the filesystem rejects O_DIRECT (e.g.
  ///                   tmpfs); check direct_io() after Open.
  /// \param aio        async read engine tuning; the NBLB_IO_BACKEND
  ///                   environment variable (auto|uring|threads) overrides
  ///                   aio.backend, so CI can force either path without a
  ///                   rebuild.
  DiskManager(std::string path, size_t page_size,
              LatencyModel* latency = nullptr, bool direct_io = false,
              AsyncIoOptions aio = {});
  ~DiskManager();

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// \brief Opens (or creates) the backing file and the async engine.
  Status Open();

  /// \brief Closes the file; further I/O fails. Drains in-flight async
  /// reads first.
  Status Close();

  /// \brief Reads page `id` into `out` (page_size bytes).
  Status ReadPage(PageId id, char* out);

  /// \brief Reads `n` pages: `ids` must be ascending and unique; `dsts[i]`
  /// receives page `ids[i]`. Contiguous id runs become one vectored op each
  /// (scattering into the destination buffers). A single run is one
  /// synchronous preadv; multiple runs are submitted through the async
  /// engine so they overlap at the device instead of queueing behind each
  /// other — SubmitReads + WaitReads under the hood.
  Status ReadPages(const PageId* ids, char* const* dsts, size_t n);

  /// \brief Begins asynchronous reads of `n` pages (`ids` ascending and
  /// unique, same contract as ReadPages) and returns immediately with a
  /// ticket. Destination buffers must stay alive until the ticket
  /// completes. Validation errors (not open, id out of range) surface here;
  /// device errors surface from WaitReads/PollCompletions.
  Status SubmitReads(const PageId* ids, char* const* dsts, size_t n,
                     IoTicket* ticket);

  /// \brief Blocks until every read in `ticket` completes; returns the
  /// first error (OK otherwise) and invalidates the ticket. Waiting on an
  /// invalid ticket returns OK.
  Status WaitReads(IoTicket* ticket);

  /// \brief Non-blocking probe: harvests any available completions and
  /// returns true iff the ticket's group is fully complete, in which case
  /// `*status` holds the group's verdict and the ticket is invalidated.
  bool PollCompletions(IoTicket* ticket, Status* status);

  /// \brief Writes page `id` from `data` (page_size bytes).
  Status WritePage(PageId id, const char* data);

  /// \brief Begins asynchronous writes of `n` pages: `ids` must be
  /// ascending and unique, `srcs[i]` supplies page `ids[i]`'s bytes, and
  /// every page must already exist (writes never extend the file).
  /// Contiguous id runs become one vectored op each and ALL runs are in
  /// flight at once. Source buffers must stay alive (and unmodified, if the
  /// on-disk bytes are to be well defined) until the ticket completes.
  /// Validation errors surface here; device errors surface from
  /// WaitWrites/PollCompletions.
  Status SubmitWrites(const PageId* ids, const char* const* srcs, size_t n,
                      IoTicket* ticket);

  /// \brief Blocks until every write in `ticket` completes; returns the
  /// first error (OK otherwise) and invalidates the ticket. Waiting on an
  /// invalid ticket returns OK. (Writes and reads share the completion
  /// machinery: PollCompletions works on write tickets too.)
  Status WaitWrites(IoTicket* ticket);

  /// \brief Extends the file by one zeroed page and returns its id.
  Result<PageId> AllocatePage();

  /// \brief Extends the file by `n` zeroed pages with one write and returns
  /// the id of the first new page. The WAL uses this to grow its tail in
  /// bulk instead of paying one pwrite per page.
  Result<PageId> AllocatePages(size_t n);

  /// \brief fsync the backing file.
  Status Sync();

  size_t page_size() const { return page_size_; }
  PageId num_pages() const {
    return num_pages_.load(std::memory_order_relaxed);
  }
  /// \brief True when the file is actually open with O_DIRECT.
  bool direct_io() const { return direct_io_; }
  /// \brief The async backend actually serving SubmitReads (resolved at
  /// Open: kUring only when the ring came up, else kThreads).
  IoBackend io_backend_in_use() const { return backend_in_use_; }
  /// \brief Aggregated snapshot of the atomic counters.
  DiskStats stats() const;
  void ResetStats();
  /// \brief Publishes every counter under `prefix` (e.g. "disk.") in the
  /// unified registry (see src/obs/). The registry must not outlive this
  /// DiskManager.
  void RegisterMetrics(MetricsRegistry* registry,
                       const std::string& prefix) const;
  const std::string& path() const { return path_; }

 private:
  struct OpRecord;

  /// Borrow/return a 4096-aligned page_size buffer for O_DIRECT staging.
  char* AcquireBounce();
  void ReleaseBounce(char* buf);
  static bool Aligned(const void* p) {
    return reinterpret_cast<uintptr_t>(p) % 4096 == 0;
  }
  void Charge(PageId id, bool write);

  /// The shared preadv/pwritev resume loop: transfers `remaining` bytes at
  /// file offset `off` from/into `iov[iov_pos..n)`, advancing across
  /// partial transfers. `first_id` is for error messages only.
  Status ResumeRunSync(struct iovec* iov, size_t n, size_t iov_pos,
                       off_t off, size_t remaining, PageId first_id,
                       bool is_write);
  /// Synchronous scattered read of one whole contiguous run: reads `run`
  /// pages starting at `first_id` into `iov`.
  Status ReadRunSync(PageId first_id, struct iovec* iov, size_t run);
  /// Synchronous gathered write of one whole contiguous run.
  Status WriteRunSync(PageId first_id, struct iovec* iov, size_t run);

  /// Shared submission path behind SubmitReads/SubmitWrites: validates,
  /// splits the batch into contiguous runs, and puts every run in flight
  /// through the active backend. `bufs` are destinations for reads and
  /// sources for writes.
  Status SubmitBatch(const PageId* ids, char* const* bufs, size_t n,
                     bool is_write, IoTicket* ticket);

  /// Finishes one async op: short-transfer continuation, counters, latency
  /// charge, group accounting. Deletes `op`.
  void CompleteOp(OpRecord* op, Status status);
  /// Translates a raw cqe result into a Status (running the short-read
  /// continuation if needed) and completes the op.
  void CompleteOpRaw(OpRecord* op, int32_t res);

  /// Reaps available uring completions; cq_mu_ must be held. Returns the
  /// number harvested.
  size_t ReapUringLocked();
  /// Blocks until the group completes (backend-appropriate strategy).
  void WaitGroup(const std::shared_ptr<internal::IoGroup>& group);

  void EnsureIoThreads();
  void IoThreadLoop();
  /// Drains every in-flight async op (Close/destructor).
  void DrainAsync();

  std::string path_;
  size_t page_size_;
  LatencyModel* latency_;
  /// LatencyModel keeps sequential-access state; serialize charges.
  SpinLatch latency_mu_;
  bool direct_io_ = false;
  AsyncIoOptions aio_;
  IoBackend backend_in_use_ = IoBackend::kThreads;
  int fd_ = -1;
  std::atomic<PageId> num_pages_{0};
  /// Serializes file extension (write-at-end + size bump).
  std::mutex alloc_mu_;

  struct Counters {
    std::atomic<uint64_t> reads{0};
    std::atomic<uint64_t> writes{0};
    std::atomic<uint64_t> allocations{0};
    std::atomic<uint64_t> vectored_reads{0};
    std::atomic<uint64_t> async_reads{0};
    std::atomic<uint64_t> async_batches{0};
    std::atomic<uint64_t> async_writes{0};
    std::atomic<uint64_t> async_write_batches{0};
    std::atomic<uint64_t> write_runs{0};
  };
  Counters counters_;

  /// O_DIRECT staging: one aligned arena of kBounceSlots page buffers,
  /// allocated once at Open (direct mode only). The free list hands out
  /// arena slots; if demand ever exceeds the arena, one-off aligned
  /// allocations (tracked in bounce_overflow_) cover the burst and then
  /// recycle through the same free list.
  static constexpr size_t kBounceSlots = 32;
  std::mutex bounce_mu_;
  std::vector<char*> bounce_free_;
  char* bounce_arena_ = nullptr;
  std::vector<char*> bounce_overflow_;

  // ---- io_uring backend ----------------------------------------------------
  std::unique_ptr<IoRing> ring_;
  /// Producer side: PushReadv/Flush. Taken before cq_mu_ when both are
  /// needed (in-flight cap); waiters take cq_mu_ alone.
  std::mutex sq_mu_;
  /// Consumer side: reap/dispatch. A waiter may block in
  /// io_uring_enter(GETEVENTS) while holding it; concurrent waiters queue
  /// behind and find their completions already dispatched.
  std::mutex cq_mu_;
  std::atomic<size_t> uring_inflight_{0};

  // ---- preadv worker-thread fallback --------------------------------------
  std::mutex tp_mu_;
  std::condition_variable tp_cv_;
  std::deque<OpRecord*> tp_queue_;
  std::vector<std::thread> tp_threads_;
  std::atomic<size_t> tp_inflight_{0};
  bool tp_stop_ = false;  // under tp_mu_
};

}  // namespace nblb
