// DiskManager: file-backed page store.

#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/latch.h"
#include "common/result.h"
#include "storage/latency_model.h"
#include "storage/page.h"

namespace nblb {

/// \brief I/O counters maintained by the DiskManager (plain-value snapshot;
/// the live counters are relaxed atomics).
struct DiskStats {
  uint64_t reads = 0;   ///< pages read (single and vectored)
  uint64_t writes = 0;
  uint64_t allocations = 0;
  /// preadv syscalls issued by ReadPages — with `reads` this gives pages per
  /// vectored syscall, the batching win the striped pool exists to exploit.
  uint64_t vectored_reads = 0;
};

/// \brief Reads/writes/allocates fixed-size pages in a single file.
///
/// Optionally charges a LatencyModel per operation (used by benchmarks to
/// model disk cost deterministically). Thread safe: pread/pwrite carry their
/// own offsets, allocation is serialized by a mutex, counters are atomics,
/// and O_DIRECT staging buffers come from an internal pool. The striped
/// BufferPool issues reads and write-backs from many threads at once.
class DiskManager {
 public:
  /// \param path       backing file path (created if missing on Open)
  /// \param page_size  page size in bytes
  /// \param latency    optional latency model (not owned); may be nullptr
  /// \param direct_io  open with O_DIRECT, bypassing the OS page cache so
  ///                   buffer-pool misses pay real storage latency (the
  ///                   regime the paper's RAM-residency arguments assume).
  ///                   Requires page_size to be a multiple of 4096. Aligned
  ///                   caller buffers (the BufferPool's frame arena) are
  ///                   transferred directly; unaligned ones are staged
  ///                   through pooled bounce buffers. Falls back to buffered
  ///                   I/O when the filesystem rejects O_DIRECT (e.g.
  ///                   tmpfs); check direct_io() after Open.
  DiskManager(std::string path, size_t page_size,
              LatencyModel* latency = nullptr, bool direct_io = false);
  ~DiskManager();

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// \brief Opens (or creates) the backing file.
  Status Open();

  /// \brief Closes the file; further I/O fails.
  Status Close();

  /// \brief Reads page `id` into `out` (page_size bytes).
  Status ReadPage(PageId id, char* out);

  /// \brief Reads `n` pages with vectored I/O: `ids` must be ascending and
  /// unique; `dsts[i]` receives page `ids[i]`. Contiguous id runs become one
  /// preadv each (scattering into the destination buffers), so a sorted miss
  /// batch costs one syscall per run instead of one per page.
  Status ReadPages(const PageId* ids, char* const* dsts, size_t n);

  /// \brief Writes page `id` from `data` (page_size bytes).
  Status WritePage(PageId id, const char* data);

  /// \brief Extends the file by one zeroed page and returns its id.
  Result<PageId> AllocatePage();

  /// \brief fsync the backing file.
  Status Sync();

  size_t page_size() const { return page_size_; }
  PageId num_pages() const {
    return num_pages_.load(std::memory_order_relaxed);
  }
  /// \brief True when the file is actually open with O_DIRECT.
  bool direct_io() const { return direct_io_; }
  /// \brief Aggregated snapshot of the atomic counters.
  DiskStats stats() const;
  void ResetStats();
  const std::string& path() const { return path_; }

 private:
  /// Borrow/return a 4096-aligned page_size buffer for O_DIRECT staging.
  char* AcquireBounce();
  void ReleaseBounce(char* buf);
  static bool Aligned(const void* p) {
    return reinterpret_cast<uintptr_t>(p) % 4096 == 0;
  }
  void Charge(PageId id, bool write);

  std::string path_;
  size_t page_size_;
  LatencyModel* latency_;
  /// LatencyModel keeps sequential-access state; serialize charges.
  SpinLatch latency_mu_;
  bool direct_io_ = false;
  int fd_ = -1;
  std::atomic<PageId> num_pages_{0};
  /// Serializes file extension (write-at-end + size bump).
  std::mutex alloc_mu_;

  struct Counters {
    std::atomic<uint64_t> reads{0};
    std::atomic<uint64_t> writes{0};
    std::atomic<uint64_t> allocations{0};
    std::atomic<uint64_t> vectored_reads{0};
  };
  Counters counters_;

  std::mutex bounce_mu_;
  std::vector<char*> bounce_free_;
};

}  // namespace nblb
