// HeapFile: fixed-width slotted tuple storage over chained pages.
//
// Tuples are fixed width (the paper's simplification, §2.1.1). Insertion is
// append-to-last-page by default — exactly the "append to table" placement
// the paper blames for locality waste (§3.1): deleting a tuple leaves a hole
// that is NOT reused unless `reuse_free_slots` is set, so hot/cold clustering
// by delete-then-append behaves like the paper describes.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "storage/buffer_pool.h"
#include "storage/rid.h"

namespace nblb {

/// \brief Placement policy knobs for a heap file.
struct HeapFileOptions {
  /// When true, Insert fills holes left by Delete before extending the file.
  bool reuse_free_slots = false;
};

/// \brief Occupancy summary across all pages of a heap file.
struct HeapFileStats {
  uint64_t pages = 0;
  uint64_t capacity_slots = 0;
  uint64_t used_slots = 0;

  /// Fraction of allocated slots holding live tuples.
  double Utilization() const {
    return capacity_slots == 0
               ? 0.0
               : static_cast<double>(used_slots) /
                     static_cast<double>(capacity_slots);
  }
};

/// \brief Fixed-width tuple heap. Not thread safe; callers serialize.
class HeapFile {
 public:
  /// \brief Creates a new heap file (allocates its first page).
  static Result<std::unique_ptr<HeapFile>> Create(BufferPool* bp,
                                                  size_t tuple_size,
                                                  HeapFileOptions options = {});

  /// \brief Re-attaches to an existing heap file by its first page id,
  /// walking the page chain to rebuild the in-memory directory.
  static Result<std::unique_ptr<HeapFile>> Attach(BufferPool* bp,
                                                  size_t tuple_size,
                                                  PageId first_page,
                                                  HeapFileOptions options = {});

  /// \brief Crash-recovery attach: walks the chain like Attach but treats a
  /// bad link (wrong page type, tuple-size mismatch, next pointer past the
  /// end of the file, or a cycle) as the end of the heap instead of an
  /// error — the tail page's link may never have been flushed before the
  /// crash. The last good page's next pointer is repaired to
  /// kInvalidPageId (and marked dirty) so the chain is consistent again.
  /// Only valid after the WAL replay path re-applies lost tail inserts.
  static Result<std::unique_ptr<HeapFile>> AttachTolerant(
      BufferPool* bp, size_t tuple_size, PageId first_page,
      HeapFileOptions options = {});

  /// \brief Inserts a tuple (must be exactly tuple_size bytes).
  Result<Rid> Insert(const Slice& tuple);

  /// \brief Copies the tuple at `rid` into `out` (tuple_size bytes).
  Status Get(const Rid& rid, char* out);
  Status Get(const Rid& rid, std::string* out);

  /// \brief Batched point reads: fetches the distinct pages of `rids`
  /// through chunked, pipelined BufferPool batch fetches (each chunk's
  /// misses are one overlapped async read group, and the next chunk's
  /// reads are submitted before the current chunk's tuples are copied),
  /// then copies each tuple. `tuples` and `statuses` are resized to
  /// rids.size() and filled 1:1; a missing tuple yields NotFound in its
  /// status slot without failing the call. The returned Status covers
  /// infrastructure failures only.
  Status GetBatch(const std::vector<Rid>& rids,
                  std::vector<std::string>* tuples,
                  std::vector<Status>* statuses);

  /// \brief Overwrites the tuple at `rid` in place.
  Status Update(const Rid& rid, const Slice& tuple);

  /// \brief Removes the tuple at `rid` (slot becomes a hole).
  Status Delete(const Rid& rid);

  /// \brief Calls fn(rid, bytes) for every live tuple in page-chain order.
  /// Stops early and propagates if fn returns a non-OK status.
  Status ForEach(
      const std::function<Status(const Rid&, const char*)>& fn);

  /// \brief Live-tuple count.
  uint64_t tuple_count() const { return tuple_count_; }
  size_t tuple_size() const { return tuple_size_; }
  PageId first_page_id() const { return pages_.front(); }
  const std::vector<PageId>& pages() const { return pages_; }

  /// \brief Tuples a single page can hold at this tuple size.
  size_t SlotsPerPage() const { return slots_per_page_; }

  /// \brief Walks all pages and reports occupancy (the §3.1 "2% utilization"
  /// measurement).
  Result<HeapFileStats> ComputeStats();

 private:
  HeapFile(BufferPool* bp, size_t tuple_size, HeapFileOptions options);

  Status AppendPage();
  static size_t ComputeSlotsPerPage(size_t page_size, size_t tuple_size);

  BufferPool* bp_;
  size_t tuple_size_;
  HeapFileOptions options_;
  size_t slots_per_page_;
  size_t bitmap_bytes_;
  std::vector<PageId> pages_;
  std::vector<PageId> pages_with_holes_;  // only used when reuse_free_slots
  uint64_t tuple_count_ = 0;
};

}  // namespace nblb
