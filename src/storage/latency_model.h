// LatencyModel: deterministic storage-latency accounting on a virtual clock.
//
// The paper's experiments depend on the ratio between three access regimes —
// CPU/memory (ns), buffer-pool page access (100s of ns), and disk (ms). To
// reproduce figures deterministically we charge disk operations to a
// VirtualClock instead of sleeping on real hardware; see DESIGN.md §4
// (substitutions). Defaults model a 2011-era SATA disk: 5 ms random access,
// 100 MB/s sequential transfer.

#pragma once

#include <cstdint>

#include "common/vclock.h"
#include "storage/page.h"

namespace nblb {

/// \brief Configuration for simulated storage latency.
struct LatencyModelOptions {
  /// Charged for a read/write whose page is not adjacent to the previous one.
  uint64_t seek_ns = 5'000'000;  // 5 ms
  /// Charged per byte transferred (default 100 MB/s == 10 ns/byte).
  uint64_t transfer_ns_per_byte = 10;
  /// When false, no latency is charged (unit tests).
  bool enabled = true;
};

/// \brief Charges simulated latency for page I/O to a VirtualClock.
///
/// Sequential accesses (page id == previous id + 1) skip the seek charge,
/// modelling elevator-friendly scans vs. random point reads.
class LatencyModel {
 public:
  LatencyModel(LatencyModelOptions options, VirtualClock* clock)
      : options_(options), clock_(clock) {}

  /// \brief Charges one page read of `page_size` bytes at `id`.
  void ChargeRead(PageId id, size_t page_size) { Charge(id, page_size); }

  /// \brief Charges one page write of `page_size` bytes at `id`.
  void ChargeWrite(PageId id, size_t page_size) { Charge(id, page_size); }

  const LatencyModelOptions& options() const { return options_; }
  VirtualClock* clock() const { return clock_; }

 private:
  void Charge(PageId id, size_t page_size) {
    if (!options_.enabled || clock_ == nullptr) return;
    uint64_t ns = options_.transfer_ns_per_byte * page_size;
    if (last_page_ == kInvalidPageId || id != last_page_ + 1) {
      ns += options_.seek_ns;
    }
    last_page_ = id;
    clock_->Advance(ns);
  }

  LatencyModelOptions options_;
  VirtualClock* clock_;
  PageId last_page_ = kInvalidPageId;
};

}  // namespace nblb
