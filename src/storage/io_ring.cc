#include "storage/io_ring.h"

#if NBLB_HAVE_IO_URING

#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace nblb {

namespace {

int SysIoUringSetup(unsigned entries, struct io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int SysIoUringEnter(int fd, unsigned to_submit, unsigned min_complete,
                    unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

}  // namespace

std::unique_ptr<IoRing> IoRing::TryCreate(unsigned entries) {
  if (entries == 0) entries = 1;
  struct io_uring_params p;
  std::memset(&p, 0, sizeof(p));
  const int fd = SysIoUringSetup(entries, &p);
  if (fd < 0) return nullptr;  // seccomp / sysctl / pre-5.1 kernel

  std::unique_ptr<IoRing> ring(new IoRing());
  ring->fd_ = fd;
  ring->sq_entries_ = p.sq_entries;
  ring->cq_entries_ = p.cq_entries;

  size_t sq_len = p.sq_off.array + p.sq_entries * sizeof(unsigned);
  size_t cq_len = p.cq_off.cqes + p.cq_entries * sizeof(struct io_uring_cqe);
  const bool single_mmap = (p.features & IORING_FEAT_SINGLE_MMAP) != 0;
  if (single_mmap) {
    sq_len = cq_len = sq_len > cq_len ? sq_len : cq_len;
  }

  ring->sq_map_len_ = sq_len;
  ring->sq_ptr_ = ::mmap(nullptr, sq_len, PROT_READ | PROT_WRITE,
                         MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_SQ_RING);
  if (ring->sq_ptr_ == MAP_FAILED) {
    ring->sq_ptr_ = nullptr;
    return nullptr;  // dtor closes fd
  }
  if (single_mmap) {
    ring->cq_ptr_ = ring->sq_ptr_;
    ring->cq_map_len_ = 0;  // owned by the sq mapping
  } else {
    ring->cq_map_len_ = cq_len;
    ring->cq_ptr_ = ::mmap(nullptr, cq_len, PROT_READ | PROT_WRITE,
                           MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_CQ_RING);
    if (ring->cq_ptr_ == MAP_FAILED) {
      ring->cq_ptr_ = nullptr;
      return nullptr;
    }
  }
  ring->sqes_map_len_ = p.sq_entries * sizeof(struct io_uring_sqe);
  void* sqes = ::mmap(nullptr, ring->sqes_map_len_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_SQES);
  if (sqes == MAP_FAILED) return nullptr;
  ring->sqes_ = static_cast<struct io_uring_sqe*>(sqes);

  char* sq = static_cast<char*>(ring->sq_ptr_);
  ring->sq_head_ = reinterpret_cast<unsigned*>(sq + p.sq_off.head);
  ring->sq_tail_ = reinterpret_cast<unsigned*>(sq + p.sq_off.tail);
  ring->sq_mask_ = reinterpret_cast<unsigned*>(sq + p.sq_off.ring_mask);
  ring->sq_array_ = reinterpret_cast<unsigned*>(sq + p.sq_off.array);
  char* cq = static_cast<char*>(ring->cq_ptr_);
  ring->cq_head_ = reinterpret_cast<unsigned*>(cq + p.cq_off.head);
  ring->cq_tail_ = reinterpret_cast<unsigned*>(cq + p.cq_off.tail);
  ring->cq_mask_ = reinterpret_cast<unsigned*>(cq + p.cq_off.ring_mask);
  ring->cqes_ =
      reinterpret_cast<struct io_uring_cqe*>(cq + p.cq_off.cqes);

  // Identity-map the indirection array once; slot i always names sqe i, so
  // PushReadv only ever touches the sqe itself and the tail.
  for (unsigned i = 0; i < p.sq_entries; ++i) ring->sq_array_[i] = i;
  return ring;
}

IoRing::~IoRing() {
  if (sqes_ != nullptr) ::munmap(sqes_, sqes_map_len_);
  if (cq_ptr_ != nullptr && cq_map_len_ != 0) ::munmap(cq_ptr_, cq_map_len_);
  if (sq_ptr_ != nullptr) ::munmap(sq_ptr_, sq_map_len_);
  if (fd_ >= 0) ::close(fd_);
}

bool IoRing::PushRaw(uint8_t opcode, int fd, uint64_t addr, unsigned len,
                     uint64_t offset, uint32_t op_flags, uint64_t user_data) {
  // Sole producer (caller-serialized): tail is ours to read relaxed, head is
  // advanced by the kernel as it consumes sqes.
  const unsigned head = __atomic_load_n(sq_head_, __ATOMIC_ACQUIRE);
  const unsigned tail = __atomic_load_n(sq_tail_, __ATOMIC_RELAXED);
  if (tail - head >= sq_entries_) return false;
  struct io_uring_sqe* sqe = &sqes_[tail & *sq_mask_];
  std::memset(sqe, 0, sizeof(*sqe));
  sqe->opcode = opcode;
  sqe->fd = fd;
  sqe->addr = addr;
  sqe->len = len;
  sqe->off = offset;
  sqe->rw_flags = static_cast<int>(op_flags);  // msg_flags/accept_flags union
  sqe->user_data = user_data;
  // Publish the sqe before the tail so the kernel never reads a stale entry.
  __atomic_store_n(sq_tail_, tail + 1, __ATOMIC_RELEASE);
  ++to_submit_;
  return true;
}

bool IoRing::PushOp(uint8_t opcode, int fd, const struct iovec* iov,
                    unsigned nr_iov, uint64_t offset, uint64_t user_data) {
  return PushRaw(opcode, fd, reinterpret_cast<uint64_t>(iov), nr_iov, offset,
                 0, user_data);
}

bool IoRing::PushReadv(int fd, const struct iovec* iov, unsigned nr_iov,
                       uint64_t offset, uint64_t user_data) {
  return PushOp(IORING_OP_READV, fd, iov, nr_iov, offset, user_data);
}

bool IoRing::PushWritev(int fd, const struct iovec* iov, unsigned nr_iov,
                        uint64_t offset, uint64_t user_data) {
  return PushOp(IORING_OP_WRITEV, fd, iov, nr_iov, offset, user_data);
}

bool IoRing::PushAccept(int listen_fd, uint64_t user_data) {
  // addr/addrlen of the peer are discarded (addr == 0); the accepted fd
  // arrives as the cqe res.
  return PushRaw(IORING_OP_ACCEPT, listen_fd, 0, 0, 0, 0, user_data);
}

bool IoRing::PushRecv(int fd, void* buf, unsigned len, uint64_t user_data) {
  return PushRaw(IORING_OP_RECV, fd, reinterpret_cast<uint64_t>(buf), len, 0,
                 0, user_data);
}

bool IoRing::PushSend(int fd, const void* buf, unsigned len,
                      uint64_t user_data) {
  return PushRaw(IORING_OP_SEND, fd, reinterpret_cast<uint64_t>(buf), len, 0,
                 MSG_NOSIGNAL, user_data);
}

bool IoRing::PushCancel(uint64_t target_user_data, uint64_t user_data) {
  // addr names the target op's user_data; fd is unused (-1).
  return PushRaw(IORING_OP_ASYNC_CANCEL, -1, target_user_data, 0, 0, 0,
                 user_data);
}

int IoRing::Flush() {
  while (to_submit_ > 0) {
    const int r = SysIoUringEnter(fd_, to_submit_, 0, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return -errno;
    }
    to_submit_ -= static_cast<unsigned>(r);
  }
  return 0;
}

size_t IoRing::Reap(Cqe* out, size_t max) {
  unsigned head = __atomic_load_n(cq_head_, __ATOMIC_RELAXED);
  const unsigned tail = __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE);
  size_t n = 0;
  while (head != tail && n < max) {
    const struct io_uring_cqe* cqe = &cqes_[head & *cq_mask_];
    out[n].user_data = cqe->user_data;
    out[n].res = cqe->res;
    ++n;
    ++head;
  }
  if (n > 0) __atomic_store_n(cq_head_, head, __ATOMIC_RELEASE);
  return n;
}

int IoRing::WaitCqe() {
  for (;;) {
    const int r = SysIoUringEnter(fd_, 0, 1, IORING_ENTER_GETEVENTS);
    if (r >= 0) return 0;
    if (errno != EINTR) return -errno;
  }
}

}  // namespace nblb

#endif  // NBLB_HAVE_IO_URING
