// Superblock: the per-shard durable catalog root.
//
// A shard's backing file holds heap and B-tree pages but no record of where
// they start or what schema they carry — historically that lived only in
// process memory, which is why reopen was impossible. The superblock
// persists exactly that bootstrap state in a tiny sidecar file
// (`<db path>.sb`): schema, table options, heap/index roots, semantic-ID
// codec config, the checkpoint LSN the WAL replays from, and a clean-
// shutdown flag.
//
// Torn-write safety comes from double buffering: the sidecar holds two
// fixed 4096-byte slots and a publish writes version v into slot (v % 2),
// then fsyncs. A crash mid-write can only tear the slot being written; the
// other slot still holds the previous version intact. Readers validate both
// slots (magic, format, CRC32 over the payload) and take the highest valid
// version.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/result.h"
#include "storage/page.h"

namespace nblb {

/// \brief Everything needed to reattach a shard to its backing file.
struct SuperblockData {
  /// Monotonic publish counter; also selects the slot (version % 2).
  uint64_t version = 0;
  /// WAL records with lsn <= checkpoint_lsn are reflected in the data file
  /// as of this publish; replay starts after it.
  uint64_t checkpoint_lsn = 0;
  uint32_t page_size = 0;
  /// Data-file page count at publish time (informational; the file may be
  /// longer after a crash — trailing pages are unreferenced garbage).
  uint32_t num_pages = 0;
  PageId heap_first_page = kInvalidPageId;
  PageId btree_meta_page = kInvalidPageId;
  /// SemanticIdCodec configuration (0 = shard is not partitioned).
  uint32_t semid_partition_bits = 0;
  /// True only when the last publish came from an orderly close; cleared
  /// immediately after every open so a crash implies "dirty".
  bool clean_shutdown = false;
  bool reuse_free_slots = false;
  bool enable_index_cache = true;
  std::vector<uint32_t> key_columns;
  std::vector<uint32_t> cached_columns;
  std::vector<Column> columns;
};

/// \brief Reads/writes the double-buffered superblock sidecar. Stateless:
/// publishes are rare (one per checkpoint), so each call opens the file.
class Superblock {
 public:
  /// \brief Sidecar path for a data file: "<db_path>.sb".
  static std::string PathFor(const std::string& db_path);

  /// \brief Serializes `data` into slot (data.version % 2) and fsyncs.
  static Status Write(const std::string& sb_path, const SuperblockData& data);

  /// \brief Validates both slots and returns the highest valid version.
  /// NotFound when the file is missing; Corruption when neither slot
  /// validates.
  static Result<SuperblockData> Read(const std::string& sb_path);
};

}  // namespace nblb
