#include "storage/disk_manager.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "common/logging.h"

namespace nblb {

DiskManager::DiskManager(std::string path, size_t page_size,
                         LatencyModel* latency)
    : path_(std::move(path)), page_size_(page_size), latency_(latency) {
  NBLB_CHECK(page_size_ >= 512);
}

DiskManager::~DiskManager() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Status DiskManager::Open() {
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) {
    return Status::IOError("open failed for " + path_ + ": " +
                           std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd_, &st) != 0) {
    return Status::IOError("fstat failed: " + std::string(std::strerror(errno)));
  }
  if (st.st_size % static_cast<off_t>(page_size_) != 0) {
    return Status::Corruption("file size is not a multiple of page size");
  }
  num_pages_ = static_cast<PageId>(st.st_size / static_cast<off_t>(page_size_));
  return Status::OK();
}

Status DiskManager::Close() {
  if (fd_ >= 0) {
    if (::close(fd_) != 0) {
      fd_ = -1;
      return Status::IOError("close failed");
    }
    fd_ = -1;
  }
  return Status::OK();
}

Status DiskManager::ReadPage(PageId id, char* out) {
  if (fd_ < 0) return Status::IOError("disk manager not open");
  if (id >= num_pages_) {
    return Status::OutOfRange("read past end of file: page " +
                              std::to_string(id));
  }
  const off_t off = static_cast<off_t>(id) * static_cast<off_t>(page_size_);
  ssize_t n = ::pread(fd_, out, page_size_, off);
  if (n != static_cast<ssize_t>(page_size_)) {
    return Status::IOError("short read on page " + std::to_string(id));
  }
  ++stats_.reads;
  if (latency_) latency_->ChargeRead(id, page_size_);
  return Status::OK();
}

Status DiskManager::WritePage(PageId id, const char* data) {
  if (fd_ < 0) return Status::IOError("disk manager not open");
  if (id >= num_pages_) {
    return Status::OutOfRange("write past end of file: page " +
                              std::to_string(id));
  }
  const off_t off = static_cast<off_t>(id) * static_cast<off_t>(page_size_);
  ssize_t n = ::pwrite(fd_, data, page_size_, off);
  if (n != static_cast<ssize_t>(page_size_)) {
    return Status::IOError("short write on page " + std::to_string(id));
  }
  ++stats_.writes;
  if (latency_) latency_->ChargeWrite(id, page_size_);
  return Status::OK();
}

Result<PageId> DiskManager::AllocatePage() {
  if (fd_ < 0) return Status::IOError("disk manager not open");
  const PageId id = num_pages_;
  std::vector<char> zero(page_size_, 0);
  const off_t off = static_cast<off_t>(id) * static_cast<off_t>(page_size_);
  ssize_t n = ::pwrite(fd_, zero.data(), page_size_, off);
  if (n != static_cast<ssize_t>(page_size_)) {
    return Status::IOError("allocation write failed");
  }
  ++num_pages_;
  ++stats_.allocations;
  return id;
}

Status DiskManager::Sync() {
  if (fd_ < 0) return Status::IOError("disk manager not open");
  if (::fsync(fd_) != 0) return Status::IOError("fsync failed");
  return Status::OK();
}

}  // namespace nblb
