#include "storage/disk_manager.h"

#include <fcntl.h>
#include <limits.h>
#include <sys/stat.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "obs/event_ring.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/io_ring.h"

namespace nblb {

namespace {
/// Cap on iovecs per preadv (the kernel's IOV_MAX is typically 1024).
constexpr size_t kMaxIov = IOV_MAX < 1024 ? IOV_MAX : 1024;

/// Advances the iovec cursor `*pos` past `transferred` bytes, trimming a
/// partially filled entry in place. Partial transfers land on a page
/// boundary only by luck; every resumption path shares this general case.
void AdvanceIov(struct iovec* iov, size_t n, size_t* pos,
                size_t transferred) {
  while (transferred > 0 && *pos < n) {
    if (transferred >= iov[*pos].iov_len) {
      transferred -= iov[*pos].iov_len;
      ++*pos;
    } else {
      iov[*pos].iov_base =
          static_cast<char*>(iov[*pos].iov_base) + transferred;
      iov[*pos].iov_len -= transferred;
      transferred = 0;
    }
  }
}
}  // namespace

namespace internal {

/// Completion state shared by one SubmitReads group, its in-flight
/// OpRecords, and the caller's IoTicket. The ticket and every op hold a
/// shared_ptr, so a ticket dropped mid-flight keeps the state alive until
/// the last completion lands.
struct IoGroup {
  std::atomic<uint32_t> remaining{0};
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;   // under mu; set when remaining hits zero
  Status error;        // under mu; first failure wins
};

}  // namespace internal

using internal::IoGroup;

/// One in-flight async op: a contiguous run of pages read with a single
/// vectored transfer. The iovec array lives here so it survives until the
/// kernel (or the worker thread) is done with it.
struct DiskManager::OpRecord {
  std::shared_ptr<IoGroup> group;
  std::vector<struct iovec> iov;
  PageId first_id = kInvalidPageId;
  size_t pages = 0;
  /// Direction: false = readv into the iov buffers, true = writev from
  /// them. Set before publish; read by completion/worker threads after.
  bool is_write = false;
  /// Release-stored by the submitter after the fields above are final,
  /// acquire-loaded by whichever thread reaps the completion. The kernel's
  /// ring barriers already order these in practice; this makes the edge
  /// visible to ThreadSanitizer (different threads may submit and reap).
  std::atomic<bool> published{false};
};

DiskManager::DiskManager(std::string path, size_t page_size,
                         LatencyModel* latency, bool direct_io,
                         AsyncIoOptions aio)
    : path_(std::move(path)),
      page_size_(page_size),
      latency_(latency),
      direct_io_(direct_io),
      aio_(aio) {
  NBLB_CHECK(page_size_ >= 512);
  // O_DIRECT transfers must be logical-block aligned in offset, length, and
  // memory; requiring a 4096-multiple page covers every common block size.
  if (direct_io_) NBLB_CHECK(page_size_ % 4096 == 0);
  if (aio_.queue_depth == 0) aio_.queue_depth = 1;
  if (aio_.io_threads == 0) aio_.io_threads = 1;
}

DiskManager::~DiskManager() {
  DrainAsync();
  {
    std::lock_guard<std::mutex> lk(tp_mu_);
    tp_stop_ = true;
  }
  tp_cv_.notify_all();
  for (std::thread& t : tp_threads_) {
    if (t.joinable()) t.join();
  }
  if (fd_ >= 0) {
    ::close(fd_);
  }
  for (char* buf : bounce_overflow_) std::free(buf);
  std::free(bounce_arena_);
}

char* DiskManager::AcquireBounce() {
  {
    std::lock_guard<std::mutex> lk(bounce_mu_);
    if (!bounce_free_.empty()) {
      char* buf = bounce_free_.back();
      bounce_free_.pop_back();
      return buf;
    }
  }
  // Arena exhausted (or never allocated — buffered mode): one-off aligned
  // allocation that joins the free list on release and is owned by
  // bounce_overflow_ for the destructor.
  void* mem = nullptr;
  NBLB_CHECK_MSG(::posix_memalign(&mem, 4096, page_size_) == 0,
                 "posix_memalign failed for bounce buffer");
  {
    std::lock_guard<std::mutex> lk(bounce_mu_);
    bounce_overflow_.push_back(static_cast<char*>(mem));
  }
  return static_cast<char*>(mem);
}

void DiskManager::ReleaseBounce(char* buf) {
  std::lock_guard<std::mutex> lk(bounce_mu_);
  bounce_free_.push_back(buf);
}

void DiskManager::Charge(PageId id, bool write) {
  if (latency_ == nullptr) return;
  LatchGuard g(latency_mu_);
  if (write) {
    latency_->ChargeWrite(id, page_size_);
  } else {
    latency_->ChargeRead(id, page_size_);
  }
}

Status DiskManager::Open() {
  if (direct_io_) {
    fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_DIRECT, 0644);
    if (fd_ < 0) {
      if (errno != EINVAL) {
        return Status::IOError("open(O_DIRECT) failed for " + path_ + ": " +
                               std::strerror(errno));
      }
      // EINVAL: filesystem without O_DIRECT support (tmpfs etc.). Degrade
      // to buffered I/O rather than failing the whole database, but leave
      // a trace — a benchmark run in this mode measures the page cache,
      // not the device (callers can also poll direct_io()).
      std::fprintf(stderr,
                   "nblb: %s does not support O_DIRECT; falling back to "
                   "buffered I/O\n",
                   path_.c_str());
      direct_io_ = false;
    }
  }
  if (fd_ < 0) {
    fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT, 0644);
  }
  if (fd_ < 0) {
    return Status::IOError("open failed for " + path_ + ": " +
                           std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd_, &st) != 0) {
    return Status::IOError("fstat failed: " + std::string(std::strerror(errno)));
  }
  if (st.st_size % static_cast<off_t>(page_size_) != 0) {
    return Status::Corruption("file size is not a multiple of page size");
  }
  num_pages_.store(
      static_cast<PageId>(st.st_size / static_cast<off_t>(page_size_)),
      std::memory_order_relaxed);

  // Direct mode stages unaligned transfers through bounce buffers; carve
  // them all out of ONE aligned arena up front instead of a posix_memalign
  // per first-use (the old scheme allocated on every pool-empty acquire).
  if (direct_io_ && bounce_arena_ == nullptr) {
    void* mem = nullptr;
    NBLB_CHECK_MSG(
        ::posix_memalign(&mem, 4096, kBounceSlots * page_size_) == 0,
        "posix_memalign failed for bounce arena");
    bounce_arena_ = static_cast<char*>(mem);
    std::lock_guard<std::mutex> lk(bounce_mu_);
    bounce_free_.reserve(kBounceSlots);
    for (size_t i = kBounceSlots; i > 0; --i) {
      bounce_free_.push_back(bounce_arena_ + (i - 1) * page_size_);
    }
  }

  // Resolve the async backend. NBLB_IO_BACKEND overrides the option so CI
  // (and operators) can force the fallback path without a rebuild.
  IoBackend want = aio_.backend;
  if (const char* env = std::getenv("NBLB_IO_BACKEND")) {
    if (std::strcmp(env, "threads") == 0) {
      want = IoBackend::kThreads;
    } else if (std::strcmp(env, "uring") == 0) {
      want = IoBackend::kUring;
    } else if (std::strcmp(env, "auto") == 0) {
      want = IoBackend::kAuto;
    }
  }
  backend_in_use_ = IoBackend::kThreads;
#if NBLB_HAVE_IO_URING
  if (want != IoBackend::kThreads) {
    ring_ = IoRing::TryCreate(static_cast<unsigned>(aio_.queue_depth));
    if (ring_ != nullptr) {
      backend_in_use_ = IoBackend::kUring;
    } else if (want == IoBackend::kUring) {
      std::fprintf(stderr,
                   "nblb: io_uring unavailable at runtime; using the preadv "
                   "thread fallback for %s\n",
                   path_.c_str());
    }
  }
#else
  if (want == IoBackend::kUring) {
    std::fprintf(stderr,
                 "nblb: built without io_uring support; using the preadv "
                 "thread fallback for %s\n",
                 path_.c_str());
  }
#endif
  return Status::OK();
}

Status DiskManager::Close() {
  DrainAsync();
  if (fd_ >= 0) {
    if (::close(fd_) != 0) {
      fd_ = -1;
      return Status::IOError("close failed");
    }
    fd_ = -1;
  }
  return Status::OK();
}

Status DiskManager::ReadPage(PageId id, char* out) {
  if (fd_ < 0) return Status::IOError("disk manager not open");
  if (id >= num_pages()) {
    return Status::OutOfRange("read past end of file: page " +
                              std::to_string(id));
  }
  const off_t off = static_cast<off_t>(id) * static_cast<off_t>(page_size_);
  // Direct I/O needs an aligned destination. The BufferPool's frame arena is
  // aligned, so the common path transfers straight in; unaligned callers are
  // staged through a pooled bounce buffer (the memcpy is noise next to a
  // real device access).
  char* bounce = nullptr;
  char* dst = out;
  if (direct_io_ && !Aligned(out)) {
    bounce = AcquireBounce();
    dst = bounce;
  }
  const ssize_t n = ::pread(fd_, dst, page_size_, off);
  if (n != static_cast<ssize_t>(page_size_)) {
    if (bounce != nullptr) ReleaseBounce(bounce);
    return Status::IOError("short read on page " + std::to_string(id));
  }
  if (bounce != nullptr) {
    std::memcpy(out, bounce, page_size_);
    ReleaseBounce(bounce);
  }
  counters_.reads.fetch_add(1, std::memory_order_relaxed);
  Charge(id, /*write=*/false);
  return Status::OK();
}

Status DiskManager::ResumeRunSync(struct iovec* iov, size_t n,
                                  size_t iov_pos, off_t off,
                                  size_t remaining, PageId first_id,
                                  bool is_write) {
  while (remaining > 0) {
    const ssize_t got =
        is_write
            ? ::pwritev(fd_, iov + iov_pos, static_cast<int>(n - iov_pos),
                        off)
            : ::preadv(fd_, iov + iov_pos, static_cast<int>(n - iov_pos),
                       off);
    if (got <= 0) {
      return Status::IOError(std::string("short vectored ") +
                             (is_write ? "write" : "read") + " at page " +
                             std::to_string(first_id) +
                             (got < 0 ? std::string(": ") +
                                            std::strerror(errno)
                                      : std::string()));
    }
    remaining -= static_cast<size_t>(got);
    off += got;
    AdvanceIov(iov, n, &iov_pos, static_cast<size_t>(got));
  }
  return Status::OK();
}

Status DiskManager::ReadRunSync(PageId first_id, struct iovec* iov,
                                size_t run) {
  return ResumeRunSync(iov, run, /*iov_pos=*/0,
                       static_cast<off_t>(first_id) *
                           static_cast<off_t>(page_size_),
                       run * page_size_, first_id, /*is_write=*/false);
}

Status DiskManager::WriteRunSync(PageId first_id, struct iovec* iov,
                                 size_t run) {
  return ResumeRunSync(iov, run, /*iov_pos=*/0,
                       static_cast<off_t>(first_id) *
                           static_cast<off_t>(page_size_),
                       run * page_size_, first_id, /*is_write=*/true);
}

Status DiskManager::ReadPages(const PageId* ids, char* const* dsts, size_t n) {
  if (n == 0) return Status::OK();
  if (fd_ < 0) return Status::IOError("disk manager not open");
  const PageId np = num_pages();
  for (size_t i = 0; i < n; ++i) {
    if (ids[i] >= np) {
      return Status::OutOfRange("read past end of file: page " +
                                std::to_string(ids[i]));
    }
    NBLB_DCHECK(i == 0 || ids[i] > ids[i - 1]);
  }
  // One contiguous aligned run is a single synchronous preadv — nothing to
  // overlap. Anything else goes through the async engine so every run is in
  // flight at once instead of queueing behind its predecessor.
  const bool single_run =
      ids[n - 1] == ids[0] + static_cast<PageId>(n - 1) && n <= kMaxIov &&
      [&] {
        if (!direct_io_) return true;
        for (size_t i = 0; i < n; ++i) {
          if (!Aligned(dsts[i])) return false;
        }
        return true;
      }();
  if (!single_run) {
    IoTicket ticket;
    NBLB_RETURN_NOT_OK(SubmitReads(ids, dsts, n, &ticket));
    return WaitReads(&ticket);
  }
  if (n == 1) return ReadPage(ids[0], dsts[0]);
  std::vector<struct iovec> iov(n);
  for (size_t k = 0; k < n; ++k) {
    iov[k].iov_base = dsts[k];
    iov[k].iov_len = page_size_;
  }
  counters_.vectored_reads.fetch_add(1, std::memory_order_relaxed);
  NBLB_RETURN_NOT_OK(ReadRunSync(ids[0], iov.data(), n));
  counters_.reads.fetch_add(n, std::memory_order_relaxed);
  for (size_t k = 0; k < n; ++k) Charge(ids[k], /*write=*/false);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Async engine (reads and writes share the submission/completion machinery)
// ---------------------------------------------------------------------------

void DiskManager::CompleteOp(OpRecord* op, Status status) {
  if (!status.ok()) {
    RecordFlightEvent(FlightEvent::kIoError, op->first_id, op->pages);
  }
  if (status.ok()) {
    if (op->is_write) {
      counters_.writes.fetch_add(op->pages, std::memory_order_relaxed);
    } else {
      counters_.reads.fetch_add(op->pages, std::memory_order_relaxed);
      if (op->pages > 1) {
        counters_.vectored_reads.fetch_add(1, std::memory_order_relaxed);
      }
    }
    for (size_t k = 0; k < op->pages; ++k) {
      Charge(op->first_id + static_cast<PageId>(k), op->is_write);
    }
  }
  std::shared_ptr<IoGroup> group = std::move(op->group);
  delete op;
  if (!status.ok()) {
    std::lock_guard<std::mutex> lk(group->mu);
    if (group->error.ok()) group->error = std::move(status);
  }
  // acq_rel: the release half publishes this op's page bytes (and error)
  // to whoever observes remaining == 0; the acquire half orders the final
  // decrementer after every other op.
  if (group->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lk(group->mu);
    group->done = true;
    group->cv.notify_all();
  }
}

void DiskManager::CompleteOpRaw(OpRecord* op, int32_t res) {
  Status st;
  if (res < 0) {
    st = Status::IOError(std::string("async ") +
                         (op->is_write ? "write" : "read") +
                         " failed at page " + std::to_string(op->first_id) +
                         ": " + std::strerror(-res));
  } else {
    const size_t expected = op->pages * page_size_;
    const size_t got = static_cast<size_t>(res);
    if (got < expected) {
      // Short transfer (legal for the kernel, rare for regular files):
      // finish the remainder synchronously, reusing the same iovecs. A
      // mid-page cut just leaves a trimmed partial iovec to resume from.
      size_t iov_pos = 0;
      AdvanceIov(op->iov.data(), op->iov.size(), &iov_pos, got);
      st = ResumeRunSync(op->iov.data(), op->iov.size(), iov_pos,
                         static_cast<off_t>(op->first_id) *
                                 static_cast<off_t>(page_size_) +
                             static_cast<off_t>(got),
                         expected - got, op->first_id, op->is_write);
    }
  }
  CompleteOp(op, std::move(st));
}

size_t DiskManager::ReapUringLocked() {
#if NBLB_HAVE_IO_URING
  IoRing::Cqe cqes[64];
  size_t total = 0;
  for (;;) {
    const size_t n = ring_->Reap(cqes, 64);
    if (n == 0) break;
    total += n;
    uring_inflight_.fetch_sub(n, std::memory_order_relaxed);
    for (size_t i = 0; i < n; ++i) {
      OpRecord* op = reinterpret_cast<OpRecord*>(cqes[i].user_data);
      // Pairs with the submitter's release store; see OpRecord::published.
      // A cqe implies the sqe was flushed, which happens strictly after
      // the publish store, so this spin is a handful of iterations at
      // most — the yield just keeps a single-vCPU box from burning a
      // timeslice inside cq_mu_.
      while (!op->published.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      CompleteOpRaw(op, cqes[i].res);
    }
  }
  return total;
#else
  return 0;
#endif
}

void DiskManager::EnsureIoThreads() {
  std::lock_guard<std::mutex> lk(tp_mu_);
  if (!tp_threads_.empty()) return;
  tp_threads_.reserve(aio_.io_threads);
  for (size_t i = 0; i < aio_.io_threads; ++i) {
    tp_threads_.emplace_back([this] { IoThreadLoop(); });
  }
}

void DiskManager::IoThreadLoop() {
  for (;;) {
    OpRecord* op = nullptr;
    {
      std::unique_lock<std::mutex> lk(tp_mu_);
      tp_cv_.wait(lk, [this] { return tp_stop_ || !tp_queue_.empty(); });
      if (tp_queue_.empty()) return;  // stop requested and drained
      op = tp_queue_.front();
      tp_queue_.pop_front();
    }
    Status st =
        op->is_write
            ? WriteRunSync(op->first_id, op->iov.data(), op->iov.size())
            : ReadRunSync(op->first_id, op->iov.data(), op->iov.size());
    CompleteOp(op, std::move(st));
    tp_inflight_.fetch_sub(1, std::memory_order_release);
  }
}

Status DiskManager::SubmitReads(const PageId* ids, char* const* dsts,
                                size_t n, IoTicket* ticket) {
  return SubmitBatch(ids, dsts, n, /*is_write=*/false, ticket);
}

Status DiskManager::SubmitWrites(const PageId* ids, const char* const* srcs,
                                 size_t n, IoTicket* ticket) {
  // The iovec ABI is direction-agnostic (iov_base is void* either way) and
  // SubmitBatch never dereferences the buffers itself; writes only read
  // from them, so shedding the const here is safe.
  return SubmitBatch(ids, const_cast<char* const*>(srcs), n,
                     /*is_write=*/true, ticket);
}

Status DiskManager::SubmitBatch(const PageId* ids, char* const* bufs,
                                size_t n, bool is_write, IoTicket* ticket) {
  TraceTimer span(TracePhase::kIoSubmit);
  ticket->group_.reset();
  if (n == 0) return Status::OK();
  if (fd_ < 0) return Status::IOError("disk manager not open");
  const PageId np = num_pages();
  for (size_t i = 0; i < n; ++i) {
    if (ids[i] >= np) {
      return Status::OutOfRange(std::string(is_write ? "write" : "read") +
                                " past end of file: page " +
                                std::to_string(ids[i]));
    }
    NBLB_DCHECK(i == 0 || ids[i] > ids[i - 1]);
  }
  if (is_write) {
    counters_.async_write_batches.fetch_add(1, std::memory_order_relaxed);
  } else {
    counters_.async_batches.fetch_add(1, std::memory_order_relaxed);
  }

  auto group = std::make_shared<IoGroup>();
  std::vector<OpRecord*> ops;
  Status sync_error;  // first failure among synchronously-served pages
  size_t i = 0;
  while (i < n) {
    // In direct mode every buffer of a vectored transfer must be aligned;
    // an unaligned buffer is served synchronously through the bounce path
    // right here (the BufferPool's arenas are always aligned, so this only
    // triggers for ad-hoc callers).
    if (direct_io_ && !Aligned(bufs[i])) {
      Status st = is_write ? WritePage(ids[i], bufs[i])
                           : ReadPage(ids[i], bufs[i]);
      if (!st.ok() && sync_error.ok()) sync_error = st;
      ++i;
      continue;
    }
    size_t j = i + 1;
    while (j < n && ids[j] == ids[j - 1] + 1 && (j - i) < kMaxIov &&
           (!direct_io_ || Aligned(bufs[j]))) {
      ++j;
    }
    const size_t run = j - i;
    OpRecord* op = new OpRecord();
    op->group = group;
    op->first_id = ids[i];
    op->pages = run;
    op->is_write = is_write;
    op->iov.resize(run);
    for (size_t k = 0; k < run; ++k) {
      op->iov[k].iov_base = bufs[i + k];
      op->iov[k].iov_len = page_size_;
    }
    ops.push_back(op);
    if (is_write) {
      counters_.async_writes.fetch_add(run, std::memory_order_relaxed);
      counters_.write_runs.fetch_add(1, std::memory_order_relaxed);
    } else {
      counters_.async_reads.fetch_add(run, std::memory_order_relaxed);
    }
    i = j;
  }

  {
    std::lock_guard<std::mutex> lk(group->mu);
    group->error = sync_error;
  }
  if (ops.empty()) {
    std::lock_guard<std::mutex> lk(group->mu);
    group->done = true;
    ticket->group_ = std::move(group);
    return Status::OK();
  }
  group->remaining.store(static_cast<uint32_t>(ops.size()),
                         std::memory_order_relaxed);

#if NBLB_HAVE_IO_URING
  if (backend_in_use_ == IoBackend::kUring) {
    std::lock_guard<std::mutex> sq(sq_mu_);
    for (OpRecord* op : ops) {
      // Keep in-flight below the CQ capacity so completions cannot
      // overflow; reap (possibly blocking) when the pipe is full. The
      // re-check under cq_mu_ is load-bearing: while this thread was
      // blocked on the mutex, concurrent waiters may have reaped
      // everything — at which point the only pending sqes can be OUR OWN
      // pushed-but-unflushed ones, and a blind WaitCqe would sleep
      // forever on completions nobody has submitted. Decrements happen
      // only under cq_mu_, so once the condition holds here it cannot
      // silently clear before WaitCqe: over-capacity in-flight minus at
      // most sq_capacity unflushed means real in-kernel work remains.
      for (;;) {
        if (uring_inflight_.load(std::memory_order_acquire) <
            ring_->cq_capacity()) {
          break;
        }
        std::lock_guard<std::mutex> cq(cq_mu_);
        if (uring_inflight_.load(std::memory_order_acquire) <
            ring_->cq_capacity()) {
          break;
        }
        if (ReapUringLocked() == 0) ring_->WaitCqe();
      }
      const auto push = [&] {
        const unsigned nr = static_cast<unsigned>(op->iov.size());
        const uint64_t off =
            static_cast<uint64_t>(op->first_id) * page_size_;
        const uint64_t ud = reinterpret_cast<uint64_t>(op);
        return is_write ? ring_->PushWritev(fd_, op->iov.data(), nr, off, ud)
                        : ring_->PushReadv(fd_, op->iov.data(), nr, off, ud);
      };
      while (!push()) {
        // SQ full: flush to hand the ring to the kernel. Transient enter
        // failures (EAGAIN/ENOMEM) are retried as backpressure — see the
        // final-flush loop below for why erroring out here is not an
        // option once sqes are in the shared ring.
        const int r = ring_->Flush();
        if (r != 0) {
          NBLB_CHECK_MSG(r == -EAGAIN || r == -ENOMEM,
                         "io_uring submission failed irrecoverably");
          std::this_thread::yield();
        }
      }
      // Publish AFTER the last submitter-side access of *op (the
      // PushReadv argument reads): pairs with the reaper's acquire spin,
      // so the reap-side delete is ordered after everything here.
      op->published.store(true, std::memory_order_release);
      uring_inflight_.fetch_add(1, std::memory_order_relaxed);
    }
    // The final flush must eventually succeed: the pushed sqes sit in the
    // shared SQ ring, so erroring the group here would leak them into a
    // later (possibly successful) flush and complete freed OpRecords.
    // io_uring_enter's transient failures (EAGAIN/ENOMEM under kernel
    // memory pressure) are retryable by contract — treat the stall as
    // backpressure and keep trying; anything else is a broken ring and
    // a programming error.
    for (;;) {
      const int r = ring_->Flush();
      if (r == 0) break;
      NBLB_CHECK_MSG(r == -EAGAIN || r == -ENOMEM,
                     "io_uring submission failed irrecoverably");
      std::this_thread::yield();
    }
    ticket->group_ = std::move(group);
    return Status::OK();
  }
#endif

  EnsureIoThreads();
  {
    std::lock_guard<std::mutex> lk(tp_mu_);
    tp_inflight_.fetch_add(ops.size(), std::memory_order_relaxed);
    for (OpRecord* op : ops) tp_queue_.push_back(op);
  }
  if (ops.size() == 1) {
    tp_cv_.notify_one();
  } else {
    tp_cv_.notify_all();
  }
  ticket->group_ = std::move(group);
  return Status::OK();
}

void DiskManager::WaitGroup(const std::shared_ptr<IoGroup>& group) {
  TraceTimer span(TracePhase::kDeviceWait);
#if NBLB_HAVE_IO_URING
  if (backend_in_use_ == IoBackend::kUring) {
    // The waiter drives completion: reap whatever is available (possibly
    // finishing other tickets' ops — their waiters then return instantly),
    // and block in GETEVENTS only when nothing is ready. cq_mu_ serializes
    // reapers; a queued waiter finds its group already done.
    while (group->remaining.load(std::memory_order_acquire) > 0) {
      std::lock_guard<std::mutex> cq(cq_mu_);
      if (group->remaining.load(std::memory_order_acquire) == 0) break;
      if (ReapUringLocked() > 0) continue;
      ring_->WaitCqe();
    }
    return;
  }
#endif
  std::unique_lock<std::mutex> lk(group->mu);
  group->cv.wait(lk, [&] { return group->done; });
}

Status DiskManager::WaitReads(IoTicket* ticket) {
  if (!ticket->valid()) return Status::OK();
  std::shared_ptr<IoGroup> group = std::move(ticket->group_);
  WaitGroup(group);
  std::lock_guard<std::mutex> lk(group->mu);
  return group->error;
}

Status DiskManager::WaitWrites(IoTicket* ticket) {
  // Reads and writes share the group/completion machinery; the split name
  // exists so call sites read correctly.
  return WaitReads(ticket);
}

bool DiskManager::PollCompletions(IoTicket* ticket, Status* status) {
  if (!ticket->valid()) {
    *status = Status::OK();
    return true;
  }
#if NBLB_HAVE_IO_URING
  if (backend_in_use_ == IoBackend::kUring &&
      ticket->group_->remaining.load(std::memory_order_acquire) > 0) {
    std::lock_guard<std::mutex> cq(cq_mu_);
    ReapUringLocked();
  }
#endif
  std::shared_ptr<IoGroup>& group = ticket->group_;
  if (group->remaining.load(std::memory_order_acquire) > 0) return false;
  {
    // remaining is 0 but `done` may lag by a moment (the final decrementer
    // flips it under the mutex); taking the mutex synchronizes with it.
    std::lock_guard<std::mutex> lk(group->mu);
    *status = group->error;
  }
  ticket->group_.reset();
  return true;
}

void DiskManager::DrainAsync() {
#if NBLB_HAVE_IO_URING
  if (ring_ != nullptr) {
    while (uring_inflight_.load(std::memory_order_acquire) > 0) {
      std::lock_guard<std::mutex> cq(cq_mu_);
      if (uring_inflight_.load(std::memory_order_acquire) == 0) break;
      if (ReapUringLocked() == 0) ring_->WaitCqe();
    }
  }
#endif
  // Thread backend: wait for the queue and in-flight ops to empty.
  for (;;) {
    {
      std::lock_guard<std::mutex> lk(tp_mu_);
      if (tp_queue_.empty() &&
          tp_inflight_.load(std::memory_order_acquire) == 0) {
        return;
      }
    }
    std::this_thread::yield();
  }
}

// ---------------------------------------------------------------------------
// Writes / allocation
// ---------------------------------------------------------------------------

Status DiskManager::WritePage(PageId id, const char* data) {
  if (fd_ < 0) return Status::IOError("disk manager not open");
  if (id >= num_pages()) {
    return Status::OutOfRange("write past end of file: page " +
                              std::to_string(id));
  }
  const off_t off = static_cast<off_t>(id) * static_cast<off_t>(page_size_);
  char* bounce = nullptr;
  const char* src = data;
  if (direct_io_ && !Aligned(data)) {
    bounce = AcquireBounce();
    std::memcpy(bounce, data, page_size_);
    src = bounce;
  }
  const ssize_t n = ::pwrite(fd_, src, page_size_, off);
  if (bounce != nullptr) ReleaseBounce(bounce);
  if (n != static_cast<ssize_t>(page_size_)) {
    return Status::IOError("short write on page " + std::to_string(id));
  }
  counters_.writes.fetch_add(1, std::memory_order_relaxed);
  Charge(id, /*write=*/true);
  return Status::OK();
}

Result<PageId> DiskManager::AllocatePage() {
  if (fd_ < 0) return Status::IOError("disk manager not open");
  std::lock_guard<std::mutex> lk(alloc_mu_);
  const PageId id = num_pages();
  const off_t off = static_cast<off_t>(id) * static_cast<off_t>(page_size_);
  ssize_t n;
  if (direct_io_) {
    char* bounce = AcquireBounce();
    std::memset(bounce, 0, page_size_);
    n = ::pwrite(fd_, bounce, page_size_, off);
    ReleaseBounce(bounce);
  } else {
    std::vector<char> zero(page_size_, 0);
    n = ::pwrite(fd_, zero.data(), page_size_, off);
  }
  if (n != static_cast<ssize_t>(page_size_)) {
    return Status::IOError("allocation write failed");
  }
  num_pages_.store(id + 1, std::memory_order_relaxed);
  counters_.allocations.fetch_add(1, std::memory_order_relaxed);
  return id;
}

Result<PageId> DiskManager::AllocatePages(size_t n) {
  if (fd_ < 0) return Status::IOError("disk manager not open");
  if (n == 0) return Status::InvalidArgument("AllocatePages of zero pages");
  if (n == 1) return AllocatePage();
  std::lock_guard<std::mutex> lk(alloc_mu_);
  const PageId id = num_pages();
  const off_t off = static_cast<off_t>(id) * static_cast<off_t>(page_size_);
  const size_t bytes = n * page_size_;
  ssize_t got;
  if (direct_io_) {
    // One zeroed bounce page written n times: keeps the arena bounded while
    // staying aligned. Resume on partial transfers like everything else.
    char* bounce = AcquireBounce();
    std::memset(bounce, 0, page_size_);
    got = static_cast<ssize_t>(bytes);
    for (size_t k = 0; k < n; ++k) {
      const ssize_t w =
          ::pwrite(fd_, bounce, page_size_,
                   off + static_cast<off_t>(k) *
                             static_cast<off_t>(page_size_));
      if (w != static_cast<ssize_t>(page_size_)) {
        got = -1;
        break;
      }
    }
    ReleaseBounce(bounce);
  } else {
    std::vector<char> zero(bytes, 0);
    size_t done = 0;
    got = 0;
    while (done < bytes) {
      const ssize_t w = ::pwrite(fd_, zero.data() + done, bytes - done,
                                 off + static_cast<off_t>(done));
      if (w <= 0) {
        got = -1;
        break;
      }
      done += static_cast<size_t>(w);
    }
    if (got == 0) got = static_cast<ssize_t>(bytes);
  }
  if (got != static_cast<ssize_t>(bytes)) {
    // A partial extension may have grown the file by a non-page-multiple;
    // trim back so a later Open doesn't see a corrupt length.
    if (::ftruncate(fd_, off) != 0) {
      return Status::IOError("allocation write failed and truncate-back "
                             "failed: " + std::string(std::strerror(errno)));
    }
    return Status::IOError("allocation write failed");
  }
  num_pages_.store(id + static_cast<PageId>(n), std::memory_order_relaxed);
  counters_.allocations.fetch_add(n, std::memory_order_relaxed);
  return id;
}

Status DiskManager::Sync() {
  if (fd_ < 0) return Status::IOError("disk manager not open");
  // fdatasync still flushes the metadata needed to retrieve the data
  // (notably the file size after an extending write) but skips the
  // mtime-only journal commit fsync pays on every call — measurably
  // cheaper on the WAL group-commit path, identical durability for page
  // data.
  if (::fdatasync(fd_) != 0) return Status::IOError("fdatasync failed");
  return Status::OK();
}

DiskStats DiskManager::stats() const {
  DiskStats s;
  s.reads = counters_.reads.load(std::memory_order_relaxed);
  s.writes = counters_.writes.load(std::memory_order_relaxed);
  s.allocations = counters_.allocations.load(std::memory_order_relaxed);
  s.vectored_reads =
      counters_.vectored_reads.load(std::memory_order_relaxed);
  s.async_reads = counters_.async_reads.load(std::memory_order_relaxed);
  s.async_batches = counters_.async_batches.load(std::memory_order_relaxed);
  s.async_writes = counters_.async_writes.load(std::memory_order_relaxed);
  s.async_write_batches =
      counters_.async_write_batches.load(std::memory_order_relaxed);
  s.write_runs = counters_.write_runs.load(std::memory_order_relaxed);
  return s;
}

void DiskManager::RegisterMetrics(MetricsRegistry* registry,
                                  const std::string& prefix) const {
  registry->RegisterCounter(prefix + "reads", &counters_.reads);
  registry->RegisterCounter(prefix + "writes", &counters_.writes);
  registry->RegisterCounter(prefix + "allocations", &counters_.allocations);
  registry->RegisterCounter(prefix + "vectored_reads",
                            &counters_.vectored_reads);
  registry->RegisterCounter(prefix + "async_reads", &counters_.async_reads);
  registry->RegisterCounter(prefix + "async_batches",
                            &counters_.async_batches);
  registry->RegisterCounter(prefix + "async_writes", &counters_.async_writes);
  registry->RegisterCounter(prefix + "async_write_batches",
                            &counters_.async_write_batches);
  registry->RegisterCounter(prefix + "write_runs", &counters_.write_runs);
}

void DiskManager::ResetStats() {
  counters_.reads.store(0, std::memory_order_relaxed);
  counters_.writes.store(0, std::memory_order_relaxed);
  counters_.allocations.store(0, std::memory_order_relaxed);
  counters_.vectored_reads.store(0, std::memory_order_relaxed);
  counters_.async_reads.store(0, std::memory_order_relaxed);
  counters_.async_batches.store(0, std::memory_order_relaxed);
  counters_.async_writes.store(0, std::memory_order_relaxed);
  counters_.async_write_batches.store(0, std::memory_order_relaxed);
  counters_.write_runs.store(0, std::memory_order_relaxed);
}

}  // namespace nblb
