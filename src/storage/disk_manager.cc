#include "storage/disk_manager.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/logging.h"

namespace nblb {

DiskManager::DiskManager(std::string path, size_t page_size,
                         LatencyModel* latency, bool direct_io)
    : path_(std::move(path)),
      page_size_(page_size),
      latency_(latency),
      direct_io_(direct_io) {
  NBLB_CHECK(page_size_ >= 512);
  // O_DIRECT transfers must be logical-block aligned in offset, length, and
  // memory; requiring a 4096-multiple page covers every common block size.
  if (direct_io_) NBLB_CHECK(page_size_ % 4096 == 0);
}

DiskManager::~DiskManager() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
  std::free(bounce_);
}

Status DiskManager::Open() {
  if (direct_io_) {
    fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_DIRECT, 0644);
    if (fd_ < 0) {
      if (errno != EINVAL) {
        return Status::IOError("open(O_DIRECT) failed for " + path_ + ": " +
                               std::strerror(errno));
      }
      // EINVAL: filesystem without O_DIRECT support (tmpfs etc.). Degrade
      // to buffered I/O rather than failing the whole database, but leave
      // a trace — a benchmark run in this mode measures the page cache,
      // not the device (callers can also poll direct_io()).
      std::fprintf(stderr,
                   "nblb: %s does not support O_DIRECT; falling back to "
                   "buffered I/O\n",
                   path_.c_str());
      direct_io_ = false;
    } else if (bounce_ == nullptr) {
      void* mem = nullptr;
      if (::posix_memalign(&mem, 4096, page_size_) != 0) {
        return Status::IOError("posix_memalign failed for bounce buffer");
      }
      bounce_ = static_cast<char*>(mem);
    }
  }
  if (fd_ < 0) {
    fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT, 0644);
  }
  if (fd_ < 0) {
    return Status::IOError("open failed for " + path_ + ": " +
                           std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd_, &st) != 0) {
    return Status::IOError("fstat failed: " + std::string(std::strerror(errno)));
  }
  if (st.st_size % static_cast<off_t>(page_size_) != 0) {
    return Status::Corruption("file size is not a multiple of page size");
  }
  num_pages_ = static_cast<PageId>(st.st_size / static_cast<off_t>(page_size_));
  return Status::OK();
}

Status DiskManager::Close() {
  if (fd_ >= 0) {
    if (::close(fd_) != 0) {
      fd_ = -1;
      return Status::IOError("close failed");
    }
    fd_ = -1;
  }
  return Status::OK();
}

Status DiskManager::ReadPage(PageId id, char* out) {
  if (fd_ < 0) return Status::IOError("disk manager not open");
  if (id >= num_pages_) {
    return Status::OutOfRange("read past end of file: page " +
                              std::to_string(id));
  }
  const off_t off = static_cast<off_t>(id) * static_cast<off_t>(page_size_);
  // Direct I/O needs an aligned destination; stage through the bounce
  // buffer (an 8 KiB memcpy is noise next to a real device access).
  char* dst = direct_io_ ? bounce_ : out;
  ssize_t n = ::pread(fd_, dst, page_size_, off);
  if (n != static_cast<ssize_t>(page_size_)) {
    return Status::IOError("short read on page " + std::to_string(id));
  }
  if (direct_io_) std::memcpy(out, bounce_, page_size_);
  ++stats_.reads;
  if (latency_) latency_->ChargeRead(id, page_size_);
  return Status::OK();
}

Status DiskManager::WritePage(PageId id, const char* data) {
  if (fd_ < 0) return Status::IOError("disk manager not open");
  if (id >= num_pages_) {
    return Status::OutOfRange("write past end of file: page " +
                              std::to_string(id));
  }
  const off_t off = static_cast<off_t>(id) * static_cast<off_t>(page_size_);
  const char* src = data;
  if (direct_io_) {
    std::memcpy(bounce_, data, page_size_);
    src = bounce_;
  }
  ssize_t n = ::pwrite(fd_, src, page_size_, off);
  if (n != static_cast<ssize_t>(page_size_)) {
    return Status::IOError("short write on page " + std::to_string(id));
  }
  ++stats_.writes;
  if (latency_) latency_->ChargeWrite(id, page_size_);
  return Status::OK();
}

Result<PageId> DiskManager::AllocatePage() {
  if (fd_ < 0) return Status::IOError("disk manager not open");
  const PageId id = num_pages_;
  std::vector<char> zero;
  const char* src;
  if (direct_io_) {
    std::memset(bounce_, 0, page_size_);
    src = bounce_;
  } else {
    zero.assign(page_size_, 0);
    src = zero.data();
  }
  const off_t off = static_cast<off_t>(id) * static_cast<off_t>(page_size_);
  ssize_t n = ::pwrite(fd_, src, page_size_, off);
  if (n != static_cast<ssize_t>(page_size_)) {
    return Status::IOError("allocation write failed");
  }
  ++num_pages_;
  ++stats_.allocations;
  return id;
}

Status DiskManager::Sync() {
  if (fd_ < 0) return Status::IOError("disk manager not open");
  if (::fsync(fd_) != 0) return Status::IOError("fsync failed");
  return Status::OK();
}

}  // namespace nblb
