#include "storage/disk_manager.h"

#include <fcntl.h>
#include <limits.h>
#include <sys/stat.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"

namespace nblb {

namespace {
/// Cap on iovecs per preadv (the kernel's IOV_MAX is typically 1024).
constexpr size_t kMaxIov = IOV_MAX < 1024 ? IOV_MAX : 1024;
}  // namespace

DiskManager::DiskManager(std::string path, size_t page_size,
                         LatencyModel* latency, bool direct_io)
    : path_(std::move(path)),
      page_size_(page_size),
      latency_(latency),
      direct_io_(direct_io) {
  NBLB_CHECK(page_size_ >= 512);
  // O_DIRECT transfers must be logical-block aligned in offset, length, and
  // memory; requiring a 4096-multiple page covers every common block size.
  if (direct_io_) NBLB_CHECK(page_size_ % 4096 == 0);
}

DiskManager::~DiskManager() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
  for (char* buf : bounce_free_) std::free(buf);
}

char* DiskManager::AcquireBounce() {
  {
    std::lock_guard<std::mutex> lk(bounce_mu_);
    if (!bounce_free_.empty()) {
      char* buf = bounce_free_.back();
      bounce_free_.pop_back();
      return buf;
    }
  }
  void* mem = nullptr;
  NBLB_CHECK_MSG(::posix_memalign(&mem, 4096, page_size_) == 0,
                 "posix_memalign failed for bounce buffer");
  return static_cast<char*>(mem);
}

void DiskManager::ReleaseBounce(char* buf) {
  std::lock_guard<std::mutex> lk(bounce_mu_);
  bounce_free_.push_back(buf);
}

void DiskManager::Charge(PageId id, bool write) {
  if (latency_ == nullptr) return;
  LatchGuard g(latency_mu_);
  if (write) {
    latency_->ChargeWrite(id, page_size_);
  } else {
    latency_->ChargeRead(id, page_size_);
  }
}

Status DiskManager::Open() {
  if (direct_io_) {
    fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_DIRECT, 0644);
    if (fd_ < 0) {
      if (errno != EINVAL) {
        return Status::IOError("open(O_DIRECT) failed for " + path_ + ": " +
                               std::strerror(errno));
      }
      // EINVAL: filesystem without O_DIRECT support (tmpfs etc.). Degrade
      // to buffered I/O rather than failing the whole database, but leave
      // a trace — a benchmark run in this mode measures the page cache,
      // not the device (callers can also poll direct_io()).
      std::fprintf(stderr,
                   "nblb: %s does not support O_DIRECT; falling back to "
                   "buffered I/O\n",
                   path_.c_str());
      direct_io_ = false;
    }
  }
  if (fd_ < 0) {
    fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT, 0644);
  }
  if (fd_ < 0) {
    return Status::IOError("open failed for " + path_ + ": " +
                           std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd_, &st) != 0) {
    return Status::IOError("fstat failed: " + std::string(std::strerror(errno)));
  }
  if (st.st_size % static_cast<off_t>(page_size_) != 0) {
    return Status::Corruption("file size is not a multiple of page size");
  }
  num_pages_.store(
      static_cast<PageId>(st.st_size / static_cast<off_t>(page_size_)),
      std::memory_order_relaxed);
  return Status::OK();
}

Status DiskManager::Close() {
  if (fd_ >= 0) {
    if (::close(fd_) != 0) {
      fd_ = -1;
      return Status::IOError("close failed");
    }
    fd_ = -1;
  }
  return Status::OK();
}

Status DiskManager::ReadPage(PageId id, char* out) {
  if (fd_ < 0) return Status::IOError("disk manager not open");
  if (id >= num_pages()) {
    return Status::OutOfRange("read past end of file: page " +
                              std::to_string(id));
  }
  const off_t off = static_cast<off_t>(id) * static_cast<off_t>(page_size_);
  // Direct I/O needs an aligned destination. The BufferPool's frame arena is
  // aligned, so the common path transfers straight in; unaligned callers are
  // staged through a pooled bounce buffer (the memcpy is noise next to a
  // real device access).
  char* bounce = nullptr;
  char* dst = out;
  if (direct_io_ && !Aligned(out)) {
    bounce = AcquireBounce();
    dst = bounce;
  }
  const ssize_t n = ::pread(fd_, dst, page_size_, off);
  if (n != static_cast<ssize_t>(page_size_)) {
    if (bounce != nullptr) ReleaseBounce(bounce);
    return Status::IOError("short read on page " + std::to_string(id));
  }
  if (bounce != nullptr) {
    std::memcpy(out, bounce, page_size_);
    ReleaseBounce(bounce);
  }
  counters_.reads.fetch_add(1, std::memory_order_relaxed);
  Charge(id, /*write=*/false);
  return Status::OK();
}

Status DiskManager::ReadPages(const PageId* ids, char* const* dsts, size_t n) {
  if (n == 0) return Status::OK();
  if (fd_ < 0) return Status::IOError("disk manager not open");
  const PageId np = num_pages();
  for (size_t i = 0; i < n; ++i) {
    if (ids[i] >= np) {
      return Status::OutOfRange("read past end of file: page " +
                                std::to_string(ids[i]));
    }
    NBLB_DCHECK(i == 0 || ids[i] > ids[i - 1]);
  }
  size_t i = 0;
  while (i < n) {
    // Extend the contiguous run; in direct mode every buffer in a vectored
    // transfer must be aligned, so an unaligned destination ends the run.
    size_t j = i + 1;
    while (j < n && ids[j] == ids[j - 1] + 1 && (j - i) < kMaxIov &&
           (!direct_io_ || Aligned(dsts[j]))) {
      ++j;
    }
    if (j - i == 1 || (direct_io_ && !Aligned(dsts[i]))) {
      NBLB_RETURN_NOT_OK(ReadPage(ids[i], dsts[i]));
      ++i;
      continue;
    }
    const size_t run = j - i;
    std::vector<struct iovec> iov(run);
    for (size_t k = 0; k < run; ++k) {
      iov[k].iov_base = dsts[i + k];
      iov[k].iov_len = page_size_;
    }
    off_t off = static_cast<off_t>(ids[i]) * static_cast<off_t>(page_size_);
    size_t remaining = run * page_size_;
    size_t iov_pos = 0;
    counters_.vectored_reads.fetch_add(1, std::memory_order_relaxed);
    while (remaining > 0) {
      const ssize_t got = ::preadv(fd_, iov.data() + iov_pos,
                                   static_cast<int>(run - iov_pos), off);
      if (got <= 0) {
        return Status::IOError("short vectored read at page " +
                               std::to_string(ids[i]));
      }
      remaining -= static_cast<size_t>(got);
      off += got;
      // Advance the iovec cursor past fully transferred buffers (partial
      // transfers land on a page boundary only by luck; handle the general
      // case).
      size_t advanced = static_cast<size_t>(got);
      while (advanced > 0 && iov_pos < run) {
        if (advanced >= iov[iov_pos].iov_len) {
          advanced -= iov[iov_pos].iov_len;
          ++iov_pos;
        } else {
          iov[iov_pos].iov_base =
              static_cast<char*>(iov[iov_pos].iov_base) + advanced;
          iov[iov_pos].iov_len -= advanced;
          advanced = 0;
        }
      }
    }
    counters_.reads.fetch_add(run, std::memory_order_relaxed);
    for (size_t k = 0; k < run; ++k) Charge(ids[i + k], /*write=*/false);
    i = j;
  }
  return Status::OK();
}

Status DiskManager::WritePage(PageId id, const char* data) {
  if (fd_ < 0) return Status::IOError("disk manager not open");
  if (id >= num_pages()) {
    return Status::OutOfRange("write past end of file: page " +
                              std::to_string(id));
  }
  const off_t off = static_cast<off_t>(id) * static_cast<off_t>(page_size_);
  char* bounce = nullptr;
  const char* src = data;
  if (direct_io_ && !Aligned(data)) {
    bounce = AcquireBounce();
    std::memcpy(bounce, data, page_size_);
    src = bounce;
  }
  const ssize_t n = ::pwrite(fd_, src, page_size_, off);
  if (bounce != nullptr) ReleaseBounce(bounce);
  if (n != static_cast<ssize_t>(page_size_)) {
    return Status::IOError("short write on page " + std::to_string(id));
  }
  counters_.writes.fetch_add(1, std::memory_order_relaxed);
  Charge(id, /*write=*/true);
  return Status::OK();
}

Result<PageId> DiskManager::AllocatePage() {
  if (fd_ < 0) return Status::IOError("disk manager not open");
  std::lock_guard<std::mutex> lk(alloc_mu_);
  const PageId id = num_pages();
  const off_t off = static_cast<off_t>(id) * static_cast<off_t>(page_size_);
  ssize_t n;
  if (direct_io_) {
    char* bounce = AcquireBounce();
    std::memset(bounce, 0, page_size_);
    n = ::pwrite(fd_, bounce, page_size_, off);
    ReleaseBounce(bounce);
  } else {
    std::vector<char> zero(page_size_, 0);
    n = ::pwrite(fd_, zero.data(), page_size_, off);
  }
  if (n != static_cast<ssize_t>(page_size_)) {
    return Status::IOError("allocation write failed");
  }
  num_pages_.store(id + 1, std::memory_order_relaxed);
  counters_.allocations.fetch_add(1, std::memory_order_relaxed);
  return id;
}

Status DiskManager::Sync() {
  if (fd_ < 0) return Status::IOError("disk manager not open");
  if (::fsync(fd_) != 0) return Status::IOError("fsync failed");
  return Status::OK();
}

DiskStats DiskManager::stats() const {
  DiskStats s;
  s.reads = counters_.reads.load(std::memory_order_relaxed);
  s.writes = counters_.writes.load(std::memory_order_relaxed);
  s.allocations = counters_.allocations.load(std::memory_order_relaxed);
  s.vectored_reads =
      counters_.vectored_reads.load(std::memory_order_relaxed);
  return s;
}

void DiskManager::ResetStats() {
  counters_.reads.store(0, std::memory_order_relaxed);
  counters_.writes.store(0, std::memory_order_relaxed);
  counters_.allocations.store(0, std::memory_order_relaxed);
  counters_.vectored_reads.store(0, std::memory_order_relaxed);
}

}  // namespace nblb
