// Rid: record identifier (page id + slot) for heap tuples.
//
// A Rid packs into a uint64 that also serves as the "tuple id" stored in
// index-cache items, and as the physical-address proxy of §4.2 ("ID fields
// representing uniqueness can be eliminated and the tuple's physical address
// can be used as a proxy").

#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "storage/page.h"

namespace nblb {

/// \brief Physical location of a heap tuple.
struct Rid {
  PageId page = kInvalidPageId;
  uint16_t slot = 0;

  Rid() = default;
  Rid(PageId p, uint16_t s) : page(p), slot(s) {}

  /// \brief Packs into 48 meaningful bits: page << 16 | slot.
  uint64_t ToU64() const {
    return (static_cast<uint64_t>(page) << 16) | slot;
  }

  static Rid FromU64(uint64_t v) {
    return Rid(static_cast<PageId>(v >> 16), static_cast<uint16_t>(v & 0xffff));
  }

  bool IsValid() const { return page != kInvalidPageId; }

  bool operator==(const Rid& o) const { return page == o.page && slot == o.slot; }
  bool operator!=(const Rid& o) const { return !(*this == o); }
  bool operator<(const Rid& o) const { return ToU64() < o.ToU64(); }

  std::string ToString() const {
    std::string out;
    out.reserve(16);
    out.push_back('(');
    out += std::to_string(page);
    out.push_back(',');
    out += std::to_string(slot);
    out.push_back(')');
    return out;
  }
};

}  // namespace nblb

template <>
struct std::hash<nblb::Rid> {
  size_t operator()(const nblb::Rid& r) const noexcept {
    return std::hash<uint64_t>()(r.ToU64());
  }
};
