// Wal: per-shard write-ahead log with CRC-framed records, LSN sequencing,
// and group commit over the async-write path.
//
// Records are logical (key-level PUT/DELETE), appended to an in-memory
// pending buffer by the shard worker as it serves its service group, and
// made durable in one Commit() per group: the pending bytes are laid out
// into page images, put in flight through DiskManager::SubmitWrites (one
// vectored write for the whole contiguous tail run, io_uring or the worker
// pool — the same machinery the flusher rides), and fsynced once. Writes
// ack to clients only after their group's Commit() returns.
//
// Torn-tail safety: the first page image of every commit starts from the
// in-memory copy of the current tail page, so the already-durable prefix
// bytes are rewritten bit-identical — a torn or short rewrite can corrupt
// only bytes past the durable watermark. The scanner (Open/Replay) walks
// records from the start and stops at the first zero length, implausible
// length, CRC mismatch, or non-monotonic LSN, logically truncating the tail
// there.
//
// Failure model: any append/commit I/O error is STICKY. A WAL that failed
// to make a group durable cannot accept later groups (their ordering
// guarantee would be built on a hole), so every subsequent Append/Commit
// returns the original error; recovery is a reopen, which re-scans the
// durable prefix.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "storage/disk_manager.h"

namespace nblb {

class MetricsRegistry;

/// \brief Tuning for a shard WAL.
struct WalOptions {
  size_t page_size = 8192;
  /// Async engine for the commit writes (the WAL has its own DiskManager
  /// over the log file; NBLB_IO_BACKEND overrides as usual).
  IoBackend io_backend = IoBackend::kAuto;
  size_t io_queue_depth = 16;
  size_t io_threads = 2;
};

/// \brief A write-ahead log over one file. Single-writer (the owning shard
/// worker); Replay runs before the shard serves traffic.
class Wal {
 public:
  /// Logical operation carried by a record.
  enum class Op : uint8_t {
    kPut = 1,     ///< upsert of `payload` (an encoded row) at `key`
    kDelete = 2,  ///< delete of `key` (payload empty)
  };

  /// One decoded log record.
  struct Record {
    uint64_t lsn = 0;
    Op op = Op::kPut;
    uint64_t key = 0;
    Slice payload;  ///< valid only during the Replay callback
  };

  /// \brief Log path for a data file: "<db_path>.wal".
  static std::string PathFor(const std::string& db_path);

  /// \brief Opens (or creates) the log and scans it to find the valid tail:
  /// durable_bytes/durable_lsn point past the last intact record and
  /// next_lsn continues the sequence. Torn tails are logically truncated.
  static Result<std::unique_ptr<Wal>> Open(std::string path,
                                           WalOptions options);

  ~Wal();

  /// \brief Buffers one record and returns its LSN. Nothing is durable
  /// until Commit(). Fails with the sticky error after a commit failure.
  Result<uint64_t> Append(Op op, uint64_t key, const Slice& payload);

  /// \brief Group commit: makes every pending record durable (vectored
  /// write of the tail pages + one fsync). No-op when nothing is pending.
  Status Commit();

  /// \brief Re-delivers every durable record with lsn > from_lsn, in LSN
  /// order. The Record::payload slice is only valid inside the callback.
  Status Replay(uint64_t from_lsn,
                const std::function<Status(const Record&)>& fn) const;

  /// \brief Discards the log (close + remove + recreate) after a
  /// checkpoint made its records redundant. LSN sequencing continues; any
  /// pending (uncommitted) records are dropped by design — callers commit
  /// first. Clears a sticky error only if the recreate succeeds.
  Status Reset();

  bool HasPending() const { return !pending_.empty(); }
  uint64_t next_lsn() const { return next_lsn_; }
  /// \brief LSN of the last durable record (0 when the log is empty).
  uint64_t durable_lsn() const { return durable_lsn_; }
  uint64_t durable_bytes() const { return durable_bytes_; }
  const std::string& path() const { return path_; }

  /// \brief Publishes wal.* counters under `prefix` (e.g. "wal."). The
  /// registry must not outlive this Wal.
  void RegisterMetrics(MetricsRegistry* registry,
                       const std::string& prefix) const;

 private:
  Wal(std::string path, WalOptions options);

  /// Opens the backing DiskManager and scans for the durable tail.
  Status OpenAndScan();

  /// Streaming scan of the durable prefix: calls fn for each intact record
  /// and returns the byte offset and last LSN of the valid tail. A null fn
  /// just finds the tail.
  Status Scan(const std::function<Status(const Record&)>& fn,
              uint64_t* tail_bytes, uint64_t* tail_lsn,
              uint64_t* truncated_bytes) const;

  std::string path_;
  WalOptions options_;
  std::unique_ptr<DiskManager> disk_;

  uint64_t next_lsn_ = 1;
  uint64_t durable_lsn_ = 0;
  uint64_t durable_bytes_ = 0;
  uint64_t pending_first_lsn_ = 0;
  std::string pending_;  ///< framed records awaiting Commit
  /// In-memory image of the current (partially filled) tail page; its
  /// durable prefix is rewritten verbatim by the next commit.
  std::string tail_page_;
  Status sticky_error_;

  struct Counters {
    std::atomic<uint64_t> appends{0};
    std::atomic<uint64_t> commits{0};
    std::atomic<uint64_t> bytes_appended{0};
    std::atomic<uint64_t> commit_pages{0};
    /// Wall-clock microseconds the owning worker spent inside Commit()
    /// (page build + write + fsync). commit_micros / commits is the mean
    /// group-commit stall; against elapsed time it bounds the serve-path
    /// durability overhead.
    std::atomic<uint64_t> commit_micros{0};
    std::atomic<uint64_t> replayed_records{0};
    std::atomic<uint64_t> truncated_bytes{0};
    std::atomic<uint64_t> append_failures{0};
    std::atomic<uint64_t> resets{0};
  };
  mutable Counters counters_;
};

}  // namespace nblb
